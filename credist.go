// Package credist is a from-scratch reproduction of the system described
// in "A Data-Based Approach to Social Influence Maximization" (Goyal,
// Bonchi, Lakshmanan; PVLDB 5(1), 2011): influence maximization under the
// credit distribution (CD) model, which learns how influence flows from a
// log of past action propagations instead of assuming edge probabilities
// and running Monte-Carlo simulations.
//
// The package is a thin facade over the building blocks in internal/:
// load or synthesize a Dataset, Learn a Model from its training traces,
// then predict spreads and select seed sets:
//
//	ds, _ := credist.GeneratePreset("flixster-small")
//	model := credist.Learn(ds, credist.Options{})
//	seeds, gains := model.SelectSeeds(50)
//	spread := model.Spread(seeds)
//
// All results are deterministic: the credit store keeps its entries in
// sorted sparse rows, so spreads, marginal gains, and selected seed sets
// are bit-for-bit identical across runs, scan worker counts, and
// SaveParams/LoadModel round trips.
//
// The cmd/ tools and examples/ programs demonstrate the full surface,
// internal/eval regenerates every table and figure of the paper, and
// internal/serve (exposed as `credist serve`) answers the same queries
// online over HTTP from immutable model snapshots.
package credist

import (
	"fmt"
	"io"
	"os"
	"strings"

	"credist/internal/actionlog"
	"credist/internal/datagen"
	"credist/internal/graph"
)

// NodeID identifies a user; ids are dense in [0, NumUsers).
type NodeID = graph.NodeID

// ActionID identifies an action (one propagation) in an action log.
type ActionID = actionlog.ActionID

// Tuple records that User performed Action at Time — one line of the
// action log, and the unit Model.Ingest streams in.
type Tuple = actionlog.Tuple

// ReadTuples parses a tuple stream in the action-log text format (an
// optional leading user-count line, then "user action time" lines), the
// shape cmd/datagen's -stream mode writes for held-out action tails. The
// tuples are returned in file order, ready for Model.Ingest. The
// user-count header is parsed and dropped: model ingestion bounds the
// universe by the social graph, so a header can only matter for
// standalone log use — Log.AppendFromReader honors it there, and the
// serving layer rejects headers exceeding the graph.
func ReadTuples(r io.Reader) ([]Tuple, error) {
	tuples, _, err := actionlog.ParseTuples(r)
	return tuples, err
}

// Dataset couples a social graph with an action log over its users.
type Dataset struct {
	Name  string
	Graph *graph.Graph
	Log   *actionlog.Log
}

// NumUsers returns the social-graph size.
func (d *Dataset) NumUsers() int { return d.Graph.NumNodes() }

// Stats summarizes the action log (Table 1 statistics).
func (d *Dataset) Stats() actionlog.Stats { return actionlog.Summarize(d.Log) }

// Split divides the dataset 80/20 into training and test datasets using
// the paper's size-stratified protocol: actions are ranked by propagation
// size and every fifth goes to the test set.
func (d *Dataset) Split() (train, test *Dataset) {
	tr, te, _, _ := actionlog.Split(d.Log)
	return &Dataset{Name: d.Name + "-train", Graph: d.Graph, Log: tr},
		&Dataset{Name: d.Name + "-test", Graph: d.Graph, Log: te}
}

// PresetNames lists the built-in dataset presets accepted by
// GeneratePreset, in declaration order.
func PresetNames() []string { return datagen.Names() }

// GeneratePreset synthesizes one of the built-in paper-shaped datasets:
// "flixster-small", "flickr-small", "flixster-large", or "flickr-large".
func GeneratePreset(name string) (*Dataset, error) {
	cfg, ok := datagen.PresetByName(name)
	if !ok {
		return nil, fmt.Errorf("credist: unknown preset %q (valid presets: %s)",
			name, strings.Join(datagen.Names(), ", "))
	}
	ds := datagen.Generate(cfg)
	return &Dataset{Name: ds.Name, Graph: ds.Graph, Log: ds.Log}, nil
}

// Generate synthesizes a dataset from an explicit configuration.
func Generate(cfg datagen.Config) *Dataset {
	ds := datagen.Generate(cfg)
	return &Dataset{Name: ds.Name, Graph: ds.Graph, Log: ds.Log}
}

// LoadDataset reads a graph edge list and an action log from files in the
// formats written by SaveDataset (and cmd/datagen).
func LoadDataset(name, graphPath, logPath string) (*Dataset, error) {
	gf, err := os.Open(graphPath)
	if err != nil {
		return nil, fmt.Errorf("credist: open graph: %w", err)
	}
	defer gf.Close()
	g, err := graph.ReadEdgeList(gf)
	if err != nil {
		return nil, err
	}
	lf, err := os.Open(logPath)
	if err != nil {
		return nil, fmt.Errorf("credist: open log: %w", err)
	}
	defer lf.Close()
	l, err := actionlog.Read(lf)
	if err != nil {
		return nil, err
	}
	if l.NumUsers() != g.NumNodes() {
		return nil, fmt.Errorf("credist: log has %d users but graph has %d nodes",
			l.NumUsers(), g.NumNodes())
	}
	return &Dataset{Name: name, Graph: g, Log: l}, nil
}

// SaveDataset writes the graph and log to the given paths.
func SaveDataset(d *Dataset, graphPath, logPath string) error {
	gf, err := os.Create(graphPath)
	if err != nil {
		return fmt.Errorf("credist: create graph file: %w", err)
	}
	if err := graph.WriteEdgeList(gf, d.Graph); err != nil {
		gf.Close()
		return err
	}
	if err := gf.Close(); err != nil {
		return err
	}
	lf, err := os.Create(logPath)
	if err != nil {
		return fmt.Errorf("credist: create log file: %w", err)
	}
	if err := actionlog.Write(lf, d.Log); err != nil {
		lf.Close()
		return err
	}
	return lf.Close()
}
