module credist

go 1.24
