package credist

import (
	"sync"
	"sync/atomic"

	"credist/internal/core"
)

// Influence provenance at the facade: why-provenance over the model's
// credit cells, exposed as ExplainSeed (why is this node a good seed?)
// and ExplainReach (who pushed this much credit onto that target?). The
// explanations are bit-consistent with the answers they explain: an
// explained gain is bit-for-bit Planner.Gain, and a reach decomposition's
// per-seed shares sum bit-exactly to its total, at any worker or
// partition count.

// ProvPath is one explained credit path; alias of the core
// representation, so no conversions happen at package boundaries.
type ProvPath = core.ProvPath

// SeedExplanation decomposes one candidate's marginal gain.
type SeedExplanation = core.SeedExplanation

// ReachShare is one seed's slice of an explained reach total.
type ReachShare = core.ReachShare

// ReachExplanation decomposes the credit reaching one target.
type ReachExplanation = core.ReachExplanation

// ProvStats describes the model's provenance index for /stats.
type ProvStats struct {
	// Pairs, Entries, and Bytes size the current index (all zero before
	// the first reach explanation on a model with no restored index).
	Pairs   int
	Entries int64
	Bytes   int64
	// Builds counts index builds paid by this process; a model restored
	// from a version-6 snapshot explains with Builds 0.
	Builds int64
}

// provTier is the per-model provenance state: the lazily built (or
// snapshot-restored) credit→actions index plus build accounting.
type provTier struct {
	// once builds or adopts the index at most once (the sync.OnceValue
	// lazy pattern shared with the model's evaluator and base engine),
	// publishing it in cur.
	once func() *core.ProvIndex
	cur  atomic.Pointer[core.ProvIndex]
	// restored is a version-6 snapshot's index, adopted by once on first
	// use. Written before the model is published, read-only after.
	restored *core.ProvIndex
	builds   atomic.Int64
}

// wireProv installs the tier's lazy build; called from newModel.
func (m *Model) wireProv() {
	m.prov.once = sync.OnceValue(func() *core.ProvIndex {
		idx := m.prov.restored
		if idx == nil {
			m.prov.builds.Add(1)
			idx = m.base().BuildProvIndex()
		}
		m.prov.cur.Store(idx)
		return idx
	})
}

// ensureProv returns the model's index, building it on first use unless a
// snapshot restore already supplied one.
func (m *Model) ensureProv() *core.ProvIndex { return m.prov.once() }

// BuildProvIndex forces the provenance index to exist now — this is what
// `credist learn -prov` calls so the following Save persists it — and
// returns the resulting stats. A no-op (beyond stats) if the index was
// already built or restored.
func (m *Model) BuildProvIndex() ProvStats {
	m.ensureProv()
	return m.ProvStats()
}

// ProvStats reports the tier's current index; see the field docs.
func (m *Model) ProvStats() ProvStats {
	t := &m.prov
	idx := t.cur.Load()
	if idx == nil {
		// Restored but not yet adopted: report the carried-forward index
		// so /stats shows it right after startup.
		idx = t.restored
	}
	return ProvStats{
		Pairs:   idx.Pairs(),
		Entries: idx.Entries(),
		Bytes:   idx.Bytes(),
		Builds:  t.builds.Load(),
	}
}

// provForSave snapshots the tier's index for persistence: nil when the
// tier holds nothing, which keeps index-less snapshots at their previous
// version (byte-identical files).
func (m *Model) provForSave() *core.ProvIndex {
	if idx := m.prov.cur.Load(); idx != nil {
		return idx
	}
	// A restored index not yet queried still carries forward.
	return m.prov.restored
}

// ExplainSeed decomposes candidate x's marginal gain from an empty seed
// set into its top credit paths. The explained Gain is bit-for-bit
// Model.Gains(nil, {x})[0]. Read-only and safe for concurrent use.
func (m *Model) ExplainSeed(x NodeID, top int) SeedExplanation {
	return m.base().ExplainSeed(x, top)
}

// ExplainSeedOn is ExplainSeed against a planner's state — committed
// seeds discount and zero out paths exactly as they discount Gain, so the
// explained value is bit-for-bit p.Gain(x). This is how the serving layer
// explains on its live (possibly ingest-extended) base planner.
func (m *Model) ExplainSeedOn(p *Planner, x NodeID, top int) SeedExplanation {
	return p.eng.ExplainSeed(x, top)
}

// ExplainReach decomposes the credit the given seeds push onto target v:
// per-seed shares in input order whose fixed-order fold is bit-exactly
// the returned Total, plus the top contributing (seed, action) paths.
// Answered from the provenance index (built lazily on first use, or
// restored from a version-6 snapshot with zero build work).
func (m *Model) ExplainReach(seeds []NodeID, v NodeID, top int) ReachExplanation {
	return m.explainReachOn(m.base(), seeds, v, top)
}

// ExplainReachOn is ExplainReach against a planner's state. A planner
// matching the model's base state answers from the shared index; an
// ingest-extended or seeded planner falls back to the direct shard walk,
// which is bit-identical by construction.
func (m *Model) ExplainReachOn(p *Planner, seeds []NodeID, v NodeID, top int) ReachExplanation {
	return m.explainReachOn(p.eng, seeds, v, top)
}

func (m *Model) explainReachOn(eng *core.Engine, seeds []NodeID, v NodeID, top int) ReachExplanation {
	// The index describes the base scan over exactly the model's log with
	// no committed seeds; any other engine state walks its own shards.
	if eng.NumActions() == m.ds.Log.NumActions() && len(eng.Seeds()) == 0 {
		return eng.ExplainReachIndexed(m.ensureProv(), seeds, v, top)
	}
	return eng.ExplainReach(seeds, v, top)
}
