package credist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"credist/internal/celf"
	"credist/internal/core"
	"credist/internal/partition"
)

// PartitionRange is a half-open influencer-row range [Lo, Hi) owned by one
// engine partition.
type PartitionRange = partition.Range

// PartitionStats is one partition's accounting row: its row range, live UC
// entries, and the heap/mapped split of its resident bytes.
type PartitionStats = partition.Stats

// SlicePaths returns the canonical snapshot-slice file names for a model
// split n ways: "<modelPath>.slice-<i>-of-<n>". `credist serve -partitions`
// writes and reopens slices under these names, so a checkpointed partition
// set can be found again from the model path alone.
func SlicePaths(modelPath string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s.slice-%d-of-%d", modelPath, i, n)
	}
	return out
}

// PartitionedPlanner serves the model as a set of self-contained row-range
// engine partitions behind a scatter-gather coordinator: every query fans
// over the partitions and merges by summation, and every answer is
// bit-identical at any partition count (see internal/partition). It is
// immutable once built — queries clone the partitions they would mutate —
// so any number of goroutines may query it concurrently; ingest derives a
// successor with Extend.
type PartitionedPlanner struct {
	coord *partition.Coordinator
	// mapped holds the file mappings behind mmap-opened slices (empty for
	// heap loads and in-memory partitions); Close releases them. Successors
	// built by Extend share the mappings but do not own them — close the
	// planner that opened the files, and only after every successor is gone.
	mapped []*core.MappedSnapshot
}

// Partition splits the planner's scanned engine into n contiguous
// near-even row-range partitions sharing the frozen shards (nothing is
// copied), wrapped in a coordinator. The planner must not hold committed
// seeds. The receiver stays usable: it is frozen first, so its later
// mutations go copy-on-write instead of corrupting the shared rows.
func (p *Planner) Partition(n int) (*PartitionedPlanner, error) {
	p.eng.Freeze()
	ranges := partition.SplitRanges(p.eng.NumNodes(), n)
	parts := make([]*core.Engine, len(ranges))
	for i, r := range ranges {
		var err error
		if parts[i], err = p.eng.Slice(r.Lo, r.Hi); err != nil {
			return nil, err
		}
	}
	coord, err := partition.New(parts, p.eng.Workers())
	if err != nil {
		return nil, err
	}
	return &PartitionedPlanner{coord: coord}, nil
}

// WriteSnapshotSlice streams the influencer rows in [lo, hi) of the
// model's scanned engine (or of p, under WriteSnapshot's planner rules) as
// a version-4 snapshot slice. A contiguous set of slices tiling
// [0, NumUsers) reassembles the model exactly; LoadPartitions validates
// the tiling at load. The prefix rides in every slice, as in WriteSnapshot.
func (m *Model) WriteSnapshotSlice(w io.Writer, p *Planner, prefix *SeedPrefix, lo, hi int) error {
	eng := (*core.Engine)(nil)
	if p == nil {
		eng = m.base()
	} else {
		if p.eng.CreditModel() != m.credit {
			return fmt.Errorf("credist: planner was scanned with different credit parameters than this model")
		}
		if pl, ml := p.eng.Lambda(), m.opts.Lambda; pl != ml {
			return fmt.Errorf("credist: planner was scanned with lambda %g, model uses %g", pl, ml)
		}
		if pn, ln := p.NumActions(), m.ds.Log.NumActions(); pn != ln {
			return fmt.Errorf("credist: planner covers %d actions, model's log holds %d", pn, ln)
		}
		eng = p.eng
	}
	return eng.WriteSnapshotSlice(w, core.DatasetLineage(m.ds.Name, m.ds.Graph, m.ds.Log), prefix, lo, hi)
}

// LoadPartitions restores a partitioned model from snapshot-slice files:
// each slice is loaded (memory-mapped when mmap is set), lineage-checked
// against the dataset, and the set is validated to tile the user universe
// exactly — overlapping or gapped row ranges are rejected naming both
// offending ranges. Like LoadModel, the dataset's log may extend past the
// slices' recorded scan: each partition appends only its rows of the
// unscanned tail, and any stored seed prefix is dropped. The returned
// model carries the slices' learned parameters and stored options (pass
// the zero Options to adopt them) but no scanned full engine — its lazy
// base would be a fresh scan; serve queries through the planner instead.
func LoadPartitions(ds *Dataset, paths []string, mmap bool, opts Options) (*Model, *PartitionedPlanner, error) {
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("credist: no slice paths")
	}
	var mapped []*core.MappedSnapshot
	closeMapped := func() {
		for _, ms := range mapped {
			ms.Close()
		}
	}
	engines := make([]*core.Engine, len(paths))
	lineages := make([]core.Lineage, len(paths))
	prefixes := make([]*SeedPrefix, len(paths))
	for i, path := range paths {
		var err error
		if mmap {
			var ms *core.MappedSnapshot
			engines[i], lineages[i], prefixes[i], ms, err = core.OpenSnapshotMapped(path)
			if err == nil {
				mapped = append(mapped, ms)
			}
		} else {
			var f *os.File
			if f, err = os.Open(path); err == nil {
				engines[i], lineages[i], prefixes[i], err = core.ReadSnapshotPrefix(bufio.NewReaderSize(f, 1<<20))
				f.Close()
			}
		}
		if err == nil {
			err = lineages[i].Check(ds.Graph, ds.Log)
		}
		if err == nil && lineages[i].NumActions != lineages[0].NumActions {
			err = fmt.Errorf("slice covers %d actions, slice 0 (%s) covers %d",
				lineages[i].NumActions, paths[0], lineages[0].NumActions)
		}
		if err != nil {
			closeMapped()
			return nil, nil, fmt.Errorf("credist: partition %d (%s): %w", i, path, err)
		}
	}

	credit := engines[0].CreditModel()
	if ta, ok := credit.(*core.TimeAwareCredit); ok && ta.UniverseSize() < ds.Graph.NumNodes() {
		closeMapped()
		return nil, nil, fmt.Errorf("credist: slice parameters cover %d users, graph has %d nodes", ta.UniverseSize(), ds.Graph.NumNodes())
	}
	_, simple := credit.(core.SimpleCredit)
	stored := Options{Lambda: engines[0].Lambda(), SimpleCredit: simple}
	if opts != (Options{}) && opts != stored {
		closeMapped()
		return nil, nil, fmt.Errorf("credist: slices were saved with options %+v, load requested %+v (pass the zero Options to adopt the stored ones)", stored, opts)
	}
	for i, eng := range engines[1:] {
		_, si := eng.CreditModel().(core.SimpleCredit)
		if eng.Lambda() != stored.Lambda || si != simple {
			closeMapped()
			return nil, nil, fmt.Errorf("credist: partition %d (%s) was saved with options {Lambda:%g SimpleCredit:%t}, slice 0 with %+v",
				i+1, paths[i+1], eng.Lambda(), si, stored)
		}
	}

	// Every slice of one save carries the same prefix; a disagreement means
	// the files come from different checkpoints and must not be mixed.
	prefix := prefixes[0]
	for i, pfx := range prefixes[1:] {
		if !samePrefix(prefix, pfx) {
			closeMapped()
			return nil, nil, fmt.Errorf("credist: partition %d (%s) stores a different seed prefix than slice 0 (%s); the slices come from different checkpoints",
				i+1, paths[i+1], paths[0])
		}
	}
	if ds.Log.NumActions() > lineages[0].NumActions {
		for i, eng := range engines {
			if err := eng.AppendActions(ds.Graph, ds.Log, ActionID(lineages[0].NumActions)); err != nil {
				closeMapped()
				return nil, nil, fmt.Errorf("credist: partition %d (%s): %w", i, paths[i], err)
			}
		}
		// Selected over the slices' log prefix; appended actions change
		// every marginal gain, so it no longer describes this model.
		prefix = nil
	}
	for _, eng := range engines {
		eng.Freeze()
	}
	coord, err := partition.New(engines, engines[0].Workers())
	if err != nil {
		closeMapped()
		return nil, nil, err
	}
	m := newModel(ds, stored, credit)
	m.prefix = prefix
	return m, &PartitionedPlanner{coord: coord, mapped: mapped}, nil
}

// LoadModelPartitioned opens modelPath as n partitions: when the canonical
// slice files (SlicePaths) already sit next to the model they are opened
// directly — the full snapshot is never touched, and with mmap no row is
// parsed — otherwise the full snapshot is heap-loaded once, the slices are
// written (atomically, temp file + rename), and the load proceeds from
// them. The returned paths name the slice files in partition order.
func LoadModelPartitioned(ds *Dataset, modelPath string, n int, mmap bool, opts Options) (*Model, *PartitionedPlanner, []string, error) {
	if n < 1 {
		n = 1
	}
	paths := SlicePaths(modelPath, n)
	missing := false
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			missing = true
			break
		}
	}
	if missing {
		conv, err := LoadModel(ds, modelPath, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		ranges := partition.SplitRanges(ds.Graph.NumNodes(), n)
		for i, r := range ranges {
			err := writeFileAtomic(paths[i], func(w io.Writer) error {
				return conv.WriteSnapshotSlice(w, nil, conv.prefix, r.Lo, r.Hi)
			})
			if err != nil {
				return nil, nil, nil, fmt.Errorf("credist: write slice %s: %w", paths[i], err)
			}
		}
		// conv (and its full heap engine) is dropped here; the model served
		// from is rebuilt from the slices so nothing retains the full copy.
	}
	m, pp, err := LoadPartitions(ds, paths, mmap, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	// A version-5 whole-model snapshot carries the approximate tier's RR
	// sketch, which slices do not: its samples span the full universe, so
	// it cannot be split along row ranges. Re-read just the sketch from the
	// model file (cheap: the mapped open parses no cell, and the sketch is
	// decoded onto the heap before the mapping closes) so a partitioned
	// deployment still answers bounded-error queries — from the fixed pool.
	m.approx.restored = readSnapshotSketch(modelPath, ds, pp.NumActions())
	return m, pp, paths, nil
}

// readSnapshotSketch reads only the RR sketch from a whole-model snapshot
// file, returning nil for missing files, unreadable or pre-version-5
// snapshots, and sketchless version-5 files. The sketch is an optional
// accelerator — a partitioned start must not fail because the model file
// next to healthy slices went stale — so every mismatch degrades to "no
// sketch": the file's lineage must match the dataset and its scan must
// cover exactly the numActions the partitions serve (a log tail appended
// past the snapshot invalidates the walks the same way LoadModel drops
// the sketch, and a model file older than re-checkpointed slices sampled
// a log the partitions no longer serve).
func readSnapshotSketch(path string, ds *Dataset, numActions int) *core.RRSketch {
	_, lin, _, sketch, ms, err := core.OpenSnapshotMappedSketch(path)
	if err != nil {
		return nil
	}
	// The sketch section is always decoded onto the heap (only UC shards
	// alias the mapping), so the mapping can close before the sketch is
	// used.
	ms.Close()
	if sketch == nil || lin.NumActions != numActions || lin.Check(ds.Graph, ds.Log) != nil {
		return nil
	}
	return sketch
}

// SaveSlices checkpoints the planner's partitions as snapshot-slice files,
// one per partition in partition order, each written to a temp file and
// renamed into place. The partitions must cover exactly the model's log
// (the usual WriteSnapshot planner rule); prefix, if non-nil, rides in
// every slice so a restart from them resumes seed selection.
func (pp *PartitionedPlanner) SaveSlices(m *Model, prefix *SeedPrefix, paths []string) error {
	engines := pp.coord.Engines()
	if len(paths) != len(engines) {
		return fmt.Errorf("credist: %d slice paths for %d partitions", len(paths), len(engines))
	}
	if pn, ln := pp.coord.NumActions(), m.ds.Log.NumActions(); pn != ln {
		return fmt.Errorf("credist: partitions cover %d actions, model's log holds %d", pn, ln)
	}
	if pl, ml := engines[0].Lambda(), m.opts.Lambda; pl != ml {
		return fmt.Errorf("credist: partitions were scanned with lambda %g, model uses %g", pl, ml)
	}
	lin := core.DatasetLineage(m.ds.Name, m.ds.Graph, m.ds.Log)
	for i, eng := range engines {
		lo, hi := eng.PartitionRange()
		err := writeFileAtomic(paths[i], func(w io.Writer) error {
			return eng.WriteSnapshotSlice(w, lin, prefix, lo, hi)
		})
		if err != nil {
			return fmt.Errorf("credist: write slice %s: %w", paths[i], err)
		}
	}
	return nil
}

// samePrefix reports whether two stored seed prefixes describe the same
// selection (both nil counts as same).
func samePrefix(a, b *SeedPrefix) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Seeds) != len(b.Seeds) {
		return false
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] || a.Gains[i] != b.Gains[i] || a.LookupsAt[i] != b.LookupsAt[i] {
			return false
		}
	}
	return true
}

// writeFileAtomic writes via a uniquely named temp file in the target
// directory and renames it into place, so a crash mid-write never leaves a
// truncated file at the path.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// NumPartitions returns how many partitions the planner fans over.
func (pp *PartitionedPlanner) NumPartitions() int { return pp.coord.NumPartitions() }

// NumUsers returns the global user-universe size.
func (pp *PartitionedPlanner) NumUsers() int { return pp.coord.NumUsers() }

// NumActions returns the global scanned action count.
func (pp *PartitionedPlanner) NumActions() int { return pp.coord.NumActions() }

// Ranges returns the per-partition row ranges in partition order.
func (pp *PartitionedPlanner) Ranges() []PartitionRange { return pp.coord.Ranges() }

// Stats returns per-partition accounting in partition order.
func (pp *PartitionedPlanner) Stats() []PartitionStats { return pp.coord.Stats() }

// Entries returns the live UC entry count summed over partitions — equal
// to the single-engine count, since every cell lives in exactly one
// partition.
func (pp *PartitionedPlanner) Entries() int64 {
	var total int64
	for _, st := range pp.coord.Stats() {
		total += st.Entries
	}
	return total
}

// HeapBytes sums the partitions' Go-heap shard bytes.
func (pp *PartitionedPlanner) HeapBytes() int64 {
	var total int64
	for _, st := range pp.coord.Stats() {
		total += st.HeapBytes
	}
	return total
}

// MappedBytes sums the bytes partitions still serve out of mapped slice
// files.
func (pp *PartitionedPlanner) MappedBytes() int64 {
	var total int64
	for _, st := range pp.coord.Stats() {
		total += st.MappedBytes
	}
	return total
}

// ResidentBytes returns HeapBytes plus MappedBytes.
func (pp *PartitionedPlanner) ResidentBytes() int64 { return pp.HeapBytes() + pp.MappedBytes() }

// RowStoreBackend reports "mmap" while any partition still aliases a
// mapped slice file, "heap" otherwise.
func (pp *PartitionedPlanner) RowStoreBackend() string {
	for _, st := range pp.coord.Stats() {
		if st.RowStore == "mmap" {
			return "mmap"
		}
	}
	return "heap"
}

// DeltaEntries sums the UC entries the partitions' appended action tails
// contributed (zero for freshly loaded or compacted partitions).
func (pp *PartitionedPlanner) DeltaEntries() int64 {
	var total int64
	for _, eng := range pp.coord.Engines() {
		total += eng.DeltaEntries()
	}
	return total
}

// DeltaActions returns how many appended actions sit outside the frozen
// base. Every partition appends the same actions, so this is not a sum.
func (pp *PartitionedPlanner) DeltaActions() int {
	return pp.coord.Engines()[0].DeltaActions()
}

// Spread computes sigma_cd(S) scatter-gather: per seed, its exact
// marginal gain from the row's owning partition, committed by broadcast —
// the telescoped sum that CELF's own Result.Spread() uses. The value is
// the mathematically exact CD spread and is bit-identical across
// partition counts, worker counts, and row-store backends; it is not
// guaranteed bit-identical to the unpartitioned evaluator, which
// accumulates the same total in per-action order.
func (pp *PartitionedPlanner) Spread(seeds []NodeID) (float64, error) {
	return pp.coord.Spread(seeds)
}

// Gains evaluates each candidate's marginal gain against the base seed
// set, every candidate priced exactly by its row's owner. Bit-identical
// to Planner.Gain after the same Adds, at any partition count.
func (pp *PartitionedPlanner) Gains(base, candidates []NodeID) ([]float64, error) {
	return pp.coord.Gains(base, candidates)
}

// ExplainSeed decomposes candidate x's marginal gain into its top credit
// paths, answered wholly by the partition owning x's row. The explained
// Gain is bit-for-bit Gains(nil, {x})[0] at any partition count.
func (pp *PartitionedPlanner) ExplainSeed(x NodeID, top int) (SeedExplanation, error) {
	return pp.coord.ExplainSeed(x, top)
}

// ExplainReach decomposes the credit the given seeds push onto target v:
// per-seed shares gathered from each seed's owning partition, folded in
// input order (so they sum bit-exactly to Total), with the gathered paths
// re-sorted deterministically. Bit-identical to Model.ExplainReach at any
// partition count.
func (pp *PartitionedPlanner) ExplainReach(seeds []NodeID, v NodeID, top int) (ReachExplanation, error) {
	return pp.coord.ExplainReach(seeds, v, top)
}

// NewSelection starts a growable CELF selection over fresh partition
// clones: the coordinator-side lazy-forward heap with the first-iteration
// gain pass fanned per partition. Seeds and gains are bit-identical to a
// single-engine selection. The returned selection has no planner
// (Planner() is nil); its state lives in the partition clones it owns.
func (pp *PartitionedPlanner) NewSelection() *GrowableSelection {
	return &GrowableSelection{sel: pp.coord.NewSelection(celf.Options{})}
}

// ResumeSelection is NewSelection continuing from a previously computed
// prefix (nil starts fresh): the prefix seeds are committed scatter-gather
// with no gain evaluations, and the continuation is bit-identical to an
// uninterrupted run — even when the prefix was computed at a different
// partition count.
func (pp *PartitionedPlanner) ResumeSelection(prefix *SeedPrefix) (*GrowableSelection, error) {
	if prefix == nil {
		return pp.NewSelection(), nil
	}
	sel, err := pp.coord.ResumeSelection(*prefix, celf.Options{})
	if err != nil {
		return nil, err
	}
	return &GrowableSelection{sel: sel}, nil
}

// Extend derives the successor planner for m — this planner's model after
// an Ingest: every partition clones (frozen shards shared) and scans only
// its rows of the appended action tail, in parallel. The receiver keeps
// serving unchanged. The model must extend the log the partitions cover.
func (pp *PartitionedPlanner) Extend(m *Model) (*PartitionedPlanner, error) {
	if pl, ml := pp.coord.Engines()[0].Lambda(), m.opts.Lambda; pl != ml {
		return nil, fmt.Errorf("credist: partitions were scanned with lambda %g, model uses %g", pl, ml)
	}
	if pn, gn := pp.coord.NumUsers(), m.ds.Graph.NumNodes(); pn > gn {
		return nil, fmt.Errorf("credist: partition universe (%d users) exceeds the model's graph (%d nodes)", pn, gn)
	}
	coord, err := pp.coord.Append(m.ds.Graph, m.ds.Log, ActionID(pp.coord.NumActions()))
	if err != nil {
		return nil, err
	}
	// The successor aliases the receiver's mapped shards copy-on-write but
	// does not own the mappings; Close on the opener releases them.
	return &PartitionedPlanner{coord: coord}, nil
}

// Close releases the file mappings behind mmap-opened slices; a no-op
// otherwise. Call it only once no query, selection, or Extend successor
// derived from this planner is in use.
func (pp *PartitionedPlanner) Close() error {
	var first error
	for _, ms := range pp.mapped {
		if err := ms.Close(); err != nil && first == nil {
			first = err
		}
	}
	pp.mapped = nil
	return first
}
