package credist

import (
	"fmt"
	"os"

	"credist/internal/actionlog"
	"credist/internal/core"
	"credist/internal/graph"
	"credist/internal/seedsel"
)

// Options configures model learning.
type Options struct {
	// Lambda is the UC truncation threshold used during seed selection
	// (Section 5.3; paper default 0.001). Zero keeps every credit.
	Lambda float64
	// SimpleCredit switches the direct-credit rule from the time-aware
	// Eq. (9) (the default) to the equal-split 1/d_in rule.
	SimpleCredit bool
}

// Model is a learned credit-distribution model: the time decay and
// influenceability parameters plus the evaluator of the spread objective
// sigma_cd.
type Model struct {
	ds     *Dataset
	opts   Options
	credit core.CreditModel
	eval   *core.Evaluator
}

// Learn fits the CD model to the dataset's action log. Pass the training
// split when the test split must stay held out (the paper's protocol);
// pass the full dataset when the model is used operationally.
func Learn(ds *Dataset, opts Options) *Model {
	var credit core.CreditModel
	if opts.SimpleCredit {
		credit = core.SimpleCredit{}
	} else {
		credit = core.LearnTimeAware(ds.Graph, ds.Log)
	}
	return &Model{
		ds:     ds,
		opts:   opts,
		credit: credit,
		eval:   core.NewEvaluator(ds.Graph, ds.Log, credit),
	}
}

// Dataset returns the dataset the model is bound to.
func (m *Model) Dataset() *Dataset { return m.ds }

// Options returns the options the model was learned with.
func (m *Model) Options() Options { return m.opts }

// Spread predicts the expected influence spread sigma_cd of a seed set.
// It is safe for concurrent use: evaluation reads only immutable scan
// products, so any number of goroutines may call Spread (and Gains with an
// empty base set) on a shared Model.
func (m *Model) Spread(seeds []NodeID) float64 { return m.eval.Spread(seeds) }

// Gains returns the marginal gain sigma_cd(S+c) - sigma_cd(S) of every
// candidate c against the base seed set S, batched so the engine scan (or
// clone) is paid once per call rather than once per candidate. It matches
// Planner exactly: Gains(base, cs)[i] is bit-for-bit the value a Planner
// returns from Gain(cs[i]) after Add-ing each base seed in order.
func (m *Model) Gains(base, candidates []NodeID) []float64 {
	p := m.NewPlanner()
	for _, s := range base {
		p.Add(s)
	}
	out := make([]float64, len(candidates))
	for i, c := range candidates {
		out[i] = p.Gain(c)
	}
	return out
}

// Ingest returns a new Model extended with a batch of complete new
// propagations, without relearning: the credit parameters stay frozen and
// only the appended tail is processed (prefix propagation DAGs and direct
// credits are shared with the receiver, which keeps answering queries
// unchanged). The batch follows Log.Append's contract — canonical
// (action, time, user) order, action ids starting at the log's current
// NumActions() — and every user must exist in the social graph. Results on
// the new model are bit-identical to a model over the combined dataset
// with the same parameters (e.g. one restored by LoadModel).
func (m *Model) Ingest(tuples []Tuple) (*Model, error) {
	newLog, err := m.ds.Log.Append(tuples)
	if err != nil {
		return nil, err
	}
	if newLog.NumUsers() > m.ds.Graph.NumNodes() {
		return nil, fmt.Errorf("credist: ingested log universe (%d users) exceeds the graph (%d nodes)",
			newLog.NumUsers(), m.ds.Graph.NumNodes())
	}
	eval, err := m.eval.Extend(m.ds.Graph, newLog, ActionID(m.ds.Log.NumActions()))
	if err != nil {
		return nil, err
	}
	return &Model{
		ds:     &Dataset{Name: m.ds.Name, Graph: m.ds.Graph, Log: newLog},
		opts:   m.opts,
		credit: m.credit,
		eval:   eval,
	}, nil
}

// ExtendPlanner derives a planner for this (post-Ingest) model from one
// scanned against the pre-ingest log: the planner is cloned — frozen
// shards shared, not copied — and only the appended action tail is
// scanned. The source planner must come from the model lineage this model
// was ingested from (same credit parameters, a prefix of the same log)
// and must not have committed seeds. Mismatched credit parameters,
// truncation thresholds, and user universes are rejected; a planner from
// a different log that happens to agree on all of those (possible only
// with the parameterless simple-credit rule) cannot be detected cheaply
// and yields meaningless results — pairing planners with their own model
// lineage is the caller's contract. Gains and CELF selections on the
// result are bit-identical to those of a freshly scanned NewPlanner, at a
// fraction of the cost; see BenchmarkAppendVsRescan.
func (m *Model) ExtendPlanner(p *Planner) (*Planner, error) {
	if p.eng.CreditModel() != m.credit {
		return nil, fmt.Errorf("credist: planner was scanned with different credit parameters than this model")
	}
	if pl, ml := p.eng.Lambda(), m.opts.Lambda; pl != ml {
		return nil, fmt.Errorf("credist: planner was scanned with lambda %g, model uses %g", pl, ml)
	}
	if pn, gn := p.eng.NumNodes(), m.ds.Graph.NumNodes(); pn > gn {
		return nil, fmt.Errorf("credist: planner universe (%d users) exceeds the model's graph (%d nodes)", pn, gn)
	}
	np := p.Clone()
	if err := np.eng.AppendActions(m.ds.Graph, m.ds.Log, ActionID(p.eng.NumActions())); err != nil {
		return nil, err
	}
	return np, nil
}

// SelectSeeds picks k seeds with the paper's algorithm (Scan + greedy with
// CELF) and returns them with their marginal gains; summing the gains
// gives the predicted spread of the whole set.
func (m *Model) SelectSeeds(k int) ([]NodeID, []float64) {
	res := m.selection(k)
	return res.Seeds, res.Gains
}

// Selection runs seed selection and returns the full trace (seeds, gains,
// per-seed timing, and the number of marginal-gain evaluations).
func (m *Model) Selection(k int) seedsel.Result { return m.selection(k) }

func (m *Model) selection(k int) seedsel.Result {
	return m.NewPlanner().Select(k)
}

// Planner is the stateful side of the model: the scanned UC credit
// structure of Algorithm 2 plus the committed seed set. Gain is read-only
// (and safe to call from many goroutines at once); Add and Select mutate.
// A Planner is built by one log scan and duplicated with Clone in
// milliseconds, which is how a serving layer keeps one immutable planner
// per model snapshot and hands independent copies to concurrent
// seed-selection requests.
type Planner struct {
	eng *core.Engine
}

// NewPlanner scans the model's training log (Algorithm 2) and returns a
// planner with an empty seed set.
func (m *Model) NewPlanner() *Planner {
	return &Planner{eng: core.NewEngine(m.ds.Graph, m.ds.Log, core.Options{
		Lambda: m.opts.Lambda,
		Credit: m.credit,
	})}
}

// Clone returns an independent deep copy: Add and Select on the clone never
// disturb the receiver, and the clone's results are bit-identical to those
// of a freshly scanned planner driven through the same calls.
func (p *Planner) Clone() *Planner { return &Planner{eng: p.eng.Clone()} }

// Gain returns the marginal gain sigma_cd(S+x) - sigma_cd(S) of candidate x
// against the committed seed set (Theorem 3). Read-only.
func (p *Planner) Gain(x NodeID) float64 { return p.eng.Gain(x) }

// Add commits x to the seed set, updating the credit structure incrementally
// (Algorithm 5).
func (p *Planner) Add(x NodeID) { p.eng.Add(x) }

// Seeds returns the committed seed set in selection order.
func (p *Planner) Seeds() []NodeID { return p.eng.Seeds() }

// Select greedily extends the committed seed set by up to k seeds with CELF
// (Algorithm 3) and returns the selection trace. It mutates the planner;
// use Clone first to keep the receiver reusable.
func (p *Planner) Select(k int) seedsel.Result { return seedsel.CELF(p.eng, k) }

// Entries returns the number of live UC credit entries, the paper's memory
// statistic (Figure 8, Table 4).
func (p *Planner) Entries() int64 { return p.eng.Entries() }

// ResidentBytes reports the UC structure's resident slice footprint.
func (p *Planner) ResidentBytes() int64 { return p.eng.ResidentBytes() }

// NumActions returns how many actions the planner has scanned.
func (p *Planner) NumActions() int { return p.eng.NumActions() }

// DeltaActions returns how many appended actions sit outside the frozen
// base (zero for a fresh or compacted planner).
func (p *Planner) DeltaActions() int { return p.eng.DeltaActions() }

// DeltaEntries returns the UC entries the appended actions contributed.
func (p *Planner) DeltaEntries() int64 { return p.eng.DeltaEntries() }

// Compact folds appended delta shards into the frozen base and releases
// every shard to shared status, so subsequent Clones copy nothing (seed
// selection then works copy-on-write). Must not run concurrently with
// other calls on the same planner; results are unchanged.
func (p *Planner) Compact() { p.eng.Compact() }

// Freeze releases every shard to shared status without folding the delta:
// Clones copy nothing, later mutations pay copy-on-write, and the delta
// accounting survives for stats. The serving layer freezes a snapshot's
// base planner before publishing it. Must not run concurrently with other
// calls on the same planner.
func (p *Planner) Freeze() { p.eng.Freeze() }

// Influenceability returns the learned infl(u) when the time-aware rule is
// in use, or 1 under the simple rule (which does not model it).
func (m *Model) Influenceability(u NodeID) float64 {
	if ta, ok := m.credit.(*core.TimeAwareCredit); ok {
		return ta.Influenceability(u)
	}
	return 1
}

// PairCredit returns kappa_{v,u}, the average credit v earns for
// influencing u across the log (Eq. 6) — a learned, data-based analogue of
// an edge influence probability.
func (m *Model) PairCredit(v, u NodeID) float64 { return m.eval.PairCredit(v, u) }

// Initiators returns, for each action of a dataset, the users who
// performed it before any of their neighbors — the paper's notion of a
// propagation's seed set (used to build test cases).
func Initiators(ds *Dataset, a ActionID) []NodeID {
	p := actionlog.BuildPropagation(ds.Log, ds.Graph, a)
	return p.Initiators()
}

// HighDegreeSeeds returns the k highest out-degree users, the High Degree
// baseline of the paper's "Spread Achieved" experiment.
func HighDegreeSeeds(ds *Dataset, k int) []NodeID {
	return seedsel.HighDegree(ds.Graph, k)
}

// PageRankSeeds returns the k top users by PageRank on the reversed graph,
// the paper's PageRank baseline.
func PageRankSeeds(ds *Dataset, k int) []NodeID {
	return seedsel.PageRankSeeds(ds.Graph, k, graph.PageRankOptions{})
}

// SaveParams writes the model's learned parameters (time-aware credit
// only; the simple rule has none) so a model fitted once can be restored
// with LoadModel without re-learning.
func (m *Model) SaveParams(path string) error {
	ta, ok := m.credit.(*core.TimeAwareCredit)
	if !ok {
		return fmt.Errorf("credist: simple-credit models have no parameters to save")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("credist: create params file: %w", err)
	}
	if err := core.WriteTimeAware(f, ta); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModel restores a time-aware model from parameters written by
// SaveParams, binding them to the given dataset (which must have the same
// user universe the parameters were learned on).
func LoadModel(ds *Dataset, path string, opts Options) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("credist: open params file: %w", err)
	}
	defer f.Close()
	credit, err := core.ReadTimeAware(f)
	if err != nil {
		return nil, err
	}
	return &Model{
		ds:     ds,
		opts:   opts,
		credit: credit,
		eval:   core.NewEvaluator(ds.Graph, ds.Log, credit),
	}, nil
}
