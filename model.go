package credist

import (
	"fmt"
	"os"

	"credist/internal/actionlog"
	"credist/internal/core"
	"credist/internal/graph"
	"credist/internal/seedsel"
)

// Options configures model learning.
type Options struct {
	// Lambda is the UC truncation threshold used during seed selection
	// (Section 5.3; paper default 0.001). Zero keeps every credit.
	Lambda float64
	// SimpleCredit switches the direct-credit rule from the time-aware
	// Eq. (9) (the default) to the equal-split 1/d_in rule.
	SimpleCredit bool
}

// Model is a learned credit-distribution model: the time decay and
// influenceability parameters plus the evaluator of the spread objective
// sigma_cd.
type Model struct {
	ds     *Dataset
	opts   Options
	credit core.CreditModel
	eval   *core.Evaluator
}

// Learn fits the CD model to the dataset's action log. Pass the training
// split when the test split must stay held out (the paper's protocol);
// pass the full dataset when the model is used operationally.
func Learn(ds *Dataset, opts Options) *Model {
	var credit core.CreditModel
	if opts.SimpleCredit {
		credit = core.SimpleCredit{}
	} else {
		credit = core.LearnTimeAware(ds.Graph, ds.Log)
	}
	return &Model{
		ds:     ds,
		opts:   opts,
		credit: credit,
		eval:   core.NewEvaluator(ds.Graph, ds.Log, credit),
	}
}

// Spread predicts the expected influence spread sigma_cd of a seed set.
func (m *Model) Spread(seeds []NodeID) float64 { return m.eval.Spread(seeds) }

// SelectSeeds picks k seeds with the paper's algorithm (Scan + greedy with
// CELF) and returns them with their marginal gains; summing the gains
// gives the predicted spread of the whole set.
func (m *Model) SelectSeeds(k int) ([]NodeID, []float64) {
	res := m.selection(k)
	return res.Seeds, res.Gains
}

// Selection runs seed selection and returns the full trace (seeds, gains,
// per-seed timing, and the number of marginal-gain evaluations).
func (m *Model) Selection(k int) seedsel.Result { return m.selection(k) }

func (m *Model) selection(k int) seedsel.Result {
	engine := core.NewEngine(m.ds.Graph, m.ds.Log, core.Options{
		Lambda: m.opts.Lambda,
		Credit: m.credit,
	})
	return seedsel.CELF(engine, k)
}

// Influenceability returns the learned infl(u) when the time-aware rule is
// in use, or 1 under the simple rule (which does not model it).
func (m *Model) Influenceability(u NodeID) float64 {
	if ta, ok := m.credit.(*core.TimeAwareCredit); ok {
		return ta.Influenceability(u)
	}
	return 1
}

// PairCredit returns kappa_{v,u}, the average credit v earns for
// influencing u across the log (Eq. 6) — a learned, data-based analogue of
// an edge influence probability.
func (m *Model) PairCredit(v, u NodeID) float64 { return m.eval.PairCredit(v, u) }

// Initiators returns, for each action of a dataset, the users who
// performed it before any of their neighbors — the paper's notion of a
// propagation's seed set (used to build test cases).
func Initiators(ds *Dataset, a ActionID) []NodeID {
	p := actionlog.BuildPropagation(ds.Log, ds.Graph, a)
	return p.Initiators()
}

// HighDegreeSeeds returns the k highest out-degree users, the High Degree
// baseline of the paper's "Spread Achieved" experiment.
func HighDegreeSeeds(ds *Dataset, k int) []NodeID {
	return seedsel.HighDegree(ds.Graph, k)
}

// PageRankSeeds returns the k top users by PageRank on the reversed graph,
// the paper's PageRank baseline.
func PageRankSeeds(ds *Dataset, k int) []NodeID {
	return seedsel.PageRankSeeds(ds.Graph, k, graph.PageRankOptions{})
}

// SaveParams writes the model's learned parameters (time-aware credit
// only; the simple rule has none) so a model fitted once can be restored
// with LoadModel without re-learning.
func (m *Model) SaveParams(path string) error {
	ta, ok := m.credit.(*core.TimeAwareCredit)
	if !ok {
		return fmt.Errorf("credist: simple-credit models have no parameters to save")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("credist: create params file: %w", err)
	}
	if err := core.WriteTimeAware(f, ta); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModel restores a time-aware model from parameters written by
// SaveParams, binding them to the given dataset (which must have the same
// user universe the parameters were learned on).
func LoadModel(ds *Dataset, path string, opts Options) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("credist: open params file: %w", err)
	}
	defer f.Close()
	credit, err := core.ReadTimeAware(f)
	if err != nil {
		return nil, err
	}
	return &Model{
		ds:     ds,
		opts:   opts,
		credit: credit,
		eval:   core.NewEvaluator(ds.Graph, ds.Log, credit),
	}, nil
}
