package credist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"

	"credist/internal/actionlog"
	"credist/internal/celf"
	"credist/internal/core"
	"credist/internal/graph"
	"credist/internal/seedsel"
)

// Options configures model learning.
type Options struct {
	// Lambda is the UC truncation threshold used during seed selection
	// (Section 5.3; paper default 0.001). Zero keeps every credit.
	Lambda float64
	// SimpleCredit switches the direct-credit rule from the time-aware
	// Eq. (9) (the default) to the equal-split 1/d_in rule.
	SimpleCredit bool
}

// Model is a learned credit-distribution model: the time decay and
// influenceability parameters plus the evaluator of the spread objective
// sigma_cd. Its two expensive scan products — the evaluator and the UC
// credit engine behind NewPlanner — are built lazily, at most once each,
// and then reused: a model restored from a binary snapshot (LoadModel)
// serves planners without ever re-scanning the log, and even a freshly
// learned model pays the Algorithm 2 scan once across any number of
// NewPlanner/Gains/SelectSeeds calls.
type Model struct {
	ds     *Dataset
	opts   Options
	credit core.CreditModel
	eval   func() *core.Evaluator
	base   func() *core.Engine // frozen; NewPlanner hands out clones
	// prefix is a computed CELF seed prefix attached by RecordSeedPrefix
	// or restored by LoadModel from a binary snapshot; Save persists it so
	// a restarted process answers seed queries up to its length without
	// running selection.
	prefix *SeedPrefix
	// mapped is the file mapping behind a LoadModelMapped model (nil
	// otherwise); Close releases it.
	mapped *core.MappedSnapshot
	// approx is the bounded-error serving tier's RR-sample state: a
	// striped, deterministically grown collection of reverse credit walks,
	// seeded either lazily on the first approximate query or from a
	// version-5 snapshot's restored sketch (zero sampling on restart).
	approx approxTier
	// prov is the influence-provenance tier: the credit→actions index
	// behind ExplainSeed/ExplainReach, built lazily or restored from a
	// version-6 snapshot (zero build work on restart).
	prov provTier
	// delays lazily indexes per-(action, participant) delays from the
	// action's first participation — what time-windowed objectives gate
	// on. Derived from the log alone, at most once per model.
	delays func() *core.ActionDelays
}

// Close releases the file mapping behind a model opened with
// LoadModelMapped; for every other model it is a no-op. It must only be
// called once no planner derived from the model is in use — planners
// share the mapped shards copy-on-write, and their reads fault once the
// mapping is gone.
func (m *Model) Close() error {
	if m == nil {
		return nil
	}
	return m.mapped.Close()
}

// newModel wires a model with a lazily built evaluator and base engine.
func newModel(ds *Dataset, opts Options, credit core.CreditModel) *Model {
	m := &Model{ds: ds, opts: opts, credit: credit}
	m.eval = sync.OnceValue(func() *core.Evaluator {
		return core.NewEvaluator(ds.Graph, ds.Log, credit)
	})
	m.base = sync.OnceValue(func() *core.Engine {
		e := core.NewEngine(ds.Graph, ds.Log, core.Options{Lambda: opts.Lambda, Credit: credit})
		// Compact at exact size and freeze: clones share every shard, and
		// the scan's growth slack is shed once instead of retained for the
		// model's lifetime.
		e.Compact()
		return e
	})
	m.delays = sync.OnceValue(func() *core.ActionDelays {
		return core.BuildActionDelays(ds.Log)
	})
	m.wireProv()
	return m
}

// Learn fits the CD model to the dataset's action log. Pass the training
// split when the test split must stay held out (the paper's protocol);
// pass the full dataset when the model is used operationally.
func Learn(ds *Dataset, opts Options) *Model {
	var credit core.CreditModel
	if opts.SimpleCredit {
		credit = core.SimpleCredit{}
	} else {
		credit = core.LearnTimeAware(ds.Graph, ds.Log)
	}
	return newModel(ds, opts, credit)
}

// Dataset returns the dataset the model is bound to.
func (m *Model) Dataset() *Dataset { return m.ds }

// Options returns the options the model was learned with.
func (m *Model) Options() Options { return m.opts }

// Spread predicts the expected influence spread sigma_cd of a seed set.
// It is safe for concurrent use: evaluation reads only immutable scan
// products, so any number of goroutines may call Spread (and Gains with an
// empty base set) on a shared Model.
func (m *Model) Spread(seeds []NodeID) float64 { return m.eval().Spread(seeds) }

// Gains returns the marginal gain sigma_cd(S+c) - sigma_cd(S) of every
// candidate c against the base seed set S, batched so the engine scan (or
// clone) is paid once per call rather than once per candidate. It matches
// Planner exactly: Gains(base, cs)[i] is bit-for-bit the value a Planner
// returns from Gain(cs[i]) after Add-ing each base seed in order.
func (m *Model) Gains(base, candidates []NodeID) []float64 {
	p := m.NewPlanner()
	for _, s := range base {
		p.Add(s)
	}
	out := make([]float64, len(candidates))
	for i, c := range candidates {
		out[i] = p.Gain(c)
	}
	return out
}

// Ingest returns a new Model extended with a batch of complete new
// propagations, without relearning: the credit parameters stay frozen and
// only the appended tail is processed (prefix propagation DAGs and direct
// credits are shared with the receiver, which keeps answering queries
// unchanged). The batch follows Log.Append's contract — canonical
// (action, time, user) order, action ids starting at the log's current
// NumActions() — and every user must exist in the social graph. Results on
// the new model are bit-identical to a model over the combined dataset
// with the same parameters (e.g. one restored by LoadModel).
func (m *Model) Ingest(tuples []Tuple) (*Model, error) {
	newLog, err := m.ds.Log.Append(tuples)
	if err != nil {
		return nil, err
	}
	if newLog.NumUsers() > m.ds.Graph.NumNodes() {
		return nil, fmt.Errorf("credist: ingested log universe (%d users) exceeds the graph (%d nodes)",
			newLog.NumUsers(), m.ds.Graph.NumNodes())
	}
	eval, err := m.eval().Extend(m.ds.Graph, newLog, ActionID(m.ds.Log.NumActions()))
	if err != nil {
		return nil, err
	}
	// The grown model gets a self-contained lazy base (a fresh scan of the
	// combined log on first use), NOT one chained off the receiver's:
	// capturing the predecessor here would retain every prior generation's
	// model, log copy, and evaluator for as long as the lazy base stays
	// unforced — unbounded memory on a server that trickles ingests. A
	// caller who wants the cheap clone+tail-scan derivation uses
	// ExtendPlanner with an explicit planner, which retains nothing.
	grown := newModel(&Dataset{Name: m.ds.Name, Graph: m.ds.Graph, Log: newLog}, m.opts, m.credit)
	grown.eval = func() *core.Evaluator { return eval }
	return grown, nil
}

// ExtendPlanner derives a planner for this (post-Ingest) model from one
// scanned against the pre-ingest log: the planner is cloned — frozen
// shards shared, not copied — and only the appended action tail is
// scanned. The source planner must come from the model lineage this model
// was ingested from (same credit parameters, a prefix of the same log)
// and must not have committed seeds. Mismatched credit parameters,
// truncation thresholds, and user universes are rejected; a planner from
// a different log that happens to agree on all of those (possible only
// with the parameterless simple-credit rule) cannot be detected cheaply
// and yields meaningless results — pairing planners with their own model
// lineage is the caller's contract. Gains and CELF selections on the
// result are bit-identical to those of a freshly scanned NewPlanner, at a
// fraction of the cost; see BenchmarkAppendVsRescan.
func (m *Model) ExtendPlanner(p *Planner) (*Planner, error) {
	if p.eng.CreditModel() != m.credit {
		return nil, fmt.Errorf("credist: planner was scanned with different credit parameters than this model")
	}
	if pl, ml := p.eng.Lambda(), m.opts.Lambda; pl != ml {
		return nil, fmt.Errorf("credist: planner was scanned with lambda %g, model uses %g", pl, ml)
	}
	if pn, gn := p.eng.NumNodes(), m.ds.Graph.NumNodes(); pn > gn {
		return nil, fmt.Errorf("credist: planner universe (%d users) exceeds the model's graph (%d nodes)", pn, gn)
	}
	np := p.Clone()
	if err := np.eng.AppendActions(m.ds.Graph, m.ds.Log, ActionID(p.eng.NumActions())); err != nil {
		return nil, err
	}
	return np, nil
}

// SelectSeeds picks k seeds with the paper's algorithm (Scan + greedy with
// CELF, the first-iteration gain pass fanned over the available cores) and
// returns them with their marginal gains; summing the gains gives the
// predicted spread of the whole set. Results are bit-identical regardless
// of worker count.
func (m *Model) SelectSeeds(k int) ([]NodeID, []float64) {
	res := m.selection(k)
	return res.Seeds, res.Gains
}

// Selection runs seed selection and returns the full trace (seeds, gains,
// per-seed timing, and the number of marginal-gain evaluations).
func (m *Model) Selection(k int) seedsel.Result { return m.selection(k) }

func (m *Model) selection(k int) seedsel.Result {
	return m.NewPlanner().Select(k)
}

// SeedPrefix is a computed CELF seed-selection prefix: seeds in selection
// order, their marginal gains (cumulative sums are the per-prefix
// spreads), and the cumulative gain-evaluation count when each seed was
// committed. A prefix attached to a model is persisted by Save and
// restored by LoadModel, so a restarted process serves seed queries up to
// the stored length without running selection at all; any smaller k is a
// slice of the arrays. Like NodeID and seedsel.Result, it is an alias of
// the one shared representation, so no conversions happen at package
// boundaries.
type SeedPrefix = core.SeedPrefix

// SeedPrefix returns the prefix attached to the model (by RecordSeedPrefix
// or a snapshot load), or nil. Callers must not mutate it.
func (m *Model) SeedPrefix() *SeedPrefix { return m.prefix }

// RecordSeedPrefix attaches a selection trace (from Selection, or a
// GrowableSelection's Grow) to the model so Save persists it. The trace
// must come from this model — recording a foreign selection would persist
// seeds the restored model never chose.
func (m *Model) RecordSeedPrefix(res seedsel.Result) {
	m.prefix = &SeedPrefix{
		Seeds:     append([]NodeID(nil), res.Seeds...),
		Gains:     append([]float64(nil), res.Gains...),
		LookupsAt: append([]int64(nil), res.LookupsAt...),
	}
}

// GrowableSelection is a prefix-incremental CELF run bound to its own
// planner clone: Grow(k) extends the committed selection to k seeds,
// keeping the lazy-forward heap across calls, so after Grow(50) any
// k <= 50 is answered from the recorded arrays and Grow(60) pays only the
// marginal work. Not safe for concurrent use; the serving layer
// serializes Grow and publishes immutable copies for readers.
type GrowableSelection struct {
	p   *Planner
	sel *celf.Selection
}

// NewSelection starts an empty growable selection over a fresh planner
// clone of the model's scanned engine.
func (m *Model) NewSelection() *GrowableSelection {
	return newGrowableSelection(m.NewPlanner())
}

// ResumeSelection rebuilds a growable selection from a previously
// computed prefix (typically the model's own restored SeedPrefix): the
// prefix seeds are committed without any gain evaluations, and the first
// Grow past the prefix pays one fresh gain pass to rebuild the heap.
// Seeds and gains of the continuation are bit-identical to a continuous
// run.
func (m *Model) ResumeSelection(prefix *SeedPrefix) (*GrowableSelection, error) {
	return resumeGrowableSelection(m.NewPlanner(), prefix)
}

// NewSelection starts an empty growable selection over a clone of this
// planner — shards shared, copy-on-write isolating the selection's Adds.
// This is how a serving layer grows selections off its incrementally
// extended base planner instead of forcing a second from-scratch scan
// out of the model.
func (p *Planner) NewSelection() *GrowableSelection {
	return newGrowableSelection(p.Clone())
}

// ResumeSelection is NewSelection continuing from a previously computed
// prefix; see Model.ResumeSelection. A receiver holding committed seeds
// is rejected: a prefix describes a selection from an empty seed set.
func (p *Planner) ResumeSelection(prefix *SeedPrefix) (*GrowableSelection, error) {
	return resumeGrowableSelection(p.Clone(), prefix)
}

// newGrowableSelection wraps a selection around a planner the caller
// hands over (the selection owns and mutates it).
func newGrowableSelection(p *Planner) *GrowableSelection {
	return &GrowableSelection{p: p, sel: celf.NewSelection(p.eng, celf.Options{Workers: p.eng.Workers()})}
}

func resumeGrowableSelection(p *Planner, prefix *SeedPrefix) (*GrowableSelection, error) {
	if prefix == nil {
		return newGrowableSelection(p), nil
	}
	// Same precondition WriteSnapshotPrefix enforces for its engine: a
	// prefix describes a selection from an empty seed set, so replaying it
	// on a planner with committed seeds would silently double-commit any
	// overlap and report gains from a state that never existed.
	if committed := p.Seeds(); len(committed) > 0 {
		return nil, fmt.Errorf("credist: cannot resume a seed prefix on a planner with %d committed seeds", len(committed))
	}
	sel, err := celf.Resume(p.eng, *prefix, celf.Options{Workers: p.eng.Workers()})
	if err != nil {
		return nil, err
	}
	return &GrowableSelection{p: p, sel: sel}, nil
}

// Grow extends the selection to at most k seeds and returns the full
// accumulated trace (slicing it to any length <= Len yields that prefix's
// selection). Growing to a k at or below the current length does no work.
func (s *GrowableSelection) Grow(k int) seedsel.Result { return s.sel.Grow(k) }

// Len returns the number of committed seeds.
func (s *GrowableSelection) Len() int { return s.sel.Len() }

// Exhausted reports whether the candidate pool ran dry: no further Grow
// can add seeds.
func (s *GrowableSelection) Exhausted() bool { return s.sel.Exhausted() }

// Planner exposes the selection's owned planner for inspection (entries,
// resident bytes, delta accounting). Mutating it corrupts the selection;
// it is read-only by contract. Selections grown from a PartitionedPlanner
// have no single planner and return nil.
func (s *GrowableSelection) Planner() *Planner { return s.p }

// Planner is the stateful side of the model: the scanned UC credit
// structure of Algorithm 2 plus the committed seed set. Gain is read-only
// (and safe to call from many goroutines at once); Add and Select mutate.
// A Planner is built by one log scan and duplicated with Clone in
// milliseconds, which is how a serving layer keeps one immutable planner
// per model snapshot and hands independent copies to concurrent
// seed-selection requests.
type Planner struct {
	eng *core.Engine
}

// NewPlanner returns a planner with an empty seed set over the model's
// scanned UC structure (Algorithm 2). The scan happens at most once per
// model — on the first call, or never for a model restored by LoadModel
// from a binary snapshot — and every planner is an independent clone
// sharing the frozen scan products copy-on-write, so repeated calls cost
// microseconds, not a log rescan. Results are bit-identical to a freshly
// scanned engine.
func (m *Model) NewPlanner() *Planner {
	return &Planner{eng: m.base().Clone()}
}

// Clone returns an independent deep copy: Add and Select on the clone never
// disturb the receiver, and the clone's results are bit-identical to those
// of a freshly scanned planner driven through the same calls.
func (p *Planner) Clone() *Planner { return &Planner{eng: p.eng.Clone()} }

// Gain returns the marginal gain sigma_cd(S+x) - sigma_cd(S) of candidate x
// against the committed seed set (Theorem 3). Read-only.
func (p *Planner) Gain(x NodeID) float64 { return p.eng.Gain(x) }

// Add commits x to the seed set, updating the credit structure incrementally
// (Algorithm 5).
func (p *Planner) Add(x NodeID) { p.eng.Add(x) }

// Seeds returns the committed seed set in selection order.
func (p *Planner) Seeds() []NodeID { return p.eng.Seeds() }

// Select greedily extends the committed seed set by up to k seeds with
// CELF (Algorithm 3) via the shared selection engine — the
// first-iteration gain pass and stale-bound refreshes fan over the
// engine's configured workers, with bit-identical seeds and gains at any
// worker count — and returns the selection trace. It mutates the planner;
// use Clone first to keep the receiver reusable.
func (p *Planner) Select(k int) seedsel.Result {
	return celf.Run(p.eng, k, celf.Options{Workers: p.eng.Workers()})
}

// Entries returns the number of live UC credit entries, the paper's memory
// statistic (Figure 8, Table 4).
func (p *Planner) Entries() int64 { return p.eng.Entries() }

// ResidentBytes reports the UC structure's total footprint: HeapBytes
// plus MappedBytes.
func (p *Planner) ResidentBytes() int64 { return p.eng.ResidentBytes() }

// HeapBytes reports the Go-heap slice footprint of the UC structure;
// shards still served from a mapped snapshot contribute nothing.
func (p *Planner) HeapBytes() int64 { return p.eng.HeapBytes() }

// MappedBytes reports the file-backed footprint: bytes of a mapped
// snapshot's base section this planner's shards still alias (zero for
// heap-loaded models, shrinking as writes promote shards to heap).
func (p *Planner) MappedBytes() int64 { return p.eng.MappedBytes() }

// RowStoreBackend reports how the planner's shards are served: "mmap"
// while any shard still aliases a mapped snapshot, "heap" otherwise.
func (p *Planner) RowStoreBackend() string { return p.eng.RowStoreBackend() }

// NumActions returns how many actions the planner has scanned.
func (p *Planner) NumActions() int { return p.eng.NumActions() }

// DeltaActions returns how many appended actions sit outside the frozen
// base (zero for a fresh or compacted planner).
func (p *Planner) DeltaActions() int { return p.eng.DeltaActions() }

// DeltaEntries returns the UC entries the appended actions contributed.
func (p *Planner) DeltaEntries() int64 { return p.eng.DeltaEntries() }

// Compact folds appended delta shards into the frozen base and releases
// every shard to shared status, so subsequent Clones copy nothing (seed
// selection then works copy-on-write). Must not run concurrently with
// other calls on the same planner; results are unchanged.
func (p *Planner) Compact() { p.eng.Compact() }

// Freeze releases every shard to shared status without folding the delta:
// Clones copy nothing, later mutations pay copy-on-write, and the delta
// accounting survives for stats. The serving layer freezes a snapshot's
// base planner before publishing it. Must not run concurrently with other
// calls on the same planner.
func (p *Planner) Freeze() { p.eng.Freeze() }

// Influenceability returns the learned infl(u) when the time-aware rule is
// in use, or 1 under the simple rule (which does not model it).
func (m *Model) Influenceability(u NodeID) float64 {
	if ta, ok := m.credit.(*core.TimeAwareCredit); ok {
		return ta.Influenceability(u)
	}
	return 1
}

// PairCredit returns kappa_{v,u}, the average credit v earns for
// influencing u across the log (Eq. 6) — a learned, data-based analogue of
// an edge influence probability.
func (m *Model) PairCredit(v, u NodeID) float64 { return m.eval().PairCredit(v, u) }

// Initiators returns, for each action of a dataset, the users who
// performed it before any of their neighbors — the paper's notion of a
// propagation's seed set (used to build test cases).
func Initiators(ds *Dataset, a ActionID) []NodeID {
	p := actionlog.BuildPropagation(ds.Log, ds.Graph, a)
	return p.Initiators()
}

// HighDegreeSeeds returns the k highest out-degree users, the High Degree
// baseline of the paper's "Spread Achieved" experiment.
func HighDegreeSeeds(ds *Dataset, k int) []NodeID {
	return seedsel.HighDegree(ds.Graph, k)
}

// PageRankSeeds returns the k top users by PageRank on the reversed graph,
// the paper's PageRank baseline.
func PageRankSeeds(ds *Dataset, k int) []NodeID {
	return seedsel.PageRankSeeds(ds.Graph, k, graph.PageRankOptions{})
}

// SaveParams writes the model's learned parameters (time-aware credit
// only; the simple rule has none) so a model fitted once can be restored
// with LoadModel without re-learning.
func (m *Model) SaveParams(path string) error {
	ta, ok := m.credit.(*core.TimeAwareCredit)
	if !ok {
		return fmt.Errorf("credist: simple-credit models have no parameters to save")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("credist: create params file: %w", err)
	}
	if err := core.WriteTimeAware(f, ta); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Save writes the model as a durable binary snapshot: learned parameters
// plus the fully scanned UC credit structure, the dataset lineage
// (name, universe, action count, graph/log content hashes), and the
// model's attached seed prefix if one was recorded or restored. A process
// restarted with LoadModel against the same (or a grown) dataset skips
// both learning and the log scan — cold start becomes a file read plus an
// append of only the unscanned tail. Saving forces the model's one-time
// scan if it has not happened yet.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("credist: create snapshot file: %w", err)
	}
	if err := m.WriteSnapshot(f, nil, m.prefix); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteSnapshot streams the binary snapshot to w. p selects the scanned
// planner to serialize — it must belong to this model's lineage (same
// credit parameters and truncation threshold), cover exactly the model's
// log, and hold no committed seeds; nil uses the model's own base scan.
// Passing an explicit planner is how a serving layer checkpoints its live
// (possibly ingest-extended) planner without a second scan. prefix, if
// non-nil, is the computed seed prefix to persist alongside the engine —
// it must have been selected against exactly the state being written
// (this model's parameters over the planner's log), or a restart would
// serve seeds the restored model never chose.
func (m *Model) WriteSnapshot(w io.Writer, p *Planner, prefix *SeedPrefix) error {
	eng := (*core.Engine)(nil)
	if p == nil {
		eng = m.base()
	} else {
		if p.eng.CreditModel() != m.credit {
			return fmt.Errorf("credist: planner was scanned with different credit parameters than this model")
		}
		if pl, ml := p.eng.Lambda(), m.opts.Lambda; pl != ml {
			return fmt.Errorf("credist: planner was scanned with lambda %g, model uses %g", pl, ml)
		}
		if pn, ln := p.NumActions(), m.ds.Log.NumActions(); pn != ln {
			return fmt.Errorf("credist: planner covers %d actions, model's log holds %d", pn, ln)
		}
		eng = p.eng
	}
	// The RR sketch and provenance index ride along whenever their tiers
	// hold one: both are derived over exactly the model's log, and the
	// lineage written here is that same log's, so sections attached to
	// this model are always consistent with the snapshot (the version
	// stays 3 when there is no section, keeping sectionless files
	// byte-identical).
	return eng.WriteSnapshotProv(w, core.DatasetLineage(m.ds.Name, m.ds.Graph, m.ds.Log), prefix, m.approxSketch(), m.provForSave())
}

// IsModelSnapshot reports whether data (at least the first 8 bytes of a
// file) begins with the binary model-snapshot magic — the format written
// by Model.Save and `credist learn -o`, as opposed to the SaveParams text
// format.
func IsModelSnapshot(data []byte) bool { return core.IsSnapshotHeader(data) }

// LoadModel restores a model from a file written by Save (binary
// snapshot) or SaveParams (text parameters), sniffing the format from the
// file header and binding the result to the given dataset.
//
// For a binary snapshot the dataset is lineage-checked: the graph must
// hash-match the one the snapshot was built against, and the log must
// contain the snapshot's scanned prefix verbatim. The log may be longer —
// the restored engine appends only the unscanned tail (bit-identical to a
// from-scratch rescan of the combined log), which is what makes restarting
// an ingesting service a matter of milliseconds instead of a full rescan.
// The snapshot's stored options are authoritative: pass the same options
// it was saved with, or the zero Options to adopt them; anything else is
// a lineage error.
//
// For text parameters (time-aware only) the behavior is unchanged: the
// dataset must share the user universe the parameters were learned on,
// and opts is taken as given.
func LoadModel(ds *Dataset, path string, opts Options) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("credist: open model file: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	if header, err := br.Peek(8); err == nil && core.IsSnapshotHeader(header) {
		return loadSnapshotModel(ds, br, opts)
	}
	credit, err := core.ReadTimeAware(br)
	if err != nil {
		return nil, err
	}
	// Same guard the snapshot path applies: parameters must cover every
	// graph node, or the first Gamma evaluation for an uncovered user
	// would panic instead of erroring here.
	if credit.UniverseSize() < ds.Graph.NumNodes() {
		return nil, fmt.Errorf("credist: parameters cover %d users, graph has %d nodes", credit.UniverseSize(), ds.Graph.NumNodes())
	}
	return newModel(ds, opts, credit), nil
}

// LoadModelMapped restores a model from a version-3 binary snapshot with
// the frozen UC base served directly from the memory-mapped file: no cell
// is parsed, no shard allocated, and the OS pages cold shards in and out
// on demand, so the model can exceed RAM and opening is near-instant
// regardless of model size. Everything else matches LoadModel's snapshot
// path — lineage check, stored-options authority, tail append for a grown
// log (the tail is scanned onto the heap; the base stays mapped) — and
// every query is bit-identical to the heap-loaded model. Text parameter
// files and pre-v3 snapshots are rejected; re-save with Save to upgrade.
//
// The caller owns the mapping's lifetime: Close the model only after all
// planners derived from it are gone.
func LoadModelMapped(ds *Dataset, path string, opts Options) (*Model, error) {
	eng, lin, prefix, sketch, prov, ms, err := core.OpenSnapshotMappedProv(path)
	if err != nil {
		return nil, err
	}
	m, err := bindSnapshotModel(ds, eng, lin, prefix, sketch, prov, opts)
	if err != nil {
		ms.Close()
		return nil, err
	}
	m.mapped = ms
	return m, nil
}

// loadSnapshotModel binds a heap-parsed binary snapshot to ds.
func loadSnapshotModel(ds *Dataset, r io.Reader, opts Options) (*Model, error) {
	eng, lin, prefix, sketch, prov, err := core.ReadSnapshotProv(r)
	if err != nil {
		return nil, err
	}
	return bindSnapshotModel(ds, eng, lin, prefix, sketch, prov, opts)
}

// bindSnapshotModel finishes a snapshot load regardless of backend:
// lineage check, options resolution, and the tail append for a log that
// has grown past the snapshot's scanned prefix.
func bindSnapshotModel(ds *Dataset, eng *core.Engine, lin core.Lineage, prefix *SeedPrefix, sketch *core.RRSketch, prov *core.ProvIndex, opts Options) (*Model, error) {
	if err := lin.Check(ds.Graph, ds.Log); err != nil {
		return nil, err
	}
	credit := eng.CreditModel()
	// The graph hash matched, so a snapshot learned on this graph covers
	// every node; a crafted file that passed its CRC but shrank the
	// parameter table must still be refused before Gamma can index past it.
	if ta, ok := credit.(*core.TimeAwareCredit); ok && ta.UniverseSize() < ds.Graph.NumNodes() {
		return nil, fmt.Errorf("credist: snapshot parameters cover %d users, graph has %d nodes", ta.UniverseSize(), ds.Graph.NumNodes())
	}
	_, simple := credit.(core.SimpleCredit)
	stored := Options{Lambda: eng.Lambda(), SimpleCredit: simple}
	if opts != (Options{}) && opts != stored {
		return nil, fmt.Errorf("credist: snapshot was saved with options %+v, load requested %+v (pass the zero Options to adopt the stored ones)", stored, opts)
	}
	if ds.Log.NumActions() > lin.NumActions {
		if err := eng.AppendActions(ds.Graph, ds.Log, ActionID(lin.NumActions)); err != nil {
			return nil, err
		}
		// The stored seed prefix was selected over the snapshot's log
		// prefix; appended actions change every marginal gain, so it no
		// longer describes this model and is dropped. The RR sketch falls
		// for the same reason (its walks sampled the old log's DAGs), and
		// the provenance index too: the tail adds credit cells it never
		// indexed.
		prefix = nil
		sketch = nil
		prov = nil
	}
	// Freeze rather than Compact: clones share everything either way, and
	// keeping the delta accounting lets callers (and /stats) see how much
	// of the engine came from the post-snapshot tail.
	eng.Freeze()
	m := newModel(ds, stored, credit)
	m.base = func() *core.Engine { return eng }
	m.prefix = prefix
	m.approx.restored = sketch
	m.prov.restored = prov
	return m, nil
}
