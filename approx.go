package credist

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"credist/internal/core"
	"credist/internal/ris"
)

// Approximate serving tier: bounded-error, bounded-latency spread answers
// from a shared RR-sample collection of reverse credit walks.
//
// The tier trades the exact evaluator's full credit-DAG walk per query for
// membership counting over pre-drawn samples, and reports an honest
// Wilson confidence interval around the exact sigma_cd value (the walks
// are exactly unbiased for it; see core.CreditWalkSource). Samples are
// drawn once and shared: a query with a tight eps grows the collection,
// and every later query answers from the grown pool for free. Growth is
// striped and per-stream deterministic, so the answer to any query is
// bit-identical regardless of worker count, growth history, or whether
// the collection was restored from a version-5 snapshot or drawn live.

const (
	// defaultApproxSeed is the PCG seed the tier samples with when none
	// was restored from a snapshot. Fixed so two processes serving the
	// same model return bit-identical approximate answers.
	defaultApproxSeed = 0x5eed
	// initialApproxSamples is the collection size the first approximate
	// query starts from before any eps-driven doubling.
	initialApproxSamples = 4 * ris.DefaultStripe
	// DefaultMaxApproxSamples caps adaptive growth when ApproxOptions
	// leaves MaxSamples zero; it matches the RecommendedSamples clamp.
	DefaultMaxApproxSamples = 500000
	// zeroHitStopSamples stops eps-driven growth for a seed set no sample
	// hits: its relative half-width is undefined (+Inf) at any pool size,
	// so past this many samples the tier reports the absolute interval
	// [0, small] instead of growing to the cap chasing an unreachable eps.
	zeroHitStopSamples = 16 * ris.DefaultStripe
)

// ApproxOptions bounds one approximate query. Zero values mean: Eps 0.1,
// no wall-clock budget, DefaultMaxApproxSamples, GOMAXPROCS sampling
// workers. Eps and Budget may be combined; the query stops at whichever
// bound binds first and reports the precision it actually achieved.
type ApproxOptions struct {
	// Eps is the target relative half-width of the confidence interval:
	// the query grows the sample pool until
	// (CIHigh-CILow)/(2*Estimate) <= Eps or another bound binds.
	Eps float64
	// Budget caps the query's wall-clock time. Growth stops once spent;
	// the reply still carries a valid (wider) interval.
	Budget time.Duration
	// MaxSamples caps the collection size this query may grow to.
	MaxSamples int
	// Workers fans sample growth over this many goroutines; answers are
	// bit-identical at any value.
	Workers int
}

// ApproxResult is one bounded-error answer from the approximate tier.
type ApproxResult struct {
	// Estimate is the RR estimate of sigma_cd, with [CILow, CIHigh] its
	// 99% Wilson confidence interval around the exact value.
	Estimate, CILow, CIHigh float64
	// AchievedEps is the realized relative half-width; +Inf when the
	// estimate is zero. At most Eps when the eps bound is what stopped
	// growth.
	AchievedEps float64
	// Samples is the collection size the answer was computed from; Grown
	// is how many of those were drawn during this call (0 when the pool —
	// possibly snapshot-restored — was already sufficient).
	Samples, Grown int
	// Elapsed is the query's wall-clock time.
	Elapsed time.Duration
}

// ApproxStats describes the tier's current sample pool for /stats.
type ApproxStats struct {
	// Samples and Bytes size the current collection (0 before the first
	// approximate query on a model with no restored sketch).
	Samples int
	Bytes   int64
	// Sampled counts samples drawn by this process; a snapshot-restored
	// pool answers with Sampled 0 until a query outgrows it.
	Sampled int64
}

// approxTier is the per-model state behind ApproxSpread/ApproxSeeds.
type approxTier struct {
	mu sync.Mutex // serializes growth; queries read coll lock-free
	// coll is the published collection: readers load it atomically and
	// estimate against an immutable snapshot while growth swaps in a
	// superset.
	coll atomic.Pointer[ris.Collection]
	// restored is a version-5 snapshot's sketch, consumed (under mu) into
	// the initial collection on first use.
	restored *core.RRSketch
	src      ris.Source
	sampled  atomic.Int64
}

// ensure returns the current collection, materializing the walk source
// and the restored sketch on first use. It never draws new samples.
func (m *Model) ensureApprox() (*ris.Collection, ris.Source, error) {
	t := &m.approx
	if c := t.coll.Load(); c != nil && t.src != nil {
		return c, t.src, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.src == nil {
		src, err := m.eval().CreditWalks()
		if err != nil {
			return nil, nil, err
		}
		t.src = src
	}
	if c := t.coll.Load(); c != nil {
		return c, t.src, nil
	}
	if sk := t.restored; sk != nil {
		c, err := ris.FromSets(t.src.NumNodes(), sk.Roots, sk.Seed, sk.Sets)
		if err != nil {
			return nil, nil, fmt.Errorf("credist: restored RR sketch: %w", err)
		}
		t.restored = nil
		t.coll.Store(c)
		return c, t.src, nil
	}
	return nil, t.src, nil
}

// ensureApproxFixed returns the current collection without ever touching
// the credit-walk source: a restored sketch is materialized, but no
// samples can be drawn. This is the partitioned serving path — no single
// engine holds the full universe there, so the evaluator behind the walk
// source must never be built. nil (with nil error) means the tier holds
// nothing.
func (m *Model) ensureApproxFixed() (*ris.Collection, error) {
	t := &m.approx
	if c := t.coll.Load(); c != nil {
		return c, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c := t.coll.Load(); c != nil {
		return c, nil
	}
	sk := t.restored
	if sk == nil {
		return nil, nil
	}
	c, err := ris.FromSets(m.ds.Graph.NumNodes(), sk.Roots, sk.Seed, sk.Sets)
	if err != nil {
		return nil, fmt.Errorf("credist: restored RR sketch: %w", err)
	}
	t.restored = nil
	t.coll.Store(c)
	return c, nil
}

// ApproxSpreadFixed answers a spread query from the tier's existing pool —
// snapshot-restored or grown by earlier queries — without drawing a single
// sample: the answer carries whatever precision the pool affords, with
// AchievedEps reporting it honestly. ok is false when the tier holds no
// samples at all (the caller decides how to fail). This is how a
// partitioned deployment serves approximate queries from a persisted
// sketch: the fixed pool was drawn over the full universe before the model
// was split, and estimation is pure membership counting.
func (m *Model) ApproxSpreadFixed(seeds []NodeID) (ApproxResult, bool, error) {
	start := time.Now()
	c, err := m.ensureApproxFixed()
	if err != nil || c == nil {
		return ApproxResult{}, false, err
	}
	est := c.Estimate(seeds)
	return ApproxResult{
		Estimate:    est.Spread,
		CILow:       est.Low,
		CIHigh:      est.High,
		AchievedEps: est.Eps,
		Samples:     est.Samples,
		Elapsed:     time.Since(start),
	}, true, nil
}

// ApproxSeedsFixed is ApproxSeeds over the existing pool only: greedy
// maximum-coverage selection and the selected set's interval, never
// growing the collection. ok is false when the tier holds no samples.
func (m *Model) ApproxSeedsFixed(k int) ([]NodeID, ApproxResult, bool, error) {
	start := time.Now()
	c, err := m.ensureApproxFixed()
	if err != nil || c == nil {
		return nil, ApproxResult{}, false, err
	}
	seeds, _ := c.SelectSeeds(k)
	est := c.Estimate(seeds)
	return seeds, ApproxResult{
		Estimate:    est.Spread,
		CILow:       est.Low,
		CIHigh:      est.High,
		AchievedEps: est.Eps,
		Samples:     est.Samples,
		Elapsed:     time.Since(start),
	}, true, nil
}

// grow extends the published collection to count samples (no-op if it
// already holds that many) and returns the resulting collection.
func (m *Model) growApprox(src ris.Source, count, workers int) *ris.Collection {
	t := &m.approx
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.coll.Load()
	if c == nil {
		c = ris.CollectParallel(src, count, defaultApproxSeed, ris.CollectOptions{Workers: workers})
		t.sampled.Add(int64(c.NumSets()))
		t.coll.Store(c)
		return c
	}
	if count <= c.NumSets() {
		return c
	}
	grown := c.Extend(src, count, ris.CollectOptions{Workers: workers})
	t.sampled.Add(int64(grown.NumSets() - c.NumSets()))
	t.coll.Store(grown)
	return grown
}

func (o ApproxOptions) resolved() ApproxOptions {
	if o.Eps <= 0 {
		o.Eps = 0.1
	}
	if o.MaxSamples <= 0 {
		o.MaxSamples = DefaultMaxApproxSamples
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// ApproxSpread answers a spread query from the RR-sample tier: an
// unbiased estimate of sigma_cd(seeds) with a 99% Wilson confidence
// interval, growing the shared sample pool (doubling, reusing every
// already-drawn stripe) until the interval's relative half-width reaches
// opts.Eps or the time/sample budget is spent. It is safe for concurrent
// use and deterministic: the same model state and seed set yield the same
// answer at any worker count.
func (m *Model) ApproxSpread(seeds []NodeID, opts ApproxOptions) (ApproxResult, error) {
	start := time.Now()
	opts = opts.resolved()
	c, src, err := m.ensureApprox()
	if err != nil {
		return ApproxResult{}, err
	}
	grown := 0
	if c == nil {
		n := initialApproxSamples
		if n > opts.MaxSamples {
			n = opts.MaxSamples
		}
		c = m.growApprox(src, n, opts.Workers)
		grown = c.NumSets()
	}
	for {
		est := c.Estimate(seeds)
		if est.Eps <= opts.Eps ||
			(est.Hits == 0 && c.NumSets() >= zeroHitStopSamples) ||
			c.NumSets() >= opts.MaxSamples ||
			(opts.Budget > 0 && time.Since(start) >= opts.Budget) {
			return ApproxResult{
				Estimate:    est.Spread,
				CILow:       est.Low,
				CIHigh:      est.High,
				AchievedEps: est.Eps,
				Samples:     est.Samples,
				Grown:       grown,
				Elapsed:     time.Since(start),
			}, nil
		}
		target := 2 * c.NumSets()
		if target > opts.MaxSamples {
			target = opts.MaxSamples
		}
		next := m.growApprox(src, target, opts.Workers)
		grown += next.NumSets() - c.NumSets()
		c = next
	}
}

// ApproxSeeds runs greedy maximum-coverage seed selection over the
// RR-sample tier: the returned seeds maximize sample coverage, and the
// result's interval describes the selected set's spread. The pool grows
// (within the same bounds as ApproxSpread) until the selected set's
// interval meets opts.Eps, re-selecting on each growth step since more
// samples can change the greedy choice.
func (m *Model) ApproxSeeds(k int, opts ApproxOptions) ([]NodeID, ApproxResult, error) {
	start := time.Now()
	opts = opts.resolved()
	c, src, err := m.ensureApprox()
	if err != nil {
		return nil, ApproxResult{}, err
	}
	grown := 0
	if c == nil {
		n := initialApproxSamples
		if n > opts.MaxSamples {
			n = opts.MaxSamples
		}
		c = m.growApprox(src, n, opts.Workers)
		grown = c.NumSets()
	}
	for {
		seeds, _ := c.SelectSeeds(k)
		est := c.Estimate(seeds)
		if est.Eps <= opts.Eps ||
			(est.Hits == 0 && c.NumSets() >= zeroHitStopSamples) ||
			c.NumSets() >= opts.MaxSamples ||
			(opts.Budget > 0 && time.Since(start) >= opts.Budget) {
			return seeds, ApproxResult{
				Estimate:    est.Spread,
				CILow:       est.Low,
				CIHigh:      est.High,
				AchievedEps: est.Eps,
				Samples:     est.Samples,
				Grown:       grown,
				Elapsed:     time.Since(start),
			}, nil
		}
		target := 2 * c.NumSets()
		if target > opts.MaxSamples {
			target = opts.MaxSamples
		}
		next := m.growApprox(src, target, opts.Workers)
		grown += next.NumSets() - c.NumSets()
		c = next
	}
}

// BuildApproxSketch grows the tier's sample pool to at least n samples so
// the next Save persists them (`credist learn -ris-samples`): a process
// restarted from that snapshot answers its first approximate query with
// zero sampling work.
func (m *Model) BuildApproxSketch(n int) error {
	if n <= 0 {
		return fmt.Errorf("credist: sketch size %d must be positive", n)
	}
	_, src, err := m.ensureApprox()
	if err != nil {
		return err
	}
	m.growApprox(src, n, runtime.GOMAXPROCS(0))
	return nil
}

// ApproxStats reports the tier's current pool; see the field docs.
func (m *Model) ApproxStats() ApproxStats {
	t := &m.approx
	s := ApproxStats{Sampled: t.sampled.Load()}
	if c := t.coll.Load(); c != nil {
		s.Samples = c.NumSets()
		s.Bytes = c.Bytes()
	} else if sk := t.restored; sk != nil {
		// Restored but not yet materialized: report the sketch's size so
		// /stats shows the carried-forward pool right after startup.
		s.Samples = len(sk.Sets)
		for _, set := range sk.Sets {
			s.Bytes += int64(len(set)) * int64(unsafeNodeIDSize)
		}
	}
	return s
}

// approxSketch snapshots the tier's pool for persistence (nil when the
// tier holds nothing, keeping sketchless snapshots at version 3).
func (m *Model) approxSketch() *core.RRSketch {
	t := &m.approx
	t.mu.Lock()
	defer t.mu.Unlock()
	if c := t.coll.Load(); c != nil {
		return &core.RRSketch{Seed: c.Seed(), Roots: c.Roots(), Sets: c.Sets()}
	}
	// A restored sketch not yet queried still carries forward.
	return t.restored
}

const unsafeNodeIDSize = 4 // sizeof(graph.NodeID); used only for stats
