package credist

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"credist/internal/celf"
	"credist/internal/core"
	"credist/internal/seedsel"
)

// Objective describes a campaign-shaped query against a model: who counts
// (a target audience, uniform or weighted), when they count (a time
// window from each action's start), what seeds cost (per-node costs under
// a total budget), and which rival seeds are already committed (blocked).
// The zero value is the default objective — the paper's single global
// sigma_cd — and every evaluation path routes it through the exact
// pre-objective code, so default answers are bit-identical to a build
// without the objective layer; non-default answers are bit-identical
// across worker and partition counts.
//
// Audience, window, and blocked change what a seed set is *worth* and
// apply to SpreadObj, GainsObj, and SelectSeedsObj alike. Costs and
// Budget change which seeds get *picked* and apply only to selection;
// SpreadObj and GainsObj reject them.
type Objective struct {
	// Audience restricts the objective to these users, each with weight 1
	// (everyone else weighs 0). Mutually exclusive with Weights.
	Audience []NodeID
	// Weights gives an explicit per-user audience weight vector covering
	// the whole universe; entries must be finite and non-negative.
	Weights []float64
	// Windowed enables the time window [0, Window]: credit for a
	// participation later than Window after its action's first
	// participation counts for nothing. Window is in the action log's
	// time units and must be finite and non-negative.
	Windowed bool
	Window   float64
	// Costs gives per-user seeding costs (finite, positive, covering the
	// universe); nil means unit costs. With costs, selection orders
	// candidates by gain per unit cost.
	Costs []float64
	// Budget caps the selection's total seed cost; 0 means unlimited.
	// Under nil Costs a positive budget is a seed-count cap.
	Budget float64
	// Blocked is a rival's committed seed set: excluded from selection,
	// and spreads/gains are marginal over it (sigma(S | Blocked)).
	Blocked []NodeID
}

// IsDefault reports whether o is the default objective across every
// dimension — the zero value, for which all Obj entry points take the
// exact pre-objective code paths.
func (o *Objective) IsDefault() bool {
	return o == nil || (o.Audience == nil && o.Weights == nil && !o.Windowed &&
		o.Costs == nil && o.Budget == 0 && len(o.Blocked) == 0)
}

// evalDefault reports whether the objective's evaluation dimensions —
// audience, window, blocked — are default; costs and budget do not
// change what a fixed seed set is worth.
func (o *Objective) evalDefault() bool {
	return o == nil || (o.Audience == nil && o.Weights == nil && !o.Windowed && len(o.Blocked) == 0)
}

// checkIDs rejects out-of-universe node ids with an error naming the
// first offender, so malformed requests fail before reaching an engine
// (where a routing miss is a panic).
func checkIDs(kind string, ids []NodeID, numUsers int) error {
	for _, x := range ids {
		if int(x) < 0 || int(x) >= numUsers {
			return fmt.Errorf("credist: %s %d outside the universe [0,%d)", kind, x, numUsers)
		}
	}
	return nil
}

// validate enforces the objective's structural rules against a universe
// size; selection reports whether costs/budget are legal in this context.
func (o *Objective) validate(numUsers int, selection bool) error {
	if o == nil {
		return nil
	}
	if o.Audience != nil && o.Weights != nil {
		return fmt.Errorf("credist: objective sets both an audience and explicit weights")
	}
	if err := checkIDs("audience user", o.Audience, numUsers); err != nil {
		return err
	}
	if o.Weights != nil && len(o.Weights) != numUsers {
		return fmt.Errorf("credist: objective weights cover %d users, universe has %d", len(o.Weights), numUsers)
	}
	for u, w := range o.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return fmt.Errorf("credist: objective weight %g for user %d (want finite and non-negative)", w, u)
		}
	}
	if o.Windowed && (math.IsNaN(o.Window) || math.IsInf(o.Window, 0) || o.Window < 0) {
		return fmt.Errorf("credist: objective window %g (want finite and non-negative)", o.Window)
	}
	if err := checkIDs("blocked user", o.Blocked, numUsers); err != nil {
		return err
	}
	if !selection && (o.Costs != nil || o.Budget != 0) {
		return fmt.Errorf("credist: costs and budget apply to seed selection, not spread or gain evaluation")
	}
	if o.Costs != nil && len(o.Costs) != numUsers {
		return fmt.Errorf("credist: objective costs cover %d users, universe has %d", len(o.Costs), numUsers)
	}
	for u, c := range o.Costs {
		if math.IsNaN(c) || math.IsInf(c, 0) || c <= 0 {
			return fmt.Errorf("credist: objective cost %g for user %d (want finite and positive)", c, u)
		}
	}
	if math.IsNaN(o.Budget) || math.IsInf(o.Budget, 0) || o.Budget < 0 {
		return fmt.Errorf("credist: objective budget %g (want finite and non-negative)", o.Budget)
	}
	return nil
}

// coreObjective validates o and lowers its evaluation dimensions to the
// core representation, attaching the model's cached delay index when the
// window needs one. The result is nil (the core default) whenever
// audience and window are default — blocked, costs, and budget live
// above the core layer.
func (m *Model) coreObjective(o *Objective, selection bool) (*core.Objective, error) {
	if err := o.validate(m.ds.Graph.NumNodes(), selection); err != nil {
		return nil, err
	}
	if o == nil || (o.Audience == nil && o.Weights == nil && !o.Windowed) {
		return nil, nil
	}
	cobj := &core.Objective{}
	switch {
	case o.Audience != nil:
		w := make([]float64, m.ds.Graph.NumNodes())
		for _, u := range o.Audience {
			w[u] = 1
		}
		cobj.Weights = w
	case o.Weights != nil:
		cobj.Weights = o.Weights
	}
	if o.Windowed {
		cobj.Windowed = true
		cobj.Tau = o.Window
		cobj.Delays = m.delays()
	}
	return cobj, nil
}

// SpreadObj predicts the objective spread sigma_obj(S), conditional on
// the objective's blocked rival set when one is present:
// sigma_obj(S | R) = sigma_obj(R+S) - sigma_obj(R), both terms evaluated
// on the exact per-action credit propagations. The default objective is
// exactly Spread, bit for bit. Costs and budget are rejected here.
func (m *Model) SpreadObj(seeds []NodeID, o *Objective) (float64, error) {
	cobj, err := m.coreObjective(o, false)
	if err != nil {
		return 0, err
	}
	if err := checkIDs("seed", seeds, m.ds.Graph.NumNodes()); err != nil {
		return 0, err
	}
	if o.evalDefault() {
		return m.Spread(seeds), nil
	}
	ev := m.eval()
	if o == nil || len(o.Blocked) == 0 {
		return ev.SpreadObj(seeds, cobj), nil
	}
	union := make([]NodeID, 0, len(o.Blocked)+len(seeds))
	union = append(append(union, o.Blocked...), seeds...)
	return ev.SpreadObj(union, cobj) - ev.SpreadObj(o.Blocked, cobj), nil
}

// GainsObj is Gains under an objective: each candidate's marginal
// objective gain against the base seed set, with the objective's blocked
// rivals committed first so every gain is marginal over the rival set
// too. The default objective is exactly Gains, bit for bit. Costs and
// budget are rejected here.
func (m *Model) GainsObj(base, candidates []NodeID, o *Objective) ([]float64, error) {
	cobj, err := m.coreObjective(o, false)
	if err != nil {
		return nil, err
	}
	n := m.ds.Graph.NumNodes()
	if err := checkIDs("seed", base, n); err != nil {
		return nil, err
	}
	if err := checkIDs("candidate", candidates, n); err != nil {
		return nil, err
	}
	if o.evalDefault() {
		return m.Gains(base, candidates), nil
	}
	p := m.NewPlanner()
	seen := make(map[NodeID]bool, len(o.Blocked)+len(base))
	for _, s := range o.Blocked {
		if !seen[s] {
			seen[s] = true
			p.Add(s)
		}
	}
	for _, s := range base {
		if !seen[s] {
			seen[s] = true
			p.Add(s)
		}
	}
	out := make([]float64, len(candidates))
	fanObjGains(p.eng.Workers(), len(candidates), func(i int) {
		out[i] = p.eng.GainObj(candidates[i], cobj)
	})
	return out, nil
}

// fanObjGains prices n candidates over the engine's worker knob (0 means
// GOMAXPROCS, matching the scan and the CELF fan-out). GainObj, like
// Gain, is read-only between Adds (the ConcurrentGain marker), and every
// result is written by index from an independent evaluation, so the
// floats are identical at every worker count.
func fanObjGains(workers, n int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// GainsObjOn is GainsObj evaluated over a caller-supplied scanned planner
// — a serving layer's (possibly ingest-extended) base — instead of the
// model's lazy base, whose first use for an ingest-grown model would be a
// second from-scratch scan of the combined log. The planner is never
// mutated: commits go to a clone, and a commit-free call reads the
// planner directly (GainObj, like Gain, is read-only).
func (m *Model) GainsObjOn(p *Planner, base, candidates []NodeID, o *Objective) ([]float64, error) {
	cobj, err := m.coreObjective(o, false)
	if err != nil {
		return nil, err
	}
	n := m.ds.Graph.NumNodes()
	if err := checkIDs("seed", base, n); err != nil {
		return nil, err
	}
	if err := checkIDs("candidate", candidates, n); err != nil {
		return nil, err
	}
	var blocked []NodeID
	if o != nil {
		blocked = o.Blocked
	}
	work := p
	if len(base) > 0 || len(blocked) > 0 {
		work = p.Clone()
		seen := make(map[NodeID]bool, len(blocked)+len(base))
		for _, s := range blocked {
			if !seen[s] {
				seen[s] = true
				work.Add(s)
			}
		}
		for _, s := range base {
			if !seen[s] {
				seen[s] = true
				work.Add(s)
			}
		}
	}
	out := make([]float64, len(candidates))
	fanObjGains(work.eng.Workers(), len(candidates), func(i int) {
		out[i] = work.eng.GainObj(candidates[i], cobj)
	})
	return out, nil
}

// SelectSeedsObjOn is SelectSeedsObj run over a clone of a caller-supplied
// planner (never the receiver itself). Unlike SelectSeedsObj it does not
// route the default objective anywhere special — it always runs a fresh
// one-shot selection — because its caller (the serving layer) routes
// default requests to its memoized growable selection before coming here.
func (m *Model) SelectSeedsObjOn(p *Planner, k int, o *Objective) (seedsel.Result, error) {
	cobj, err := m.coreObjective(o, true)
	if err != nil {
		return seedsel.Result{}, err
	}
	var blocked, costs = []NodeID(nil), []float64(nil)
	budget := 0.0
	if o != nil {
		blocked, costs, budget = o.Blocked, o.Costs, o.Budget
	}
	work := p.Clone()
	seen := make(map[NodeID]bool, len(blocked))
	for _, s := range blocked {
		if !seen[s] {
			seen[s] = true
			work.Add(s)
		}
	}
	opts := celf.Options{Workers: work.eng.Workers(), Costs: costs, Budget: budget, Blocked: blocked}
	if cobj == nil {
		return celf.Run(work.eng, k, opts), nil
	}
	return celf.Run(objEstimator{eng: work.eng, obj: cobj}, k, opts), nil
}

// objEstimator wraps a planner engine so CELF prices candidates under an
// objective. Only Gain changes — seed commits are objective-independent,
// which is what lets the selection machinery (lazy-forward heap,
// copy-on-write clones, parallel first pass) run unchanged.
type objEstimator struct {
	eng *core.Engine
	obj *core.Objective
}

func (e objEstimator) NumNodes() int         { return e.eng.NumNodes() }
func (e objEstimator) Gain(x NodeID) float64 { return e.eng.GainObj(x, e.obj) }
func (e objEstimator) Add(x NodeID)          { e.eng.Add(x) }

// ConcurrentGain marks Gain as safe between Adds: GainObj, like Gain, is
// read-only. Compile-time marker, never called.
func (e objEstimator) ConcurrentGain() {}

// SelectSeedsObj runs seed selection under the full objective: audience
// weights and window reprice every marginal gain, blocked rivals are
// committed up front (and excluded from the pool), and costs/budget turn
// the run into budgeted cost-benefit CELF with the best-affordable-
// singleton fallback (the (1-1/sqrt(e))-approximate rule). The default
// objective is exactly Selection, bit for bit; non-default selections
// are bit-identical at every worker count.
func (m *Model) SelectSeedsObj(k int, o *Objective) (seedsel.Result, error) {
	cobj, err := m.coreObjective(o, true)
	if err != nil {
		return seedsel.Result{}, err
	}
	if o.IsDefault() {
		return m.selection(k), nil
	}
	p := m.NewPlanner()
	seen := make(map[NodeID]bool, len(o.Blocked))
	for _, s := range o.Blocked {
		if !seen[s] {
			seen[s] = true
			p.Add(s)
		}
	}
	opts := celf.Options{Workers: p.eng.Workers(), Costs: o.Costs, Budget: o.Budget, Blocked: o.Blocked}
	if cobj == nil {
		return celf.Run(p.eng, k, opts), nil
	}
	return celf.Run(objEstimator{eng: p.eng, obj: cobj}, k, opts), nil
}

// SpreadObj is Model.SpreadObj served scatter-gather: the conditional
// objective spread as a telescoped sum of owner-priced objective gains.
// Bit-identical across partition and worker counts; the default
// objective routes through Spread. m supplies the objective context
// (universe, delay index) and must be the model these partitions serve.
func (pp *PartitionedPlanner) SpreadObj(m *Model, seeds []NodeID, o *Objective) (float64, error) {
	cobj, err := m.coreObjective(o, false)
	if err != nil {
		return 0, err
	}
	var blocked []NodeID
	if o != nil {
		blocked = o.Blocked
	}
	return pp.coord.SpreadObj(seeds, cobj, blocked)
}

// GainsObj is Model.GainsObj served scatter-gather, every candidate
// priced by its row's owning partition. Bit-identical across partition
// and worker counts; the default objective routes through Gains.
func (pp *PartitionedPlanner) GainsObj(m *Model, base, candidates []NodeID, o *Objective) ([]float64, error) {
	cobj, err := m.coreObjective(o, false)
	if err != nil {
		return nil, err
	}
	var blocked []NodeID
	if o != nil {
		blocked = o.Blocked
	}
	return pp.coord.GainsObj(base, candidates, cobj, blocked)
}

// SelectSeedsObj is Model.SelectSeedsObj served scatter-gather over
// fresh partition clones. Seeds and gains are bit-identical to the
// single-engine objective selection at every partition count.
func (pp *PartitionedPlanner) SelectSeedsObj(m *Model, k int, o *Objective) (seedsel.Result, error) {
	cobj, err := m.coreObjective(o, true)
	if err != nil {
		return seedsel.Result{}, err
	}
	var opts celf.Options
	if o != nil {
		opts = celf.Options{Costs: o.Costs, Budget: o.Budget, Blocked: o.Blocked}
	}
	return pp.coord.SelectObj(cobj, k, opts), nil
}
