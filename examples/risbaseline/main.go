// RIS baseline: contrast the paper's data-based CD selection with reverse
// influence sampling (Borgs et al. 2014), the technique that later came to
// dominate model-based influence maximization. Both are fast; the
// interesting question is what each one optimizes. RIS maximizes spread
// under the learned IC model; CD maximizes historically-observed credit.
// When the learned model is wrong (as the paper argues it usually is),
// the two disagree — and each looks best under its own yardstick.
//
//	go run ./examples/risbaseline
package main

import (
	"fmt"
	"time"

	"credist"
	"credist/internal/cascade"
	"credist/internal/core"
	"credist/internal/datagen"
	"credist/internal/probs"
	"credist/internal/ris"
)

func main() {
	cfg := datagen.FlixsterSmall()
	cfg.NumUsers = 1500
	cfg.NumActions = 1200
	ds := credist.Generate(cfg)
	fmt.Printf("dataset: %d users, %d propagations\n\n", ds.NumUsers(), ds.Stats().NumActions)

	const k = 15

	// CD: learn credit from traces, select with the engine.
	t0 := time.Now()
	model := credist.Learn(ds, credist.Options{Lambda: 0.001})
	cdSeeds, _ := model.SelectSeeds(k)
	cdTime := time.Since(t0)

	// RIS: learn IC probabilities with EM, sample RR sets, greedy cover.
	t1 := time.Now()
	weights := probs.LearnEMIC(ds.Graph, ds.Log, probs.EMOptions{})
	samples := ris.RecommendedSamples(ds.NumUsers(), k, 0.2)
	col := ris.Collect(ris.NewSampler(weights, cascade.IC), samples, 7)
	risSeeds, _ := col.SelectSeeds(k)
	risTime := time.Since(t1)

	fmt.Printf("CD  selected %d seeds in %v\n", len(cdSeeds), cdTime.Round(time.Millisecond))
	fmt.Printf("RIS selected %d seeds in %v (%d RR samples)\n\n",
		len(risSeeds), risTime.Round(time.Millisecond), samples)

	// Cross-score: each seed set under both objectives.
	cdScorer := core.NewEvaluator(ds.Graph, ds.Log, core.LearnTimeAware(ds.Graph, ds.Log))
	fmt.Printf("%-12s %14s %14s\n", "", "CD spread", "IC-RIS spread")
	fmt.Printf("%-12s %14.1f %14.1f\n", "CD seeds", cdScorer.Spread(cdSeeds), col.EstimateSpread(cdSeeds))
	fmt.Printf("%-12s %14.1f %14.1f\n\n", "RIS seeds", cdScorer.Spread(risSeeds), col.EstimateSpread(risSeeds))

	overlap := 0
	in := make(map[credist.NodeID]bool, k)
	for _, s := range cdSeeds {
		in[s] = true
	}
	for _, s := range risSeeds {
		if in[s] {
			overlap++
		}
	}
	fmt.Printf("seed overlap: %d/%d\n", overlap, k)
	fmt.Println("\nEach algorithm wins under its own objective — the paper's closing")
	fmt.Println("point: comparing influence models needs model-neutral benchmarks.")
}
