// Viral marketing: the paper's motivating scenario. A movie platform
// (Flixster-like data: users rate movies, ratings propagate along
// friendships) wants to hand out k free passes so that as many users as
// possible end up rating the movie. We compare the budgets' reach when
// seeds are chosen by the data-based CD model versus structural
// heuristics, and show why degree alone misleads.
//
//	go run ./examples/viralmarketing
package main

import (
	"fmt"

	"credist"
	"credist/internal/datagen"
)

func main() {
	cfg := datagen.FlixsterSmall()
	cfg.NumUsers = 1500 // keep the demo snappy
	cfg.NumActions = 1200
	ds := credist.Generate(cfg)
	st := ds.Stats()
	fmt.Printf("movie community: %d users, %d rating propagations, %d ratings\n\n",
		ds.NumUsers(), st.NumActions, st.NumTuples)

	// Learn from history; in production you would learn on everything you
	// have. (The spread-prediction example shows the held-out protocol.)
	model := credist.Learn(ds, credist.Options{Lambda: 0.001})

	for _, budget := range []int{5, 10, 25} {
		cdSeeds, _ := model.SelectSeeds(budget)
		hdSeeds := credist.HighDegreeSeeds(ds, budget)
		prSeeds := credist.PageRankSeeds(ds, budget)

		fmt.Printf("budget k=%d free passes:\n", budget)
		fmt.Printf("  %-22s reach %8.1f users\n", "credit distribution", model.Spread(cdSeeds))
		fmt.Printf("  %-22s reach %8.1f users\n", "high degree", model.Spread(hdSeeds))
		fmt.Printf("  %-22s reach %8.1f users\n", "pagerank", model.Spread(prSeeds))
		fmt.Printf("  overlap CD∩HighDeg %d/%d, CD∩PageRank %d/%d\n\n",
			overlap(cdSeeds, hdSeeds), budget, overlap(cdSeeds, prSeeds), budget)
	}

	// The paper's Section 6 post-mortem: highly connected users who are
	// rarely active make poor seeds. Show activity of each choice.
	cdSeeds, _ := model.SelectSeeds(5)
	hdSeeds := credist.HighDegreeSeeds(ds, 5)
	fmt.Println("why the heuristics mislead — actions performed per seed:")
	fmt.Printf("  CD seeds:       %v\n", actionCounts(ds, cdSeeds))
	fmt.Printf("  HighDeg seeds:  %v\n", actionCounts(ds, hdSeeds))
}

func overlap(a, b []credist.NodeID) int {
	in := make(map[credist.NodeID]bool, len(a))
	for _, u := range a {
		in[u] = true
	}
	n := 0
	for _, u := range b {
		if in[u] {
			n++
		}
	}
	return n
}

func actionCounts(ds *credist.Dataset, seeds []credist.NodeID) []int {
	out := make([]int, len(seeds))
	for i, s := range seeds {
		out[i] = ds.Log.ActionCount(s)
	}
	return out
}
