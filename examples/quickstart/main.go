// Quickstart: synthesize a small social network with propagation traces,
// learn a credit-distribution model, and pick the five most influential
// users.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"credist"
	"credist/internal/datagen"
)

func main() {
	// A small synthetic community: 500 users, 300 observed propagations.
	ds := credist.Generate(datagen.Config{
		Name:                 "quickstart",
		NumUsers:             500,
		OutDegree:            5,
		Reciprocity:          0.6,
		NumActions:           300,
		MeanInfluence:        0.08,
		MeanDelay:            10,
		SpontaneousPerAction: 1,
		Seed:                 42,
	})
	st := ds.Stats()
	fmt.Printf("dataset: %d users, %d propagations, %d action-log tuples\n",
		ds.NumUsers(), st.NumActions, st.NumTuples)

	// Learn the CD model from the traces (time-aware direct credit, the
	// paper's Eq. 9) and select seeds with greedy+CELF.
	model := credist.Learn(ds, credist.Options{Lambda: 0.001})
	seeds, gains := model.SelectSeeds(5)
	if len(seeds) == 0 {
		log.Fatal("no seeds selected")
	}

	fmt.Println("\ntop influencers under the credit-distribution model:")
	total := 0.0
	for i, s := range seeds {
		total += gains[i]
		fmt.Printf("  #%d user %4d  marginal gain %6.2f  influenceability %.2f\n",
			i+1, s, gains[i], model.Influenceability(s))
	}
	fmt.Printf("\npredicted spread of all %d seeds: %.2f users\n", len(seeds), model.Spread(seeds))

	// Contrast with the naive high-degree heuristic.
	hd := credist.HighDegreeSeeds(ds, 5)
	fmt.Printf("high-degree baseline picks %v with predicted spread %.2f\n",
		hd, model.Spread(hd))
}
