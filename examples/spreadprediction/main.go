// Spread prediction: the paper's accuracy protocol (Section 3,
// Experiment 2; Section 6, Figure 3). Hold out 20% of the propagations,
// learn the CD model on the other 80%, then for each held-out propagation
// predict the spread of its initiator set and compare with how far the
// action actually spread.
//
//	go run ./examples/spreadprediction
package main

import (
	"fmt"
	"math"
	"sort"

	"credist"
	"credist/internal/datagen"
)

func main() {
	cfg := datagen.FlickrSmall()
	cfg.NumUsers = 1500
	cfg.NumActions = 1200
	ds := credist.Generate(cfg)

	train, test := ds.Split()
	fmt.Printf("dataset %s: %d training propagations, %d held out\n\n",
		ds.Name, train.Stats().NumActions, test.Stats().NumActions)

	model := credist.Learn(train, credist.Options{})

	type prediction struct {
		actual    int
		predicted float64
	}
	var preds []prediction
	for a := 0; a < test.Stats().NumActions; a++ {
		inits := credist.Initiators(test, credist.ActionID(a))
		if len(inits) == 0 {
			continue
		}
		actual := 0
		for _, tup := range test.Log.Action(credist.ActionID(a)) {
			_ = tup
			actual++
		}
		preds = append(preds, prediction{
			actual:    actual,
			predicted: model.Spread(inits),
		})
	}

	// Overall accuracy.
	sumSq, sumAbs := 0.0, 0.0
	for _, p := range preds {
		d := p.predicted - float64(p.actual)
		sumSq += d * d
		sumAbs += math.Abs(d)
	}
	n := float64(len(preds))
	fmt.Printf("predicted %d held-out propagations\n", len(preds))
	fmt.Printf("RMSE           %.2f\n", math.Sqrt(sumSq/n))
	fmt.Printf("mean |error|   %.2f\n\n", sumAbs/n)

	// Capture curve (Figure 4 flavor): fraction within error budgets.
	absErrs := make([]float64, len(preds))
	for i, p := range preds {
		absErrs[i] = math.Abs(p.predicted - float64(p.actual))
	}
	sort.Float64s(absErrs)
	for _, budget := range []float64{1, 2, 5, 10, 20} {
		idx := sort.SearchFloat64s(absErrs, budget+1e-9)
		fmt.Printf("within ±%-4.0f : %5.1f%% of propagations\n",
			budget, 100*float64(idx)/n)
	}

	// A few sample predictions, largest actual spreads first.
	sort.Slice(preds, func(i, j int) bool { return preds[i].actual > preds[j].actual })
	fmt.Println("\nlargest held-out propagations:")
	for i := 0; i < 5 && i < len(preds); i++ {
		fmt.Printf("  actual %4d   predicted %7.1f\n", preds[i].actual, preds[i].predicted)
	}
}
