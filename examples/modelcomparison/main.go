// Model comparison: the ablation the paper motivates in Section 4 —
// equal-split direct credit (gamma = 1/d_in) versus the time-aware rule
// of Eq. (9), which decays credit with propagation delay and scales it by
// each user's learned influenceability. We compare the seed sets they
// choose, their agreement, and how the truncation threshold lambda trades
// selection quality for memory.
//
//	go run ./examples/modelcomparison
package main

import (
	"fmt"

	"credist"
	"credist/internal/datagen"
)

func main() {
	cfg := datagen.FlixsterSmall()
	cfg.NumUsers = 1500
	cfg.NumActions = 1000
	ds := credist.Generate(cfg)
	fmt.Printf("dataset: %d users, %d propagations\n\n", ds.NumUsers(), ds.Stats().NumActions)

	const k = 20
	timeAware := credist.Learn(ds, credist.Options{Lambda: 0.001})
	simple := credist.Learn(ds, credist.Options{Lambda: 0.001, SimpleCredit: true})

	taSeeds, _ := timeAware.SelectSeeds(k)
	simSeeds, _ := simple.SelectSeeds(k)

	fmt.Printf("time-aware credit seeds: %v\n", taSeeds[:10])
	fmt.Printf("simple credit seeds:     %v\n", simSeeds[:10])
	fmt.Printf("overlap: %d/%d\n\n", overlap(taSeeds, simSeeds), k)

	// Cross-score: each model rates the other's selection. The time-aware
	// model is the closer match to how influence actually decays in the
	// generator, so its seeds should hold up better under scrutiny.
	fmt.Println("cross-scored predicted spreads:")
	fmt.Printf("  %-18s %12s %12s\n", "", "TA scorer", "simple scorer")
	fmt.Printf("  %-18s %12.1f %12.1f\n", "TA seeds", timeAware.Spread(taSeeds), simple.Spread(taSeeds))
	fmt.Printf("  %-18s %12.1f %12.1f\n\n", "simple seeds", timeAware.Spread(simSeeds), simple.Spread(simSeeds))

	// Truncation sweep (Table 4 flavor): coarser lambda means fewer UC
	// entries and faster selection, at some cost in seed quality.
	fmt.Println("truncation threshold sweep (k=20, time-aware credit):")
	ref, _ := credist.Learn(ds, credist.Options{Lambda: 0.0001}).SelectSeeds(k)
	for _, lambda := range []float64{0.1, 0.01, 0.001, 0.0001} {
		m := credist.Learn(ds, credist.Options{Lambda: lambda})
		seeds, _ := m.SelectSeeds(k)
		fmt.Printf("  lambda %-7g spread %8.1f   true seeds recovered %2d/%d\n",
			lambda, timeAware.Spread(seeds), overlap(seeds, ref), k)
	}
}

func overlap(a, b []credist.NodeID) int {
	in := make(map[credist.NodeID]bool, len(a))
	for _, u := range a {
		in[u] = true
	}
	n := 0
	for _, u := range b {
		if in[u] {
			n++
		}
	}
	return n
}
