package credist

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestFacadeExplainSeedMatchesGains pins the why-seed contract at the
// facade: every explained gain is bit-for-bit the batched Gains value for
// the same candidate, and the path list respects the top bound.
func TestFacadeExplainSeedMatchesGains(t *testing.T) {
	ds := Generate(tinyConfig(21))
	m := Learn(ds, Options{Lambda: 0.001})
	cands := []NodeID{2, 7, 19, 40, 111}
	gains := m.Gains(nil, cands)
	for i, c := range cands {
		ex := m.ExplainSeed(c, 8)
		if ex.Node != c || ex.Gain != gains[i] {
			t.Errorf("ExplainSeed(%d).Gain = %b, Gains = %b", c, ex.Gain, gains[i])
		}
		if len(ex.Paths) > 8 || len(ex.Paths) > ex.TotalPaths {
			t.Errorf("ExplainSeed(%d): %d paths of %d with top=8", c, len(ex.Paths), ex.TotalPaths)
		}
	}
	// Against a live planner: committed seeds discount the explanation
	// exactly as they discount Gain.
	p := m.NewPlanner()
	p.Add(cands[0])
	for _, c := range cands[1:] {
		ex := m.ExplainSeedOn(p, c, 8)
		if want := p.Gain(c); ex.Gain != want {
			t.Errorf("ExplainSeedOn(%d) after commit = %b, Gain = %b", c, ex.Gain, want)
		}
	}
}

// TestFacadeExplainReachSumsToTotal pins the decomposition rule: the
// per-seed shares, folded in input order, are bit-exactly the Total.
func TestFacadeExplainReachSumsToTotal(t *testing.T) {
	ds := Generate(tinyConfig(24))
	m := Learn(ds, Options{Lambda: 0.001})
	seeds := []NodeID{1, 5, 9, 40}
	for _, v := range []NodeID{3, 14, 77} {
		ex := m.ExplainReach(seeds, v, 10)
		if ex.Target != v || len(ex.PerSeed) != len(seeds) {
			t.Fatalf("ExplainReach(%d) shape: target %d, %d shares", v, ex.Target, len(ex.PerSeed))
		}
		sum := 0.0
		for i, ps := range ex.PerSeed {
			if ps.Seed != seeds[i] {
				t.Fatalf("share %d names seed %d, want %d", i, ps.Seed, seeds[i])
			}
			sum += ps.Share
		}
		if sum != ex.Total {
			t.Errorf("target %d: shares fold to %b, Total = %b", v, sum, ex.Total)
		}
	}
}

// TestFacadeProvSnapshotRestore pins the persistence story: a model saved
// with a built index restores it from the version-6 snapshot and explains
// identically with zero index builds, on both the heap and mmap loaders.
func TestFacadeProvSnapshotRestore(t *testing.T) {
	ds := Generate(tinyConfig(22))
	m := Learn(ds, Options{Lambda: 0.001})
	st := m.BuildProvIndex()
	if st.Builds != 1 || st.Pairs == 0 || st.Entries == 0 || st.Bytes == 0 {
		t.Fatalf("BuildProvIndex stats = %+v, want one build of a non-empty index", st)
	}
	seeds := []NodeID{1, 5, 9}
	v := NodeID(14)
	wantReach := m.ExplainReach(seeds, v, 10)
	wantSeedEx := m.ExplainSeed(7, 10)

	path := filepath.Join(t.TempDir(), "model.bin")
	if err := m.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadModel(ds, path, Options{})
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	if got := loaded.ExplainReach(seeds, v, 10); !reflect.DeepEqual(wantReach, got) {
		t.Errorf("restored ExplainReach = %+v, want %+v", got, wantReach)
	}
	if got := loaded.ExplainSeed(7, 10); !reflect.DeepEqual(wantSeedEx, got) {
		t.Errorf("restored ExplainSeed = %+v, want %+v", got, wantSeedEx)
	}
	lst := loaded.ProvStats()
	if lst.Builds != 0 {
		t.Errorf("restored model paid %d index builds, want 0", lst.Builds)
	}
	if lst.Pairs != st.Pairs || lst.Entries != st.Entries {
		t.Errorf("restored index shape %d/%d, want %d/%d", lst.Pairs, lst.Entries, st.Pairs, st.Entries)
	}

	mm, err := LoadModelMapped(ds, path, Options{})
	if err != nil {
		t.Fatalf("LoadModelMapped: %v", err)
	}
	if got := mm.ExplainReach(seeds, v, 10); !reflect.DeepEqual(wantReach, got) {
		t.Errorf("mapped ExplainReach = %+v, want %+v", got, wantReach)
	}
	if got := mm.ProvStats(); got.Builds != 0 || got.Pairs != st.Pairs {
		t.Errorf("mapped prov stats = %+v, want 0 builds and %d pairs", got, st.Pairs)
	}

	// A model saved without touching the tier stays at its previous
	// snapshot version and reloads with an empty tier.
	plain := Learn(ds, Options{Lambda: 0.001})
	path2 := filepath.Join(t.TempDir(), "plain.bin")
	if err := plain.Save(path2); err != nil {
		t.Fatalf("Save plain: %v", err)
	}
	loaded2, err := LoadModel(ds, path2, Options{})
	if err != nil {
		t.Fatalf("LoadModel plain: %v", err)
	}
	if got := loaded2.ProvStats(); got.Pairs != 0 || got.Builds != 0 {
		t.Errorf("index-less reload carries prov stats %+v", got)
	}
}

// TestFacadePartitionedExplainParity pins the scatter-gather answer to the
// single-engine one at partition counts {1, 4}: seed explanations come
// wholly from the owner, reach decompositions gather bit-identically.
func TestFacadePartitionedExplainParity(t *testing.T) {
	ds := Generate(tinyConfig(23))
	m := Learn(ds, Options{Lambda: 0.001})
	seeds := []NodeID{3, 11, 27, 90}
	v := NodeID(8)
	wantReach := m.ExplainReach(seeds, v, 12)
	cands := []NodeID{2, 9, 33, 150, 299}
	for _, nparts := range []int{1, 4} {
		pp, err := m.NewPlanner().Partition(nparts)
		if err != nil {
			t.Fatalf("Partition(%d): %v", nparts, err)
		}
		for _, c := range cands {
			want := m.ExplainSeed(c, 7)
			got, err := pp.ExplainSeed(c, 7)
			if err != nil {
				t.Fatalf("nparts=%d: ExplainSeed(%d): %v", nparts, c, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("nparts=%d: ExplainSeed(%d) = %+v, single engine %+v", nparts, c, got, want)
			}
		}
		got, err := pp.ExplainReach(seeds, v, 12)
		if err != nil {
			t.Fatalf("nparts=%d: ExplainReach: %v", nparts, err)
		}
		if !reflect.DeepEqual(wantReach, got) {
			t.Errorf("nparts=%d: ExplainReach = %+v, single engine %+v", nparts, got, wantReach)
		}
		if _, err := pp.ExplainSeed(NodeID(ds.NumUsers()), 3); err == nil {
			t.Errorf("nparts=%d: out-of-universe candidate accepted", nparts)
		}
		if _, err := pp.ExplainReach([]NodeID{0, NodeID(ds.NumUsers())}, v, 3); err == nil {
			t.Errorf("nparts=%d: out-of-universe seed accepted", nparts)
		}
	}
}
