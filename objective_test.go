package credist

import (
	"math"
	"strings"
	"testing"
)

// objTestModel is a small learned model plus a split of its users into a
// target audience and a rival seed set, shared by the facade objective
// tests.
func objTestModel(t *testing.T) (*Model, *Objective) {
	t.Helper()
	ds := Generate(tinyConfig(11))
	m := Learn(ds, Options{Lambda: 0.001})
	audience := make([]NodeID, 0, ds.NumUsers()/3)
	for u := 0; u < ds.NumUsers(); u += 3 {
		audience = append(audience, NodeID(u))
	}
	return m, &Objective{Audience: audience, Windowed: true, Window: 12}
}

// TestObjectiveFacadeDefaultBitIdentical pins the facade brick of the
// determinism wall: the Obj entry points under a nil (and zero)
// objective are the pre-objective entry points, bit for bit.
func TestObjectiveFacadeDefaultBitIdentical(t *testing.T) {
	ds := Generate(tinyConfig(12))
	m := Learn(ds, Options{Lambda: 0.001})
	seeds, _ := m.SelectSeeds(5)
	candidates := make([]NodeID, 40)
	for i := range candidates {
		candidates[i] = NodeID(i * 7)
	}
	for _, o := range []*Objective{nil, {}} {
		spread, err := m.SpreadObj(seeds, o)
		if err != nil {
			t.Fatalf("SpreadObj: %v", err)
		}
		if want := m.Spread(seeds); spread != want {
			t.Fatalf("default SpreadObj = %b, Spread = %b", spread, want)
		}
		gains, err := m.GainsObj(seeds[:2], candidates, o)
		if err != nil {
			t.Fatalf("GainsObj: %v", err)
		}
		want := m.Gains(seeds[:2], candidates)
		for i := range gains {
			if gains[i] != want[i] {
				t.Fatalf("default GainsObj[%d] = %b, Gains = %b", i, gains[i], want[i])
			}
		}
		res, err := m.SelectSeedsObj(5, o)
		if err != nil {
			t.Fatalf("SelectSeedsObj: %v", err)
		}
		ref := m.Selection(5)
		for i := range ref.Seeds {
			if res.Seeds[i] != ref.Seeds[i] || res.Gains[i] != ref.Gains[i] {
				t.Fatalf("default SelectSeedsObj seed %d: (%d, %b) vs (%d, %b)",
					i, res.Seeds[i], res.Gains[i], ref.Seeds[i], ref.Gains[i])
			}
		}
	}
}

// TestObjectiveFacadePartitionedParity pins that a targeted, windowed,
// blocked objective answers bit-identically whether served by the single
// engine or scatter-gather at partition counts {1, 4} — gains and seeds
// exactly, the two spread paths (per-action evaluator vs telescoped
// gains) to within arithmetic reassociation.
func TestObjectiveFacadePartitionedParity(t *testing.T) {
	m, obj := objTestModel(t)
	res, err := m.SelectSeedsObj(6, obj)
	if err != nil {
		t.Fatalf("SelectSeedsObj: %v", err)
	}
	if len(res.Seeds) != 6 {
		t.Fatalf("objective selection found %d seeds", len(res.Seeds))
	}
	obj.Blocked = res.Seeds[:2]
	wantSel, err := m.SelectSeedsObj(4, obj)
	if err != nil {
		t.Fatalf("SelectSeedsObj(blocked): %v", err)
	}
	candidates := make([]NodeID, 50)
	for i := range candidates {
		candidates[i] = NodeID(i * 5)
	}
	wantGains, err := m.GainsObj(nil, candidates, obj)
	if err != nil {
		t.Fatalf("GainsObj: %v", err)
	}
	wantSpread, err := m.SpreadObj(res.Seeds[2:], obj)
	if err != nil {
		t.Fatalf("SpreadObj: %v", err)
	}

	var teleSpread float64
	var haveTele bool
	for _, nparts := range []int{1, 4} {
		pp, err := m.NewPlanner().Partition(nparts)
		if err != nil {
			t.Fatalf("Partition(%d): %v", nparts, err)
		}
		sel, err := pp.SelectSeedsObj(m, 4, obj)
		if err != nil {
			t.Fatalf("nparts=%d: SelectSeedsObj: %v", nparts, err)
		}
		for i := range wantSel.Seeds {
			if sel.Seeds[i] != wantSel.Seeds[i] || sel.Gains[i] != wantSel.Gains[i] {
				t.Fatalf("nparts=%d: objective seed %d: (%d, %b) vs (%d, %b)",
					nparts, i, sel.Seeds[i], sel.Gains[i], wantSel.Seeds[i], wantSel.Gains[i])
			}
		}
		gains, err := pp.GainsObj(m, nil, candidates, obj)
		if err != nil {
			t.Fatalf("nparts=%d: GainsObj: %v", nparts, err)
		}
		for i := range gains {
			if gains[i] != wantGains[i] {
				t.Fatalf("nparts=%d: GainsObj[%d] = %b, single engine %b", nparts, i, gains[i], wantGains[i])
			}
		}
		spread, err := pp.SpreadObj(m, res.Seeds[2:], obj)
		if err != nil {
			t.Fatalf("nparts=%d: SpreadObj: %v", nparts, err)
		}
		// Bit-identical across partition counts; against the exact
		// evaluator only the lambda-truncation envelope holds.
		if !haveTele {
			teleSpread, haveTele = spread, true
		} else if spread != teleSpread {
			t.Fatalf("nparts=%d: telescoped SpreadObj not bit-identical: %b vs %b", nparts, spread, teleSpread)
		}
		if wantSpread < spread-1e-6 || wantSpread > spread*1.25+1 {
			t.Fatalf("nparts=%d: SpreadObj %g far from evaluator %g", nparts, spread, wantSpread)
		}
	}
}

// TestObjectiveBudgetedSelection pins the budgeted facade path: the
// selection respects the budget, never picks blocked or zero-weight
// work-free candidates beyond the cap, and a budget over unit costs is a
// seed count cap matching the unbudgeted prefix.
func TestObjectiveBudgetedSelection(t *testing.T) {
	m, obj := objTestModel(t)
	n := m.Dataset().NumUsers()
	costs := make([]float64, n)
	for u := range costs {
		costs[u] = 1 + float64(u%5)
	}
	obj.Costs = costs
	obj.Budget = 9
	res, err := m.SelectSeedsObj(20, obj)
	if err != nil {
		t.Fatalf("SelectSeedsObj: %v", err)
	}
	if len(res.Seeds) == 0 {
		t.Fatal("budgeted selection picked nothing")
	}
	spent := 0.0
	for _, s := range res.Seeds {
		spent += costs[s]
	}
	if spent > obj.Budget {
		t.Fatalf("selection spends %g over budget %g", spent, obj.Budget)
	}

	capped, err := m.SelectSeedsObj(10, &Objective{Budget: 3})
	if err != nil {
		t.Fatalf("SelectSeedsObj(count cap): %v", err)
	}
	free := m.Selection(10)
	if len(capped.Seeds) != 3 {
		t.Fatalf("budget 3 over unit costs selected %d seeds", len(capped.Seeds))
	}
	for i := range capped.Seeds {
		if capped.Seeds[i] != free.Seeds[i] || capped.Gains[i] != free.Gains[i] {
			t.Fatalf("count-capped prefix diverged at %d", i)
		}
	}
}

// TestObjectiveBlockedSelection pins the rival-set contract at the
// facade: blocked seeds never reappear, and the remaining selection's
// gain sum matches the conditional spread of its seeds.
func TestObjectiveBlockedSelection(t *testing.T) {
	ds := Generate(tinyConfig(13))
	m := Learn(ds, Options{Lambda: 0.001})
	rival, _ := m.SelectSeeds(3)
	obj := &Objective{Blocked: rival}
	res, err := m.SelectSeedsObj(6, obj)
	if err != nil {
		t.Fatalf("SelectSeedsObj: %v", err)
	}
	blocked := make(map[NodeID]bool)
	for _, r := range rival {
		blocked[r] = true
	}
	for _, s := range res.Seeds {
		if blocked[s] {
			t.Fatalf("blocked seed %d selected", s)
		}
	}
	cond, err := m.SpreadObj(res.Seeds, obj)
	if err != nil {
		t.Fatalf("SpreadObj: %v", err)
	}
	// The exact evaluator spread is at least the lambda-truncated engine's
	// telescoped estimate, and close to it (same envelope as
	// TestLearnSelectPredict).
	if cond < res.Spread()-1e-6 || cond > res.Spread()*1.25+1 {
		t.Fatalf("conditional spread %g far from telescoped gain sum %g", cond, res.Spread())
	}
}

// TestObjectiveValidationErrors pins the facade rejections serve's 400s
// map onto.
func TestObjectiveValidationErrors(t *testing.T) {
	m, _ := objTestModel(t)
	n := m.Dataset().NumUsers()
	cases := map[string]*Objective{
		"unknown audience id":  {Audience: []NodeID{NodeID(n)}},
		"unknown blocked id":   {Blocked: []NodeID{NodeID(n + 5)}},
		"negative window":      {Windowed: true, Window: -2},
		"nan window":           {Windowed: true, Window: math.NaN()},
		"audience and weights": {Audience: []NodeID{1}, Weights: make([]float64, n)},
		"short weights":        {Weights: []float64{1, 2}},
	}
	for name, o := range cases {
		if _, err := m.SpreadObj([]NodeID{1}, o); err == nil {
			t.Errorf("%s: SpreadObj accepted", name)
		}
		if _, err := m.SelectSeedsObj(3, o); err == nil {
			t.Errorf("%s: SelectSeedsObj accepted", name)
		}
	}
	selOnly := map[string]*Objective{
		"negative budget": {Budget: -4},
		"short costs":     {Costs: []float64{1}},
		"zero cost":       {Costs: make([]float64, n)},
	}
	for name, o := range selOnly {
		if _, err := m.SelectSeedsObj(3, o); err == nil {
			t.Errorf("%s: SelectSeedsObj accepted", name)
		}
	}
	if _, err := m.SpreadObj([]NodeID{1}, &Objective{Budget: 5}); err == nil ||
		!strings.Contains(err.Error(), "seed selection") {
		t.Errorf("budget on SpreadObj: err = %v, want selection-only rejection", err)
	}
	if _, err := m.GainsObj(nil, []NodeID{1}, &Objective{Costs: make([]float64, n)}); err == nil {
		t.Error("costs on GainsObj accepted")
	}
}

// TestGainsObjFanBitIdentical pins the batched objective gain fan-out:
// pricing the whole candidate list at once (workers = the engine's knob,
// default GOMAXPROCS) is bit-identical to pricing one candidate at a time
// (a length-1 batch clamps the fan to a single worker — the serial path).
func TestGainsObjFanBitIdentical(t *testing.T) {
	m, obj := objTestModel(t)
	obj.Blocked = []NodeID{2, 40}
	base := []NodeID{1, 8}
	candidates := make([]NodeID, 60)
	for i := range candidates {
		candidates[i] = NodeID(i * 4)
	}
	batched, err := m.GainsObj(base, candidates, obj)
	if err != nil {
		t.Fatalf("GainsObj: %v", err)
	}
	for i, c := range candidates {
		one, err := m.GainsObj(base, []NodeID{c}, obj)
		if err != nil {
			t.Fatalf("GainsObj(%d): %v", c, err)
		}
		if one[0] != batched[i] {
			t.Fatalf("candidate %d: serial %b, fanned %b", c, one[0], batched[i])
		}
	}
	// The caller-supplied-planner variant fans identically.
	p := m.NewPlanner()
	onPlanner, err := m.GainsObjOn(p, base, candidates, obj)
	if err != nil {
		t.Fatalf("GainsObjOn: %v", err)
	}
	for i := range batched {
		if onPlanner[i] != batched[i] {
			t.Fatalf("GainsObjOn[%d] = %b, GainsObj = %b", i, onPlanner[i], batched[i])
		}
	}
}

// TestSeedsBlockedOverlap pins the seeds∩blocked semantics: a seed the
// objective already blocks contributes exactly 0 marginal spread and gain
// — the objective conditions on the rival set, so re-seeding a rival's
// seed buys nothing — at partition counts {1, 4}.
func TestSeedsBlockedOverlap(t *testing.T) {
	m, obj := objTestModel(t)
	obj.Blocked = []NodeID{3, 9}
	x := NodeID(21)

	gains, err := m.GainsObj(nil, []NodeID{3, x, 9}, obj)
	if err != nil {
		t.Fatalf("GainsObj: %v", err)
	}
	if gains[0] != 0 || gains[2] != 0 {
		t.Fatalf("blocked candidates gained %b and %b, want exactly 0", gains[0], gains[2])
	}
	with, err := m.SpreadObj([]NodeID{3, x}, obj)
	if err != nil {
		t.Fatalf("SpreadObj(blocked seed): %v", err)
	}
	without, err := m.SpreadObj([]NodeID{x}, obj)
	if err != nil {
		t.Fatalf("SpreadObj: %v", err)
	}
	if with != without {
		t.Fatalf("blocked seed changed the conditional spread: %b vs %b", with, without)
	}
	for _, nparts := range []int{1, 4} {
		pp, err := m.NewPlanner().Partition(nparts)
		if err != nil {
			t.Fatalf("Partition(%d): %v", nparts, err)
		}
		pg, err := pp.GainsObj(m, nil, []NodeID{3, x, 9}, obj)
		if err != nil {
			t.Fatalf("nparts=%d: GainsObj: %v", nparts, err)
		}
		for i := range gains {
			if pg[i] != gains[i] {
				t.Fatalf("nparts=%d: GainsObj[%d] = %b, single engine %b", nparts, i, pg[i], gains[i])
			}
		}
		pw, err := pp.SpreadObj(m, []NodeID{3, x}, obj)
		if err != nil {
			t.Fatalf("nparts=%d: SpreadObj(blocked seed): %v", nparts, err)
		}
		pwo, err := pp.SpreadObj(m, []NodeID{x}, obj)
		if err != nil {
			t.Fatalf("nparts=%d: SpreadObj: %v", nparts, err)
		}
		if pw != pwo {
			t.Fatalf("nparts=%d: blocked seed changed the partitioned spread: %b vs %b", nparts, pw, pwo)
		}
	}
}
