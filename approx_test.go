package credist

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// approxFields strips the timing from an ApproxResult so deterministic
// fields can be compared across runs and worker counts.
func approxFields(r ApproxResult) ApproxResult {
	r.Elapsed = 0
	return r
}

// TestApproxWithinEps is the accuracy wall for the approximate tier: on
// the flixster-small preset, the reported confidence interval must
// contain the exact evaluator's spread for several seed sets, and an
// eps-bound query must achieve its target.
func TestApproxWithinEps(t *testing.T) {
	ds, err := GeneratePreset("flixster-small")
	if err != nil {
		t.Fatal(err)
	}
	m := Learn(ds, Options{Lambda: 0.001})
	celfSeeds, _ := m.SelectSeeds(5)
	for _, seeds := range [][]NodeID{
		celfSeeds,
		{0, 1, 2, 3},
		{10, 50, 100, 200, 400},
	} {
		exact := m.Spread(seeds)
		res, err := m.ApproxSpread(seeds, ApproxOptions{Eps: 0.1})
		if err != nil {
			t.Fatalf("ApproxSpread(%v): %v", seeds, err)
		}
		if res.CILow > exact || exact > res.CIHigh {
			t.Fatalf("seeds %v: exact spread %g outside reported interval [%g, %g] (estimate %g, %d samples)",
				seeds, exact, res.CILow, res.CIHigh, res.Estimate, res.Samples)
		}
		if res.AchievedEps > 0.1 && res.Samples < DefaultMaxApproxSamples {
			t.Fatalf("seeds %v: achieved eps %g over target with budget left (%d samples)",
				seeds, res.AchievedEps, res.Samples)
		}
		if res.Estimate < res.CILow || res.Estimate > res.CIHigh || res.Samples <= 0 {
			t.Fatalf("seeds %v: malformed result %+v", seeds, res)
		}
	}
}

// TestApproxDeterministicAcrossWorkers pins the serving guarantee that
// approximate answers are bit-identical at any sampling worker count.
func TestApproxDeterministicAcrossWorkers(t *testing.T) {
	ds := Generate(tinyConfig(11))
	seeds := []NodeID{1, 5, 9}
	var ref ApproxResult
	for i, workers := range []int{1, 4, 13} {
		m := Learn(ds, Options{Lambda: 0.001})
		res, err := m.ApproxSpread(seeds, ApproxOptions{Eps: 0.05, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if approxFields(res) != approxFields(ref) {
			t.Fatalf("workers=%d: result %+v differs from workers=1 %+v", workers, res, ref)
		}
	}

	// Seed selection over the tier is deterministic too.
	m1, m2 := Learn(ds, Options{Lambda: 0.001}), Learn(ds, Options{Lambda: 0.001})
	s1, r1, err := m1.ApproxSeeds(4, ApproxOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s2, r2, err := m2.ApproxSeeds(4, ApproxOptions{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) || approxFields(r1) != approxFields(r2) {
		t.Fatalf("ApproxSeeds diverged across workers: %v %+v vs %v %+v", s1, r1, s2, r2)
	}
}

// TestApproxBudget pins the bounded-latency contract: a budgeted query
// returns promptly with a valid (possibly wide) interval instead of
// growing to the eps target.
func TestApproxBudget(t *testing.T) {
	ds := Generate(tinyConfig(12))
	m := Learn(ds, Options{Lambda: 0.001})
	res, err := m.ApproxSpread([]NodeID{2, 3}, ApproxOptions{Eps: 1e-9, Budget: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples <= 0 || res.CILow > res.Estimate || res.Estimate > res.CIHigh {
		t.Fatalf("budgeted result malformed: %+v", res)
	}
	if res.Samples > DefaultMaxApproxSamples {
		t.Fatalf("budgeted query grew past the cap: %d samples", res.Samples)
	}

	// A zero-hit seed set must not grow to the cap chasing +Inf eps.
	none, err := Learn(ds, Options{Lambda: 0.001}).ApproxSpread(nil, ApproxOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if none.Estimate != 0 || !math.IsInf(none.AchievedEps, 1) {
		t.Fatalf("empty-set result %+v", none)
	}
	if none.Samples > zeroHitStopSamples {
		t.Fatalf("zero-hit query grew to %d samples", none.Samples)
	}
}

// TestApproxSnapshotRestart pins the version-5 cold-start guarantee: a
// model restored from a sketch-carrying snapshot answers its first
// approximate query with zero sampling work and bit-identical results,
// through both the heap and the mapped loader.
func TestApproxSnapshotRestart(t *testing.T) {
	ds := Generate(tinyConfig(13))
	m := Learn(ds, Options{Lambda: 0.001})
	const pool = 4096
	if err := m.BuildApproxSketch(pool); err != nil {
		t.Fatal(err)
	}
	if st := m.ApproxStats(); st.Samples != pool || st.Sampled != pool {
		t.Fatalf("builder stats %+v", st)
	}
	seeds := []NodeID{3, 8, 21}
	// Cap at the persisted pool so the answer is a pure read on both sides.
	capOpts := ApproxOptions{Eps: 1e-9, MaxSamples: pool}
	want, err := m.ApproxSpread(seeds, capOpts)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "model.bin")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	load := func(name string, open func() (*Model, error)) {
		back, err := open()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer back.Close()
		if st := back.ApproxStats(); st.Samples != pool || st.Sampled != 0 {
			t.Fatalf("%s: restored stats %+v, want %d samples and zero sampling", name, st, pool)
		}
		got, err := back.ApproxSpread(seeds, capOpts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Grown != 0 {
			t.Fatalf("%s: first restored query drew %d samples, want 0", name, got.Grown)
		}
		if approxFields(got) != approxFields(want) {
			t.Fatalf("%s: restored answer %+v differs from pre-restart %+v", name, got, want)
		}
		if st := back.ApproxStats(); st.Sampled != 0 {
			t.Fatalf("%s: restored query sampled %d sets", name, st.Sampled)
		}
		// Growth past the restored pool continues the same streams: it
		// must match a continuously grown collection bit for bit.
		grown, err := back.ApproxSpread(seeds, ApproxOptions{Eps: 1e-9, MaxSamples: 2 * pool})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fresh := Learn(ds, Options{Lambda: 0.001})
		cont, err := fresh.ApproxSpread(seeds, ApproxOptions{Eps: 1e-9, MaxSamples: 2 * pool})
		if err != nil {
			t.Fatal(err)
		}
		if approxFields(grown) != approxFields(func() ApproxResult { cont.Grown = grown.Grown; return cont }()) {
			t.Fatalf("%s: growth after restore %+v diverges from continuous %+v", name, grown, cont)
		}
	}
	load("heap", func() (*Model, error) { return LoadModel(ds, path, Options{}) })
	load("mapped", func() (*Model, error) { return LoadModelMapped(ds, path, Options{}) })

	// A model that never touched the approximate tier still writes a
	// plain version-3 snapshot: loading it restores no sketch.
	plainPath := filepath.Join(t.TempDir(), "plain.bin")
	if err := Learn(ds, Options{Lambda: 0.001}).Save(plainPath); err != nil {
		t.Fatal(err)
	}
	plain, err := LoadModel(ds, plainPath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := plain.ApproxStats(); st.Samples != 0 {
		t.Fatalf("sketchless snapshot restored %d samples", st.Samples)
	}
}

// TestApproxSketchDroppedOnTailAppend pins that a sketch (like a seed
// prefix) does not survive a snapshot load against a grown log: the walks
// sampled the old log's propagation DAGs.
func TestApproxSketchDroppedOnTailAppend(t *testing.T) {
	ds := Generate(tinyConfig(14))
	half := &Dataset{Name: ds.Name, Graph: ds.Graph, Log: ds.Log.Prefix(ds.Log.NumActions() / 2)}
	m := Learn(half, Options{Lambda: 0.001})
	if err := m.BuildApproxSketch(1024); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "half.bin")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(ds, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := back.ApproxStats(); st.Samples != 0 {
		t.Fatalf("stale sketch survived a tail append: %+v", st)
	}
}
