package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"credist"
	"credist/internal/actionlog"
)

// Server is the HTTP front end: a snapshot registry, a request router, and
// request metrics. Create one with New, mount Handler on an http.Server.
type Server struct {
	reg *Registry
	mux *http.ServeMux
	met *metrics
	// routeNames and allowed are derived from the handle registrations in
	// New (metrics keys; path -> allowed verbs for 405s) and are read-only
	// once New returns.
	routeNames []string
	allowed    map[string][]string
	// reloadMu serializes snapshot builds; queries never take it.
	reloadMu sync.Mutex
	// checkpointMu guards lastCheckpoint, the provenance of the most recent
	// POST /snapshot, surfaced in /stats.
	checkpointMu   sync.Mutex
	lastCheckpoint *CheckpointInfo
	// Approximate-tier hit counters: how many /spread and /seeds requests
	// were answered from the RR-sample tier instead of the exact engine.
	approxSpreadHits atomic.Int64
	approxSeedsHits  atomic.Int64
	// explainHits counts answered /explain requests (either shape).
	explainHits atomic.Int64
	// Logf, when set, receives one line per reload. Queries are not logged.
	Logf func(format string, args ...any)
}

// CheckpointInfo records a completed POST /snapshot for /stats.
type CheckpointInfo struct {
	Path      string    `json:"path"`
	Snapshot  int64     `json:"snapshot"`
	Actions   int       `json:"actions"`
	Bytes     int64     `json:"bytes"`
	WrittenAt time.Time `json:"written_at"`
}

// maxBodyBytes bounds request bodies; batches beyond this are misuse.
const maxBodyBytes = 16 << 20

// New wires a server around an initial snapshot.
func New(sn *Snapshot) *Server {
	s := &Server{
		reg:     NewRegistry(sn),
		mux:     http.NewServeMux(),
		allowed: make(map[string][]string),
	}
	s.handle("spread", "GET /spread", s.handleSpread)
	s.handle("spread", "POST /spread", s.handleSpread)
	s.handle("gain", "GET /gain", s.handleGain)
	s.handle("gain", "POST /gain", s.handleGain)
	s.handle("seeds", "GET /seeds", s.handleSeeds)
	s.handle("topk", "GET /topk", s.handleTopK)
	s.handle("explain", "GET /explain", s.handleExplain)
	s.handle("healthz", "GET /healthz", s.handleHealthz)
	s.handle("stats", "GET /stats", s.handleStats)
	s.handle("reload", "POST /reload", s.handleReload)
	s.handle("ingest", "POST /ingest", s.handleIngest)
	s.handle("snapshot", "POST /snapshot", s.handleSnapshot)
	s.met = newMetrics(s.routeNames)

	paths := make([]string, 0, len(s.allowed))
	for p := range s.allowed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	// Fallback for anything the method-qualified patterns above don't
	// match: a known path with the wrong verb gets 405 + Allow, everything
	// else a JSON 404.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if methods, ok := s.allowed[r.URL.Path]; ok {
			allow := strings.Join(methods, ", ")
			w.Header().Set("Allow", allow)
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: fmt.Sprintf(
				"method %s not allowed for %s (allowed: %s)", r.Method, r.URL.Path, allow)})
			return
		}
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf(
			"no such endpoint %q (have: %s)", r.URL.Path, strings.Join(paths, " "))})
	})
	return s
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Current returns the live snapshot (for embedding and tests).
func (s *Server) Current() *Snapshot { return s.reg.Current() }

// Warm grows the current snapshot's seed prefix to k, validating k
// against the model universe first. Unlike the raw
// Snapshot.SelectSeeds, an out-of-range k or an empty selection is an
// error, so a process that warms its cache at startup fails fast and
// loudly instead of serving from a zero-valued result.
func (s *Server) Warm(k int) (*SeedsResult, error) {
	sn := s.reg.Current()
	if k < 1 {
		return nil, fmt.Errorf("warm-up k must be a positive integer, got %d", k)
	}
	if k > sn.NumUsers() {
		return nil, fmt.Errorf("warm-up k %d exceeds the user count %d", k, sn.NumUsers())
	}
	res, _, err := sn.SelectSeeds(k)
	if err != nil {
		return nil, fmt.Errorf("warm-up selection: %w", err)
	}
	if res == nil || len(res.Seeds) == 0 {
		return nil, fmt.Errorf("warm-up selection for k=%d produced no seeds", k)
	}
	return res, nil
}

// handle registers a "METHOD /path" pattern with metrics accounting and
// JSON error mapping, recording the route name and allowed verb as it
// goes. Each request pins the current snapshot once, so a concurrent
// /reload can never switch models mid-request.
func (s *Server) handle(route, pattern string, h func(sn *Snapshot, r *http.Request) (any, error)) {
	method, path, ok := strings.Cut(pattern, " ")
	if !ok {
		panic("serve: pattern must be \"METHOD /path\": " + pattern)
	}
	if !slices.Contains(s.routeNames, route) {
		s.routeNames = append(s.routeNames, route)
	}
	s.allowed[path] = append(s.allowed[path], method)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.met.hit(route, time.Now())
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		v, err := h(s.reg.Current(), r)
		if err != nil {
			code := http.StatusInternalServerError
			if ae, ok := err.(*apiError); ok {
				code = ae.code
			}
			writeJSON(w, code, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

type errorBody struct {
	Error string `json:"error"`
}

type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// --- campaign objectives ----------------------------------------------------

// objectiveParams are the campaign-objective fields /spread, /gain, and
// /seeds share — who counts (audience), when (window), and which rival
// seeds are already committed (blocked). They arrive as query parameters
// (audience=1,2,3&window=12&blocked=4) or the same-named JSON body
// fields. All absent means the default objective, which routes through
// the exact pre-objective code paths byte-for-byte.
type objectiveParams struct {
	Audience []credist.NodeID `json:"audience,omitempty"`
	Window   *float64         `json:"window,omitempty"`
	Blocked  []credist.NodeID `json:"blocked,omitempty"`
}

func (p *objectiveParams) fromQuery(q url.Values) error {
	var err error
	if p.Audience, err = parseIDList(q.Get("audience")); err != nil {
		return err
	}
	if raw := q.Get("window"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return badRequest("window must be a number in the action log's time units, got %q", raw)
		}
		p.Window = &v
	}
	if p.Blocked, err = parseIDList(q.Get("blocked")); err != nil {
		return err
	}
	return nil
}

// objective lowers the parsed parameters to a facade objective, nil for
// the default. Semantic validation (id ranges, a finite non-negative
// window) happens in the facade, whose errors map to 400s.
func (p *objectiveParams) objective() *credist.Objective {
	if p.Audience == nil && p.Window == nil && p.Blocked == nil {
		return nil
	}
	o := &credist.Objective{Audience: p.Audience, Blocked: p.Blocked}
	if p.Window != nil {
		o.Windowed, o.Window = true, *p.Window
	}
	return o
}

// parseCosts parses the /seeds costs parameter: "id:cost" pairs over
// implicit unit costs (costs=3:2.5,7:0.5 prices users 3 and 7, everyone
// else costs 1). Returns nil for an absent parameter. Cost values are
// range-checked by the facade (finite, positive), ids here.
func parseCosts(raw string, numUsers int) ([]float64, error) {
	if raw == "" {
		return nil, nil
	}
	costs := make([]float64, numUsers)
	for i := range costs {
		costs[i] = 1
	}
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		idStr, costStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, badRequest("costs must be id:cost pairs (e.g. costs=3:2.5,7:0.5), got %q", part)
		}
		id, err := strconv.Atoi(strings.TrimSpace(idStr))
		if err != nil || id < 0 || id >= numUsers {
			return nil, badRequest("costs: user id %q out of range [0,%d)", strings.TrimSpace(idStr), numUsers)
		}
		c, err := strconv.ParseFloat(strings.TrimSpace(costStr), 64)
		if err != nil {
			return nil, badRequest("costs: bad cost %q for user %d", strings.TrimSpace(costStr), id)
		}
		costs[id] = c
	}
	return costs, nil
}

// requestError maps objective-path failures to 400s: everything the
// facade and the coordinator reject (unknown ids, malformed windows,
// costs where they do not apply) is a request fault, while errors already
// carrying a status — the partition gate's 502 — pass through.
func requestError(err error) error {
	if _, ok := err.(*apiError); ok {
		return err
	}
	return badRequest("%v", err)
}

const errObjectiveApprox = "the approximate tier (eps/budget) serves only the default objective; drop audience, window, costs, and blocked"

// --- /spread ---------------------------------------------------------------

type spreadRequest struct {
	Seeds []credist.NodeID   `json:"seeds,omitempty"`
	Sets  [][]credist.NodeID `json:"sets,omitempty"`
	// Eps and Budget route the query to the approximate RR tier: eps is
	// the target relative CI half-width, budget a wall-clock cap (a Go
	// duration string, e.g. "10ms"). Either alone switches tiers.
	Eps    float64 `json:"eps,omitempty"`
	Budget string  `json:"budget,omitempty"`
	objectiveParams
}

// SpreadResponse answers a single-set /spread query.
type SpreadResponse struct {
	Snapshot int64            `json:"snapshot"`
	Seeds    []credist.NodeID `json:"seeds"`
	Spread   float64          `json:"spread"`
}

// SpreadBatchResponse answers a batched /spread query.
type SpreadBatchResponse struct {
	Snapshot int64     `json:"snapshot"`
	Spreads  []float64 `json:"spreads"`
}

// ApproxBody is the bounded-error answer shared by approximate /spread
// and /seeds replies: the RR estimate with its 99% Wilson confidence
// interval around the exact sigma_cd value. AchievedEps is null when the
// estimate is zero (relative precision is undefined there); Elapsed is
// seconds of wall clock spent answering.
type ApproxBody struct {
	Estimate    float64  `json:"estimate"`
	CILow       float64  `json:"ci_low"`
	CIHigh      float64  `json:"ci_high"`
	AchievedEps *float64 `json:"achieved_eps"`
	Samples     int      `json:"samples"`
	Elapsed     float64  `json:"elapsed"`
}

// ApproxSpreadResponse answers /spread?eps= or ?budget= from the RR tier.
type ApproxSpreadResponse struct {
	Snapshot int64            `json:"snapshot"`
	Seeds    []credist.NodeID `json:"seeds"`
	ApproxBody
}

// ApproxSeedsResponse answers /seeds?k=&eps= from the RR tier: seeds by
// greedy sample coverage, interval on the selected set's spread.
type ApproxSeedsResponse struct {
	Snapshot int64            `json:"snapshot"`
	K        int              `json:"k"`
	Seeds    []credist.NodeID `json:"seeds"`
	ApproxBody
}

func approxBody(res credist.ApproxResult) ApproxBody {
	b := ApproxBody{
		Estimate: res.Estimate,
		CILow:    res.CILow,
		CIHigh:   res.CIHigh,
		Samples:  res.Samples,
		Elapsed:  res.Elapsed.Seconds(),
	}
	// +Inf is not representable in JSON; null is the honest encoding.
	if !math.IsInf(res.AchievedEps, 0) {
		eps := res.AchievedEps
		b.AchievedEps = &eps
	}
	return b
}

// parseApproxOpts extracts the approximate-tier parameters; ok reports
// whether the request opted into the tier at all. eps comes pre-parsed
// (0 = absent) so the JSON body and the query string share one validator.
func parseApproxOpts(eps float64, epsSet bool, budget string) (opts credist.ApproxOptions, ok bool, err error) {
	if epsSet {
		if eps <= 0 || eps >= 1 {
			return opts, false, badRequest("eps must be in (0,1), got %g", eps)
		}
		opts.Eps = eps
		ok = true
	}
	if budget != "" {
		d, err := time.ParseDuration(budget)
		if err != nil || d <= 0 {
			return opts, false, badRequest("budget must be a positive duration (e.g. 10ms), got %q", budget)
		}
		opts.Budget = d
		ok = true
	}
	return opts, ok, nil
}

func (s *Server) handleSpread(sn *Snapshot, r *http.Request) (any, error) {
	var req spreadRequest
	if r.Method == http.MethodPost {
		if err := decodeBody(r, &req); err != nil {
			return nil, err
		}
	} else if err := req.fromQuery(r); err != nil {
		return nil, err
	}
	opts, approx, err := parseApproxOpts(req.Eps, req.Eps != 0, req.Budget)
	if err != nil {
		return nil, err
	}
	obj := req.objective()
	switch {
	case req.Seeds != nil && req.Sets != nil:
		return nil, badRequest("provide seeds or sets, not both")
	case obj != nil && req.Sets != nil:
		return nil, badRequest("audience/window/blocked apply to a single seed set, not a batch")
	case approx && req.Sets != nil:
		return nil, badRequest("eps/budget apply to a single seed set, not a batch")
	case approx && obj != nil:
		return nil, badRequest("%s", errObjectiveApprox)
	case approx:
		if err := validateIDs(req.Seeds, sn.NumUsers()); err != nil {
			return nil, err
		}
		res, err := sn.ApproxSpread(req.Seeds, opts)
		if err != nil {
			return nil, err
		}
		s.approxSpreadHits.Add(1)
		return ApproxSpreadResponse{Snapshot: sn.ID, Seeds: req.Seeds, ApproxBody: approxBody(res)}, nil
	case req.Seeds != nil && obj != nil:
		if err := validateIDs(req.Seeds, sn.NumUsers()); err != nil {
			return nil, err
		}
		spread, err := sn.SpreadObj(req.Seeds, obj)
		if err != nil {
			return nil, requestError(err)
		}
		return SpreadResponse{Snapshot: sn.ID, Seeds: req.Seeds, Spread: spread}, nil
	case req.Seeds != nil:
		if err := validateIDs(req.Seeds, sn.NumUsers()); err != nil {
			return nil, err
		}
		spread, err := sn.Spread(req.Seeds)
		if err != nil {
			return nil, err
		}
		return SpreadResponse{Snapshot: sn.ID, Seeds: req.Seeds, Spread: spread}, nil
	case req.Sets != nil:
		for i, set := range req.Sets {
			if err := validateIDs(set, sn.NumUsers()); err != nil {
				return nil, badRequest("set %d: %v", i, err)
			}
		}
		spreads, err := sn.SpreadBatch(req.Sets)
		if err != nil {
			return nil, err
		}
		return SpreadBatchResponse{Snapshot: sn.ID, Spreads: spreads}, nil
	default:
		return nil, badRequest("missing seeds (e.g. /spread?seeds=1,2,3)")
	}
}

func (req *spreadRequest) fromQuery(r *http.Request) error {
	q := r.URL.Query()
	if raw := q.Get("eps"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v <= 0 || v >= 1 {
			return badRequest("eps must be a number in (0,1), got %q", raw)
		}
		req.Eps = v
	}
	req.Budget = q.Get("budget")
	if q.Get("costs") != "" {
		return badRequest("costs and a numeric budget apply to seed selection (/seeds), not spread evaluation")
	}
	if err := req.objectiveParams.fromQuery(q); err != nil {
		return err
	}
	raw := q.Get("seeds")
	if raw == "" {
		return nil
	}
	seeds, err := parseIDList(raw)
	if err != nil {
		return err
	}
	req.Seeds = seeds
	return nil
}

// --- /gain -----------------------------------------------------------------

type gainRequest struct {
	// Seeds is the base seed set S; empty means gains from scratch.
	Seeds []credist.NodeID `json:"seeds,omitempty"`
	// Candidates are scored as sigma_cd(S+c) - sigma_cd(S), batched.
	Candidates []credist.NodeID `json:"candidates"`
	objectiveParams
}

// GainResponse answers /gain; Gains[i] belongs to Candidates[i].
type GainResponse struct {
	Snapshot   int64            `json:"snapshot"`
	Seeds      []credist.NodeID `json:"seeds,omitempty"`
	Candidates []credist.NodeID `json:"candidates"`
	Gains      []float64        `json:"gains"`
}

func (s *Server) handleGain(sn *Snapshot, r *http.Request) (any, error) {
	var req gainRequest
	if r.Method == http.MethodPost {
		if err := decodeBody(r, &req); err != nil {
			return nil, err
		}
	} else {
		q := r.URL.Query()
		if q.Get("costs") != "" || q.Get("budget") != "" {
			return nil, badRequest("costs and budget apply to seed selection (/seeds), not gain evaluation")
		}
		var err error
		if req.Candidates, err = parseIDList(q.Get("candidates")); err != nil {
			return nil, err
		}
		if raw := q.Get("seeds"); raw != "" {
			if req.Seeds, err = parseIDList(raw); err != nil {
				return nil, err
			}
		}
		if err := req.objectiveParams.fromQuery(q); err != nil {
			return nil, err
		}
	}
	if len(req.Candidates) == 0 {
		return nil, badRequest("missing candidates (e.g. /gain?candidates=1,2,3)")
	}
	if err := validateIDs(req.Candidates, sn.NumUsers()); err != nil {
		return nil, err
	}
	if err := validateIDs(req.Seeds, sn.NumUsers()); err != nil {
		return nil, err
	}
	var gains []float64
	var err error
	if obj := req.objective(); obj != nil {
		gains, err = sn.GainsObj(req.Seeds, req.Candidates, obj)
		if err != nil {
			return nil, requestError(err)
		}
	} else if gains, err = sn.Gains(req.Seeds, req.Candidates); err != nil {
		return nil, err
	}
	return GainResponse{
		Snapshot:   sn.ID,
		Seeds:      req.Seeds,
		Candidates: req.Candidates,
		Gains:      gains,
	}, nil
}

// --- /seeds ----------------------------------------------------------------

// SeedsResponse answers /seeds?k=N with the first k seeds of the
// snapshot's growable CELF selection; Cached reports whether the request
// was answered from the computed prefix with zero selection work.
type SeedsResponse struct {
	Snapshot int64 `json:"snapshot"`
	K        int   `json:"k"`
	SeedsResult
	Cached bool `json:"cached"`
}

func (s *Server) handleSeeds(sn *Snapshot, r *http.Request) (any, error) {
	k, err := parseK(r, sn.NumUsers())
	if err != nil {
		return nil, err
	}
	q := r.URL.Query()
	eps := 0.0
	if raw := q.Get("eps"); raw != "" {
		if eps, err = strconv.ParseFloat(raw, 64); err != nil || eps <= 0 || eps >= 1 {
			return nil, badRequest("eps must be a number in (0,1), got %q", raw)
		}
	}
	var op objectiveParams
	if err := op.fromQuery(q); err != nil {
		return nil, err
	}
	costs, err := parseCosts(q.Get("costs"), sn.NumUsers())
	if err != nil {
		return nil, err
	}
	// budget= is overloaded by value space: a bare number (budget=12.5) is
	// a seed-cost budget for the objective layer, a duration (budget=10ms)
	// the approximate tier's wall-clock cap. The spaces are disjoint —
	// ParseFloat accepts no unit suffix, ParseDuration requires one.
	costBudget := 0.0
	approxBudget := ""
	if raw := q.Get("budget"); raw != "" {
		if v, ferr := strconv.ParseFloat(raw, 64); ferr == nil {
			// ParseFloat also accepts NaN, the infinities, and negatives —
			// none of which any budget can mean. Reject them here, naming
			// both value spaces, instead of letting a NaN slip into the
			// objective layer as a "cost budget".
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil, badRequest("budget %q is valid in neither value space: a bare number is a seed-cost budget (finite, non-negative), a duration (e.g. 10ms) the approximate tier's wall-clock cap", raw)
			}
			costBudget = v
		} else {
			approxBudget = raw
		}
	}
	opts, approx, err := parseApproxOpts(eps, eps != 0, approxBudget)
	if err != nil {
		return nil, err
	}
	obj := op.objective()
	if costs != nil || costBudget != 0 {
		if obj == nil {
			obj = &credist.Objective{}
		}
		obj.Costs, obj.Budget = costs, costBudget
	}
	if approx && obj != nil {
		return nil, badRequest("%s", errObjectiveApprox)
	}
	if obj != nil {
		res, err := sn.SelectSeedsObj(k, obj)
		if err != nil {
			return nil, requestError(err)
		}
		return SeedsResponse{Snapshot: sn.ID, K: k, SeedsResult: *res, Cached: false}, nil
	}
	if approx {
		seeds, res, err := sn.ApproxSeeds(k, opts)
		if err != nil {
			return nil, err
		}
		s.approxSeedsHits.Add(1)
		return ApproxSeedsResponse{Snapshot: sn.ID, K: k, Seeds: seeds, ApproxBody: approxBody(res)}, nil
	}
	res, cached, err := sn.SelectSeeds(k)
	if err != nil {
		return nil, err
	}
	return SeedsResponse{Snapshot: sn.ID, K: k, SeedsResult: *res, Cached: cached}, nil
}

// --- /topk -----------------------------------------------------------------

// TopKResponse answers /topk: a heuristic baseline's seeds scored by the
// CD model.
type TopKResponse struct {
	Snapshot int64            `json:"snapshot"`
	Method   string           `json:"method"`
	K        int              `json:"k"`
	Seeds    []credist.NodeID `json:"seeds"`
	Spread   float64          `json:"spread"`
}

func (s *Server) handleTopK(sn *Snapshot, r *http.Request) (any, error) {
	k, err := parseK(r, sn.NumUsers())
	if err != nil {
		return nil, err
	}
	method := r.URL.Query().Get("method")
	if method == "" {
		method = "highdeg"
	}
	seeds, spread, err := sn.TopK(method, k)
	if err != nil {
		if ae, ok := err.(*apiError); ok {
			return nil, ae
		}
		return nil, badRequest("%v", err)
	}
	return TopKResponse{Snapshot: sn.ID, Method: method, K: k, Seeds: seeds, Spread: spread}, nil
}

// --- /explain ----------------------------------------------------------------

// ExplainPath is one credit path in an /explain answer: action a gave
// influencer v this much of the explained total through influenced user u.
type ExplainPath struct {
	Influencer credist.NodeID   `json:"influencer"`
	Influenced credist.NodeID   `json:"influenced"`
	Action     credist.ActionID `json:"action"`
	Credit     float64          `json:"credit"`
}

// ExplainSeedResponse answers /explain?seed=u (why-seed): the candidate's
// marginal gain — bit-for-bit the /gain answer for the same candidate —
// decomposed into its top credit paths.
type ExplainSeedResponse struct {
	Snapshot   int64          `json:"snapshot"`
	Seed       credist.NodeID `json:"seed"`
	Gain       float64        `json:"gain"`
	Paths      []ExplainPath  `json:"paths"`
	TotalPaths int            `json:"total_paths"`
}

// ExplainShare is one seed's slice of an explained reach total.
type ExplainShare struct {
	Seed  credist.NodeID `json:"seed"`
	Share float64        `json:"share"`
}

// ExplainReachResponse answers /explain?set=…&reach=v (why-reach): the
// credit the set pushes onto the target, decomposed by seed — the shares,
// folded in request order, sum bit-exactly to total — and by path.
type ExplainReachResponse struct {
	Snapshot   int64            `json:"snapshot"`
	Target     credist.NodeID   `json:"target"`
	Seeds      []credist.NodeID `json:"seeds"`
	Total      float64          `json:"total"`
	PerSeed    []ExplainShare   `json:"per_seed"`
	Paths      []ExplainPath    `json:"paths"`
	TotalPaths int              `json:"total_paths"`
}

func explainPaths(ps []credist.ProvPath) []ExplainPath {
	out := make([]ExplainPath, len(ps))
	for i, p := range ps {
		out[i] = ExplainPath{Influencer: p.Influencer, Influenced: p.Influenced, Action: p.Action, Credit: p.Credit}
	}
	return out
}

// handleExplain answers the two provenance shapes. seed= and set=&reach=
// are mutually exclusive; top= bounds the returned path list (default 10).
func (s *Server) handleExplain(sn *Snapshot, r *http.Request) (any, error) {
	q := r.URL.Query()
	top := 10
	if raw := q.Get("top"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			return nil, badRequest("top must be a positive integer, got %q", raw)
		}
		top = n
	}
	seedRaw, setRaw, reachRaw := q.Get("seed"), q.Get("set"), q.Get("reach")
	switch {
	case seedRaw != "" && (setRaw != "" || reachRaw != ""):
		return nil, badRequest("seed= (why-seed) and set=&reach= (why-reach) are mutually exclusive")
	case seedRaw != "":
		ids, err := parseIDList(seedRaw)
		if err != nil {
			return nil, err
		}
		if len(ids) != 1 {
			return nil, badRequest("seed must be a single user id, got %q", seedRaw)
		}
		if err := validateIDs(ids, sn.NumUsers()); err != nil {
			return nil, err
		}
		ex, err := sn.ExplainSeed(ids[0], top)
		if err != nil {
			return nil, requestError(err)
		}
		s.explainHits.Add(1)
		return ExplainSeedResponse{
			Snapshot:   sn.ID,
			Seed:       ex.Node,
			Gain:       ex.Gain,
			Paths:      explainPaths(ex.Paths),
			TotalPaths: ex.TotalPaths,
		}, nil
	case setRaw != "" && reachRaw != "":
		seeds, err := parseIDList(setRaw)
		if err != nil {
			return nil, err
		}
		if len(seeds) == 0 {
			return nil, badRequest("set must name at least one seed (e.g. /explain?set=1,2&reach=5)")
		}
		if err := validateIDs(seeds, sn.NumUsers()); err != nil {
			return nil, err
		}
		targets, err := parseIDList(reachRaw)
		if err != nil {
			return nil, err
		}
		if len(targets) != 1 {
			return nil, badRequest("reach must be a single user id, got %q", reachRaw)
		}
		if err := validateIDs(targets, sn.NumUsers()); err != nil {
			return nil, err
		}
		ex, err := sn.ExplainReach(seeds, targets[0], top)
		if err != nil {
			return nil, requestError(err)
		}
		s.explainHits.Add(1)
		shares := make([]ExplainShare, len(ex.PerSeed))
		for i, ps := range ex.PerSeed {
			shares[i] = ExplainShare{Seed: ps.Seed, Share: ps.Share}
		}
		return ExplainReachResponse{
			Snapshot:   sn.ID,
			Target:     ex.Target,
			Seeds:      seeds,
			Total:      ex.Total,
			PerSeed:    shares,
			Paths:      explainPaths(ex.Paths),
			TotalPaths: ex.TotalPaths,
		}, nil
	case setRaw != "" || reachRaw != "":
		return nil, badRequest("why-reach needs both set= and reach= (e.g. /explain?set=1,2&reach=5)")
	default:
		return nil, badRequest("missing query: /explain?seed=u (why-seed) or /explain?set=1,2&reach=v (why-reach)")
	}
}

// --- /healthz and /stats ---------------------------------------------------

// HealthResponse answers /healthz.
type HealthResponse struct {
	Status   string `json:"status"`
	Snapshot int64  `json:"snapshot"`
	Dataset  string `json:"dataset"`
}

func (s *Server) handleHealthz(sn *Snapshot, _ *http.Request) (any, error) {
	if err := sn.PartitionErr(); err != nil {
		// A missing partition means every model query over the full
		// universe fails; the server is up but not serviceable.
		return nil, &apiError{code: http.StatusServiceUnavailable,
			msg: fmt.Sprintf("degraded: %v", err)}
	}
	return HealthResponse{Status: "ok", Snapshot: sn.ID, Dataset: sn.Dataset().Name}, nil
}

// StatsResponse answers /stats: the live snapshot's shape and the server's
// traffic counters.
type StatsResponse struct {
	Snapshot      int64            `json:"snapshot"`
	Dataset       string           `json:"dataset"`
	Source        string           `json:"source"`
	LoadedAt      time.Time        `json:"loaded_at"`
	Users         int              `json:"users"`
	Actions       int              `json:"actions"`
	Tuples        int              `json:"tuples"`
	Entries       int64            `json:"entries"`
	BaseEntries   int64            `json:"base_entries"`
	DeltaEntries  int64            `json:"delta_entries"`
	DeltaActions  int              `json:"delta_actions"`
	Ingests       int64            `json:"ingests"`
	LastIngest    *time.Time       `json:"last_ingest,omitempty"`
	ResidentBytes int64            `json:"resident_bytes"`
	HeapBytes     int64            `json:"heap_bytes"`
	MappedBytes   int64            `json:"mapped_bytes"`
	RowStore      string           `json:"row_store"`
	SeedPrefixK   int              `json:"seed_prefix_k"`
	Selections    int64            `json:"selections"`
	UptimeSec     float64          `json:"uptime_seconds"`
	Requests      int64            `json:"requests"`
	RequestsBy    map[string]int64 `json:"requests_by_endpoint"`
	QPS           float64          `json:"qps_1m"`

	// Approximate RR tier: the current sample pool's size and bytes,
	// samples drawn by this process (0 right after a sketch-carrying
	// restart), and how many requests each endpoint answered from the
	// tier. On partitioned deployments the tier is fixed: it serves the
	// whole-model snapshot's persisted sketch (if any) and never grows,
	// so approx_sampled stays 0 and approx_samples reports the pool.
	ApproxSamples        int   `json:"approx_samples"`
	ApproxBytes          int64 `json:"approx_bytes"`
	ApproxSampled        int64 `json:"approx_sampled"`
	ApproxSpreadRequests int64 `json:"approx_spread_requests"`
	ApproxSeedsRequests  int64 `json:"approx_seeds_requests"`

	// Influence provenance: the credit→actions index behind /explain —
	// its shape, how many builds this process paid (0 after a restart from
	// a version-6 snapshot), and the /explain traffic. Partitioned
	// deployments explain by walking each partition's own rows, so the
	// index fields stay 0 there.
	ProvPairs       int   `json:"prov_pairs"`
	ProvEntries     int64 `json:"prov_entries"`
	ProvBytes       int64 `json:"prov_bytes"`
	ProvBuilds      int64 `json:"prov_builds"`
	ExplainRequests int64 `json:"explain_requests"`

	// Snapshot provenance: where this snapshot line cold-started from
	// (when it was loaded from a binary model file) and the most recent
	// checkpoint written through POST /snapshot.
	ModelFile        string          `json:"model_file,omitempty"`
	ModelActions     int             `json:"model_actions,omitempty"`
	ModelTailActions int             `json:"model_tail_actions,omitempty"`
	LastSnapshot     *CheckpointInfo `json:"last_snapshot,omitempty"`

	// Partitioned serving: one row per engine partition, present only when
	// the snapshot runs behind a scatter-gather coordinator. The top-level
	// entries/heap_bytes/mapped_bytes above are the sums of these rows.
	NumPartitions  int             `json:"num_partitions,omitempty"`
	Partitions     []PartitionStat `json:"partitions,omitempty"`
	PartitionError string          `json:"partition_error,omitempty"`
}

// PartitionStat is one engine partition's shape in /stats: the influencer
// row range it owns ([row_lo,row_hi)) and its share of the resident model.
type PartitionStat struct {
	RowLo       int    `json:"row_lo"`
	RowHi       int    `json:"row_hi"`
	Entries     int64  `json:"entries"`
	HeapBytes   int64  `json:"heap_bytes"`
	MappedBytes int64  `json:"mapped_bytes"`
	RowStore    string `json:"row_store"`
}

func (s *Server) handleStats(sn *Snapshot, _ *http.Request) (any, error) {
	st := sn.Dataset().Stats()
	total, per, qps, uptime := s.met.snapshot(time.Now())
	resp := StatsResponse{
		Snapshot:      sn.ID,
		Dataset:       sn.Dataset().Name,
		Source:        sn.src.describe(),
		LoadedAt:      sn.LoadedAt,
		Users:         sn.NumUsers(),
		Actions:       st.NumActions,
		Tuples:        st.NumTuples,
		Entries:       sn.Entries(),
		BaseEntries:   sn.BaseEntries(),
		DeltaEntries:  sn.DeltaEntries(),
		DeltaActions:  sn.DeltaActions(),
		Ingests:       sn.Ingests(),
		ResidentBytes: sn.ResidentBytes(),
		HeapBytes:     sn.HeapBytes(),
		MappedBytes:   sn.MappedBytes(),
		RowStore:      sn.RowStoreBackend(),
		SeedPrefixK:   sn.SeedPrefixLen(),
		Selections:    sn.Selections(),
		UptimeSec:     uptime.Seconds(),
		Requests:      total,
		RequestsBy:    per,
		QPS:           qps,
	}
	ast := sn.ApproxStats()
	resp.ApproxSamples = ast.Samples
	resp.ApproxBytes = ast.Bytes
	resp.ApproxSampled = ast.Sampled
	resp.ApproxSpreadRequests = s.approxSpreadHits.Load()
	resp.ApproxSeedsRequests = s.approxSeedsHits.Load()
	pst := sn.ProvStats()
	resp.ProvPairs = pst.Pairs
	resp.ProvEntries = pst.Entries
	resp.ProvBytes = pst.Bytes
	resp.ProvBuilds = pst.Builds
	resp.ExplainRequests = s.explainHits.Load()
	if t := sn.LastIngest(); !t.IsZero() {
		resp.LastIngest = &t
	}
	if sn.src.ModelPath != "" {
		resp.ModelFile = sn.src.ModelPath
		resp.ModelActions = sn.ModelActions()
		resp.ModelTailActions = sn.TailActions()
	}
	if sn.Partitioned() {
		resp.NumPartitions = sn.NumPartitions()
		for _, st := range sn.PartitionStats() {
			resp.Partitions = append(resp.Partitions, PartitionStat{
				RowLo:       st.Range.Lo,
				RowHi:       st.Range.Hi,
				Entries:     st.Entries,
				HeapBytes:   st.HeapBytes,
				MappedBytes: st.MappedBytes,
				RowStore:    st.RowStore,
			})
		}
	}
	if err := sn.PartitionErr(); err != nil {
		resp.PartitionError = err.Error()
	}
	s.checkpointMu.Lock()
	resp.LastSnapshot = s.lastCheckpoint
	s.checkpointMu.Unlock()
	return resp, nil
}

// --- /reload ---------------------------------------------------------------

// ReloadResponse answers /reload with the installed snapshot's shape.
type ReloadResponse struct {
	Snapshot      int64   `json:"snapshot"`
	Dataset       string  `json:"dataset"`
	Source        string  `json:"source"`
	Entries       int64   `json:"entries"`
	ResidentBytes int64   `json:"resident_bytes"`
	LoadMillis    float64 `json:"load_ms"`
}

// handleReload learns a model from the posted Source and swaps it in. The
// build happens before the swap and outside any lock queries take, so
// in-flight requests keep answering from the old snapshot and new requests
// see the new one only once it is fully ready.
func (s *Server) handleReload(_ *Snapshot, r *http.Request) (any, error) {
	var src Source
	if err := decodeBody(r, &src); err != nil {
		return nil, err
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	start := time.Now()
	sn, err := Build(src)
	if err != nil {
		return nil, badRequest("reload: %v", err)
	}
	// A degraded partitioned build is tolerated at process start (the
	// operator sees the error and the old slices stay on disk), but a
	// reload must never replace a working snapshot with one that cannot
	// answer queries.
	if perr := sn.PartitionErr(); perr != nil {
		return nil, badRequest("reload: refusing to install a degraded partitioned snapshot: %v", perr)
	}
	s.reg.Install(sn)
	elapsed := time.Since(start)
	s.logf("serve: reloaded snapshot %d (%s): %d users, %d UC entries, %.0f ms",
		sn.ID, src.describe(), sn.NumUsers(), sn.Entries(), float64(elapsed.Milliseconds()))
	return ReloadResponse{
		Snapshot:      sn.ID,
		Dataset:       sn.Dataset().Name,
		Source:        src.describe(),
		Entries:       sn.Entries(),
		ResidentBytes: sn.ResidentBytes(),
		LoadMillis:    float64(elapsed.Nanoseconds()) / 1e6,
	}, nil
}

// --- /ingest ---------------------------------------------------------------

// IngestTuple is one streamed action-log line.
type IngestTuple struct {
	User   credist.NodeID   `json:"user"`
	Action credist.ActionID `json:"action"`
	Time   float64          `json:"time"`
}

// ingestRequest feeds new propagations to the current snapshot. Tuples are
// inline; Log alternatively names a server-side file in the action-log
// text format (as written by `datagen -stream`). Both may be combined: the
// file's tuples are appended first, then the inline batch.
type ingestRequest struct {
	Tuples  []IngestTuple `json:"tuples,omitempty"`
	LogPath string        `json:"log,omitempty"`
	// Compact folds the accumulated delta into the frozen base after the
	// append, trimming memory and re-freezing the snapshot.
	Compact bool `json:"compact,omitempty"`
}

// IngestResponse answers /ingest with the successor snapshot's shape.
type IngestResponse struct {
	Snapshot       int64   `json:"snapshot"`
	Dataset        string  `json:"dataset"`
	AppendedTuples int     `json:"appended_tuples"`
	Actions        int     `json:"actions"`
	Users          int     `json:"users"`
	Entries        int64   `json:"entries"`
	BaseEntries    int64   `json:"base_entries"`
	DeltaEntries   int64   `json:"delta_entries"`
	DeltaActions   int     `json:"delta_actions"`
	ResidentBytes  int64   `json:"resident_bytes"`
	IngestMillis   float64 `json:"ingest_ms"`
}

// handleIngest extends the current snapshot with streamed propagations and
// atomically swaps in the successor. Like /reload, the build happens
// before the swap and outside any lock queries take, so in-flight requests
// keep answering from the predecessor — which shares its frozen shards
// with the successor instead of being copied. Unlike /reload, nothing is
// relearned or rescanned except the appended action tail.
func (s *Server) handleIngest(_ *Snapshot, r *http.Request) (any, error) {
	var req ingestRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	var tuples []credist.Tuple
	minUsers := 0
	if req.LogPath != "" {
		f, err := os.Open(req.LogPath)
		if err != nil {
			return nil, badRequest("ingest: %v", err)
		}
		fileTuples, header, err := actionlog.ParseTuples(f)
		f.Close()
		if err != nil {
			// Deliberately vague: parse errors quote the offending line, and
			// echoing file contents to HTTP clients would turn this
			// server-side path option into a remote file reader. The CLI
			// parses tails client-side with full error detail.
			return nil, badRequest("ingest: %q is not a parseable action-log tail", req.LogPath)
		}
		tuples = fileTuples
		minUsers = header
	}
	for _, t := range req.Tuples {
		tuples = append(tuples, credist.Tuple{User: t.User, Action: t.Action, Time: t.Time})
	}
	if len(tuples) == 0 {
		return nil, badRequest("ingest: no tuples (provide \"tuples\" or a server-side \"log\" path)")
	}
	// Successor builds are serialized with each other and with reloads so
	// two concurrent ingests cannot both extend the same predecessor.
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	start := time.Now()
	cur := s.reg.Current()
	// The social graph bounds the universe: a tail header declaring more
	// users than the graph holds cannot be honored, only rejected —
	// silently shrinking the declared universe would let the same file
	// mean different things here and in Log.AppendFromReader.
	if minUsers > cur.NumUsers() {
		return nil, badRequest("ingest: tail header declares %d users, but the graph has %d nodes", minUsers, cur.NumUsers())
	}
	sn, err := cur.Ingest(tuples, req.Compact)
	if err != nil {
		// A degraded partitioned snapshot answers 502, not 400: the tuples
		// may be perfectly valid, the model just cannot accept them.
		if ae, ok := err.(*apiError); ok {
			return nil, ae
		}
		return nil, badRequest("ingest: %v", err)
	}
	s.reg.Install(sn)
	elapsed := time.Since(start)
	s.logf("serve: ingested %d tuples into snapshot %d (%d actions, %d delta entries), %.0f ms",
		len(tuples), sn.ID, sn.Dataset().Log.NumActions(), sn.DeltaEntries(), float64(elapsed.Milliseconds()))
	return IngestResponse{
		Snapshot:       sn.ID,
		Dataset:        sn.Dataset().Name,
		AppendedTuples: len(tuples),
		Actions:        sn.Dataset().Log.NumActions(),
		Users:          sn.NumUsers(),
		Entries:        sn.Entries(),
		BaseEntries:    sn.BaseEntries(),
		DeltaEntries:   sn.DeltaEntries(),
		DeltaActions:   sn.DeltaActions(),
		ResidentBytes:  sn.ResidentBytes(),
		IngestMillis:   float64(elapsed.Nanoseconds()) / 1e6,
	}, nil
}

// --- /snapshot -------------------------------------------------------------

// snapshotRequest asks the server to checkpoint the current model as a
// binary snapshot at a server-side path.
type snapshotRequest struct {
	Path string `json:"path"`
}

// SnapshotResponse answers POST /snapshot with what was written.
type SnapshotResponse struct {
	Snapshot    int64   `json:"snapshot"`
	Dataset     string  `json:"dataset"`
	Path        string  `json:"path"`
	Actions     int     `json:"actions"`
	Users       int     `json:"users"`
	Entries     int64   `json:"entries"`
	Bytes       int64   `json:"bytes"`
	WriteMillis float64 `json:"write_ms"`
}

// handleSnapshot serializes the current snapshot's model — learned
// parameters, scanned UC structure, dataset lineage — to a server-side
// file, so an operator can checkpoint a long-running ingesting server and
// later restart it from the file (serve -model) in milliseconds instead
// of a full relearn+rescan. The write goes to a uniquely named temp file
// in the target directory and is renamed into place, so a crash mid-write
// never leaves a truncated snapshot at the requested path, and two
// concurrent checkpoints to the same path cannot interleave into one file
// (the later rename wins with a complete snapshot). Queries are never
// blocked: the written planner is the immutable base the snapshot already
// serves from.
func (s *Server) handleSnapshot(sn *Snapshot, r *http.Request) (any, error) {
	var req snapshotRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if req.Path == "" {
		return nil, badRequest("snapshot: missing \"path\"")
	}
	if sn.Partitioned() {
		return s.snapshotPartitioned(sn, req.Path)
	}
	// The rename below replaces whatever sits at the path. Like /ingest's
	// server-side log option, the path itself is trusted to the operator's
	// network boundary — but an existing file is only replaced if it
	// already is a snapshot, so a checkpoint can never clobber a graph,
	// log, or unrelated file through this endpoint.
	if prev, err := os.Open(req.Path); err == nil {
		header := make([]byte, 8)
		n, _ := io.ReadFull(prev, header)
		prev.Close()
		if !credist.IsModelSnapshot(header[:n]) {
			return nil, badRequest("snapshot: %q exists and is not a model snapshot; refusing to replace it", req.Path)
		}
	}
	start := time.Now()
	dir, base := filepath.Split(req.Path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return nil, badRequest("snapshot: %v", err)
	}
	tmp := f.Name()
	// The computed seed prefix rides along: it was selected against
	// exactly the base planner being written, so a restart from this file
	// serves /seeds up to the same k without running CELF at all.
	if err := sn.model.WriteSnapshot(f, sn.base, sn.checkpointPrefix()); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("snapshot: %v", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("snapshot: %v", err)
	}
	if err := os.Rename(tmp, req.Path); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("snapshot: %v", err)
	}
	var bytes int64
	if fi, err := os.Stat(req.Path); err == nil {
		bytes = fi.Size()
	}
	elapsed := time.Since(start)
	actions := sn.Dataset().Log.NumActions()
	s.checkpointMu.Lock()
	s.lastCheckpoint = &CheckpointInfo{
		Path:      req.Path,
		Snapshot:  sn.ID,
		Actions:   actions,
		Bytes:     bytes,
		WrittenAt: time.Now(),
	}
	s.checkpointMu.Unlock()
	s.logf("serve: wrote snapshot %d to %s (%d actions, %d bytes), %.0f ms",
		sn.ID, req.Path, actions, bytes, float64(elapsed.Milliseconds()))
	return SnapshotResponse{
		Snapshot:    sn.ID,
		Dataset:     sn.Dataset().Name,
		Path:        req.Path,
		Actions:     actions,
		Users:       sn.NumUsers(),
		Entries:     sn.Entries(),
		Bytes:       bytes,
		WriteMillis: float64(elapsed.Nanoseconds()) / 1e6,
	}, nil
}

// snapshotPartitioned checkpoints a partitioned snapshot as one slice file
// per partition at the canonical "<path>.slice-<i>-of-<n>" names, so a
// restart with `serve -model <path> -partitions <n>` finds them without
// re-splitting. Each slice goes through the same temp-and-rename dance as
// the single-file path, and the same clobber guard applies per slice.
func (s *Server) snapshotPartitioned(sn *Snapshot, path string) (any, error) {
	if err := sn.PartitionErr(); err != nil {
		return nil, &apiError{code: http.StatusBadGateway,
			msg: fmt.Sprintf("snapshot: partitioned model unavailable: %v", err)}
	}
	paths := credist.SlicePaths(path, sn.NumPartitions())
	for _, p := range paths {
		if prev, err := os.Open(p); err == nil {
			header := make([]byte, 8)
			n, _ := io.ReadFull(prev, header)
			prev.Close()
			if !credist.IsModelSnapshot(header[:n]) {
				return nil, badRequest("snapshot: %q exists and is not a model snapshot; refusing to replace it", p)
			}
		}
	}
	start := time.Now()
	if err := sn.SaveSlices(paths); err != nil {
		return nil, fmt.Errorf("snapshot: %v", err)
	}
	var bytes int64
	for _, p := range paths {
		if fi, err := os.Stat(p); err == nil {
			bytes += fi.Size()
		}
	}
	elapsed := time.Since(start)
	actions := sn.Dataset().Log.NumActions()
	s.checkpointMu.Lock()
	s.lastCheckpoint = &CheckpointInfo{
		Path:      path,
		Snapshot:  sn.ID,
		Actions:   actions,
		Bytes:     bytes,
		WrittenAt: time.Now(),
	}
	s.checkpointMu.Unlock()
	s.logf("serve: wrote %d snapshot slices for %s (%d actions, %d bytes), %.0f ms",
		len(paths), path, actions, bytes, float64(elapsed.Milliseconds()))
	return SnapshotResponse{
		Snapshot:    sn.ID,
		Dataset:     sn.Dataset().Name,
		Path:        path,
		Actions:     actions,
		Users:       sn.NumUsers(),
		Entries:     sn.Entries(),
		Bytes:       bytes,
		WriteMillis: float64(elapsed.Nanoseconds()) / 1e6,
	}, nil
}

// --- request parsing -------------------------------------------------------

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("bad JSON body: %v", err)
	}
	return nil
}

// parseIDList parses a comma-separated node-id list ("1,2,3"); blanks are
// tolerated, range checking happens in validateIDs.
func parseIDList(raw string) ([]credist.NodeID, error) {
	if raw == "" {
		return nil, nil
	}
	var ids []credist.NodeID
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.ParseInt(part, 10, 32)
		if err != nil {
			return nil, badRequest("bad user id %q", part)
		}
		ids = append(ids, credist.NodeID(id))
	}
	return ids, nil
}

// validateIDs range-checks a node-id list and rejects duplicates: a
// repeated id in a base seed set would commit the same seed twice,
// silently corrupting the V-S credit restriction (seeds=3,3,3 is never
// what the caller meant), so every id list gets a 400 instead.
func validateIDs(ids []credist.NodeID, numUsers int) error {
	seen := make(map[credist.NodeID]struct{}, len(ids))
	for _, id := range ids {
		if id < 0 || int(id) >= numUsers {
			return badRequest("user id %d out of range [0,%d)", id, numUsers)
		}
		if _, dup := seen[id]; dup {
			return badRequest("duplicate user id %d in list", id)
		}
		seen[id] = struct{}{}
	}
	return nil
}

func parseK(r *http.Request, numUsers int) (int, error) {
	raw := r.URL.Query().Get("k")
	if raw == "" {
		return 0, badRequest("missing k (e.g. ?k=10)")
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k < 1 {
		return 0, badRequest("k must be a positive integer, got %q", raw)
	}
	if k > numUsers {
		return 0, badRequest("k %d exceeds user count %d", k, numUsers)
	}
	return k, nil
}
