package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"credist"
	"credist/internal/datagen"
	"credist/internal/serve"
)

// The client path end to end: build a snapshot from a dataset, mount the
// server, and query it with plain HTTP/JSON. The served spread is
// bit-identical to the offline Model call — the serving layer adds no
// approximation, only concurrency.
func Example() {
	ds := credist.Generate(datagen.Config{
		Name: "demo", NumUsers: 200, OutDegree: 4, Reciprocity: 0.6,
		NumActions: 120, MeanInfluence: 0.1, MeanDelay: 8,
		SpontaneousPerAction: 1, Seed: 99,
	})
	snap, err := serve.Build(serve.Source{Dataset: ds, Lambda: 0.001})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(serve.New(snap).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/spread?seeds=1,2,3")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var out serve.SpreadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		panic(err)
	}

	offline := credist.Learn(ds, credist.Options{Lambda: 0.001})
	fmt.Println("status:", resp.StatusCode)
	fmt.Println("served spread matches offline model:", out.Spread == offline.Spread([]credist.NodeID{1, 2, 3}))
	// Output:
	// status: 200
	// served spread matches offline model: true
}

// Seed selection over HTTP: the first /seeds?k=N call grows the
// snapshot's one prefix-incremental CELF selection to k; repeats — and
// any smaller k — are answered from the computed prefix with zero
// selection work.
func ExampleSnapshot_SelectSeeds() {
	ds := credist.Generate(datagen.Config{
		Name: "demo", NumUsers: 200, OutDegree: 4, Reciprocity: 0.6,
		NumActions: 120, MeanInfluence: 0.1, MeanDelay: 8,
		SpontaneousPerAction: 1, Seed: 99,
	})
	snap, err := serve.Build(serve.Source{Dataset: ds, Lambda: 0.001})
	if err != nil {
		panic(err)
	}
	res, cached, err := snap.SelectSeeds(3)
	if err != nil {
		panic(err)
	}
	again, cachedAgain, err := snap.SelectSeeds(3)
	if err != nil {
		panic(err)
	}
	fmt.Println("seeds:", len(res.Seeds), "first cached:", cached, "second cached:", cachedAgain)
	fmt.Println("stable:", res.Seeds[0] == again.Seeds[0])
	// Output:
	// seeds: 3 first cached: false second cached: true
	// stable: true
}
