package serve_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"credist"
	"credist/internal/serve"
)

// TestServeMmapColdStart walks the out-of-core serving story: checkpoint a
// learned server, cold-start two more from the file — one parsing it onto
// the heap, one serving straight off a memory mapping — and require every
// answer bit-identical between them, the restored seed prefix to cost zero
// selections, /stats to report the resident split, and a re-checkpoint
// from the mapped server to reproduce the snapshot file byte for byte.
func TestServeMmapColdStart(t *testing.T) {
	dir := t.TempDir()
	gp, lp := filepath.Join(dir, "d.graph"), filepath.Join(dir, "d.log")
	if err := credist.SaveDataset(demoDataset(), gp, lp); err != nil {
		t.Fatalf("SaveDataset: %v", err)
	}

	// Server A learns from files, computes a seed prefix, and checkpoints.
	snA, err := serve.Build(serve.Source{GraphPath: gp, LogPath: lp, Lambda: 0.001})
	if err != nil {
		t.Fatalf("Build A: %v", err)
	}
	hA := serve.New(snA).Handler()
	var seedsA serve.SeedsResponse
	getJSON(t, hA, "GET", "/seeds?k=3", "", &seedsA)
	model1 := filepath.Join(dir, "model1.bin")
	var cp serve.SnapshotResponse
	getJSON(t, hA, "POST", "/snapshot", `{"path":"`+model1+`"}`, &cp)

	// Servers H (heap parse) and M (mapped) cold-start from the same file.
	snH, err := serve.Build(serve.Source{GraphPath: gp, LogPath: lp, ModelPath: model1})
	if err != nil {
		t.Fatalf("Build heap: %v", err)
	}
	snM, err := serve.Build(serve.Source{GraphPath: gp, LogPath: lp, ModelPath: model1, Mmap: true})
	if err != nil {
		t.Fatalf("Build mmap: %v", err)
	}
	hH, hM := serve.New(snH).Handler(), serve.New(snM).Handler()

	// /stats must expose the backend and a split that adds up.
	var st serve.StatsResponse
	getJSON(t, hM, "GET", "/stats", "", &st)
	if st.HeapBytes+st.MappedBytes != st.ResidentBytes {
		t.Errorf("heap %d + mapped %d != resident %d", st.HeapBytes, st.MappedBytes, st.ResidentBytes)
	}
	if st.RowStore != snM.RowStoreBackend() {
		t.Errorf("stats row_store = %q, snapshot says %q", st.RowStore, snM.RowStoreBackend())
	}
	if snM.RowStoreBackend() == "mmap" {
		if st.HeapBytes != 0 || st.MappedBytes == 0 {
			t.Errorf("mapped cold start reports heap %d / mapped %d bytes", st.HeapBytes, st.MappedBytes)
		}
		if !strings.Contains(st.Source, "(mmap)") {
			t.Errorf("stats source %q does not mark the mapping", st.Source)
		}
	}
	var stH serve.StatsResponse
	getJSON(t, hH, "GET", "/stats", "", &stH)
	if stH.RowStore != "heap" || stH.MappedBytes != 0 || stH.HeapBytes != stH.ResidentBytes {
		t.Errorf("heap cold start reports row_store %q, heap %d / mapped %d / resident %d",
			stH.RowStore, stH.HeapBytes, stH.MappedBytes, stH.ResidentBytes)
	}

	// Queries off the mapping are bit-identical to the heap parse.
	var spH, spM serve.SpreadResponse
	getJSON(t, hH, "GET", "/spread?seeds=1,2,3", "", &spH)
	getJSON(t, hM, "GET", "/spread?seeds=1,2,3", "", &spM)
	if spH.Spread != spM.Spread {
		t.Errorf("/spread differs across backends: %b vs %b", spH.Spread, spM.Spread)
	}
	var gH, gM serve.GainResponse
	getJSON(t, hH, "GET", "/gain?seeds=1&candidates=4,5,6", "", &gH)
	getJSON(t, hM, "GET", "/gain?seeds=1&candidates=4,5,6", "", &gM)
	if !equalFloats(gH.Gains, gM.Gains) {
		t.Errorf("/gain differs across backends: %v vs %v", gH.Gains, gM.Gains)
	}

	// The restored prefix serves /seeds with zero selection work, matching
	// the checkpointing server bit for bit.
	var seedsM serve.SeedsResponse
	getJSON(t, hM, "GET", "/seeds?k=3", "", &seedsM)
	requireSameSelection(t, "mapped restart", seedsA, seedsM)
	if !seedsM.Cached {
		t.Error("mapped restart /seeds not served from the restored prefix")
	}
	if n := snM.Selections(); n != 0 {
		t.Errorf("mapped restart ran %d selections for a prefix-covered k, want 0", n)
	}

	// A checkpoint taken from the mapped server reproduces its source file
	// byte for byte (the encoding of a given engine is canonical, and the
	// restored prefix is still exactly the one the file carried).
	model2 := filepath.Join(dir, "model2.bin")
	getJSON(t, hM, "POST", "/snapshot", `{"path":"`+model2+`"}`, &cp)
	b1, err := os.ReadFile(model1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(model2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("mapped server checkpoint differs from its source file: %d vs %d bytes", len(b2), len(b1))
	}

	// Growing past the prefix promotes written shards to the heap but never
	// touches the still-shared mapping; the selection stays bit-identical.
	var grownH, grownM serve.SeedsResponse
	getJSON(t, hH, "GET", "/seeds?k=5", "", &grownH)
	getJSON(t, hM, "GET", "/seeds?k=5", "", &grownM)
	requireSameSelection(t, "growth across backends", grownH, grownM)

	// Streaming ingest lands in a heap delta on top of the mapped base, and
	// the successor answers bit-identically to the heap-backed line.
	batch := demoIngestBatch(t, credist.ActionID(demoDataset().Log.NumActions()))
	reqTuples := make([]serve.IngestTuple, len(batch))
	for i, tp := range batch {
		reqTuples[i] = serve.IngestTuple{User: tp.User, Action: tp.Action, Time: tp.Time}
	}
	body, _ := json.Marshal(map[string]any{"tuples": reqTuples})
	var irH, irM serve.IngestResponse
	getJSON(t, hH, "POST", "/ingest", string(body), &irH)
	getJSON(t, hM, "POST", "/ingest", string(body), &irM)
	if irH.Entries != irM.Entries || irH.DeltaEntries != irM.DeltaEntries {
		t.Errorf("ingest shape differs across backends: %+v vs %+v", irH, irM)
	}
	getJSON(t, hM, "GET", "/stats", "", &st)
	if st.DeltaEntries != irM.DeltaEntries {
		t.Errorf("stats delta = %d, ingest reported %d", st.DeltaEntries, irM.DeltaEntries)
	}
	if snM.RowStoreBackend() == "mmap" {
		if st.RowStore != "mmap" {
			t.Errorf("post-ingest row_store = %q, want mmap (base still mapped)", st.RowStore)
		}
		if st.HeapBytes <= 0 {
			t.Errorf("post-ingest heap bytes = %d, want > 0 (delta is heap)", st.HeapBytes)
		}
		if st.MappedBytes == 0 {
			t.Error("post-ingest mapped bytes = 0, want the base still file-backed")
		}
	}
	getJSON(t, hH, "GET", "/spread?seeds=1,2,3", "", &spH)
	getJSON(t, hM, "GET", "/spread?seeds=1,2,3", "", &spM)
	if spH.Spread != spM.Spread {
		t.Errorf("post-ingest /spread differs across backends: %b vs %b", spH.Spread, spM.Spread)
	}
}

// TestServeMmapRequiresModel pins Build's refusal to map without a file,
// and the mapped open's refusal of non-snapshot inputs.
func TestServeMmapRequiresModel(t *testing.T) {
	if _, err := serve.Build(serve.Source{Dataset: demoDataset(), Mmap: true}); err == nil ||
		!strings.Contains(err.Error(), "mmap requires a model path") {
		t.Errorf("Build with mmap and no model path: err = %v", err)
	}
	dir := t.TempDir()
	bogus := filepath.Join(dir, "params.txt")
	if err := os.WriteFile(bogus, []byte("not a snapshot\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := serve.Build(serve.Source{Dataset: demoDataset(), ModelPath: bogus, Mmap: true}); err == nil {
		t.Error("mapped open of a non-snapshot file accepted")
	}
}
