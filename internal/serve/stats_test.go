package serve

import (
	"testing"
	"time"
)

// TestQPSEarlyUptime pins the first-minute QPS fix: the rate must divide
// by the seconds the server has actually been up (floored at 1, capped at
// 60), not by a flat 60 — 50 requests two seconds into uptime measured at
// the five-second mark are 10 QPS, not 0.83.
func TestQPSEarlyUptime(t *testing.T) {
	start := time.Unix(1_000_000, 0)
	newM := func() *metrics {
		m := newMetrics([]string{"spread"})
		m.start = start
		for i := 0; i < 50; i++ {
			m.hit("spread", start.Add(2*time.Second))
		}
		return m
	}

	cases := []struct {
		name string
		now  time.Time
		want float64
	}{
		{"5s of uptime divides by 5", start.Add(5 * time.Second), 10},
		{"25s of uptime divides by 25", start.Add(25 * time.Second), 2},
		// Fractional uptime rounds the window up, so the burst bucket (age
		// 2) stays inside a ceil(4.1)=5 second window.
		{"fractional uptime rounds up", start.Add(4100 * time.Millisecond), 10},
		{"a minute of uptime divides by 60", start.Add(60 * time.Second), 50.0 / 60},
		{"bucket ages out of the ring", start.Add(70 * time.Second), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, qps, _ := newM().snapshot(tc.now)
			if qps != tc.want {
				t.Fatalf("qps = %g, want %g", qps, tc.want)
			}
		})
	}
}

// TestQPSSubSecondUptime floors the divisor at one second so a burst in
// the very first instant reads as a finite rate.
func TestQPSSubSecondUptime(t *testing.T) {
	start := time.Unix(2_000_000, 0)
	m := newMetrics([]string{"spread"})
	m.start = start
	for i := 0; i < 7; i++ {
		m.hit("spread", start)
	}
	_, _, qps, uptime := m.snapshot(start.Add(800 * time.Millisecond))
	if uptime >= time.Second {
		t.Fatalf("uptime = %v, want sub-second", uptime)
	}
	if qps != 7 {
		t.Fatalf("qps = %g, want 7", qps)
	}
}

// TestQPSBucketAtWindowEdge pins the rounding fix: a burst in the
// server's very first second must still be counted when the window length
// equals that bucket's age — floor(uptime) used to exclude it, reporting
// 0 QPS for real traffic.
func TestQPSBucketAtWindowEdge(t *testing.T) {
	start := time.Unix(3_000_000, 0)
	m := newMetrics([]string{"spread"})
	m.start = start
	for i := 0; i < 50; i++ {
		m.hit("spread", start)
	}
	// Uptime 2.5s: window ceil(2.5)=3, burst bucket age 2 — included.
	if _, _, qps, _ := m.snapshot(start.Add(2500 * time.Millisecond)); qps != 50.0/3 {
		t.Fatalf("qps = %g, want %g", qps, 50.0/3)
	}
}

// TestQPSWindowBucketsWrap checks the lazy bucket reset still works with
// the windowed divisor: a burst 60+ seconds ago never leaks into the sum.
func TestQPSWindowBucketsWrap(t *testing.T) {
	var q qpsWindow
	for i := 0; i < 30; i++ {
		q.hit(int64(1000 + i))
	}
	if got := q.rate(1090, 60); got != 0 {
		t.Fatalf("wrapped rate = %g, want 0", got)
	}
	q.hit(1090)
	if got := q.rate(1090, 60); got != 1.0/60 {
		t.Fatalf("rate = %g, want %g", got, 1.0/60)
	}
	// A tiny window divides by its own length.
	if got := q.rate(1090, 1); got != 1 {
		t.Fatalf("1s-window rate = %g, want 1", got)
	}
}
