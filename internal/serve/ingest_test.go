package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"credist"
	"credist/internal/serve"
)

// demoIngestBatch builds a small new propagation over an edge the trained
// model actually assigns credit on, so the delta is non-empty. Action ids
// start at nextAction.
func demoIngestBatch(t *testing.T, nextAction credist.ActionID) []credist.Tuple {
	t.Helper()
	ds := demoDataset()
	m := demoModel()
	for _, e := range ds.Graph.Edges() {
		if m.PairCredit(e.From, e.To) > 0 {
			return []credist.Tuple{
				{User: e.From, Action: nextAction, Time: 10},
				{User: e.To, Action: nextAction, Time: 12},
			}
		}
	}
	t.Fatal("demo dataset has no credited edge")
	return nil
}

// TestIngestEndpoint drives the streaming path end to end: the successor
// snapshot is built incrementally, swapped atomically, answers queries
// bit-identically to an offline Model.Ingest over the same tuples, resets
// the computed seed prefix, and reports its base/delta split until a
// compacting ingest folds the delta away.
func TestIngestEndpoint(t *testing.T) {
	srv := newTestServer(t)
	h := srv.Handler()
	nextAction := credist.ActionID(demoDataset().Log.NumActions())
	batch := demoIngestBatch(t, nextAction)

	// Grow the seed prefix on the pre-ingest snapshot.
	var warm serve.SeedsResponse
	getJSON(t, h, "GET", "/seeds?k=3", "", &warm)

	body, _ := json.Marshal(map[string]any{"tuples": batch})
	var ir serve.IngestResponse
	getJSON(t, h, "POST", "/ingest", string(body), &ir)
	if ir.Snapshot != warm.Snapshot+1 {
		t.Errorf("snapshot id = %d, want %d", ir.Snapshot, warm.Snapshot+1)
	}
	if ir.AppendedTuples != len(batch) || ir.DeltaActions != 1 {
		t.Errorf("appended %d tuples / %d delta actions, want %d / 1", ir.AppendedTuples, ir.DeltaActions, len(batch))
	}
	if ir.DeltaEntries <= 0 {
		t.Errorf("delta entries = %d, want > 0 (batch rides a credited edge)", ir.DeltaEntries)
	}
	if ir.Entries != ir.BaseEntries+ir.DeltaEntries {
		t.Errorf("entries %d != base %d + delta %d", ir.Entries, ir.BaseEntries, ir.DeltaEntries)
	}

	// Every query now answers bit-identically to an offline Model.Ingest.
	offline, err := demoModel().Ingest(batch)
	if err != nil {
		t.Fatalf("offline Ingest: %v", err)
	}
	var sr serve.SpreadResponse
	getJSON(t, h, "GET", "/spread?seeds=1,2,3", "", &sr)
	if want := offline.Spread([]credist.NodeID{1, 2, 3}); sr.Spread != want {
		t.Errorf("post-ingest /spread = %b, offline = %b", sr.Spread, want)
	}
	var gr serve.GainResponse
	getJSON(t, h, "GET", "/gain?candidates=4,5,6", "", &gr)
	if want := offline.Gains(nil, []credist.NodeID{4, 5, 6}); !equalFloats(gr.Gains, want) {
		t.Errorf("post-ingest /gain = %v, offline = %v", gr.Gains, want)
	}

	// The computed seed prefix was invalidated and recomputes on the new model.
	var after serve.SeedsResponse
	getJSON(t, h, "GET", "/seeds?k=3", "", &after)
	if after.Cached {
		t.Error("seed prefix leaked across ingest")
	}
	if after.Snapshot != ir.Snapshot {
		t.Errorf("/seeds answered from snapshot %d, want %d", after.Snapshot, ir.Snapshot)
	}
	wantSeeds, wantGains := offline.SelectSeeds(3)
	for i := range wantSeeds {
		if after.Seeds[i] != wantSeeds[i] || after.Gains[i] != wantGains[i] {
			t.Errorf("post-ingest seed %d: served (%d, %b), offline (%d, %b)",
				i, after.Seeds[i], after.Gains[i], wantSeeds[i], wantGains[i])
		}
	}

	// /stats reports the lineage.
	var st serve.StatsResponse
	getJSON(t, h, "GET", "/stats", "", &st)
	if st.DeltaEntries != ir.DeltaEntries || st.DeltaActions != 1 || st.Ingests != 1 {
		t.Errorf("stats delta = %d entries / %d actions / %d ingests", st.DeltaEntries, st.DeltaActions, st.Ingests)
	}
	if st.LastIngest == nil {
		t.Error("stats missing last_ingest after ingest")
	}

	// A compacting ingest folds the delta into the base.
	batch2 := []credist.Tuple{
		{User: batch[0].User, Action: nextAction + 1, Time: 20},
		{User: batch[1].User, Action: nextAction + 1, Time: 23},
	}
	body2, _ := json.Marshal(map[string]any{"tuples": batch2, "compact": true})
	var ir2 serve.IngestResponse
	getJSON(t, h, "POST", "/ingest", string(body2), &ir2)
	if ir2.DeltaEntries != 0 || ir2.DeltaActions != 0 {
		t.Errorf("compacting ingest left delta %d entries / %d actions", ir2.DeltaEntries, ir2.DeltaActions)
	}
	offline2, err := offline.Ingest(batch2)
	if err != nil {
		t.Fatalf("offline Ingest 2: %v", err)
	}
	getJSON(t, h, "GET", "/spread?seeds=1,2,3", "", &sr)
	if want := offline2.Spread([]credist.NodeID{1, 2, 3}); sr.Spread != want {
		t.Errorf("post-compact /spread = %b, offline = %b", sr.Spread, want)
	}
}

// TestIngestFromServerSideLog feeds the tail through a file path, the
// shape `credist ingest` and the CI smoke test use.
func TestIngestFromServerSideLog(t *testing.T) {
	srv := newTestServer(t)
	h := srv.Handler()
	nextAction := credist.ActionID(demoDataset().Log.NumActions())
	batch := demoIngestBatch(t, nextAction)

	var lines strings.Builder
	fmt.Fprintf(&lines, "%d\n", demoDataset().NumUsers())
	for _, tp := range batch {
		fmt.Fprintf(&lines, "%d %d %g\n", tp.User, tp.Action, tp.Time)
	}
	path := filepath.Join(t.TempDir(), "tail.log")
	if err := os.WriteFile(path, []byte(lines.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(map[string]any{"log": path})
	var ir serve.IngestResponse
	getJSON(t, h, "POST", "/ingest", string(body), &ir)
	if ir.AppendedTuples != len(batch) {
		t.Fatalf("appended %d tuples, want %d", ir.AppendedTuples, len(batch))
	}
	offline, err := demoModel().Ingest(batch)
	if err != nil {
		t.Fatal(err)
	}
	var sr serve.SpreadResponse
	getJSON(t, h, "GET", "/spread?seeds=1,2,3", "", &sr)
	if want := offline.Spread([]credist.NodeID{1, 2, 3}); sr.Spread != want {
		t.Errorf("/spread = %b, offline = %b", sr.Spread, want)
	}
}

// TestIngestErrors pins the endpoint's validation surface.
func TestIngestErrors(t *testing.T) {
	h := newTestServer(t).Handler()
	next := demoDataset().Log.NumActions()
	cases := []struct {
		name    string
		body    string
		wantSub string
	}{
		{"empty", `{}`, "no tuples"},
		{"bad json", `{`, "bad JSON"},
		{"unknown field", `{"bogus":1}`, "bad JSON"},
		{"existing action", `{"tuples":[{"user":0,"action":0,"time":1}]}`, "existing action"},
		{"out of order", fmt.Sprintf(`{"tuples":[{"user":0,"action":%d,"time":5},{"user":1,"action":%d,"time":4}]}`, next, next), "out of order"},
		{"user beyond graph", fmt.Sprintf(`{"tuples":[{"user":100000,"action":%d,"time":1}]}`, next), "exceeds the graph"},
		{"missing log file", `{"log":"/nonexistent/tail.log"}`, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := do(t, h, "POST", "/ingest", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %v)", status, body)
			}
			msg, _ := body["error"].(string)
			if !strings.Contains(msg, tc.wantSub) {
				t.Errorf("error = %q, want substring %q", msg, tc.wantSub)
			}
		})
	}
	if status, _ := do(t, h, "GET", "/ingest", ""); status != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest status = %d, want 405", status)
	}

	// A server-side path pointing at a non-tail file must fail without
	// echoing the file's contents — otherwise /ingest doubles as a remote
	// file reader.
	secret := "hunter2-very-secret-token"
	path := filepath.Join(t.TempDir(), "secrets.txt")
	if err := os.WriteFile(path, []byte(secret+":more\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{"log": path})
	status, resp := do(t, h, "POST", "/ingest", string(body))
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
	msg, _ := resp["error"].(string)
	if strings.Contains(msg, secret) {
		t.Fatalf("error leaks file contents: %q", msg)
	}
	if !strings.Contains(msg, "not a parseable action-log tail") {
		t.Errorf("error = %q, want parse-failure message", msg)
	}
}

// TestConcurrentQueriesDuringIngest hammers the read endpoints while a
// writer streams successive ingests. Under -race this proves the
// frozen-base sharing story: successors share shards with the snapshot
// still serving traffic, and copy-on-write keeps seed selection on clones
// from ever touching them.
func TestConcurrentQueriesDuringIngest(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const readers = 8
	const requestsPerReader = 30
	const ingests = 3

	var failures atomic.Int64
	var wg sync.WaitGroup
	get := func(path string, out any) error {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < requestsPerReader; i++ {
				switch i % 3 {
				case 0:
					var out serve.SpreadResponse
					if err := get("/spread?seeds=1,2,3", &out); err != nil {
						t.Log(err)
						failures.Add(1)
						return
					}
				case 1:
					var out serve.GainResponse
					if err := get(fmt.Sprintf("/gain?seeds=1&candidates=%d,%d", w, 10+i%5), &out); err != nil {
						t.Log(err)
						failures.Add(1)
						return
					}
				case 2:
					var out serve.SeedsResponse
					if err := get("/seeds?k=2", &out); err != nil {
						t.Log(err)
						failures.Add(1)
						return
					}
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		next := credist.ActionID(demoDataset().Log.NumActions())
		batch := demoIngestBatch(t, next)
		for i := 0; i < ingests; i++ {
			tuples := []map[string]any{
				{"user": batch[0].User, "action": int(next), "time": 10 + i},
				{"user": batch[1].User, "action": int(next), "time": 12 + i},
			}
			body, _ := json.Marshal(map[string]any{"tuples": tuples})
			resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(string(body)))
			if err != nil {
				t.Log(err)
				failures.Add(1)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Logf("/ingest: status %d", resp.StatusCode)
				failures.Add(1)
				return
			}
			next++
		}
	}()

	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d concurrent requests failed", n)
	}
	var st serve.StatsResponse
	if err := get("/stats", &st); err != nil {
		t.Fatalf("/stats: %v", err)
	}
	if st.Snapshot != int64(1+ingests) || st.Ingests != ingests {
		t.Errorf("final snapshot %d / ingests %d, want %d / %d", st.Snapshot, st.Ingests, 1+ingests, ingests)
	}
}
