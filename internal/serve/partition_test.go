package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"credist"
	"credist/internal/serve"
)

// newPartitionedServer builds a serve.Server over the shared demo dataset
// split n ways behind the scatter-gather coordinator.
func newPartitionedServer(t *testing.T, n int) *serve.Server {
	t.Helper()
	snap, err := serve.Build(serve.Source{Dataset: demoDataset(), Lambda: 0.001, Partitions: n})
	if err != nil {
		t.Fatalf("Build(partitions=%d): %v", n, err)
	}
	if err := snap.PartitionErr(); err != nil {
		t.Fatalf("Build(partitions=%d) degraded: %v", n, err)
	}
	return serve.New(snap)
}

// bodyModuloSnapshot canonicalizes a JSON response body with the snapshot
// id (a per-process counter, never comparable across servers) removed, so
// two servers' answers can be compared byte for byte.
func bodyModuloSnapshot(t *testing.T, h http.Handler, method, target, body string) string {
	t.Helper()
	code, decoded := do(t, h, method, target, body)
	if code != http.StatusOK {
		t.Fatalf("%s %s: status %d: %v", method, target, code, decoded)
	}
	delete(decoded, "snapshot")
	out, err := json.Marshal(decoded)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	return string(out)
}

// TestPartitionCountParityHTTP is the serve-layer face of the partition
// determinism wall: the full HTTP responses of /spread (single and
// batched), /gain, and /seeds must be identical — modulo the snapshot id —
// whether the model is served by one partition or four. Float formatting
// goes through the same encoder on both sides, so equal JSON here means
// bit-identical float64s underneath.
func TestPartitionCountParityHTTP(t *testing.T) {
	one := newPartitionedServer(t, 1).Handler()
	four := newPartitionedServer(t, 4).Handler()
	requests := []struct {
		method, target, body string
	}{
		{"GET", "/spread?seeds=1,2,3", ""},
		{"GET", "/spread?seeds=17", ""},
		{"POST", "/spread", `{"sets":[[0,1],[5,6,7],[42]]}`},
		{"GET", "/gain?candidates=4,5,6&seeds=1,2", ""},
		{"GET", "/gain?candidates=0,10,20,30", ""},
		{"GET", "/seeds?k=5", ""},
		{"GET", "/seeds?k=3", ""}, // prefix slice of the k=5 selection
		{"GET", "/topk?method=highdeg&k=4", ""},
		// Campaign objectives ride the same wall: targeted, windowed,
		// blocked, and budgeted answers may not depend on the partition
		// count either.
		{"GET", "/spread?seeds=1,2&audience=4,5,6,7", ""},
		{"GET", "/spread?seeds=1,2&window=25", ""},
		{"GET", "/gain?candidates=4,5&seeds=1&blocked=2,3", ""},
		{"GET", "/seeds?k=3&audience=4,5,6,7", ""},
		{"GET", "/seeds?k=3&costs=1:3,2:3&budget=2.5", ""},
	}
	for _, req := range requests {
		a := bodyModuloSnapshot(t, one, req.method, req.target, req.body)
		b := bodyModuloSnapshot(t, four, req.method, req.target, req.body)
		if a != b {
			t.Errorf("%s %s diverged between 1 and 4 partitions:\n  1: %s\n  4: %s",
				req.method, req.target, a, b)
		}
	}
}

// TestStatsPartitionRows pins the /stats partition accounting: one row per
// partition with its row range, and top-level entries/heap/mapped equal to
// the row sums.
func TestStatsPartitionRows(t *testing.T) {
	const n = 4
	h := newPartitionedServer(t, n).Handler()
	code, st := do(t, h, "GET", "/stats", "")
	if code != http.StatusOK {
		t.Fatalf("/stats: status %d: %v", code, st)
	}
	if got := int(st["num_partitions"].(float64)); got != n {
		t.Fatalf("num_partitions = %d, want %d", got, n)
	}
	rows, ok := st["partitions"].([]any)
	if !ok || len(rows) != n {
		t.Fatalf("partitions = %v, want %d rows", st["partitions"], n)
	}
	var entries, heap, mapped float64
	prevHi := 0.0
	for i, raw := range rows {
		row := raw.(map[string]any)
		if lo := row["row_lo"].(float64); lo != prevHi {
			t.Errorf("partition %d: row_lo = %v, want %v (contiguous tiling)", i, lo, prevHi)
		}
		prevHi = row["row_hi"].(float64)
		entries += row["entries"].(float64)
		heap += row["heap_bytes"].(float64)
		mapped += row["mapped_bytes"].(float64)
		if row["row_store"].(string) == "" {
			t.Errorf("partition %d: empty row_store", i)
		}
	}
	if users := st["users"].(float64); prevHi != users {
		t.Errorf("last row_hi = %v, want the universe size %v", prevHi, users)
	}
	if st["entries"].(float64) != entries {
		t.Errorf("top-level entries %v != row sum %v", st["entries"], entries)
	}
	if st["heap_bytes"].(float64) != heap {
		t.Errorf("top-level heap_bytes %v != row sum %v", st["heap_bytes"], heap)
	}
	if st["mapped_bytes"].(float64) != mapped {
		t.Errorf("top-level mapped_bytes %v != row sum %v", st["mapped_bytes"], mapped)
	}
}

// writeDemoSlices checkpoints the demo model split n ways into dir and
// returns the slice paths.
func writeDemoSlices(t *testing.T, dir string, n int) []string {
	t.Helper()
	model := credist.Learn(demoDataset(), credist.Options{Lambda: 0.001})
	base := model.NewPlanner()
	base.Compact()
	pp, err := base.Partition(n)
	if err != nil {
		t.Fatalf("Partition(%d): %v", n, err)
	}
	paths := credist.SlicePaths(filepath.Join(dir, "model.bin"), n)
	if err := pp.SaveSlices(model, nil, paths); err != nil {
		t.Fatalf("SaveSlices: %v", err)
	}
	return paths
}

// TestDegradedPartitionServing injects a corrupt slice and pins the whole
// degraded fault path: Build records the failure instead of returning an
// error, /healthz answers 503, every model query answers 502 naming the
// failed partition, /ingest refuses with 502, and /reload refuses to
// install another degraded snapshot.
func TestDegradedPartitionServing(t *testing.T) {
	dir := t.TempDir()
	paths := writeDemoSlices(t, dir, 3)

	// Flip a byte mid-file: the slice still opens but fails its CRC.
	raw, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(paths[1], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	snap, err := serve.Build(serve.Source{Dataset: demoDataset(), SlicePaths: paths})
	if err != nil {
		t.Fatalf("Build returned a hard error, want a degraded snapshot: %v", err)
	}
	perr := snap.PartitionErr()
	if perr == nil {
		t.Fatal("corrupt slice produced a healthy snapshot")
	}
	if !strings.Contains(perr.Error(), "partition 1") || !strings.Contains(perr.Error(), paths[1]) {
		t.Fatalf("partition error does not name the failed partition and path: %v", perr)
	}
	h := serve.New(snap).Handler()

	if code, body := do(t, h, "GET", "/healthz", ""); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz: status %d, want 503: %v", code, body)
	}
	for _, target := range []string{
		"/spread?seeds=1,2", "/gain?candidates=3,4", "/seeds?k=3", "/topk?k=3",
	} {
		code, body := do(t, h, "GET", target, "")
		if code != http.StatusBadGateway {
			t.Errorf("%s: status %d, want 502: %v", target, code, body)
			continue
		}
		msg, _ := body["error"].(string)
		if !strings.Contains(msg, "partition 1") {
			t.Errorf("%s: error %q does not name the failed partition", target, msg)
		}
	}
	if code, body := do(t, h, "POST", "/ingest",
		`{"tuples":[{"user":0,"action":120,"time":1}]}`); code != http.StatusBadGateway {
		t.Errorf("/ingest: status %d, want 502: %v", code, body)
	}
	if code, body := do(t, h, "POST", "/snapshot",
		fmt.Sprintf(`{"path":%q}`, filepath.Join(dir, "out.bin"))); code != http.StatusBadGateway {
		t.Errorf("/snapshot: status %d, want 502: %v", code, body)
	}
	// /stats still answers (operators need it to diagnose) and carries the
	// recorded failure.
	code, st := do(t, h, "GET", "/stats", "")
	if code != http.StatusOK {
		t.Fatalf("/stats: status %d: %v", code, st)
	}
	if msg, _ := st["partition_error"].(string); !strings.Contains(msg, "partition 1") {
		t.Errorf("/stats partition_error = %q, want the recorded failure", msg)
	}
	// A reload pointing at the same broken slices must not install.
	graphPath, logPath := saveDemoDataset(t, dir)
	body, _ := json.Marshal(serve.Source{GraphPath: graphPath, LogPath: logPath, SlicePaths: paths})
	code, resp := do(t, h, "POST", "/reload", string(body))
	if code != http.StatusBadRequest {
		t.Errorf("/reload of degraded source: status %d, want 400: %v", code, resp)
	}
	if msg, _ := resp["error"].(string); !strings.Contains(msg, "degraded") {
		t.Errorf("/reload error %q does not say why it refused", msg)
	}
}

// saveDemoDataset writes the demo graph and log to dir so /reload bodies
// (which name server-side files, not in-process datasets) can rebuild it.
func saveDemoDataset(t *testing.T, dir string) (graphPath, logPath string) {
	t.Helper()
	graphPath = filepath.Join(dir, "demo.graph")
	logPath = filepath.Join(dir, "demo.log")
	if err := credist.SaveDataset(demoDataset(), graphPath, logPath); err != nil {
		t.Fatalf("SaveDataset: %v", err)
	}
	return graphPath, logPath
}

// TestReloadRefusesDegradedOverHealthy starts healthy, reloads into broken
// slices, and verifies the working snapshot keeps serving.
func TestReloadRefusesDegradedOverHealthy(t *testing.T) {
	dir := t.TempDir()
	paths := writeDemoSlices(t, dir, 2)
	if err := os.Truncate(paths[0], 16); err != nil {
		t.Fatal(err)
	}
	h := newPartitionedServer(t, 2).Handler()
	graphPath, logPath := saveDemoDataset(t, dir)
	body, _ := json.Marshal(serve.Source{GraphPath: graphPath, LogPath: logPath, SlicePaths: paths})
	code, resp := do(t, h, "POST", "/reload", string(body))
	if code != http.StatusBadRequest {
		t.Fatalf("/reload: status %d, want 400: %v", code, resp)
	}
	if msg, _ := resp["error"].(string); !strings.Contains(msg, "degraded") {
		t.Errorf("/reload error %q does not say why it refused", msg)
	}
	if code, _ := do(t, h, "GET", "/spread?seeds=1,2", ""); code != http.StatusOK {
		t.Errorf("healthy snapshot stopped serving after the refused reload: status %d", code)
	}
}

// TestPartitionedCheckpointRestart round-trips POST /snapshot in
// partitioned mode: the checkpoint writes one slice per partition under
// the canonical names, and a server restarted from those slices answers
// /seeds identically.
func TestPartitionedCheckpointRestart(t *testing.T) {
	const n = 2
	dir := t.TempDir()
	srv := newPartitionedServer(t, n)
	h := srv.Handler()
	// Ask twice so the captured body has cached:true, like the restarted
	// server's prefix-served answer.
	bodyModuloSnapshot(t, h, "GET", "/seeds?k=4", "")
	want := bodyModuloSnapshot(t, h, "GET", "/seeds?k=4", "")

	target := filepath.Join(dir, "ckpt.bin")
	code, resp := do(t, h, "POST", "/snapshot", fmt.Sprintf(`{"path":%q}`, target))
	if code != http.StatusOK {
		t.Fatalf("/snapshot: status %d: %v", code, resp)
	}
	paths := credist.SlicePaths(target, n)
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("checkpoint slice missing: %v", err)
		}
	}
	snap, err := serve.Build(serve.Source{Dataset: demoDataset(), SlicePaths: paths})
	if err != nil {
		t.Fatalf("Build from checkpoint slices: %v", err)
	}
	if err := snap.PartitionErr(); err != nil {
		t.Fatalf("checkpoint slices loaded degraded: %v", err)
	}
	restarted := serve.New(snap).Handler()
	// The checkpoint carries the computed seed prefix, so the restarted
	// server must answer k=4 from it — cached, no selection work.
	code, res := do(t, restarted, "GET", "/seeds?k=4", "")
	if code != http.StatusOK {
		t.Fatalf("restarted /seeds: status %d: %v", code, res)
	}
	if cached, _ := res["cached"].(bool); !cached {
		t.Error("restarted /seeds?k=4 was not served from the checkpointed prefix")
	}
	got := bodyModuloSnapshot(t, restarted, "GET", "/seeds?k=4", "")
	if got != want {
		t.Errorf("restarted /seeds diverged:\n  before: %s\n  after:  %s", want, got)
	}
}

// TestConcurrentQueriesDuringPartitionedIngest hammers the partitioned
// read path while ingests swap in successors; -race makes this a proof
// that coordinator queries never observe a partition mid-extension.
func TestConcurrentQueriesDuringPartitionedIngest(t *testing.T) {
	srv := newPartitionedServer(t, 3)
	h := srv.Handler()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, target := range []string{"/spread?seeds=1,2,3", "/gain?candidates=4,5&seeds=1"} {
					if code, body := do(t, h, "GET", target, ""); code != http.StatusOK {
						t.Errorf("%s during ingest: status %d: %v", target, code, body)
						return
					}
				}
			}
		}()
	}
	actions := demoDataset().Log.NumActions()
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(`{"tuples":[{"user":%d,"action":%d,"time":1},{"user":%d,"action":%d,"time":2}]}`,
			i, actions+i, i+100, actions+i)
		if code, resp := do(t, h, "POST", "/ingest", body); code != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %v", i, code, resp)
		}
	}
	close(stop)
	wg.Wait()
	sn := srv.Current()
	if got := sn.DeltaActions(); got != 5 {
		t.Errorf("after 5 partitioned ingests: %d delta actions, want 5", got)
	}
	if !sn.Partitioned() || sn.NumPartitions() != 3 {
		t.Errorf("ingest successor lost the partitioned shape: partitions=%d", sn.NumPartitions())
	}
}
