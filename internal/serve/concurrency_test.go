package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"credist"
	"credist/internal/serve"
)

// TestConcurrentQueriesAndReload hammers the read endpoints from many
// goroutines while another repeatedly swaps the snapshot through /reload.
// Under -race this proves the snapshot isolation story: queries only ever
// touch the immutable snapshot they pinned, reloads never mutate shared
// state, and no request is dropped or answered with a 5xx during a swap.
func TestConcurrentQueriesAndReload(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	gp, lp := filepath.Join(dir, "d.graph"), filepath.Join(dir, "d.log")
	if err := credist.SaveDataset(demoDataset(), gp, lp); err != nil {
		t.Fatalf("SaveDataset: %v", err)
	}
	reloadBody, _ := json.Marshal(serve.Source{GraphPath: gp, LogPath: lp, Lambda: 0.001})

	const readers = 8
	const requestsPerReader = 40
	const reloads = 3

	var failures atomic.Int64
	var wg sync.WaitGroup
	get := func(path string, out any) error {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}

	wantSpread := demoModel().Spread([]credist.NodeID{1, 2, 3})
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < requestsPerReader; i++ {
				switch i % 3 {
				case 0:
					var out serve.SpreadResponse
					if err := get("/spread?seeds=1,2,3", &out); err != nil {
						t.Log(err)
						failures.Add(1)
						return
					}
					// Every snapshot is learned from the same dataset, so the
					// answer is the same bits no matter which one served it.
					if out.Spread != wantSpread {
						t.Logf("spread diverged: %b vs %b", out.Spread, wantSpread)
						failures.Add(1)
						return
					}
				case 1:
					var out serve.GainResponse
					if err := get(fmt.Sprintf("/gain?candidates=%d,%d", w, 10+i%5), &out); err != nil {
						t.Log(err)
						failures.Add(1)
						return
					}
				case 2:
					var out serve.SeedsResponse
					if err := get("/seeds?k=2", &out); err != nil {
						t.Log(err)
						failures.Add(1)
						return
					}
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			resp, err := http.Post(ts.URL+"/reload", "application/json", strings.NewReader(string(reloadBody)))
			if err != nil {
				t.Log(err)
				failures.Add(1)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Logf("/reload: status %d", resp.StatusCode)
				failures.Add(1)
				return
			}
		}
	}()

	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d concurrent requests failed", n)
	}

	// The final snapshot id reflects every install: 1 initial + reloads.
	var st serve.StatsResponse
	if err := get("/stats", &st); err != nil {
		t.Fatalf("/stats: %v", err)
	}
	if st.Snapshot != int64(1+reloads) {
		t.Errorf("final snapshot id = %d, want %d", st.Snapshot, 1+reloads)
	}
}

// TestConcurrentSeedsSingleFlight hammers a cold snapshot with concurrent
// /seeds requests for the same k: the per-k single-flight must run CELF
// exactly once (not N times), every caller must get the identical result,
// and a distinct k must add exactly one more run. Run under -race this
// also proves the cache handshake itself is sound.
func TestConcurrentSeedsSingleFlight(t *testing.T) {
	srv := newTestServer(t)
	snap := srv.Current()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 16
	results := make([]serve.SeedsResponse, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			start.Wait()
			resp, err := http.Get(ts.URL + "/seeds?k=4")
			if err != nil {
				errs[c] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[c] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[c] = json.NewDecoder(resp.Body).Decode(&results[c])
		}(c)
	}
	start.Done()
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	if n := snap.Selections(); n != 1 {
		t.Fatalf("CELF ran %d times for %d concurrent requests, want exactly 1", n, clients)
	}
	for c := 1; c < clients; c++ {
		if len(results[c].Seeds) != len(results[0].Seeds) {
			t.Fatalf("client %d got %d seeds, client 0 got %d", c, len(results[c].Seeds), len(results[0].Seeds))
		}
		for i := range results[0].Seeds {
			if results[c].Seeds[i] != results[0].Seeds[i] || results[c].Gains[i] != results[0].Gains[i] {
				t.Fatalf("client %d diverged at seed %d", c, i)
			}
		}
	}

	// A different k is a genuinely new selection; the same k again is not.
	var again serve.SeedsResponse
	getJSON(t, srv.Handler(), "GET", "/seeds?k=2", "", &again)
	getJSON(t, srv.Handler(), "GET", "/seeds?k=4", "", &again)
	if n := snap.Selections(); n != 2 {
		t.Fatalf("selections = %d after one new k and one cached k, want 2", n)
	}
	if !again.Cached {
		t.Error("repeat k=4 not served from cache")
	}
}

// TestConcurrentGainsShareBasePlanner drives the batched gain path (which
// reads the shared scanned planner) from many goroutines at once; -race
// verifies Gain really is read-only.
func TestConcurrentGainsShareBasePlanner(t *testing.T) {
	srv := newTestServer(t)
	snap := srv.Current()
	want := demoModel().Gains(nil, []credist.NodeID{0, 1, 2, 3, 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got := snap.Gains(nil, []credist.NodeID{0, 1, 2, 3, 4})
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("gain %d: %b vs %b", j, got[j], want[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
