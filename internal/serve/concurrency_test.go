package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"credist"
	"credist/internal/serve"
)

// TestConcurrentQueriesAndReload hammers the read endpoints from many
// goroutines while another repeatedly swaps the snapshot through /reload.
// Under -race this proves the snapshot isolation story: queries only ever
// touch the immutable snapshot they pinned, reloads never mutate shared
// state, and no request is dropped or answered with a 5xx during a swap.
func TestConcurrentQueriesAndReload(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	gp, lp := filepath.Join(dir, "d.graph"), filepath.Join(dir, "d.log")
	if err := credist.SaveDataset(demoDataset(), gp, lp); err != nil {
		t.Fatalf("SaveDataset: %v", err)
	}
	reloadBody, _ := json.Marshal(serve.Source{GraphPath: gp, LogPath: lp, Lambda: 0.001})

	const readers = 8
	const requestsPerReader = 40
	const reloads = 3

	var failures atomic.Int64
	var wg sync.WaitGroup
	get := func(path string, out any) error {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}

	wantSpread := demoModel().Spread([]credist.NodeID{1, 2, 3})
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < requestsPerReader; i++ {
				switch i % 3 {
				case 0:
					var out serve.SpreadResponse
					if err := get("/spread?seeds=1,2,3", &out); err != nil {
						t.Log(err)
						failures.Add(1)
						return
					}
					// Every snapshot is learned from the same dataset, so the
					// answer is the same bits no matter which one served it.
					if out.Spread != wantSpread {
						t.Logf("spread diverged: %b vs %b", out.Spread, wantSpread)
						failures.Add(1)
						return
					}
				case 1:
					var out serve.GainResponse
					if err := get(fmt.Sprintf("/gain?candidates=%d,%d", w, 10+i%5), &out); err != nil {
						t.Log(err)
						failures.Add(1)
						return
					}
				case 2:
					var out serve.SeedsResponse
					if err := get("/seeds?k=2", &out); err != nil {
						t.Log(err)
						failures.Add(1)
						return
					}
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			resp, err := http.Post(ts.URL+"/reload", "application/json", strings.NewReader(string(reloadBody)))
			if err != nil {
				t.Log(err)
				failures.Add(1)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Logf("/reload: status %d", resp.StatusCode)
				failures.Add(1)
				return
			}
		}
	}()

	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d concurrent requests failed", n)
	}

	// The final snapshot id reflects every install: 1 initial + reloads.
	var st serve.StatsResponse
	if err := get("/stats", &st); err != nil {
		t.Fatalf("/stats: %v", err)
	}
	if st.Snapshot != int64(1+reloads) {
		t.Errorf("final snapshot id = %d, want %d", st.Snapshot, 1+reloads)
	}
}

// TestConcurrentGainsShareBasePlanner drives the batched gain path (which
// reads the shared scanned planner) from many goroutines at once; -race
// verifies Gain really is read-only.
func TestConcurrentGainsShareBasePlanner(t *testing.T) {
	srv := newTestServer(t)
	snap := srv.Current()
	want := demoModel().Gains(nil, []credist.NodeID{0, 1, 2, 3, 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got := snap.Gains(nil, []credist.NodeID{0, 1, 2, 3, 4})
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("gain %d: %b vs %b", j, got[j], want[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
