package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"credist"
	"credist/internal/serve"
)

// TestConcurrentQueriesAndReload hammers the read endpoints from many
// goroutines while another repeatedly swaps the snapshot through /reload.
// Under -race this proves the snapshot isolation story: queries only ever
// touch the immutable snapshot they pinned, reloads never mutate shared
// state, and no request is dropped or answered with a 5xx during a swap.
func TestConcurrentQueriesAndReload(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	gp, lp := filepath.Join(dir, "d.graph"), filepath.Join(dir, "d.log")
	if err := credist.SaveDataset(demoDataset(), gp, lp); err != nil {
		t.Fatalf("SaveDataset: %v", err)
	}
	reloadBody, _ := json.Marshal(serve.Source{GraphPath: gp, LogPath: lp, Lambda: 0.001})

	const readers = 8
	const requestsPerReader = 40
	const reloads = 3

	var failures atomic.Int64
	var wg sync.WaitGroup
	get := func(path string, out any) error {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}

	wantSpread := demoModel().Spread([]credist.NodeID{1, 2, 3})
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < requestsPerReader; i++ {
				switch i % 3 {
				case 0:
					var out serve.SpreadResponse
					if err := get("/spread?seeds=1,2,3", &out); err != nil {
						t.Log(err)
						failures.Add(1)
						return
					}
					// Every snapshot is learned from the same dataset, so the
					// answer is the same bits no matter which one served it.
					if out.Spread != wantSpread {
						t.Logf("spread diverged: %b vs %b", out.Spread, wantSpread)
						failures.Add(1)
						return
					}
				case 1:
					var out serve.GainResponse
					if err := get(fmt.Sprintf("/gain?candidates=%d,%d", w, 10+i%5), &out); err != nil {
						t.Log(err)
						failures.Add(1)
						return
					}
				case 2:
					var out serve.SeedsResponse
					if err := get("/seeds?k=2", &out); err != nil {
						t.Log(err)
						failures.Add(1)
						return
					}
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			resp, err := http.Post(ts.URL+"/reload", "application/json", strings.NewReader(string(reloadBody)))
			if err != nil {
				t.Log(err)
				failures.Add(1)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Logf("/reload: status %d", resp.StatusCode)
				failures.Add(1)
				return
			}
		}
	}()

	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d concurrent requests failed", n)
	}

	// The final snapshot id reflects every install: 1 initial + reloads.
	var st serve.StatsResponse
	if err := get("/stats", &st); err != nil {
		t.Fatalf("/stats: %v", err)
	}
	if st.Snapshot != int64(1+reloads) {
		t.Errorf("final snapshot id = %d, want %d", st.Snapshot, 1+reloads)
	}
}

// TestConcurrentSeedsSingleFlight hammers a cold snapshot with concurrent
// /seeds requests for the same k: the growth lock must run CELF exactly
// once (not N times), every caller must get the identical result, a
// smaller k afterwards must be answered from the computed prefix with
// zero additional runs, and only a k beyond the prefix adds exactly one
// more (marginal) growth run. Run under -race this also proves the
// publish/read handshake itself is sound.
func TestConcurrentSeedsSingleFlight(t *testing.T) {
	srv := newTestServer(t)
	snap := srv.Current()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 16
	results := make([]serve.SeedsResponse, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			start.Wait()
			resp, err := http.Get(ts.URL + "/seeds?k=4")
			if err != nil {
				errs[c] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[c] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[c] = json.NewDecoder(resp.Body).Decode(&results[c])
		}(c)
	}
	start.Done()
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	if n := snap.Selections(); n != 1 {
		t.Fatalf("CELF ran %d times for %d concurrent requests, want exactly 1", n, clients)
	}
	for c := 1; c < clients; c++ {
		if len(results[c].Seeds) != len(results[0].Seeds) {
			t.Fatalf("client %d got %d seeds, client 0 got %d", c, len(results[c].Seeds), len(results[0].Seeds))
		}
		for i := range results[0].Seeds {
			if results[c].Seeds[i] != results[0].Seeds[i] || results[c].Gains[i] != results[0].Gains[i] {
				t.Fatalf("client %d diverged at seed %d", c, i)
			}
		}
	}

	// A smaller k is a prefix of the computed selection — zero CELF work —
	// and the same k again is too.
	var smaller, again serve.SeedsResponse
	getJSON(t, srv.Handler(), "GET", "/seeds?k=2", "", &smaller)
	getJSON(t, srv.Handler(), "GET", "/seeds?k=4", "", &again)
	if n := snap.Selections(); n != 1 {
		t.Fatalf("selections = %d after a smaller k and a repeat k, want still 1", n)
	}
	if !smaller.Cached || !again.Cached {
		t.Errorf("prefix requests not served from the computed selection: k=2 cached=%v, k=4 cached=%v",
			smaller.Cached, again.Cached)
	}
	for i := range smaller.Seeds {
		if smaller.Seeds[i] != results[0].Seeds[i] || smaller.Gains[i] != results[0].Gains[i] {
			t.Fatalf("k=2 prefix diverges from the k=4 selection at seed %d", i)
		}
	}

	// Only a k beyond the computed prefix grows the selection — one more
	// run, and it reuses the committed prefix rather than restarting.
	var grown serve.SeedsResponse
	getJSON(t, srv.Handler(), "GET", "/seeds?k=6", "", &grown)
	if n := snap.Selections(); n != 2 {
		t.Fatalf("selections = %d after growing to k=6, want 2", n)
	}
	if grown.Cached {
		t.Error("growth to k=6 reported cached")
	}
	for i := range results[0].Seeds {
		if grown.Seeds[i] != results[0].Seeds[i] || grown.Gains[i] != results[0].Gains[i] {
			t.Fatalf("grown selection rewrote the committed prefix at seed %d", i)
		}
	}
}

// TestPrefixReuseZeroExtraCELF pins the prefix-incremental contract under
// concurrent load: after one cold /seeds?k=50, sixteen goroutines
// requesting every k in {1..50} trigger zero additional CELF runs, and
// every answer is exactly the first k seeds of the one computed
// selection. Run under -race this also proves the lock-free prefix reads
// are sound against concurrent /stats.
func TestPrefixReuseZeroExtraCELF(t *testing.T) {
	srv := newTestServer(t)
	snap := srv.Current()
	h := srv.Handler()

	const maxK = 50
	var cold serve.SeedsResponse
	getJSON(t, h, "GET", fmt.Sprintf("/seeds?k=%d", maxK), "", &cold)
	if cold.Cached || len(cold.Seeds) != maxK {
		t.Fatalf("cold k=%d: cached=%v, %d seeds", maxK, cold.Cached, len(cold.Seeds))
	}
	if n := snap.Selections(); n != 1 {
		t.Fatalf("cold run executed %d selections, want 1", n)
	}

	const clients = 16
	var wg sync.WaitGroup
	var failures atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 1; k <= maxK; k++ {
				var resp serve.SeedsResponse
				status, _ := doRaw(t, h, "GET", fmt.Sprintf("/seeds?k=%d", k), "", &resp)
				if status != http.StatusOK || !resp.Cached || len(resp.Seeds) != k {
					t.Logf("client %d k=%d: status %d cached=%v seeds=%d", c, k, status, resp.Cached, len(resp.Seeds))
					failures.Add(1)
					return
				}
				for i := 0; i < k; i++ {
					if resp.Seeds[i] != cold.Seeds[i] || resp.Gains[i] != cold.Gains[i] {
						t.Logf("client %d k=%d: diverged at seed %d", c, k, i)
						failures.Add(1)
						return
					}
				}
				// The prefix spread is the cumulative gain sum, bit-for-bit.
				want := 0.0
				for _, g := range resp.Gains {
					want += g
				}
				if resp.Spread != want {
					t.Logf("client %d k=%d: spread %b != cumulative %b", c, k, resp.Spread, want)
					failures.Add(1)
					return
				}
				if k%10 == 0 {
					// Interleave /stats reads with the prefix slicing.
					var st serve.StatsResponse
					if status, _ := doRaw(t, h, "GET", "/stats", "", &st); status != http.StatusOK {
						failures.Add(1)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d concurrent prefix reads failed", n)
	}
	if n := snap.Selections(); n != 1 {
		t.Fatalf("prefix reuse ran %d extra CELF selections for %d clients x %d ks, want 0 extra (1 total)",
			n-1, clients, maxK)
	}
	var st serve.StatsResponse
	getJSON(t, h, "GET", "/stats", "", &st)
	if st.SeedPrefixK != maxK || st.Selections != 1 {
		t.Fatalf("stats report prefix k=%d selections=%d, want %d and 1", st.SeedPrefixK, st.Selections, maxK)
	}
}

// TestConcurrentGainsShareBasePlanner drives the batched gain path (which
// reads the shared scanned planner) from many goroutines at once; -race
// verifies Gain really is read-only.
func TestConcurrentGainsShareBasePlanner(t *testing.T) {
	srv := newTestServer(t)
	snap := srv.Current()
	want := demoModel().Gains(nil, []credist.NodeID{0, 1, 2, 3, 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, err := snap.Gains(nil, []credist.NodeID{0, 1, 2, 3, 4})
				if err != nil {
					t.Errorf("Gains: %v", err)
					return
				}
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("gain %d: %b vs %b", j, got[j], want[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
