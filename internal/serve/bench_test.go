package serve_test

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"credist"
	"credist/internal/serve"
)

func benchServer(b *testing.B) http.Handler {
	b.Helper()
	snap, err := serve.Build(serve.Source{Dataset: demoDataset(), Lambda: 0.001})
	if err != nil {
		b.Fatalf("Build: %v", err)
	}
	return serve.New(snap).Handler()
}

func hit(b *testing.B, h http.Handler, target string) {
	b.Helper()
	r := httptest.NewRequest("GET", target, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		b.Fatalf("%s: status %d: %s", target, w.Code, w.Body.String())
	}
}

// BenchmarkServeSpreadParallel is the load-smoke number: concurrent /spread
// queries against one snapshot, the serving layer's hot path.
func BenchmarkServeSpreadParallel(b *testing.B) {
	h := benchServer(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			hit(b, h, "/spread?seeds=1,2,3")
		}
	})
}

// BenchmarkServeGainBatch measures a 32-candidate batched gain request.
func BenchmarkServeGainBatch(b *testing.B) {
	h := benchServer(b)
	ids := make([]string, 32)
	for i := range ids {
		ids[i] = strconv.Itoa(i)
	}
	target := "/gain?candidates=" + strings.Join(ids, ",")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			hit(b, h, target)
		}
	})
}

// BenchmarkServeSeedsCached measures the prefix-served /seeds path: after
// the first request the CELF run is amortized away entirely.
func BenchmarkServeSeedsCached(b *testing.B) {
	h := benchServer(b)
	hit(b, h, "/seeds?k=5") // warm the cache
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			hit(b, h, "/seeds?k=5")
		}
	})
}

// BenchmarkSnapshotClone measures the planner clone a cold /seeds request
// (or a /gain with a base set) pays instead of a full log rescan.
func BenchmarkSnapshotClone(b *testing.B) {
	model := demoModel()
	base := model.NewPlanner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := base.Clone()
		p.Add(credist.NodeID(i % 200))
	}
}
