package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"credist"
	"credist/internal/actionlog"
	"credist/internal/datagen"
	"credist/internal/serve"
)

// demoDataset is a small deterministic dataset shared by the serve tests;
// learning and scanning it takes milliseconds.
var demoDataset = sync.OnceValue(func() *credist.Dataset {
	return credist.Generate(datagen.Config{
		Name: "demo", NumUsers: 200, OutDegree: 4, Reciprocity: 0.6,
		NumActions: 120, MeanInfluence: 0.1, MeanDelay: 8,
		SpontaneousPerAction: 1, Seed: 99,
	})
})

var demoModel = sync.OnceValue(func() *credist.Model {
	return credist.Learn(demoDataset(), credist.Options{Lambda: 0.001})
})

func newTestServer(t *testing.T) *serve.Server {
	t.Helper()
	snap, err := serve.Build(serve.Source{Dataset: demoDataset(), Lambda: 0.001})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return serve.New(snap)
}

// do performs one request against the handler and decodes the JSON body.
func do(t *testing.T, h http.Handler, method, target, body string) (int, map[string]any) {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	var decoded map[string]any
	if ct := w.Header().Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
			t.Fatalf("%s %s: bad JSON body %q: %v", method, target, w.Body.String(), err)
		}
	}
	return w.Code, decoded
}

// TestHandlerTable pins the JSON shape and status code of every endpoint,
// including the error paths.
func TestHandlerTable(t *testing.T) {
	h := newTestServer(t).Handler()
	cases := []struct {
		name       string
		method     string
		target     string
		body       string
		wantStatus int
		wantKeys   []string // required top-level JSON keys
		wantErrSub string   // substring the "error" value must contain
	}{
		{name: "healthz", method: "GET", target: "/healthz",
			wantStatus: 200, wantKeys: []string{"status", "snapshot", "dataset"}},
		{name: "spread GET", method: "GET", target: "/spread?seeds=1,2,3",
			wantStatus: 200, wantKeys: []string{"snapshot", "seeds", "spread"}},
		{name: "spread POST", method: "POST", target: "/spread", body: `{"seeds":[1,2,3]}`,
			wantStatus: 200, wantKeys: []string{"snapshot", "seeds", "spread"}},
		{name: "spread batch", method: "POST", target: "/spread", body: `{"sets":[[1],[2,3]]}`,
			wantStatus: 200, wantKeys: []string{"snapshot", "spreads"}},
		{name: "spread missing seeds", method: "GET", target: "/spread",
			wantStatus: 400, wantErrSub: "missing seeds"},
		{name: "spread bad id", method: "GET", target: "/spread?seeds=1,x",
			wantStatus: 400, wantErrSub: "bad user id"},
		{name: "spread out of range", method: "GET", target: "/spread?seeds=100000",
			wantStatus: 400, wantErrSub: "out of range"},
		{name: "spread seeds and sets", method: "POST", target: "/spread", body: `{"seeds":[1],"sets":[[2]]}`,
			wantStatus: 400, wantErrSub: "not both"},
		{name: "spread duplicate seeds", method: "GET", target: "/spread?seeds=3,3,3",
			wantStatus: 400, wantErrSub: "duplicate user id 3"},
		{name: "spread batch duplicate in set", method: "POST", target: "/spread", body: `{"sets":[[1],[2,2]]}`,
			wantStatus: 400, wantErrSub: "duplicate user id 2"},
		{name: "gain duplicate base seeds", method: "GET", target: "/gain?seeds=5,5&candidates=1",
			wantStatus: 400, wantErrSub: "duplicate user id 5"},
		{name: "gain duplicate candidates", method: "POST", target: "/gain", body: `{"candidates":[4,4]}`,
			wantStatus: 400, wantErrSub: "duplicate user id 4"},
		{name: "spread bad json", method: "POST", target: "/spread", body: `{"seeds":`,
			wantStatus: 400, wantErrSub: "bad JSON"},
		{name: "gain GET", method: "GET", target: "/gain?candidates=4,5",
			wantStatus: 200, wantKeys: []string{"snapshot", "candidates", "gains"}},
		{name: "gain with base", method: "POST", target: "/gain", body: `{"seeds":[1],"candidates":[4,5]}`,
			wantStatus: 200, wantKeys: []string{"snapshot", "seeds", "candidates", "gains"}},
		{name: "gain missing candidates", method: "GET", target: "/gain",
			wantStatus: 400, wantErrSub: "missing candidates"},
		{name: "seeds", method: "GET", target: "/seeds?k=3",
			wantStatus: 200, wantKeys: []string{"snapshot", "k", "seeds", "gains", "spread", "lookups", "cached"}},
		{name: "seeds missing k", method: "GET", target: "/seeds",
			wantStatus: 400, wantErrSub: "missing k"},
		{name: "seeds bad k", method: "GET", target: "/seeds?k=0",
			wantStatus: 400, wantErrSub: "positive integer"},
		{name: "seeds k too large", method: "GET", target: "/seeds?k=100000",
			wantStatus: 400, wantErrSub: "exceeds user count"},
		{name: "spread targeted", method: "GET", target: "/spread?seeds=1,2&audience=4,5,6",
			wantStatus: 200, wantKeys: []string{"snapshot", "seeds", "spread"}},
		{name: "spread windowed", method: "GET", target: "/spread?seeds=1,2&window=25",
			wantStatus: 200, wantKeys: []string{"snapshot", "seeds", "spread"}},
		{name: "spread bad window", method: "GET", target: "/spread?seeds=1&window=soon",
			wantStatus: 400, wantErrSub: "window must be a number"},
		{name: "spread unknown audience id", method: "GET", target: "/spread?seeds=1&audience=100000",
			wantStatus: 400, wantErrSub: "audience user 100000 outside the universe"},
		{name: "spread costs rejected", method: "GET", target: "/spread?seeds=1&costs=1:2",
			wantStatus: 400, wantErrSub: "not spread evaluation"},
		{name: "spread objective on batch", method: "POST", target: "/spread", body: `{"sets":[[1],[2]],"audience":[3]}`,
			wantStatus: 400, wantErrSub: "not a batch"},
		{name: "gain blocked", method: "GET", target: "/gain?candidates=4,5&blocked=7",
			wantStatus: 200, wantKeys: []string{"snapshot", "candidates", "gains"}},
		{name: "gain unknown blocked id", method: "GET", target: "/gain?candidates=4&blocked=100000",
			wantStatus: 400, wantErrSub: "blocked user 100000 outside the universe"},
		{name: "gain budget rejected", method: "GET", target: "/gain?candidates=4&budget=3",
			wantStatus: 400, wantErrSub: "not gain evaluation"},
		{name: "gain costs rejected", method: "GET", target: "/gain?candidates=4&costs=1:2",
			wantStatus: 400, wantErrSub: "not gain evaluation"},
		{name: "seeds budgeted", method: "GET", target: "/seeds?k=3&costs=1:5,2:5&budget=4",
			wantStatus: 200, wantKeys: []string{"snapshot", "k", "seeds", "gains", "spread", "lookups", "cached"}},
		{name: "seeds negative budget", method: "GET", target: "/seeds?k=3&budget=-4",
			wantStatus: 400, wantErrSub: "neither value space"},
		{name: "seeds budget NaN", method: "GET", target: "/seeds?k=3&budget=NaN",
			wantStatus: 400, wantErrSub: "neither value space"},
		{name: "seeds budget -5", method: "GET", target: "/seeds?k=3&budget=-5",
			wantStatus: 400, wantErrSub: "neither value space"},
		{name: "seeds budget Inf", method: "GET", target: "/seeds?k=3&budget=Inf",
			wantStatus: 400, wantErrSub: "neither value space"},
		{name: "seeds duration budget with costs", method: "GET", target: "/seeds?k=3&budget=10ms&costs=1:2",
			wantStatus: 400, wantErrSub: "only the default objective"},
		{name: "seeds malformed costs", method: "GET", target: "/seeds?k=3&costs=1-2",
			wantStatus: 400, wantErrSub: "costs must be id:cost pairs"},
		{name: "seeds costs bad user", method: "GET", target: "/seeds?k=3&costs=100000:2",
			wantStatus: 400, wantErrSub: "out of range"},
		{name: "seeds objective with eps", method: "GET", target: "/seeds?k=3&eps=0.1&audience=1,2",
			wantStatus: 400, wantErrSub: "only the default objective"},
		{name: "topk highdeg", method: "GET", target: "/topk?method=highdeg&k=3",
			wantStatus: 200, wantKeys: []string{"snapshot", "method", "k", "seeds", "spread"}},
		{name: "topk pagerank", method: "GET", target: "/topk?method=pagerank&k=3",
			wantStatus: 200, wantKeys: []string{"snapshot", "method", "k", "seeds", "spread"}},
		{name: "topk unknown method", method: "GET", target: "/topk?method=bogus&k=3",
			wantStatus: 400, wantErrSub: "unknown method"},
		{name: "explain seed", method: "GET", target: "/explain?seed=4",
			wantStatus: 200, wantKeys: []string{"snapshot", "seed", "gain", "paths", "total_paths"}},
		{name: "explain reach", method: "GET", target: "/explain?set=1,2&reach=5",
			wantStatus: 200, wantKeys: []string{"snapshot", "target", "seeds", "total", "per_seed", "paths", "total_paths"}},
		{name: "explain missing query", method: "GET", target: "/explain",
			wantStatus: 400, wantErrSub: "missing query"},
		{name: "explain both shapes", method: "GET", target: "/explain?seed=1&set=2&reach=3",
			wantStatus: 400, wantErrSub: "mutually exclusive"},
		{name: "explain set without reach", method: "GET", target: "/explain?set=1,2",
			wantStatus: 400, wantErrSub: "both set= and reach="},
		{name: "explain reach without set", method: "GET", target: "/explain?reach=5",
			wantStatus: 400, wantErrSub: "both set= and reach="},
		{name: "explain bad top", method: "GET", target: "/explain?seed=1&top=0",
			wantStatus: 400, wantErrSub: "positive integer"},
		{name: "explain seed out of range", method: "GET", target: "/explain?seed=100000",
			wantStatus: 400, wantErrSub: "out of range"},
		{name: "explain multi seed", method: "GET", target: "/explain?seed=1,2",
			wantStatus: 400, wantErrSub: "single user id"},
		{name: "explain multi reach", method: "GET", target: "/explain?set=1&reach=5,6",
			wantStatus: 400, wantErrSub: "single user id"},
		{name: "explain duplicate set", method: "GET", target: "/explain?set=2,2&reach=5",
			wantStatus: 400, wantErrSub: "duplicate user id 2"},
		{name: "explain empty set", method: "GET", target: "/explain?set=,&reach=5",
			wantStatus: 400, wantErrSub: "at least one seed"},
		{name: "explain wrong method", method: "POST", target: "/explain",
			wantStatus: 405},
		{name: "stats", method: "GET", target: "/stats",
			wantStatus: 200, wantKeys: []string{"snapshot", "dataset", "users", "entries", "resident_bytes",
				"heap_bytes", "mapped_bytes", "row_store", "requests", "qps_1m", "prov_pairs", "prov_builds",
				"explain_requests"}},
		{name: "reload wrong method", method: "GET", target: "/reload",
			wantStatus: 405},
		{name: "reload bad json", method: "POST", target: "/reload", body: `{`,
			wantStatus: 400, wantErrSub: "bad JSON"},
		{name: "reload unknown preset", method: "POST", target: "/reload", body: `{"preset":"nope"}`,
			wantStatus: 400, wantErrSub: "valid presets"},
		{name: "reload unknown field", method: "POST", target: "/reload", body: `{"bogus":1}`,
			wantStatus: 400, wantErrSub: "bad JSON"},
		{name: "reload empty source", method: "POST", target: "/reload", body: `{}`,
			wantStatus: 400, wantErrSub: "needs a preset"},
		{name: "reload mmap without model", method: "POST", target: "/reload", body: `{"preset":"flixster-small","mmap":true}`,
			wantStatus: 400, wantErrSub: "mmap requires a model path"},
		{name: "snapshot wrong method", method: "GET", target: "/snapshot",
			wantStatus: 405},
		{name: "snapshot missing path", method: "POST", target: "/snapshot", body: `{}`,
			wantStatus: 400, wantErrSub: "missing \"path\""},
		{name: "snapshot bad json", method: "POST", target: "/snapshot", body: `{`,
			wantStatus: 400, wantErrSub: "bad JSON"},
		{name: "snapshot unwritable path", method: "POST", target: "/snapshot", body: `{"path":"/nonexistent-dir/model.bin"}`,
			wantStatus: 400, wantErrSub: "snapshot"},
		{name: "unknown path", method: "GET", target: "/nope",
			wantStatus: 404, wantErrSub: "no such endpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := do(t, h, tc.method, tc.target, tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %v)", status, tc.wantStatus, body)
			}
			for _, key := range tc.wantKeys {
				if _, ok := body[key]; !ok {
					t.Errorf("response missing key %q: %v", key, body)
				}
			}
			if tc.wantErrSub != "" {
				msg, _ := body["error"].(string)
				if !strings.Contains(msg, tc.wantErrSub) {
					t.Errorf("error = %q, want substring %q", msg, tc.wantErrSub)
				}
			}
		})
	}
}

// TestBitIdenticalToOfflineModel is the serving layer's core guarantee:
// every query answer equals — exactly, not approximately — the value the
// offline Model produces. JSON carries float64 through Go's shortest
// round-trip encoding, so even the HTTP boundary preserves the bits.
func TestBitIdenticalToOfflineModel(t *testing.T) {
	h := newTestServer(t).Handler()
	model := demoModel()

	seeds := []credist.NodeID{1, 2, 3}
	var sr serve.SpreadResponse
	getJSON(t, h, "GET", "/spread?seeds=1,2,3", "", &sr)
	if want := model.Spread(seeds); sr.Spread != want {
		t.Errorf("/spread = %b, offline Spread = %b", sr.Spread, want)
	}

	var gr serve.GainResponse
	getJSON(t, h, "GET", "/gain?candidates=4,5,6", "", &gr)
	if want := model.Gains(nil, []credist.NodeID{4, 5, 6}); !equalFloats(gr.Gains, want) {
		t.Errorf("/gain = %v, offline Gains = %v", gr.Gains, want)
	}

	getJSON(t, h, "POST", "/gain", `{"seeds":[1,2],"candidates":[4,5,6]}`, &gr)
	if want := model.Gains([]credist.NodeID{1, 2}, []credist.NodeID{4, 5, 6}); !equalFloats(gr.Gains, want) {
		t.Errorf("/gain with base = %v, offline Gains = %v", gr.Gains, want)
	}

	// A candidate already committed in the base set gains exactly 0.
	getJSON(t, h, "GET", "/gain?seeds=5&candidates=5,6", "", &gr)
	if gr.Gains[0] != 0 {
		t.Errorf("/gain for committed seed = %g, want 0", gr.Gains[0])
	}
	if want := model.Gains([]credist.NodeID{5}, []credist.NodeID{5, 6}); !equalFloats(gr.Gains, want) {
		t.Errorf("/gain committed-seed case = %v, offline Gains = %v", gr.Gains, want)
	}

	var seedsResp serve.SeedsResponse
	getJSON(t, h, "GET", "/seeds?k=4", "", &seedsResp)
	wantSeeds, wantGains := model.SelectSeeds(4)
	if len(seedsResp.Seeds) != len(wantSeeds) {
		t.Fatalf("/seeds returned %d seeds, offline %d", len(seedsResp.Seeds), len(wantSeeds))
	}
	for i := range wantSeeds {
		if seedsResp.Seeds[i] != wantSeeds[i] || seedsResp.Gains[i] != wantGains[i] {
			t.Errorf("seed %d: served (%d, %b), offline (%d, %b)",
				i, seedsResp.Seeds[i], seedsResp.Gains[i], wantSeeds[i], wantGains[i])
		}
	}

	var batch serve.SpreadBatchResponse
	getJSON(t, h, "POST", "/spread", `{"sets":[[1],[2,3],[4,5,6]]}`, &batch)
	wantBatch := []float64{
		model.Spread([]credist.NodeID{1}),
		model.Spread([]credist.NodeID{2, 3}),
		model.Spread([]credist.NodeID{4, 5, 6}),
	}
	if !equalFloats(batch.Spreads, wantBatch) {
		t.Errorf("/spread batch = %v, offline = %v", batch.Spreads, wantBatch)
	}
}

// TestExplainEndpoints pins /explain's bit-consistency contract over the
// HTTP boundary: an explained gain equals the /gain answer for the same
// candidate bit for bit, a reach decomposition's per-seed shares fold to
// exactly its total, and both match the offline facade. JSON's shortest
// round-trip float encoding preserves the bits.
func TestExplainEndpoints(t *testing.T) {
	h := newTestServer(t).Handler()
	model := demoModel()

	var er serve.ExplainSeedResponse
	getJSON(t, h, "GET", "/explain?seed=4&top=5", "", &er)
	var gr serve.GainResponse
	getJSON(t, h, "GET", "/gain?candidates=4", "", &gr)
	if er.Gain != gr.Gains[0] {
		t.Errorf("/explain gain = %b, /gain = %b", er.Gain, gr.Gains[0])
	}
	if want := model.ExplainSeed(4, 5); er.Gain != want.Gain || len(er.Paths) != len(want.Paths) || er.TotalPaths != want.TotalPaths {
		t.Errorf("served explanation (%b, %d paths of %d) diverges from offline (%b, %d of %d)",
			er.Gain, len(er.Paths), er.TotalPaths, want.Gain, len(want.Paths), want.TotalPaths)
	}
	if len(er.Paths) > 5 {
		t.Errorf("top=5 returned %d paths", len(er.Paths))
	}
	for i := 1; i < len(er.Paths); i++ {
		if er.Paths[i].Credit > er.Paths[i-1].Credit {
			t.Errorf("paths not sorted by credit at %d", i)
		}
	}

	seeds := []credist.NodeID{1, 2, 3}
	var rr serve.ExplainReachResponse
	getJSON(t, h, "GET", "/explain?set=1,2,3&reach=7", "", &rr)
	sum := 0.0
	for _, s := range rr.PerSeed {
		sum += s.Share
	}
	if sum != rr.Total {
		t.Errorf("per-seed shares fold to %b, total = %b", sum, rr.Total)
	}
	want := model.ExplainReach(seeds, 7, 10)
	if rr.Total != want.Total || len(rr.PerSeed) != len(want.PerSeed) {
		t.Errorf("served reach (%b, %d shares) diverges from offline (%b, %d)",
			rr.Total, len(rr.PerSeed), want.Total, len(want.PerSeed))
	}
	for i := range want.PerSeed {
		if rr.PerSeed[i].Seed != want.PerSeed[i].Seed || rr.PerSeed[i].Share != want.PerSeed[i].Share {
			t.Errorf("share %d: served (%d, %b), offline (%d, %b)",
				i, rr.PerSeed[i].Seed, rr.PerSeed[i].Share, want.PerSeed[i].Seed, want.PerSeed[i].Share)
		}
	}

	// The reach explanation answered from the lazily built index; /stats
	// reports its shape and the build it paid.
	var st serve.StatsResponse
	getJSON(t, h, "GET", "/stats", "", &st)
	if st.ExplainRequests < 2 {
		t.Errorf("explain_requests = %d, want >= 2", st.ExplainRequests)
	}
	if st.ProvBuilds != 1 || st.ProvPairs == 0 || st.ProvEntries == 0 || st.ProvBytes == 0 {
		t.Errorf("prov stats = %d builds, %d pairs, %d entries, %d bytes; want 1 build and a non-empty index",
			st.ProvBuilds, st.ProvPairs, st.ProvEntries, st.ProvBytes)
	}
}

// TestObjectiveEndpoints pins the HTTP objective layer to the offline
// facade: every audience/window/blocked/costs combination answers with
// exactly the value the Model's *Obj methods produce, and objective
// selections never touch the default-objective seed-prefix memo.
func TestObjectiveEndpoints(t *testing.T) {
	h := newTestServer(t).Handler()
	model := demoModel()

	aud := []credist.NodeID{4, 5, 6, 7}
	var sr serve.SpreadResponse
	getJSON(t, h, "GET", "/spread?seeds=1,2&audience=4,5,6,7", "", &sr)
	want, err := model.SpreadObj([]credist.NodeID{1, 2}, &credist.Objective{Audience: aud})
	if err != nil {
		t.Fatalf("offline SpreadObj: %v", err)
	}
	if sr.Spread != want {
		t.Errorf("targeted /spread = %b, offline = %b", sr.Spread, want)
	}

	getJSON(t, h, "POST", "/spread", `{"seeds":[1,2],"window":30}`, &sr)
	want, err = model.SpreadObj([]credist.NodeID{1, 2}, &credist.Objective{Windowed: true, Window: 30})
	if err != nil {
		t.Fatalf("offline windowed SpreadObj: %v", err)
	}
	if sr.Spread != want {
		t.Errorf("windowed /spread = %b, offline = %b", sr.Spread, want)
	}

	var gr serve.GainResponse
	getJSON(t, h, "GET", "/gain?seeds=1&candidates=4,5&blocked=2,3", "", &gr)
	wantG, err := model.GainsObj([]credist.NodeID{1}, []credist.NodeID{4, 5},
		&credist.Objective{Blocked: []credist.NodeID{2, 3}})
	if err != nil {
		t.Fatalf("offline GainsObj: %v", err)
	}
	if !equalFloats(gr.Gains, wantG) {
		t.Errorf("blocked /gain = %v, offline = %v", gr.Gains, wantG)
	}

	// Budgeted selection: unit costs with overrides, budget in cost units.
	var seedsResp serve.SeedsResponse
	getJSON(t, h, "GET", "/seeds?k=4&costs=1:3,2:3&budget=2.5", "", &seedsResp)
	costs := make([]float64, demoDataset().NumUsers())
	for i := range costs {
		costs[i] = 1
	}
	costs[1], costs[2] = 3, 3
	wantRes, err := model.SelectSeedsObj(4, &credist.Objective{Costs: costs, Budget: 2.5})
	if err != nil {
		t.Fatalf("offline SelectSeedsObj: %v", err)
	}
	if len(seedsResp.Seeds) != len(wantRes.Seeds) {
		t.Fatalf("budgeted /seeds returned %d seeds, offline %d", len(seedsResp.Seeds), len(wantRes.Seeds))
	}
	for i := range wantRes.Seeds {
		if seedsResp.Seeds[i] != wantRes.Seeds[i] || seedsResp.Gains[i] != wantRes.Gains[i] {
			t.Errorf("budgeted seed %d: served (%d, %b), offline (%d, %b)",
				i, seedsResp.Seeds[i], seedsResp.Gains[i], wantRes.Seeds[i], wantRes.Gains[i])
		}
	}
	if seedsResp.Cached {
		t.Error("budgeted /seeds claimed to come from the default-objective memo")
	}

	// Objective selections bypass the memo in both directions: a prior
	// default selection is not reused, and the objective result is not
	// cached into it.
	var warm serve.SeedsResponse
	getJSON(t, h, "GET", "/seeds?k=3", "", &warm)
	var targeted serve.SeedsResponse
	getJSON(t, h, "GET", "/seeds?k=3&audience=4,5,6,7", "", &targeted)
	if targeted.Cached {
		t.Error("targeted /seeds served from the default memo")
	}
	wantRes, err = model.SelectSeedsObj(3, &credist.Objective{Audience: aud})
	if err != nil {
		t.Fatalf("offline targeted SelectSeedsObj: %v", err)
	}
	for i := range wantRes.Seeds {
		if targeted.Seeds[i] != wantRes.Seeds[i] || targeted.Gains[i] != wantRes.Gains[i] {
			t.Errorf("targeted seed %d: served (%d, %b), offline (%d, %b)",
				i, targeted.Seeds[i], targeted.Gains[i], wantRes.Seeds[i], wantRes.Gains[i])
		}
	}
	var again serve.SeedsResponse
	getJSON(t, h, "GET", "/seeds?k=3", "", &again)
	if !again.Cached {
		t.Error("default /seeds memo lost after an objective selection")
	}
	requireSameSelection(t, "default selection after objective query", warm, again)
}

func TestSeedsMemoizedPerSnapshot(t *testing.T) {
	h := newTestServer(t).Handler()
	var first, second serve.SeedsResponse
	getJSON(t, h, "GET", "/seeds?k=3", "", &first)
	getJSON(t, h, "GET", "/seeds?k=3", "", &second)
	if first.Cached {
		t.Error("first /seeds call reported cached")
	}
	if !second.Cached {
		t.Error("second /seeds call not served from cache")
	}
	for i := range first.Seeds {
		if first.Seeds[i] != second.Seeds[i] || first.Gains[i] != second.Gains[i] {
			t.Fatalf("cached result diverges at %d", i)
		}
	}
}

// TestReloadSwapsSnapshot reloads from files and checks the snapshot id
// advances, the seed cache resets, and queries answer from the new model.
func TestReloadSwapsSnapshot(t *testing.T) {
	srv := newTestServer(t)
	h := srv.Handler()
	dir := t.TempDir()
	gp, lp := filepath.Join(dir, "d.graph"), filepath.Join(dir, "d.log")
	if err := credist.SaveDataset(demoDataset(), gp, lp); err != nil {
		t.Fatalf("SaveDataset: %v", err)
	}

	var before serve.SeedsResponse
	getJSON(t, h, "GET", "/seeds?k=3", "", &before)

	var rr serve.ReloadResponse
	body, _ := json.Marshal(serve.Source{GraphPath: gp, LogPath: lp, Lambda: 0.001})
	getJSON(t, h, "POST", "/reload", string(body), &rr)
	if rr.Snapshot != before.Snapshot+1 {
		t.Errorf("snapshot id = %d, want %d", rr.Snapshot, before.Snapshot+1)
	}
	if rr.Entries <= 0 {
		t.Errorf("reloaded snapshot has %d entries", rr.Entries)
	}

	// The new snapshot serves the same universe (same dataset round-tripped
	// through disk), so the CELF selection must be bit-identical — but
	// recomputed, not cached.
	var after serve.SeedsResponse
	getJSON(t, h, "GET", "/seeds?k=3", "", &after)
	if after.Snapshot != rr.Snapshot {
		t.Errorf("/seeds answered from snapshot %d, want %d", after.Snapshot, rr.Snapshot)
	}
	if after.Cached {
		t.Error("seed cache leaked across snapshots")
	}
	for i := range before.Seeds {
		if before.Seeds[i] != after.Seeds[i] || before.Gains[i] != after.Gains[i] {
			t.Fatalf("selection changed across save/load reload at %d: (%d, %b) vs (%d, %b)",
				i, before.Seeds[i], before.Gains[i], after.Seeds[i], after.Gains[i])
		}
	}
}

// TestSnapshotCheckpointRestartCycle walks the full durable-snapshot ops
// story: serve from files, checkpoint to a binary snapshot, cold-start a
// second server from it (bit-identical answers, no rescan of scanned
// actions), ingest a tail, checkpoint again, and cold-start a third server
// from the new snapshot plus the on-disk tail — still bit-identical.
func TestSnapshotCheckpointRestartCycle(t *testing.T) {
	demo := demoDataset()
	n := demo.Log.NumActions()
	headN := n - 10
	headDS := &credist.Dataset{Name: "demo-head", Graph: demo.Graph, Log: demo.Log.Prefix(headN)}
	var tailTuples []credist.Tuple
	for a := headN; a < n; a++ {
		tailTuples = append(tailTuples, demo.Log.Action(credist.ActionID(a))...)
	}

	dir := t.TempDir()
	gp, lp := filepath.Join(dir, "d.graph"), filepath.Join(dir, "d.log")
	if err := credist.SaveDataset(headDS, gp, lp); err != nil {
		t.Fatalf("SaveDataset: %v", err)
	}
	tailPath := filepath.Join(dir, "d.tail.log")
	tf, err := os.Create(tailPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := actionlog.WriteTuples(tf, demo.NumUsers(), tailTuples); err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}

	// Server A: learned from files, then checkpointed.
	snA, err := serve.Build(serve.Source{GraphPath: gp, LogPath: lp, Lambda: 0.001})
	if err != nil {
		t.Fatalf("Build A: %v", err)
	}
	hA := serve.New(snA).Handler()
	var seedsA serve.SeedsResponse
	getJSON(t, hA, "GET", "/seeds?k=3", "", &seedsA)
	model1 := filepath.Join(dir, "model1.bin")
	var cp serve.SnapshotResponse
	getJSON(t, hA, "POST", "/snapshot", `{"path":"`+model1+`"}`, &cp)
	if cp.Actions != headN || cp.Bytes <= 0 {
		t.Fatalf("checkpoint = %+v, want %d actions and nonzero bytes", cp, headN)
	}
	var stA serve.StatsResponse
	getJSON(t, hA, "GET", "/stats", "", &stA)
	if stA.LastSnapshot == nil || stA.LastSnapshot.Path != model1 {
		t.Fatalf("stats.last_snapshot = %+v, want path %s", stA.LastSnapshot, model1)
	}

	// A checkpoint may replace a prior snapshot but never an arbitrary
	// existing file (here: the graph the server itself was loaded from).
	if code, body := do(t, hA, "POST", "/snapshot", `{"path":"`+gp+`"}`); code != 400 {
		t.Fatalf("overwriting a non-snapshot file: status %d, body %v", code, body)
	} else if msg, _ := body["error"].(string); !strings.Contains(msg, "refusing to replace") {
		t.Fatalf("overwrite error = %q", msg)
	}
	getJSON(t, hA, "POST", "/snapshot", `{"path":"`+model1+`"}`, &cp) // re-checkpoint over a snapshot is fine

	// Server B: cold-started from the checkpoint — same answers, and the
	// stats record the snapshot provenance.
	snB, err := serve.Build(serve.Source{GraphPath: gp, LogPath: lp, ModelPath: model1})
	if err != nil {
		t.Fatalf("Build B: %v", err)
	}
	hB := serve.New(snB).Handler()
	var seedsB serve.SeedsResponse
	getJSON(t, hB, "GET", "/seeds?k=3", "", &seedsB)
	requireSameSelection(t, "restart from snapshot", seedsA, seedsB)
	// The checkpoint carried server A's computed seed prefix, so the
	// restarted server answered without running CELF at all.
	if n := snB.Selections(); n != 0 {
		t.Fatalf("restarted server ran %d CELF selections for a prefix-covered k, want 0", n)
	}
	if !seedsB.Cached {
		t.Error("restart /seeds not served from the restored prefix")
	}
	var stB serve.StatsResponse
	getJSON(t, hB, "GET", "/stats", "", &stB)
	if stB.ModelFile != model1 || stB.ModelActions != headN || stB.ModelTailActions != 0 {
		t.Fatalf("stats provenance = %s/%d/%d, want %s/%d/0",
			stB.ModelFile, stB.ModelActions, stB.ModelTailActions, model1, headN)
	}

	// A snapshot refuses to load under different options.
	if _, err := serve.Build(serve.Source{GraphPath: gp, LogPath: lp, ModelPath: model1, Lambda: 0.5}); err == nil {
		t.Fatal("snapshot load with mismatched lambda accepted")
	}

	// Ingest the tail into B and checkpoint the grown model.
	reqTuples := make([]serve.IngestTuple, len(tailTuples))
	for i, tp := range tailTuples {
		reqTuples[i] = serve.IngestTuple{User: tp.User, Action: tp.Action, Time: tp.Time}
	}
	body, _ := json.Marshal(map[string]any{"tuples": reqTuples})
	var ir serve.IngestResponse
	getJSON(t, hB, "POST", "/ingest", string(body), &ir)
	if ir.Actions != n {
		t.Fatalf("ingest grew to %d actions, want %d", ir.Actions, n)
	}
	var seedsB2 serve.SeedsResponse
	getJSON(t, hB, "GET", "/seeds?k=3", "", &seedsB2)
	model2 := filepath.Join(dir, "model2.bin")
	getJSON(t, hB, "POST", "/snapshot", `{"path":"`+model2+`"}`, &cp)
	if cp.Actions != n {
		t.Fatalf("post-ingest checkpoint covers %d actions, want %d", cp.Actions, n)
	}

	// The new snapshot is newer than the on-disk log alone...
	if _, err := serve.Build(serve.Source{GraphPath: gp, LogPath: lp, ModelPath: model2}); err == nil {
		t.Fatal("snapshot newer than the log accepted without the tail")
	}
	// ...but log + tail covers it: server C restarts bit-identical to the
	// post-ingest state.
	snC, err := serve.Build(serve.Source{GraphPath: gp, LogPath: lp, TailPath: tailPath, ModelPath: model2})
	if err != nil {
		t.Fatalf("Build C: %v", err)
	}
	hC := serve.New(snC).Handler()
	var seedsC serve.SeedsResponse
	getJSON(t, hC, "GET", "/seeds?k=3", "", &seedsC)
	requireSameSelection(t, "restart from post-ingest snapshot", seedsB2, seedsC)
	if n := snC.Selections(); n != 0 {
		t.Fatalf("post-ingest restart ran %d CELF selections for a prefix-covered k, want 0", n)
	}
	// Growing past the restored prefix resumes it instead of restarting:
	// the prefix seeds stay bit-identical and exactly one run is paid.
	var grownC serve.SeedsResponse
	getJSON(t, hC, "GET", "/seeds?k=5", "", &grownC)
	if n := snC.Selections(); n != 1 {
		t.Fatalf("growth past the restored prefix ran %d selections, want 1", n)
	}
	for i := range seedsC.Seeds {
		if grownC.Seeds[i] != seedsC.Seeds[i] || grownC.Gains[i] != seedsC.Gains[i] {
			t.Fatalf("growth past the restored prefix rewrote seed %d", i)
		}
	}
	// The continuation matches a from-scratch selection on the same model
	// bit for bit (restored-prefix resume is exact, not approximate).
	wantSeeds, wantGains := snC.Model().SelectSeeds(5)
	for i := range wantSeeds {
		if grownC.Seeds[i] != wantSeeds[i] || grownC.Gains[i] != wantGains[i] {
			t.Fatalf("resumed growth diverges from offline selection at seed %d: (%d, %b) vs (%d, %b)",
				i, grownC.Seeds[i], grownC.Gains[i], wantSeeds[i], wantGains[i])
		}
	}
	var stC serve.StatsResponse
	getJSON(t, hC, "GET", "/stats", "", &stC)
	if stC.Actions != n || stC.ModelActions != n || stC.ModelTailActions != 0 {
		t.Fatalf("restarted stats = actions %d, model %d+%d; want %d, %d+0",
			stC.Actions, stC.ModelActions, stC.ModelTailActions, n, n)
	}
}

func requireSameSelection(t *testing.T, what string, a, b serve.SeedsResponse) {
	t.Helper()
	if len(a.Seeds) != len(b.Seeds) {
		t.Fatalf("%s: %d vs %d seeds", what, len(b.Seeds), len(a.Seeds))
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] || a.Gains[i] != b.Gains[i] {
			t.Fatalf("%s: selection diverged at %d: (%d, %b) vs (%d, %b)",
				what, i, b.Seeds[i], b.Gains[i], a.Seeds[i], a.Gains[i])
		}
	}
	if a.Spread != b.Spread {
		t.Fatalf("%s: spread %b vs %b", what, b.Spread, a.Spread)
	}
}

// TestWarm pins the startup warm-up path: valid ks prime the cache, and
// the error cases the CLI must fail fast on actually error.
func TestWarm(t *testing.T) {
	srv := newTestServer(t)
	res, err := srv.Warm(3)
	if err != nil || len(res.Seeds) != 3 {
		t.Fatalf("Warm(3) = %v, %v", res, err)
	}
	var sr serve.SeedsResponse
	getJSON(t, srv.Handler(), "GET", "/seeds?k=3", "", &sr)
	if !sr.Cached {
		t.Error("warm-up did not prime the seed cache")
	}
	if _, err := srv.Warm(0); err == nil {
		t.Error("Warm(0) accepted")
	}
	if _, err := srv.Warm(-2); err == nil {
		t.Error("Warm(-2) accepted")
	}
	if _, err := srv.Warm(srv.Current().NumUsers() + 1); err == nil {
		t.Error("Warm beyond the universe accepted")
	}
}

func getJSON(t *testing.T, h http.Handler, method, target, body string, out any) {
	t.Helper()
	status, _ := doRaw(t, h, method, target, body, out)
	if status != http.StatusOK {
		t.Fatalf("%s %s: status %d", method, target, status)
	}
}

func doRaw(t *testing.T, h http.Handler, method, target, body string, out any) (int, string) {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	raw := w.Body.String()
	if out != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, target, raw, err)
		}
	}
	return w.Code, raw
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
