package serve

import (
	"testing"

	"credist"
	"credist/internal/datagen"
)

// TestIngestSeedsGrowFromExtendedBase is a white-box pin on where the
// post-ingest /seeds selection gets its planner: it must clone the
// snapshot's incrementally extended base (frozen shards shared, delta
// accounting intact) — NOT the grown model's self-contained lazy base,
// which would silently pay a full from-scratch rescan of the combined
// log on the first cold /seeds after every ingest and retain a second
// copy of the UC store for the snapshot's lifetime.
func TestIngestSeedsGrowFromExtendedBase(t *testing.T) {
	ds := credist.Generate(datagen.Config{
		Name: "grow-base", NumUsers: 120, OutDegree: 4, Reciprocity: 0.6,
		NumActions: 60, MeanInfluence: 0.1, MeanDelay: 8,
		SpontaneousPerAction: 1, Seed: 5,
	})
	sn, err := Build(Source{Dataset: ds, Lambda: 0.001})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	next := credist.ActionID(ds.Log.NumActions())
	grown, err := sn.Ingest([]credist.Tuple{
		{User: 0, Action: next, Time: 1},
		{User: 1, Action: next, Time: 2},
	}, false)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if grown.base.DeltaActions() != 1 {
		t.Fatalf("extended base has %d delta actions, want 1", grown.base.DeltaActions())
	}
	if _, cached, err := grown.SelectSeeds(2); err != nil {
		t.Fatalf("SelectSeeds: %v", err)
	} else if cached {
		t.Fatal("cold post-ingest /seeds reported cached")
	}
	// The selection's planner is a clone of the extended base, so the
	// delta accounting survives; the model's lazy base would be a fresh
	// full scan with zero delta actions.
	grown.seedMu.Lock()
	sel := grown.seedSel
	grown.seedMu.Unlock()
	if sel == nil {
		t.Fatal("no selection after a cold /seeds")
	}
	if got := sel.Planner().DeltaActions(); got != 1 {
		t.Fatalf("selection planner has %d delta actions, want 1 (did /seeds rescan through the model's base?)", got)
	}
}
