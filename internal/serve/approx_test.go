package serve_test

import (
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"credist"
	"credist/internal/serve"
)

// TestApproxSpreadEndpoint pins the approximate /spread contract: a valid
// interval containing both the estimate and the exact engine's answer,
// achieved eps at or under the target, and the /stats hit counters.
func TestApproxSpreadEndpoint(t *testing.T) {
	h := newTestServer(t).Handler()
	code, exactBody := do(t, h, "GET", "/spread?seeds=1,2,3", "")
	if code != 200 {
		t.Fatalf("exact /spread: %d %v", code, exactBody)
	}
	exact := exactBody["spread"].(float64)

	for _, target := range []string{
		"/spread?seeds=1,2,3&eps=0.1",
		"/spread?seeds=1,2,3&budget=500ms",
		"/spread?seeds=1,2,3&eps=0.1&budget=2s",
	} {
		code, body := do(t, h, "GET", target, "")
		if code != 200 {
			t.Fatalf("%s: %d %v", target, code, body)
		}
		for _, key := range []string{"estimate", "ci_low", "ci_high", "achieved_eps", "samples", "elapsed"} {
			if _, ok := body[key]; !ok {
				t.Fatalf("%s: response missing %q: %v", target, key, body)
			}
		}
		lo, hi := body["ci_low"].(float64), body["ci_high"].(float64)
		est := body["estimate"].(float64)
		if lo > est || est > hi {
			t.Fatalf("%s: estimate %g outside interval [%g,%g]", target, est, lo, hi)
		}
		if lo > exact || exact > hi {
			t.Fatalf("%s: exact spread %g outside interval [%g,%g]", target, exact, lo, hi)
		}
		if body["samples"].(float64) <= 0 {
			t.Fatalf("%s: no samples reported: %v", target, body)
		}
	}

	// The POST body carries the same parameters.
	code, body := do(t, h, "POST", "/spread", `{"seeds":[1,2,3],"eps":0.2,"budget":"1s"}`)
	if code != 200 {
		t.Fatalf("POST approx /spread: %d %v", code, body)
	}
	if _, ok := body["estimate"]; !ok {
		t.Fatalf("POST approx /spread: not an approximate reply: %v", body)
	}

	// Exact endpoints are untouched and the tier counters tick.
	code, stats := do(t, h, "GET", "/stats", "")
	if code != 200 {
		t.Fatalf("/stats: %d", code)
	}
	if stats["approx_spread_requests"].(float64) != 4 {
		t.Fatalf("approx_spread_requests = %v, want 4", stats["approx_spread_requests"])
	}
	if stats["approx_samples"].(float64) <= 0 || stats["approx_bytes"].(float64) <= 0 {
		t.Fatalf("stats missing sketch shape: %v", stats)
	}
	if stats["approx_sampled"].(float64) <= 0 {
		t.Fatalf("live-sampled pool reports zero sampling: %v", stats)
	}

	// Malformed parameters are 400s.
	for _, target := range []string{
		"/spread?seeds=1,2&eps=0",
		"/spread?seeds=1,2&eps=1.5",
		"/spread?seeds=1,2&eps=nope",
		"/spread?seeds=1,2&budget=-3ms",
		"/spread?seeds=1,2&budget=fast",
	} {
		if code, _ := do(t, h, "GET", target, ""); code != 400 {
			t.Fatalf("%s: code %d, want 400", target, code)
		}
	}
	// A batch cannot ride the approximate tier.
	if code, _ := do(t, h, "POST", "/spread", `{"sets":[[1],[2]],"eps":0.1}`); code != 400 {
		t.Fatal("batched approximate spread accepted")
	}
}

// TestApproxSeedsEndpoint pins /seeds?eps=: coverage-greedy seeds with an
// interval on the selected set, distinct from the exact CELF reply shape.
func TestApproxSeedsEndpoint(t *testing.T) {
	h := newTestServer(t).Handler()
	code, body := do(t, h, "GET", "/seeds?k=5&eps=0.1", "")
	if code != 200 {
		t.Fatalf("/seeds?eps: %d %v", code, body)
	}
	seeds, ok := body["seeds"].([]any)
	if !ok || len(seeds) != 5 {
		t.Fatalf("approximate seeds reply: %v", body)
	}
	for _, key := range []string{"estimate", "ci_low", "ci_high", "achieved_eps", "samples", "elapsed"} {
		if _, ok := body[key]; !ok {
			t.Fatalf("approximate /seeds missing %q: %v", key, body)
		}
	}
	if _, hasGains := body["gains"]; hasGains {
		t.Fatalf("approximate /seeds leaked the exact reply shape: %v", body)
	}
	// The exact path still answers the CELF shape.
	code, body = do(t, h, "GET", "/seeds?k=3", "")
	if code != 200 || body["gains"] == nil {
		t.Fatalf("exact /seeds regressed: %d %v", code, body)
	}
	code, stats := do(t, h, "GET", "/stats", "")
	if code != 200 || stats["approx_seeds_requests"].(float64) != 1 {
		t.Fatalf("approx_seeds_requests = %v, want 1", stats["approx_seeds_requests"])
	}
}

// TestApproxZeroSpreadEncodes pins the JSON edge: a zero-estimate reply
// has no finite relative precision, which must encode as a null
// achieved_eps, not break the encoder.
func TestApproxZeroSpreadEncodes(t *testing.T) {
	h := newTestServer(t).Handler()
	// An empty seed list hits nothing. The query parameter form cannot
	// express it, but the POST body can.
	code, body := do(t, h, "POST", "/spread", `{"seeds":[],"eps":0.1}`)
	if code != 200 {
		t.Fatalf("zero-spread approx: %d %v", code, body)
	}
	if body["estimate"].(float64) != 0 {
		t.Fatalf("empty set estimated %v", body["estimate"])
	}
	if eps, present := body["achieved_eps"]; !present || eps != nil {
		t.Fatalf("achieved_eps = %v, want null", eps)
	}
}

// TestApproxPartitionedUnavailable pins the 501 on scatter-gather
// deployments: the RR tier needs the whole universe in one engine.
func TestApproxPartitionedUnavailable(t *testing.T) {
	snap, err := serve.Build(serve.Source{Dataset: demoDataset(), Lambda: 0.001, Partitions: 2})
	if err != nil {
		t.Fatalf("partitioned Build: %v", err)
	}
	h := serve.New(snap).Handler()
	if code, body := do(t, h, "GET", "/spread?seeds=1,2&eps=0.1", ""); code != 501 {
		t.Fatalf("partitioned approx /spread: %d %v, want 501", code, body)
	}
	if code, body := do(t, h, "GET", "/seeds?k=3&eps=0.1", ""); code != 501 {
		t.Fatalf("partitioned approx /seeds: %d %v, want 501", code, body)
	}
	// Exact queries still answer.
	if code, _ := do(t, h, "GET", "/spread?seeds=1,2", ""); code != 200 {
		t.Fatal("partitioned exact /spread regressed")
	}
	code, stats := do(t, h, "GET", "/stats", "")
	if code != 200 {
		t.Fatal("/stats on partitioned deployment")
	}
	for _, key := range []string{"approx_samples", "approx_bytes", "approx_sampled"} {
		if v := stats[key].(float64); v != 0 {
			t.Fatalf("partitioned %s = %v, want 0", key, v)
		}
	}
}

// TestApproxPartitionedServedFromSketch pins the partitioned tier's one
// supported mode: a whole-model snapshot that carries a persisted RR
// sketch serves eps-queries from that fixed pool — no growth, honest
// achieved_eps — while a sketchless snapshot still answers 501 with the
// re-save hint.
func TestApproxPartitionedServedFromSketch(t *testing.T) {
	dir := t.TempDir()
	graphPath, logPath := saveDemoDataset(t, dir)
	model := credist.Learn(demoDataset(), credist.Options{Lambda: 0.001})
	if err := model.BuildApproxSketch(2000); err != nil {
		t.Fatalf("BuildApproxSketch: %v", err)
	}
	modelPath := filepath.Join(dir, "model.bin")
	if err := model.Save(modelPath); err != nil {
		t.Fatalf("Save: %v", err)
	}

	build := func() http.Handler {
		t.Helper()
		snap, err := serve.Build(serve.Source{
			GraphPath: graphPath, LogPath: logPath, ModelPath: modelPath, Partitions: 3,
		})
		if err != nil {
			t.Fatalf("partitioned Build from sketch-carrying snapshot: %v", err)
		}
		if err := snap.PartitionErr(); err != nil {
			t.Fatalf("partitioned Build degraded: %v", err)
		}
		return serve.New(snap).Handler()
	}
	h := build()

	code, body := do(t, h, "GET", "/spread?seeds=1,2,3&eps=0.5", "")
	if code != 200 {
		t.Fatalf("partitioned approx /spread from sketch: %d %v", code, body)
	}
	lo, hi := body["ci_low"].(float64), body["ci_high"].(float64)
	if est := body["estimate"].(float64); lo > est || est > hi {
		t.Fatalf("estimate %g outside interval [%g,%g]", est, lo, hi)
	}
	if body["samples"].(float64) < 2000 {
		t.Fatalf("fixed pool served %v samples, want the persisted >= 2000", body["samples"])
	}

	code, seedsBody := do(t, h, "GET", "/seeds?k=3&eps=0.5", "")
	if code != 200 {
		t.Fatalf("partitioned approx /seeds from sketch: %d %v", code, seedsBody)
	}
	if seeds, ok := seedsBody["seeds"].([]any); !ok || len(seeds) != 3 {
		t.Fatalf("approximate seeds reply: %v", seedsBody)
	}

	// The pool is fixed: stats report the persisted pool and zero samples
	// drawn by this process.
	code, stats := do(t, h, "GET", "/stats", "")
	if code != 200 {
		t.Fatalf("/stats: %d", code)
	}
	if stats["approx_samples"].(float64) < 2000 {
		t.Fatalf("approx_samples = %v, want the persisted pool", stats["approx_samples"])
	}
	if stats["approx_sampled"].(float64) != 0 {
		t.Fatalf("partitioned tier sampled live: approx_sampled = %v, want 0", stats["approx_sampled"])
	}

	// Deterministic: a second server over the same snapshot answers the
	// same bits (the pool is the persisted one, not a fresh sample).
	h2 := build()
	_, body2 := do(t, h2, "GET", "/spread?seeds=1,2,3&eps=0.5", "")
	for _, key := range []string{"estimate", "ci_low", "ci_high", "samples"} {
		if fmt.Sprint(body2[key]) != fmt.Sprint(body[key]) {
			t.Fatalf("%s differs across servers over the same sketch: %v vs %v", key, body2[key], body[key])
		}
	}

	// Exact queries are untouched by the tier.
	if code, _ := do(t, h, "GET", "/spread?seeds=1,2,3", ""); code != 200 {
		t.Fatal("partitioned exact /spread regressed")
	}

	// A sketchless snapshot cannot serve the tier: 501 naming the fix.
	plain := credist.Learn(demoDataset(), credist.Options{Lambda: 0.001})
	plainPath := filepath.Join(dir, "plain.bin")
	if err := plain.Save(plainPath); err != nil {
		t.Fatalf("Save plain: %v", err)
	}
	snapPlain, err := serve.Build(serve.Source{
		GraphPath: graphPath, LogPath: logPath, ModelPath: plainPath, Partitions: 2,
	})
	if err != nil {
		t.Fatalf("partitioned Build from plain snapshot: %v", err)
	}
	hPlain := serve.New(snapPlain).Handler()
	code, errBody := do(t, hPlain, "GET", "/spread?seeds=1,2&eps=0.1", "")
	if code != 501 {
		t.Fatalf("sketchless partitioned approx: %d %v, want 501", code, errBody)
	}
	if msg, _ := errBody["error"].(string); !strings.Contains(msg, "ris-samples") {
		t.Fatalf("501 error %q does not tell the operator how to fix it", msg)
	}
}

// TestApproxDeterministicAcrossServers pins that two servers over the
// same dataset answer approximate queries identically (the serving-tier
// face of the striped-collection determinism wall).
func TestApproxDeterministicAcrossServers(t *testing.T) {
	query := "/spread?seeds=4,9,16&eps=0.05"
	var ref map[string]any
	for i := 0; i < 2; i++ {
		h := newTestServer(t).Handler()
		code, body := do(t, h, "GET", query, "")
		if code != 200 {
			t.Fatalf("server %d: %d %v", i, code, body)
		}
		if i == 0 {
			ref = body
			continue
		}
		for _, key := range []string{"estimate", "ci_low", "ci_high", "achieved_eps", "samples"} {
			if fmt.Sprint(body[key]) != fmt.Sprint(ref[key]) {
				t.Fatalf("%s differs across servers: %v vs %v", key, body[key], ref[key])
			}
		}
	}
}
