package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// metrics tracks request counters and a one-minute QPS window for /stats.
type metrics struct {
	start time.Time
	total atomic.Int64
	// perRoute is fixed at construction, so lookups are lock-free.
	perRoute map[string]*atomic.Int64
	qps      qpsWindow
}

func newMetrics(routes []string) *metrics {
	m := &metrics{start: time.Now(), perRoute: make(map[string]*atomic.Int64, len(routes))}
	for _, r := range routes {
		m.perRoute[r] = &atomic.Int64{}
	}
	return m
}

func (m *metrics) hit(route string, now time.Time) {
	m.total.Add(1)
	if c, ok := m.perRoute[route]; ok {
		c.Add(1)
	}
	m.qps.hit(now.Unix())
}

func (m *metrics) snapshot(now time.Time) (total int64, perRoute map[string]int64, qps float64, uptime time.Duration) {
	perRoute = make(map[string]int64, len(m.perRoute))
	for r, c := range m.perRoute {
		perRoute[r] = c.Load()
	}
	return m.total.Load(), perRoute, m.qps.rate(now.Unix()), now.Sub(m.start)
}

// qpsWindow counts requests in 60 one-second buckets keyed by unix second;
// stale buckets are lazily reset as the clock wraps around the ring.
type qpsWindow struct {
	mu    sync.Mutex
	count [60]int64
	stamp [60]int64
}

func (q *qpsWindow) hit(nowSec int64) {
	i := nowSec % 60
	q.mu.Lock()
	if q.stamp[i] != nowSec {
		q.stamp[i] = nowSec
		q.count[i] = 0
	}
	q.count[i]++
	q.mu.Unlock()
}

// rate averages the requests of the trailing 60 seconds.
func (q *qpsWindow) rate(nowSec int64) float64 {
	var sum int64
	q.mu.Lock()
	for i := range q.count {
		if nowSec-q.stamp[i] < 60 {
			sum += q.count[i]
		}
	}
	q.mu.Unlock()
	return float64(sum) / 60
}
