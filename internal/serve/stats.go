package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// metrics tracks request counters and a one-minute QPS window for /stats.
type metrics struct {
	start time.Time
	total atomic.Int64
	// perRoute is fixed at construction, so lookups are lock-free.
	perRoute map[string]*atomic.Int64
	qps      qpsWindow
}

func newMetrics(routes []string) *metrics {
	m := &metrics{start: time.Now(), perRoute: make(map[string]*atomic.Int64, len(routes))}
	for _, r := range routes {
		m.perRoute[r] = &atomic.Int64{}
	}
	return m
}

func (m *metrics) hit(route string, now time.Time) {
	m.total.Add(1)
	if c, ok := m.perRoute[route]; ok {
		c.Add(1)
	}
	m.qps.hit(now.Unix())
}

func (m *metrics) snapshot(now time.Time) (total int64, perRoute map[string]int64, qps float64, uptime time.Duration) {
	perRoute = make(map[string]int64, len(m.perRoute))
	for r, c := range m.perRoute {
		perRoute[r] = c.Load()
	}
	uptime = now.Sub(m.start)
	// During the first minute of uptime the window cannot contain 60
	// seconds of traffic yet; dividing by the full 60 would under-report
	// QPS (e.g. 100 requests in the first 10 seconds used to read as 1.7
	// QPS instead of 10). Average over the seconds actually elapsed —
	// rounded up, so the bucket holding the server's first second of
	// traffic stays inside the window until it genuinely ages out — and
	// floored at 1 so a burst in the first instant stays finite.
	window := int64(math.Ceil(uptime.Seconds()))
	if window > 60 {
		window = 60
	}
	if window < 1 {
		window = 1
	}
	return m.total.Load(), perRoute, m.qps.rate(now.Unix(), window), uptime
}

// qpsWindow counts requests in 60 one-second buckets keyed by unix second;
// stale buckets are lazily reset as the clock wraps around the ring.
type qpsWindow struct {
	mu    sync.Mutex
	count [60]int64
	stamp [60]int64
}

func (q *qpsWindow) hit(nowSec int64) {
	i := nowSec % 60
	q.mu.Lock()
	if q.stamp[i] != nowSec {
		q.stamp[i] = nowSec
		q.count[i] = 0
	}
	q.count[i]++
	q.mu.Unlock()
}

// rate averages the requests of the trailing windowSec seconds (at most
// the ring's 60). The caller passes min(60, uptime) so a server that has
// been up for less than a minute divides by the seconds it actually saw.
func (q *qpsWindow) rate(nowSec, windowSec int64) float64 {
	if windowSec < 1 {
		windowSec = 1
	} else if windowSec > 60 {
		windowSec = 60
	}
	var sum int64
	q.mu.Lock()
	for i := range q.count {
		if nowSec-q.stamp[i] < windowSec {
			sum += q.count[i]
		}
	}
	q.mu.Unlock()
	return float64(sum) / float64(windowSec)
}
