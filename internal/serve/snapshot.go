// Package serve is the online query layer over the credit-distribution
// model: it holds learned models as immutable snapshots behind an atomic
// pointer and answers influence queries — spread evaluation, batched
// marginal gains, CELF seed selection, heuristic top-k — over HTTP/JSON.
//
// The paper's pitch is that sigma_cd is computable directly from learned
// data, with no Monte-Carlo simulation; this package is that pitch taken
// online. Every query is answered from the snapshot's precomputed scan
// products, so responses are bit-identical to the offline credist.Model
// calls, and /reload swaps in a newly learned model without dropping
// in-flight requests (each request pins the snapshot pointer it started
// with).
package serve

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"credist"
	"credist/internal/seedsel"
)

// Source specifies where a snapshot's dataset and model parameters come
// from. Exactly one of Preset or GraphPath+LogPath must be set (or Dataset,
// for embedded use). It doubles as the /reload request body.
type Source struct {
	// Preset names a built-in synthetic dataset (see credist.PresetNames).
	Preset string `json:"preset,omitempty"`
	// GraphPath and LogPath load a dataset from files in the formats
	// written by cmd/datagen.
	GraphPath string `json:"graph,omitempty"`
	LogPath   string `json:"log,omitempty"`
	// ParamsPath optionally restores time-aware parameters written by
	// Model.SaveParams instead of re-learning them from the log.
	ParamsPath string `json:"params,omitempty"`
	// ModelPath restores a full binary snapshot written by Model.Save or
	// POST /snapshot: learned parameters plus the scanned UC structure,
	// lineage-checked against the dataset. Only log actions past the
	// snapshot's recorded scan are processed, so starting from a snapshot
	// skips both learning and the full log scan. Mutually exclusive with
	// ParamsPath; Lambda/SimpleCredit must match the stored options or be
	// left zero to adopt them.
	ModelPath string `json:"model,omitempty"`
	// Mmap serves the frozen UC base directly out of the ModelPath file
	// through a read-only memory mapping instead of parsing it onto the
	// heap: the open touches no cells, so it is near-instant regardless of
	// model size, and the OS pages shards in on first use. Requires
	// ModelPath naming a version-3 snapshot (re-save older files to
	// upgrade). Queries are bit-identical to a heap load; writes (ingest,
	// seed commits) promote only the shards they touch.
	Mmap bool `json:"mmap,omitempty"`
	// TailPath appends an action-log tail file (as written by `datagen
	// -stream`) to the dataset's log before the model binds to it. With
	// ModelPath this is how a restarted server catches up past a checkpoint
	// taken after ingests: the on-disk log plus the tail must cover every
	// action the snapshot recorded.
	TailPath string `json:"tail,omitempty"`
	// Lambda is the UC truncation threshold (paper default 0.001).
	Lambda float64 `json:"lambda,omitempty"`
	// SimpleCredit selects the 1/d_in direct-credit rule instead of the
	// time-aware Eq. (9) rule.
	SimpleCredit bool `json:"simple_credit,omitempty"`

	// Partitions splits the model into N contiguous row-range engine
	// partitions served behind a scatter-gather coordinator: /spread,
	// /gain, and /seeds fan over the partitions and merge by summation,
	// with answers bit-identical at every partition count. 0 (the default)
	// serves the classic single-engine path. With ModelPath, slice files
	// ("<model>.slice-<i>-of-<N>") are written next to the model on first
	// start and reopened directly — per-partition memory mappings when
	// Mmap is set — on every start after.
	Partitions int `json:"partitions,omitempty"`
	// SlicePaths serves directly from explicitly named snapshot-slice
	// files (as written by Model.WriteSnapshotSlice or a partitioned POST
	// /snapshot), bypassing the full model file entirely. The slices must
	// tile the user universe exactly; overlaps and gaps are rejected
	// naming the offending row ranges.
	SlicePaths []string `json:"slices,omitempty"`

	// Dataset bypasses loading entirely; used by tests and embedders.
	Dataset *credist.Dataset `json:"-"`
}

// partitioned reports whether the source asks for the scatter-gather
// serving path at all (1 partition still exercises the coordinator).
func (src Source) partitioned() bool {
	return src.Partitions > 0 || len(src.SlicePaths) > 0
}

func (src Source) dataset() (*credist.Dataset, error) {
	switch {
	case src.Dataset != nil:
		return src.Dataset, nil
	case src.Preset != "":
		if src.GraphPath != "" || src.LogPath != "" {
			return nil, fmt.Errorf("preset and graph/log are mutually exclusive")
		}
		return credist.GeneratePreset(src.Preset)
	case src.GraphPath != "" && src.LogPath != "":
		return credist.LoadDataset("custom", src.GraphPath, src.LogPath)
	default:
		return nil, fmt.Errorf("source needs a preset (one of: %s) or both graph and log paths",
			strings.Join(credist.PresetNames(), ", "))
	}
}

// describe renders the source for /stats and logs.
func (src Source) describe() string {
	var s string
	switch {
	case src.Dataset != nil:
		s = "embedded:" + src.Dataset.Name
	case src.Preset != "":
		s = "preset:" + src.Preset
	default:
		s = "files:" + src.GraphPath + "," + src.LogPath
	}
	if src.TailPath != "" {
		s += "+tail:" + src.TailPath
	}
	if src.ModelPath != "" {
		s += " model:" + src.ModelPath
		if src.Mmap {
			s += " (mmap)"
		}
	}
	switch {
	case len(src.SlicePaths) > 0:
		s += fmt.Sprintf(" slices:%d", len(src.SlicePaths))
		if src.Mmap {
			s += " (mmap)"
		}
	case src.Partitions > 0:
		s += fmt.Sprintf(" partitions:%d", src.Partitions)
	}
	return s
}

// SeedsResult is one served CELF seed selection — a prefix of the
// snapshot's single growable selection.
type SeedsResult struct {
	Seeds   []credist.NodeID `json:"seeds"`
	Gains   []float64        `json:"gains"`
	Spread  float64          `json:"spread"`
	Lookups int              `json:"lookups"`
}

// seedPrefix is the published state of a snapshot's seed selection: the
// longest prefix computed (or restored from a binary snapshot) so far.
// Every field is immutable once stored in the atomic pointer, so readers
// slice it lock-free; growth publishes a fresh copy.
type seedPrefix struct {
	seeds     []credist.NodeID
	gains     []float64
	lookupsAt []int64
	spreads   []float64 // spreads[i] = sum(gains[:i+1]), the per-prefix spread table
	// exhausted marks that the candidate pool ran dry: no larger k can
	// ever be answered, so requests beyond len(seeds) return everything.
	exhausted bool
}

// covers reports whether the prefix can answer k without any CELF work.
func (p *seedPrefix) covers(k int) bool { return k <= len(p.seeds) || p.exhausted }

// result slices the prefix's first k seeds into a response. Slices share
// the prefix's immutable arrays; no copying, no locking.
func (p *seedPrefix) result(k int) *SeedsResult {
	if k > len(p.seeds) {
		k = len(p.seeds)
	}
	r := &SeedsResult{Seeds: p.seeds[:k:k], Gains: p.gains[:k:k]}
	if k > 0 {
		r.Spread = p.spreads[k-1]
		r.Lookups = int(p.lookupsAt[k-1])
	}
	if r.Seeds == nil {
		r.Seeds = []credist.NodeID{}
	}
	if r.Gains == nil {
		r.Gains = []float64{}
	}
	return r
}

// newSeedPrefix copies a selection trace into a publishable prefix,
// precomputing the per-prefix spread table.
func newSeedPrefix(res seedsel.Result, exhausted bool) *seedPrefix {
	p := &seedPrefix{
		seeds:     append([]credist.NodeID(nil), res.Seeds...),
		gains:     append([]float64(nil), res.Gains...),
		lookupsAt: append([]int64(nil), res.LookupsAt...),
		spreads:   make([]float64, len(res.Gains)),
		exhausted: exhausted,
	}
	total := 0.0
	for i, g := range p.gains {
		total += g
		p.spreads[i] = total
	}
	return p
}

// Snapshot is one learned model frozen for serving. All public methods are
// safe for concurrent use: queries touch only immutable scan products (the
// evaluator and the base planner, on which only the read-only Gain is ever
// invoked), and seed selection runs on one growable per-snapshot selection
// whose growth is serialized under a lock while reads slice the published
// prefix lock-free.
type Snapshot struct {
	// ID is assigned by the Registry; monotonically increasing per process.
	ID int64
	// LoadedAt is when the snapshot finished building.
	LoadedAt time.Time

	src Source
	// ds is the loaded dataset; in the degraded partitioned state (see
	// partitionErr) it is all a snapshot has, so Dataset reads it rather
	// than going through the model.
	ds    *credist.Dataset
	model *credist.Model
	// base is the one scanned planner for this model. Its seed set stays
	// empty forever — it is compacted (frozen) at build time, so requests
	// that need to commit seeds Clone it by sharing shards and rely on the
	// engine's copy-on-write to stay isolated. nil in partitioned mode,
	// where parts takes its place.
	base *credist.Planner
	// parts is the scatter-gather coordinator over row-range engine
	// partitions (nil on the single-engine path). Exactly one of base and
	// parts is set on a healthy snapshot.
	parts *credist.PartitionedPlanner
	// partitionErr records a failed partition assembly: the snapshot is
	// degraded — /healthz answers 503 and every model query 502 naming the
	// failed partition — instead of the process crash-looping on one
	// corrupt slice file. The CLI still refuses to start on it.
	partitionErr error
	// slicePaths names the slice files the partitions were loaded from
	// (empty for in-memory partitions).
	slicePaths []string

	entries       int64
	residentBytes int64
	// Row-store split of residentBytes: heap-allocated shard bytes vs
	// bytes still served out of a mapped snapshot file, plus the backend
	// label ("mmap" while any shard aliases the mapping, else "heap").
	heapBytes   int64
	mappedBytes int64
	rowStore    string

	// Streaming-ingest lineage: delta shape of the base planner plus when
	// and how often this snapshot line has ingested since its last full
	// build ({} for a freshly built or reloaded snapshot).
	deltaEntries int64
	deltaActions int
	ingests      int64
	lastIngest   time.Time

	// Cold-start provenance: when the model came from a binary snapshot
	// file, how many actions the file covered and how many the load
	// appended on top from the dataset's log.
	modelActions int
	tailActions  int

	// selections counts the CELF growth runs this snapshot actually
	// executed — at most one per new high-water k, however many concurrent
	// requests raced for it, and exactly zero for any k at or below the
	// published prefix (including one restored from a model snapshot).
	selections atomic.Int64

	// seedMu serializes growth of the one per-snapshot selection; readers
	// never take it — they slice the atomically published prefix.
	seedMu  sync.Mutex
	seedSel *credist.GrowableSelection // created lazily on first growth
	prefix  atomic.Pointer[seedPrefix]
}

// Build loads the source's dataset, learns (or restores) the model, and
// obtains the scanned planner — from a single log scan, or, when
// ModelPath names a binary snapshot, from a lineage-checked load that
// scans only the log tail past the snapshot's recorded actions. The
// returned snapshot has ID 0 until a Registry installs it.
func Build(src Source) (*Snapshot, error) {
	if src.Mmap && src.ModelPath == "" {
		return nil, fmt.Errorf("mmap requires a model path (the mapping is the snapshot file)")
	}
	ds, err := src.dataset()
	if err != nil {
		return nil, err
	}
	if src.TailPath != "" {
		f, err := os.Open(src.TailPath)
		if err != nil {
			return nil, fmt.Errorf("open tail: %w", err)
		}
		grown, _, err := ds.Log.AppendFromReader(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("append tail %s: %w", src.TailPath, err)
		}
		if grown.NumUsers() > ds.Graph.NumNodes() {
			return nil, fmt.Errorf("tail %s grows the universe to %d users, but the graph has %d nodes",
				src.TailPath, grown.NumUsers(), ds.Graph.NumNodes())
		}
		ds = &credist.Dataset{Name: ds.Name, Graph: ds.Graph, Log: grown}
	}
	opts := credist.Options{Lambda: src.Lambda, SimpleCredit: src.SimpleCredit}
	if src.partitioned() {
		return buildPartitioned(src, ds, opts)
	}
	var model *credist.Model
	switch {
	case src.ModelPath != "":
		if src.ParamsPath != "" {
			return nil, fmt.Errorf("model and params are mutually exclusive")
		}
		if src.Mmap {
			// The mapping is deliberately never unmapped: ingest successors
			// and per-request clones keep sharing the still-mapped shards,
			// and even after a /reload the replaced snapshot may be pinned
			// by in-flight requests. One model file's mapping per process
			// lifetime is the cost of never faulting a reader.
			model, err = credist.LoadModelMapped(ds, src.ModelPath, opts)
		} else {
			model, err = credist.LoadModel(ds, src.ModelPath, opts)
		}
		if err != nil {
			return nil, err
		}
	case src.ParamsPath != "":
		model, err = credist.LoadModel(ds, src.ParamsPath, opts)
		if err != nil {
			return nil, err
		}
	default:
		model = credist.Learn(ds, opts)
	}
	base := model.NewPlanner()
	// For a snapshot load the planner's delta is exactly the log tail the
	// file had not scanned; record it before compaction folds it away.
	tailActions := 0
	if src.ModelPath != "" {
		tailActions = base.DeltaActions()
	}
	// Freeze the scan product: every shard becomes shared, so per-request
	// planner clones copy an outer slice instead of the whole UC store.
	base.Compact()
	sn := &Snapshot{
		LoadedAt:      time.Now(),
		src:           src,
		ds:            ds,
		model:         model,
		base:          base,
		entries:       base.Entries(),
		residentBytes: base.ResidentBytes(),
		heapBytes:     base.HeapBytes(),
		mappedBytes:   base.MappedBytes(),
		rowStore:      base.RowStoreBackend(),
	}
	if src.ModelPath != "" {
		sn.modelActions = base.NumActions() - tailActions
		sn.tailActions = tailActions
	}
	// A seed prefix restored with the model (LoadModel drops it whenever a
	// log tail was appended, so it describes exactly this state) is
	// published immediately: /seeds?k up to its length is served with zero
	// CELF work from the first request on.
	if pfx := model.SeedPrefix(); pfx != nil && len(pfx.Seeds) > 0 {
		sn.prefix.Store(newSeedPrefix(seedsel.Result{
			Seeds:     pfx.Seeds,
			Gains:     pfx.Gains,
			LookupsAt: pfx.LookupsAt,
		}, false))
	}
	// The model's spread evaluator (the /spread and /topk path) builds
	// lazily on first use. Kick that build off in the background so a
	// snapshot-loaded server binds its port in milliseconds without the
	// first spread query absorbing the whole propagation-DAG build; an
	// earlier request simply waits on the same one-time build.
	go func() { _ = sn.model.Spread(nil) }()
	return sn, nil
}

// buildPartitioned assembles a scatter-gather snapshot: a coordinator
// over row-range engine partitions, from explicit slice files, a model
// file (slices written next to it on first start, reopened after), or an
// in-memory split of a freshly learned model. A failed partition assembly
// does not fail the build — the snapshot comes back degraded with the
// error recorded, so an embedded server can bind and answer /healthz with
// 503 instead of crash-looping on one corrupt slice; the CLI checks
// PartitionErr and refuses to start.
func buildPartitioned(src Source, ds *credist.Dataset, opts credist.Options) (*Snapshot, error) {
	if src.Partitions > 0 && len(src.SlicePaths) > 0 && src.Partitions != len(src.SlicePaths) {
		return nil, fmt.Errorf("partitions=%d contradicts the %d slice paths", src.Partitions, len(src.SlicePaths))
	}
	if src.ParamsPath != "" && src.ModelPath != "" {
		return nil, fmt.Errorf("model and params are mutually exclusive")
	}
	var (
		model *credist.Model
		parts *credist.PartitionedPlanner
		paths []string
		err   error
	)
	switch {
	case len(src.SlicePaths) > 0:
		paths = src.SlicePaths
		model, parts, err = credist.LoadPartitions(ds, paths, src.Mmap, opts)
	case src.ModelPath != "":
		model, parts, paths, err = credist.LoadModelPartitioned(ds, src.ModelPath, src.Partitions, src.Mmap, opts)
	default:
		if src.ParamsPath != "" {
			model, err = credist.LoadModel(ds, src.ParamsPath, opts)
		} else {
			model = credist.Learn(ds, opts)
		}
		if err == nil {
			base := model.NewPlanner()
			base.Compact()
			parts, err = base.Partition(src.Partitions)
		}
	}
	if err != nil {
		return &Snapshot{LoadedAt: time.Now(), src: src, ds: ds, partitionErr: err}, nil
	}
	sn := &Snapshot{
		LoadedAt:      time.Now(),
		src:           src,
		ds:            ds,
		model:         model,
		parts:         parts,
		slicePaths:    paths,
		entries:       parts.Entries(),
		residentBytes: parts.ResidentBytes(),
		heapBytes:     parts.HeapBytes(),
		mappedBytes:   parts.MappedBytes(),
		rowStore:      parts.RowStoreBackend(),
	}
	if src.ModelPath != "" || len(src.SlicePaths) > 0 {
		sn.modelActions = parts.NumActions() - parts.DeltaActions()
		sn.tailActions = parts.DeltaActions()
	}
	if pfx := model.SeedPrefix(); pfx != nil && len(pfx.Seeds) > 0 {
		sn.prefix.Store(newSeedPrefix(seedsel.Result{
			Seeds:     pfx.Seeds,
			Gains:     pfx.Gains,
			LookupsAt: pfx.LookupsAt,
		}, false))
	}
	// No evaluator warm-up goroutine: in partitioned mode /spread and
	// /topk route through the coordinator, so the propagation-DAG build
	// never happens unless an embedder calls Model.Spread directly.
	return sn, nil
}

// Partitioned reports whether this snapshot serves (or was asked to
// serve) the scatter-gather path.
func (sn *Snapshot) Partitioned() bool { return sn.parts != nil || sn.partitionErr != nil }

// NumPartitions returns the partition count (0 on the single-engine path
// and in the degraded state).
func (sn *Snapshot) NumPartitions() int {
	if sn.parts == nil {
		return 0
	}
	return sn.parts.NumPartitions()
}

// PartitionStats returns per-partition accounting in partition order (nil
// on the single-engine path).
func (sn *Snapshot) PartitionStats() []credist.PartitionStats {
	if sn.parts == nil {
		return nil
	}
	return sn.parts.Stats()
}

// PartitionErr returns the recorded partition-assembly failure, or nil.
// A snapshot carrying one is degraded: every model query answers 502.
func (sn *Snapshot) PartitionErr() error { return sn.partitionErr }

// partitionGate turns the degraded state into the 502 every model query
// must return: a failed partition means no query can be answered over the
// full universe, and a partial sum silently missing one partition's rows
// would be far worse than an error.
func (sn *Snapshot) partitionGate() error {
	if sn.partitionErr != nil {
		return &apiError{code: http.StatusBadGateway, msg: fmt.Sprintf("partitioned model unavailable: %v", sn.partitionErr)}
	}
	return nil
}

// Ingest builds the successor snapshot extended with a batch of new
// propagations, incrementally: the model's learned parameters stay
// frozen, the base planner is cloned (frozen shards shared) and only the
// appended action tail is scanned. The receiver keeps serving unchanged —
// nothing it references is mutated — and the computed seed prefix is
// invalidated simply by the successor starting with an empty selection.
// compact additionally folds the accumulated delta into the frozen base
// before the successor is published.
func (sn *Snapshot) Ingest(tuples []credist.Tuple, compact bool) (*Snapshot, error) {
	if err := sn.partitionGate(); err != nil {
		return nil, err
	}
	model, err := sn.model.Ingest(tuples)
	if err != nil {
		return nil, err
	}
	if sn.parts != nil {
		return sn.ingestPartitioned(model)
	}
	base, err := model.ExtendPlanner(sn.base)
	if err != nil {
		return nil, err
	}
	if compact {
		base.Compact()
	}
	// Freeze before publishing: the successor's delta shards and per-user
	// state go shared, so per-request planner clones stay cheap even when
	// the operator never sends compact (Compact above already froze; this
	// is then a no-op).
	base.Freeze()
	return &Snapshot{
		LoadedAt:      time.Now(),
		src:           sn.src,
		ds:            model.Dataset(),
		model:         model,
		base:          base,
		entries:       base.Entries(),
		residentBytes: base.ResidentBytes(),
		heapBytes:     base.HeapBytes(),
		mappedBytes:   base.MappedBytes(),
		rowStore:      base.RowStoreBackend(),
		deltaEntries:  base.DeltaEntries(),
		deltaActions:  base.DeltaActions(),
		ingests:       sn.ingests + 1,
		lastIngest:    time.Now(),
		modelActions:  sn.modelActions,
		tailActions:   sn.tailActions,
	}, nil
}

// ingestPartitioned derives the partitioned successor: every partition
// clones and scans only its rows of the appended tail, in parallel, and
// the coordinator over the new set replaces the old one atomically.
func (sn *Snapshot) ingestPartitioned(model *credist.Model) (*Snapshot, error) {
	parts, err := sn.parts.Extend(model)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		LoadedAt:      time.Now(),
		src:           sn.src,
		ds:            model.Dataset(),
		model:         model,
		parts:         parts,
		slicePaths:    sn.slicePaths,
		entries:       parts.Entries(),
		residentBytes: parts.ResidentBytes(),
		heapBytes:     parts.HeapBytes(),
		mappedBytes:   parts.MappedBytes(),
		rowStore:      parts.RowStoreBackend(),
		deltaEntries:  parts.DeltaEntries(),
		deltaActions:  parts.DeltaActions(),
		ingests:       sn.ingests + 1,
		lastIngest:    time.Now(),
		modelActions:  sn.modelActions,
		tailActions:   sn.tailActions,
	}, nil
}

// SaveSlices checkpoints the partitioned model as one snapshot-slice file
// per partition, carrying the published seed prefix so a restart serves
// /seeds instantly. Only valid on a healthy partitioned snapshot.
func (sn *Snapshot) SaveSlices(paths []string) error {
	if err := sn.partitionGate(); err != nil {
		return err
	}
	if sn.parts == nil {
		return fmt.Errorf("not a partitioned snapshot")
	}
	return sn.parts.SaveSlices(sn.model, sn.checkpointPrefix(), paths)
}

// Dataset returns the snapshot's dataset.
func (sn *Snapshot) Dataset() *credist.Dataset {
	if sn.model != nil {
		return sn.model.Dataset()
	}
	return sn.ds
}

// Model returns the underlying learned model.
func (sn *Snapshot) Model() *credist.Model { return sn.model }

// Entries returns the live UC credit-entry count of the base planner.
func (sn *Snapshot) Entries() int64 { return sn.entries }

// BaseEntries returns the UC entries in the frozen base shards.
func (sn *Snapshot) BaseEntries() int64 { return sn.entries - sn.deltaEntries }

// DeltaEntries returns the UC entries in the not-yet-compacted delta.
func (sn *Snapshot) DeltaEntries() int64 { return sn.deltaEntries }

// DeltaActions returns how many ingested actions sit outside the base.
func (sn *Snapshot) DeltaActions() int { return sn.deltaActions }

// Ingests returns how many ingest generations this snapshot line has
// accumulated since its last full build or reload.
func (sn *Snapshot) Ingests() int64 { return sn.ingests }

// LastIngest returns when the latest ingest finished (zero time if the
// snapshot came from a full build or reload).
func (sn *Snapshot) LastIngest() time.Time { return sn.lastIngest }

// ResidentBytes returns the UC structure's resident footprint —
// HeapBytes plus MappedBytes.
func (sn *Snapshot) ResidentBytes() int64 { return sn.residentBytes }

// HeapBytes returns the Go-heap-allocated portion of ResidentBytes.
func (sn *Snapshot) HeapBytes() int64 { return sn.heapBytes }

// MappedBytes returns the portion of ResidentBytes still served out of a
// memory-mapped snapshot file (zero unless the source set Mmap).
func (sn *Snapshot) MappedBytes() int64 { return sn.mappedBytes }

// RowStoreBackend reports how the base planner's shards are served:
// "mmap" while any shard still aliases the mapped snapshot file, "heap"
// otherwise.
func (sn *Snapshot) RowStoreBackend() string { return sn.rowStore }

// NumUsers returns the user-universe size, the bound for node-id inputs.
func (sn *Snapshot) NumUsers() int { return sn.Dataset().NumUsers() }

// Spread evaluates sigma_cd for one seed set. On the partitioned path the
// coordinator telescopes exact per-seed gains (bit-identical at every
// partition count, though summed in a different order than the
// single-engine evaluator); degraded partitioned snapshots answer 502.
func (sn *Snapshot) Spread(seeds []credist.NodeID) (float64, error) {
	if err := sn.partitionGate(); err != nil {
		return 0, err
	}
	if sn.parts != nil {
		return sn.parts.Spread(seeds)
	}
	return sn.model.Spread(seeds), nil
}

// ApproxSpread answers a spread query from the model's bounded-error RR
// tier (see credist.Model.ApproxSpread). The tier samples over the full
// user universe, which a partitioned deployment does not hold in any one
// engine, so a partitioned snapshot answers from the fixed sample pool its
// whole-model snapshot persisted (sampled before the split, over the full
// universe; precision is whatever the pool affords, reported honestly in
// achieved_eps) — and 501 when no sketch was persisted, since the tier
// cannot draw a single new sample there.
func (sn *Snapshot) ApproxSpread(seeds []credist.NodeID, opts credist.ApproxOptions) (credist.ApproxResult, error) {
	if err := sn.partitionGate(); err != nil {
		return credist.ApproxResult{}, err
	}
	if sn.parts != nil {
		res, ok, err := sn.model.ApproxSpreadFixed(seeds)
		if err != nil {
			return credist.ApproxResult{}, err
		}
		if !ok {
			return credist.ApproxResult{}, errApproxPartitioned
		}
		return res, nil
	}
	return sn.model.ApproxSpread(seeds, opts)
}

// ApproxSeeds runs RR maximum-coverage seed selection with a confidence
// interval on the selected set's spread; same partitioning rule as
// ApproxSpread.
func (sn *Snapshot) ApproxSeeds(k int, opts credist.ApproxOptions) ([]credist.NodeID, credist.ApproxResult, error) {
	if err := sn.partitionGate(); err != nil {
		return nil, credist.ApproxResult{}, err
	}
	if sn.parts != nil {
		seeds, res, ok, err := sn.model.ApproxSeedsFixed(k)
		if err != nil {
			return nil, credist.ApproxResult{}, err
		}
		if !ok {
			return nil, credist.ApproxResult{}, errApproxPartitioned
		}
		return seeds, res, nil
	}
	return sn.model.ApproxSeeds(k, opts)
}

// ApproxStats reports the RR tier's sample pool. On a partitioned
// deployment this is the fixed pool restored from the whole-model
// snapshot's sketch (all zero when none was persisted).
func (sn *Snapshot) ApproxStats() credist.ApproxStats {
	if sn.model == nil {
		return credist.ApproxStats{}
	}
	return sn.model.ApproxStats()
}

var errApproxPartitioned = &apiError{code: http.StatusNotImplemented,
	msg: "approximate queries on a partitioned deployment are served from a persisted RR sketch, and this model has none " +
		"(re-save it with `credist learn -ris-samples` and restart); no partition holds the full universe, so the tier cannot sample live"}

// SpreadBatch evaluates sigma_cd for many seed sets, fanning the sets over
// the available cores. Each set is evaluated independently, so the floats
// are identical to len(sets) sequential Spread calls.
func (sn *Snapshot) SpreadBatch(sets [][]credist.NodeID) ([]float64, error) {
	if err := sn.partitionGate(); err != nil {
		return nil, err
	}
	out := make([]float64, len(sets))
	errs := make([]error, len(sets))
	forEach(len(sets), func(i int) { out[i], errs[i] = sn.Spread(sets[i]) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Gains returns the marginal gain of each candidate against the base seed
// set, batched. With an empty base the shared scanned planner (or the
// shared partitions) answers directly (Gain is read-only); otherwise the
// base state is cloned and the seeds committed to the clone. Either way
// every value is bit-identical to credist.Model.Gains on the same
// arguments, at any partition count.
func (sn *Snapshot) Gains(base, candidates []credist.NodeID) ([]float64, error) {
	if err := sn.partitionGate(); err != nil {
		return nil, err
	}
	if sn.parts != nil {
		return sn.parts.Gains(base, candidates)
	}
	p := sn.base
	if len(base) > 0 {
		p = sn.base.Clone()
		for _, s := range base {
			p.Add(s)
		}
	}
	out := make([]float64, len(candidates))
	forEach(len(candidates), func(i int) { out[i] = p.Gain(candidates[i]) })
	return out, nil
}

// SelectSeeds answers a CELF seed selection for k seeds from the
// snapshot's single growable selection: seeds for the largest k computed
// so far contain the answer for every smaller k, so any request at or
// below the published prefix (including one restored from a binary model
// snapshot) is a lock-free slice with zero CELF work, and only a new
// high-water k pays — for exactly the marginal seeds beyond the current
// prefix, never a recomputation of the prefix itself. Concurrent growth
// requests are serialized; racers that arrive while a sufficient prefix
// is being published are served from it. cached reports whether the
// request was answered without running any selection. The result is
// bit-identical to the offline Model.SelectSeeds(k).
func (sn *Snapshot) SelectSeeds(k int) (res *SeedsResult, cached bool, err error) {
	if err := sn.partitionGate(); err != nil {
		return nil, false, err
	}
	if pv := sn.prefix.Load(); pv != nil && pv.covers(k) {
		return pv.result(k), true, nil
	}
	sn.seedMu.Lock()
	defer sn.seedMu.Unlock()
	if pv := sn.prefix.Load(); pv != nil && pv.covers(k) {
		// A concurrent request grew past k while we waited for the lock.
		return pv.result(k), true, nil
	}
	if sn.seedSel == nil {
		// First growth: resume from the restored prefix when there is one
		// (committing its seeds costs k Adds, no gain evaluations), start
		// fresh otherwise. The selection clones sn.base — the snapshot's
		// own (possibly ingest-extended) planner, shards shared — never
		// the model's lazy base, which for an ingest-grown model would be
		// a second from-scratch scan of the combined log; and it owns the
		// clone, so Engine.Add never touches the shared base. On the
		// partitioned path the same resume runs scatter-gather over fresh
		// partition clones, bit-identical to the single-engine selection.
		var restored *credist.SeedPrefix
		if pv := sn.prefix.Load(); pv != nil {
			restored = &credist.SeedPrefix{Seeds: pv.seeds, Gains: pv.gains, LookupsAt: pv.lookupsAt}
		}
		var sel *credist.GrowableSelection
		var rerr error
		if sn.parts != nil {
			sel, rerr = sn.parts.ResumeSelection(restored)
		} else {
			sel, rerr = sn.base.ResumeSelection(restored)
		}
		if rerr != nil {
			// A published prefix always comes from this snapshot's model,
			// so Resume cannot reject it; recover into a fresh selection
			// regardless.
			if sn.parts != nil {
				sel = sn.parts.NewSelection()
			} else {
				sel = sn.base.NewSelection()
			}
		}
		sn.seedSel = sel
	}
	sn.selections.Add(1)
	grown := sn.seedSel.Grow(k)
	pv := newSeedPrefix(grown, sn.seedSel.Exhausted())
	sn.prefix.Store(pv)
	return pv.result(k), false, nil
}

// SpreadObj is Spread under a campaign objective (audience weights, time
// window, blocked rivals): sigma_obj(S | blocked), routed to the
// scatter-gather coordinator or the exact evaluator exactly as Spread is.
// Handlers route default-objective requests to Spread instead, so this
// path never touches (and can never perturb) the default answers.
func (sn *Snapshot) SpreadObj(seeds []credist.NodeID, o *credist.Objective) (float64, error) {
	if err := sn.partitionGate(); err != nil {
		return 0, err
	}
	if sn.parts != nil {
		return sn.parts.SpreadObj(sn.model, seeds, o)
	}
	return sn.model.SpreadObj(seeds, o)
}

// GainsObj is Gains under a campaign objective: marginal objective gains
// over base with the objective's blocked rivals committed first. The
// single-engine path evaluates over this snapshot's own (possibly
// ingest-extended) base planner, never the model's lazy base.
func (sn *Snapshot) GainsObj(base, candidates []credist.NodeID, o *credist.Objective) ([]float64, error) {
	if err := sn.partitionGate(); err != nil {
		return nil, err
	}
	if sn.parts != nil {
		return sn.parts.GainsObj(sn.model, base, candidates, o)
	}
	return sn.model.GainsObjOn(sn.base, base, candidates, o)
}

// SelectSeedsObj runs seed selection under a campaign objective —
// audience/window repricing, cost-benefit CELF under a budget, blocked
// rivals excluded and conditioned on. Unlike SelectSeeds it is a fresh
// one-shot run every time: the snapshot's growable selection and its
// published prefix memo answer the default objective only, and an
// objective-shaped result stored there would poison later default
// requests. Bit-identical to the offline Model.SelectSeedsObj at any
// worker or partition count.
func (sn *Snapshot) SelectSeedsObj(k int, o *credist.Objective) (*SeedsResult, error) {
	if err := sn.partitionGate(); err != nil {
		return nil, err
	}
	var res seedsel.Result
	var err error
	if sn.parts != nil {
		res, err = sn.parts.SelectSeedsObj(sn.model, k, o)
	} else {
		res, err = sn.model.SelectSeedsObjOn(sn.base, k, o)
	}
	if err != nil {
		return nil, err
	}
	out := &SeedsResult{Seeds: res.Seeds, Gains: res.Gains, Spread: res.Spread(), Lookups: res.Lookups}
	if out.Seeds == nil {
		out.Seeds = []credist.NodeID{}
	}
	if out.Gains == nil {
		out.Gains = []float64{}
	}
	return out, nil
}

// ExplainSeed decomposes candidate x's marginal gain (against this
// snapshot's live base state) into its top credit paths. The explained
// Gain is bit-for-bit the snapshot's Gains(nil, {x}) value. On the
// partitioned path the owner of x's row answers alone — credit paths are
// partitioned by influencer row, so no gather is needed; degraded
// partitioned snapshots answer 502.
func (sn *Snapshot) ExplainSeed(x credist.NodeID, top int) (credist.SeedExplanation, error) {
	if err := sn.partitionGate(); err != nil {
		return credist.SeedExplanation{}, err
	}
	if sn.parts != nil {
		return sn.parts.ExplainSeed(x, top)
	}
	return sn.model.ExplainSeedOn(sn.base, x, top), nil
}

// ExplainReach decomposes the credit the given seed set pushes onto
// target v: per-seed shares in request order whose fixed-order fold is
// bit-exactly the returned Total, plus the top contributing paths. On the
// partitioned path each seed's share comes wholly from its row's owner
// and the gathered answer is bit-identical to the single-engine one.
func (sn *Snapshot) ExplainReach(seeds []credist.NodeID, v credist.NodeID, top int) (credist.ReachExplanation, error) {
	if err := sn.partitionGate(); err != nil {
		return credist.ReachExplanation{}, err
	}
	if sn.parts != nil {
		return sn.parts.ExplainReach(seeds, v, top)
	}
	return sn.model.ExplainReachOn(sn.base, seeds, v, top), nil
}

// ProvStats reports the model's provenance index for /stats (all zero in
// the degraded state, and on partitioned deployments, which explain by
// walking each partition's own rows instead of an index).
func (sn *Snapshot) ProvStats() credist.ProvStats {
	if sn.model == nil {
		return credist.ProvStats{}
	}
	return sn.model.ProvStats()
}

// Selections returns how many CELF growth runs this snapshot has actually
// executed: at most one per new high-water k, and zero for anything the
// computed (or restored) prefix already covers — the diagnostic that pins
// the no-duplicate-work guarantee under concurrent cold traffic.
func (sn *Snapshot) Selections() int64 { return sn.selections.Load() }

// SeedPrefixLen returns the length of the published seed prefix — the
// largest k answerable with zero CELF work.
func (sn *Snapshot) SeedPrefixLen() int {
	if pv := sn.prefix.Load(); pv != nil {
		return len(pv.seeds)
	}
	return 0
}

// checkpointPrefix returns the published seed prefix in the facade's
// persistence form, or nil. POST /snapshot passes it to WriteSnapshot so
// a restart serves /seeds up to the same k instantly.
func (sn *Snapshot) checkpointPrefix() *credist.SeedPrefix {
	pv := sn.prefix.Load()
	if pv == nil || len(pv.seeds) == 0 {
		return nil
	}
	return &credist.SeedPrefix{Seeds: pv.seeds, Gains: pv.gains, LookupsAt: pv.lookupsAt}
}

// ModelActions returns how many actions the binary snapshot file this
// snapshot line cold-started from had scanned (0 when the model was
// learned in-process).
func (sn *Snapshot) ModelActions() int { return sn.modelActions }

// TailActions returns how many log actions past the snapshot file the
// cold start appended (0 when the model was learned in-process).
func (sn *Snapshot) TailActions() int { return sn.tailActions }

// TopK returns the k top users under a heuristic baseline ("highdeg" or
// "pagerank") together with the CD-model spread the set achieves — the
// paper's "Spread Achieved" comparison (Figure 6) as an online query.
func (sn *Snapshot) TopK(method string, k int) ([]credist.NodeID, float64, error) {
	if err := sn.partitionGate(); err != nil {
		return nil, 0, err
	}
	var seeds []credist.NodeID
	switch method {
	case "highdeg":
		seeds = credist.HighDegreeSeeds(sn.Dataset(), k)
	case "pagerank":
		seeds = credist.PageRankSeeds(sn.Dataset(), k)
	default:
		return nil, 0, fmt.Errorf("unknown method %q (valid: highdeg, pagerank)", method)
	}
	spread, err := sn.Spread(seeds)
	if err != nil {
		return nil, 0, err
	}
	return seeds, spread, nil
}

// forEach runs fn(0..n-1) over up to GOMAXPROCS goroutines. Results are
// written by index, so parallelism never reorders a batch.
func forEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}

// Registry hands out the current snapshot and swaps in replacements
// atomically. Readers pin a snapshot with Current and keep using it for the
// whole request; a concurrent Install never invalidates it.
type Registry struct {
	cur    atomic.Pointer[Snapshot]
	nextID atomic.Int64
}

// NewRegistry installs the initial snapshot.
func NewRegistry(sn *Snapshot) *Registry {
	r := &Registry{}
	r.Install(sn)
	return r
}

// Current returns the live snapshot.
func (r *Registry) Current() *Snapshot { return r.cur.Load() }

// Install assigns the snapshot the next ID and makes it current.
func (r *Registry) Install(sn *Snapshot) {
	sn.ID = r.nextID.Add(1)
	r.cur.Store(sn)
}
