package seedsel

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"credist/internal/graph"
)

// coverEstimator is a deterministic submodular oracle: each node covers a
// fixed set of elements, the spread of S is |union of covered sets|.
// Coverage functions are the canonical monotone submodular family, so
// greedy and CELF must agree exactly on them.
type coverEstimator struct {
	covers  [][]int
	covered map[int]bool
}

func newCoverEstimator(covers [][]int) *coverEstimator {
	return &coverEstimator{covers: covers, covered: map[int]bool{}}
}

func (c *coverEstimator) NumNodes() int { return len(c.covers) }

func (c *coverEstimator) Gain(x graph.NodeID) float64 {
	gain := 0
	for _, e := range c.covers[x] {
		if !c.covered[e] {
			gain++
		}
	}
	return float64(gain)
}

func (c *coverEstimator) Add(x graph.NodeID) {
	for _, e := range c.covers[x] {
		c.covered[e] = true
	}
}

func randomCovers(rng *rand.Rand, n, universe int) [][]int {
	covers := make([][]int, n)
	for i := range covers {
		m := 1 + rng.IntN(universe/2)
		seen := map[int]bool{}
		for len(seen) < m {
			seen[rng.IntN(universe)] = true
		}
		for e := range seen {
			covers[i] = append(covers[i], e)
		}
	}
	return covers
}

func TestGreedySolvesSmallCover(t *testing.T) {
	covers := [][]int{
		{1, 2, 3},
		{3, 4},
		{5},
		{1, 2, 3, 4}, // dominates 0 and 1
	}
	res := Greedy(newCoverEstimator(covers), 2)
	if len(res.Seeds) != 2 || res.Seeds[0] != 3 || res.Seeds[1] != 2 {
		t.Fatalf("Seeds = %v, want [3 2]", res.Seeds)
	}
	if res.Spread() != 5 {
		t.Fatalf("Spread = %g, want 5", res.Spread())
	}
}

func TestCELFEqualsGreedy(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		covers := randomCovers(rng, 10+rng.IntN(20), 30)
		k := 1 + rng.IntN(6)
		g := Greedy(newCoverEstimator(covers), k)
		c := CELF(newCoverEstimator(covers), k)
		if len(g.Seeds) != len(c.Seeds) {
			return false
		}
		for i := range g.Seeds {
			// Identical tie-breaking: both prefer the smaller node id.
			if g.Seeds[i] != c.Seeds[i] || g.Gains[i] != c.Gains[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCELFDoesFewerLookups(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	covers := randomCovers(rng, 200, 100)
	k := 10
	g := Greedy(newCoverEstimator(covers), k)
	c := CELF(newCoverEstimator(covers), k)
	if c.Lookups >= g.Lookups {
		t.Fatalf("CELF lookups %d not below greedy %d", c.Lookups, g.Lookups)
	}
}

func TestGreedyStopsWhenCandidatesExhausted(t *testing.T) {
	covers := [][]int{{1}, {2}}
	res := Greedy(newCoverEstimator(covers), 10)
	if len(res.Seeds) != 2 {
		t.Fatalf("Seeds = %v, want both candidates", res.Seeds)
	}
}

func TestGreedyCandidatesRestricted(t *testing.T) {
	covers := [][]int{{1, 2, 3}, {4}, {5}}
	res := GreedyCandidates(newCoverEstimator(covers), 2, []graph.NodeID{1, 2})
	for _, s := range res.Seeds {
		if s == 0 {
			t.Fatal("selected a node outside the candidate pool")
		}
	}
}

func TestElapsedMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	covers := randomCovers(rng, 50, 40)
	res := CELF(newCoverEstimator(covers), 5)
	if len(res.Elapsed) != len(res.Seeds) {
		t.Fatalf("Elapsed len %d != Seeds len %d", len(res.Elapsed), len(res.Seeds))
	}
	for i := 1; i < len(res.Elapsed); i++ {
		if res.Elapsed[i] < res.Elapsed[i-1] {
			t.Fatal("Elapsed not monotone")
		}
	}
}

func TestGainsNonIncreasing(t *testing.T) {
	// Submodularity makes greedy marginal gains non-increasing.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		covers := randomCovers(rng, 15, 25)
		res := CELF(newCoverEstimator(covers), 8)
		for i := 1; i < len(res.Gains); i++ {
			if res.Gains[i] > res.Gains[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHighDegree(t *testing.T) {
	b := graph.NewBuilder(5)
	// Node 0 out-degree 3; node 1 out-degree 2.
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(0, 2)
	_ = b.AddEdge(0, 3)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(1, 3)
	_ = b.AddEdge(2, 4)
	g := b.Build()
	top := HighDegree(g, 2)
	if top[0] != 0 || top[1] != 1 {
		t.Fatalf("HighDegree = %v, want [0 1]", top)
	}
}

func TestPageRankSeedsPicksInfluencer(t *testing.T) {
	// 0 influences everyone: reversed-graph PageRank should rank 0 first.
	b := graph.NewBuilder(6)
	for i := int32(1); i < 6; i++ {
		_ = b.AddEdge(0, i)
	}
	g := b.Build()
	seeds := PageRankSeeds(g, 1, graph.PageRankOptions{})
	if seeds[0] != 0 {
		t.Fatalf("PageRankSeeds = %v, want node 0 first", seeds)
	}
}
