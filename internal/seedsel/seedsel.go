// Package seedsel implements seed-set selection: the greedy algorithm of
// Kempe et al. (Algorithm 1), its CELF lazy-forward optimization
// (Leskovec et al., used as Algorithm 3 in the paper), and the High-Degree
// and PageRank heuristic baselines of the "Spread Achieved" experiment.
// All selectors work against the Estimator interface, so one greedy serves
// the CD engine, Monte-Carlo IC/LT estimation, and the PMIA/LDAG
// heuristics alike.
package seedsel

import (
	"container/heap"
	"time"

	"credist/internal/graph"
)

// Estimator exposes the marginal-gain oracle the greedy algorithm needs.
// Implementations carry the current seed set as internal state: Gain must
// be side-effect free, Add commits a seed.
type Estimator interface {
	// NumNodes returns the candidate universe size (node ids 0..n-1).
	NumNodes() int
	// Gain returns sigma(S+x) - sigma(S) for the current seed set S.
	Gain(x graph.NodeID) float64
	// Add commits x to the seed set.
	Add(x graph.NodeID)
}

// Result reports a selection run.
type Result struct {
	// Seeds in selection order.
	Seeds []graph.NodeID
	// Gains[i] is the marginal gain of Seeds[i] when it was selected;
	// the cumulative sum is the (estimated) spread of the prefix.
	Gains []float64
	// Lookups counts Gain evaluations, the paper's measure of how much
	// work CELF saves over plain greedy.
	Lookups int
	// Elapsed[i] is the wall time from selection start until Seeds[i] was
	// committed, the series behind the paper's running-time figure.
	Elapsed []time.Duration
}

// Spread returns the estimated spread of the full seed set (sum of gains).
func (r Result) Spread() float64 {
	total := 0.0
	for _, g := range r.Gains {
		total += g
	}
	return total
}

// Greedy runs the plain greedy algorithm (Algorithm 1): every round it
// re-evaluates the marginal gain of every candidate. Exponentially wasteful
// compared to CELF but the reference the ablation benchmarks compare
// against.
func Greedy(est Estimator, k int) Result {
	n := est.NumNodes()
	candidates := make([]graph.NodeID, n)
	for i := range candidates {
		candidates[i] = graph.NodeID(i)
	}
	return GreedyCandidates(est, k, candidates)
}

// GreedyCandidates is Greedy restricted to a candidate pool.
func GreedyCandidates(est Estimator, k int, candidates []graph.NodeID) Result {
	var res Result
	start := time.Now()
	chosen := make(map[graph.NodeID]bool, k)
	for len(res.Seeds) < k && len(res.Seeds) < len(candidates) {
		best := graph.NodeID(-1)
		bestGain := -1.0
		for _, x := range candidates {
			if chosen[x] {
				continue
			}
			g := est.Gain(x)
			res.Lookups++
			if g > bestGain || (g == bestGain && (best == -1 || x < best)) {
				best, bestGain = x, g
			}
		}
		if best == -1 {
			break
		}
		est.Add(best)
		chosen[best] = true
		res.Seeds = append(res.Seeds, best)
		res.Gains = append(res.Gains, bestGain)
		res.Elapsed = append(res.Elapsed, time.Since(start))
	}
	return res
}

// celfEntry is a lazily-evaluated candidate: gain was computed when the
// seed set had size round.
type celfEntry struct {
	node  graph.NodeID
	gain  float64
	round int
}

type celfHeap []celfEntry

func (h celfHeap) Len() int { return len(h) }
func (h celfHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].node < h[j].node
}
func (h celfHeap) Swap(i, j int)        { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x any)          { *h = append(*h, x.(celfEntry)) }
func (h *celfHeap) Pop() any            { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h celfHeap) Peek() celfEntry      { return h[0] }
func (h *celfHeap) Replace(e celfEntry) { (*h)[0] = e; heap.Fix(h, 0) }

// CELF runs greedy with the lazy-forward optimization: submodularity
// guarantees a candidate's marginal gain only shrinks as the seed set
// grows, so a candidate whose cached gain is stale is re-evaluated only
// when it reaches the top of the priority queue. Identical output to
// Greedy (up to floating-point ties), far fewer Gain calls.
func CELF(est Estimator, k int) Result {
	n := est.NumNodes()
	candidates := make([]graph.NodeID, n)
	for i := range candidates {
		candidates[i] = graph.NodeID(i)
	}
	return CELFCandidates(est, k, candidates)
}

// CELFCandidates is CELF restricted to a candidate pool.
func CELFCandidates(est Estimator, k int, candidates []graph.NodeID) Result {
	var res Result
	start := time.Now()
	h := make(celfHeap, 0, len(candidates))
	for _, x := range candidates {
		g := est.Gain(x)
		res.Lookups++
		h = append(h, celfEntry{node: x, gain: g, round: 0})
	}
	heap.Init(&h)
	for len(res.Seeds) < k && h.Len() > 0 {
		top := h.Peek()
		if top.round == len(res.Seeds) {
			// Fresh: by submodularity nothing below can beat it.
			heap.Pop(&h)
			est.Add(top.node)
			res.Seeds = append(res.Seeds, top.node)
			res.Gains = append(res.Gains, top.gain)
			res.Elapsed = append(res.Elapsed, time.Since(start))
			continue
		}
		// Stale: recompute against the current seed set and reinsert.
		top.gain = est.Gain(top.node)
		res.Lookups++
		top.round = len(res.Seeds)
		h.Replace(top)
	}
	return res
}

// HighDegree returns the k nodes of largest out-degree (ties by id), the
// paper's "High Degree" baseline.
func HighDegree(g *graph.Graph, k int) []graph.NodeID {
	scores := make([]float64, g.NumNodes())
	for u := range scores {
		scores[u] = float64(g.OutDegree(graph.NodeID(u)))
	}
	return graph.TopKByScore(scores, k)
}

// PageRankSeeds returns the k top nodes by PageRank over the reversed
// graph, so that rank flows from the influenced toward influencers.
func PageRankSeeds(g *graph.Graph, k int, opts graph.PageRankOptions) []graph.NodeID {
	scores := graph.PageRank(g.Transpose(), opts)
	return graph.TopKByScore(scores, k)
}
