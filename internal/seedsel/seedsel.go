// Package seedsel implements seed-set selection: the greedy algorithm of
// Kempe et al. (Algorithm 1), its CELF lazy-forward optimization
// (Leskovec et al., used as Algorithm 3 in the paper), and the High-Degree
// and PageRank heuristic baselines of the "Spread Achieved" experiment.
// All selectors work against the Estimator interface, so one greedy serves
// the CD engine, Monte-Carlo IC/LT estimation, and the PMIA/LDAG
// heuristics alike.
//
// CELF here is a thin veneer over internal/celf, the shared
// seed-selection engine every path in the repository routes through
// (facade, serving layer, experiments, RIS): estimators that mark
// themselves concurrency-safe (celf.ConcurrentEstimator, e.g. the CD
// engine) get the parallel first-iteration gain pass automatically, and
// everything else runs the classic serial lazy-forward loop. Greedy stays
// here as the O(nk) reference the ablation benchmarks compare against.
package seedsel

import (
	"time"

	"credist/internal/celf"
	"credist/internal/graph"
)

// Estimator exposes the marginal-gain oracle the greedy algorithm needs.
// Implementations carry the current seed set as internal state: Gain must
// be side-effect free, Add commits a seed.
type Estimator interface {
	// NumNodes returns the candidate universe size (node ids 0..n-1).
	NumNodes() int
	// Gain returns sigma(S+x) - sigma(S) for the current seed set S.
	Gain(x graph.NodeID) float64
	// Add commits x to the seed set.
	Add(x graph.NodeID)
}

// Result reports a selection run; it is the shared engine's result type.
// Gains[i] is the marginal gain of Seeds[i] when it was selected (the
// cumulative sum is the estimated spread of each prefix), Lookups counts
// Gain evaluations — the paper's measure of how much work CELF saves over
// plain greedy — and Elapsed[i] is the wall time until Seeds[i] was
// committed, the series behind the paper's running-time figure.
type Result = celf.Result

// Greedy runs the plain greedy algorithm (Algorithm 1): every round it
// re-evaluates the marginal gain of every candidate. Exponentially wasteful
// compared to CELF but the reference the ablation benchmarks compare
// against.
func Greedy(est Estimator, k int) Result {
	n := est.NumNodes()
	candidates := make([]graph.NodeID, n)
	for i := range candidates {
		candidates[i] = graph.NodeID(i)
	}
	return GreedyCandidates(est, k, candidates)
}

// GreedyCandidates is Greedy restricted to a candidate pool.
func GreedyCandidates(est Estimator, k int, candidates []graph.NodeID) Result {
	var res Result
	start := time.Now()
	chosen := make(map[graph.NodeID]bool, k)
	for len(res.Seeds) < k && len(res.Seeds) < len(candidates) {
		best := graph.NodeID(-1)
		bestGain := -1.0
		for _, x := range candidates {
			if chosen[x] {
				continue
			}
			g := est.Gain(x)
			res.Lookups++
			if g > bestGain || (g == bestGain && (best == -1 || x < best)) {
				best, bestGain = x, g
			}
		}
		if best == -1 {
			break
		}
		est.Add(best)
		chosen[best] = true
		res.Seeds = append(res.Seeds, best)
		res.Gains = append(res.Gains, bestGain)
		res.LookupsAt = append(res.LookupsAt, int64(res.Lookups))
		res.Elapsed = append(res.Elapsed, time.Since(start))
	}
	return res
}

// CELF runs greedy with the lazy-forward optimization via the shared
// engine: submodularity guarantees a candidate's marginal gain only
// shrinks as the seed set grows, so a candidate whose cached gain is
// stale is re-evaluated only when it reaches the top of the priority
// queue. Identical output to Greedy (up to floating-point ties), far
// fewer Gain calls.
func CELF(est Estimator, k int) Result {
	return celf.Run(est, k, celf.Options{})
}

// CELFCandidates is CELF restricted to a candidate pool.
func CELFCandidates(est Estimator, k int, candidates []graph.NodeID) Result {
	return celf.Run(est, k, celf.Options{Candidates: candidates})
}

// HighDegree returns the k nodes of largest out-degree (ties by id), the
// paper's "High Degree" baseline.
func HighDegree(g *graph.Graph, k int) []graph.NodeID {
	scores := make([]float64, g.NumNodes())
	for u := range scores {
		scores[u] = float64(g.OutDegree(graph.NodeID(u)))
	}
	return graph.TopKByScore(scores, k)
}

// PageRankSeeds returns the k top nodes by PageRank over the reversed
// graph, so that rank flows from the influenced toward influencers.
func PageRankSeeds(g *graph.Graph, k int, opts graph.PageRankOptions) []graph.NodeID {
	scores := graph.PageRank(g.Transpose(), opts)
	return graph.TopKByScore(scores, k)
}
