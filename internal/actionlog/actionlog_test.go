package actionlog

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"credist/internal/graph"
)

func buildLog(t *testing.T, numUsers int, tuples []Tuple) *Log {
	t.Helper()
	l, err := FromTuples(numUsers, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLogBasics(t *testing.T) {
	l := buildLog(t, 4, []Tuple{
		{User: 0, Action: 0, Time: 1},
		{User: 1, Action: 0, Time: 2},
		{User: 2, Action: 1, Time: 5},
		{User: 0, Action: 1, Time: 3},
	})
	if got := l.NumActions(); got != 2 {
		t.Fatalf("NumActions = %d, want 2", got)
	}
	if got := l.NumTuples(); got != 4 {
		t.Fatalf("NumTuples = %d, want 4", got)
	}
	if got := l.ActionCount(0); got != 2 {
		t.Fatalf("ActionCount(0) = %d, want 2", got)
	}
	if got := l.Size(0); got != 2 {
		t.Fatalf("Size(0) = %d, want 2", got)
	}
	if ts, ok := l.PerformedAt(0, 1); !ok || ts != 3 {
		t.Fatalf("PerformedAt(0,1) = %g,%v", ts, ok)
	}
	if _, ok := l.PerformedAt(3, 0); ok {
		t.Fatal("PerformedAt should report absence")
	}
}

func TestDuplicateKeepsEarliest(t *testing.T) {
	l := buildLog(t, 2, []Tuple{
		{User: 0, Action: 0, Time: 9},
		{User: 0, Action: 0, Time: 4},
		{User: 0, Action: 0, Time: 7},
	})
	if got := l.NumTuples(); got != 1 {
		t.Fatalf("NumTuples = %d, want 1", got)
	}
	if ts, _ := l.PerformedAt(0, 0); ts != 4 {
		t.Fatalf("kept time %g, want earliest 4", ts)
	}
}

func TestActionChronological(t *testing.T) {
	l := buildLog(t, 5, []Tuple{
		{User: 3, Action: 0, Time: 5},
		{User: 1, Action: 0, Time: 1},
		{User: 4, Action: 0, Time: 3},
	})
	tuples := l.Action(0)
	for i := 1; i < len(tuples); i++ {
		if tuples[i].Time < tuples[i-1].Time {
			t.Fatalf("tuples not chronological: %v", tuples)
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder(2)
	if err := b.Add(2, 0, 1); err == nil {
		t.Error("out-of-range user accepted")
	}
	if err := b.Add(0, -1, 1); err == nil {
		t.Error("negative action accepted")
	}
}

func linearGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestPropagationChain(t *testing.T) {
	g := linearGraph(t, 4) // 0->1->2->3
	l := buildLog(t, 4, []Tuple{
		{User: 0, Action: 0, Time: 1},
		{User: 1, Action: 0, Time: 2},
		{User: 2, Action: 0, Time: 3},
		{User: 3, Action: 0, Time: 4},
	})
	p := BuildPropagation(l, g, 0)
	if p.Size() != 4 {
		t.Fatalf("Size = %d, want 4", p.Size())
	}
	inits := p.Initiators()
	if len(inits) != 1 || inits[0] != 0 {
		t.Fatalf("Initiators = %v, want [0]", inits)
	}
	for i := 1; i < 4; i++ {
		if p.InDegree(int32(i)) != 1 {
			t.Fatalf("InDegree(%d) = %d, want 1", i, p.InDegree(int32(i)))
		}
	}
}

func TestPropagationTiesDoNotInfluence(t *testing.T) {
	g := linearGraph(t, 2)
	l := buildLog(t, 2, []Tuple{
		{User: 0, Action: 0, Time: 5},
		{User: 1, Action: 0, Time: 5}, // same instant: no propagation
	})
	p := BuildPropagation(l, g, 0)
	if got := len(p.Initiators()); got != 2 {
		t.Fatalf("initiators = %d, want 2 (ties don't propagate)", got)
	}
}

func TestPropagationIsDAG(t *testing.T) {
	// Property: parents always precede children in chronological index.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 5 + rng.IntN(15)
		gb := graph.NewBuilder(n)
		for e := 0; e < n*2; e++ {
			u, v := graph.NodeID(rng.IntN(n)), graph.NodeID(rng.IntN(n))
			if u != v {
				_ = gb.AddEdge(u, v)
			}
		}
		g := gb.Build()
		lb := NewBuilder(n)
		for u := 0; u < n; u++ {
			if rng.Float64() < 0.7 {
				_ = lb.Add(graph.NodeID(u), 0, float64(rng.IntN(10)))
			}
		}
		l := lb.Build()
		if l.NumActions() == 0 {
			return true
		}
		p := BuildPropagation(l, g, 0)
		for i := range p.Users {
			for _, j := range p.Parents[i] {
				if j >= int32(i) && p.Times[j] >= p.Times[i] {
					return false
				}
				if p.Times[j] >= p.Times[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRatioAndDisjoint(t *testing.T) {
	lb := NewBuilder(50)
	rng := rand.New(rand.NewPCG(2, 2))
	for a := 0; a < 100; a++ {
		size := 1 + rng.IntN(20)
		perm := rng.Perm(50)
		for i := 0; i < size; i++ {
			_ = lb.Add(graph.NodeID(perm[i]), ActionID(a), float64(i))
		}
	}
	l := lb.Build()
	train, test, trainOrig, testOrig := Split(l)
	if train.NumActions() != 80 || test.NumActions() != 20 {
		t.Fatalf("split = %d/%d, want 80/20", train.NumActions(), test.NumActions())
	}
	seen := map[ActionID]bool{}
	for _, a := range trainOrig {
		seen[a] = true
	}
	for _, a := range testOrig {
		if seen[a] {
			t.Fatalf("action %d in both splits", a)
		}
	}
	if train.NumTuples()+test.NumTuples() != l.NumTuples() {
		t.Fatal("tuples lost in split")
	}
}

func TestSplitPreservesSizeDistribution(t *testing.T) {
	lb := NewBuilder(200)
	rng := rand.New(rand.NewPCG(3, 3))
	for a := 0; a < 200; a++ {
		size := 1 + rng.IntN(100)
		perm := rng.Perm(200)
		for i := 0; i < size; i++ {
			_ = lb.Add(graph.NodeID(perm[i]), ActionID(a), float64(i))
		}
	}
	train, test, _, _ := Split(lb.Build())
	meanTrain := float64(train.NumTuples()) / float64(train.NumActions())
	meanTest := float64(test.NumTuples()) / float64(test.NumActions())
	// Every-fifth-by-rank keeps the distributions close.
	if meanTest < meanTrain*0.7 || meanTest > meanTrain*1.3 {
		t.Fatalf("size distributions diverged: train %.1f test %.1f", meanTrain, meanTest)
	}
}

func TestRestrict(t *testing.T) {
	l := buildLog(t, 3, []Tuple{
		{User: 0, Action: 0, Time: 1},
		{User: 1, Action: 1, Time: 2},
		{User: 2, Action: 2, Time: 3},
	})
	r := l.Restrict([]ActionID{2, 0})
	if r.NumActions() != 2 {
		t.Fatalf("NumActions = %d, want 2", r.NumActions())
	}
	// Action 0 of r is original action 2.
	if ts, ok := r.PerformedAt(2, 0); !ok || ts != 3 {
		t.Fatalf("renumbering broken: %g,%v", ts, ok)
	}
}

func TestRestrictUsers(t *testing.T) {
	l := buildLog(t, 4, []Tuple{
		{User: 0, Action: 0, Time: 1},
		{User: 1, Action: 0, Time: 2},
		{User: 3, Action: 1, Time: 5},
	})
	remap := map[graph.NodeID]graph.NodeID{0: 0, 1: 1}
	r := l.RestrictUsers(remap, 2)
	if r.NumUsers() != 2 || r.NumTuples() != 2 || r.NumActions() != 1 {
		t.Fatalf("restricted log wrong: users=%d tuples=%d actions=%d",
			r.NumUsers(), r.NumTuples(), r.NumActions())
	}
}

func TestSummarize(t *testing.T) {
	l := buildLog(t, 5, []Tuple{
		{User: 0, Action: 0, Time: 1},
		{User: 1, Action: 0, Time: 2},
		{User: 0, Action: 1, Time: 3},
	})
	st := Summarize(l)
	if st.NumTuples != 3 || st.NumActions != 2 || st.MaxSize != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ActiveUsers != 2 {
		t.Fatalf("ActiveUsers = %d, want 2", st.ActiveUsers)
	}
	if st.MeanSize != 1.5 {
		t.Fatalf("MeanSize = %g, want 1.5", st.MeanSize)
	}
}

func TestLogIORoundTrip(t *testing.T) {
	l := buildLog(t, 5, []Tuple{
		{User: 0, Action: 0, Time: 1.5},
		{User: 1, Action: 0, Time: 2.25},
		{User: 2, Action: 1, Time: 3},
	})
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	l2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if l2.NumUsers() != l.NumUsers() || l2.NumTuples() != l.NumTuples() || l2.NumActions() != l.NumActions() {
		t.Fatal("round trip changed shape")
	}
	if ts, ok := l2.PerformedAt(1, 0); !ok || ts != 2.25 {
		t.Fatalf("timestamp lost: %g,%v", ts, ok)
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{"", "x\n", "2\n0\n", "2\n0 0 zz\n", "2\n9 0 1\n"} {
		if _, err := Read(bytes.NewBufferString(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}
