package actionlog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"credist/internal/graph"
)

// Write serializes the log as plain text:
//
//	<numUsers>
//	<user> <action> <time>
//	...
//
// in (action, time) order, the format cmd/datagen emits.
func Write(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n", l.NumUsers()); err != nil {
		return err
	}
	for _, t := range l.Tuples() {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", t.User, t.Action, t.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format written by Write. Blank lines and '#' comments
// are ignored.
func Read(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if b == nil {
			n, err := strconv.Atoi(line)
			if err != nil {
				return nil, fmt.Errorf("actionlog: line %d: expected user count: %w", lineNo, err)
			}
			b = NewBuilder(n)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("actionlog: line %d: expected 'user action time', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("actionlog: line %d: bad user: %w", lineNo, err)
		}
		a, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("actionlog: line %d: bad action: %w", lineNo, err)
		}
		t, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("actionlog: line %d: bad time: %w", lineNo, err)
		}
		if err := b.Add(graph.NodeID(u), ActionID(a), t); err != nil {
			return nil, fmt.Errorf("actionlog: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("actionlog: empty input")
	}
	return b.Build(), nil
}
