package actionlog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"credist/internal/graph"
)

// Write serializes the log as plain text:
//
//	<numUsers>
//	<user> <action> <time>
//	...
//
// in (action, time) order, the format cmd/datagen emits.
func Write(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n", l.NumUsers()); err != nil {
		return err
	}
	for _, t := range l.Tuples() {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", t.User, t.Action, t.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTuples serializes a tuple batch in the format Write uses — a
// user-count line followed by "user action time" lines in the order given.
// It is how cmd/datagen emits a held-out action tail for streaming-ingest
// demos; ParseTuples and Log.AppendFromReader read it back.
func WriteTuples(w io.Writer, numUsers int, tuples []Tuple) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n", numUsers); err != nil {
		return err
	}
	for _, t := range tuples {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", t.User, t.Action, t.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseTuples reads a tuple stream in the text format of Read: an optional
// leading user-count line, then one "user action time" tuple per line, in
// file order (no sorting or dedup — Log.Append validates). It returns the
// tuples and the user-count header, or 0 when the header is absent. Blank
// lines and '#' comments are ignored.
func ParseTuples(r io.Reader) ([]Tuple, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var tuples []Tuple
	minUsers := 0
	sawHeader, sawTuple := false, false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 1 {
			if sawHeader || sawTuple {
				return nil, 0, fmt.Errorf("actionlog: line %d: unexpected user-count line %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil || n < 0 {
				return nil, 0, fmt.Errorf("actionlog: line %d: bad user count %q", lineNo, line)
			}
			minUsers = n
			sawHeader = true
			continue
		}
		if len(fields) != 3 {
			return nil, 0, fmt.Errorf("actionlog: line %d: expected 'user action time', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("actionlog: line %d: bad user: %w", lineNo, err)
		}
		a, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("actionlog: line %d: bad action: %w", lineNo, err)
		}
		t, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, 0, fmt.Errorf("actionlog: line %d: bad time: %w", lineNo, err)
		}
		tuples = append(tuples, Tuple{User: graph.NodeID(u), Action: ActionID(a), Time: t})
		sawTuple = true
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return tuples, minUsers, nil
}

// Read parses the format written by Write. Blank lines and '#' comments
// are ignored.
func Read(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if b == nil {
			n, err := strconv.Atoi(line)
			if err != nil {
				return nil, fmt.Errorf("actionlog: line %d: expected user count: %w", lineNo, err)
			}
			b = NewBuilder(n)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("actionlog: line %d: expected 'user action time', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("actionlog: line %d: bad user: %w", lineNo, err)
		}
		a, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("actionlog: line %d: bad action: %w", lineNo, err)
		}
		t, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("actionlog: line %d: bad time: %w", lineNo, err)
		}
		if err := b.Add(graph.NodeID(u), ActionID(a), t); err != nil {
			return nil, fmt.Errorf("actionlog: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("actionlog: empty input")
	}
	return b.Build(), nil
}
