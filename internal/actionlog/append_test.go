package actionlog

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// appendBase builds a two-action log over four users for the append tests.
func appendBase(t *testing.T) *Log {
	t.Helper()
	b := NewBuilder(4)
	for _, tp := range []Tuple{
		{User: 0, Action: 0, Time: 1}, {User: 1, Action: 0, Time: 2},
		{User: 2, Action: 1, Time: 1}, {User: 3, Action: 1, Time: 3},
	} {
		if err := b.Add(tp.User, tp.Action, tp.Time); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return b.Build()
}

func TestAppendExtendsLog(t *testing.T) {
	l := appendBase(t)
	nl, err := l.Append([]Tuple{
		{User: 1, Action: 2, Time: 5}, {User: 3, Action: 2, Time: 7},
		{User: 0, Action: 3, Time: 2},
	})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if nl.NumActions() != 4 || nl.NumTuples() != 7 {
		t.Fatalf("got %d actions %d tuples, want 4/7", nl.NumActions(), nl.NumTuples())
	}
	if got := nl.ActionCount(1); got != 2 {
		t.Errorf("A_1 = %d, want 2", got)
	}
	if at, ok := nl.PerformedAt(3, 2); !ok || at != 7 {
		t.Errorf("PerformedAt(3,2) = %g,%v, want 7,true", at, ok)
	}
	// The receiver is untouched.
	if l.NumActions() != 2 || l.NumTuples() != 4 || l.ActionCount(1) != 1 {
		t.Fatalf("receiver mutated: %d actions %d tuples A_1=%d", l.NumActions(), l.NumTuples(), l.ActionCount(1))
	}
}

// TestAppendRejectsOutOfOrder pins the validation contract: batches must
// arrive in the canonical (action, time, user) scan order targeting only
// new actions, with finite times and no duplicate (user, action) pairs.
func TestAppendRejectsOutOfOrder(t *testing.T) {
	l := appendBase(t)
	cases := []struct {
		name    string
		batch   []Tuple
		wantSub string
	}{
		{"existing action", []Tuple{{User: 0, Action: 1, Time: 9}}, "existing action"},
		{"action order", []Tuple{{User: 0, Action: 2, Time: 1}, {User: 0, Action: 3, Time: 1}, {User: 1, Action: 2, Time: 1}}, "out of order"},
		{"time order", []Tuple{{User: 0, Action: 2, Time: 5}, {User: 1, Action: 2, Time: 4}}, "out of order"},
		{"user order on tie", []Tuple{{User: 1, Action: 2, Time: 5}, {User: 0, Action: 2, Time: 5}}, "timestamp tie"},
		{"duplicate user", []Tuple{{User: 1, Action: 2, Time: 5}, {User: 1, Action: 2, Time: 6}}, "appears twice"},
		{"nan time", []Tuple{{User: 0, Action: 2, Time: math.NaN()}}, "non-finite"},
		{"inf time", []Tuple{{User: 0, Action: 2, Time: math.Inf(1)}}, "non-finite"},
		{"negative user", []Tuple{{User: -1, Action: 2, Time: 1}}, "negative user"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := l.Append(tc.batch); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Append = %v, want error containing %q", err, tc.wantSub)
			}
		})
	}
}

// TestAppendRegistersUnseenUsers: users beyond the current universe grow
// it, both implicitly (max appended id) and via an explicit header floor.
func TestAppendRegistersUnseenUsers(t *testing.T) {
	l := appendBase(t)
	nl, err := l.Append([]Tuple{{User: 9, Action: 2, Time: 1}})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if nl.NumUsers() != 10 {
		t.Fatalf("NumUsers = %d, want 10", nl.NumUsers())
	}
	if got := nl.ActionCount(9); got != 1 {
		t.Errorf("A_9 = %d, want 1", got)
	}
	if got := nl.ActionCount(5); got != 0 {
		t.Errorf("A_5 = %d, want 0", got)
	}
	if l.NumUsers() != 4 {
		t.Fatalf("receiver universe grew: %d", l.NumUsers())
	}

	// An explicit header floor grows the universe past every appended id.
	nl2, n, err := l.AppendFromReader(strings.NewReader("20\n2 2 4.5\n"))
	if err != nil || n != 1 {
		t.Fatalf("AppendFromReader = %d, %v", n, err)
	}
	if nl2.NumUsers() != 20 {
		t.Fatalf("NumUsers = %d, want 20", nl2.NumUsers())
	}
	// A header lower than the current universe never shrinks it.
	nl3, _, err := l.AppendFromReader(strings.NewReader("2\n1 2 4.5\n"))
	if err != nil {
		t.Fatalf("AppendFromReader: %v", err)
	}
	if nl3.NumUsers() != 4 {
		t.Fatalf("NumUsers = %d, want 4", nl3.NumUsers())
	}
}

// TestAppendSaveLoadByteStable: a log extended by Append serializes to the
// exact bytes of a log built from scratch over the combined tuples, and
// the Write -> Read -> Write round trip is a fixed point.
func TestAppendSaveLoadByteStable(t *testing.T) {
	l := appendBase(t)
	batch := []Tuple{
		{User: 2, Action: 2, Time: 5e-3},
		{User: 1, Action: 2, Time: 0.1234567890123},
		{User: 0, Action: 3, Time: 1e9},
	}
	nl, err := l.Append(batch)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}

	combined := NewBuilder(4)
	for _, tp := range append(append([]Tuple(nil), l.Tuples()...), batch...) {
		if err := combined.Add(tp.User, tp.Action, tp.Time); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}

	var fromAppend, fromScratch bytes.Buffer
	if err := Write(&fromAppend, nl); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := Write(&fromScratch, combined.Build()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !bytes.Equal(fromAppend.Bytes(), fromScratch.Bytes()) {
		t.Fatalf("appended log serializes differently:\n%q\nvs\n%q", fromAppend.String(), fromScratch.String())
	}

	reread, err := Read(bytes.NewReader(fromAppend.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	var again bytes.Buffer
	if err := Write(&again, reread); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !bytes.Equal(fromAppend.Bytes(), again.Bytes()) {
		t.Fatalf("round trip not byte-stable:\n%q\nvs\n%q", fromAppend.String(), again.String())
	}
}

// TestAppendTupleStreamRoundTrip: WriteTuples -> ParseTuples -> Append
// equals appending the in-memory batch directly.
func TestAppendTupleStreamRoundTrip(t *testing.T) {
	l := appendBase(t)
	batch := []Tuple{
		{User: 1, Action: 2, Time: 5}, {User: 3, Action: 2, Time: 7.25},
	}
	var buf bytes.Buffer
	if err := WriteTuples(&buf, l.NumUsers(), batch); err != nil {
		t.Fatalf("WriteTuples: %v", err)
	}
	fromStream, n, err := l.AppendFromReader(&buf)
	if err != nil || n != len(batch) {
		t.Fatalf("AppendFromReader = %d, %v", n, err)
	}
	direct, err := l.Append(batch)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	var a, b bytes.Buffer
	if err := Write(&a, fromStream); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := Write(&b, direct); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("stream and direct append diverge:\n%q\nvs\n%q", a.String(), b.String())
	}
}

// TestAppendRejectsGaps: action ids must continue the log contiguously —
// a skipped (or wildly large) id would silently size every per-action
// structure downstream, so it is an error, not an empty action.
func TestAppendRejectsGaps(t *testing.T) {
	l := appendBase(t)
	if _, err := l.Append([]Tuple{{User: 0, Action: 4, Time: 1}}); err == nil || !strings.Contains(err.Error(), "start at action 2") {
		t.Fatalf("leading gap accepted: %v", err)
	}
	if _, err := l.Append([]Tuple{
		{User: 0, Action: 2, Time: 1}, {User: 0, Action: 4, Time: 1},
	}); err == nil || !strings.Contains(err.Error(), "skips action ids") {
		t.Fatalf("interior gap accepted: %v", err)
	}
	// The guard that matters operationally: one absurd action id must not
	// provoke a proportional allocation.
	if _, err := l.Append([]Tuple{{User: 0, Action: 1 << 30, Time: 1}}); err == nil {
		t.Fatal("huge action id accepted")
	}
}
