package actionlog

import (
	"sort"

	"credist/internal/graph"
)

// Propagation is the propagation graph G(a) of one action: the DAG over
// the users who performed a, with an edge v->u whenever (v,u) is a social
// tie and v performed a strictly before u.
type Propagation struct {
	Action ActionID
	// Users lists participants in chronological order (ties broken by id,
	// matching the log's scan order).
	Users []graph.NodeID
	// Times[i] is when Users[i] performed the action.
	Times []Timestamp
	// Parents[i] lists the indices (into Users) of the potential
	// influencers N_in(Users[i], a).
	Parents [][]int32
	// pos maps a user id to its index in Users.
	pos map[graph.NodeID]int32
}

// Size returns the number of participants, the paper's "propagation size".
func (p *Propagation) Size() int { return len(p.Users) }

// Index returns the chronological index of user u, or -1 if u did not
// participate.
func (p *Propagation) Index(u graph.NodeID) int32 {
	if i, ok := p.pos[u]; ok {
		return i
	}
	return -1
}

// InDegree returns d_in(u, a) for the i-th participant.
func (p *Propagation) InDegree(i int32) int { return len(p.Parents[i]) }

// Initiators returns the participants with no potential influencers —
// the users the paper treats as the "seed set" of a test propagation.
func (p *Propagation) Initiators() []graph.NodeID {
	var out []graph.NodeID
	for i, parents := range p.Parents {
		if len(parents) == 0 {
			out = append(out, p.Users[i])
		}
	}
	return out
}

// BuildPropagation constructs G(a) for action a over social graph g.
// Parents are predecessors in g (edge v->u means v can influence u) that
// acted strictly earlier; simultaneous actions never influence each other,
// which keeps the graph acyclic even with tied timestamps.
func BuildPropagation(l *Log, g *graph.Graph, a ActionID) *Propagation {
	tuples := l.Action(a)
	p := &Propagation{
		Action:  a,
		Users:   make([]graph.NodeID, len(tuples)),
		Times:   make([]Timestamp, len(tuples)),
		Parents: make([][]int32, len(tuples)),
		pos:     make(map[graph.NodeID]int32, len(tuples)),
	}
	for i, t := range tuples {
		p.Users[i] = t.User
		p.Times[i] = t.Time
		p.pos[t.User] = int32(i)
	}
	for i, t := range tuples {
		var parents []int32
		for _, v := range g.In(t.User) {
			j, ok := p.pos[v]
			if ok && p.Times[j] < t.Time {
				parents = append(parents, j)
			}
		}
		sort.Slice(parents, func(x, y int) bool { return parents[x] < parents[y] })
		p.Parents[i] = parents
	}
	return p
}

// Propagations builds the propagation DAG of every action in the log.
func Propagations(l *Log, g *graph.Graph) []*Propagation {
	out := make([]*Propagation, l.NumActions())
	for a := 0; a < l.NumActions(); a++ {
		out[a] = BuildPropagation(l, g, ActionID(a))
	}
	return out
}

// Split divides the log's actions into training and test sets following
// the paper's protocol: actions are ranked by propagation size and every
// fifth action in that ranking goes to the test set, so both sets keep
// similar size distributions at an 80/20 ratio. The returned logs have
// densely renumbered actions; the third and fourth results map new action
// ids back to original ids.
func Split(l *Log) (train, test *Log, trainOrig, testOrig []ActionID) {
	type sized struct {
		a    ActionID
		size int
	}
	ranked := make([]sized, l.NumActions())
	for a := 0; a < l.NumActions(); a++ {
		ranked[a] = sized{ActionID(a), l.Size(ActionID(a))}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].size != ranked[j].size {
			return ranked[i].size > ranked[j].size
		}
		return ranked[i].a < ranked[j].a
	})
	for i, r := range ranked {
		if (i+1)%5 == 0 {
			testOrig = append(testOrig, r.a)
		} else {
			trainOrig = append(trainOrig, r.a)
		}
	}
	return l.Restrict(trainOrig), l.Restrict(testOrig), trainOrig, testOrig
}

// Stats summarizes a log for Table 1-style reporting.
type Stats struct {
	NumUsers      int
	NumActions    int
	NumTuples     int
	MaxSize       int
	MeanSize      float64
	ActiveUsers   int // users with at least one tuple
	MeanPerUser   float64
	MedianPerUser int
}

// Summarize computes log statistics.
func Summarize(l *Log) Stats {
	s := Stats{NumUsers: l.NumUsers(), NumActions: l.NumActions(), NumTuples: l.NumTuples()}
	for a := 0; a < l.NumActions(); a++ {
		size := l.Size(ActionID(a))
		if size > s.MaxSize {
			s.MaxSize = size
		}
	}
	if s.NumActions > 0 {
		s.MeanSize = float64(s.NumTuples) / float64(s.NumActions)
	}
	var counts []int
	for u := 0; u < l.NumUsers(); u++ {
		if c := l.ActionCount(graph.NodeID(u)); c > 0 {
			s.ActiveUsers++
			counts = append(counts, c)
		}
	}
	if s.ActiveUsers > 0 {
		s.MeanPerUser = float64(s.NumTuples) / float64(s.ActiveUsers)
		sort.Ints(counts)
		s.MedianPerUser = counts[len(counts)/2]
	}
	return s
}
