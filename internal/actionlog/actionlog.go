// Package actionlog implements the paper's data model: an action log
// L(User, Action, Time) holding one tuple per (user, action), the
// propagation DAGs induced by the log over a social graph, and the
// train/test splitting protocol used throughout the evaluation.
package actionlog

import (
	"fmt"
	"io"
	"math"
	"sort"

	"credist/internal/graph"
)

// ActionID is a dense action index in [0, NumActions).
type ActionID = int32

// Timestamp is the time a user performed an action, in arbitrary units.
// Only the ordering and differences of timestamps matter.
type Timestamp = float64

// Tuple records that User performed Action at Time.
type Tuple struct {
	User   graph.NodeID
	Action ActionID
	Time   Timestamp
}

// Log is an immutable action log: tuples sorted first by action, then by
// time (the scan order required by Algorithm 2), with per-action offsets.
// A user appears at most once per action.
type Log struct {
	tuples     []Tuple
	actionIdx  []int32 // len numActions+1, offsets into tuples
	numUsers   int
	userCounts []int32 // Au: number of actions performed by each user
}

// NumActions returns the number of distinct actions (propagations).
func (l *Log) NumActions() int { return len(l.actionIdx) - 1 }

// NumTuples returns the total number of (user, action, time) tuples.
func (l *Log) NumTuples() int { return len(l.tuples) }

// NumUsers returns the node-universe size the log was built against.
func (l *Log) NumUsers() int { return l.numUsers }

// ActionCount returns Au, the number of actions user u performed.
func (l *Log) ActionCount(u graph.NodeID) int { return int(l.userCounts[u]) }

// Action returns the tuples of action a in chronological order. The slice
// aliases internal storage and must not be modified.
func (l *Log) Action(a ActionID) []Tuple {
	return l.tuples[l.actionIdx[a]:l.actionIdx[a+1]]
}

// Size returns the propagation size of action a: the number of users who
// performed it.
func (l *Log) Size(a ActionID) int {
	return int(l.actionIdx[a+1] - l.actionIdx[a])
}

// Tuples returns all tuples in (action, time) order. The slice aliases
// internal storage and must not be modified.
func (l *Log) Tuples() []Tuple { return l.tuples }

// PerformedAt returns the time u performed a and whether it did at all
// (the paper's partial function t(u, a)).
func (l *Log) PerformedAt(u graph.NodeID, a ActionID) (Timestamp, bool) {
	tuples := l.Action(a)
	for _, t := range tuples {
		if t.User == u {
			return t.Time, true
		}
	}
	return 0, false
}

// Builder accumulates tuples and produces a Log. If the same (user,
// action) pair is added more than once, the earliest time wins, enforcing
// the paper's "a user performs an action at most once" assumption.
type Builder struct {
	numUsers int
	tuples   map[tupleKey]Timestamp
}

type tupleKey struct {
	user   graph.NodeID
	action ActionID
}

// NewBuilder returns a Builder for a log over numUsers users.
func NewBuilder(numUsers int) *Builder {
	return &Builder{numUsers: numUsers, tuples: make(map[tupleKey]Timestamp)}
}

// Add records that user u performed action a at time t.
func (b *Builder) Add(u graph.NodeID, a ActionID, t Timestamp) error {
	if u < 0 || int(u) >= b.numUsers {
		return fmt.Errorf("actionlog: user %d out of range [0,%d)", u, b.numUsers)
	}
	if a < 0 {
		return fmt.Errorf("actionlog: negative action id %d", a)
	}
	key := tupleKey{u, a}
	if prev, ok := b.tuples[key]; !ok || t < prev {
		b.tuples[key] = t
	}
	return nil
}

// Build produces the immutable Log. Action ids are kept as given; actions
// with no tuples in [0, maxAction] simply have empty ranges.
func (b *Builder) Build() *Log {
	tuples := make([]Tuple, 0, len(b.tuples))
	maxAction := ActionID(-1)
	for k, t := range b.tuples {
		tuples = append(tuples, Tuple{User: k.user, Action: k.action, Time: t})
		if k.action > maxAction {
			maxAction = k.action
		}
	}
	sort.Slice(tuples, func(i, j int) bool {
		if tuples[i].Action != tuples[j].Action {
			return tuples[i].Action < tuples[j].Action
		}
		if tuples[i].Time != tuples[j].Time {
			return tuples[i].Time < tuples[j].Time
		}
		return tuples[i].User < tuples[j].User
	})
	l := &Log{
		tuples:     tuples,
		numUsers:   b.numUsers,
		userCounts: make([]int32, b.numUsers),
	}
	l.actionIdx = make([]int32, maxAction+2)
	for _, t := range tuples {
		l.actionIdx[t.Action+1]++
		l.userCounts[t.User]++
	}
	for i := 1; i < len(l.actionIdx); i++ {
		l.actionIdx[i] += l.actionIdx[i-1]
	}
	return l
}

// FromTuples builds a Log directly from a tuple slice.
func FromTuples(numUsers int, tuples []Tuple) (*Log, error) {
	b := NewBuilder(numUsers)
	for _, t := range tuples {
		if err := b.Add(t.User, t.Action, t.Time); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Append returns a new Log extended with a batch of complete new
// propagations; the receiver is never modified, so readers of the old log
// (and engines scanned from it) keep working while the successor is built.
// The batch must be in the log's canonical scan order — sorted by action,
// then time, then user — and its action ids must continue the log
// contiguously from NumActions(): appending to an already-scanned action
// would retroactively rewrite its propagation DAG, and skipped ids would
// let one bad tuple size every per-action structure downstream.
// Out-of-order timestamps, non-finite times, negative users, and
// duplicate (user, action) pairs are rejected. Users with ids beyond the
// current universe are registered: NumUsers grows to cover them.
func (l *Log) Append(batch []Tuple) (*Log, error) {
	return l.appendTuples(batch, l.numUsers)
}

// AppendFromReader parses a tuple stream in the text format of Read — an
// optional leading user-count line (which may grow the universe) followed
// by "user action time" lines — and appends it. It returns the extended
// log and the number of tuples appended.
func (l *Log) AppendFromReader(r io.Reader) (*Log, int, error) {
	batch, minUsers, err := ParseTuples(r)
	if err != nil {
		return nil, 0, err
	}
	nl, err := l.appendTuples(batch, minUsers)
	if err != nil {
		return nil, 0, err
	}
	return nl, len(batch), nil
}

// appendTuples validates the batch and builds the successor log. minUsers
// is a floor for the new universe size (from an explicit header); the
// largest appended user id can raise it further.
func (l *Log) appendTuples(batch []Tuple, minUsers int) (*Log, error) {
	nUsers := l.numUsers
	if minUsers > nUsers {
		nUsers = minUsers
	}
	first := ActionID(l.NumActions())
	inAction := make(map[graph.NodeID]struct{})
	for i, t := range batch {
		switch {
		case t.Action < first:
			return nil, fmt.Errorf("actionlog: append tuple %d targets existing action %d (new actions start at %d)", i, t.Action, first)
		case t.User < 0:
			return nil, fmt.Errorf("actionlog: append tuple %d has negative user %d", i, t.User)
		case math.IsNaN(t.Time) || math.IsInf(t.Time, 0):
			return nil, fmt.Errorf("actionlog: append tuple %d has non-finite time %v", i, t.Time)
		}
		if i == 0 && t.Action != first {
			return nil, fmt.Errorf("actionlog: append must start at action %d, got %d", first, t.Action)
		}
		if i > 0 {
			prev := batch[i-1]
			switch {
			case t.Action < prev.Action:
				return nil, fmt.Errorf("actionlog: append tuple %d out of order: action %d after %d", i, t.Action, prev.Action)
			case t.Action > prev.Action+1:
				return nil, fmt.Errorf("actionlog: append tuple %d skips action ids: %d after %d", i, t.Action, prev.Action)
			case t.Action == prev.Action && t.Time < prev.Time:
				return nil, fmt.Errorf("actionlog: append tuple %d out of order: time %g after %g within action %d", i, t.Time, prev.Time, t.Action)
			case t.Action == prev.Action && t.Time == prev.Time && t.User < prev.User:
				return nil, fmt.Errorf("actionlog: append tuple %d out of order: user %d after %d on a timestamp tie", i, t.User, prev.User)
			}
			if t.Action != prev.Action {
				clear(inAction)
			}
		}
		if _, dup := inAction[t.User]; dup {
			return nil, fmt.Errorf("actionlog: user %d appears twice in appended action %d", t.User, t.Action)
		}
		inAction[t.User] = struct{}{}
		if int(t.User) >= nUsers {
			nUsers = int(t.User) + 1
		}
	}

	maxAction := first - 1
	if len(batch) > 0 {
		maxAction = batch[len(batch)-1].Action
	}
	nl := &Log{
		tuples:     make([]Tuple, 0, len(l.tuples)+len(batch)),
		actionIdx:  make([]int32, maxAction+2),
		numUsers:   nUsers,
		userCounts: make([]int32, nUsers),
	}
	nl.tuples = append(append(nl.tuples, l.tuples...), batch...)
	// Offsets [0, first] carry over; the appended range starts as raw
	// per-action counts and a prefix sum seeded by actionIdx[first] (the
	// old tuple count) turns them into offsets.
	copy(nl.actionIdx, l.actionIdx)
	copy(nl.userCounts, l.userCounts)
	for _, t := range batch {
		nl.actionIdx[t.Action+1]++
		nl.userCounts[t.User]++
	}
	for a := int(first); a <= int(maxAction); a++ {
		nl.actionIdx[a+1] += nl.actionIdx[a]
	}
	return nl, nil
}

// Prefix returns the log restricted to its first n actions — the head
// side of a streaming hold-out split. Action and user ids are unchanged;
// tuple storage is shared with the receiver (both logs are immutable).
func (l *Log) Prefix(n int) *Log {
	if n < 0 || n > l.NumActions() {
		panic(fmt.Sprintf("actionlog: prefix of %d actions from a log of %d", n, l.NumActions()))
	}
	nl := &Log{
		tuples:     l.tuples[:l.actionIdx[n]:l.actionIdx[n]],
		actionIdx:  l.actionIdx[: n+1 : n+1],
		numUsers:   l.numUsers,
		userCounts: make([]int32, l.numUsers),
	}
	for _, t := range nl.tuples {
		nl.userCounts[t.User]++
	}
	return nl
}

// Restrict returns a new Log containing only the given actions, renumbered
// densely 0..len(actions)-1 in the order given. User ids are unchanged.
func (l *Log) Restrict(actions []ActionID) *Log {
	b := NewBuilder(l.numUsers)
	for newID, a := range actions {
		for _, t := range l.Action(a) {
			// Errors impossible: tuples come from a valid log.
			_ = b.Add(t.User, ActionID(newID), t.Time)
		}
	}
	return b.Build()
}

// RestrictUsers returns a new Log keeping only tuples whose user is in the
// remap (old id -> new id), with users renumbered and actions renumbered
// densely over the surviving non-empty actions. It is used when carving a
// community sub-dataset.
func (l *Log) RestrictUsers(remap map[graph.NodeID]graph.NodeID, newNumUsers int) *Log {
	b := NewBuilder(newNumUsers)
	nextAction := ActionID(0)
	actionRemap := make(map[ActionID]ActionID)
	for a := ActionID(0); int(a) < l.NumActions(); a++ {
		any := false
		for _, t := range l.Action(a) {
			nu, ok := remap[t.User]
			if !ok {
				continue
			}
			na, seen := actionRemap[a]
			if !seen {
				na = nextAction
				actionRemap[a] = na
				nextAction++
			}
			_ = b.Add(nu, na, t.Time)
			any = true
		}
		_ = any
	}
	return b.Build()
}
