// Influence provenance: why-provenance over UC credits.
//
// Every number the model reports — a marginal gain, a spread, a seed
// choice — is a sum of per-action credit cells UC[v][u][a] produced by
// the Algorithm 2 scan, so every answer has a traceable origin. This
// file exposes it two ways:
//
//   - ExplainSeed(x, top) decomposes Gain(x) into (influencer →
//     influenced, action) credit paths by replaying the Gain fold
//     itself: the same terms, in the same association order, so the
//     per-action contributions sum bit-exactly to the reported gain at
//     any worker or partition count.
//   - ExplainReach(S, v) decomposes the credit reaching target v by
//     seed and action: per seed s (in input order), the shares
//     UC[s][v][a]/A_v folded in ascending action order. Credits are
//     additive across seeds and partitions, so per-seed subtotals sum
//     bit-exactly to the total and per-partition answers merge
//     deterministically.
//
// ProvIndex is the inverted credit→actions index behind the reach side:
// per (influencer v, influenced u) pair, the contributing action ids and
// per-action credit shares, sorted by (v, u) with ascending actions per
// pair. It is derivable from the scanned shards (BuildProvIndex walks
// exactly the cells Gain reads, so index answers and shard walks agree
// bit for bit), optional, and persistable as a version-6 snapshot
// section so a restarted process explains with zero index builds.
package core

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

// ProvPath is one explained credit path: the credit influencer earned
// for influenced's participation in one action, normalized the way the
// explained answer counts it.
type ProvPath struct {
	Influencer graph.NodeID
	Influenced graph.NodeID
	Action     actionlog.ActionID
	Credit     float64
}

// SeedExplanation decomposes one candidate's marginal gain. Gain is
// bit-identical to Engine.Gain(Node) on the same state; Paths holds the
// top paths by credit (self-activation paths appear as Influencer ==
// Influenced) out of TotalPaths.
type SeedExplanation struct {
	Node       graph.NodeID
	Gain       float64
	Paths      []ProvPath
	TotalPaths int
}

// ReachShare is one seed's slice of an explained reach total.
type ReachShare struct {
	Seed  graph.NodeID
	Share float64
}

// ReachExplanation decomposes the credit reaching one target by seed and
// action. PerSeed is parallel to the query's seed order, and Total is
// the fixed-order fold of the PerSeed shares — so the decomposition sums
// bit-exactly to the total at any worker or partition count.
type ReachExplanation struct {
	Target     graph.NodeID
	Total      float64
	PerSeed    []ReachShare
	Paths      []ProvPath
	TotalPaths int
}

// ExplainSeed decomposes Gain(x) into credit paths. It replays the Gain
// walk term by term — the 1/A_x self-activation credit plus every UC
// row entry, each discounted by the committed-seed factor (1 - SC) — in
// the identical association order, so the returned Gain is bit-for-bit
// Engine.Gain(x). Read-only, like Gain; a partition answers only for
// candidates whose row it owns.
func (e *Engine) ExplainSeed(x graph.NodeID, top int) SeedExplanation {
	if !e.ownsRow(x) {
		panic(fmt.Sprintf("core: ExplainSeed(%d) outside partition rows [%d,%d)", x, e.partLo, e.partHi))
	}
	ex := SeedExplanation{Node: x}
	ax := float64(e.au[x])
	if ax == 0 {
		return ex
	}
	if slices.Contains(e.seeds, x) {
		return ex
	}
	mg := 0.0
	var paths []ProvPath
	for _, a := range e.actionsOf[x] {
		mga := 1.0 / ax
		row := e.uc[a].row(x)
		scx := 0.0
		if e.sc[a] != nil {
			scx = e.sc[a][x]
		}
		paths = append(paths, ProvPath{Influencer: x, Influenced: x, Action: a, Credit: (1.0 / ax) * (1 - scx)})
		for _, en := range row {
			mga += en.c / float64(e.au[en.u])
			paths = append(paths, ProvPath{
				Influencer: x, Influenced: en.u, Action: a,
				Credit: (en.c / float64(e.au[en.u])) * (1 - scx),
			})
		}
		mg += mga * (1 - scx)
	}
	ex.Gain = mg
	ex.TotalPaths = len(paths)
	ex.Paths = TopProvPaths(paths, top)
	return ex
}

// ReachPaths returns seed s's slice of the credit reaching target v: the
// shares UC[s][v][a]/A_v folded in ascending action order, one path per
// contributing action. The seed's own activation (the 1/A_v self term of
// its gain) is not a credit path and does not appear. A partition
// answers only for seeds whose row it owns.
func (e *Engine) ReachPaths(s, v graph.NodeID) (float64, []ProvPath) {
	if !e.ownsRow(s) {
		panic(fmt.Sprintf("core: ReachPaths(%d) outside partition rows [%d,%d)", s, e.partLo, e.partHi))
	}
	av := float64(e.au[v])
	if av == 0 {
		return 0, nil
	}
	share := 0.0
	var paths []ProvPath
	for _, a := range e.actionsOf[s] {
		c, ok := e.uc[a].get(s, v)
		if !ok {
			continue
		}
		share += c / av
		paths = append(paths, ProvPath{Influencer: s, Influenced: v, Action: a, Credit: c / av})
	}
	return share, paths
}

// ExplainReach decomposes the credit reaching target v from the given
// seeds: per-seed shares in input order (duplicate seeds each count, so
// callers wanting set semantics deduplicate first), their fixed-order
// fold as the total, and the top paths by credit. Every row read belongs
// to a seed's owner, so a partitioned deployment computes each seed's
// share wholly in one partition and merges bit-identically.
func (e *Engine) ExplainReach(seeds []graph.NodeID, v graph.NodeID, top int) ReachExplanation {
	ex := ReachExplanation{Target: v, PerSeed: make([]ReachShare, 0, len(seeds))}
	var paths []ProvPath
	for _, s := range seeds {
		share, ps := e.ReachPaths(s, v)
		ex.PerSeed = append(ex.PerSeed, ReachShare{Seed: s, Share: share})
		ex.Total += share
		paths = append(paths, ps...)
	}
	ex.TotalPaths = len(paths)
	ex.Paths = TopProvPaths(paths, top)
	return ex
}

// ExplainReachIndexed is ExplainReach answered from an inverted index
// instead of the UC shards. The index stores exactly the cells the shard
// walk reads, in the same ascending-action order per pair, so the result
// is bit-identical to ExplainReach on the engine the index was built
// from — which is what lets a snapshot-restored index serve explanations
// with zero rebuild work.
func (e *Engine) ExplainReachIndexed(p *ProvIndex, seeds []graph.NodeID, v graph.NodeID, top int) ReachExplanation {
	ex := ReachExplanation{Target: v, PerSeed: make([]ReachShare, 0, len(seeds))}
	av := float64(e.au[v])
	var paths []ProvPath
	for _, s := range seeds {
		share := 0.0
		if av != 0 {
			acts, creds := p.Lookup(s, v)
			for i, a := range acts {
				share += creds[i] / av
				paths = append(paths, ProvPath{Influencer: s, Influenced: v, Action: a, Credit: creds[i] / av})
			}
		}
		ex.PerSeed = append(ex.PerSeed, ReachShare{Seed: s, Share: share})
		ex.Total += share
	}
	ex.TotalPaths = len(paths)
	ex.Paths = TopProvPaths(paths, top)
	return ex
}

// TopProvPaths sorts paths by descending credit — ties broken by
// (influencer, influenced, action) ascending, so the order is a
// deterministic total order — and truncates to the top n (n <= 0 keeps
// none). It sorts in place and returns a clipped view of its argument.
func TopProvPaths(paths []ProvPath, n int) []ProvPath {
	slices.SortFunc(paths, func(a, b ProvPath) int {
		switch {
		case a.Credit > b.Credit:
			return -1
		case a.Credit < b.Credit:
			return 1
		case a.Influencer != b.Influencer:
			return int(a.Influencer) - int(b.Influencer)
		case a.Influenced != b.Influenced:
			return int(a.Influenced) - int(b.Influenced)
		default:
			return int(a.Action) - int(b.Action)
		}
	})
	if n < 0 {
		n = 0
	}
	if n > len(paths) {
		n = len(paths)
	}
	return paths[:n]
}

// ProvIndex is the inverted credit→actions index: per (influencer v,
// influenced u) pair, the contributing action ids and per-action raw
// credit shares UC[v][u][a], stored pair-major — pairs sorted by (v, u),
// entries per pair in ascending action order. Immutable once built.
type ProvIndex struct {
	pairV, pairU []int32   // parallel, sorted by (v, u)
	off          []int64   // len(pairs)+1; pair i's entries are [off[i], off[i+1])
	acts         []int32   // entry action ids, ascending per pair
	creds        []float64 // entry credit shares, parallel to acts
}

// BuildProvIndex builds the inverted index over the engine's current
// credit state by walking exactly the cells Gain reads — per owned row v,
// the UC rows of the actions v performed — so shard walks and index
// lookups agree bit for bit. A partition indexes only its owned rows.
// Deterministic: the same engine state yields the same index.
func (e *Engine) BuildProvIndex() *ProvIndex {
	type cell struct {
		u, a int32
		c    float64
	}
	p := &ProvIndex{off: []int64{0}}
	lo, hi := e.PartitionRange()
	var cells []cell
	for v := lo; v < hi; v++ {
		cells = cells[:0]
		for _, a := range e.actionsOf[v] {
			for _, en := range e.uc[a].row(int32(v)) {
				cells = append(cells, cell{u: en.u, a: a, c: en.c})
			}
		}
		// Generated (action, influenced)-major; the index wants
		// (influenced, action)-major. Keys are unique, so a plain sort is
		// deterministic.
		sort.Slice(cells, func(i, j int) bool {
			if cells[i].u != cells[j].u {
				return cells[i].u < cells[j].u
			}
			return cells[i].a < cells[j].a
		})
		for i, c := range cells {
			if i == 0 || c.u != cells[i-1].u {
				p.pairV = append(p.pairV, int32(v))
				p.pairU = append(p.pairU, c.u)
				p.off = append(p.off, p.off[len(p.off)-1])
			}
			p.off[len(p.off)-1]++
			p.acts = append(p.acts, c.a)
			p.creds = append(p.creds, c.c)
		}
	}
	return p
}

// Pairs returns the number of (influencer, influenced) pairs indexed.
func (p *ProvIndex) Pairs() int {
	if p == nil {
		return 0
	}
	return len(p.pairV)
}

// Entries returns the total number of indexed (pair, action) cells.
func (p *ProvIndex) Entries() int64 {
	if p == nil {
		return 0
	}
	return int64(len(p.acts))
}

// Bytes approximates the index's heap footprint for stats.
func (p *ProvIndex) Bytes() int64 {
	if p == nil {
		return 0
	}
	return int64(len(p.pairV)+len(p.pairU)+len(p.acts))*4 +
		int64(len(p.off)+len(p.creds))*8
}

// Lookup returns the contributing action ids (ascending) and raw credit
// shares for the (influencer v, influenced u) pair, or nil slices when
// the pair carries no credit. The returned slices alias the index; do
// not mutate them.
func (p *ProvIndex) Lookup(v, u graph.NodeID) ([]int32, []float64) {
	i := sort.Search(len(p.pairV), func(i int) bool {
		return p.pairV[i] > v || (p.pairV[i] == v && p.pairU[i] >= u)
	})
	if i == len(p.pairV) || p.pairV[i] != v || p.pairU[i] != u {
		return nil, nil
	}
	return p.acts[p.off[i]:p.off[i+1]], p.creds[p.off[i]:p.off[i+1]]
}

// Validate checks the index's structural invariants against a universe —
// the same rules parseProvSection enforces, so any index that validates
// here round-trips through a version-6 snapshot section.
func (p *ProvIndex) Validate(numUsers, numActions int) error {
	if p.Pairs() == 0 {
		return fmt.Errorf("core: provenance index is empty")
	}
	if len(p.pairU) != len(p.pairV) || len(p.off) != len(p.pairV)+1 || len(p.creds) != len(p.acts) {
		return fmt.Errorf("core: provenance index arrays disagree on length")
	}
	if p.off[0] != 0 || p.off[len(p.off)-1] != int64(len(p.acts)) {
		return fmt.Errorf("core: provenance index offsets do not cover its entries")
	}
	for i := range p.pairV {
		v, u := p.pairV[i], p.pairU[i]
		if int(v) < 0 || int(v) >= numUsers || int(u) < 0 || int(u) >= numUsers {
			return fmt.Errorf("core: provenance pair (%d,%d) outside the universe [0,%d)", v, u, numUsers)
		}
		if i > 0 && (p.pairV[i-1] > v || (p.pairV[i-1] == v && p.pairU[i-1] >= u)) {
			return fmt.Errorf("core: provenance pairs out of order at %d", i)
		}
		lo, hi := p.off[i], p.off[i+1]
		if hi <= lo {
			return fmt.Errorf("core: provenance pair (%d,%d) has no entries", v, u)
		}
		for j := lo; j < hi; j++ {
			a, c := p.acts[j], p.creds[j]
			if int(a) < 0 || int(a) >= numActions {
				return fmt.Errorf("core: provenance action %d outside [0,%d)", a, numActions)
			}
			if j > lo && p.acts[j-1] >= a {
				return fmt.Errorf("core: provenance actions out of order for pair (%d,%d)", v, u)
			}
			if math.IsNaN(c) || math.IsInf(c, 0) || c <= 0 {
				return fmt.Errorf("core: provenance credit %g for pair (%d,%d) action %d (want finite and positive)", c, v, u, a)
			}
		}
	}
	return nil
}

// writeProvSection serializes the index: a pair count, then per pair its
// (v, u) ids, entry count, and (action, credit) entries. With the
// Validate ordering rules this is a unique encoding — two indexes with
// the same cells produce the same bytes.
func writeProvSection(sw *snapWriter, p *ProvIndex) {
	sw.u32(uint32(len(p.pairV)))
	for i := range p.pairV {
		sw.u32(uint32(p.pairV[i]))
		sw.u32(uint32(p.pairU[i]))
		lo, hi := p.off[i], p.off[i+1]
		sw.u32(uint32(hi - lo))
		for j := lo; j < hi; j++ {
			sw.u32(uint32(p.acts[j]))
			sw.f64(p.creds[j])
		}
	}
}

// parseProvSection decodes and validates a provenance section, enforcing
// the exact invariants Validate describes so that accepted bytes
// re-encode byte-identically.
func parseProvSection(sc *snapCursor, numUsers, numActions int) (*ProvIndex, error) {
	pairs := sc.count("provenance pair", 12)
	if sc.err == nil && pairs == 0 {
		sc.fail("version-%d snapshot with an empty provenance section", snapshotVersionProv)
	}
	p := &ProvIndex{
		pairV: make([]int32, 0, pairs),
		pairU: make([]int32, 0, pairs),
		off:   make([]int64, 1, pairs+1),
	}
	prevV, prevU := int32(-1), int32(-1)
	for i := 0; i < pairs && sc.err == nil; i++ {
		v := int32(sc.u32())
		u := int32(sc.u32())
		n := sc.count("provenance entry", 12)
		if sc.err != nil {
			break
		}
		if int(v) < 0 || int(v) >= numUsers || int(u) < 0 || int(u) >= numUsers {
			sc.fail("provenance pair (%d,%d) outside the universe [0,%d)", v, u, numUsers)
			break
		}
		if prevV > v || (prevV == v && prevU >= u) {
			sc.fail("provenance pairs out of order: (%d,%d) after (%d,%d)", v, u, prevV, prevU)
			break
		}
		if n == 0 {
			sc.fail("provenance pair (%d,%d) has no entries", v, u)
			break
		}
		prevV, prevU = v, u
		prevA := int32(-1)
		for j := 0; j < n && sc.err == nil; j++ {
			a := int32(sc.u32())
			c := sc.f64()
			if sc.err != nil {
				break
			}
			if int(a) < 0 || int(a) >= numActions {
				sc.fail("provenance action %d outside [0,%d)", a, numActions)
				break
			}
			if prevA >= a {
				sc.fail("provenance actions out of order for pair (%d,%d)", v, u)
				break
			}
			if math.IsNaN(c) || math.IsInf(c, 0) || c <= 0 {
				sc.fail("provenance credit %g for pair (%d,%d) action %d (want finite and positive)", c, v, u, a)
				break
			}
			prevA = a
			p.acts = append(p.acts, a)
			p.creds = append(p.creds, c)
		}
		p.pairV = append(p.pairV, v)
		p.pairU = append(p.pairU, u)
		p.off = append(p.off, int64(len(p.acts)))
	}
	if sc.err != nil {
		return nil, sc.err
	}
	return p, nil
}
