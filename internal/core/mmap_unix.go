//go:build unix

package core

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps path read-only and returns the mapping plus its release
// function. The file descriptor is closed before returning — the mapping
// stays valid without it. An empty file maps to a nil slice (nothing to
// address) with a no-op release.
func mmapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("core: mmap snapshot: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("core: mmap snapshot: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("core: mmap snapshot: %s is %d bytes, beyond this platform's address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("core: mmap snapshot %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
