package core

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"slices"
	"unsafe"
)

// This file is the mmap backend of the rowStore interface: a version-3
// snapshot's base section is laid out exactly like the in-memory sorted
// sparse rows (16-byte directory records, 16-byte ucEntry-shaped cells,
// everything 8-aligned and little-endian), so OpenSnapshotMapped serves
// Gain/Credit/CELF straight off the mapped file — no entry parse, no
// per-row allocation, and the OS pages cold shards in and out on demand.
// Structural validation still runs in full before the first query: the
// header CRC, every offset table, every key and id. What a mapped open
// does not do is copy or checksum the credit payload; the full-file CRC
// footer is verified by the heap reader (ReadSnapshotPrefix), which
// remains the integrity-checking path.

// mdirEntry is one row-directory record of a version-3 base section:
// influencer id, cell count, and the byte offset of the row's cells
// relative to the base-section start. Its Go layout matches the 16-byte
// on-disk record, so a mapped directory is binary-searched in place.
type mdirEntry struct {
	key   int32
	count uint32
	off   uint64
}

// baseExtent locates one action's validated block inside the snapshot
// payload: the row directory and the contiguous cell region.
type baseExtent struct {
	dirStart int // payload offset of the first directory record
	rowCount int
	entStart int // payload offset of the first cell
	entCount int
}

// mappedAliasSupported reports whether this platform can alias the v3
// base section in place: the host must be little-endian and lay ucEntry
// and mdirEntry out exactly like the on-disk records (true on all
// 64-bit Go platforms; 32-bit targets pack float64 tighter). When it is
// false, OpenSnapshotMapped still works by decoding the same bytes into
// heap shards.
func mappedAliasSupported() bool {
	if unsafe.Sizeof(ucEntry{}) != 16 || unsafe.Offsetof(ucEntry{}.c) != 8 {
		return false
	}
	if unsafe.Sizeof(mdirEntry{}) != 16 || unsafe.Offsetof(mdirEntry{}.off) != 8 {
		return false
	}
	probe := [4]byte{0x01, 0x02, 0x03, 0x04}
	return binary.NativeEndian.Uint32(probe[:]) == binary.LittleEndian.Uint32(probe[:])
}

// mappedShard is a read-only rowStore over one action's block of a mapped
// version-3 snapshot. dir and entries alias the mapping directly; the
// first write to the shard goes through promote, which assembles a
// private heap ucAction (column mirror included) and leaves the mapping
// untouched for every sibling engine.
type mappedShard struct {
	numUsers int
	dir      []mdirEntry
	entries  []ucEntry // all cells of the shard, row-major, contiguous
	first    uint64    // base-relative offset of entries[0]
	bytes    int64     // mapped footprint: block header + dir + cells
}

func (ms *mappedShard) numRows() int          { return len(ms.dir) }
func (ms *mappedShard) rowKeyAt(ri int) int32 { return ms.dir[ri].key }

func (ms *mappedShard) rowAt(ri int) []ucEntry {
	d := ms.dir[ri]
	start := (d.off - ms.first) / 16
	return ms.entries[start : start+uint64(d.count)]
}

func (ms *mappedShard) row(v int32) []ucEntry {
	ri, ok := slices.BinarySearchFunc(ms.dir, v, func(d mdirEntry, v int32) int {
		return cmp.Compare(d.key, v)
	})
	if !ok {
		return nil
	}
	return ms.rowAt(ri)
}

func (ms *mappedShard) get(v, u int32) (float64, bool) {
	row := ms.row(v)
	if i, ok := searchRow(row, u); ok {
		return row[i].c, true
	}
	return 0, false
}

func (ms *mappedShard) entryCount() int64 { return int64(len(ms.entries)) }
func (ms *mappedShard) heapBytes() int64  { return 0 }
func (ms *mappedShard) mappedBytes() int64 {
	return ms.bytes
}
func (ms *mappedShard) backendName() string { return "mmap" }

// promote decodes the mapped block into a private heap ucAction and
// rebuilds its column mirror — the promote-on-first-write step behind
// Engine.mutShard. Sibling engines (and later clones of this one) keep
// reading the untouched mapping.
func (ms *mappedShard) promote() *ucAction {
	rowKey := make([]int32, len(ms.dir))
	flat := make([]ucEntry, len(ms.entries))
	copy(flat, ms.entries)
	rows := make([][]ucEntry, len(ms.dir))
	off := 0
	for i, d := range ms.dir {
		rowKey[i] = d.key
		n := int(d.count)
		rows[i] = flat[off : off+n : off+n]
		off += n
	}
	ua := &ucAction{rowKey: rowKey, rows: rows}
	buildColumnsSorted(ua)
	return ua
}

// buildColumnsSorted rebuilds ua's column mirror from its rows without
// universe-sized scratch (promotion happens shard by shard in the middle
// of seed selection, where an O(numUsers) allocation per shard would
// dwarf the work): the influenced ids are sorted and run-length counted,
// then each column fills in ascending influencer order because the outer
// row walk ascends. The result is structurally identical to the mirrors
// built by scanAction and the snapshot readers.
func buildColumnsSorted(ua *ucAction) {
	n := 0
	for _, row := range ua.rows {
		n += len(row)
	}
	if n == 0 {
		ua.colKey, ua.cols = nil, nil
		return
	}
	us := make([]int32, 0, n)
	for _, row := range ua.rows {
		for _, en := range row {
			us = append(us, en.u)
		}
	}
	slices.Sort(us)
	var colKey []int32
	var counts []int
	for i := 0; i < len(us); {
		j := i
		for j < len(us) && us[j] == us[i] {
			j++
		}
		colKey = append(colKey, us[i])
		counts = append(counts, j-i)
		i = j
	}
	colBack := make([]int32, n)
	cols := make([][]int32, len(colKey))
	off := 0
	for i, c := range counts {
		cols[i] = colBack[off : off : off+c]
		off += c
	}
	for ri, v := range ua.rowKey {
		for _, en := range ua.rows[ri] {
			ci, _ := slices.BinarySearch(colKey, en.u)
			cols[ci] = append(cols[ci], v)
		}
	}
	ua.colKey = colKey
	ua.cols = cols
}

// validateBaseSection walks a version-3/4 base section at payload[baseOff:]
// and enforces the canonical layout in full: the per-action offset table
// must point at contiguous, in-order blocks; row keys and cell ids must
// be strictly ascending and in range — row keys additionally inside
// [rowLo, rowHi), the declared row range of a version-4 slice (the full
// universe for a version-3 file); every row offset must equal its
// canonical (contiguous, 8-aligned) position; cell padding words must be
// zero; and the section must end exactly at the payload end. Both the
// heap reader and the mapped open run this, so a corrupt or hostile
// offset table is rejected before any row is ever addressed.
func validateBaseSection(payload []byte, baseOff, numUsers, numActions, rowLo, rowHi int) ([]baseExtent, int64, error) {
	fail := func(format string, args ...any) ([]baseExtent, int64, error) {
		return nil, 0, fmt.Errorf("core: snapshot: "+format, args...)
	}
	if baseOff < 0 || baseOff > len(payload) {
		return fail("base section offset %d outside the payload", baseOff)
	}
	if baseOff%8 != 0 {
		return fail("base section starts at offset %d, not 8-aligned", baseOff)
	}
	base := payload[baseOff:]
	size := uint64(len(base))
	if uint64(numActions)*8 > size {
		return fail("truncated base section: offset table needs %d bytes, have %d", numActions*8, len(base))
	}
	extents := make([]baseExtent, numActions)
	var total int64
	cur := uint64(numActions) * 8 // canonical offset of the first block
	for a := 0; a < numActions; a++ {
		declared := binary.LittleEndian.Uint64(base[a*8:])
		if declared != cur {
			return fail("action %d block offset %d, canonical layout expects %d (misaligned offset table)", a, declared, cur)
		}
		if cur+8 > size {
			return fail("truncated base section: action %d block header at %d, section holds %d bytes", a, cur, size)
		}
		rowCount := binary.LittleEndian.Uint64(base[cur:])
		if rowCount > maxSnapshotDim || cur+8+rowCount*16 > size {
			return fail("action %d declares %d rows, beyond the remaining %d bytes", a, rowCount, size-cur-8)
		}
		dirStart := cur + 8
		entStart := dirStart + rowCount*16
		entOff := entStart
		prevKey := int32(-1)
		for ri := uint64(0); ri < rowCount; ri++ {
			rec := base[dirStart+ri*16:]
			key := int32(binary.LittleEndian.Uint32(rec))
			count := binary.LittleEndian.Uint32(rec[4:])
			off := binary.LittleEndian.Uint64(rec[8:])
			if key < 0 || int(key) >= numUsers {
				return fail("action %d row key %d out of range [0,%d)", a, key, numUsers)
			}
			if int(key) < rowLo || int(key) >= rowHi {
				return fail("action %d row key %d outside the slice's declared rows [%d,%d)", a, key, rowLo, rowHi)
			}
			if key <= prevKey {
				return fail("action %d row keys out of order at %d", a, key)
			}
			prevKey = key
			if count == 0 {
				return fail("action %d row %d is empty", a, key)
			}
			if off != entOff {
				return fail("action %d row %d cells at offset %d, canonical layout expects %d", a, key, off, entOff)
			}
			need := uint64(count) * 16
			if entOff+need > size || entOff+need < entOff {
				return fail("action %d row %d declares %d cells, beyond the section end", a, key, count)
			}
			prevU := int32(-1)
			for c := entOff; c < entOff+need; c += 16 {
				cell := base[c:]
				u := int32(binary.LittleEndian.Uint32(cell))
				if u < 0 || int(u) >= numUsers {
					return fail("action %d cell id %d out of range [0,%d)", a, u, numUsers)
				}
				if u <= prevU {
					return fail("action %d row %d cells out of order at %d", a, key, u)
				}
				prevU = u
				if binary.LittleEndian.Uint32(cell[4:]) != 0 {
					return fail("action %d row %d has a non-zero cell padding word", a, key)
				}
			}
			entOff += need
		}
		extents[a] = baseExtent{
			dirStart: baseOff + int(dirStart),
			rowCount: int(rowCount),
			entStart: baseOff + int(entStart),
			entCount: int((entOff - entStart) / 16),
		}
		total += int64(extents[a].entCount)
		cur = entOff
	}
	if cur != size {
		return fail("base section holds %d bytes past the last block", size-cur)
	}
	return extents, total, nil
}

// MappedSnapshot owns the file mapping behind an engine returned by
// OpenSnapshotMapped. It must stay open for as long as any engine (or
// clone of one) derived from it is in use: shards alias the mapping
// directly, and Close unmaps it. Closing is idempotent.
type MappedSnapshot struct {
	data    []byte
	release func() error
	backend string
}

// Close releases the mapping. The caller must have dropped every engine
// derived from this snapshot first; reading a mapped shard after Close
// faults.
func (m *MappedSnapshot) Close() error {
	if m == nil || m.release == nil {
		return nil
	}
	rel := m.release
	m.release = nil
	m.data = nil
	return rel()
}

// MappedBytes returns the size of the mapping.
func (m *MappedSnapshot) MappedBytes() int64 {
	if m == nil {
		return 0
	}
	return int64(len(m.data))
}

// Backend reports how the snapshot's shards are served: "mmap" when the
// base section is aliased in place, "heap" when this platform cannot
// alias it and the open fell back to decoding.
func (m *MappedSnapshot) Backend() string {
	if m == nil {
		return "heap"
	}
	return m.backend
}

// OpenSnapshotMapped opens a version-3 snapshot file with its frozen base
// served straight from the memory-mapped file: the header (lineage,
// parameters, per-user action lists, seed prefix) is parsed and
// CRC-verified, the base section's offset tables, keys, and ids are
// structurally validated in full, and then every shard is an in-place
// window into the mapping — no cell is parsed, no row allocated. The
// returned engine behaves exactly like one from ReadSnapshotPrefix
// (frozen, no committed seeds, bit-identical Gain/Spread/CELF); writes
// promote individual shards to heap copy-on-write, leaving the mapping
// shared and untouched. The engine is only valid while the returned
// MappedSnapshot stays open.
//
// Version-1/2 files have no mapped-addressable base section and are
// refused; load them heap-resident and re-save to upgrade. Unlike the
// heap reader, the mapped open does not checksum the cell payload (that
// would fault in every cold page the layout exists to avoid); the footer
// is still present and verified whenever the same file is read with
// ReadSnapshotPrefix.
func OpenSnapshotMapped(path string) (*Engine, Lineage, *SeedPrefix, *MappedSnapshot, error) {
	eng, lin, prefix, _, ms, err := OpenSnapshotMappedSketch(path)
	return eng, lin, prefix, ms, err
}

// OpenSnapshotMappedSketch is OpenSnapshotMapped plus the stored RR
// sketch (nil for files not carrying one), discarding any stored
// provenance index. See OpenSnapshotMappedProv.
func OpenSnapshotMappedSketch(path string) (*Engine, Lineage, *SeedPrefix, *RRSketch, *MappedSnapshot, error) {
	eng, lin, prefix, sketch, _, ms, err := OpenSnapshotMappedProv(path)
	return eng, lin, prefix, sketch, ms, err
}

// OpenSnapshotMappedProv is OpenSnapshotMapped plus the stored RR sketch
// and provenance index (nil for files not carrying them). Both sections
// sit inside the header CRC, so even the mapped open — which skips the
// footer — reads them corruption-checked.
func OpenSnapshotMappedProv(path string) (*Engine, Lineage, *SeedPrefix, *RRSketch, *ProvIndex, *MappedSnapshot, error) {
	var lin Lineage
	data, release, err := mmapFile(path)
	if err != nil {
		return nil, lin, nil, nil, nil, nil, err
	}
	ms := &MappedSnapshot{data: data, release: release, backend: "mmap"}
	if !mappedAliasSupported() {
		ms.backend = "heap"
	}
	eng, lin, prefix, sketch, prov, err := parseSnapshotV3(data, ms.backend == "mmap")
	if err != nil {
		ms.Close()
		return nil, lin, nil, nil, nil, nil, err
	}
	return eng, lin, prefix, sketch, prov, ms, nil
}

// parseSnapshotV3 parses a version-3 snapshot payload held in data
// (footer included). With alias set, shards alias data in place
// (mappedShard); otherwise they are decoded into heap ucActions. The
// header CRC is verified either way; the full-file footer CRC is the
// caller's concern (ReadSnapshotPrefix verifies it first, the mapped
// open deliberately skips it).
func parseSnapshotV3(data []byte, alias bool) (*Engine, Lineage, *SeedPrefix, *RRSketch, *ProvIndex, error) {
	var lin Lineage
	if len(data) < len(snapshotMagic)+4+4 {
		return nil, lin, nil, nil, nil, fmt.Errorf("core: snapshot: truncated input: shorter than the fixed header")
	}
	if !IsSnapshotHeader(data) {
		return nil, lin, nil, nil, nil, fmt.Errorf("core: snapshot: bad magic (not a snapshot file)")
	}
	payload := data[:len(data)-4]
	sc := &snapCursor{b: payload, off: len(snapshotMagic)}
	version := sc.u32()
	if version != snapshotVersion && version != snapshotVersionSlice && version != snapshotVersionSketch && version != snapshotVersionProv {
		if version == snapshotVersionNoBase || version == snapshotVersionNoPrefix {
			return nil, lin, nil, nil, nil, fmt.Errorf("core: snapshot: version %d predates the mapped base section (version %d); load it without mmap or re-save it", version, snapshotVersion)
		}
		return nil, lin, nil, nil, nil, fmt.Errorf("core: snapshot: unsupported version %d (supported: 1 through %d)", version, snapshotVersionProv)
	}
	lin, lambda, credit, err := parseSnapshotHeader(sc)
	if err != nil {
		return nil, lin, nil, nil, nil, err
	}
	e := newSnapshotEngine(lin, lambda, credit)
	if err := parseUsers(sc, lin, e); err != nil {
		return nil, lin, nil, nil, nil, err
	}
	prefix, err := parseSeedPrefix(sc, lin.NumUsers)
	if err != nil {
		return nil, lin, nil, nil, nil, err
	}
	// Version-4 slices declare the influencer-row range their base section
	// holds; the base walk below then enforces it row by row.
	rowLo, rowHi := 0, lin.NumUsers
	if version == snapshotVersionSlice {
		rowLo, rowHi = int(sc.u32()), int(sc.u32())
		if sc.err == nil && (rowLo < 0 || rowLo > rowHi || rowHi > lin.NumUsers) {
			return nil, lin, nil, nil, nil, fmt.Errorf("core: snapshot: slice rows [%d,%d) outside the universe [0,%d)", rowLo, rowHi, lin.NumUsers)
		}
		e.partitioned = true
		e.partLo, e.partHi = rowLo, rowHi
	}
	// Version-5 snapshots carry the approximate tier's RR sketch between
	// the prefix section and the header CRC, so both the heap and the
	// mapped open restore it integrity-checked.
	var sketch *RRSketch
	if version == snapshotVersionSketch {
		if sketch, err = parseSketchSection(sc, lin.NumUsers); err != nil {
			return nil, lin, nil, nil, nil, err
		}
	}
	// Version-6 snapshots carry a flags byte, then the optional sketch
	// section, then the provenance section — all inside the header CRC.
	// The prov flag must be set (a provless engine state writes version 3
	// or 5, keeping its encoding unique) and stray bits are refused.
	var prov *ProvIndex
	if version == snapshotVersionProv {
		flags := sc.u8()
		if sc.err == nil && (flags&provFlagProv == 0 || flags&^(provFlagProv|provFlagSketch) != 0) {
			return nil, lin, nil, nil, nil, fmt.Errorf("core: snapshot: version-%d flags %#02x (want the provenance bit set and no stray bits)", snapshotVersionProv, flags)
		}
		if flags&provFlagSketch != 0 {
			if sketch, err = parseSketchSection(sc, lin.NumUsers); err != nil {
				return nil, lin, nil, nil, nil, err
			}
		}
		if prov, err = parseProvSection(sc, lin.NumUsers, lin.NumActions); err != nil {
			return nil, lin, nil, nil, nil, err
		}
	}
	// Header CRC: everything from the magic up to this field. It makes the
	// mapped open corruption-checked over every byte it trusts blindly
	// (the structural walk covers the rest).
	headerEnd := sc.off
	declared := sc.u32()
	if sc.err != nil {
		return nil, lin, nil, nil, nil, sc.err
	}
	if got := crc32.ChecksumIEEE(payload[:headerEnd]); got != declared {
		return nil, lin, nil, nil, nil, fmt.Errorf("core: snapshot: header checksum mismatch (file %08x, computed %08x)", declared, got)
	}
	padLen := (8 - sc.off%8) % 8
	for _, b := range sc.take(padLen) {
		if b != 0 {
			return nil, lin, nil, nil, nil, fmt.Errorf("core: snapshot: non-zero alignment padding before the base section")
		}
	}
	if sc.err != nil {
		return nil, lin, nil, nil, nil, sc.err
	}
	baseOff := sc.off
	extents, total, err := validateBaseSection(payload, baseOff, lin.NumUsers, lin.NumActions, rowLo, rowHi)
	if err != nil {
		return nil, lin, nil, nil, nil, err
	}
	e.entries = total
	if alias && (len(payload) == baseOff || uintptr(unsafe.Pointer(&payload[baseOff]))%8 == 0) {
		for _, ext := range extents {
			e.uc = append(e.uc, aliasShard(payload, ext, lin.NumUsers))
		}
	} else {
		decodeHeapShards(e, payload, extents, lin.NumUsers)
	}
	return e, lin, prefix, sketch, prov, nil
}

// aliasShard wraps one validated block as an in-place mappedShard.
func aliasShard(payload []byte, ext baseExtent, numUsers int) *mappedShard {
	ms := &mappedShard{
		numUsers: numUsers,
		bytes:    8 + int64(ext.rowCount)*16 + int64(ext.entCount)*16,
	}
	if ext.rowCount > 0 {
		ms.dir = unsafe.Slice((*mdirEntry)(unsafe.Pointer(&payload[ext.dirStart])), ext.rowCount)
		ms.first = ms.dir[0].off
	}
	if ext.entCount > 0 {
		ms.entries = unsafe.Slice((*ucEntry)(unsafe.Pointer(&payload[ext.entStart])), ext.entCount)
	}
	return ms
}
