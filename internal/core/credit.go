// Package core implements the paper's primary contribution: the credit
// distribution (CD) model. It provides the direct-credit rules (simple
// 1/d_in and the time-aware rule of Eq. 9 with learned per-edge delays and
// per-user influenceability), the action-log Scan that builds the UC
// structure (Algorithm 2), the incremental marginal-gain engine used by
// greedy/CELF seed selection (Algorithms 3-5, Theorem 3, Lemmas 1-3), and
// an exact evaluator of the spread objective sigma_cd (Eq. 8).
package core

import (
	"math"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

// CreditModel computes the direct influence credit gamma_{v,u}(a) that the
// child participant of a propagation gives to one of its potential
// influencers. Implementations must guarantee the credits a child assigns
// sum to at most 1 (the model's normalization constraint).
type CreditModel interface {
	// Gamma returns gamma for the edge parent->child of propagation p,
	// where child and parent are chronological indices into p.Users and
	// parent is one of p.Parents[child].
	Gamma(p *actionlog.Propagation, child, parent int32) float64
}

// SimpleCredit is the equal-split rule gamma_{v,u}(a) = 1/d_in(u, a) used
// throughout Section 4's exposition.
type SimpleCredit struct{}

// Gamma implements CreditModel.
func (SimpleCredit) Gamma(p *actionlog.Propagation, child, _ int32) float64 {
	return 1.0 / float64(len(p.Parents[child]))
}

// TimeAwareCredit is the paper's Eq. (9) rule:
//
//	gamma_{v,u}(a) = infl(u)/d_in(u,a) * exp(-(t(u,a)-t(v,a))/tau_{v,u})
//
// where tau_{v,u} is the average observed propagation delay on the edge and
// infl(u) is u's influenceability. Both are learned from the training log
// by LearnTimeAware.
type TimeAwareCredit struct {
	tau  map[graph.Edge]float64
	infl []float64
}

// Gamma implements CreditModel.
func (c *TimeAwareCredit) Gamma(p *actionlog.Propagation, child, parent int32) float64 {
	u := p.Users[child]
	v := p.Users[parent]
	tau, ok := c.tau[graph.Edge{From: v, To: u}]
	if !ok || tau <= 0 {
		// No delay evidence for this edge in training: influence decayed
		// beyond observation; give no credit.
		return 0
	}
	dt := p.Times[child] - p.Times[parent]
	return c.infl[u] / float64(len(p.Parents[child])) * math.Exp(-dt/tau)
}

// Tau returns the learned mean propagation delay of edge (v,u) and whether
// any delay was observed.
func (c *TimeAwareCredit) Tau(v, u graph.NodeID) (float64, bool) {
	t, ok := c.tau[graph.Edge{From: v, To: u}]
	return t, ok
}

// Influenceability returns the learned infl(u).
func (c *TimeAwareCredit) Influenceability(u graph.NodeID) float64 { return c.infl[u] }

// UniverseSize returns how many users the learned parameters cover (the
// graph size at learn time). Callers binding restored parameters to a
// graph must ensure every graph node is covered, or Gamma will index out
// of range.
func (c *TimeAwareCredit) UniverseSize() int { return len(c.infl) }

// LearnTimeAware learns the parameters of the time-aware credit rule from
// the training log, exactly as Section 4 prescribes:
//
//   - tau_{v,u}: the average of t(u,a)-t(v,a) over actions a that
//     propagated from v to u;
//   - infl(u): the fraction of u's actions performed under influence,
//     i.e. actions a with some potential influencer v such that
//     t(u,a)-t(v,a) <= tau_{v,u}.
//
// Two passes over the log are required because infl depends on tau.
func LearnTimeAware(g *graph.Graph, train *actionlog.Log) *TimeAwareCredit {
	type acc struct {
		sum   float64
		count int
	}
	sums := make(map[graph.Edge]*acc)
	props := make([]*actionlog.Propagation, train.NumActions())
	for a := 0; a < train.NumActions(); a++ {
		p := actionlog.BuildPropagation(train, g, actionlog.ActionID(a))
		props[a] = p
		for i := range p.Users {
			for _, j := range p.Parents[i] {
				e := graph.Edge{From: p.Users[j], To: p.Users[i]}
				s := sums[e]
				if s == nil {
					s = &acc{}
					sums[e] = s
				}
				s.sum += p.Times[i] - p.Times[j]
				s.count++
			}
		}
	}
	tau := make(map[graph.Edge]float64, len(sums))
	for e, s := range sums {
		tau[e] = s.sum / float64(s.count)
	}

	influenced := make([]int, g.NumNodes())
	for _, p := range props {
		for i, u := range p.Users {
			for _, j := range p.Parents[i] {
				e := graph.Edge{From: p.Users[j], To: u}
				if dt := p.Times[i] - p.Times[j]; dt <= tau[e] {
					influenced[u]++
					break
				}
			}
		}
	}
	infl := make([]float64, g.NumNodes())
	for u := range infl {
		if c := train.ActionCount(graph.NodeID(u)); c > 0 {
			infl[u] = float64(influenced[u]) / float64(c)
		}
	}
	return &TimeAwareCredit{tau: tau, infl: infl}
}
