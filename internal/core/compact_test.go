package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"credist/internal/graph"
	"credist/internal/seedsel"
)

func TestCompactMatchesMapEngineFigure1(t *testing.T) {
	g, log := figure1(t)
	m := NewEngine(g, log, Options{})
	c := NewCompactEngine(g, log, Options{})
	if m.Entries() != c.Entries() {
		t.Fatalf("entries differ: %d vs %d", m.Entries(), c.Entries())
	}
	if got := c.Credit(0, nodeV, nodeU); !almostEqual(got, 0.75) {
		t.Fatalf("compact Credit(v,u) = %g, want 0.75", got)
	}
	for u := graph.NodeID(0); u < 6; u++ {
		if !almostEqual(m.Gain(u), c.Gain(u)) {
			t.Fatalf("Gain(%d): %g vs %g", u, m.Gain(u), c.Gain(u))
		}
	}
	m.Add(nodeT)
	c.Add(nodeT)
	m.Add(nodeZ)
	c.Add(nodeZ)
	if got := c.Credit(0, nodeV, nodeU); !almostEqual(got, 0.5) {
		t.Fatalf("compact Gamma^{V-{t,z}}_{v,u} = %g, want 0.5", got)
	}
	for u := graph.NodeID(0); u < 6; u++ {
		if !almostEqual(m.Gain(u), c.Gain(u)) {
			t.Fatalf("post-Add Gain(%d): %g vs %g", u, m.Gain(u), c.Gain(u))
		}
	}
}

func TestCompactMatchesMapEngineRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 51))
	for trial := 0; trial < 12; trial++ {
		g, log := randomInstance(rng, 15+rng.IntN(10), 5+rng.IntN(5))
		lambda := 0.0
		if trial%2 == 1 {
			lambda = 0.05
		}
		m := NewEngine(g, log, Options{Lambda: lambda})
		c := NewCompactEngine(g, log, Options{Lambda: lambda})
		if m.Entries() != c.Entries() {
			t.Fatalf("trial %d: entries %d vs %d", trial, m.Entries(), c.Entries())
		}
		var seeds []graph.NodeID
		for round := 0; round < 4; round++ {
			for u := 0; u < g.NumNodes(); u++ {
				gm, gc := m.Gain(graph.NodeID(u)), c.Gain(graph.NodeID(u))
				if math.Abs(gm-gc) > 1e-9 {
					t.Fatalf("trial %d seeds=%v Gain(%d): %g vs %g", trial, seeds, u, gm, gc)
				}
			}
			next := graph.NodeID(rng.IntN(g.NumNodes()))
			if contains(seeds, next) {
				continue
			}
			m.Add(next)
			c.Add(next)
			seeds = append(seeds, next)
			if m.Entries() != c.Entries() {
				t.Fatalf("trial %d: post-Add entries %d vs %d", trial, m.Entries(), c.Entries())
			}
		}
	}
}

func TestCompactCELFSelectsSameSeeds(t *testing.T) {
	rng := rand.New(rand.NewPCG(53, 53))
	g, log := randomInstance(rng, 30, 12)
	mRes := seedsel.CELF(NewEngine(g, log, Options{}), 5)
	cRes := seedsel.CELF(NewCompactEngine(g, log, Options{}), 5)
	for i := range mRes.Seeds {
		if mRes.Seeds[i] != cRes.Seeds[i] {
			t.Fatalf("seed %d differs: %d vs %d", i, mRes.Seeds[i], cRes.Seeds[i])
		}
		if math.Abs(mRes.Gains[i]-cRes.Gains[i]) > 1e-9 {
			t.Fatalf("gain %d differs: %g vs %g", i, mRes.Gains[i], cRes.Gains[i])
		}
	}
}

func TestCompactEmptyAndInactive(t *testing.T) {
	g, log := emptyInstance(t)
	c := NewCompactEngine(g, log, Options{})
	if c.Entries() != 0 || c.Gain(0) != 0 {
		t.Fatal("empty log misbehaved")
	}
	c.Add(0)
	if got := c.Seeds(); len(got) != 1 {
		t.Fatalf("Seeds = %v", got)
	}
}

// TestResidentBytesAccounting keeps the representation comparison honest:
// both engines report a non-trivial footprint that scales with their live
// entries, the flattened layout's fixed 20-byte entries stay leaner than
// the sorted rows' 16-byte cells plus column mirror, and compacting the
// row engine (exact-size re-allocation) never grows it.
func TestResidentBytesAccounting(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 5))
	g, log := randomInstance(rng, 40, 20)
	rows := NewEngine(g, log, Options{})
	flat := NewCompactEngine(g, log, Options{})
	if rows.Entries() != flat.Entries() {
		t.Fatalf("entries %d vs %d", rows.Entries(), flat.Entries())
	}
	n := rows.Entries()
	if n == 0 {
		t.Fatal("empty instance")
	}
	// Lower bounds: every live entry occupies at least its cell.
	if rows.ResidentBytes() < n*16 {
		t.Errorf("row engine reports %d bytes for %d entries", rows.ResidentBytes(), n)
	}
	if flat.ResidentBytes() < n*20 {
		t.Errorf("compact engine reports %d bytes for %d entries", flat.ResidentBytes(), n)
	}
	before := rows.ResidentBytes()
	rows.Compact()
	if rows.ResidentBytes() > before {
		t.Errorf("Compact grew residency: %d -> %d", before, rows.ResidentBytes())
	}
	// The flattened layout has no per-row slice headers or insert slack, so
	// after compaction it is still at most the row engine's footprint plus
	// its permutation index.
	if flat.ResidentBytes() > rows.ResidentBytes()+n*8 {
		t.Errorf("compact layout heavier than expected: %d vs rows %d", flat.ResidentBytes(), rows.ResidentBytes())
	}

	// Mapped backend: the same model served off a version-3 file must
	// report its cells as mapped, not heap — the heap number counts only
	// what the Go allocator actually holds.
	lin := DatasetLineage("resident", g, log)
	mapped, _, _, ms := openMapped(t, writeSnapshotFile(t, rows, lin, nil))
	if ms.Backend() == "mmap" {
		if mapped.HeapBytes() != 0 {
			t.Errorf("mapped engine counts %d heap bytes for file-backed cells", mapped.HeapBytes())
		}
		// Every live cell and its 16-byte directory record live in the
		// mapping, bounded above by the whole file.
		if mb := mapped.MappedBytes(); mb < n*16 || mb > ms.MappedBytes() {
			t.Errorf("mapped engine reports %d mapped bytes for %d entries in a %d-byte file", mb, n, ms.MappedBytes())
		}
		if mapped.ResidentBytes() != mapped.MappedBytes() {
			t.Error("resident/mapped split disagrees before any write")
		}
		// Promoting one shard by writing moves exactly that shard's cells
		// to the heap side.
		heapBefore, mappedBefore := mapped.HeapBytes(), mapped.MappedBytes()
		seedsel.CELF(mapped, 1)
		if mapped.HeapBytes() <= heapBefore || mapped.MappedBytes() >= mappedBefore {
			t.Errorf("promote-on-write did not move footprint heapward: heap %d->%d mapped %d->%d",
				heapBefore, mapped.HeapBytes(), mappedBefore, mapped.MappedBytes())
		}
	}
}
