package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"credist/internal/graph"
)

func TestFigure1ExplainSeed(t *testing.T) {
	g, log := figure1(t)
	e := NewEngine(g, log, Options{})

	ex := e.ExplainSeed(nodeV, 10)
	if ex.Gain != e.Gain(nodeV) {
		t.Fatalf("ExplainSeed(v).Gain = %b, Gain(v) = %b", ex.Gain, e.Gain(nodeV))
	}
	// v's gain decomposes into its self-activation plus its credit over
	// t, w, z, u — five paths for the single action.
	if ex.TotalPaths != 5 || len(ex.Paths) != 5 {
		t.Fatalf("ExplainSeed(v) paths = %d (total %d), want 5", len(ex.Paths), ex.TotalPaths)
	}
	want := map[graph.NodeID]float64{nodeV: 1, nodeT: 0.5, nodeW: 1, nodeZ: 0.5, nodeU: 0.75}
	for _, p := range ex.Paths {
		if p.Influencer != nodeV || p.Action != 0 {
			t.Fatalf("unexpected path %+v", p)
		}
		if w, ok := want[p.Influenced]; !ok || !almostEqual(p.Credit, w) {
			t.Fatalf("path to %d credit %g, want %g", p.Influenced, p.Credit, want[p.Influenced])
		}
		delete(want, p.Influenced)
	}
	if len(want) != 0 {
		t.Fatalf("paths missing targets %v", want)
	}
	// Truncation keeps the top paths by credit.
	top2 := e.ExplainSeed(nodeV, 2)
	if len(top2.Paths) != 2 || top2.TotalPaths != 5 {
		t.Fatalf("top-2 kept %d of %d paths", len(top2.Paths), top2.TotalPaths)
	}
	for _, p := range top2.Paths {
		if !almostEqual(p.Credit, 1) {
			t.Fatalf("top-2 path credit %g, want 1", p.Credit)
		}
	}

	// After commits the explained gain still matches bit for bit, and a
	// committed seed explains as zero with no paths.
	e.Add(nodeT)
	e.Add(nodeZ)
	for cand := graph.NodeID(0); cand < 6; cand++ {
		ex := e.ExplainSeed(cand, 10)
		if ex.Gain != e.Gain(cand) {
			t.Fatalf("after commits ExplainSeed(%d).Gain = %b, Gain = %b", cand, ex.Gain, e.Gain(cand))
		}
	}
	if ex := e.ExplainSeed(nodeT, 10); ex.Gain != 0 || ex.TotalPaths != 0 {
		t.Fatalf("committed seed explains as %+v, want zero", ex)
	}
}

// TestExplainSeedBitExact is the tentpole contract on the seed side: the
// explanation's gain is bit-identical to Engine.Gain at any worker count,
// with and without truncation/learned credit, before and after commits.
func TestExplainSeedBitExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 17))
	for trial := 0; trial < 10; trial++ {
		g, log := randomInstance(rng, 14+rng.IntN(8), 5+rng.IntN(5))
		var credit CreditModel
		lambda := 0.0
		if trial%2 == 1 {
			credit = LearnTimeAware(g, log)
			lambda = 0.001
		}
		serial := NewEngine(g, log, Options{Workers: 1, Lambda: lambda, Credit: credit})
		parallel := NewEngine(g, log, Options{Workers: runtime.GOMAXPROCS(0), Lambda: lambda, Credit: credit})
		for round := 0; round < 3; round++ {
			for cand := 0; cand < g.NumNodes(); cand++ {
				c := graph.NodeID(cand)
				exS := serial.ExplainSeed(c, 8)
				exP := parallel.ExplainSeed(c, 8)
				if exS.Gain != serial.Gain(c) {
					t.Fatalf("trial %d round %d: ExplainSeed(%d).Gain %b != Gain %b",
						trial, round, c, exS.Gain, serial.Gain(c))
				}
				if !reflect.DeepEqual(exS, exP) {
					t.Fatalf("trial %d round %d: explanations differ across worker counts for %d", trial, round, c)
				}
			}
			next := graph.NodeID(rng.IntN(g.NumNodes()))
			serial.Add(next)
			parallel.Add(next)
		}
	}
}

func TestFigure1ExplainReach(t *testing.T) {
	g, log := figure1(t)
	e := NewEngine(g, log, Options{})

	share, paths := e.ReachPaths(nodeV, nodeU)
	if !almostEqual(share, 0.75) {
		t.Fatalf("ReachPaths(v,u) share = %g, want 0.75", share)
	}
	if len(paths) != 1 || paths[0].Action != 0 || !almostEqual(paths[0].Credit, 0.75) {
		t.Fatalf("ReachPaths(v,u) paths = %+v", paths)
	}

	ex := e.ExplainReach([]graph.NodeID{nodeV, nodeZ}, nodeU, 10)
	if len(ex.PerSeed) != 2 || !almostEqual(ex.PerSeed[0].Share, 0.75) || !almostEqual(ex.PerSeed[1].Share, 0.25) {
		t.Fatalf("ExplainReach per-seed = %+v", ex.PerSeed)
	}
	if sum := ex.PerSeed[0].Share + ex.PerSeed[1].Share; ex.Total != sum {
		t.Fatalf("Total %b != fold of shares %b", ex.Total, sum)
	}
	// A node that performed nothing reaches nothing.
	lb2 := e.ExplainReach([]graph.NodeID{nodeU}, nodeV, 10)
	if lb2.Total != 0 || lb2.TotalPaths != 0 {
		t.Fatalf("reach from sink = %+v, want zero", lb2)
	}
}

// TestExplainReachMatchesPairCredit cross-checks the walk against the
// evaluator's independent recursive computation of kappa_{v,u} on
// truncation-free engines.
func TestExplainReachMatchesPairCredit(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 19))
	for trial := 0; trial < 8; trial++ {
		g, log := randomInstance(rng, 10+rng.IntN(6), 4+rng.IntN(4))
		e := NewEngine(g, log, Options{})
		ev := NewEvaluator(g, log, nil)
		for s := 0; s < g.NumNodes(); s++ {
			for v := 0; v < g.NumNodes(); v++ {
				if s == v {
					continue
				}
				share, _ := e.ReachPaths(graph.NodeID(s), graph.NodeID(v))
				if want := ev.PairCredit(graph.NodeID(s), graph.NodeID(v)); !almostEqual(share, want) {
					t.Fatalf("trial %d ReachPaths(%d,%d) = %g, evaluator kappa = %g", trial, s, v, share, want)
				}
			}
		}
	}
}

// TestExplainReachIndexed pins the index consumer bit-identical to the
// shard walk: same shares, same paths, same fold order.
func TestExplainReachIndexed(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 23))
	for trial := 0; trial < 6; trial++ {
		g, log := randomInstance(rng, 12+rng.IntN(8), 4+rng.IntN(5))
		e := NewEngine(g, log, Options{Lambda: 0.001, Credit: LearnTimeAware(g, log)})
		idx := e.BuildProvIndex()
		if err := idx.Validate(g.NumNodes(), e.NumActions()); idx.Pairs() > 0 && err != nil {
			t.Fatalf("trial %d: built index fails Validate: %v", trial, err)
		}
		seeds := []graph.NodeID{0, graph.NodeID(g.NumNodes() / 2), graph.NodeID(g.NumNodes() - 1), 0}
		for v := 0; v < g.NumNodes(); v++ {
			walk := e.ExplainReach(seeds, graph.NodeID(v), 6)
			indexed := e.ExplainReachIndexed(idx, seeds, graph.NodeID(v), 6)
			if !reflect.DeepEqual(walk, indexed) {
				t.Fatalf("trial %d target %d: walk %+v != indexed %+v", trial, v, walk, indexed)
			}
		}
	}
}

// TestExplainPartitionedBitIdentical is the acceptance criterion at
// partition counts {1, 4}: a partition explains its owned rows exactly as
// the full engine does, and per-partition reach shares folded in seed
// order reproduce the full answer bit for bit.
func TestExplainPartitionedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(53, 29))
	g, log := randomInstance(rng, 24, 9)
	base := NewEngine(g, log, Options{Lambda: 0.001, Credit: LearnTimeAware(g, log)})
	base.Freeze()
	n := g.NumNodes()
	for _, parts := range []int{1, 4} {
		// Slices share row storage with a frozen source; the reference
		// engine is a clone so commits on it copy-on-write instead of
		// mutating the shared rows.
		full := base.Clone()
		var slices []*Engine
		var ranges [][2]int
		for i := 0; i < parts; i++ {
			lo, hi := i*n/parts, (i+1)*n/parts
			p, err := base.Slice(lo, hi)
			if err != nil {
				t.Fatalf("Slice(%d,%d): %v", lo, hi, err)
			}
			slices = append(slices, p)
			ranges = append(ranges, [2]int{lo, hi})
		}
		owner := func(x graph.NodeID) *Engine {
			for i, r := range ranges {
				if int(x) >= r[0] && int(x) < r[1] {
					return slices[i]
				}
			}
			t.Fatalf("no owner for %d", x)
			return nil
		}
		commits := []graph.NodeID{3, 17}
		for round := 0; round <= len(commits); round++ {
			for cand := 0; cand < n; cand++ {
				c := graph.NodeID(cand)
				got := owner(c).ExplainSeed(c, 7)
				if wantEx := full.ExplainSeed(c, 7); !reflect.DeepEqual(got, wantEx) {
					t.Fatalf("parts=%d round %d: partition ExplainSeed(%d) differs from full", parts, round, cand)
				}
			}
			seeds := []graph.NodeID{1, 9, 20, 9}
			for v := 0; v < n; v += 5 {
				wantEx := full.ExplainReach(seeds, graph.NodeID(v), 8)
				// Gather: each seed's share and paths come wholly from its
				// owner; fold shares in input order, concatenate and re-sort
				// paths — the partitioned serving path in miniature.
				got := ReachExplanation{Target: graph.NodeID(v)}
				var paths []ProvPath
				for _, s := range seeds {
					share, ps := owner(s).ReachPaths(s, graph.NodeID(v))
					got.PerSeed = append(got.PerSeed, ReachShare{Seed: s, Share: share})
					got.Total += share
					paths = append(paths, ps...)
				}
				got.TotalPaths = len(paths)
				got.Paths = TopProvPaths(paths, 8)
				if got.PerSeed == nil {
					got.PerSeed = []ReachShare{}
				}
				if wantEx.Total != got.Total || !reflect.DeepEqual(wantEx.PerSeed, append([]ReachShare(nil), got.PerSeed...)) ||
					!reflect.DeepEqual(wantEx.Paths, got.Paths) {
					t.Fatalf("parts=%d round %d target %d: merged reach differs from full", parts, round, v)
				}
			}
			if round < len(commits) {
				seed := commits[round]
				payload := owner(seed).ExtractSeedRow(seed)
				for _, p := range slices {
					p.CommitSeedRow(seed, payload)
				}
				full.Add(seed)
			}
		}
	}
}

// TestBuildProvIndexSlices: a slice indexes exactly its owned rows, and
// slice indexes agree cell-for-cell with the full index.
func TestBuildProvIndexSlices(t *testing.T) {
	rng := rand.New(rand.NewPCG(59, 31))
	g, log := randomInstance(rng, 20, 7)
	e := NewEngine(g, log, Options{})
	fullIdx := e.BuildProvIndex()
	n := g.NumNodes()
	totalPairs := 0
	for i := 0; i < 4; i++ {
		lo, hi := i*n/4, (i+1)*n/4
		p, err := e.Slice(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		idx := p.BuildProvIndex()
		totalPairs += idx.Pairs()
		for j := range idx.pairV {
			v, u := idx.pairV[j], idx.pairU[j]
			if int(v) < lo || int(v) >= hi {
				t.Fatalf("slice [%d,%d) indexed foreign row %d", lo, hi, v)
			}
			acts, creds := idx.Lookup(graph.NodeID(v), graph.NodeID(u))
			wantActs, wantCreds := fullIdx.Lookup(graph.NodeID(v), graph.NodeID(u))
			if !reflect.DeepEqual(acts, wantActs) || !reflect.DeepEqual(creds, wantCreds) {
				t.Fatalf("slice cell (%d,%d) disagrees with full index", v, u)
			}
		}
	}
	if totalPairs != fullIdx.Pairs() {
		t.Fatalf("slice pair counts sum to %d, full index has %d", totalPairs, fullIdx.Pairs())
	}
}

func TestProvIndexLookupAndValidate(t *testing.T) {
	g, log := figure1(t)
	e := NewEngine(g, log, Options{})
	idx := e.BuildProvIndex()
	if err := idx.Validate(6, 1); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	acts, creds := idx.Lookup(nodeV, nodeU)
	if len(acts) != 1 || acts[0] != 0 || !almostEqual(creds[0], 0.75) {
		t.Fatalf("Lookup(v,u) = %v %v", acts, creds)
	}
	if acts, creds := idx.Lookup(nodeU, nodeV); acts != nil || creds != nil {
		t.Fatalf("Lookup miss returned %v %v", acts, creds)
	}
	if err := (&ProvIndex{}).Validate(6, 1); err == nil {
		t.Fatal("empty index passed Validate")
	}
	if err := idx.Validate(6, 0); err == nil {
		t.Fatal("index validated against a universe with no actions")
	}
	var nilIdx *ProvIndex
	if nilIdx.Pairs() != 0 || nilIdx.Entries() != 0 || nilIdx.Bytes() != 0 {
		t.Fatal("nil index stats not zero")
	}
}

func TestTopProvPathsDeterministic(t *testing.T) {
	paths := []ProvPath{
		{Influencer: 2, Influenced: 1, Action: 0, Credit: 0.5},
		{Influencer: 1, Influenced: 3, Action: 2, Credit: 0.5},
		{Influencer: 1, Influenced: 3, Action: 1, Credit: 0.5},
		{Influencer: 0, Influenced: 4, Action: 0, Credit: 0.9},
	}
	got := TopProvPaths(append([]ProvPath(nil), paths...), 10)
	want := []ProvPath{paths[3], paths[2], paths[1], paths[0]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopProvPaths order = %+v", got)
	}
	if n := len(TopProvPaths(append([]ProvPath(nil), paths...), -1)); n != 0 {
		t.Fatalf("negative n kept %d paths", n)
	}
}

// TestSnapshotProvRoundTrip is the format contract: a version-6 snapshot
// round-trips byte-identically, a provless write stays byte-identical to
// the version-5 (and version-3) writers, and the mapped opener returns
// the same index.
func TestSnapshotProvRoundTrip(t *testing.T) {
	g, log, e, lin := snapshotInstance(t, 61, 22, 9)
	_ = log
	prov := e.BuildProvIndex()
	if prov.Pairs() == 0 {
		t.Fatal("instance produced an empty index; pick another seed")
	}

	var v6 bytes.Buffer
	if err := e.WriteSnapshotProv(&v6, lin, nil, nil, prov); err != nil {
		t.Fatalf("WriteSnapshotProv: %v", err)
	}
	if got := binary.LittleEndian.Uint32(v6.Bytes()[len(snapshotMagic):]); got != snapshotVersionProv {
		t.Fatalf("prov snapshot has version %d, want %d", got, snapshotVersionProv)
	}
	eng, lin2, pfx, sk, prov2, err := ReadSnapshotProv(bytes.NewReader(v6.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshotProv: %v", err)
	}
	if pfx != nil || sk != nil {
		t.Fatalf("unexpected prefix/sketch from provless-sketch file")
	}
	if !reflect.DeepEqual(prov2, prov) {
		t.Fatal("restored index differs from written index")
	}
	requireEnginesBitIdentical(t, e, eng, 4)
	var again bytes.Buffer
	if err := eng.WriteSnapshotProv(&again, lin2, pfx, sk, prov2); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(again.Bytes(), v6.Bytes()) {
		t.Fatalf("v6 re-encode differs: %d vs %d bytes", again.Len(), v6.Len())
	}

	// Sectionless writes never escalate the version: nil and empty prov
	// hand back the exact v3 bytes, and a sketch-only write the exact v5
	// bytes.
	var v3, provNil, provEmpty bytes.Buffer
	if err := e.WriteSnapshot(&v3, lin); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteSnapshotProv(&provNil, lin, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteSnapshotProv(&provEmpty, lin, nil, nil, &ProvIndex{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(provNil.Bytes(), v3.Bytes()) || !bytes.Equal(provEmpty.Bytes(), v3.Bytes()) {
		t.Fatal("provless WriteSnapshotProv is not byte-identical to WriteSnapshot")
	}
	sketch := &RRSketch{Seed: 9, Roots: 3, Sets: [][]graph.NodeID{{0, 1}, {2}, {3, 4, 5}}}
	var v5, v5viaProv bytes.Buffer
	if err := e.WriteSnapshotSketch(&v5, lin, nil, sketch); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteSnapshotProv(&v5viaProv, lin, nil, sketch, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v5viaProv.Bytes(), v5.Bytes()) {
		t.Fatal("sketch-only WriteSnapshotProv is not byte-identical to WriteSnapshotSketch")
	}

	// Both sections together round-trip too.
	var both bytes.Buffer
	if err := e.WriteSnapshotProv(&both, lin, nil, sketch, prov); err != nil {
		t.Fatal(err)
	}
	_, _, _, sk2, prov3, err := ReadSnapshotProv(bytes.NewReader(both.Bytes()))
	if err != nil {
		t.Fatalf("read sketch+prov: %v", err)
	}
	if !reflect.DeepEqual(sk2, sketch) || !reflect.DeepEqual(prov3, prov) {
		t.Fatal("sketch+prov round-trip lost a section")
	}

	// The mapped opener hands back the same index.
	dir := t.TempDir()
	path := filepath.Join(dir, "model.snap")
	if err := os.WriteFile(path, v6.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	meng, _, _, _, mprov, ms, err := OpenSnapshotMappedProv(path)
	if err != nil {
		t.Fatalf("OpenSnapshotMappedProv: %v", err)
	}
	defer ms.Close()
	if !reflect.DeepEqual(mprov, prov) {
		t.Fatal("mapped open returned a different index")
	}
	for u := 0; u < g.NumNodes(); u++ {
		if meng.Gain(graph.NodeID(u)) != e.Gain(graph.NodeID(u)) {
			t.Fatalf("mapped Gain(%d) differs", u)
		}
	}
}

// TestSnapshotProvRejects covers the v6-specific reject paths: stray or
// missing flag bits and structural violations inside the section, all
// CRC-refreshed so the structural validators do the rejecting.
func TestSnapshotProvRejects(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 67, 18, 7)
	prov := e.BuildProvIndex()
	var buf bytes.Buffer
	if err := e.WriteSnapshotProv(&buf, lin, nil, nil, prov); err != nil {
		t.Fatal(err)
	}
	v6 := buf.Bytes()

	// Replay the header parse to locate the flags byte and the section
	// bounds; the header CRC sits right after the section.
	sc := &snapCursor{b: v6[:len(v6)-4], off: len(snapshotMagic) + 4}
	lin6, lambda6, credit6, err := parseSnapshotHeader(sc)
	if err != nil {
		t.Fatal(err)
	}
	tmp := newSnapshotEngine(lin6, lambda6, credit6)
	if err := parseUsers(sc, lin6, tmp); err != nil {
		t.Fatal(err)
	}
	if _, err := parseSeedPrefix(sc, lin6.NumUsers); err != nil {
		t.Fatal(err)
	}
	flagsOff := sc.off
	provSize := 4
	for i := range prov.pairV {
		provSize += 12 + 12*int(prov.off[i+1]-prov.off[i])
	}
	hdrCRCOff := flagsOff + 1 + provSize

	restamp := func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[hdrCRCOff:], crc32.ChecksumIEEE(b[:hdrCRCOff]))
		binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
		return b
	}
	cases := []struct {
		name string
		mut  func(b []byte)
		want string
	}{
		{"prov bit clear", func(b []byte) { b[flagsOff] = 0 }, "provenance bit"},
		{"stray flag bit", func(b []byte) { b[flagsOff] |= 1 << 6 }, "stray bits"},
		{"zero pairs", func(b []byte) { binary.LittleEndian.PutUint32(b[flagsOff+1:], 0) }, "provenance"},
		{"pair out of universe", func(b []byte) { binary.LittleEndian.PutUint32(b[flagsOff+5:], 1<<20) }, "universe"},
		{"credit corrupted", func(b []byte) {
			// First entry's credit sits after pairCount(4)+v(4)+u(4)+entryCount(4)+action(4).
			binary.LittleEndian.PutUint64(b[flagsOff+21:], ^uint64(0)) // NaN bits
		}, "finite"},
	}
	for _, c := range cases {
		bad := restamp(func() []byte { b := append([]byte(nil), v6...); c.mut(b); return b }())
		_, _, _, _, _, err := ReadSnapshotProv(bytes.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
		if _, _, _, _, err := ReadSnapshotSketch(bytes.NewReader(bad)); err == nil {
			t.Fatalf("%s: discarding reader accepted corrupt input", c.name)
		}
	}

	// A partition cannot write a whole-model prov snapshot.
	p, err := e.Slice(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteSnapshotProv(&bytes.Buffer{}, lin, nil, nil, p.BuildProvIndex()); err == nil {
		t.Fatal("partition wrote a version-6 snapshot")
	}
	// An index that fails Validate is refused at write time.
	badIdx := &ProvIndex{pairV: []int32{1}, pairU: []int32{0}, off: []int64{0, 1}, acts: []int32{0}, creds: []float64{-1}}
	if err := e.WriteSnapshotProv(&bytes.Buffer{}, lin, nil, nil, badIdx); err == nil {
		t.Fatal("invalid index written without error")
	}
}
