package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"slices"
	"sort"

	"credist/internal/actionlog"
	"credist/internal/celf"
	"credist/internal/graph"
)

// This file implements durable binary model snapshots: a learned, scanned
// Engine — the expensive product of LearnTimeAware plus the Algorithm 2
// log scan — serialized once and reloaded on process start, so cold start
// becomes a file read plus an AppendActions over only the log tail the
// snapshot has not seen. The format is versioned, little-endian, and
// carries the graph/log lineage (dataset name, user count, scanned action
// count, content hashes) so a snapshot can refuse to bind to a dataset it
// was not built from. Float64 values are stored as raw IEEE-754 bits, so a
// write/read round trip is bit-exact and every Gain/Spread/CELF result of
// a reloaded engine is identical to the engine that was saved.
//
// Layout (all integers little-endian):
//
//	magic    8 bytes "CREDSNAP"
//	version  u32 (currently 2; version-1 files — identical except for the
//	         missing seed-prefix section — are still read)
//	lineage  dataset name (u32 len + bytes), u32 numUsers, u32 numActions,
//	         u64 graphHash, u64 logHash (word-folded FNV over the scanned
//	         prefix; see HashGraph / HashLogPrefix)
//	params   f64 lambda; u8 credit tag (0 simple, 1 time-aware);
//	         time-aware: u32 inflLen + f64s, u32 tauCount +
//	         (i32 from, i32 to, f64 tau) sorted strictly by (from, to)
//	users    per user: u32 count + i32 action ids, strictly ascending
//	shards   per action: u32 rowCount, u32 entryTotal (sum of the row
//	         entry counts, letting the reader allocate exactly once);
//	         per row: i32 influencer id (strictly ascending), u32
//	         entryCount >= 1, then (i32 influenced id strictly
//	         ascending, f64 credit) cells
//	prefix   (version >= 2) u32 seed count (0 = none), then per seed:
//	         u32 node id (each unique, in range), f64 marginal gain
//	         (finite), u64 cumulative gain-evaluation count
//	         (non-decreasing) — a computed CELF seed prefix, so a restart
//	         serves any /seeds?k up to the stored length without running
//	         selection at all
//	footer   u32 CRC-32 (IEEE) of every preceding byte
//
// Only the row-major half of each shard is stored; the column mirror is
// rebuilt deterministically on load, as are the Au normalizers (the length
// of each user's action list). Strict ordering makes the encoding of a
// given engine unique: saving a loaded engine reproduces the file byte for
// byte (a version-1 file re-saves as the equivalent version-2 file with an
// empty prefix section).

const (
	snapshotMagic   = "CREDSNAP"
	snapshotVersion = 2

	// snapshotVersionNoPrefix is the pre-seed-prefix format, still
	// accepted by the reader for files written before the section existed.
	snapshotVersionNoPrefix = 1

	creditTagSimple    = 0
	creditTagTimeAware = 1

	// maxSnapshotDim bounds header-declared dimensions (users, actions,
	// name length) so a corrupt count fails fast instead of driving a huge
	// allocation; snapCursor.count additionally validates every element
	// count against the payload bytes actually present before allocating.
	maxSnapshotDim = 1 << 30
)

// Lineage identifies the dataset a snapshot was learned and scanned from.
// NumActions is the scanned prefix length: a combined log with more
// actions is a legal load target (the tail is appended), one with fewer or
// different actions is not.
type Lineage struct {
	Dataset    string
	NumUsers   int
	NumActions int
	GraphHash  uint64
	LogHash    uint64
}

// DatasetLineage captures the lineage of a (graph, log) pair as scanned in
// full: the log's user universe, every action, and content hashes of both
// structures.
func DatasetLineage(name string, g *graph.Graph, log *actionlog.Log) Lineage {
	return Lineage{
		Dataset:    name,
		NumUsers:   log.NumUsers(),
		NumActions: log.NumActions(),
		GraphHash:  HashGraph(g),
		LogHash:    HashLogPrefix(log, log.NumActions()),
	}
}

// Check validates a load target against the recorded lineage: the graph
// must hash-match exactly, and the log must contain the recorded scanned
// prefix verbatim (it may be longer — the caller appends the tail).
func (lin Lineage) Check(g *graph.Graph, log *actionlog.Log) error {
	if h := HashGraph(g); h != lin.GraphHash {
		return fmt.Errorf("core: snapshot lineage mismatch: graph hash %016x, snapshot was built against %016x", h, lin.GraphHash)
	}
	if log.NumActions() < lin.NumActions {
		return fmt.Errorf("core: snapshot covers %d actions but the log holds only %d (the snapshot is newer than the log)", lin.NumActions, log.NumActions())
	}
	if log.NumUsers() < lin.NumUsers {
		return fmt.Errorf("core: snapshot universe has %d users but the log has only %d", lin.NumUsers, log.NumUsers())
	}
	if h := HashLogPrefix(log, lin.NumActions); h != lin.LogHash {
		return fmt.Errorf("core: snapshot lineage mismatch: log prefix hash %016x over %d actions, snapshot recorded %016x", h, lin.NumActions, lin.LogHash)
	}
	return nil
}

// fnv64 is an inline FNV-style accumulator over 32/64-bit words; the
// stdlib hash.Hash64 interface costs an allocation and an interface call
// per write, and lineage hashing walks millions of tuples.
type fnv64 uint64

const fnvOffset64 fnv64 = 14695981039346656037

// u32/u64 fold a whole word per step (xor then multiply, FNV-style)
// rather than byte-wise: lineage hashing visits every log tuple, and the
// word-folded variant is an order of magnitude cheaper at equivalent
// mixing for this fixed-width integer stream.
func (h fnv64) u32(v uint32) fnv64 {
	h ^= fnv64(v)
	h *= 1099511628211
	return h
}

func (h fnv64) u64(v uint64) fnv64 {
	h ^= fnv64(v)
	h *= 1099511628211
	return h
}

// HashGraph returns a content hash of the graph: node count plus every
// directed edge in from-major order.
func HashGraph(g *graph.Graph) uint64 {
	h := fnvOffset64.u32(uint32(g.NumNodes()))
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Out(graph.NodeID(u)) {
			h = h.u32(uint32(u)).u32(uint32(v))
		}
	}
	return uint64(h)
}

// HashLogPrefix returns a content hash of the log's first actions
// propagations: every (user, action, time) tuple in canonical scan order,
// with timestamps hashed as raw float64 bits. The universe size is
// deliberately excluded — appending a tail may register new users without
// invalidating the already-scanned prefix.
func HashLogPrefix(log *actionlog.Log, actions int) uint64 {
	h := fnvOffset64
	for a := 0; a < actions; a++ {
		for _, t := range log.Action(actionlog.ActionID(a)) {
			h = h.u32(uint32(t.User)).u32(uint32(t.Action)).u64(math.Float64bits(t.Time))
		}
	}
	return uint64(h)
}

// SeedPrefix is a computed CELF seed-selection prefix persisted alongside
// the engine: seeds in selection order, their marginal gains, and the
// cumulative gain-evaluation counts when each was committed. A snapshot
// carrying one lets a restarted process answer seed queries up to the
// stored length without running any selection. It is an alias of the
// shared celf.Prefix, so writer, reader, and Resume all enforce one rule
// set (Prefix.Validate) with no conversions at package boundaries.
type SeedPrefix = celf.Prefix

// IsSnapshotHeader reports whether p (at least the first 8 bytes of a
// file) starts with the binary snapshot magic. Callers use it to sniff
// snapshot files apart from the text parameter format.
func IsSnapshotHeader(p []byte) bool {
	return len(p) >= len(snapshotMagic) && string(p[:len(snapshotMagic)]) == snapshotMagic
}

// snapWriter wraps an output stream with little-endian encoding helpers, a
// running CRC, and sticky error handling.
type snapWriter struct {
	w   io.Writer
	crc uint32
	err error
	buf []byte
}

func (sw *snapWriter) bytes(p []byte) {
	if sw.err != nil {
		return
	}
	sw.crc = crc32.Update(sw.crc, crc32.IEEETable, p)
	_, sw.err = sw.w.Write(p)
}

func (sw *snapWriter) u8(v uint8) { sw.bytes([]byte{v}) }
func (sw *snapWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	sw.bytes(b[:])
}
func (sw *snapWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	sw.bytes(b[:])
}
func (sw *snapWriter) f64(v float64) { sw.u64(math.Float64bits(v)) }

func (sw *snapWriter) str(s string) {
	sw.u32(uint32(len(s)))
	sw.bytes([]byte(s))
}

// i32s writes a whole int32 slice through the scratch buffer in one pass.
func (sw *snapWriter) i32s(vs []int32) {
	need := len(vs) * 4
	if cap(sw.buf) < need {
		sw.buf = make([]byte, need)
	}
	b := sw.buf[:need]
	for i, v := range vs {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
	sw.bytes(b)
}

// WriteSnapshot serializes the engine and its lineage in the binary
// snapshot format, with no seed prefix. See WriteSnapshotPrefix.
func (e *Engine) WriteSnapshot(w io.Writer, lin Lineage) error {
	return e.WriteSnapshotPrefix(w, lin, nil)
}

// WriteSnapshotPrefix serializes the engine, its lineage, and an optional
// computed seed prefix in the binary snapshot format. The engine must not
// have committed seeds (a snapshot restores the raw per-action credit
// structure, which Add destructively restricts to V-S; the prefix is
// stored as data precisely so the engine itself stays unrestricted), and
// the lineage must describe exactly the log the engine has scanned.
func (e *Engine) WriteSnapshotPrefix(w io.Writer, lin Lineage, prefix *SeedPrefix) error {
	if len(e.seeds) > 0 {
		return errors.New("core: cannot snapshot an engine with committed seeds")
	}
	if lin.NumUsers != e.numUsers || lin.NumActions != e.NumActions() {
		return fmt.Errorf("core: snapshot lineage covers %d users/%d actions, engine has scanned %d/%d",
			lin.NumUsers, lin.NumActions, e.numUsers, e.NumActions())
	}
	// Mirror the reader's bound: a longer name would write a CRC-valid
	// file that every subsequent load refuses.
	if len(lin.Dataset) > 1<<16 {
		return fmt.Errorf("core: snapshot dataset name is %d bytes, limit is %d", len(lin.Dataset), 1<<16)
	}
	if prefix != nil {
		if err := prefix.Validate(e.numUsers); err != nil {
			return err
		}
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	sw := &snapWriter{w: bw}
	sw.bytes([]byte(snapshotMagic))
	sw.u32(snapshotVersion)

	sw.str(lin.Dataset)
	sw.u32(uint32(lin.NumUsers))
	sw.u32(uint32(lin.NumActions))
	sw.u64(lin.GraphHash)
	sw.u64(lin.LogHash)

	sw.f64(e.lambda)
	switch credit := e.credit.(type) {
	case SimpleCredit:
		sw.u8(creditTagSimple)
	case *TimeAwareCredit:
		sw.u8(creditTagTimeAware)
		sw.u32(uint32(len(credit.infl)))
		for _, v := range credit.infl {
			sw.f64(v)
		}
		edges := make([]graph.Edge, 0, len(credit.tau))
		for ed := range credit.tau {
			edges = append(edges, ed)
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		sw.u32(uint32(len(edges)))
		for _, ed := range edges {
			sw.u32(uint32(ed.From))
			sw.u32(uint32(ed.To))
			sw.f64(credit.tau[ed])
		}
	default:
		return fmt.Errorf("core: cannot snapshot engine with credit model %T", e.credit)
	}

	for u := 0; u < e.numUsers; u++ {
		sw.u32(uint32(len(e.actionsOf[u])))
		sw.i32s(e.actionsOf[u])
	}

	for _, ua := range e.uc {
		sw.u32(uint32(len(ua.rowKey)))
		total := 0
		for _, row := range ua.rows {
			total += len(row)
		}
		sw.u32(uint32(total))
		for ri, v := range ua.rowKey {
			row := ua.rows[ri]
			sw.u32(uint32(v))
			sw.u32(uint32(len(row)))
			need := len(row) * 12
			if cap(sw.buf) < need {
				sw.buf = make([]byte, need)
			}
			b := sw.buf[:need]
			for i, en := range row {
				binary.LittleEndian.PutUint32(b[i*12:], uint32(en.u))
				binary.LittleEndian.PutUint64(b[i*12+4:], math.Float64bits(en.c))
			}
			sw.bytes(b)
		}
	}

	if prefix == nil {
		sw.u32(0)
	} else {
		sw.u32(uint32(len(prefix.Seeds)))
		for i, x := range prefix.Seeds {
			sw.u32(uint32(x))
			sw.f64(prefix.Gains[i])
			sw.u64(uint64(prefix.LookupsAt[i]))
		}
	}

	// The CRC footer covers everything above; it is written raw (not
	// through sw.bytes) so it does not fold into itself.
	if sw.err == nil {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], sw.crc)
		_, sw.err = bw.Write(b[:])
	}
	if sw.err != nil {
		return fmt.Errorf("core: write snapshot: %w", sw.err)
	}
	return bw.Flush()
}

// snapCursor decodes the snapshot payload from an in-memory buffer with
// sticky error handling. The whole file is read (and CRC-verified) before
// parsing starts, so every declared count can be validated against the
// bytes actually present before anything is allocated — a corrupt header
// can neither over-allocate nor panic.
type snapCursor struct {
	b   []byte
	off int
	err error
}

func (sc *snapCursor) fail(format string, args ...any) {
	if sc.err == nil {
		sc.err = fmt.Errorf("core: snapshot: "+format, args...)
	}
}

func (sc *snapCursor) remaining() int { return len(sc.b) - sc.off }

// take returns the next n payload bytes, or nil after flagging truncation.
func (sc *snapCursor) take(n int) []byte {
	if sc.err != nil {
		return nil
	}
	if n < 0 || sc.remaining() < n {
		sc.fail("truncated input: need %d bytes, have %d", n, sc.remaining())
		return nil
	}
	b := sc.b[sc.off : sc.off+n]
	sc.off += n
	return b
}

func (sc *snapCursor) u8() uint8 {
	b := sc.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (sc *snapCursor) u32() uint32 {
	b := sc.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (sc *snapCursor) u64() uint64 {
	b := sc.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (sc *snapCursor) f64() float64 { return math.Float64frombits(sc.u64()) }

// count reads an element count whose records occupy recSize bytes each,
// rejecting values the remaining payload cannot possibly hold.
func (sc *snapCursor) count(what string, recSize int) int {
	v := sc.u32()
	if sc.err != nil {
		return 0
	}
	if v > maxSnapshotDim || int64(v)*int64(recSize) > int64(sc.remaining()) {
		sc.fail("%s count %d exceeds the remaining %d payload bytes", what, v, sc.remaining())
		return 0
	}
	return int(v)
}

func (sc *snapCursor) str(what string) string {
	n := sc.u32()
	if sc.err == nil && n > 1<<16 {
		sc.fail("%s length %d exceeds sanity bound", what, n)
		return ""
	}
	return string(sc.take(int(n)))
}

// ReadSnapshot parses a snapshot written by WriteSnapshot, discarding any
// stored seed prefix. See ReadSnapshotPrefix.
func ReadSnapshot(r io.Reader) (*Engine, Lineage, error) {
	e, lin, _, err := ReadSnapshotPrefix(r)
	return e, lin, err
}

// ReadSnapshotPrefix parses a snapshot written by WriteSnapshotPrefix and
// rebuilds the engine: the column mirror of every shard and the Au
// normalizers are reconstructed deterministically from the stored rows.
// The returned engine is frozen (every shard shared) with the full
// scanned range as its base, has no committed seeds, and is bit-for-bit
// equivalent to the saved engine; the returned prefix is the stored seed
// prefix, or nil when the file carries none (always for version-1 files).
// Corrupt or truncated input — bad magic, impossible counts, unordered
// keys, a CRC mismatch, trailing garbage, a malformed prefix — is
// rejected with an error, never a panic or an unbounded allocation.
func ReadSnapshotPrefix(r io.Reader) (*Engine, Lineage, *SeedPrefix, error) {
	var lin Lineage
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, lin, nil, fmt.Errorf("core: snapshot: read: %w", err)
	}
	if len(data) < len(snapshotMagic)+4+4 {
		return nil, lin, nil, errors.New("core: snapshot: truncated input: shorter than the fixed header")
	}
	if !IsSnapshotHeader(data) {
		return nil, lin, nil, errors.New("core: snapshot: bad magic (not a snapshot file)")
	}
	// Integrity first: the CRC footer covers the whole payload, so every
	// later structural check runs on bytes known to be exactly what
	// WriteSnapshotPrefix produced (or the file is rejected here, wholesale).
	payload, footer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(footer), crc32.ChecksumIEEE(payload); got != want {
		return nil, lin, nil, fmt.Errorf("core: snapshot: checksum mismatch (file %08x, computed %08x): corrupt or truncated input", got, want)
	}

	sc := &snapCursor{b: payload, off: len(snapshotMagic)}
	version := sc.u32()
	if sc.err == nil && version != snapshotVersion && version != snapshotVersionNoPrefix {
		return nil, lin, nil, fmt.Errorf("core: snapshot: unsupported version %d (have %d)", version, snapshotVersion)
	}
	lin.Dataset = sc.str("dataset name")
	lin.NumUsers = sc.count("user", 4)
	lin.NumActions = sc.count("action", 4)
	lin.GraphHash = sc.u64()
	lin.LogHash = sc.u64()

	lambda := sc.f64()
	var credit CreditModel
	switch tag := sc.u8(); {
	case sc.err != nil:
	case tag == creditTagSimple:
		credit = SimpleCredit{}
	case tag == creditTagTimeAware:
		ta := &TimeAwareCredit{}
		inflLen := sc.count("influenceability", 8)
		if inflLen < lin.NumUsers {
			return nil, lin, nil, fmt.Errorf("core: snapshot: influenceability table covers %d users, lineage declares %d", inflLen, lin.NumUsers)
		}
		ta.infl = make([]float64, inflLen)
		for i := range ta.infl {
			ta.infl[i] = sc.f64()
		}
		tauCount := sc.count("tau", 16)
		ta.tau = make(map[graph.Edge]float64, tauCount)
		prev := graph.Edge{From: -1, To: -1}
		for i := 0; i < tauCount && sc.err == nil; i++ {
			e := graph.Edge{From: graph.NodeID(sc.u32()), To: graph.NodeID(sc.u32())}
			tau := sc.f64()
			if sc.err != nil {
				break
			}
			if e.From < 0 || e.To < 0 {
				sc.fail("negative tau edge (%d,%d)", e.From, e.To)
				break
			}
			if e.From < prev.From || (e.From == prev.From && e.To <= prev.To) {
				sc.fail("tau records out of order at edge (%d,%d)", e.From, e.To)
				break
			}
			prev = e
			ta.tau[e] = tau
		}
		credit = ta
	default:
		return nil, lin, nil, fmt.Errorf("core: snapshot: unknown credit model tag %d", tag)
	}
	if sc.err != nil {
		return nil, lin, nil, sc.err
	}

	e := &Engine{
		numUsers:    lin.NumUsers,
		au:          make([]int32, lin.NumUsers),
		actionsOf:   make([][]int32, lin.NumUsers),
		uc:          make([]*ucAction, 0, lin.NumActions),
		owned:       make([]bool, lin.NumActions),
		sc:          make([]map[int32]float64, lin.NumActions),
		lambda:      lambda,
		credit:      credit,
		baseActions: lin.NumActions,
	}

	for u := 0; u < lin.NumUsers && sc.err == nil; u++ {
		n := sc.count("user action", 4)
		row := make([]int32, n)
		prev := int32(-1)
		for i := range row {
			a := int32(sc.u32())
			if sc.err != nil {
				break
			}
			if a < 0 || int(a) >= lin.NumActions {
				sc.fail("user %d action id %d out of range [0,%d)", u, a, lin.NumActions)
				break
			}
			if a <= prev {
				sc.fail("user %d action ids out of order at %d", u, a)
				break
			}
			prev = a
			row[i] = a
		}
		e.actionsOf[u] = row
		e.au[u] = int32(n)
	}

	// Scratch for the column-mirror rebuild, reused across shards: per-user
	// column sizes and fill cursors, reset only for the users a shard
	// touched. This keeps the rebuild allocation-light and map-free — it is
	// the hot loop of cold start.
	colSize := make([]int32, lin.NumUsers)
	colPos := make([]int32, lin.NumUsers)

	for a := 0; a < lin.NumActions && sc.err == nil; a++ {
		ua := &ucAction{}
		rowCount := sc.count("row", 8)
		entryTotal := sc.count("shard entry", 12)
		ua.rowKey = make([]int32, 0, rowCount)
		ua.rows = make([][]ucEntry, 0, rowCount)
		rowLens := make([]int, 0, rowCount)
		flat := make([]ucEntry, 0, entryTotal)
		var touched []int32
		prevKey := int32(-1)
		for ri := 0; ri < rowCount && sc.err == nil; ri++ {
			v := int32(sc.u32())
			if sc.err != nil {
				break
			}
			if v < 0 || int(v) >= lin.NumUsers {
				sc.fail("action %d row key %d out of range [0,%d)", a, v, lin.NumUsers)
				break
			}
			if v <= prevKey {
				sc.fail("action %d row keys out of order at %d", a, v)
				break
			}
			prevKey = v
			n := sc.count("entry", 12)
			if sc.err != nil {
				break
			}
			if n == 0 {
				sc.fail("action %d row %d is empty", a, v)
				break
			}
			if len(flat)+n > entryTotal {
				sc.fail("action %d rows exceed the declared entry total %d", a, entryTotal)
				break
			}
			cells := sc.take(n * 12)
			if cells == nil {
				break
			}
			start := len(flat)
			prevU := int32(-1)
			for off := 0; off < len(cells); off += 12 {
				u := int32(binary.LittleEndian.Uint32(cells[off:]))
				if u < 0 || int(u) >= lin.NumUsers {
					sc.fail("action %d entry id %d out of range [0,%d)", a, u, lin.NumUsers)
					break
				}
				if u <= prevU {
					sc.fail("action %d row %d entries out of order at %d", a, v, u)
					break
				}
				prevU = u
				if colSize[u] == 0 {
					touched = append(touched, u)
				}
				colSize[u]++
				flat = append(flat, ucEntry{u: u, c: math.Float64frombits(binary.LittleEndian.Uint64(cells[off+4:]))})
			}
			if sc.err != nil {
				break
			}
			ua.rowKey = append(ua.rowKey, v)
			rowLens = append(rowLens, len(flat)-start)
		}
		if sc.err != nil {
			break
		}
		if len(flat) != entryTotal {
			sc.fail("action %d holds %d entries, header declared %d", a, len(flat), entryTotal)
			break
		}
		// Carve the per-row windows out of the flat cell store. Capacity is
		// clamped per window, so a later copy-on-write mutation of one row
		// can never bleed into its neighbor.
		off := 0
		for _, n := range rowLens {
			ua.rows = append(ua.rows, flat[off:off+n:off+n])
			off += n
		}
		e.entries += int64(len(flat))

		// Column mirror: influenced ids sorted, and each column's
		// influencer list accumulates in ascending order because the outer
		// row walk is ascending.
		slices.Sort(touched)
		ua.colKey = touched
		ua.cols = make([][]int32, len(touched))
		colBack := make([]int32, len(flat))
		off = 0
		for i, u := range touched {
			n := int(colSize[u])
			ua.cols[i] = colBack[off : off : off+n]
			colPos[u] = int32(i)
			off += n
		}
		for ri, v := range ua.rowKey {
			for _, en := range ua.rows[ri] {
				ci := colPos[en.u]
				ua.cols[ci] = append(ua.cols[ci], v)
			}
		}
		for _, u := range touched {
			colSize[u] = 0
		}
		e.uc = append(e.uc, ua)
	}
	if sc.err != nil {
		return nil, lin, nil, sc.err
	}

	// Seed-prefix section (version >= 2 only); version-1 files end at the
	// shards. The structural rules match SeedPrefix.validate, so the
	// on-disk encoding of a given prefix is unique and a re-save
	// reproduces the section byte for byte.
	var prefix *SeedPrefix
	if version >= snapshotVersion {
		n := sc.count("seed prefix", 20)
		if n > 0 && sc.err == nil {
			p := &SeedPrefix{
				Seeds:     make([]graph.NodeID, 0, n),
				Gains:     make([]float64, 0, n),
				LookupsAt: make([]int64, 0, n),
			}
			for i := 0; i < n && sc.err == nil; i++ {
				node := graph.NodeID(sc.u32())
				gain := sc.f64()
				lookups := sc.u64()
				if sc.err != nil {
					break
				}
				if lookups > math.MaxInt64 {
					sc.fail("seed prefix lookup count %d at %d overflows", lookups, i)
					break
				}
				p.Seeds = append(p.Seeds, node)
				p.Gains = append(p.Gains, gain)
				p.LookupsAt = append(p.LookupsAt, int64(lookups))
			}
			if sc.err == nil {
				if err := p.Validate(lin.NumUsers); err != nil {
					sc.err = err
				}
			}
			prefix = p
		}
	}
	if sc.err != nil {
		return nil, lin, nil, sc.err
	}
	if sc.remaining() != 0 {
		return nil, lin, nil, errors.New("core: snapshot: trailing data after payload")
	}
	return e, lin, prefix, nil
}
