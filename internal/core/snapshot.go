package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"slices"
	"sort"

	"credist/internal/actionlog"
	"credist/internal/celf"
	"credist/internal/graph"
)

// This file implements durable binary model snapshots: a learned, scanned
// Engine — the expensive product of LearnTimeAware plus the Algorithm 2
// log scan — serialized once and reloaded on process start, so cold start
// becomes a file read plus an AppendActions over only the log tail the
// snapshot has not seen. The format is versioned, little-endian, and
// carries the graph/log lineage (dataset name, user count, scanned action
// count, content hashes) so a snapshot can refuse to bind to a dataset it
// was not built from. Float64 values are stored as raw IEEE-754 bits, so a
// write/read round trip is bit-exact and every Gain/Spread/CELF result of
// a reloaded engine is identical to the engine that was saved.
//
// Version-3 layout (all integers little-endian):
//
//	magic     8 bytes "CREDSNAP"
//	version   u32 (currently 3)
//	lineage   dataset name (u32 len + bytes), u32 numUsers, u32 numActions,
//	          u64 graphHash, u64 logHash (word-folded FNV over the scanned
//	          prefix; see HashGraph / HashLogPrefix)
//	params    f64 lambda; u8 credit tag (0 simple, 1 time-aware);
//	          time-aware: u32 inflLen + f64s, u32 tauCount +
//	          (i32 from, i32 to, f64 tau) sorted strictly by (from, to)
//	users     per user: u32 count + i32 action ids, strictly ascending
//	prefix    u32 seed count (0 = none), then per seed: u32 node id (each
//	          unique, in range), f64 marginal gain (finite), u64 cumulative
//	          gain-evaluation count (non-decreasing) — a computed CELF seed
//	          prefix, so a restart serves any /seeds?k up to the stored
//	          length without running selection at all
//	hdrCRC    u32 CRC-32 (IEEE) of every preceding byte — the slice of the
//	          file a mapped open trusts before the structural walk
//	pad       0–7 zero bytes so the base section starts 8-aligned
//	base      the frozen shards, fixed-width and directly addressable when
//	          the file is memory-mapped (every offset relative to the base
//	          section start, every record 8-aligned):
//	            offsets   per action: u64 block offset (canonical: blocks
//	                      contiguous, in action order, starting right after
//	                      this table)
//	            block     u64 rowCount; per row a 16-byte directory record
//	                      (i32 influencer id strictly ascending, u32
//	                      cellCount >= 1, u64 cell offset — canonical:
//	                      cells contiguous, row-major, right after the
//	                      directory); then the cells, 16 bytes each
//	                      (i32 influenced id strictly ascending, u32 zero
//	                      padding, f64 credit bits) — exactly the in-memory
//	                      ucEntry layout, so a mapped shard aliases them
//	                      in place (mapped.go)
//	footer    u32 CRC-32 (IEEE) of every preceding byte
//
// Version-2 files (12-byte packed cells, no offset tables, prefix after
// the shards, no header CRC) and version-1 files (version 2 minus the
// seed-prefix section) are still read. Only the row-major half of each
// shard is stored; the column mirror is rebuilt deterministically on load,
// as are the Au normalizers (the length of each user's action list).
// Strict ordering plus the canonical offset rule make the encoding of a
// given engine unique: saving a loaded engine reproduces the file byte for
// byte (older versions re-save as the equivalent version-3 file).

const (
	snapshotMagic   = "CREDSNAP"
	snapshotVersion = 3

	// snapshotVersionSlice marks a partition slice: version 3 plus one
	// header record (u32 rowLo, u32 rowHi, right after the seed-prefix
	// section) declaring the influencer-row range the base section holds.
	// The lineage, params, per-user lists, and prefix describe the FULL
	// model — only the base section is restricted to rows in the range —
	// so a contiguous set of slices reassembles the model exactly. Full
	// snapshots keep writing version 3 byte-identically.
	snapshotVersionSlice = 4

	// snapshotVersionSketch marks a snapshot carrying the approximate
	// tier's RR sketch: version 3 plus one header section (right after the
	// seed-prefix section, inside the header CRC) holding the sketch's PCG
	// seed, its root count, and every RR sample verbatim (u64 seed, u32
	// roots, u32 sample count >= 1, then per sample u32 len >= 1 + that
	// many u32 node ids in [0, numUsers)). A restart rebuilds the
	// approximate tier's collection from the section with zero sampling
	// work. Snapshots without a sketch keep writing version 3
	// byte-identically; slices (version 4) never carry a sketch.
	snapshotVersionSketch = 5

	// snapshotVersionProv marks a snapshot carrying the provenance index
	// (and, optionally, the RR sketch too): version 3 plus, right after the
	// seed-prefix section and inside the header CRC, a u8 flags byte
	// (provFlagSketch, provFlagProv; provFlagProv must be set, other bits
	// must be zero), then the version-5 sketch section when provFlagSketch
	// is set, then the provenance section (u32 pair count >= 1; per pair
	// u32 influencer, u32 influenced — pairs strictly ascending by
	// (influencer, influenced) — u32 entry count >= 1, then per entry u32
	// action id, strictly ascending within the pair, and f64 raw credit
	// bits, finite and positive). A restart serves /explain from the
	// section with zero index builds. The writer emits version 6 only when
	// an index is present — a provless snapshot keeps writing version 3 or
	// 5 byte-identically, and the parser rejects a version-6 file without
	// the prov flag, keeping the encoding of any engine state unique.
	// Slices (version 4) never carry the section: a partitioned deployment
	// re-reads it from the whole-model file, like the sketch.
	snapshotVersionProv = 6

	provFlagSketch = uint8(1 << 0)
	provFlagProv   = uint8(1 << 1)

	// snapshotVersionNoBase is the pre-mmap format: packed 12-byte cells,
	// no offset tables, no header CRC. Still read, never written.
	snapshotVersionNoBase = 2

	// snapshotVersionNoPrefix is the pre-seed-prefix format, still
	// accepted by the reader for files written before the section existed.
	snapshotVersionNoPrefix = 1

	creditTagSimple    = 0
	creditTagTimeAware = 1

	// maxSnapshotDim bounds header-declared dimensions (users, actions,
	// name length) so a corrupt count fails fast instead of driving a huge
	// allocation; snapCursor.count additionally validates every element
	// count against the payload bytes actually present before allocating.
	maxSnapshotDim = 1 << 30
)

// Lineage identifies the dataset a snapshot was learned and scanned from.
// NumActions is the scanned prefix length: a combined log with more
// actions is a legal load target (the tail is appended), one with fewer or
// different actions is not.
type Lineage struct {
	Dataset    string
	NumUsers   int
	NumActions int
	GraphHash  uint64
	LogHash    uint64
}

// DatasetLineage captures the lineage of a (graph, log) pair as scanned in
// full: the log's user universe, every action, and content hashes of both
// structures.
func DatasetLineage(name string, g *graph.Graph, log *actionlog.Log) Lineage {
	return Lineage{
		Dataset:    name,
		NumUsers:   log.NumUsers(),
		NumActions: log.NumActions(),
		GraphHash:  HashGraph(g),
		LogHash:    HashLogPrefix(log, log.NumActions()),
	}
}

// Check validates a load target against the recorded lineage: the graph
// must hash-match exactly, and the log must contain the recorded scanned
// prefix verbatim (it may be longer — the caller appends the tail).
func (lin Lineage) Check(g *graph.Graph, log *actionlog.Log) error {
	if h := HashGraph(g); h != lin.GraphHash {
		return fmt.Errorf("core: snapshot lineage mismatch: graph hash %016x, snapshot was built against %016x", h, lin.GraphHash)
	}
	if log.NumActions() < lin.NumActions {
		return fmt.Errorf("core: snapshot covers %d actions but the log holds only %d (the snapshot is newer than the log)", lin.NumActions, log.NumActions())
	}
	if log.NumUsers() < lin.NumUsers {
		return fmt.Errorf("core: snapshot universe has %d users but the log has only %d", lin.NumUsers, log.NumUsers())
	}
	if h := HashLogPrefix(log, lin.NumActions); h != lin.LogHash {
		return fmt.Errorf("core: snapshot lineage mismatch: log prefix hash %016x over %d actions, snapshot recorded %016x", h, lin.NumActions, lin.LogHash)
	}
	return nil
}

// fnv64 is an inline FNV-style accumulator over 32/64-bit words; the
// stdlib hash.Hash64 interface costs an allocation and an interface call
// per write, and lineage hashing walks millions of tuples.
type fnv64 uint64

const fnvOffset64 fnv64 = 14695981039346656037

// u32/u64 fold a whole word per step (xor then multiply, FNV-style)
// rather than byte-wise: lineage hashing visits every log tuple, and the
// word-folded variant is an order of magnitude cheaper at equivalent
// mixing for this fixed-width integer stream.
func (h fnv64) u32(v uint32) fnv64 {
	h ^= fnv64(v)
	h *= 1099511628211
	return h
}

func (h fnv64) u64(v uint64) fnv64 {
	h ^= fnv64(v)
	h *= 1099511628211
	return h
}

// HashGraph returns a content hash of the graph: node count plus every
// directed edge in from-major order.
func HashGraph(g *graph.Graph) uint64 {
	h := fnvOffset64.u32(uint32(g.NumNodes()))
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Out(graph.NodeID(u)) {
			h = h.u32(uint32(u)).u32(uint32(v))
		}
	}
	return uint64(h)
}

// HashLogPrefix returns a content hash of the log's first actions
// propagations: every (user, action, time) tuple in canonical scan order,
// with timestamps hashed as raw float64 bits. The universe size is
// deliberately excluded — appending a tail may register new users without
// invalidating the already-scanned prefix.
func HashLogPrefix(log *actionlog.Log, actions int) uint64 {
	h := fnvOffset64
	for a := 0; a < actions; a++ {
		for _, t := range log.Action(actionlog.ActionID(a)) {
			h = h.u32(uint32(t.User)).u32(uint32(t.Action)).u64(math.Float64bits(t.Time))
		}
	}
	return uint64(h)
}

// SeedPrefix is a computed CELF seed-selection prefix persisted alongside
// the engine: seeds in selection order, their marginal gains, and the
// cumulative gain-evaluation counts when each was committed. A snapshot
// carrying one lets a restarted process answer seed queries up to the
// stored length without running any selection. It is an alias of the
// shared celf.Prefix, so writer, reader, and Resume all enforce one rule
// set (Prefix.Validate) with no conversions at package boundaries.
type SeedPrefix = celf.Prefix

// IsSnapshotHeader reports whether p (at least the first 8 bytes of a
// file) starts with the binary snapshot magic. Callers use it to sniff
// snapshot files apart from the text parameter format.
func IsSnapshotHeader(p []byte) bool {
	return len(p) >= len(snapshotMagic) && string(p[:len(snapshotMagic)]) == snapshotMagic
}

// snapWriter wraps an output stream with little-endian encoding helpers, a
// running CRC, a written-byte counter (the version-3 base section must
// start 8-aligned), and sticky error handling.
type snapWriter struct {
	w   io.Writer
	n   int64
	crc uint32
	err error
	buf []byte
}

func (sw *snapWriter) bytes(p []byte) {
	if sw.err != nil {
		return
	}
	sw.crc = crc32.Update(sw.crc, crc32.IEEETable, p)
	sw.n += int64(len(p))
	_, sw.err = sw.w.Write(p)
}

func (sw *snapWriter) u8(v uint8) { sw.bytes([]byte{v}) }
func (sw *snapWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	sw.bytes(b[:])
}
func (sw *snapWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	sw.bytes(b[:])
}
func (sw *snapWriter) f64(v float64) { sw.u64(math.Float64bits(v)) }

func (sw *snapWriter) str(s string) {
	sw.u32(uint32(len(s)))
	sw.bytes([]byte(s))
}

// i32s writes a whole int32 slice through the scratch buffer in one pass.
func (sw *snapWriter) i32s(vs []int32) {
	need := len(vs) * 4
	if cap(sw.buf) < need {
		sw.buf = make([]byte, need)
	}
	b := sw.buf[:need]
	for i, v := range vs {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
	sw.bytes(b)
}

// footer writes the CRC of everything above, raw (not through sw.bytes) so
// it does not fold into itself.
func (sw *snapWriter) footer() {
	if sw.err == nil {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], sw.crc)
		_, sw.err = sw.w.Write(b[:])
	}
}

// WriteSnapshot serializes the engine and its lineage in the binary
// snapshot format, with no seed prefix. See WriteSnapshotPrefix.
func (e *Engine) WriteSnapshot(w io.Writer, lin Lineage) error {
	return e.WriteSnapshotPrefix(w, lin, nil)
}

// checkSnapshotArgs enforces the shared writer preconditions. The engine
// must not have committed seeds (a snapshot restores the raw per-action
// credit structure, which Add destructively restricts to V-S; the prefix
// is stored as data precisely so the engine itself stays unrestricted),
// and the lineage must describe exactly the log the engine has scanned.
func (e *Engine) checkSnapshotArgs(lin Lineage, prefix *SeedPrefix) error {
	if len(e.seeds) > 0 {
		return errors.New("core: cannot snapshot an engine with committed seeds")
	}
	if lin.NumUsers != e.numUsers || lin.NumActions != e.NumActions() {
		return fmt.Errorf("core: snapshot lineage covers %d users/%d actions, engine has scanned %d/%d",
			lin.NumUsers, lin.NumActions, e.numUsers, e.NumActions())
	}
	// Mirror the reader's bound: a longer name would write a CRC-valid
	// file that every subsequent load refuses.
	if len(lin.Dataset) > 1<<16 {
		return fmt.Errorf("core: snapshot dataset name is %d bytes, limit is %d", len(lin.Dataset), 1<<16)
	}
	if prefix != nil {
		if err := prefix.Validate(e.numUsers); err != nil {
			return err
		}
	}
	return nil
}

// writeSnapshotHeader emits the sections shared by every version: magic,
// version word, lineage, params, and the per-user action lists.
func writeSnapshotHeader(sw *snapWriter, e *Engine, lin Lineage, version uint32) error {
	sw.bytes([]byte(snapshotMagic))
	sw.u32(version)

	sw.str(lin.Dataset)
	sw.u32(uint32(lin.NumUsers))
	sw.u32(uint32(lin.NumActions))
	sw.u64(lin.GraphHash)
	sw.u64(lin.LogHash)

	sw.f64(e.lambda)
	switch credit := e.credit.(type) {
	case SimpleCredit:
		sw.u8(creditTagSimple)
	case *TimeAwareCredit:
		sw.u8(creditTagTimeAware)
		sw.u32(uint32(len(credit.infl)))
		for _, v := range credit.infl {
			sw.f64(v)
		}
		edges := make([]graph.Edge, 0, len(credit.tau))
		for ed := range credit.tau {
			edges = append(edges, ed)
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		sw.u32(uint32(len(edges)))
		for _, ed := range edges {
			sw.u32(uint32(ed.From))
			sw.u32(uint32(ed.To))
			sw.f64(credit.tau[ed])
		}
	default:
		return fmt.Errorf("core: cannot snapshot engine with credit model %T", e.credit)
	}

	for u := 0; u < e.numUsers; u++ {
		sw.u32(uint32(len(e.actionsOf[u])))
		sw.i32s(e.actionsOf[u])
	}
	return nil
}

// writeSeedPrefixSection emits the seed-prefix section (count 0 = none).
func writeSeedPrefixSection(sw *snapWriter, prefix *SeedPrefix) {
	if prefix == nil {
		sw.u32(0)
		return
	}
	sw.u32(uint32(len(prefix.Seeds)))
	for i, x := range prefix.Seeds {
		sw.u32(uint32(x))
		sw.f64(prefix.Gains[i])
		sw.u64(uint64(prefix.LookupsAt[i]))
	}
}

// WriteSnapshotPrefix serializes the engine, its lineage, and an optional
// computed seed prefix in the current (version 3) binary snapshot format.
// The base section is written in its canonical mapped-addressable layout:
// contiguous in-order blocks behind a per-action offset table, 16-byte
// directory records and cells, everything 8-aligned — so the very bytes
// this writer emits are what OpenSnapshotMapped later serves queries from
// without parsing.
func (e *Engine) WriteSnapshotPrefix(w io.Writer, lin Lineage, prefix *SeedPrefix) error {
	return e.WriteSnapshotSketch(w, lin, prefix, nil)
}

// WriteSnapshotSketch serializes the engine, its lineage, an optional
// seed prefix, and an optional RR sketch. With a non-empty sketch the
// file is written as version 5 (version 3 plus the sketch section); with
// sk nil (or empty) it is the byte-identical version-3 file
// WriteSnapshotPrefix has always produced, so sketchless snapshots stay
// readable by older binaries.
func (e *Engine) WriteSnapshotSketch(w io.Writer, lin Lineage, prefix *SeedPrefix, sk *RRSketch) error {
	return e.WriteSnapshotProv(w, lin, prefix, sk, nil)
}

// WriteSnapshotProv serializes the engine, its lineage, an optional seed
// prefix, an optional RR sketch, and an optional provenance index. With
// a non-empty index the file is written as version 6 (version 3 plus the
// flags byte, the sketch section when one rides along, and the
// provenance section); with prov nil (or empty) it is the byte-identical
// version-3 or version-5 file WriteSnapshotSketch has always produced,
// so provless snapshots stay readable by older binaries.
func (e *Engine) WriteSnapshotProv(w io.Writer, lin Lineage, prefix *SeedPrefix, sk *RRSketch, prov *ProvIndex) error {
	if e.partitioned {
		// A partition's base holds only its own rows; writing it under the
		// full-model version would produce a file every reader trusts as
		// the complete credit structure.
		return fmt.Errorf("core: cannot write a partition engine (rows [%d,%d)) as a full snapshot; use WriteSnapshotSlice", e.partLo, e.partHi)
	}
	version := uint32(snapshotVersion)
	if sk != nil && len(sk.Sets) > 0 {
		if err := sk.Validate(e.numUsers); err != nil {
			return err
		}
		version = snapshotVersionSketch
	} else {
		sk = nil
	}
	if prov != nil && prov.Pairs() > 0 {
		if err := prov.Validate(e.numUsers, e.NumActions()); err != nil {
			return err
		}
		version = snapshotVersionProv
	} else {
		prov = nil
	}
	return e.writeSnapshotRows(w, lin, prefix, version, 0, e.numUsers, sk, prov)
}

// WriteSnapshotSlice serializes the engine's influencer rows in [lo, hi)
// as a version-4 partition slice: the identical header (full lineage,
// params, per-user action lists, seed prefix) plus the declared row
// range, with the base section restricted to the range's rows in the same
// canonical offset-addressed layout — so a slice mmaps exactly like a
// full version-3 file. A contiguous set of slices covering [0, NumNodes())
// reassembles the model with no row stored twice. A full engine may write
// any valid range; a partition engine re-encodes only its own range, and
// the encoding of a given engine remains unique (saving a loaded slice
// reproduces the file byte for byte).
func (e *Engine) WriteSnapshotSlice(w io.Writer, lin Lineage, prefix *SeedPrefix, lo, hi int) error {
	if lo < 0 || lo > hi || hi > e.numUsers {
		return fmt.Errorf("core: slice rows [%d,%d) outside the universe [0,%d)", lo, hi, e.numUsers)
	}
	if e.partitioned && (lo != e.partLo || hi != e.partHi) {
		return fmt.Errorf("core: partition engine holds rows [%d,%d), cannot write slice [%d,%d)", e.partLo, e.partHi, lo, hi)
	}
	return e.writeSnapshotRows(w, lin, prefix, snapshotVersionSlice, lo, hi, nil, nil)
}

// writeSnapshotRows is the shared body of WriteSnapshotProv (version 3,
// every row; version 5 when an RR sketch rides along; version 6 when a
// provenance index does) and WriteSnapshotSlice (version 4, rows in
// [lo, hi) plus the range record in the header).
func (e *Engine) writeSnapshotRows(w io.Writer, lin Lineage, prefix *SeedPrefix, version uint32, lo, hi int, sk *RRSketch, prov *ProvIndex) error {
	if err := e.checkSnapshotArgs(lin, prefix); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	sw := &snapWriter{w: bw}
	if err := writeSnapshotHeader(sw, e, lin, version); err != nil {
		return err
	}
	writeSeedPrefixSection(sw, prefix)
	if version == snapshotVersionSlice {
		sw.u32(uint32(lo))
		sw.u32(uint32(hi))
	}
	if version == snapshotVersionSketch {
		writeSketchSection(sw, sk)
	}
	if version == snapshotVersionProv {
		flags := provFlagProv
		if sk != nil {
			flags |= provFlagSketch
		}
		sw.u8(flags)
		if sk != nil {
			writeSketchSection(sw, sk)
		}
		writeProvSection(sw, prov)
	}

	// Header CRC over everything written so far, then zero padding so the
	// base section starts 8-aligned. Capture the CRC before writing it —
	// sw.u32 folds what it writes into the running (footer) CRC.
	headerCRC := sw.crc
	sw.u32(headerCRC)
	if pad := int((8 - sw.n%8) % 8); pad > 0 {
		sw.bytes(make([]byte, pad))
	}

	// Per-shard row windows: the directory index range within [lo, hi).
	// For a full snapshot that is every row of every shard.
	type window struct {
		ri0, ri1 int
		ents     uint64
	}
	wins := make([]window, len(e.uc))
	for a, st := range e.uc {
		ri0, ri1 := rowIndexRange(st, int32(lo), int32(hi))
		var ents uint64
		for ri := ri0; ri < ri1; ri++ {
			ents += uint64(len(st.rowAt(ri)))
		}
		wins[a] = window{ri0: ri0, ri1: ri1, ents: ents}
	}

	// Offset table: canonical positions, blocks contiguous in action order.
	off := uint64(len(e.uc)) * 8
	for a := range e.uc {
		sw.u64(off)
		off += 8 + (uint64(wins[a].ri1-wins[a].ri0)+wins[a].ents)*16
	}

	// Blocks: row directory then the cells, both in canonical order with
	// canonical offsets (base-relative).
	cur := uint64(len(e.uc)) * 8
	for a, st := range e.uc {
		win := wins[a]
		nRows := win.ri1 - win.ri0
		sw.u64(uint64(nRows))
		entOff := cur + 8 + uint64(nRows)*16
		for ri := win.ri0; ri < win.ri1; ri++ {
			sw.u32(uint32(st.rowKeyAt(ri)))
			rowLen := len(st.rowAt(ri))
			sw.u32(uint32(rowLen))
			sw.u64(entOff)
			entOff += uint64(rowLen) * 16
		}
		for ri := win.ri0; ri < win.ri1; ri++ {
			row := st.rowAt(ri)
			need := len(row) * 16
			if cap(sw.buf) < need {
				sw.buf = make([]byte, need)
			}
			b := sw.buf[:need]
			for i, en := range row {
				binary.LittleEndian.PutUint32(b[i*16:], uint32(en.u))
				binary.LittleEndian.PutUint32(b[i*16+4:], 0)
				binary.LittleEndian.PutUint64(b[i*16+8:], math.Float64bits(en.c))
			}
			sw.bytes(b)
		}
		cur = entOff
	}

	sw.footer()
	if sw.err != nil {
		return fmt.Errorf("core: write snapshot: %w", sw.err)
	}
	return bw.Flush()
}

// writeSnapshotV2 writes the legacy version-2 format (packed 12-byte
// cells, prefix after the shards, no header CRC or base section). It is
// never used in production — the compatibility tests need a source of
// genuine old-format files now that WriteSnapshotPrefix emits version 3.
func writeSnapshotV2(w io.Writer, e *Engine, lin Lineage, prefix *SeedPrefix) error {
	if err := e.checkSnapshotArgs(lin, prefix); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	sw := &snapWriter{w: bw}
	if err := writeSnapshotHeader(sw, e, lin, snapshotVersionNoBase); err != nil {
		return err
	}

	for _, st := range e.uc {
		nRows := st.numRows()
		sw.u32(uint32(nRows))
		sw.u32(uint32(st.entryCount()))
		for ri := 0; ri < nRows; ri++ {
			row := st.rowAt(ri)
			sw.u32(uint32(st.rowKeyAt(ri)))
			sw.u32(uint32(len(row)))
			need := len(row) * 12
			if cap(sw.buf) < need {
				sw.buf = make([]byte, need)
			}
			b := sw.buf[:need]
			for i, en := range row {
				binary.LittleEndian.PutUint32(b[i*12:], uint32(en.u))
				binary.LittleEndian.PutUint64(b[i*12+4:], math.Float64bits(en.c))
			}
			sw.bytes(b)
		}
	}

	writeSeedPrefixSection(sw, prefix)
	sw.footer()
	if sw.err != nil {
		return fmt.Errorf("core: write snapshot: %w", sw.err)
	}
	return bw.Flush()
}

// snapCursor decodes the snapshot payload from an in-memory buffer with
// sticky error handling. The whole file is read (and CRC-verified) before
// parsing starts, so every declared count can be validated against the
// bytes actually present before anything is allocated — a corrupt header
// can neither over-allocate nor panic.
type snapCursor struct {
	b   []byte
	off int
	err error
}

func (sc *snapCursor) fail(format string, args ...any) {
	if sc.err == nil {
		sc.err = fmt.Errorf("core: snapshot: "+format, args...)
	}
}

func (sc *snapCursor) remaining() int { return len(sc.b) - sc.off }

// take returns the next n payload bytes, or nil after flagging truncation.
func (sc *snapCursor) take(n int) []byte {
	if sc.err != nil {
		return nil
	}
	if n < 0 || sc.remaining() < n {
		sc.fail("truncated input: need %d bytes, have %d", n, sc.remaining())
		return nil
	}
	b := sc.b[sc.off : sc.off+n]
	sc.off += n
	return b
}

func (sc *snapCursor) u8() uint8 {
	b := sc.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (sc *snapCursor) u32() uint32 {
	b := sc.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (sc *snapCursor) u64() uint64 {
	b := sc.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (sc *snapCursor) f64() float64 { return math.Float64frombits(sc.u64()) }

// count reads an element count whose records occupy recSize bytes each,
// rejecting values the remaining payload cannot possibly hold.
func (sc *snapCursor) count(what string, recSize int) int {
	v := sc.u32()
	if sc.err != nil {
		return 0
	}
	if v > maxSnapshotDim || int64(v)*int64(recSize) > int64(sc.remaining()) {
		sc.fail("%s count %d exceeds the remaining %d payload bytes", what, v, sc.remaining())
		return 0
	}
	return int(v)
}

func (sc *snapCursor) str(what string) string {
	n := sc.u32()
	if sc.err == nil && n > 1<<16 {
		sc.fail("%s length %d exceeds sanity bound", what, n)
		return ""
	}
	return string(sc.take(int(n)))
}

// parseSnapshotHeader parses the lineage and params sections (the cursor
// must sit just past the version word). Shared by every reader version.
func parseSnapshotHeader(sc *snapCursor) (Lineage, float64, CreditModel, error) {
	var lin Lineage
	lin.Dataset = sc.str("dataset name")
	lin.NumUsers = sc.count("user", 4)
	lin.NumActions = sc.count("action", 4)
	lin.GraphHash = sc.u64()
	lin.LogHash = sc.u64()

	lambda := sc.f64()
	var credit CreditModel
	switch tag := sc.u8(); {
	case sc.err != nil:
	case tag == creditTagSimple:
		credit = SimpleCredit{}
	case tag == creditTagTimeAware:
		ta := &TimeAwareCredit{}
		inflLen := sc.count("influenceability", 8)
		if sc.err == nil && inflLen < lin.NumUsers {
			return lin, 0, nil, fmt.Errorf("core: snapshot: influenceability table covers %d users, lineage declares %d", inflLen, lin.NumUsers)
		}
		ta.infl = make([]float64, inflLen)
		for i := range ta.infl {
			ta.infl[i] = sc.f64()
		}
		tauCount := sc.count("tau", 16)
		ta.tau = make(map[graph.Edge]float64, tauCount)
		prev := graph.Edge{From: -1, To: -1}
		for i := 0; i < tauCount && sc.err == nil; i++ {
			ed := graph.Edge{From: graph.NodeID(sc.u32()), To: graph.NodeID(sc.u32())}
			tau := sc.f64()
			if sc.err != nil {
				break
			}
			if ed.From < 0 || ed.To < 0 {
				sc.fail("negative tau edge (%d,%d)", ed.From, ed.To)
				break
			}
			if ed.From < prev.From || (ed.From == prev.From && ed.To <= prev.To) {
				sc.fail("tau records out of order at edge (%d,%d)", ed.From, ed.To)
				break
			}
			prev = ed
			ta.tau[ed] = tau
		}
		credit = ta
	default:
		return lin, 0, nil, fmt.Errorf("core: snapshot: unknown credit model tag %d", tag)
	}
	if sc.err != nil {
		return lin, 0, nil, sc.err
	}
	return lin, lambda, credit, nil
}

// newSnapshotEngine allocates the skeleton every reader fills: an engine
// whose base is the full scanned range, with every shard shared (frozen).
func newSnapshotEngine(lin Lineage, lambda float64, credit CreditModel) *Engine {
	return &Engine{
		numUsers:    lin.NumUsers,
		au:          make([]int32, lin.NumUsers),
		actionsOf:   make([][]int32, lin.NumUsers),
		uc:          make([]rowStore, 0, lin.NumActions),
		owned:       make([]bool, lin.NumActions),
		sc:          make([]map[int32]float64, lin.NumActions),
		lambda:      lambda,
		credit:      credit,
		baseActions: lin.NumActions,
	}
}

// parseUsers parses the per-user action lists into e.actionsOf and the Au
// normalizers.
func parseUsers(sc *snapCursor, lin Lineage, e *Engine) error {
	for u := 0; u < lin.NumUsers && sc.err == nil; u++ {
		n := sc.count("user action", 4)
		row := make([]int32, n)
		prev := int32(-1)
		for i := range row {
			a := int32(sc.u32())
			if sc.err != nil {
				break
			}
			if a < 0 || int(a) >= lin.NumActions {
				sc.fail("user %d action id %d out of range [0,%d)", u, a, lin.NumActions)
				break
			}
			if a <= prev {
				sc.fail("user %d action ids out of order at %d", u, a)
				break
			}
			prev = a
			row[i] = a
		}
		e.actionsOf[u] = row
		e.au[u] = int32(n)
	}
	return sc.err
}

// parseSeedPrefix parses the seed-prefix section. The structural rules
// match SeedPrefix.Validate, so the on-disk encoding of a given prefix is
// unique and a re-save reproduces the section byte for byte.
func parseSeedPrefix(sc *snapCursor, numUsers int) (*SeedPrefix, error) {
	n := sc.count("seed prefix", 20)
	if n == 0 || sc.err != nil {
		return nil, sc.err
	}
	p := &SeedPrefix{
		Seeds:     make([]graph.NodeID, 0, n),
		Gains:     make([]float64, 0, n),
		LookupsAt: make([]int64, 0, n),
	}
	for i := 0; i < n && sc.err == nil; i++ {
		node := graph.NodeID(sc.u32())
		gain := sc.f64()
		lookups := sc.u64()
		if sc.err != nil {
			break
		}
		if lookups > math.MaxInt64 {
			sc.fail("seed prefix lookup count %d at %d overflows", lookups, i)
			break
		}
		p.Seeds = append(p.Seeds, node)
		p.Gains = append(p.Gains, gain)
		p.LookupsAt = append(p.LookupsAt, int64(lookups))
	}
	if sc.err == nil {
		if err := p.Validate(numUsers); err != nil {
			sc.err = err
		}
	}
	return p, sc.err
}

// ReadSnapshot parses a snapshot written by WriteSnapshot, discarding any
// stored seed prefix. See ReadSnapshotPrefix.
func ReadSnapshot(r io.Reader) (*Engine, Lineage, error) {
	e, lin, _, err := ReadSnapshotPrefix(r)
	return e, lin, err
}

// ReadSnapshotPrefix parses a snapshot written by WriteSnapshotPrefix,
// discarding any stored RR sketch. See ReadSnapshotSketch.
func ReadSnapshotPrefix(r io.Reader) (*Engine, Lineage, *SeedPrefix, error) {
	e, lin, prefix, _, err := ReadSnapshotSketch(r)
	return e, lin, prefix, err
}

// ReadSnapshotSketch parses a snapshot written by WriteSnapshotSketch,
// discarding any stored provenance index. See ReadSnapshotProv.
func ReadSnapshotSketch(r io.Reader) (*Engine, Lineage, *SeedPrefix, *RRSketch, error) {
	e, lin, prefix, sketch, _, err := ReadSnapshotProv(r)
	return e, lin, prefix, sketch, err
}

// ReadSnapshotProv parses a snapshot written by WriteSnapshotProv and
// rebuilds the engine heap-resident: the column mirror of every shard and
// the Au normalizers are reconstructed deterministically from the stored
// rows. Any supported version (1 through 6) is accepted. The returned
// engine is frozen (every shard shared) with the full scanned range as its
// base, has no committed seeds, and is bit-for-bit equivalent to the saved
// engine; the returned prefix is the stored seed prefix, or nil when the
// file carries none (always for version-1 files), the returned sketch
// is the stored RR sketch, or nil for files not carrying one, and the
// returned prov is the stored provenance index, or nil for every version
// below 6. Corrupt or truncated input — bad magic, impossible counts,
// unordered keys, a CRC mismatch, trailing garbage, a malformed prefix,
// sketch, or provenance section — is rejected with an error, never a
// panic or an unbounded allocation. For serving straight off the file
// without this parse, see OpenSnapshotMapped.
func ReadSnapshotProv(r io.Reader) (*Engine, Lineage, *SeedPrefix, *RRSketch, *ProvIndex, error) {
	var lin Lineage
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, lin, nil, nil, nil, fmt.Errorf("core: snapshot: read: %w", err)
	}
	if len(data) < len(snapshotMagic)+4+4 {
		return nil, lin, nil, nil, nil, errors.New("core: snapshot: truncated input: shorter than the fixed header")
	}
	if !IsSnapshotHeader(data) {
		return nil, lin, nil, nil, nil, errors.New("core: snapshot: bad magic (not a snapshot file)")
	}
	// Integrity first: the CRC footer covers the whole payload, so every
	// later structural check runs on bytes known to be exactly what the
	// writer produced (or the file is rejected here, wholesale).
	payload, footer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(footer), crc32.ChecksumIEEE(payload); got != want {
		return nil, lin, nil, nil, nil, fmt.Errorf("core: snapshot: checksum mismatch (file %08x, computed %08x): corrupt or truncated input", got, want)
	}

	version := binary.LittleEndian.Uint32(data[len(snapshotMagic):])
	switch version {
	case snapshotVersion, snapshotVersionSlice, snapshotVersionSketch, snapshotVersionProv:
		return parseSnapshotV3(data, false)
	case snapshotVersionNoBase, snapshotVersionNoPrefix:
		e, l, p, err := readLegacySnapshot(payload, version)
		return e, l, p, nil, nil, err
	default:
		return nil, lin, nil, nil, nil, fmt.Errorf("core: snapshot: unsupported version %d (supported: 1 through %d)", version, snapshotVersionProv)
	}
}

// readLegacySnapshot parses the version-1/2 payload (footer already
// verified and stripped): shards as packed 12-byte cells, then — for
// version 2 — the seed-prefix section.
func readLegacySnapshot(payload []byte, version uint32) (*Engine, Lineage, *SeedPrefix, error) {
	sc := &snapCursor{b: payload, off: len(snapshotMagic) + 4}
	lin, lambda, credit, err := parseSnapshotHeader(sc)
	if err != nil {
		return nil, lin, nil, err
	}
	e := newSnapshotEngine(lin, lambda, credit)
	if err := parseUsers(sc, lin, e); err != nil {
		return nil, lin, nil, err
	}

	// Scratch for the column-mirror rebuild, reused across shards: per-user
	// column sizes and fill cursors, reset only for the users a shard
	// touched. This keeps the rebuild allocation-light and map-free — it is
	// the hot loop of cold start.
	colSize := make([]int32, lin.NumUsers)
	colPos := make([]int32, lin.NumUsers)

	for a := 0; a < lin.NumActions && sc.err == nil; a++ {
		ua := &ucAction{}
		rowCount := sc.count("row", 8)
		entryTotal := sc.count("shard entry", 12)
		ua.rowKey = make([]int32, 0, rowCount)
		ua.rows = make([][]ucEntry, 0, rowCount)
		rowLens := make([]int, 0, rowCount)
		flat := make([]ucEntry, 0, entryTotal)
		var touched []int32
		prevKey := int32(-1)
		for ri := 0; ri < rowCount && sc.err == nil; ri++ {
			v := int32(sc.u32())
			if sc.err != nil {
				break
			}
			if v < 0 || int(v) >= lin.NumUsers {
				sc.fail("action %d row key %d out of range [0,%d)", a, v, lin.NumUsers)
				break
			}
			if v <= prevKey {
				sc.fail("action %d row keys out of order at %d", a, v)
				break
			}
			prevKey = v
			n := sc.count("entry", 12)
			if sc.err != nil {
				break
			}
			if n == 0 {
				sc.fail("action %d row %d is empty", a, v)
				break
			}
			if len(flat)+n > entryTotal {
				sc.fail("action %d rows exceed the declared entry total %d", a, entryTotal)
				break
			}
			cells := sc.take(n * 12)
			if cells == nil {
				break
			}
			start := len(flat)
			prevU := int32(-1)
			for off := 0; off < len(cells); off += 12 {
				u := int32(binary.LittleEndian.Uint32(cells[off:]))
				if u < 0 || int(u) >= lin.NumUsers {
					sc.fail("action %d entry id %d out of range [0,%d)", a, u, lin.NumUsers)
					break
				}
				if u <= prevU {
					sc.fail("action %d row %d entries out of order at %d", a, v, u)
					break
				}
				prevU = u
				if colSize[u] == 0 {
					touched = append(touched, u)
				}
				colSize[u]++
				flat = append(flat, ucEntry{u: u, c: math.Float64frombits(binary.LittleEndian.Uint64(cells[off+4:]))})
			}
			if sc.err != nil {
				break
			}
			ua.rowKey = append(ua.rowKey, v)
			rowLens = append(rowLens, len(flat)-start)
		}
		if sc.err != nil {
			break
		}
		if len(flat) != entryTotal {
			sc.fail("action %d holds %d entries, header declared %d", a, len(flat), entryTotal)
			break
		}
		// Carve the per-row windows out of the flat cell store. Capacity is
		// clamped per window, so a later copy-on-write mutation of one row
		// can never bleed into its neighbor.
		off := 0
		for _, n := range rowLens {
			ua.rows = append(ua.rows, flat[off:off+n:off+n])
			off += n
		}
		e.entries += int64(len(flat))
		fillColumns(ua, touched, colSize, colPos)
		e.uc = append(e.uc, ua)
	}
	if sc.err != nil {
		return nil, lin, nil, sc.err
	}

	// Seed-prefix section (version >= 2 only); version-1 files end at the
	// shards.
	var prefix *SeedPrefix
	if version >= snapshotVersionNoBase {
		prefix, err = parseSeedPrefix(sc, lin.NumUsers)
		if err != nil {
			return nil, lin, nil, err
		}
	}
	if sc.remaining() != 0 {
		return nil, lin, nil, errors.New("core: snapshot: trailing data after payload")
	}
	return e, lin, prefix, nil
}

// fillColumns rebuilds ua's column mirror from its finished rows using the
// shared universe-sized scratch: colSize holds each touched user's column
// length on entry and is zeroed again before returning; colPos is pure
// scratch. Influenced ids end up sorted, and each column's influencer list
// accumulates in ascending order because the outer row walk is ascending.
func fillColumns(ua *ucAction, touched []int32, colSize, colPos []int32) {
	slices.Sort(touched)
	ua.colKey = touched
	ua.cols = make([][]int32, len(touched))
	total := 0
	for _, u := range touched {
		total += int(colSize[u])
	}
	colBack := make([]int32, total)
	off := 0
	for i, u := range touched {
		n := int(colSize[u])
		ua.cols[i] = colBack[off : off : off+n]
		colPos[u] = int32(i)
		off += n
	}
	for ri, v := range ua.rowKey {
		for _, en := range ua.rows[ri] {
			ci := colPos[en.u]
			ua.cols[ci] = append(ua.cols[ci], v)
		}
	}
	for _, u := range touched {
		colSize[u] = 0
	}
}

// decodeHeapShards decodes validated version-3 extents into heap ucActions
// with rebuilt column mirrors — the heap half of the version-3 read path,
// also the fallback when a mapped open runs on a platform whose memory
// layout cannot alias the base section. validateBaseSection has already
// vetted every offset, key, and id, so the walk here is unchecked.
func decodeHeapShards(e *Engine, payload []byte, extents []baseExtent, numUsers int) {
	colSize := make([]int32, numUsers)
	colPos := make([]int32, numUsers)
	for _, ext := range extents {
		ua := &ucAction{
			rowKey: make([]int32, ext.rowCount),
			rows:   make([][]ucEntry, ext.rowCount),
		}
		flat := make([]ucEntry, 0, ext.entCount)
		var touched []int32
		off := ext.entStart
		for ri := 0; ri < ext.rowCount; ri++ {
			rec := payload[ext.dirStart+ri*16:]
			ua.rowKey[ri] = int32(binary.LittleEndian.Uint32(rec))
			n := int(binary.LittleEndian.Uint32(rec[4:]))
			start := len(flat)
			for c := 0; c < n; c++ {
				cell := payload[off:]
				u := int32(binary.LittleEndian.Uint32(cell))
				if colSize[u] == 0 {
					touched = append(touched, u)
				}
				colSize[u]++
				flat = append(flat, ucEntry{u: u, c: math.Float64frombits(binary.LittleEndian.Uint64(cell[8:]))})
				off += 16
			}
			ua.rows[ri] = flat[start:len(flat):len(flat)]
		}
		fillColumns(ua, touched, colSize, colPos)
		e.uc = append(e.uc, ua)
	}
}
