//go:build !unix

package core

import (
	"fmt"
	"os"
)

// mmapFile on platforms without the unix mmap syscall reads the file into
// one heap buffer. OpenSnapshotMapped still works — same layout, same
// zero-parse open — but the pages are heap-resident rather than
// file-backed, and the release function just drops the reference.
func mmapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("core: mmap snapshot: %w", err)
	}
	return data, func() error { return nil }, nil
}
