package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"credist/internal/graph"
	"credist/internal/seedsel"
)

// walkSketch draws count credit-walk samples into a sketch, the same way
// the approximate tier's collector would for a single stripe.
func walkSketch(t *testing.T, src *CreditWalkSource, count int, seed uint64) *RRSketch {
	t.Helper()
	walker := src.NewWalker()
	rng := rand.New(rand.NewPCG(seed, 0x415a))
	sk := &RRSketch{Seed: seed, Roots: src.Roots()}
	for i := 0; i < count; i++ {
		sk.Sets = append(sk.Sets, walker(rng))
	}
	return sk
}

// TestCreditWalkUnbiased is the correctness anchor for the approximate
// tier: the scaled hit fraction of reverse credit walks converges to the
// exact Evaluator.Spread value, for several seed sets including seeds
// that are themselves walk roots and seeds that are not.
func TestCreditWalkUnbiased(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 7))
	g, log := randomInstance(rng, 40, 25)
	credit := LearnTimeAware(g, log)
	ev := NewEvaluator(g, log, credit)
	src, err := ev.CreditWalks()
	if err != nil {
		t.Fatalf("CreditWalks: %v", err)
	}
	if src.NumNodes() != 40 || src.Roots() < 1 || src.Roots() > 40 {
		t.Fatalf("source shape %d nodes / %d roots", src.NumNodes(), src.Roots())
	}

	const samples = 60000
	sk := walkSketch(t, src, samples, 5)
	for _, seeds := range [][]graph.NodeID{
		{0, 1, 2},
		{5, 11, 23, 31},
		seedsel.CELF(NewEngine(g, log, Options{Lambda: 0.001, Credit: credit}), 3).Seeds,
	} {
		exact := ev.Spread(seeds)
		inS := make(map[graph.NodeID]bool, len(seeds))
		for _, s := range seeds {
			inS[s] = true
		}
		hits := 0
		for _, set := range sk.Sets {
			for _, v := range set {
				if inS[v] {
					hits++
					break
				}
			}
		}
		p := float64(hits) / float64(samples)
		est := float64(sk.Roots) * p
		// Three-sigma band around the exact value (plus a small absolute
		// floor for near-zero spreads); a biased walker blows straight
		// through this at 60k samples.
		sigma := float64(sk.Roots) * math.Sqrt(p*(1-p)/float64(samples))
		if tol := 3*sigma + 0.05; math.Abs(est-exact) > tol {
			t.Fatalf("seeds %v: walk estimate %g vs exact spread %g (tol %g, hits %d)",
				seeds, est, exact, tol, hits)
		}
	}
}

// TestCreditWalkDeterministic pins that walks are a pure function of the
// rng stream: identical seeds reproduce identical paths.
func TestCreditWalkDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 3))
	g, log := randomInstance(rng, 30, 14)
	ev := NewEvaluator(g, log, LearnTimeAware(g, log))
	src, err := ev.CreditWalks()
	if err != nil {
		t.Fatalf("CreditWalks: %v", err)
	}
	a := walkSketch(t, src, 500, 9)
	b := walkSketch(t, src, 500, 9)
	if !reflect.DeepEqual(a.Sets, b.Sets) {
		t.Fatal("identical seeds produced different walk paths")
	}
	for i, set := range a.Sets {
		if len(set) == 0 {
			t.Fatalf("walk %d returned an empty path", i)
		}
		seen := make(map[graph.NodeID]bool, len(set))
		for _, v := range set {
			if seen[v] {
				t.Fatalf("walk %d revisited node %d", i, v)
			}
			seen[v] = true
		}
	}
}

// TestSnapshotSketchRoundTrip pins the version-5 format: a snapshot
// written with a sketch reads the sketch back bit-identically through
// both the heap reader and the mapped open, the engine and prefix are
// untouched, re-encoding is byte-identical, and a sketchless write stays
// byte-identical version-3 (older readers keep working on it).
func TestSnapshotSketchRoundTrip(t *testing.T) {
	g, log, e, lin := snapshotInstance(t, 91, 50, 30)
	sel := seedsel.CELF(e.Clone(), 4)
	prefix := &SeedPrefix{Seeds: sel.Seeds, Gains: sel.Gains, LookupsAt: sel.LookupsAt}
	src, err := NewEvaluator(g, log, e.CreditModel()).CreditWalks()
	if err != nil {
		t.Fatalf("CreditWalks: %v", err)
	}
	sk := walkSketch(t, src, 200, 17)

	var buf bytes.Buffer
	if err := e.WriteSnapshotSketch(&buf, lin, prefix, sk); err != nil {
		t.Fatalf("WriteSnapshotSketch: %v", err)
	}
	data := buf.Bytes()
	if v := binary.LittleEndian.Uint32(data[len(snapshotMagic):]); v != snapshotVersionSketch {
		t.Fatalf("sketch snapshot stamped version %d, want %d", v, snapshotVersionSketch)
	}

	back, backLin, pfx, got, err := ReadSnapshotSketch(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadSnapshotSketch: %v", err)
	}
	if backLin != lin {
		t.Fatalf("lineage round trip: %+v != %+v", backLin, lin)
	}
	if got == nil || got.Seed != sk.Seed || got.Roots != sk.Roots || !reflect.DeepEqual(got.Sets, sk.Sets) {
		t.Fatal("heap-read sketch differs from the written sketch")
	}
	if pfx == nil || !reflect.DeepEqual(pfx.Seeds, prefix.Seeds) {
		t.Fatalf("seed prefix lost alongside the sketch: %+v", pfx)
	}
	requireEnginesBitIdentical(t, e, back, 6)

	var again bytes.Buffer
	if err := back.WriteSnapshotSketch(&again, backLin, pfx, got); err != nil {
		t.Fatalf("re-serialize: %v", err)
	}
	if !bytes.Equal(again.Bytes(), data) {
		t.Fatal("re-serialized sketch snapshot is not byte-identical")
	}

	// Mapped open returns the identical sketch.
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	meng, mlin, mpfx, msk, ms, err := OpenSnapshotMappedSketch(path)
	if err != nil {
		t.Fatalf("OpenSnapshotMappedSketch: %v", err)
	}
	defer ms.Close()
	if mlin != lin || mpfx == nil || msk == nil {
		t.Fatalf("mapped open dropped a section: lin %+v pfx %v sketch %v", mlin, mpfx != nil, msk != nil)
	}
	if msk.Seed != sk.Seed || msk.Roots != sk.Roots || !reflect.DeepEqual(msk.Sets, sk.Sets) {
		t.Fatal("mapped-read sketch differs from the written sketch")
	}
	requireEnginesBitIdentical(t, e, meng, 6)

	// The legacy entry points still read a version-5 file, just without
	// surfacing the sketch.
	leng, _, lpfx, err := ReadSnapshotPrefix(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadSnapshotPrefix on v5: %v", err)
	}
	if lpfx == nil || leng.NumNodes() != e.NumNodes() {
		t.Fatal("legacy reader mangled a v5 snapshot")
	}

	// No sketch attached -> byte-identical version-3 output.
	var plain, viaSketch bytes.Buffer
	if err := e.WriteSnapshotPrefix(&plain, lin, prefix); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteSnapshotSketch(&viaSketch, lin, prefix, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), viaSketch.Bytes()) {
		t.Fatal("nil-sketch write diverged from the plain prefix write")
	}
	if v := binary.LittleEndian.Uint32(plain.Bytes()[len(snapshotMagic):]); v != snapshotVersion {
		t.Fatalf("sketchless snapshot stamped version %d, want %d", v, snapshotVersion)
	}
}

// TestSnapshotSketchRejectsCorruption drives both readers with
// structurally invalid sketch sections (CRC-refreshed so the validators,
// not the checksums, do the rejecting) and with writer-side validation.
func TestSnapshotSketchRejectsCorruption(t *testing.T) {
	g, log, e, lin := snapshotInstance(t, 92, 30, 18)
	src, err := NewEvaluator(g, log, e.CreditModel()).CreditWalks()
	if err != nil {
		t.Fatal(err)
	}
	sk := walkSketch(t, src, 20, 3)
	var buf bytes.Buffer
	if err := e.WriteSnapshotSketch(&buf, lin, nil, sk); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Writer refuses invalid sketches outright.
	for _, bad := range []*RRSketch{
		{Seed: 1, Roots: 0, Sets: sk.Sets},
		{Seed: 1, Roots: e.NumNodes() + 1, Sets: sk.Sets},
		{Seed: 1, Roots: 1, Sets: [][]graph.NodeID{{}}},
		{Seed: 1, Roots: 1, Sets: [][]graph.NodeID{{graph.NodeID(e.NumNodes())}}},
	} {
		if err := e.WriteSnapshotSketch(&bytes.Buffer{}, lin, nil, bad); err == nil {
			t.Fatalf("writer accepted invalid sketch %+v", bad)
		}
	}

	// Locate the sketch section as the fuzz seeds do: replay the header
	// parse up to the section start.
	sc := &snapCursor{b: data[:len(data)-4], off: len(snapshotMagic) + 4}
	lin5, lambda5, credit5, err := parseSnapshotHeader(sc)
	if err != nil {
		t.Fatal(err)
	}
	tmp := newSnapshotEngine(lin5, lambda5, credit5)
	if err := parseUsers(sc, lin5, tmp); err != nil {
		t.Fatal(err)
	}
	if _, err := parseSeedPrefix(sc, lin5.NumUsers); err != nil {
		t.Fatal(err)
	}
	skOff := sc.off
	sketchSize := 8 + 4 + 4
	for _, set := range sk.Sets {
		sketchSize += 4 + 4*len(set)
	}
	hdrCRCOff := skOff + sketchSize

	dir := t.TempDir()
	expectReject := func(name string, contents []byte) {
		t.Helper()
		if _, _, _, _, err := ReadSnapshotSketch(bytes.NewReader(contents)); err == nil {
			t.Fatalf("%s: heap reader accepted corrupt sketch", name)
		}
		path := filepath.Join(dir, name+".bin")
		if err := os.WriteFile(path, contents, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, _, _, ms, err := OpenSnapshotMappedSketch(path)
		if err == nil {
			ms.Close()
			t.Fatalf("%s: mapped open accepted corrupt sketch", name)
		}
	}
	corruptU32 := func(name string, off int, val uint32) {
		bad := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(bad[off:], val)
		binary.LittleEndian.PutUint32(bad[hdrCRCOff:], crc32.ChecksumIEEE(bad[:hdrCRCOff]))
		binary.LittleEndian.PutUint32(bad[len(bad)-4:], crc32.ChecksumIEEE(bad[:len(bad)-4]))
		expectReject(name, bad)
	}
	corruptU32("zero-roots", skOff+8, 0)
	corruptU32("huge-roots", skOff+8, 1<<20)
	corruptU32("zero-count", skOff+12, 0)
	corruptU32("huge-count", skOff+12, 1<<30)
	corruptU32("zero-sample-len", skOff+16, 0)
	corruptU32("node-out-of-range", skOff+20, uint32(e.NumNodes()))

	// Truncation mid-section fails cleanly too.
	expectReject("truncated", data[:skOff+10])
}
