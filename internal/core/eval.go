package core

import (
	"fmt"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

// Evaluator computes the CD spread objective sigma_cd(S) (Eq. 8) for
// arbitrary seed sets directly from the training propagations, without the
// UC structure. It exploits that Gamma_{S,u}(a) is nonzero only for
// actions some seed performed, so evaluating a set touches only the
// propagation DAGs its members participate in. It is the reference
// implementation the Engine is property-tested against, and the tool the
// experiments use to score seed sets chosen by other models (Figure 6) and
// to predict the spread of test-set initiators (Figures 3 and 4).
type Evaluator struct {
	numUsers  int
	au        []int32
	actionsOf [][]int32
	props     []*actionlog.Propagation
	gammas    [][][]float64 // per action, per child, aligned with Parents
	credit    CreditModel   // the rule gammas were computed with
}

// NewEvaluator precomputes propagation DAGs and direct credits for the
// training log. model nil means SimpleCredit.
func NewEvaluator(g *graph.Graph, train *actionlog.Log, model CreditModel) *Evaluator {
	if model == nil {
		model = SimpleCredit{}
	}
	ev := &Evaluator{
		numUsers:  train.NumUsers(),
		au:        make([]int32, train.NumUsers()),
		actionsOf: make([][]int32, train.NumUsers()),
		props:     make([]*actionlog.Propagation, train.NumActions()),
		gammas:    make([][][]float64, train.NumActions()),
		credit:    model,
	}
	for u := 0; u < train.NumUsers(); u++ {
		ev.au[u] = int32(train.ActionCount(graph.NodeID(u)))
	}
	for a := 0; a < train.NumActions(); a++ {
		p := actionlog.BuildPropagation(train, g, actionlog.ActionID(a))
		ev.props[a] = p
		ga := make([][]float64, len(p.Users))
		for i, u := range p.Users {
			ev.actionsOf[u] = append(ev.actionsOf[u], actionlog.ActionID(a))
			if len(p.Parents[i]) == 0 {
				continue
			}
			gi := make([]float64, len(p.Parents[i]))
			for k, j := range p.Parents[i] {
				gi[k] = model.Gamma(p, int32(i), j)
			}
			ga[i] = gi
		}
		ev.gammas[a] = ga
	}
	return ev
}

// NumUsers returns the user-universe size.
func (ev *Evaluator) NumUsers() int { return ev.numUsers }

// NumActions returns how many actions the evaluator covers.
func (ev *Evaluator) NumActions() int { return len(ev.props) }

// Extend returns a new evaluator over the combined log, computing
// propagation DAGs and direct credits only for the tail
// [from, log.NumActions()): log must contain the evaluator's existing
// actions as [0, from) and from must equal NumActions(). The receiver is
// untouched — prefix DAGs and gammas are shared, per-user state is
// rebuilt — so concurrent Spread calls on the old evaluator keep their
// answers while the successor is assembled. Spread on the result is
// bit-identical to NewEvaluator over the combined log with the same
// credit rule: the shared prefix structures are per-action, and the A_u
// normalizers are recomputed from the combined log exactly as
// NewEvaluator would.
func (ev *Evaluator) Extend(g *graph.Graph, log *actionlog.Log, from actionlog.ActionID) (*Evaluator, error) {
	if int(from) != len(ev.props) {
		return nil, fmt.Errorf("core: extend from action %d, but evaluator covers %d", from, len(ev.props))
	}
	if log.NumActions() < int(from) {
		return nil, fmt.Errorf("core: combined log has %d actions, fewer than the %d already covered", log.NumActions(), from)
	}
	if log.NumUsers() > g.NumNodes() {
		return nil, fmt.Errorf("core: log universe (%d users) exceeds the graph (%d nodes)", log.NumUsers(), g.NumNodes())
	}
	if log.NumUsers() < ev.numUsers {
		return nil, fmt.Errorf("core: log universe shrank: %d users, evaluator has %d", log.NumUsers(), ev.numUsers)
	}
	ne := &Evaluator{
		numUsers:  log.NumUsers(),
		au:        make([]int32, log.NumUsers()),
		actionsOf: make([][]int32, log.NumUsers()),
		props:     make([]*actionlog.Propagation, log.NumActions()),
		gammas:    make([][][]float64, log.NumActions()),
		credit:    ev.credit,
	}
	for u := 0; u < log.NumUsers(); u++ {
		ne.au[u] = int32(log.ActionCount(graph.NodeID(u)))
	}
	copy(ne.actionsOf, ev.actionsOf)
	copy(ne.props, ev.props)
	copy(ne.gammas, ev.gammas)
	appended := make(map[graph.NodeID][]int32)
	for a := int(from); a < log.NumActions(); a++ {
		p := actionlog.BuildPropagation(log, g, actionlog.ActionID(a))
		ne.props[a] = p
		ga := make([][]float64, len(p.Users))
		for i, u := range p.Users {
			appended[u] = append(appended[u], int32(a))
			if len(p.Parents[i]) == 0 {
				continue
			}
			gi := make([]float64, len(p.Parents[i]))
			for k, j := range p.Parents[i] {
				gi[k] = ev.credit.Gamma(p, int32(i), j)
			}
			ga[i] = gi
		}
		ne.gammas[a] = ga
	}
	// Touched users get fresh action lists; everyone else shares the
	// receiver's (never mutated again).
	for u, tail := range appended {
		merged := make([]int32, 0, len(ne.actionsOf[u])+len(tail))
		ne.actionsOf[u] = append(append(merged, ne.actionsOf[u]...), tail...)
	}
	return ne, nil
}

// Spread computes sigma_cd(S) = sum_u kappa_{S,u}. Each seed with at least
// one training action contributes exactly 1 (its own kappa); every other
// participant u of an action some seed performed contributes
// Gamma_{S,u}(a)/A_u, where Gamma is the forward credit DP over the
// propagation DAG (Eq. 5 generalized to sets).
func (ev *Evaluator) Spread(seeds []graph.NodeID) float64 {
	inS := make(map[graph.NodeID]bool, len(seeds))
	spread := 0.0
	for _, s := range seeds {
		if inS[s] {
			continue
		}
		inS[s] = true
		if ev.au[s] > 0 {
			spread += 1
		}
	}
	// Union of actions any seed performed, deduplicated. The walk follows
	// the input seed order (not map iteration), so the floating-point
	// summation order — and hence the returned spread — is deterministic
	// for a given seed slice.
	seen := make(map[actionlog.ActionID]bool)
	for _, s := range seeds {
		for _, a := range ev.actionsOf[s] {
			if seen[a] {
				continue
			}
			seen[a] = true
			spread += ev.actionSpread(a, inS)
		}
	}
	return spread
}

// actionSpread returns sum over non-seed participants u of action a of
// Gamma_{S,u}(a)/A_u.
func (ev *Evaluator) actionSpread(a actionlog.ActionID, inS map[graph.NodeID]bool) float64 {
	p := ev.props[a]
	val := make([]float64, len(p.Users))
	total := 0.0
	for i, u := range p.Users {
		if inS[u] {
			val[i] = 1
			continue
		}
		sum := 0.0
		gi := ev.gammas[a][i]
		for k, j := range p.Parents[i] {
			if val[j] > 0 {
				sum += val[j] * gi[k]
			}
		}
		val[i] = sum
		if sum > 0 {
			total += sum / float64(ev.au[u])
		}
	}
	return total
}

// SetCredit returns Gamma_{S,u}(a) for diagnostics and tests.
func (ev *Evaluator) SetCredit(a actionlog.ActionID, seeds []graph.NodeID, u graph.NodeID) float64 {
	inS := make(map[graph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		inS[s] = true
	}
	if inS[u] {
		return 1
	}
	p := ev.props[a]
	target := p.Index(u)
	if target < 0 {
		return 0
	}
	val := make([]float64, len(p.Users))
	for i := range p.Users {
		if inS[p.Users[i]] {
			val[i] = 1
			continue
		}
		sum := 0.0
		gi := ev.gammas[a][i]
		for k, j := range p.Parents[i] {
			sum += val[j] * gi[k]
		}
		val[i] = sum
		if int32(i) == target {
			break
		}
	}
	return val[target]
}

// PairCredit returns kappa_{v,u}: the total credit v earns for influencing
// u across the log, normalized by A_u (Eq. 6). Used by diagnostics.
func (ev *Evaluator) PairCredit(v, u graph.NodeID) float64 {
	if ev.au[u] == 0 {
		return 0
	}
	total := 0.0
	for _, a := range ev.actionsOf[v] {
		total += ev.SetCredit(a, []graph.NodeID{v}, u)
	}
	return total / float64(ev.au[u])
}
