package core

import (
	"credist/internal/actionlog"
	"credist/internal/graph"
)

// Evaluator computes the CD spread objective sigma_cd(S) (Eq. 8) for
// arbitrary seed sets directly from the training propagations, without the
// UC structure. It exploits that Gamma_{S,u}(a) is nonzero only for
// actions some seed performed, so evaluating a set touches only the
// propagation DAGs its members participate in. It is the reference
// implementation the Engine is property-tested against, and the tool the
// experiments use to score seed sets chosen by other models (Figure 6) and
// to predict the spread of test-set initiators (Figures 3 and 4).
type Evaluator struct {
	numUsers  int
	au        []int32
	actionsOf [][]int32
	props     []*actionlog.Propagation
	gammas    [][][]float64 // per action, per child, aligned with Parents
}

// NewEvaluator precomputes propagation DAGs and direct credits for the
// training log. model nil means SimpleCredit.
func NewEvaluator(g *graph.Graph, train *actionlog.Log, model CreditModel) *Evaluator {
	if model == nil {
		model = SimpleCredit{}
	}
	ev := &Evaluator{
		numUsers:  train.NumUsers(),
		au:        make([]int32, train.NumUsers()),
		actionsOf: make([][]int32, train.NumUsers()),
		props:     make([]*actionlog.Propagation, train.NumActions()),
		gammas:    make([][][]float64, train.NumActions()),
	}
	for u := 0; u < train.NumUsers(); u++ {
		ev.au[u] = int32(train.ActionCount(graph.NodeID(u)))
	}
	for a := 0; a < train.NumActions(); a++ {
		p := actionlog.BuildPropagation(train, g, actionlog.ActionID(a))
		ev.props[a] = p
		ga := make([][]float64, len(p.Users))
		for i, u := range p.Users {
			ev.actionsOf[u] = append(ev.actionsOf[u], actionlog.ActionID(a))
			if len(p.Parents[i]) == 0 {
				continue
			}
			gi := make([]float64, len(p.Parents[i]))
			for k, j := range p.Parents[i] {
				gi[k] = model.Gamma(p, int32(i), j)
			}
			ga[i] = gi
		}
		ev.gammas[a] = ga
	}
	return ev
}

// NumUsers returns the user-universe size.
func (ev *Evaluator) NumUsers() int { return ev.numUsers }

// Spread computes sigma_cd(S) = sum_u kappa_{S,u}. Each seed with at least
// one training action contributes exactly 1 (its own kappa); every other
// participant u of an action some seed performed contributes
// Gamma_{S,u}(a)/A_u, where Gamma is the forward credit DP over the
// propagation DAG (Eq. 5 generalized to sets).
func (ev *Evaluator) Spread(seeds []graph.NodeID) float64 {
	inS := make(map[graph.NodeID]bool, len(seeds))
	spread := 0.0
	for _, s := range seeds {
		if inS[s] {
			continue
		}
		inS[s] = true
		if ev.au[s] > 0 {
			spread += 1
		}
	}
	// Union of actions any seed performed, deduplicated. The walk follows
	// the input seed order (not map iteration), so the floating-point
	// summation order — and hence the returned spread — is deterministic
	// for a given seed slice.
	seen := make(map[actionlog.ActionID]bool)
	for _, s := range seeds {
		for _, a := range ev.actionsOf[s] {
			if seen[a] {
				continue
			}
			seen[a] = true
			spread += ev.actionSpread(a, inS)
		}
	}
	return spread
}

// actionSpread returns sum over non-seed participants u of action a of
// Gamma_{S,u}(a)/A_u.
func (ev *Evaluator) actionSpread(a actionlog.ActionID, inS map[graph.NodeID]bool) float64 {
	p := ev.props[a]
	val := make([]float64, len(p.Users))
	total := 0.0
	for i, u := range p.Users {
		if inS[u] {
			val[i] = 1
			continue
		}
		sum := 0.0
		gi := ev.gammas[a][i]
		for k, j := range p.Parents[i] {
			if val[j] > 0 {
				sum += val[j] * gi[k]
			}
		}
		val[i] = sum
		if sum > 0 {
			total += sum / float64(ev.au[u])
		}
	}
	return total
}

// SetCredit returns Gamma_{S,u}(a) for diagnostics and tests.
func (ev *Evaluator) SetCredit(a actionlog.ActionID, seeds []graph.NodeID, u graph.NodeID) float64 {
	inS := make(map[graph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		inS[s] = true
	}
	if inS[u] {
		return 1
	}
	p := ev.props[a]
	target := p.Index(u)
	if target < 0 {
		return 0
	}
	val := make([]float64, len(p.Users))
	for i := range p.Users {
		if inS[p.Users[i]] {
			val[i] = 1
			continue
		}
		sum := 0.0
		gi := ev.gammas[a][i]
		for k, j := range p.Parents[i] {
			sum += val[j] * gi[k]
		}
		val[i] = sum
		if int32(i) == target {
			break
		}
	}
	return val[target]
}

// PairCredit returns kappa_{v,u}: the total credit v earns for influencing
// u across the log, normalized by A_u (Eq. 6). Used by diagnostics.
func (ev *Evaluator) PairCredit(v, u graph.NodeID) float64 {
	if ev.au[u] == 0 {
		return 0
	}
	total := 0.0
	for _, a := range ev.actionsOf[v] {
		total += ev.SetCredit(a, []graph.NodeID{v}, u)
	}
	return total / float64(ev.au[u])
}
