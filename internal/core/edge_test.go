package core

import (
	"testing"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

// Edge-case coverage: degenerate logs and graphs must not panic and must
// return sane zero values.

func emptyInstance(t *testing.T) (*graph.Graph, *actionlog.Log) {
	t.Helper()
	g := graph.NewBuilder(3).Build()
	return g, actionlog.NewBuilder(3).Build()
}

func TestEngineEmptyLog(t *testing.T) {
	g, log := emptyInstance(t)
	e := NewEngine(g, log, Options{})
	if e.Entries() != 0 {
		t.Fatalf("entries = %d", e.Entries())
	}
	if got := e.Gain(0); got != 0 {
		t.Fatalf("gain on empty log = %g", got)
	}
	e.Add(0) // must not panic
	if got := e.NumActions(); got != 0 {
		t.Fatalf("actions = %d", got)
	}
}

func TestEvaluatorEmptyLog(t *testing.T) {
	g, log := emptyInstance(t)
	ev := NewEvaluator(g, log, nil)
	if got := ev.Spread([]graph.NodeID{0, 1}); got != 0 {
		t.Fatalf("spread on empty log = %g", got)
	}
	if got := ev.Spread(nil); got != 0 {
		t.Fatalf("spread of empty set = %g", got)
	}
}

func TestEvaluatorDuplicateSeeds(t *testing.T) {
	g, log := figure1(t)
	ev := NewEvaluator(g, log, nil)
	once := ev.Spread([]graph.NodeID{nodeV})
	twice := ev.Spread([]graph.NodeID{nodeV, nodeV, nodeV})
	if once != twice {
		t.Fatalf("duplicates changed spread: %g vs %g", once, twice)
	}
}

func TestSingleUserAction(t *testing.T) {
	// One user performing one action alone: spread of that user is 1,
	// everything else 0.
	b := graph.NewBuilder(2)
	_ = b.AddEdge(0, 1)
	g := b.Build()
	lb := actionlog.NewBuilder(2)
	_ = lb.Add(0, 0, 5)
	log := lb.Build()
	e := NewEngine(g, log, Options{})
	if got := e.Gain(0); !almostEqual(got, 1) {
		t.Fatalf("lone actor gain = %g, want 1", got)
	}
	if got := e.Gain(1); got != 0 {
		t.Fatalf("bystander gain = %g, want 0", got)
	}
	ev := NewEvaluator(g, log, nil)
	if got := ev.Spread([]graph.NodeID{0}); !almostEqual(got, 1) {
		t.Fatalf("lone actor spread = %g", got)
	}
}

func TestEngineLambdaDropsEverything(t *testing.T) {
	g, log := figure1(t)
	e := NewEngine(g, log, Options{Lambda: 2}) // above any possible credit
	if e.Entries() != 0 {
		t.Fatalf("entries = %d with lambda above max credit", e.Entries())
	}
	// Gains reduce to self-credit only.
	if got := e.Gain(nodeV); !almostEqual(got, 1) {
		t.Fatalf("gain = %g, want pure self credit 1", got)
	}
}

func TestAddSameSeedTwice(t *testing.T) {
	g, log := figure1(t)
	e := NewEngine(g, log, Options{})
	e.Add(nodeV)
	gainAfter := e.Gain(nodeV)
	// After committing, x's row/column are gone; its gain is its
	// (1 - SC) * self-credit, which reflects it already being a seed via
	// SC only if SC[x] was set. The selection layer never re-adds a seed;
	// this just checks no panic and a bounded value.
	if gainAfter < 0 || gainAfter > 1 {
		t.Fatalf("gain of committed seed = %g", gainAfter)
	}
	e.Add(nodeV) // must not panic or corrupt entries
	if e.Entries() < 0 {
		t.Fatalf("entries corrupted: %d", e.Entries())
	}
}

func TestEvaluatorSeedWithNoActions(t *testing.T) {
	g, log := figure1(t)
	// Extend universe with inactive user 6.
	b := graph.NewBuilder(7)
	for _, e := range g.Edges() {
		_ = b.AddEdge(e.From, e.To)
	}
	g2 := b.Build()
	lb := actionlog.NewBuilder(7)
	for _, tp := range log.Tuples() {
		_ = lb.Add(tp.User, tp.Action, tp.Time)
	}
	log2 := lb.Build()
	ev := NewEvaluator(g2, log2, nil)
	// An inactive seed contributes nothing (kappa undefined -> 0).
	withInactive := ev.Spread([]graph.NodeID{nodeV, 6})
	without := ev.Spread([]graph.NodeID{nodeV})
	if withInactive != without {
		t.Fatalf("inactive seed changed spread: %g vs %g", withInactive, without)
	}
}
