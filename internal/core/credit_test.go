package core

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

func TestSimpleCreditSumsToOne(t *testing.T) {
	g, log := figure1(t)
	p := actionlog.BuildPropagation(log, g, 0)
	for i := range p.Users {
		if len(p.Parents[i]) == 0 {
			continue
		}
		sum := 0.0
		for _, j := range p.Parents[i] {
			sum += SimpleCredit{}.Gamma(p, int32(i), j)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("direct credits of user %d sum to %g", p.Users[i], sum)
		}
	}
}

func TestLearnTimeAwareTau(t *testing.T) {
	// Edge 0->1 observes delays 2, 4, 6: tau must be 4.
	b := graph.NewBuilder(2)
	_ = b.AddEdge(0, 1)
	g := b.Build()
	lb := actionlog.NewBuilder(2)
	for a, delay := range []float64{2, 4, 6} {
		_ = lb.Add(0, actionlog.ActionID(a), 10)
		_ = lb.Add(1, actionlog.ActionID(a), 10+delay)
	}
	credit := LearnTimeAware(g, lb.Build())
	tau, ok := credit.Tau(0, 1)
	if !ok || math.Abs(tau-4) > 1e-12 {
		t.Fatalf("tau = %g,%v, want 4", tau, ok)
	}
}

func TestLearnTimeAwareInfluenceability(t *testing.T) {
	// User 1 performs 4 actions: 2 within tau of a neighbor's action, 2
	// spontaneous. infl(1) = 0.5.
	b := graph.NewBuilder(2)
	_ = b.AddEdge(0, 1)
	g := b.Build()
	lb := actionlog.NewBuilder(2)
	// Influenced: delays 1 and 3 -> tau = 2; delay 1 <= 2 counts, delay 3
	// does not.
	_ = lb.Add(0, 0, 0)
	_ = lb.Add(1, 0, 1)
	_ = lb.Add(0, 1, 0)
	_ = lb.Add(1, 1, 3)
	// Spontaneous actions by user 1.
	_ = lb.Add(1, 2, 5)
	_ = lb.Add(1, 3, 9)
	credit := LearnTimeAware(g, lb.Build())
	// tau = (1+3)/2 = 2; influenced actions: delay 1 (yes), delay 3 (no).
	// infl = 1/4.
	if got := credit.Influenceability(1); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("infl = %g, want 0.25", got)
	}
	if got := credit.Influenceability(0); got != 0 {
		t.Fatalf("initiator-only infl = %g, want 0", got)
	}
}

func TestTimeAwareGammaDecays(t *testing.T) {
	// Same propagation structure, different delays: later adoption earns
	// less credit.
	b := graph.NewBuilder(3)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(0, 2)
	g := b.Build()
	lb := actionlog.NewBuilder(3)
	// Training evidence to learn tau on both edges (delay 4 each).
	_ = lb.Add(0, 0, 0)
	_ = lb.Add(1, 0, 4)
	_ = lb.Add(2, 0, 4)
	// The probe action: 1 adopts fast, 2 adopts slow.
	_ = lb.Add(0, 1, 0)
	_ = lb.Add(1, 1, 1)
	_ = lb.Add(2, 1, 12)
	log := lb.Build()
	credit := LearnTimeAware(g, log)
	p := actionlog.BuildPropagation(log, g, 1)
	i1, i2 := p.Index(1), p.Index(2)
	g1 := credit.Gamma(p, i1, p.Parents[i1][0])
	g2 := credit.Gamma(p, i2, p.Parents[i2][0])
	if g1 <= g2 {
		t.Fatalf("credit should decay with delay: fast %g, slow %g", g1, g2)
	}
}

func TestTimeAwareGammaZeroWithoutTau(t *testing.T) {
	// An edge never observed propagating earns no credit even if the
	// propagation graph contains it for a test action: tau is undefined.
	credit := &TimeAwareCredit{tau: map[graph.Edge]float64{}, infl: []float64{1, 1}}
	b := graph.NewBuilder(2)
	_ = b.AddEdge(0, 1)
	g := b.Build()
	lb := actionlog.NewBuilder(2)
	_ = lb.Add(0, 0, 0)
	_ = lb.Add(1, 0, 1)
	log := lb.Build()
	p := actionlog.BuildPropagation(log, g, 0)
	i1 := p.Index(1)
	if got := credit.Gamma(p, i1, p.Parents[i1][0]); got != 0 {
		t.Fatalf("gamma = %g, want 0 without tau", got)
	}
}

// TestTimeAwareCreditBounded: direct credits a child assigns under Eq. 9
// sum to at most 1 on random instances (infl <= 1 and exp decay <= 1).
func TestTimeAwareCreditBounded(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 21))
		g, log := randomInstance(rng, 15, 8)
		credit := LearnTimeAware(g, log)
		for a := 0; a < log.NumActions(); a++ {
			p := actionlog.BuildPropagation(log, g, actionlog.ActionID(a))
			for i := range p.Users {
				sum := 0.0
				for _, j := range p.Parents[i] {
					gam := credit.Gamma(p, int32(i), j)
					if gam < 0 {
						return false
					}
					sum += gam
				}
				if sum > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineWithTimeAwareMatchesEvaluator(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 31))
	for trial := 0; trial < 10; trial++ {
		g, log := randomInstance(rng, 15, 6)
		credit := LearnTimeAware(g, log)
		e := NewEngine(g, log, Options{Credit: credit})
		ev := NewEvaluator(g, log, credit)
		var seeds []graph.NodeID
		for round := 0; round < 3; round++ {
			for cand := 0; cand < g.NumNodes(); cand++ {
				c := graph.NodeID(cand)
				if contains(seeds, c) {
					continue
				}
				want := ev.Spread(append(append([]graph.NodeID(nil), seeds...), c)) - ev.Spread(seeds)
				if got := e.Gain(c); math.Abs(got-want) > 1e-6 {
					t.Fatalf("trial %d: Gain(%d)=%g want %g", trial, c, got, want)
				}
			}
			next := graph.NodeID(rng.IntN(g.NumNodes()))
			if contains(seeds, next) {
				continue
			}
			e.Add(next)
			seeds = append(seeds, next)
		}
	}
}

func TestPairCreditIdentity(t *testing.T) {
	g, log := figure1(t)
	ev := NewEvaluator(g, log, nil)
	// kappa_{v,v} = 1 whenever v acts; Figure 1 has one action so
	// kappa_{v,u} = Gamma_{v,u}(a)/1.
	if got := ev.PairCredit(nodeV, nodeV); math.Abs(got-1) > 1e-12 {
		t.Fatalf("kappa_vv = %g", got)
	}
	if got := ev.PairCredit(nodeV, nodeU); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("kappa_vu = %g, want 0.75", got)
	}
	if got := ev.PairCredit(nodeU, nodeV); got != 0 {
		t.Fatalf("kappa_uv = %g, want 0 (credit flows backward)", got)
	}
}

func TestTimeAwareIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 61))
	g, log := randomInstance(rng, 20, 8)
	credit := LearnTimeAware(g, log)
	var buf bytes.Buffer
	if err := WriteTimeAware(&buf, credit); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTimeAware(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumNodes(); u++ {
		if a, b := credit.Influenceability(graph.NodeID(u)), back.Influenceability(graph.NodeID(u)); math.Abs(a-b) > 1e-12 {
			t.Fatalf("infl(%d) %g != %g", u, a, b)
		}
	}
	for e, tau := range credit.tau {
		got, ok := back.Tau(e.From, e.To)
		if !ok || math.Abs(got-tau) > 1e-12 {
			t.Fatalf("tau(%v) %g,%v != %g", e, got, ok, tau)
		}
	}
	// Models built from original and restored parameters agree.
	ev1 := NewEvaluator(g, log, credit)
	ev2 := NewEvaluator(g, log, back)
	seeds := []graph.NodeID{0, 3, 7}
	if a, b := ev1.Spread(seeds), ev2.Spread(seeds); math.Abs(a-b) > 1e-9 {
		t.Fatalf("restored model spread %g != %g", b, a)
	}
}

// TestTimeAwareIOBitExact audits the %g serialization: every learned
// parameter must survive a write/read round trip with identical float64
// bits (%g with default precision is Go's shortest decimal that parses
// back to the same value), including adversarial values near the format's
// edge cases, and re-serializing the restored model must reproduce the
// file byte for byte (tau records are written in sorted edge order).
func TestTimeAwareIOBitExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(67, 67))
	g, log := randomInstance(rng, 30, 12)
	credit := LearnTimeAware(g, log)
	// Splice in values that stress shortest-float formatting: repeating
	// binary fractions, a denormal, and neighbors of representable points.
	credit.infl[0] = 1.0 / 3.0
	credit.infl[1] = 0.1 + 0.2
	credit.infl[2] = math.Nextafter(1, 2) - 1
	for e := range credit.tau {
		credit.tau[e] = math.Nextafter(credit.tau[e], math.Inf(1))
		break
	}

	var buf bytes.Buffer
	if err := WriteTimeAware(&buf, credit); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	back, err := ReadTimeAware(bytes.NewBufferString(first))
	if err != nil {
		t.Fatal(err)
	}
	for u := range credit.infl {
		if math.Float64bits(credit.infl[u]) != math.Float64bits(back.infl[u]) {
			t.Fatalf("infl(%d) bits differ: %v -> %v", u, credit.infl[u], back.infl[u])
		}
	}
	if len(back.tau) != len(credit.tau) {
		t.Fatalf("tau count %d != %d", len(back.tau), len(credit.tau))
	}
	for e, tau := range credit.tau {
		got, ok := back.tau[e]
		if !ok || math.Float64bits(got) != math.Float64bits(tau) {
			t.Fatalf("tau(%v) bits differ: %v -> %v", e, tau, got)
		}
	}
	var again bytes.Buffer
	if err := WriteTimeAware(&again, back); err != nil {
		t.Fatal(err)
	}
	if again.String() != first {
		t.Fatal("re-serialized params are not byte-identical")
	}
}

func TestReadTimeAwareErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus 1\n",
		"numUsers -2\n",
		"infl 0 0.5\n",             // before numUsers
		"numUsers 2\ninfl 5 0.5\n", // out of range
		"numUsers 2\ninfl 0\n",     // malformed
		"numUsers 2\ntau 0 1\n",    // malformed
		"numUsers 2\ntau a 1 2\n",  // bad from
		"numUsers 2\ntau 0 1 zz\n", // bad value
		"numUsers x\n",
	}
	for _, in := range cases {
		if _, err := ReadTimeAware(bytes.NewBufferString(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

// TestReadTimeAwareRejectsDuplicates pins the repeated-record hardening: a
// second numUsers header used to silently discard every parsed infl entry,
// and duplicate infl/tau records used to resolve last-wins. All three are
// now line-numbered errors.
func TestReadTimeAwareRejectsDuplicates(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantSub string
	}{
		{
			name:    "repeated numUsers header",
			in:      "numUsers 3\ninfl 0 0.5\nnumUsers 3\n",
			wantSub: "line 3: duplicate numUsers",
		},
		{
			name:    "repeated numUsers without infl",
			in:      "numUsers 3\nnumUsers 4\n",
			wantSub: "line 2: duplicate numUsers",
		},
		{
			name:    "duplicate infl record",
			in:      "numUsers 3\ninfl 1 0.5\ninfl 1 0.7\n",
			wantSub: "line 3: duplicate infl record for user 1",
		},
		{
			name:    "duplicate tau record",
			in:      "numUsers 3\ntau 0 1 2.5\ntau 0 1 9\n",
			wantSub: "line 3: duplicate tau record for edge (0,1)",
		},
		{
			name:    "duplicate tau after other edges",
			in:      "numUsers 3\ntau 0 1 2.5\ntau 1 2 3\ntau 0 1 2.5\n",
			wantSub: "line 4: duplicate tau record for edge (0,1)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTimeAware(bytes.NewBufferString(tc.in))
			if err == nil {
				t.Fatalf("input %q accepted", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
	// Distinct records remain accepted.
	ok := "numUsers 3\ninfl 0 0.5\ninfl 1 0.25\ntau 0 1 2.5\ntau 1 0 3\n"
	if _, err := ReadTimeAware(bytes.NewBufferString(ok)); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
}
