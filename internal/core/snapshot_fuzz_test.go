package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand/v2"
	"testing"

	"credist/internal/seedsel"
)

// FuzzReadSnapshot drives the binary-snapshot reader with arbitrary
// bytes: corrupt, truncated, or outright hostile input must always come
// back as an error — never a panic, an unbounded allocation, or a
// silently wrong engine. The corpus seeds cover both format versions,
// files with and without the seed-prefix section, and targeted
// corruptions of each; the fuzzer mutates from there.
//
// For input the reader does accept, two invariants are checked: the
// engine's declared shape matches the lineage, and re-serializing
// reproduces the input byte for byte (the encoding of a given engine is
// unique, so anything accepted must already be in canonical form).
func FuzzReadSnapshot(f *testing.F) {
	rng := rand.New(rand.NewPCG(101, 7))
	g, log := randomInstance(rng, 25, 14)
	credit := LearnTimeAware(g, log)
	e := NewEngine(g, log, Options{Lambda: 0.001, Credit: credit})
	lin := DatasetLineage("fuzz", g, log)

	// Seed 1: plain snapshot, no prefix.
	var plain bytes.Buffer
	if err := e.WriteSnapshot(&plain, lin); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())

	// Seed 2: snapshot carrying a computed seed prefix.
	sel := seedsel.CELF(e.Clone(), 5)
	prefix := &SeedPrefix{Seeds: sel.Seeds, Gains: sel.Gains, LookupsAt: sel.LookupsAt}
	var prefixed bytes.Buffer
	if err := e.WriteSnapshotPrefix(&prefixed, lin, prefix); err != nil {
		f.Fatal(err)
	}
	f.Add(prefixed.Bytes())

	// Seed 3: simple-credit variant (exercises the other credit tag).
	se := NewEngine(g, log, Options{Lambda: 0.001})
	var simple bytes.Buffer
	if err := se.WriteSnapshot(&simple, lin); err != nil {
		f.Fatal(err)
	}
	f.Add(simple.Bytes())

	// Seed 4: legacy version-2 layout, with a prefix.
	var legacy bytes.Buffer
	if err := writeSnapshotV2(&legacy, e, lin, prefix); err != nil {
		f.Fatal(err)
	}
	f.Add(legacy.Bytes())

	// Seed 5: version-1 layout (version-2 minus the prefix section).
	var legacyPlain bytes.Buffer
	if err := writeSnapshotV2(&legacyPlain, e, lin, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(craftVersion1(legacyPlain.Bytes()))

	// Seeds 6+: truncations and CRC-refreshed corruptions, against both the
	// version-3 and the legacy layout. Re-stamping the footer after a flip
	// steers the fuzzer straight past the checksum to the structural
	// validators (count bounds, ordering, offset-table canonicality, prefix
	// rules).
	for _, pdata := range [][]byte{prefixed.Bytes(), legacy.Bytes()} {
		f.Add(pdata[:len(pdata)/2])
		f.Add(pdata[:len(snapshotMagic)+4])
		for _, off := range []int{9, 20, 60, len(pdata) - 30, len(pdata) - 12} {
			if off < 0 || off >= len(pdata)-4 {
				continue
			}
			corrupt := append([]byte(nil), pdata...)
			corrupt[off] ^= 0xff
			binary.LittleEndian.PutUint32(corrupt[len(corrupt)-4:], crc32.ChecksumIEEE(corrupt[:len(corrupt)-4]))
			f.Add(corrupt)
		}
	}

	// Seeds: version-4 snapshot slices — a mid-universe partition, a
	// trailing partition carrying the prefix, and a corrupted range field
	// (CRC-refreshed so the row-range validators do the rejecting).
	part, err := e.Slice(8, 17)
	if err != nil {
		f.Fatal(err)
	}
	var slice bytes.Buffer
	if err := part.WriteSnapshotSlice(&slice, lin, nil, 8, 17); err != nil {
		f.Fatal(err)
	}
	f.Add(slice.Bytes())
	tailPart, err := e.Slice(17, e.NumNodes())
	if err != nil {
		f.Fatal(err)
	}
	var tailSlice bytes.Buffer
	if err := tailPart.WriteSnapshotSlice(&tailSlice, lin, prefix, 17, e.NumNodes()); err != nil {
		f.Fatal(err)
	}
	f.Add(tailSlice.Bytes())
	for _, flip := range []uint32{1, 1 << 31} {
		// The row range sits right before the 4-byte header CRC and the base
		// section; recompute both checksums so only the range check can bite.
		badRange := append([]byte(nil), slice.Bytes()...)
		baseSize := part.NumActions() * 8
		for _, st := range part.uc {
			baseSize += 8 + (st.numRows()+int(st.entryCount()))*16
		}
		hdrCRCOff := len(badRange) - 4 - baseSize - 4
		if hdrCRCOff >= 8 {
			loOff := hdrCRCOff - 8
			binary.LittleEndian.PutUint32(badRange[loOff:],
				binary.LittleEndian.Uint32(badRange[loOff:])^flip)
			binary.LittleEndian.PutUint32(badRange[hdrCRCOff:], crc32.ChecksumIEEE(badRange[:hdrCRCOff]))
			binary.LittleEndian.PutUint32(badRange[len(badRange)-4:],
				crc32.ChecksumIEEE(badRange[:len(badRange)-4]))
			f.Add(badRange)
		}
	}

	// Seeds: version-5 snapshot carrying an RR sketch, plus CRC-refreshed
	// corruptions of the sketch section (the section sits right after the
	// seed-prefix section, inside the header CRC, so both checksums must
	// be restamped for the structural validators to do the rejecting).
	src, err := NewEvaluator(g, log, credit).CreditWalks()
	if err != nil {
		f.Fatal(err)
	}
	walker := src.NewWalker()
	skRng := rand.New(rand.NewPCG(3, 0x415a))
	sketch := &RRSketch{Seed: 3, Roots: src.Roots()}
	for i := 0; i < 40; i++ {
		sketch.Sets = append(sketch.Sets, walker(skRng))
	}
	var sketched bytes.Buffer
	if err := e.WriteSnapshotSketch(&sketched, lin, prefix, sketch); err != nil {
		f.Fatal(err)
	}
	f.Add(sketched.Bytes())
	{
		// Locate the sketch section by replaying the header parse: the
		// cursor lands exactly at the section start, and the header CRC
		// sits right after the section.
		v5 := sketched.Bytes()
		sc := &snapCursor{b: v5[:len(v5)-4], off: len(snapshotMagic) + 4}
		lin5, lambda5, credit5, err := parseSnapshotHeader(sc)
		if err != nil {
			f.Fatal(err)
		}
		tmp := newSnapshotEngine(lin5, lambda5, credit5)
		if err := parseUsers(sc, lin5, tmp); err != nil {
			f.Fatal(err)
		}
		if _, err := parseSeedPrefix(sc, lin5.NumUsers); err != nil {
			f.Fatal(err)
		}
		skOff := sc.off
		sketchSize := 8 + 4 + 4
		for _, set := range sketch.Sets {
			sketchSize += 4 + 4*len(set)
		}
		hdrCRCOff := skOff + sketchSize
		for _, tweak := range []int{8, 12, 16} { // roots, sample count, first sample len
			bad := append([]byte(nil), v5...)
			binary.LittleEndian.PutUint32(bad[skOff+tweak:],
				binary.LittleEndian.Uint32(bad[skOff+tweak:])^(1<<30))
			binary.LittleEndian.PutUint32(bad[hdrCRCOff:], crc32.ChecksumIEEE(bad[:hdrCRCOff]))
			binary.LittleEndian.PutUint32(bad[len(bad)-4:], crc32.ChecksumIEEE(bad[:len(bad)-4]))
			f.Add(bad)
		}
	}

	// Seeds: version-6 snapshots carrying the provenance index — alone and
	// together with the RR sketch — plus CRC-refreshed corruptions of the
	// flags byte and the prov section, so the structural validators (flag
	// bits, pair/action ordering, count bounds, credit finiteness) do the
	// rejecting rather than the checksum.
	prov := e.BuildProvIndex()
	var proved bytes.Buffer
	if err := e.WriteSnapshotProv(&proved, lin, prefix, nil, prov); err != nil {
		f.Fatal(err)
	}
	f.Add(proved.Bytes())
	var provSketched bytes.Buffer
	if err := e.WriteSnapshotProv(&provSketched, lin, prefix, sketch, prov); err != nil {
		f.Fatal(err)
	}
	f.Add(provSketched.Bytes())
	{
		// Locate the flags byte by replaying the header parse, exactly as
		// for the sketch section above.
		v6 := proved.Bytes()
		sc := &snapCursor{b: v6[:len(v6)-4], off: len(snapshotMagic) + 4}
		lin6, lambda6, credit6, err := parseSnapshotHeader(sc)
		if err != nil {
			f.Fatal(err)
		}
		tmp := newSnapshotEngine(lin6, lambda6, credit6)
		if err := parseUsers(sc, lin6, tmp); err != nil {
			f.Fatal(err)
		}
		if _, err := parseSeedPrefix(sc, lin6.NumUsers); err != nil {
			f.Fatal(err)
		}
		flagsOff := sc.off
		provSize := 4 + 12*prov.Pairs() + 12*int(prov.Entries())
		hdrCRCOff := flagsOff + 1 + provSize
		restamp := func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[hdrCRCOff:], crc32.ChecksumIEEE(b[:hdrCRCOff]))
			binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
			return b
		}
		// A stray flag bit, and a version-6 file whose prov flag is clear.
		strayBit := append([]byte(nil), v6...)
		strayBit[flagsOff] |= 1 << 7
		f.Add(restamp(strayBit))
		noProv := append([]byte(nil), v6...)
		noProv[flagsOff] = 0
		f.Add(restamp(noProv))
		// Pair count, first pair's (v, u), and its entry count tweaked.
		for _, tweak := range []int{1, 5, 9, 13} {
			bad := append([]byte(nil), v6...)
			binary.LittleEndian.PutUint32(bad[flagsOff+tweak:],
				binary.LittleEndian.Uint32(bad[flagsOff+tweak:])^(1<<30))
			f.Add(restamp(bad))
		}
	}

	// Seeds: version-3 base-section abuse — truncated and misaligned offset
	// tables, CRC-refreshed so only the canonical-layout validators can
	// reject them. The base section sits at a computable distance from the
	// file end: footer, blocks, offset table.
	v3 := prefixed.Bytes()
	baseSize := e.NumActions() * 8
	for _, st := range e.uc {
		baseSize += 8 + (st.numRows()+int(st.entryCount()))*16
	}
	if baseOff := len(v3) - 4 - baseSize; baseOff > 0 {
		restamp := func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
			return b
		}
		// Offset table truncated mid-entry.
		f.Add(restamp(append([]byte(nil), v3[:baseOff+4]...)))
		// First block offset shifted off the canonical position.
		shifted := append([]byte(nil), v3...)
		binary.LittleEndian.PutUint64(shifted[baseOff:], binary.LittleEndian.Uint64(shifted[baseOff:])+8)
		f.Add(restamp(shifted))
		// A row's cell offset nudged out of the canonical row-major order.
		rowdir := append([]byte(nil), v3...)
		dirOff := baseOff + lin.NumActions*8 + 8 + 8 // first row record's offset field
		if dirOff+8 <= len(rowdir)-4 {
			binary.LittleEndian.PutUint64(rowdir[dirOff:], binary.LittleEndian.Uint64(rowdir[dirOff:])^16)
			f.Add(restamp(rowdir))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		eng, lin, pfx, sketch, prov, err := ReadSnapshotProv(bytes.NewReader(data))
		if err != nil {
			return // rejected input is the expected outcome; no panic happened
		}
		if eng.NumNodes() != lin.NumUsers || eng.NumActions() != lin.NumActions {
			t.Fatalf("accepted engine shape %d users/%d actions contradicts lineage %d/%d",
				eng.NumNodes(), eng.NumActions(), lin.NumUsers, lin.NumActions)
		}
		if pfx != nil {
			if len(pfx.Seeds) != len(pfx.Gains) || len(pfx.Seeds) != len(pfx.LookupsAt) {
				t.Fatalf("accepted prefix with mismatched arrays: %d/%d/%d",
					len(pfx.Seeds), len(pfx.Gains), len(pfx.LookupsAt))
			}
		}
		version := binary.LittleEndian.Uint32(data[len(snapshotMagic):])
		if version == snapshotVersionSlice {
			// An accepted slice re-encodes through the slice writer at its
			// own row range; canonical-form uniqueness holds per version.
			lo, hi := eng.PartitionRange()
			var out bytes.Buffer
			if err := eng.WriteSnapshotSlice(&out, lin, pfx, lo, hi); err != nil {
				t.Fatalf("accepted slice fails to re-serialize: %v", err)
			}
			if !bytes.Equal(out.Bytes(), data) {
				t.Fatalf("accepted slice is not canonical: re-encode differs (%d vs %d bytes)",
					out.Len(), len(data))
			}
			return
		}
		if version == snapshotVersionSketch || version == snapshotVersionProv {
			// An accepted sketch or provenance snapshot re-encodes through
			// the section-aware writer; section encoding is unique, so bytes
			// must round-trip. A version-6 file must actually carry an index.
			if version == snapshotVersionProv && prov == nil {
				t.Fatal("accepted version-6 snapshot without a provenance index")
			}
			var out bytes.Buffer
			if err := eng.WriteSnapshotProv(&out, lin, pfx, sketch, prov); err != nil {
				t.Fatalf("accepted sectioned snapshot fails to re-serialize: %v", err)
			}
			if !bytes.Equal(out.Bytes(), data) {
				t.Fatalf("accepted sectioned snapshot is not canonical: re-encode differs (%d vs %d bytes)",
					out.Len(), len(data))
			}
			return
		}
		if version != snapshotVersion {
			return // v1/v2 input re-encodes as v3; bytes legitimately differ
		}
		var out bytes.Buffer
		if err := eng.WriteSnapshotPrefix(&out, lin, pfx); err != nil {
			t.Fatalf("accepted input fails to re-serialize: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("accepted input is not canonical: re-encode differs (%d vs %d bytes)",
				out.Len(), len(data))
		}
	})
}
