package core

import (
	"fmt"
	"slices"
	"sort"

	"credist/internal/graph"
)

// This file implements horizontal partitioning of the engine by
// influencer-row range. A partition engine is a full Engine restricted to
// the UC rows of influencers in [partLo, partHi): it keeps the complete
// global per-user state (au, actionsOf) and a complete replica of SC, so
// Gain(x) evaluated on the partition owning x's row is exactly the global
// marginal gain — Theorem 3 reads only x's row, SC[x], and the global
// normalizers. Committing a seed is split into ExtractSeedRow (the owner
// reads out x's row cells) and CommitSeedRow (every partition applies the
// Lemma 2 subtractions to its local rows and the identical Lemma 3 SC
// raise): the Lemma 2 updates touch disjoint (v, u) cells per partition
// and the SC arithmetic is replayed bit-identically everywhere, so the
// union of the partitions after a commit equals the unpartitioned engine
// after Add, cell for cell and bit for bit. Engine.Add is literally
// CommitSeedRow(x, ExtractSeedRow(x)), so the equivalence holds by
// construction rather than by parallel maintenance of two code paths.

// ownsRow reports whether this engine holds x's influencer row: always
// for an unpartitioned engine, range membership for a partition.
func (e *Engine) ownsRow(x graph.NodeID) bool {
	return !e.partitioned || (int(x) >= e.partLo && int(x) < e.partHi)
}

// IsPartition reports whether the engine is a row-range partition (built
// by Slice or loaded from a version-4 snapshot slice) rather than a full
// model.
func (e *Engine) IsPartition() bool { return e.partitioned }

// PartitionRange returns the influencer-row range [lo, hi) this engine
// holds; a full engine covers the whole universe [0, NumNodes()).
func (e *Engine) PartitionRange() (lo, hi int) {
	if e.partitioned {
		return e.partLo, e.partHi
	}
	return 0, e.numUsers
}

// seedRowData is the opaque payload behind ExtractSeedRow/CommitSeedRow:
// the committed seed's credit cells, one row per scanned action of the
// seed (parallel to actionsOf[x]), copied out of the owning engine so the
// payload stays valid while every partition applies the commit.
type seedRowData struct {
	rows [][]ucEntry
}

// ExtractSeedRow reads out candidate x's credit rows — the
// (influenced, Gamma^{V-S}_{x,u}(a)) cells of every action x performed —
// as an opaque payload for CommitSeedRow. It must be called on the engine
// owning x's row (any unpartitioned engine, or the partition whose range
// contains x) before that engine commits x. The cells are copied, so the
// payload remains valid across the commit on every partition, including
// the owner's own.
func (e *Engine) ExtractSeedRow(x graph.NodeID) any {
	if !e.ownsRow(x) {
		panic(fmt.Sprintf("core: ExtractSeedRow(%d) outside partition rows [%d,%d)", x, e.partLo, e.partHi))
	}
	xi := int32(x)
	acts := e.actionsOf[x]
	d := &seedRowData{rows: make([][]ucEntry, len(acts))}
	total := 0
	for _, a := range acts {
		total += len(e.uc[a].row(xi))
	}
	flat := make([]ucEntry, 0, total)
	for i, a := range acts {
		row := e.uc[a].row(xi)
		start := len(flat)
		flat = append(flat, row...)
		d.rows[i] = flat[start:len(flat):len(flat)]
	}
	return d
}

// CommitSeedRow commits x to the seed set given the owning engine's
// extracted payload (Algorithm 5, driven by data instead of a local row
// read): per action, Lemma 2 removes from every local credit the share
// flowing through x, and Lemma 3 raises Gamma_{S,u}(a) for every u in the
// payload — SC is maintained as a full replica on every partition, which
// is what keeps Gain exact and bit-identical at any partition count.
// Finally x's local row (owner only) and column are removed. On an
// unpartitioned engine, CommitSeedRow(x, ExtractSeedRow(x)) is exactly
// Add(x).
func (e *Engine) CommitSeedRow(x graph.NodeID, payload any) {
	d := payload.(*seedRowData)
	xi := int32(x)
	for i, a := range e.actionsOf[x] {
		ua := e.mutShard(a)
		row := d.rows[i]  // (u, Gamma^{V-S}_{x,u}(a)) cells from the owner
		col := ua.col(xi) // local v ids with Gamma^{V-S}_{v,x}(a) > 0
		scx := 0.0
		if e.sc[a] != nil {
			scx = e.sc[a][xi]
		}
		// The Gamma^{V-S}_{v,x}(a) values are fixed for the whole update
		// (Lemma 2 only rewrites cells with u != x), so read them once.
		cvxs := make([]float64, len(col))
		for j, v := range col {
			cvxs[j], _ = ua.get(v, xi)
		}
		for _, en := range row {
			u, cxu := en.u, en.c
			// Lemma 2: credits of every local v over u lose the paths
			// through x. Each (v, u) cell lives in exactly one partition
			// (v's), so the per-partition updates are disjoint and their
			// union equals the unpartitioned update.
			for j, v := range col {
				cvx := cvxs[j]
				ri, ei, ok := ua.find(v, u)
				if !ok {
					// Mathematically the entry holds >= cvx*cxu > 0, but
					// truncation may have dropped it; nothing to subtract.
					continue
				}
				value := ua.rows[ri][ei].c - cvx*cxu
				if value > 1e-15 {
					ua.rows[ri][ei].c = value
				} else if ua.remove(v, u) {
					e.entries--
				}
			}
			// Lemma 3: Gamma_{S+x,u}(a) = Gamma_{S,u}(a) + cxu*(1-scx).
			// Replayed identically on every partition from the shared
			// payload, keeping the SC replicas bit-identical.
			if e.sc[a] == nil {
				e.sc[a] = make(map[int32]float64)
			}
			e.sc[a][u] += cxu * (1 - scx)
		}
		// Remove x's row (present only on the owner) and column: x is no
		// longer part of V-S.
		e.entries -= int64(ua.removeRow(xi))
		e.entries -= int64(ua.removeCol(xi))
	}
	e.seeds = append(e.seeds, x)
}

// Slice returns a self-contained partition engine holding only the UC
// rows of influencers in [lo, hi): every shard is restricted to that row
// range (heap shards share the row cell storage and rebuild their column
// mirrors; mapped shards stay zero-copy windows into the snapshot file),
// while the global per-user state is carried in full and SC starts empty.
// The partition is frozen (every shard shared), so commits on it pay
// copy-on-write exactly like commits on a served snapshot. Slicing an
// engine with committed seeds, an engine that is already a partition, or
// an out-of-bounds range is an error.
func (e *Engine) Slice(lo, hi int) (*Engine, error) {
	if len(e.seeds) > 0 {
		return nil, ErrSeedsCommitted
	}
	if e.partitioned {
		return nil, fmt.Errorf("core: cannot slice a partition engine (rows [%d,%d)); slice the full engine instead", e.partLo, e.partHi)
	}
	if lo < 0 || lo > hi || hi > e.numUsers {
		return nil, fmt.Errorf("core: slice rows [%d,%d) outside the universe [0,%d)", lo, hi, e.numUsers)
	}
	p := &Engine{
		numUsers:    e.numUsers,
		uc:          make([]rowStore, len(e.uc)),
		owned:       make([]bool, len(e.uc)),
		sc:          make([]map[int32]float64, len(e.uc)),
		lambda:      e.lambda,
		credit:      e.credit,
		workers:     e.workers,
		baseActions: len(e.uc),
		partitioned: true,
		partLo:      lo,
		partHi:      hi,
	}
	// The per-user state is global and read-only in a partition; it is
	// shared when the source engine is frozen and copied while the source
	// still owns (and may mutate) it.
	if e.ownsUsers {
		p.au = slices.Clone(e.au)
		p.actionsOf = make([][]int32, len(e.actionsOf))
		for u, row := range e.actionsOf {
			p.actionsOf[u] = slices.Clone(row)
		}
	} else {
		p.au = e.au
		p.actionsOf = e.actionsOf
	}
	for a, st := range e.uc {
		sub, n := sliceShard(st, int32(lo), int32(hi))
		p.uc[a] = sub
		p.entries += n
	}
	return p, nil
}

// sliceShard restricts one shard to the influencer rows in [lo, hi),
// returning the sub-shard and its entry count. Heap shards share the row
// cell slices of the source (the sub-shard is frozen, so any mutation
// promotes a private copy first); mapped shards stay windows into the
// mapping, with the directory and contiguous cell region sub-sliced in
// place.
func sliceShard(st rowStore, lo, hi int32) (rowStore, int64) {
	switch s := st.(type) {
	case *ucAction:
		ri0, ri1 := rowIndexRange(st, lo, hi)
		sub := &ucAction{
			rowKey: s.rowKey[ri0:ri1:ri1],
			rows:   s.rows[ri0:ri1:ri1],
		}
		buildColumnsSorted(sub)
		return sub, sub.entryCount()
	case *mappedShard:
		ri0, ri1 := rowIndexRange(st, lo, hi)
		sub := &mappedShard{numUsers: s.numUsers}
		if ri0 < ri1 {
			sub.dir = s.dir[ri0:ri1:ri1]
			sub.first = sub.dir[0].off
			entStart := (sub.dir[0].off - s.first) / 16
			last := sub.dir[len(sub.dir)-1]
			entEnd := (last.off-s.first)/16 + uint64(last.count)
			sub.entries = s.entries[entStart:entEnd:entEnd]
			sub.bytes = int64(len(sub.dir))*16 + int64(len(sub.entries))*16
		}
		return sub, int64(len(sub.entries))
	default:
		panic(fmt.Sprintf("core: sliceShard: unknown row store %T", st))
	}
}

// rowIndexRange returns the half-open row-directory index range holding
// the influencer ids in [lo, hi); rowKeyAt ascends, so both bounds are
// binary searches.
func rowIndexRange(st rowStore, lo, hi int32) (int, int) {
	n := st.numRows()
	ri0 := sort.Search(n, func(i int) bool { return st.rowKeyAt(i) >= lo })
	ri1 := ri0 + sort.Search(n-ri0, func(i int) bool { return st.rowKeyAt(ri0+i) >= hi })
	return ri0, ri1
}

// filterShardToPartition restricts a freshly scanned heap shard to the
// engine's row range, returning the filtered shard and its entry count —
// the ingest-routing step: of the rows a tail scan produces, a partition
// keeps exactly the ones it owns. Unpartitioned engines keep the shard
// as-is.
func (e *Engine) filterShardToPartition(ua *ucAction) (*ucAction, int64) {
	if !e.partitioned {
		return ua, ua.entryCount()
	}
	sub, n := sliceShard(ua, int32(e.partLo), int32(e.partHi))
	return sub.(*ucAction), n
}
