package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"credist/internal/actionlog"
	"credist/internal/graph"
	"credist/internal/seedsel"
)

// snapshotInstance builds a learned, scanned engine plus its lineage for
// the snapshot tests.
func snapshotInstance(t *testing.T, seed uint64, users, actions int) (*graph.Graph, *actionlog.Log, *Engine, Lineage) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0xfeed))
	g, log := randomInstance(rng, users, actions)
	credit := LearnTimeAware(g, log)
	e := NewEngine(g, log, Options{Lambda: 0.001, Credit: credit})
	return g, log, e, DatasetLineage("snap-test", g, log)
}

func writeSnapshot(t *testing.T, e *Engine, lin Lineage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf, lin); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

// requireEnginesBitIdentical compares two engines through their public
// query surface: entry counts, every user's marginal gain, and the full
// CELF selection (seeds and gains) must match bit for bit. Engines are
// cloned before selection so the originals stay reusable.
func requireEnginesBitIdentical(t *testing.T, want, got *Engine, k int) {
	t.Helper()
	if want.Entries() != got.Entries() {
		t.Fatalf("entries %d != %d", got.Entries(), want.Entries())
	}
	if want.NumNodes() != got.NumNodes() {
		t.Fatalf("numUsers %d != %d", got.NumNodes(), want.NumNodes())
	}
	if want.NumActions() != got.NumActions() {
		t.Fatalf("numActions %d != %d", got.NumActions(), want.NumActions())
	}
	for u := 0; u < want.NumNodes(); u++ {
		gw, gg := want.Gain(graph.NodeID(u)), got.Gain(graph.NodeID(u))
		if gw != gg {
			t.Fatalf("Gain(%d) not bit-identical: %b vs %b", u, gg, gw)
		}
	}
	rw := seedsel.CELF(want.Clone(), k)
	rg := seedsel.CELF(got.Clone(), k)
	if len(rw.Seeds) != len(rg.Seeds) {
		t.Fatalf("CELF lengths %d vs %d", len(rg.Seeds), len(rw.Seeds))
	}
	for i := range rw.Seeds {
		if rw.Seeds[i] != rg.Seeds[i] || rw.Gains[i] != rg.Gains[i] {
			t.Fatalf("CELF diverged at %d: (%d, %b) vs (%d, %b)",
				i, rg.Seeds[i], rg.Gains[i], rw.Seeds[i], rw.Gains[i])
		}
	}
}

// TestSnapshotRoundTripBitExact is the format's core guarantee: a loaded
// engine answers every query with the saved engine's exact bits, the
// lineage survives, and re-serializing the loaded engine reproduces the
// file byte for byte (the encoding of a given engine is unique).
func TestSnapshotRoundTripBitExact(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 31, 60, 40)
	data := writeSnapshot(t, e, lin)

	back, backLin, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if backLin != lin {
		t.Fatalf("lineage round trip: %+v != %+v", backLin, lin)
	}
	if back.Lambda() != e.Lambda() {
		t.Fatalf("lambda %g != %g", back.Lambda(), e.Lambda())
	}
	requireEnginesBitIdentical(t, e, back, 8)

	// The time-aware parameters must survive bit-exact too.
	orig := e.CreditModel().(*TimeAwareCredit)
	restored := back.CreditModel().(*TimeAwareCredit)
	if len(orig.infl) != len(restored.infl) || len(orig.tau) != len(restored.tau) {
		t.Fatalf("credit params shape changed: infl %d/%d tau %d/%d",
			len(restored.infl), len(orig.infl), len(restored.tau), len(orig.tau))
	}
	for u := range orig.infl {
		if orig.infl[u] != restored.infl[u] {
			t.Fatalf("infl(%d) %b != %b", u, restored.infl[u], orig.infl[u])
		}
	}
	for ed, tau := range orig.tau {
		if got, ok := restored.tau[ed]; !ok || got != tau {
			t.Fatalf("tau(%v) %b,%v != %b", ed, got, ok, tau)
		}
	}

	again := writeSnapshot(t, back, backLin)
	if !bytes.Equal(again, data) {
		t.Fatal("re-serialized snapshot is not byte-identical")
	}
}

// TestSnapshotSimpleCreditRoundTrip covers the parameterless credit rule.
func TestSnapshotSimpleCreditRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 73))
	g, log := randomInstance(rng, 40, 24)
	e := NewEngine(g, log, Options{Lambda: 0.001})
	lin := DatasetLineage("simple", g, log)
	data := writeSnapshot(t, e, lin)
	back, _, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if _, ok := back.CreditModel().(SimpleCredit); !ok {
		t.Fatalf("credit model = %T, want SimpleCredit", back.CreditModel())
	}
	requireEnginesBitIdentical(t, e, back, 6)
}

// TestSnapshotLoadThenAppendBitIdenticalToRescan is the cold-start
// invariant: an engine saved over a log prefix, reloaded, and extended
// with AppendActions over the held-out tail is bit-for-bit a from-scratch
// NewEngine over the combined log.
func TestSnapshotLoadThenAppendBitIdenticalToRescan(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 14))
	g, log := randomInstance(rng, 70, 50)
	credit := LearnTimeAware(g, log)
	opts := Options{Lambda: 0.001, Credit: credit}
	headN := log.NumActions() - log.NumActions()/10
	head := log.Prefix(headN)

	saved := NewEngine(g, head, opts)
	data := writeSnapshot(t, saved, DatasetLineage("head", g, head))
	back, lin, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if err := lin.Check(g, log); err != nil {
		t.Fatalf("lineage check against the combined log: %v", err)
	}
	if err := back.AppendActions(g, log, actionlog.ActionID(lin.NumActions)); err != nil {
		t.Fatalf("AppendActions: %v", err)
	}
	if back.DeltaActions() != log.NumActions()-headN {
		t.Fatalf("DeltaActions = %d, want %d", back.DeltaActions(), log.NumActions()-headN)
	}
	requireEnginesBitIdentical(t, NewEngine(g, log, opts), back, 8)
}

func TestSnapshotLineageCheck(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 34))
	g, log := randomInstance(rng, 50, 30)
	lin := DatasetLineage("x", g, log)
	if err := lin.Check(g, log); err != nil {
		t.Fatalf("self check: %v", err)
	}
	// A different graph is refused.
	g2, _ := randomInstance(rng, 50, 30)
	if err := lin.Check(g2, log); err == nil {
		t.Error("foreign graph accepted")
	}
	// A log shorter than the recorded scan is refused.
	if err := lin.Check(g, log.Prefix(log.NumActions()-1)); err == nil {
		t.Error("truncated log accepted")
	}
	// A log whose prefix content diverges is refused even at equal length.
	tuples := append([]actionlog.Tuple(nil), log.Tuples()...)
	tuples[0].Time += 1
	other, err := actionlog.FromTuples(log.NumUsers(), tuples)
	if err != nil {
		t.Fatal(err)
	}
	if err := lin.Check(g, other); err == nil {
		t.Error("tampered log prefix accepted")
	}
	// A longer log with the same prefix passes (the caller appends the tail).
	longer := log
	if err := lin.Check(g, longer); err != nil {
		t.Errorf("equal log refused: %v", err)
	}
}

func TestSnapshotRefusesCommittedSeeds(t *testing.T) {
	g, _, e, lin := snapshotInstance(t, 47, 30, 16)
	_ = g
	e.Add(0)
	if err := e.WriteSnapshot(&bytes.Buffer{}, lin); err == nil {
		t.Fatal("snapshot of an engine with committed seeds accepted")
	}
}

func TestSnapshotRefusesMismatchedLineage(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 53, 30, 16)
	bad := lin
	bad.NumActions--
	if err := e.WriteSnapshot(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("lineage with wrong action count accepted")
	}
	bad = lin
	bad.NumUsers++
	if err := e.WriteSnapshot(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("lineage with wrong user count accepted")
	}
	// The writer enforces the reader's name bound, so it can never produce
	// a CRC-valid file that no load will accept.
	bad = lin
	bad.Dataset = strings.Repeat("x", 1<<16+1)
	if err := e.WriteSnapshot(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("oversized dataset name accepted")
	}
}

// TestSnapshotRejectsTruncation feeds every proper prefix of a valid
// snapshot to the reader: each must produce an error — never a panic, an
// OOM-scale allocation, or a silently short engine.
func TestSnapshotRejectsTruncation(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 59, 30, 16)
	data := writeSnapshot(t, e, lin)
	for i := 0; i < len(data); i++ {
		if _, _, err := ReadSnapshot(bytes.NewReader(data[:i])); err == nil {
			t.Fatalf("truncation at byte %d/%d accepted", i, len(data))
		}
	}
}

// TestSnapshotRejectsCorruption flips bytes throughout the file; the CRC
// footer (or an earlier structural check) must catch every one.
func TestSnapshotRejectsCorruption(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 61, 30, 16)
	data := writeSnapshot(t, e, lin)
	for i := 0; i < len(data); i += 7 {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 0x40
		if _, _, err := ReadSnapshot(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("bit flip at byte %d/%d accepted", i, len(data))
		}
	}
	// Trailing garbage after a valid payload is also rejected.
	if _, _, err := ReadSnapshot(bytes.NewReader(append(append([]byte(nil), data...), 0))); err == nil {
		t.Fatal("trailing data accepted")
	}
}

// TestSnapshotRejectsHostileCounts hand-crafts headers with absurd
// declared dimensions; the reader must fail fast on its sanity bounds
// rather than trust them.
func TestSnapshotRejectsHostileCounts(t *testing.T) {
	base := func() *bytes.Buffer {
		var buf bytes.Buffer
		buf.WriteString(snapshotMagic)
		buf.Write([]byte{1, 0, 0, 0}) // version
		return &buf
	}
	huge := []byte{0xff, 0xff, 0xff, 0xff}

	cases := map[string]func() []byte{
		"bad magic": func() []byte { return []byte("NOTASNAP00000000") },
		"bad version": func() []byte {
			var buf bytes.Buffer
			buf.WriteString(snapshotMagic)
			buf.Write([]byte{9, 0, 0, 0})
			return buf.Bytes()
		},
		"huge name length": func() []byte {
			buf := base()
			buf.Write(huge)
			return buf.Bytes()
		},
		"huge user count": func() []byte {
			buf := base()
			buf.Write([]byte{0, 0, 0, 0}) // empty name
			buf.Write(huge)
			return buf.Bytes()
		},
	}
	for name, mk := range cases {
		if _, _, err := ReadSnapshot(bytes.NewReader(mk())); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestSnapshotRejectsShortInflTable guards the time-aware parameter
// table: a file whose CRC is valid but whose influenceability array does
// not cover the declared universe must be refused at load, not let
// through to panic on the first Gamma evaluation.
func TestSnapshotRejectsShortInflTable(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 71, 30, 16)
	e.credit.(*TimeAwareCredit).infl = e.credit.(*TimeAwareCredit).infl[:1]
	data := writeSnapshot(t, e, lin)
	_, _, err := ReadSnapshot(bytes.NewReader(data))
	if err == nil {
		t.Fatal("snapshot with a short influenceability table accepted")
	}
}

// TestSnapshotSeedPrefixRoundTrip pins the version-2 seed-prefix section:
// a prefix computed by CELF survives a save/load round trip bit-exact,
// the encoding stays unique (re-save reproduces the file byte for byte),
// and structurally invalid prefixes are refused by writer and reader
// alike.
func TestSnapshotSeedPrefixRoundTrip(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 83, 50, 30)
	sel := seedsel.CELF(e.Clone(), 6)
	prefix := &SeedPrefix{Seeds: sel.Seeds, Gains: sel.Gains, LookupsAt: sel.LookupsAt}

	var buf bytes.Buffer
	if err := e.WriteSnapshotPrefix(&buf, lin, prefix); err != nil {
		t.Fatalf("WriteSnapshotPrefix: %v", err)
	}
	data := buf.Bytes()

	back, backLin, backPrefix, err := ReadSnapshotPrefix(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadSnapshotPrefix: %v", err)
	}
	if backPrefix == nil {
		t.Fatal("prefix did not survive the round trip")
	}
	if len(backPrefix.Seeds) != len(prefix.Seeds) {
		t.Fatalf("prefix length %d, want %d", len(backPrefix.Seeds), len(prefix.Seeds))
	}
	for i := range prefix.Seeds {
		if backPrefix.Seeds[i] != prefix.Seeds[i] || backPrefix.Gains[i] != prefix.Gains[i] ||
			backPrefix.LookupsAt[i] != prefix.LookupsAt[i] {
			t.Fatalf("prefix diverged at %d: (%d, %b, %d) vs (%d, %b, %d)", i,
				backPrefix.Seeds[i], backPrefix.Gains[i], backPrefix.LookupsAt[i],
				prefix.Seeds[i], prefix.Gains[i], prefix.LookupsAt[i])
		}
	}
	requireEnginesBitIdentical(t, e, back, 6)

	var again bytes.Buffer
	if err := back.WriteSnapshotPrefix(&again, backLin, backPrefix); err != nil {
		t.Fatalf("re-serialize: %v", err)
	}
	if !bytes.Equal(again.Bytes(), data) {
		t.Fatal("re-serialized prefixed snapshot is not byte-identical")
	}

	// Every truncation and bit flip of the prefixed file is still refused.
	for i := len(data) - 150; i < len(data); i++ {
		if i < 0 {
			continue
		}
		if _, _, _, err := ReadSnapshotPrefix(bytes.NewReader(data[:i])); err == nil {
			t.Fatalf("truncation at byte %d/%d accepted", i, len(data))
		}
	}
	for i := len(data) - 150; i < len(data); i += 3 {
		if i < 0 {
			continue
		}
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 0x20
		if _, _, _, err := ReadSnapshotPrefix(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("bit flip at byte %d/%d accepted", i, len(data))
		}
	}

	// Writer-side validation mirrors the reader's rules.
	badPrefixes := map[string]*SeedPrefix{
		"length mismatch": {Seeds: sel.Seeds, Gains: sel.Gains[:3], LookupsAt: sel.LookupsAt},
		"out of range":    {Seeds: []graph.NodeID{99999}, Gains: []float64{1}, LookupsAt: []int64{1}},
		"duplicate":       {Seeds: []graph.NodeID{2, 2}, Gains: []float64{2, 1}, LookupsAt: []int64{1, 2}},
		"nan gain":        {Seeds: []graph.NodeID{2}, Gains: []float64{math.NaN()}, LookupsAt: []int64{1}},
		"lookups decrease": {Seeds: []graph.NodeID{2, 3}, Gains: []float64{2, 1},
			LookupsAt: []int64{5, 4}},
	}
	for name, bad := range badPrefixes {
		if err := e.WriteSnapshotPrefix(&bytes.Buffer{}, lin, bad); err == nil {
			t.Errorf("writer accepted prefix with %s", name)
		}
	}
}

// craftVersion1 rewrites legacy version-2 bytes as the version-1 layout:
// patch the version field, drop the 4-byte empty prefix section before the
// footer, recompute the CRC. The input must carry no seed prefix.
func craftVersion1(v2 []byte) []byte {
	v1 := append([]byte(nil), v2[:len(v2)-8]...)
	binary.LittleEndian.PutUint32(v1[len(snapshotMagic):], snapshotVersionNoPrefix)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(v1))
	return append(v1, crc[:]...)
}

// TestSnapshotVersion1StillReads pins backward compatibility: a file in
// the pre-prefix version-1 layout (the version-2 layout minus the prefix
// section) still loads, with a nil prefix.
func TestSnapshotVersion1StillReads(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 89, 30, 16)
	var buf bytes.Buffer
	if err := writeSnapshotV2(&buf, e, lin, nil); err != nil {
		t.Fatalf("writeSnapshotV2: %v", err)
	}
	back, backLin, prefix, err := ReadSnapshotPrefix(bytes.NewReader(craftVersion1(buf.Bytes())))
	if err != nil {
		t.Fatalf("version-1 read: %v", err)
	}
	if prefix != nil {
		t.Fatal("version-1 file produced a seed prefix")
	}
	if backLin != lin {
		t.Fatalf("lineage %+v, want %+v", backLin, lin)
	}
	requireEnginesBitIdentical(t, e, back, 6)
}

// TestSnapshotVersion2StillReads pins backward compatibility with the
// pre-mmap version-2 layout (packed 12-byte cells, prefix after the
// shards, no header CRC or base section): such files still load with
// their seed prefix intact, and a re-save upgrades them to the version-3
// file the same engine would write directly.
func TestSnapshotVersion2StillReads(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 89, 30, 16)
	sel := seedsel.CELF(e.Clone(), 4)
	prefix := &SeedPrefix{Seeds: sel.Seeds, Gains: sel.Gains, LookupsAt: sel.LookupsAt}
	var buf bytes.Buffer
	if err := writeSnapshotV2(&buf, e, lin, prefix); err != nil {
		t.Fatalf("writeSnapshotV2: %v", err)
	}
	v2 := buf.Bytes()
	if v := binary.LittleEndian.Uint32(v2[len(snapshotMagic):]); v != snapshotVersionNoBase {
		t.Fatalf("legacy writer stamped version %d, want %d", v, snapshotVersionNoBase)
	}

	back, backLin, backPrefix, err := ReadSnapshotPrefix(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("version-2 read: %v", err)
	}
	if backLin != lin {
		t.Fatalf("lineage %+v, want %+v", backLin, lin)
	}
	if backPrefix == nil {
		t.Fatal("version-2 file lost its seed prefix")
	}
	for i := range prefix.Seeds {
		if backPrefix.Seeds[i] != prefix.Seeds[i] || backPrefix.Gains[i] != prefix.Gains[i] ||
			backPrefix.LookupsAt[i] != prefix.LookupsAt[i] {
			t.Fatalf("prefix entry %d changed: %+v vs %+v", i, backPrefix, prefix)
		}
	}
	requireEnginesBitIdentical(t, e, back, 6)

	// Re-saving the loaded engine upgrades to version 3, byte-identical to
	// what the original engine writes directly.
	var resaved, direct bytes.Buffer
	if err := back.WriteSnapshotPrefix(&resaved, backLin, backPrefix); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	if err := e.WriteSnapshotPrefix(&direct, lin, prefix); err != nil {
		t.Fatalf("direct save: %v", err)
	}
	if v := binary.LittleEndian.Uint32(resaved.Bytes()[len(snapshotMagic):]); v != snapshotVersion {
		t.Fatalf("re-save stamped version %d, want %d", v, snapshotVersion)
	}
	if !bytes.Equal(resaved.Bytes(), direct.Bytes()) {
		t.Fatal("version-2 re-save differs from the direct version-3 encoding")
	}
}

// TestSnapshotVersion3StillReads pins backward compatibility with the
// sketchless version-3 layout: WriteSnapshotPrefix still stamps version 3
// (not 5) so pre-sketch readers keep working, and the sketch-aware reader
// loads such files with the prefix intact and a nil sketch.
func TestSnapshotVersion3StillReads(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 97, 30, 16)
	sel := seedsel.CELF(e.Clone(), 4)
	prefix := &SeedPrefix{Seeds: sel.Seeds, Gains: sel.Gains, LookupsAt: sel.LookupsAt}
	var buf bytes.Buffer
	if err := e.WriteSnapshotPrefix(&buf, lin, prefix); err != nil {
		t.Fatalf("WriteSnapshotPrefix: %v", err)
	}
	v3 := buf.Bytes()
	if v := binary.LittleEndian.Uint32(v3[len(snapshotMagic):]); v != snapshotVersion {
		t.Fatalf("sketchless writer stamped version %d, want %d", v, snapshotVersion)
	}

	back, backLin, backPrefix, sketch, err := ReadSnapshotSketch(bytes.NewReader(v3))
	if err != nil {
		t.Fatalf("version-3 read: %v", err)
	}
	if sketch != nil {
		t.Fatal("version-3 file produced an RR sketch")
	}
	if backLin != lin {
		t.Fatalf("lineage %+v, want %+v", backLin, lin)
	}
	if backPrefix == nil {
		t.Fatal("version-3 file lost its seed prefix")
	}
	for i := range prefix.Seeds {
		if backPrefix.Seeds[i] != prefix.Seeds[i] || backPrefix.Gains[i] != prefix.Gains[i] ||
			backPrefix.LookupsAt[i] != prefix.LookupsAt[i] {
			t.Fatalf("prefix entry %d changed: %+v vs %+v", i, backPrefix, prefix)
		}
	}
	requireEnginesBitIdentical(t, e, back, 6)
}

// TestSnapshotVersion4StillReads pins backward compatibility with the
// version-4 partition-slice layout: a full-range slice loads through the
// generic reader as a complete engine, prefix intact, nil sketch (slices
// never carry one).
func TestSnapshotVersion4StillReads(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 101, 30, 16)
	sel := seedsel.CELF(e.Clone(), 4)
	prefix := &SeedPrefix{Seeds: sel.Seeds, Gains: sel.Gains, LookupsAt: sel.LookupsAt}
	var buf bytes.Buffer
	if err := e.WriteSnapshotSlice(&buf, lin, prefix, 0, e.NumNodes()); err != nil {
		t.Fatalf("WriteSnapshotSlice: %v", err)
	}
	v4 := buf.Bytes()
	if v := binary.LittleEndian.Uint32(v4[len(snapshotMagic):]); v != snapshotVersionSlice {
		t.Fatalf("slice writer stamped version %d, want %d", v, snapshotVersionSlice)
	}

	back, backLin, backPrefix, sketch, err := ReadSnapshotSketch(bytes.NewReader(v4))
	if err != nil {
		t.Fatalf("version-4 read: %v", err)
	}
	if sketch != nil {
		t.Fatal("version-4 slice produced an RR sketch")
	}
	if backLin != lin {
		t.Fatalf("lineage %+v, want %+v", backLin, lin)
	}
	if backPrefix == nil {
		t.Fatal("version-4 slice lost its seed prefix")
	}
	for i := range prefix.Seeds {
		if backPrefix.Seeds[i] != prefix.Seeds[i] || backPrefix.Gains[i] != prefix.Gains[i] ||
			backPrefix.LookupsAt[i] != prefix.LookupsAt[i] {
			t.Fatalf("prefix entry %d changed: %+v vs %+v", i, backPrefix, prefix)
		}
	}
	requireEnginesBitIdentical(t, e, back, 6)
}

// TestSnapshotUnsupportedVersionError pins the error an operator sees on
// a file from a future format: it names the found version and the full
// supported range, in both the parsing and the mapped reader.
func TestSnapshotUnsupportedVersionError(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 103, 20, 10)
	data := writeSnapshot(t, e, lin)
	future := append([]byte(nil), data[:len(data)-4]...)
	binary.LittleEndian.PutUint32(future[len(snapshotMagic):], 99)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(future))
	future = append(future, crc[:]...)

	_, _, _, _, err := ReadSnapshotSketch(bytes.NewReader(future))
	if err == nil {
		t.Fatal("version-99 file accepted")
	}
	for _, sub := range []string{"unsupported version 99", "1 through 6"} {
		if !strings.Contains(err.Error(), sub) {
			t.Errorf("read error %q missing %q", err, sub)
		}
	}

	path := filepath.Join(t.TempDir(), "future.bin")
	if err := os.WriteFile(path, future, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, _, err = OpenSnapshotMapped(path)
	if err == nil {
		t.Fatal("mapped open accepted a version-99 file")
	}
	for _, sub := range []string{"unsupported version 99", "1 through 6"} {
		if !strings.Contains(err.Error(), sub) {
			t.Errorf("mapped open error %q missing %q", err, sub)
		}
	}
}

// TestHashStability pins that the lineage hashes react to content, not
// representation.
func TestHashStability(t *testing.T) {
	rng := rand.New(rand.NewPCG(67, 76))
	g, log := randomInstance(rng, 40, 20)
	if HashGraph(g) != HashGraph(g) || HashLogPrefix(log, 10) != HashLogPrefix(log, 10) {
		t.Fatal("hashes are not deterministic")
	}
	if HashLogPrefix(log, 10) == HashLogPrefix(log, 11) {
		t.Error("log hash ignores the prefix length")
	}
	// The prefix hash of a prefix-restricted log matches the full log's.
	if HashLogPrefix(log.Prefix(10), 10) != HashLogPrefix(log, 10) {
		t.Error("prefix hash differs between Prefix view and full log")
	}
}
