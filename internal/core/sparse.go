package core

import (
	"cmp"
	"slices"
	"sort"
)

// This file holds the sorted-sparse shard shared by Engine and
// CompactEngine: the ucAction structure, its binary-search helpers, and
// the shard copy used by copy-on-write and Compact. Keeping every sorted
// search in one place means the base/delta merge path and the flattened
// ablation reuse one implementation instead of growing private copies.

// ucEntry is one cell of an influencer's credit row.
type ucEntry struct {
	u int32   // influenced user
	c float64 // Gamma^{V-S}_{v,u}(a)
}

// ucAction holds one action's credit matrix as sorted sparse rows: rowKey
// lists the influencers in ascending order and rows[i] holds rowKey[i]'s
// (influenced, credit) cells sorted by influenced id. colKey/cols mirror
// the structure column-wise (influenced -> sorted influencer ids) so seed
// updates can walk a column without scanning every row. All four slices
// are kept exactly in sync; iteration order is therefore fixed, which
// makes every float summation over the structure deterministic.
type ucAction struct {
	rowKey []int32
	rows   [][]ucEntry
	colKey []int32
	cols   [][]int32
}

// searchRow locates influenced id u in a sorted row.
func searchRow(row []ucEntry, u int32) (int, bool) {
	return slices.BinarySearchFunc(row, u, func(e ucEntry, u int32) int {
		return cmp.Compare(e.u, u)
	})
}

// sortedRange returns the half-open index range [lo, hi) of value k in an
// ascending int32 slice; lo == hi when k is absent. Both bounds are found
// by binary search (rows can hold thousands of duplicates of one key). It
// is the row/column range search shared by the flattened CompactEngine
// layout.
func sortedRange(keys []int32, k int32) (int, int) {
	lo := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	hi := lo + sort.Search(len(keys)-lo, func(i int) bool { return keys[lo+i] > k })
	return lo, hi
}

// cloneShard returns an exact deep copy of a shard. It backs Engine's
// copy-on-write Add (the first mutation of a shared shard copies it) and
// Compact (re-allocating a delta shard to exact size sheds the growth
// slack slices.Insert left behind).
func cloneShard(src *ucAction) *ucAction {
	dst := &ucAction{
		rowKey: slices.Clone(src.rowKey),
		colKey: slices.Clone(src.colKey),
		rows:   make([][]ucEntry, len(src.rows)),
		cols:   make([][]int32, len(src.cols)),
	}
	for i, row := range src.rows {
		dst.rows[i] = slices.Clone(row)
	}
	for i, col := range src.cols {
		dst.cols[i] = slices.Clone(col)
	}
	return dst
}

// row returns v's credit cells, sorted by influenced id, or nil.
func (ua *ucAction) row(v int32) []ucEntry {
	if i, ok := slices.BinarySearch(ua.rowKey, v); ok {
		return ua.rows[i]
	}
	return nil
}

// col returns the sorted influencer ids with credit over u, or nil.
func (ua *ucAction) col(u int32) []int32 {
	if i, ok := slices.BinarySearch(ua.colKey, u); ok {
		return ua.cols[i]
	}
	return nil
}

// get returns the credit of entry (v,u) and whether it exists.
func (ua *ucAction) get(v, u int32) (float64, bool) {
	row := ua.row(v)
	if i, ok := searchRow(row, u); ok {
		return row[i].c, true
	}
	return 0, false
}

// cell returns a pointer to the credit of entry (v,u), creating the entry
// (and mirroring it in the column index) when absent; created reports
// whether it did. The pointer is valid until the next structural change.
func (ua *ucAction) cell(v, u int32) (cr *float64, created bool) {
	ri, ok := slices.BinarySearch(ua.rowKey, v)
	if !ok {
		ua.rowKey = slices.Insert(ua.rowKey, ri, v)
		ua.rows = slices.Insert(ua.rows, ri, []ucEntry(nil))
	}
	ei, found := searchRow(ua.rows[ri], u)
	if !found {
		ua.rows[ri] = slices.Insert(ua.rows[ri], ei, ucEntry{u: u})
		ua.colInsert(u, v)
	}
	return &ua.rows[ri][ei].c, !found
}

// colInsert mirrors a new entry (v,u) into the column index.
func (ua *ucAction) colInsert(u, v int32) {
	ci, ok := slices.BinarySearch(ua.colKey, u)
	if !ok {
		ua.colKey = slices.Insert(ua.colKey, ci, u)
		ua.cols = slices.Insert(ua.cols, ci, []int32(nil))
	}
	if vi, found := slices.BinarySearch(ua.cols[ci], v); !found {
		ua.cols[ci] = slices.Insert(ua.cols[ci], vi, v)
	}
}

// colRemove drops v from u's column, pruning the column when it empties.
func (ua *ucAction) colRemove(u, v int32) {
	ci, ok := slices.BinarySearch(ua.colKey, u)
	if !ok {
		return
	}
	vi, found := slices.BinarySearch(ua.cols[ci], v)
	if !found {
		return
	}
	ua.cols[ci] = slices.Delete(ua.cols[ci], vi, vi+1)
	if len(ua.cols[ci]) == 0 {
		ua.colKey = slices.Delete(ua.colKey, ci, ci+1)
		ua.cols = slices.Delete(ua.cols, ci, ci+1)
	}
}

// rowRemoveEntry drops cell (v,u) from v's row, pruning the row when it
// empties; it does not touch the column index.
func (ua *ucAction) rowRemoveEntry(v, u int32) bool {
	ri, ok := slices.BinarySearch(ua.rowKey, v)
	if !ok {
		return false
	}
	ei, found := searchRow(ua.rows[ri], u)
	if !found {
		return false
	}
	ua.rows[ri] = slices.Delete(ua.rows[ri], ei, ei+1)
	if len(ua.rows[ri]) == 0 {
		ua.rowKey = slices.Delete(ua.rowKey, ri, ri+1)
		ua.rows = slices.Delete(ua.rows, ri, ri+1)
	}
	return true
}

// find locates entry (v,u), returning its row and cell indexes.
func (ua *ucAction) find(v, u int32) (ri, ei int, ok bool) {
	ri, ok = slices.BinarySearch(ua.rowKey, v)
	if !ok {
		return 0, 0, false
	}
	ei, ok = searchRow(ua.rows[ri], u)
	return ri, ei, ok
}

// remove deletes entry (v,u) from both indexes; reports whether it existed.
func (ua *ucAction) remove(v, u int32) bool {
	if !ua.rowRemoveEntry(v, u) {
		return false
	}
	ua.colRemove(u, v)
	return true
}

// removeRow deletes v's entire row, unmirroring every cell from the column
// index; returns how many entries were removed.
func (ua *ucAction) removeRow(v int32) int {
	ri, ok := slices.BinarySearch(ua.rowKey, v)
	if !ok {
		return 0
	}
	row := ua.rows[ri]
	ua.rowKey = slices.Delete(ua.rowKey, ri, ri+1)
	ua.rows = slices.Delete(ua.rows, ri, ri+1)
	for _, en := range row {
		ua.colRemove(en.u, v)
	}
	return len(row)
}

// removeCol deletes u's entire column, dropping every (v,u) cell from the
// rows; returns how many entries were removed.
func (ua *ucAction) removeCol(u int32) int {
	ci, ok := slices.BinarySearch(ua.colKey, u)
	if !ok {
		return 0
	}
	col := ua.cols[ci]
	ua.colKey = slices.Delete(ua.colKey, ci, ci+1)
	ua.cols = slices.Delete(ua.cols, ci, ci+1)
	n := 0
	for _, v := range col {
		if ua.rowRemoveEntry(v, u) {
			n++
		}
	}
	return n
}

// residentBytes reports the shard's slice footprint: 16 bytes per entry in
// the rows (int32 influenced id + float64 credit, padded) plus 4 bytes in
// the column index, with per-row slice headers on top.
func (ua *ucAction) residentBytes() int64 {
	bytes := int64(cap(ua.rowKey))*4 + int64(cap(ua.colKey))*4
	for _, row := range ua.rows {
		bytes += int64(cap(row)) * 16
	}
	for _, col := range ua.cols {
		bytes += int64(cap(col)) * 4
	}
	return bytes + int64(cap(ua.rows)+cap(ua.cols))*24 // inner slice headers
}
