package core

import (
	"fmt"
	"math"
	"slices"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

// Objective generalizes the single global spread objective sigma_cd into
// the campaign family: per-node audience weights and an optional time
// window measured from each action's first participation. The weighted,
// windowed objective is
//
//	sigma_obj(S) = sum_u w(u) * kappa^tau_{S,u}
//
// where kappa^tau gates every per-action credit term by "u performed a
// within tau of a's start": for u outside S,
// kappa^tau_{S,u} = (1/A_u) * sum_{a in A_u} gate(u,a) * Gamma_{S,u}(a),
// and for a seed s the unit self-credit becomes
// (1/A_s) * sum_{a in A_s} gate(s,a) — gated per action, which is exactly
// what keeps the telescoping identity sigma_obj(S) = sum of objective
// marginal gains intact (Engine.GainObj).
//
// Crucially the objective only reweights how credit is *valued*, never how
// it *flows*: UC and SC updates (Lemmas 2 and 3) are untouched, credits
// stay additive across influencer rows, and therefore row-range
// partitioning, scatter-gather commits, and the copy-on-write machinery
// all work unchanged for every objective. Costs, budgets, and blocked
// rival sets live above this layer (internal/celf and the facade): they
// change which seeds get picked, not what a seed set is worth.
//
// A nil *Objective — and the zero value — is the default objective
// (uniform weight 1, no window), and every evaluation path routes it
// through the exact pre-objective code path, so default answers are
// bit-identical to a build without this layer at all.
type Objective struct {
	// Weights is the per-node audience weight w(u), indexed by node id and
	// covering the whole universe; nil means uniform weight 1. Weights
	// must be finite and non-negative (Validate enforces it).
	Weights []float64
	// Windowed enables the time window: credit earned for a participation
	// later than Tau after the action's first participation counts for
	// nothing. Tau is in the action log's (arbitrary) time units.
	Windowed bool
	Tau      float64
	// Delays supplies the per-(action, participant) delays the window gate
	// reads on the engine path (the Evaluator reads its own propagation
	// timestamps instead, which hold identical floats). Required when
	// Windowed and evaluating through an Engine; BuildActionDelays builds
	// one from the training log.
	Delays *ActionDelays
}

// IsDefault reports whether o is the default objective — uniform weights
// and no window — for which every caller takes the exact pre-objective
// code path (bit-identity by construction, not by arithmetic accident).
func (o *Objective) IsDefault() bool {
	return o == nil || (o.Weights == nil && !o.Windowed)
}

// Validate enforces the structural rules every objective consumer relies
// on: a weight vector covering the universe with finite non-negative
// entries, and a finite non-negative window.
func (o *Objective) Validate(numUsers int) error {
	if o == nil {
		return nil
	}
	if o.Weights != nil && len(o.Weights) != numUsers {
		return fmt.Errorf("core: objective weights cover %d users, universe has %d", len(o.Weights), numUsers)
	}
	for u, w := range o.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return fmt.Errorf("core: objective weight %g for user %d (want finite and non-negative)", w, u)
		}
	}
	if o.Windowed && (math.IsNaN(o.Tau) || o.Tau < 0) {
		return fmt.Errorf("core: objective window %g (want finite and non-negative)", o.Tau)
	}
	return nil
}

// weight returns w(u) (1 under uniform weights).
func (o *Objective) weight(u graph.NodeID) float64 {
	if o == nil || o.Weights == nil {
		return 1
	}
	return o.Weights[u]
}

// factor returns w(u) * gate(u, a) on the engine path: the multiplier a
// credit term over (u, a) carries under this objective.
func (o *Objective) factor(a actionlog.ActionID, u graph.NodeID) float64 {
	w := o.weight(u)
	if w == 0 {
		return 0
	}
	if o != nil && o.Windowed {
		if o.Delays == nil {
			panic("core: windowed objective evaluated through an engine without ActionDelays")
		}
		if d, ok := o.Delays.Delay(a, u); !ok || d > o.Tau {
			return 0
		}
	}
	return w
}

// ActionDelays indexes, per action, every participant's delay from the
// action's first participation — the quantity the time-window gate
// compares against tau. It is derived from the action log alone (the
// snapshot format does not change for the objective layer), so a model
// restored from any snapshot version can serve windowed objectives as
// long as its dataset is present, which the lineage check guarantees.
type ActionDelays struct {
	users  [][]int32   // per action: participant ids, ascending
	delays [][]float64 // aligned with users: t(u,a) - min_v t(v,a)
}

// BuildActionDelays scans the log once and returns the delay index.
// Tuples within an action are chronological, so the action's start time
// is its first tuple's timestamp; the per-user rows are re-sorted by id
// for binary-search lookups during gain walks.
func BuildActionDelays(log *actionlog.Log) *ActionDelays {
	n := log.NumActions()
	d := &ActionDelays{
		users:  make([][]int32, n),
		delays: make([][]float64, n),
	}
	for a := 0; a < n; a++ {
		tuples := log.Action(actionlog.ActionID(a))
		if len(tuples) == 0 {
			continue
		}
		t0 := tuples[0].Time
		type ud struct {
			u int32
			d float64
		}
		pairs := make([]ud, len(tuples))
		for i, t := range tuples {
			pairs[i] = ud{u: int32(t.User), d: t.Time - t0}
		}
		slices.SortFunc(pairs, func(x, y ud) int {
			switch {
			case x.u < y.u:
				return -1
			case x.u > y.u:
				return 1
			}
			return 0
		})
		us := make([]int32, len(pairs))
		ds := make([]float64, len(pairs))
		for i, p := range pairs {
			us[i] = p.u
			ds[i] = p.d
		}
		d.users[a] = us
		d.delays[a] = ds
	}
	return d
}

// NumActions returns how many actions the index covers.
func (d *ActionDelays) NumActions() int { return len(d.users) }

// Delay returns u's participation delay in action a and whether u
// participated at all.
func (d *ActionDelays) Delay(a actionlog.ActionID, u graph.NodeID) (float64, bool) {
	if int(a) >= len(d.users) {
		return 0, false
	}
	us := d.users[a]
	i, ok := slices.BinarySearch(us, int32(u))
	if !ok {
		return 0, false
	}
	return d.delays[a][i], true
}

// GainObj computes the marginal objective gain
// sigma_obj(S+x) - sigma_obj(S) of candidate x under obj: the Theorem 3
// walk with every credit term scaled by the objective factor
// w(u)*gate(u,a) — the self-credit term by x's own factor, each UC row
// entry by its influenced user's. The walk order (actions in log order,
// row entries in ascending influenced-id order) is exactly Gain's, so
// objective gains are bit-identical across engine instances, worker
// counts, and partition counts; the default objective short-circuits to
// Gain itself.
func (e *Engine) GainObj(x graph.NodeID, obj *Objective) float64 {
	if obj.IsDefault() {
		return e.Gain(x)
	}
	if !e.ownsRow(x) {
		panic(fmt.Sprintf("core: GainObj(%d) outside partition rows [%d,%d)", x, e.partLo, e.partHi))
	}
	ax := float64(e.au[x])
	if ax == 0 {
		return 0
	}
	if slices.Contains(e.seeds, x) {
		return 0
	}
	mg := 0.0
	for _, a := range e.actionsOf[x] {
		mga := 0.0
		if fx := obj.factor(a, x); fx != 0 {
			mga = fx / ax
		}
		for _, en := range e.uc[a].row(x) {
			if f := obj.factor(a, en.u); f != 0 {
				mga += f * en.c / float64(e.au[en.u])
			}
		}
		scx := 0.0
		if e.sc[a] != nil {
			scx = e.sc[a][x]
		}
		mg += mga * (1 - scx)
	}
	return mg
}

// SpreadObj computes sigma_obj(S) directly from the training
// propagations, mirroring Spread with every contribution scaled by
// w(u)*gate(u,a): a seed's unit self-credit becomes the per-action gated
// sum (1/A_s)*sum_a gate(s,a)*w(s), and each influenced participant
// contributes gate(u,a)*w(u)*Gamma_{S,u}(a)/A_u. The default objective
// routes through Spread unchanged.
func (ev *Evaluator) SpreadObj(seeds []graph.NodeID, obj *Objective) float64 {
	if obj.IsDefault() {
		return ev.Spread(seeds)
	}
	inS := make(map[graph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		inS[s] = true
	}
	spread := 0.0
	seen := make(map[actionlog.ActionID]bool)
	for _, s := range seeds {
		for _, a := range ev.actionsOf[s] {
			if seen[a] {
				continue
			}
			seen[a] = true
			spread += ev.actionSpreadObj(a, inS, obj)
		}
	}
	return spread
}

// actionSpreadObj is actionSpread under an objective. Unlike
// actionSpread, seed self-credits are accumulated here (per action, so
// the window can gate them) instead of as a flat +1 per seed in the
// caller.
func (ev *Evaluator) actionSpreadObj(a actionlog.ActionID, inS map[graph.NodeID]bool, obj *Objective) float64 {
	p := ev.props[a]
	val := make([]float64, len(p.Users))
	total := 0.0
	for i, u := range p.Users {
		f := obj.weight(u)
		if f != 0 && obj.Windowed && p.Times[i]-p.Times[0] > obj.Tau {
			f = 0
		}
		if inS[u] {
			val[i] = 1
			if f != 0 {
				total += f / float64(ev.au[u])
			}
			continue
		}
		sum := 0.0
		gi := ev.gammas[a][i]
		for k, j := range p.Parents[i] {
			if val[j] > 0 {
				sum += val[j] * gi[k]
			}
		}
		val[i] = sum
		if sum > 0 && f != 0 {
			total += f * sum / float64(ev.au[u])
		}
	}
	return total
}
