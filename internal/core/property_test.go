package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

// instanceFromSeed deterministically derives a random instance, a nested
// pair of seed sets S ⊆ T, and a candidate x ∉ T from a quick-check seed.
func instanceFromSeed(seed uint64) (g *graph.Graph, log *actionlog.Log, s, tt []graph.NodeID, x graph.NodeID) {
	rng := rand.New(rand.NewPCG(seed, 0xabcdef))
	g, log = randomInstance(rng, 10+rng.IntN(8), 3+rng.IntN(5))
	n := g.NumNodes()
	perm := rng.Perm(n)
	sLen := rng.IntN(3)
	tLen := sLen + rng.IntN(3)
	for i := 0; i < tLen; i++ {
		tt = append(tt, graph.NodeID(perm[i]))
	}
	s = tt[:sLen]
	x = graph.NodeID(perm[tLen])
	return g, log, s, tt, x
}

// TestSpreadMonotone checks sigma_cd(S) <= sigma_cd(T) whenever S ⊆ T
// (Theorem 2, monotonicity) on random instances.
func TestSpreadMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		g, log, s, tt, _ := instanceFromSeed(seed)
		ev := NewEvaluator(g, log, nil)
		return ev.Spread(s) <= ev.Spread(tt)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSpreadSubmodular checks the diminishing-returns inequality
// sigma(S+x)-sigma(S) >= sigma(T+x)-sigma(T) for S ⊆ T, x ∉ T
// (Theorem 2, submodularity) on random instances.
func TestSpreadSubmodular(t *testing.T) {
	f := func(seed uint64) bool {
		g, log, s, tt, x := instanceFromSeed(seed)
		ev := NewEvaluator(g, log, nil)
		gainS := ev.Spread(append(append([]graph.NodeID(nil), s...), x)) - ev.Spread(s)
		gainT := ev.Spread(append(append([]graph.NodeID(nil), tt...), x)) - ev.Spread(tt)
		return gainS >= gainT-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSpreadNonNegativeAndBounded checks 0 <= sigma_cd(S) <= |V| (each
// kappa_{S,u} is a probability-like quantity in [0,1]).
func TestSpreadNonNegativeAndBounded(t *testing.T) {
	f := func(seed uint64) bool {
		g, log, _, tt, _ := instanceFromSeed(seed)
		ev := NewEvaluator(g, log, nil)
		sp := ev.Spread(tt)
		return sp >= 0 && sp <= float64(g.NumNodes())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSetCreditWithinUnit checks Gamma_{S,u}(a) ∈ [0,1]: the credit a set
// earns for one activation never exceeds full credit. This is the
// normalization invariant the direct-credit rules must guarantee.
func TestSetCreditWithinUnit(t *testing.T) {
	f := func(seed uint64) bool {
		g, log, _, tt, _ := instanceFromSeed(seed)
		ev := NewEvaluator(g, log, nil)
		for a := 0; a < log.NumActions(); a++ {
			for u := 0; u < g.NumNodes(); u++ {
				c := ev.SetCredit(actionlog.ActionID(a), tt, graph.NodeID(u))
				if c < 0 || c > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineGainMatchesEvaluatorQuick cross-checks Theorem 3 (the engine's
// incremental marginal gain) against brute-force recomputation, after a
// random committed prefix.
func TestEngineGainMatchesEvaluatorQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g, log, _, tt, x := instanceFromSeed(seed)
		e := NewEngine(g, log, Options{})
		ev := NewEvaluator(g, log, nil)
		for _, s := range tt {
			e.Add(s)
		}
		want := ev.Spread(append(append([]graph.NodeID(nil), tt...), x)) - ev.Spread(tt)
		got := e.Gain(x)
		return abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineGainOrderIndependent checks that the committed-prefix order
// does not change subsequent gains (the UC/SC state depends only on the
// set, not the order, per Lemmas 2 and 3).
func TestEngineGainOrderIndependent(t *testing.T) {
	f := func(seed uint64) bool {
		g, log, _, tt, x := instanceFromSeed(seed)
		if len(tt) < 2 {
			return true
		}
		e1 := NewEngine(g, log, Options{})
		e2 := NewEngine(g, log, Options{})
		for _, s := range tt {
			e1.Add(s)
		}
		for i := len(tt) - 1; i >= 0; i-- {
			e2.Add(tt[i])
		}
		return abs(e1.Gain(x)-e2.Gain(x)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
