package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"credist/internal/graph"
	"credist/internal/seedsel"
)

// TestCELFEqualsGreedyOnEngine: the lazy-forward optimization must select
// exactly the seeds plain greedy selects when driven by the CD engine
// (CELF's correctness rests on sigma_cd's submodularity, Theorem 2).
// Floating-point ties could in principle reorder equal-gain candidates;
// we therefore compare gains, spreads and sets rather than raw order, and
// use integer-friendly instances.
func TestCELFEqualsGreedyOnEngine(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 23))
	for trial := 0; trial < 8; trial++ {
		g, log := randomInstance(rng, 20+rng.IntN(10), 8+rng.IntN(6))
		k := 2 + rng.IntN(4)

		celf := seedsel.CELF(NewEngine(g, log, Options{}), k)
		greedy := seedsel.Greedy(NewEngine(g, log, Options{}), k)

		if len(celf.Seeds) != len(greedy.Seeds) {
			t.Fatalf("trial %d: seed counts differ: %d vs %d", trial, len(celf.Seeds), len(greedy.Seeds))
		}
		for i := range celf.Gains {
			if math.Abs(celf.Gains[i]-greedy.Gains[i]) > 1e-9 {
				t.Fatalf("trial %d: gain %d differs: %g vs %g",
					trial, i, celf.Gains[i], greedy.Gains[i])
			}
		}
		if math.Abs(celf.Spread()-greedy.Spread()) > 1e-9 {
			t.Fatalf("trial %d: spreads differ: %g vs %g", trial, celf.Spread(), greedy.Spread())
		}
		if celf.Lookups > greedy.Lookups {
			t.Fatalf("trial %d: CELF did more lookups (%d) than greedy (%d)",
				trial, celf.Lookups, greedy.Lookups)
		}
	}
}

// TestGreedyApproximationOnSmallInstances: brute-force the optimal seed
// set on tiny instances and confirm greedy achieves at least (1 - 1/e) of
// it — the Nemhauser bound the paper's Algorithm 1 inherits.
func TestGreedyApproximationOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewPCG(29, 29))
	bound := 1 - 1/math.E
	for trial := 0; trial < 12; trial++ {
		g, log := randomInstance(rng, 8+rng.IntN(4), 4+rng.IntN(4))
		n := g.NumNodes()
		k := 2
		ev := NewEvaluator(g, log, nil)

		// Brute force the optimum over all k-subsets.
		best := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				sp := ev.Spread([]graph.NodeID{graph.NodeID(i), graph.NodeID(j)})
				if sp > best {
					best = sp
				}
			}
		}
		res := seedsel.CELF(NewEngine(g, log, Options{}), k)
		got := ev.Spread(res.Seeds)
		if best > 0 && got < bound*best-1e-9 {
			t.Fatalf("trial %d: greedy %g below (1-1/e)*opt = %g", trial, got, bound*best)
		}
	}
}
