package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"credist/internal/graph"
)

// WriteTimeAware serializes learned time-aware credit parameters:
//
//	numUsers <n>
//	infl <user> <value>        (nonzero entries only)
//	tau <from> <to> <value>
//
// so a model learned once can be reused across processes without
// re-scanning the training log. Values use %g (Go's shortest decimal that
// parses back to the same float64), so a write/read round trip is exact,
// and tau records are sorted by edge so identical models produce
// byte-identical files.
func WriteTimeAware(w io.Writer, c *TimeAwareCredit) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "numUsers %d\n", len(c.infl)); err != nil {
		return err
	}
	for u, v := range c.infl {
		if v != 0 {
			if _, err := fmt.Fprintf(bw, "infl %d %g\n", u, v); err != nil {
				return err
			}
		}
	}
	edges := make([]graph.Edge, 0, len(c.tau))
	for e := range c.tau {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "tau %d %d %g\n", e.From, e.To, c.tau[e]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTimeAware parses the format written by WriteTimeAware. Malformed
// input is rejected with a line-numbered error; that includes a repeated
// numUsers header (which would silently discard every previously parsed
// infl entry) and duplicate infl or tau records (where last-wins would
// mask a corrupted or concatenated file).
func ReadTimeAware(r io.Reader) (*TimeAwareCredit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	c := &TimeAwareCredit{tau: make(map[graph.Edge]float64)}
	seenInfl := make(map[int]struct{})
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "numUsers":
			if len(fields) != 2 {
				return nil, fmt.Errorf("core: line %d: malformed numUsers", lineNo)
			}
			if c.infl != nil {
				return nil, fmt.Errorf("core: line %d: duplicate numUsers header (would discard %d parsed infl entries)", lineNo, len(seenInfl))
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("core: line %d: bad numUsers %q", lineNo, fields[1])
			}
			c.infl = make([]float64, n)
		case "infl":
			if len(fields) != 3 || c.infl == nil {
				return nil, fmt.Errorf("core: line %d: malformed infl (numUsers must come first)", lineNo)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil || u < 0 || u >= len(c.infl) {
				return nil, fmt.Errorf("core: line %d: bad user %q", lineNo, fields[1])
			}
			if _, dup := seenInfl[u]; dup {
				return nil, fmt.Errorf("core: line %d: duplicate infl record for user %d", lineNo, u)
			}
			seenInfl[u] = struct{}{}
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("core: line %d: bad infl value: %w", lineNo, err)
			}
			c.infl[u] = v
		case "tau":
			if len(fields) != 4 {
				return nil, fmt.Errorf("core: line %d: malformed tau", lineNo)
			}
			from, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("core: line %d: bad from: %w", lineNo, err)
			}
			to, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("core: line %d: bad to: %w", lineNo, err)
			}
			v, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("core: line %d: bad tau value: %w", lineNo, err)
			}
			e := graph.Edge{From: graph.NodeID(from), To: graph.NodeID(to)}
			if _, dup := c.tau[e]; dup {
				return nil, fmt.Errorf("core: line %d: duplicate tau record for edge (%d,%d)", lineNo, from, to)
			}
			c.tau[e] = v
		default:
			return nil, fmt.Errorf("core: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c.infl == nil {
		return nil, fmt.Errorf("core: missing numUsers header")
	}
	return c, nil
}
