package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

// TestIngestMatchesFullScan: scanning a log of n actions must equal
// scanning a prefix and ingesting the rest, for every gain.
func TestIngestMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 41))
	for trial := 0; trial < 10; trial++ {
		g, log := randomInstance(rng, 15+rng.IntN(10), 6+rng.IntN(4))
		full := NewEngine(g, log, Options{})

		// Prefix log: first half of the actions.
		half := log.NumActions() / 2
		if half == 0 {
			continue
		}
		prefix := make([]actionlog.ActionID, half)
		for i := range prefix {
			prefix[i] = actionlog.ActionID(i)
		}
		partial := NewEngine(g, log.Restrict(prefix), Options{})
		for a := half; a < log.NumActions(); a++ {
			p := actionlog.BuildPropagation(log, g, actionlog.ActionID(a))
			if err := partial.IngestAction(p, nil); err != nil {
				t.Fatal(err)
			}
		}

		if full.Entries() != partial.Entries() {
			t.Fatalf("trial %d: entries %d != %d", trial, full.Entries(), partial.Entries())
		}
		if full.NumActions() != partial.NumActions() {
			t.Fatalf("trial %d: actions %d != %d", trial, full.NumActions(), partial.NumActions())
		}
		for u := 0; u < g.NumNodes(); u++ {
			gf, gp := full.Gain(graph.NodeID(u)), partial.Gain(graph.NodeID(u))
			if math.Abs(gf-gp) > 1e-9 {
				t.Fatalf("trial %d: Gain(%d) %g != %g", trial, u, gf, gp)
			}
		}
	}
}

func TestIngestAfterAddRejected(t *testing.T) {
	g, log := figure1(t)
	e := NewEngine(g, log, Options{})
	e.Add(nodeV)
	p := actionlog.BuildPropagation(log, g, 0)
	if err := e.IngestAction(p, nil); err != ErrSeedsCommitted {
		t.Fatalf("err = %v, want ErrSeedsCommitted", err)
	}
}

func TestIngestGrowsActionCount(t *testing.T) {
	g, log := figure1(t)
	e := NewEngine(g, log, Options{})
	before := e.ActionCount(nodeV)
	p := actionlog.BuildPropagation(log, g, 0)
	if err := e.IngestAction(p, nil); err != nil {
		t.Fatal(err)
	}
	if e.ActionCount(nodeV) != before+1 {
		t.Fatalf("A_v = %d, want %d", e.ActionCount(nodeV), before+1)
	}
	if e.NumActions() != 2 {
		t.Fatalf("NumActions = %d, want 2", e.NumActions())
	}
	// Ingesting the same propagation again halves every per-action share
	// but doubles the action count: spread gains stay finite and positive.
	if gain := e.Gain(nodeV); gain <= 0 {
		t.Fatalf("gain after ingest = %g", gain)
	}
}
