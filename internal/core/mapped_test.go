package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"credist/internal/actionlog"
	"credist/internal/celf"
	"credist/internal/graph"
	"credist/internal/seedsel"
)

// writeSnapshotFile saves the engine (with an optional prefix) as a
// version-3 file under t's temp dir and returns the path.
func writeSnapshotFile(t *testing.T, e *Engine, lin Lineage, prefix *SeedPrefix) string {
	t.Helper()
	var buf bytes.Buffer
	if err := e.WriteSnapshotPrefix(&buf, lin, prefix); err != nil {
		t.Fatalf("WriteSnapshotPrefix: %v", err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// openMapped opens the file and registers the mapping for cleanup.
func openMapped(t *testing.T, path string) (*Engine, Lineage, *SeedPrefix, *MappedSnapshot) {
	t.Helper()
	eng, lin, prefix, ms, err := OpenSnapshotMapped(path)
	if err != nil {
		t.Fatalf("OpenSnapshotMapped: %v", err)
	}
	t.Cleanup(func() { ms.Close() })
	return eng, lin, prefix, ms
}

// TestOpenSnapshotMappedBitIdentical is the cross-backend half of the
// determinism wall: the same snapshot file served heap-resident
// (ReadSnapshotPrefix) and memory-mapped (OpenSnapshotMapped) must answer
// every Gain with the same bits and select the same CELF seeds with the
// same gains — at one worker and at full fan-out alike.
func TestOpenSnapshotMappedBitIdentical(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 41, 60, 40)
	sel := seedsel.CELF(e.Clone(), 5)
	prefix := &SeedPrefix{Seeds: sel.Seeds, Gains: sel.Gains, LookupsAt: sel.LookupsAt}
	path := writeSnapshotFile(t, e, lin, prefix)

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	heap, heapLin, heapPrefix, err := ReadSnapshotPrefix(f)
	f.Close()
	if err != nil {
		t.Fatalf("ReadSnapshotPrefix: %v", err)
	}
	mapped, mapLin, mapPrefix, ms := openMapped(t, path)

	if mapLin != heapLin || mapLin != lin {
		t.Fatalf("lineage: mapped %+v, heap %+v, want %+v", mapLin, heapLin, lin)
	}
	if mapPrefix == nil || heapPrefix == nil {
		t.Fatal("a reader dropped the seed prefix")
	}
	for i := range heapPrefix.Seeds {
		if mapPrefix.Seeds[i] != heapPrefix.Seeds[i] || mapPrefix.Gains[i] != heapPrefix.Gains[i] ||
			mapPrefix.LookupsAt[i] != heapPrefix.LookupsAt[i] {
			t.Fatalf("prefix entry %d differs across backends", i)
		}
	}
	if got := mapped.RowStoreBackend(); got != ms.Backend() {
		t.Fatalf("engine backend %q, snapshot reports %q", got, ms.Backend())
	}
	if ms.Backend() == "mmap" {
		if mapped.HeapBytes() != 0 {
			t.Fatalf("mapped engine reports %d heap bytes before any write", mapped.HeapBytes())
		}
		if mapped.MappedBytes() == 0 {
			t.Fatal("mapped engine reports zero mapped bytes")
		}
	}
	if mapped.ResidentBytes() != mapped.HeapBytes()+mapped.MappedBytes() {
		t.Fatal("ResidentBytes is not the backend split's sum")
	}

	requireEnginesBitIdentical(t, heap, mapped, 8)

	// Worker-count sweep on both backends: every combination must produce
	// the same seeds and gain bits.
	var want celf.Result
	for i, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		for _, eng := range []*Engine{heap, mapped} {
			res := celf.Run(eng.Clone(), 6, celf.Options{Workers: workers})
			if i == 0 && eng == heap {
				want = res
				continue
			}
			if len(res.Seeds) != len(want.Seeds) {
				t.Fatalf("workers=%d: %d seeds, want %d", workers, len(res.Seeds), len(want.Seeds))
			}
			for j := range want.Seeds {
				if res.Seeds[j] != want.Seeds[j] || res.Gains[j] != want.Gains[j] {
					t.Fatalf("workers=%d seed %d: (%d, %b) vs (%d, %b)",
						workers, j, res.Seeds[j], res.Gains[j], want.Seeds[j], want.Gains[j])
				}
			}
		}
	}
}

// TestMappedPromoteOnWrite pins the copy-on-write contract of the mmap
// backend: the first Add on a clone promotes only the touched shards to
// heap, the results match the heap backend bit for bit, and the engine
// that still serves the mapping is never disturbed.
func TestMappedPromoteOnWrite(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 43, 50, 30)
	path := writeSnapshotFile(t, e, lin, nil)
	mapped, _, _, ms := openMapped(t, path)
	if ms.Backend() != "mmap" {
		t.Skip("platform cannot alias the base section; promote path not reachable")
	}

	// Reference bits from the heap engine.
	heapSel := seedsel.CELF(e.Clone(), 4)

	before := make([]float64, mapped.NumNodes())
	for u := range before {
		before[u] = mapped.Gain(graph.NodeID(u))
	}
	mappedBefore := mapped.MappedBytes()

	clone := mapped.Clone()
	cloneSel := seedsel.CELF(clone, 4)
	for i := range heapSel.Seeds {
		if cloneSel.Seeds[i] != heapSel.Seeds[i] || cloneSel.Gains[i] != heapSel.Gains[i] {
			t.Fatalf("seed %d: mapped clone (%d, %b), heap (%d, %b)",
				i, cloneSel.Seeds[i], cloneSel.Gains[i], heapSel.Seeds[i], heapSel.Gains[i])
		}
	}

	// The clone's Adds promoted every shard of every selected seed's
	// actions; those shards are heap now, the rest still alias the mapping.
	if clone.HeapBytes() == 0 {
		t.Fatal("selection on the mapped clone promoted nothing to heap")
	}
	if clone.MappedBytes() >= mappedBefore {
		t.Fatal("promotion did not release any mapped shard from the clone")
	}
	if clone.RowStoreBackend() != "mmap" {
		// All shards promoted — legal for tiny instances, but then the
		// backend must read as heap.
		if clone.MappedBytes() != 0 {
			t.Fatal("backend says heap but mapped bytes remain")
		}
	}

	// The original mapped engine is untouched: same bits, same footprint.
	if mapped.MappedBytes() != mappedBefore || mapped.HeapBytes() != 0 {
		t.Fatal("selection on a clone changed the original's footprint")
	}
	for u := range before {
		if got := mapped.Gain(graph.NodeID(u)); got != before[u] {
			t.Fatalf("Gain(%d) on the original changed after clone selection: %b vs %b", u, got, before[u])
		}
	}
}

// TestMappedIngestMatchesRescan pins the acceptance criterion that
// appending a log tail to a mapped engine is bit-identical to scanning the
// combined log from scratch: the mapped base stays mapped, the delta is
// heap, and every query agrees with the rescan.
func TestMappedIngestMatchesRescan(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 74))
	g, log := randomInstance(rng, 60, 40)
	credit := LearnTimeAware(g, log)
	headN := 32
	head := log.Prefix(headN)
	headEng := NewEngine(g, head, Options{Lambda: 0.001, Credit: credit})
	path := writeSnapshotFile(t, headEng, DatasetLineage("ingest", g, head), nil)

	mapped, _, _, ms := openMapped(t, path)
	if err := mapped.AppendActions(g, log, actionlog.ActionID(headN)); err != nil {
		t.Fatalf("AppendActions on mapped engine: %v", err)
	}
	rescan := NewEngine(g, log, Options{Lambda: 0.001, Credit: credit})
	requireEnginesBitIdentical(t, rescan, mapped, 6)

	if ms.Backend() == "mmap" {
		if mapped.MappedBytes() == 0 {
			t.Fatal("appending a tail evicted the mapped base")
		}
		if mapped.HeapBytes() == 0 {
			t.Fatal("the appended delta is not heap-resident")
		}
		if mapped.RowStoreBackend() != "mmap" {
			t.Fatalf("backend %q after append, want mmap", mapped.RowStoreBackend())
		}
	}

	// Compact folds the delta but must not promote the mapped base: shards
	// leave the mapping only on first write. The results must not move.
	mappedBefore := mapped.MappedBytes()
	mapped.Compact()
	if ms.Backend() == "mmap" && mapped.MappedBytes() != mappedBefore {
		t.Fatalf("Compact changed the mapped footprint: %d -> %d", mappedBefore, mapped.MappedBytes())
	}
	requireEnginesBitIdentical(t, rescan, mapped, 6)
}

// TestOpenSnapshotMappedRejects drives the mapped open with damaged and
// legacy files: structural corruption anywhere the open trusts — header,
// offset table, row directory, alignment padding — and truncation at any
// depth must come back as an error, and pre-v3 files must be refused with
// a pointer at the upgrade path.
func TestOpenSnapshotMappedRejects(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 53, 30, 16)
	var buf bytes.Buffer
	if err := e.WriteSnapshotPrefix(&buf, lin, nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	baseSize := e.NumActions() * 8
	for _, st := range e.uc {
		baseSize += 8 + (st.numRows()+int(st.entryCount()))*16
	}
	baseOff := len(data) - 4 - baseSize

	dir := t.TempDir()
	open := func(name string, contents []byte) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, contents, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, _, ms, err := OpenSnapshotMapped(path)
		if err == nil {
			ms.Close()
		}
		return err
	}

	for _, cut := range []int{0, 4, len(snapshotMagic) + 2, baseOff / 2, baseOff + 4, len(data) - 4, len(data) - 1} {
		if err := open("trunc.bin", data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}

	// restamp keeps the footer CRC valid so only the mapped open's own
	// checks (header CRC, canonical base walk) can reject the damage.
	restamp := func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
		return b
	}
	flip := func(off int) []byte {
		c := append([]byte(nil), data...)
		c[off] ^= 0xff
		return restamp(c)
	}
	cases := map[string]int{
		"header (lineage)":        12,
		"header CRC or padding":   baseOff - 1,
		"offset table":            baseOff,
		"row directory":           baseOff + e.NumActions()*8 + 8,
		"block header (rowCount)": baseOff + e.NumActions()*8 + 4,
	}
	for what, off := range cases {
		if err := open("flip.bin", flip(off)); err == nil {
			t.Fatalf("corrupted %s (byte %d) accepted by mapped open", what, off)
		}
	}
	if err := open("magic.bin", restamp(append([]byte("NOTSNAPS"), data[8:]...))); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Legacy versions are refused with re-save guidance.
	var legacy bytes.Buffer
	if err := writeSnapshotV2(&legacy, e, lin, nil); err != nil {
		t.Fatal(err)
	}
	err := open("v2.bin", legacy.Bytes())
	if err == nil {
		t.Fatal("version-2 file accepted by mapped open")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("re-save")) {
		t.Fatalf("version error carries no upgrade hint: %v", err)
	}
}

// TestMappedEngineSnapshotRoundTrip: serializing an engine whose shards
// still alias a mapped file must reproduce the file byte for byte — the
// writer walks the rowStore interface, so the backend cannot leak into
// the encoding.
func TestMappedEngineSnapshotRoundTrip(t *testing.T) {
	_, _, e, lin := snapshotInstance(t, 59, 40, 24)
	path := writeSnapshotFile(t, e, lin, nil)
	original, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, mapLin, _, _ := openMapped(t, path)
	var again bytes.Buffer
	if err := mapped.WriteSnapshot(&again, mapLin); err != nil {
		t.Fatalf("WriteSnapshot from mapped engine: %v", err)
	}
	if !bytes.Equal(again.Bytes(), original) {
		t.Fatal("snapshot written from a mapped engine is not byte-identical to its source file")
	}
}
