package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"credist/internal/graph"
)

// randomConnectedEdges draws a random undirected graph on n nodes with no
// isolated vertices (the reduction's spread identity needs every node to
// act, which requires at least one incident edge).
func randomConnectedEdges(rng *rand.Rand, n int) [][2]graph.NodeID {
	var edges [][2]graph.NodeID
	seen := map[[2]graph.NodeID]bool{}
	add := func(a, b graph.NodeID) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		key := [2]graph.NodeID{a, b}
		if !seen[key] {
			seen[key] = true
			edges = append(edges, key)
		}
	}
	// Spanning path guarantees min degree 1.
	for i := 1; i < n; i++ {
		add(graph.NodeID(i-1), graph.NodeID(i))
	}
	extra := rng.IntN(n * 2)
	for i := 0; i < extra; i++ {
		add(graph.NodeID(rng.IntN(n)), graph.NodeID(rng.IntN(n)))
	}
	return edges
}

func isVertexCover(edges [][2]graph.NodeID, s map[graph.NodeID]bool) bool {
	for _, e := range edges {
		if !s[e[0]] && !s[e[1]] {
			return false
		}
	}
	return true
}

// TestTheorem1Equivalence brute-forces the iff of the NP-hardness proof on
// random small graphs: S is a vertex cover exactly when sigma_cd(S)
// reaches the threshold k + (|V|-k)/2 under simple credit (alpha = 1).
func TestTheorem1Equivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xc0de))
		n := 4 + rng.IntN(5) // 4..8 nodes: 2^n subsets stay cheap
		edges := randomConnectedEdges(rng, n)
		g, log, err := VertexCoverReduction(n, edges)
		if err != nil {
			return false
		}
		ev := NewEvaluator(g, log, SimpleCredit{})
		for mask := 0; mask < 1<<n; mask++ {
			var seeds []graph.NodeID
			inS := map[graph.NodeID]bool{}
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					seeds = append(seeds, graph.NodeID(i))
					inS[graph.NodeID(i)] = true
				}
			}
			spread := ev.Spread(seeds)
			threshold := CoverThreshold(len(seeds), n, 1)
			cover := isVertexCover(edges, inS)
			if cover && spread < threshold-1e-9 {
				t.Logf("cover %v spread %g below threshold %g", seeds, spread, threshold)
				return false
			}
			if !cover && spread >= threshold-1e-9 {
				t.Logf("non-cover %v spread %g reaches threshold %g", seeds, spread, threshold)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestReductionSpreadFormula verifies the exact spread value the proof
// computes for a vertex cover: sigma_cd(S) = k + (|V|-k)/2.
func TestReductionSpreadFormula(t *testing.T) {
	// Star graph: center 0, leaves 1..4. {0} is a vertex cover.
	edges := [][2]graph.NodeID{{0, 1}, {0, 2}, {0, 3}, {0, 4}}
	g, log, err := VertexCoverReduction(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(g, log, SimpleCredit{})
	got := ev.Spread([]graph.NodeID{0})
	want := CoverThreshold(1, 5, 1) // 1 + 4/2 = 3
	if !almostEqual(got, want) {
		t.Fatalf("star cover spread = %g, want %g", got, want)
	}
}

func TestReductionRejectsSelfLoop(t *testing.T) {
	if _, _, err := VertexCoverReduction(2, [][2]graph.NodeID{{1, 1}}); err == nil {
		t.Fatal("self loop accepted")
	}
}
