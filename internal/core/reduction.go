package core

import (
	"fmt"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

// VertexCoverReduction builds the influence-maximization instance of
// Theorem 1's NP-hardness proof from an undirected graph: the social graph
// gets both directions of every edge, and the action log gets two
// two-node propagations per edge (one in each direction). Under the
// simple 1/d_in direct credit each propagation hands credit alpha = 1 to
// its initiator, and the theorem states that a set S of size k is a
// vertex cover of the input iff sigma_cd(S) >= k + alpha*(|V|-k)/2.
//
// The reduction is exposed (rather than living only in the proof) so the
// test suite can verify the equivalence by brute force on small graphs —
// an executable check of Theorem 1.
func VertexCoverReduction(n int, undirected [][2]graph.NodeID) (*graph.Graph, *actionlog.Log, error) {
	gb := graph.NewBuilder(n)
	lb := actionlog.NewBuilder(n)
	action := actionlog.ActionID(0)
	for _, e := range undirected {
		v, u := e[0], e[1]
		if err := gb.AddUndirected(v, u); err != nil {
			return nil, nil, fmt.Errorf("core: reduction: %w", err)
		}
		// Action a1: v acts first, propagates to u.
		if err := lb.Add(v, action, 0); err != nil {
			return nil, nil, err
		}
		if err := lb.Add(u, action, 1); err != nil {
			return nil, nil, err
		}
		action++
		// Action a2: the reverse.
		if err := lb.Add(u, action, 0); err != nil {
			return nil, nil, err
		}
		if err := lb.Add(v, action, 1); err != nil {
			return nil, nil, err
		}
		action++
	}
	return gb.Build(), lb.Build(), nil
}

// CoverThreshold returns the spread bound of Theorem 1 for cover size k,
// node count n, and direct-credit value alpha (1 under SimpleCredit).
func CoverThreshold(k, n int, alpha float64) float64 {
	return float64(k) + alpha*float64(n-k)/2
}
