package core

import (
	"errors"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

// ErrSeedsCommitted is returned by AppendActions and IngestAction once
// seed selection has begun: the UC structure then reflects V-S and merging
// raw per-action credits would corrupt it.
var ErrSeedsCommitted = errors.New("core: cannot ingest actions after seeds are committed")

// IngestAction extends the engine with one new propagation without
// re-scanning the existing log. The credit-distribution model is naturally
// incremental — every UC entry is per-action, and the per-user
// normalizers A_u only grow — so a deployment can keep the engine warm as
// fresh traces arrive and re-run seed selection on demand (the
// "maintainable data-based model" direction the paper's conclusions point
// at). AppendActions is the batched, parallel form of the same operation
// for a log tail.
//
// The propagation must be built against the same graph and use user ids
// within the engine's universe. model nil means the rule the engine was
// scanned with. Ingest is only legal before the first Add.
func (e *Engine) IngestAction(p *actionlog.Propagation, model CreditModel) error {
	if len(e.seeds) > 0 {
		return ErrSeedsCommitted
	}
	if model == nil {
		model = e.credit
	}
	for _, u := range p.Users {
		if int(u) < 0 || int(u) >= e.numUsers {
			return errors.New("core: ingested propagation has out-of-range user")
		}
	}
	a := actionlog.ActionID(len(e.uc))
	// Renumber the shard to the next action slot. The outer action-indexed
	// slices are never shared between engines (construction, append, and
	// Clone all allocate fresh backing), so plain appends keep a trickle of
	// ingests amortized O(1); mutUsers makes the per-user state privately
	// mutable (a one-time copy when it was shared with clones), so each
	// call then costs only the touched users.
	shard, entries := scanAction(p, model, e.lambda, 0)
	// Ingest routing: a partition keeps only the scanned rows it owns
	// (the same filter AppendActions applies to tail shards).
	routed, entries := e.filterShardToPartition(&shard)
	e.uc = append(e.uc, routed)
	e.owned = append(e.owned, true)
	e.sc = append(e.sc, nil)
	e.entries += entries
	e.deltaEntries += entries
	e.mutUsers(e.numUsers)
	for _, u := range p.Users {
		e.au[u]++
		e.actionsOf[u] = append(e.actionsOf[u], a)
	}
	return nil
}

// NumActions returns how many actions the engine has scanned (initial log
// plus appended ones).
func (e *Engine) NumActions() int { return len(e.uc) }

// ActionCount returns the engine's current A_u for user u.
func (e *Engine) ActionCount(u graph.NodeID) int { return int(e.au[u]) }
