package core

import (
	"bytes"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"credist/internal/graph"
)

// TestSliceGainParity pins the heart of the partition design: a slice's
// Gain over its own rows is bit-identical to the full engine's, before
// and after scatter-gather commits, and entry counts tile exactly.
func TestSliceGainParity(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 17))
	g, log := randomInstance(rng, 50, 30)
	full := NewEngine(g, log, Options{Lambda: 0.001})
	full.Compact()

	bounds := []int{0, 13, 14, 37, 50}
	var parts []*Engine
	var total int64
	for i := 1; i < len(bounds); i++ {
		p, err := full.Slice(bounds[i-1], bounds[i])
		if err != nil {
			t.Fatalf("Slice(%d,%d): %v", bounds[i-1], bounds[i], err)
		}
		if !p.IsPartition() {
			t.Fatalf("slice is not a partition")
		}
		total += p.Entries()
		parts = append(parts, p)
	}
	if total != full.Entries() {
		t.Fatalf("partition entries sum %d, full %d", total, full.Entries())
	}

	check := func(stage string, ref *Engine) {
		t.Helper()
		for _, p := range parts {
			lo, hi := p.PartitionRange()
			for x := lo; x < hi; x++ {
				if got, want := p.Gain(graph.NodeID(x)), ref.Gain(graph.NodeID(x)); got != want {
					t.Fatalf("%s: partition [%d,%d) Gain(%d) = %b, full %b", stage, lo, hi, x, got, want)
				}
			}
		}
	}
	ref := full.Clone()
	check("pre-commit", ref)

	// Commit two seeds from different partitions scatter-gather and keep
	// checking against the full engine driven by plain Add.
	for _, seed := range []graph.NodeID{3, 41} {
		var payload any
		for _, p := range parts {
			if lo, hi := p.PartitionRange(); int(seed) >= lo && int(seed) < hi {
				payload = p.ExtractSeedRow(seed)
			}
		}
		for _, p := range parts {
			p.CommitSeedRow(seed, payload)
		}
		ref.Add(seed)
		check("post-commit", ref)
	}
	total = 0
	for _, p := range parts {
		total += p.Entries()
	}
	if total != ref.Entries() {
		t.Fatalf("post-commit entries sum %d, full %d", total, ref.Entries())
	}
}

func TestSliceErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 4))
	g, log := randomInstance(rng, 20, 8)
	e := NewEngine(g, log, Options{})

	if _, err := e.Slice(-1, 10); err == nil || !strings.Contains(err.Error(), "outside the universe") {
		t.Fatalf("negative lo: %v", err)
	}
	if _, err := e.Slice(5, 25); err == nil || !strings.Contains(err.Error(), "outside the universe") {
		t.Fatalf("hi beyond universe: %v", err)
	}
	if _, err := e.Slice(12, 5); err == nil {
		t.Fatalf("inverted range accepted")
	}
	p, err := e.Slice(0, 10)
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	if _, err := p.Slice(0, 5); err == nil || !strings.Contains(err.Error(), "partition") {
		t.Fatalf("slicing a partition: %v", err)
	}
	e.Add(3)
	if _, err := e.Slice(0, 10); err != ErrSeedsCommitted {
		t.Fatalf("slice after Add: %v", err)
	}
}

func TestPartitionRejectsForeignRows(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 6))
	g, log := randomInstance(rng, 20, 8)
	e := NewEngine(g, log, Options{})
	p, err := e.Slice(5, 12)
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	for _, fn := range []struct {
		name string
		call func()
	}{
		{"Gain", func() { p.Gain(2) }},
		{"ExtractSeedRow", func() { p.ExtractSeedRow(15) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a foreign row did not panic", fn.name)
				}
			}()
			fn.call()
		}()
	}
}

// TestSnapshotSliceRoundTrip proves the version-4 slice format carries a
// partition faithfully through both loaders: range, entries, and gains
// are bit-identical to a fresh in-memory slice, and re-encoding the
// loaded slice reproduces the file byte for byte (the rule the snapshot
// fuzzer enforces on arbitrary inputs).
func TestSnapshotSliceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 12))
	g, log := randomInstance(rng, 40, 25)
	credit := LearnTimeAware(g, log)
	full := NewEngine(g, log, Options{Lambda: 0.001, Credit: credit})
	full.Compact()
	lin := DatasetLineage("slice-roundtrip", g, log)

	const lo, hi = 11, 29
	ref, err := full.Slice(lo, hi)
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}

	var buf bytes.Buffer
	if err := full.WriteSnapshotSlice(&buf, lin, nil, lo, hi); err != nil {
		t.Fatalf("WriteSnapshotSlice: %v", err)
	}
	raw := buf.Bytes()

	path := filepath.Join(t.TempDir(), "slice.bin")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	heapEng, _, _, err := ReadSnapshotPrefix(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadSnapshotPrefix: %v", err)
	}
	mapEng, _, _, ms, err := OpenSnapshotMapped(path)
	if err != nil {
		t.Fatalf("OpenSnapshotMapped: %v", err)
	}
	defer ms.Close()

	for name, eng := range map[string]*Engine{"heap": heapEng, "mmap": mapEng} {
		if !eng.IsPartition() {
			t.Fatalf("%s: loaded slice is not a partition", name)
		}
		if l, h := eng.PartitionRange(); l != lo || h != hi {
			t.Fatalf("%s: range [%d,%d), want [%d,%d)", name, l, h, lo, hi)
		}
		if eng.NumNodes() != full.NumNodes() {
			t.Fatalf("%s: universe %d, want %d", name, eng.NumNodes(), full.NumNodes())
		}
		if eng.Entries() != ref.Entries() {
			t.Fatalf("%s: entries %d, want %d", name, eng.Entries(), ref.Entries())
		}
		for x := lo; x < hi; x++ {
			if got, want := eng.Gain(graph.NodeID(x)), ref.Gain(graph.NodeID(x)); got != want {
				t.Fatalf("%s: Gain(%d) = %b, want %b", name, x, got, want)
			}
		}
		// The byte-identical re-encode rule, extended to slices: a loaded
		// partition re-encodes through WriteSnapshotSlice at its own range.
		var re bytes.Buffer
		if err := eng.WriteSnapshotSlice(&re, lin, nil, lo, hi); err != nil {
			t.Fatalf("%s: re-encode: %v", name, err)
		}
		if !bytes.Equal(re.Bytes(), raw) {
			t.Fatalf("%s: re-encoded slice differs from original (%d vs %d bytes)", name, re.Len(), len(raw))
		}
	}
}

func TestSnapshotSliceWriterRejections(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 3))
	g, log := randomInstance(rng, 30, 10)
	full := NewEngine(g, log, Options{})
	lin := DatasetLineage("slice-rejects", g, log)

	var buf bytes.Buffer
	if err := full.WriteSnapshotSlice(&buf, lin, nil, 10, 35); err == nil {
		t.Fatalf("out-of-universe slice range accepted")
	}
	if err := full.WriteSnapshotSlice(&buf, lin, nil, 20, 10); err == nil {
		t.Fatalf("inverted slice range accepted")
	}

	p, err := full.Slice(5, 15)
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	// A partition engine holds only its own rows: writing a full snapshot,
	// or a slice at any other range, would mislabel partial data.
	if err := p.WriteSnapshotPrefix(&buf, lin, nil); err == nil || !strings.Contains(err.Error(), "WriteSnapshotSlice") {
		t.Fatalf("full snapshot of a partition: %v", err)
	}
	if err := p.WriteSnapshotSlice(&buf, lin, nil, 5, 20); err == nil {
		t.Fatalf("partition wrote a foreign range")
	}
	if err := p.WriteSnapshotSlice(&buf, lin, nil, 5, 15); err != nil {
		t.Fatalf("partition writing its own range: %v", err)
	}

	// Full snapshots are untouched by the slice format: a full engine
	// writing [0, numUsers) through WriteSnapshotSlice is still a
	// version-4 file, while WriteSnapshotPrefix keeps emitting version 3.
	var v3, v4 bytes.Buffer
	if err := full.WriteSnapshotPrefix(&v3, lin, nil); err != nil {
		t.Fatalf("WriteSnapshotPrefix: %v", err)
	}
	if err := full.WriteSnapshotSlice(&v4, lin, nil, 0, full.NumNodes()); err != nil {
		t.Fatalf("WriteSnapshotSlice(full range): %v", err)
	}
	if bytes.Equal(v3.Bytes(), v4.Bytes()) {
		t.Fatalf("v3 and v4 encodings are byte-identical; version bump missing")
	}
	eng, _, _, err := ReadSnapshotPrefix(&v4)
	if err != nil {
		t.Fatalf("read full-range slice: %v", err)
	}
	if !eng.IsPartition() {
		t.Fatalf("full-range slice did not load as a partition")
	}
}
