package core

import (
	"fmt"
	"math/rand/v2"

	"credist/internal/graph"
)

// CreditWalkSource samples the CD spread objective by reverse credit
// walks over the evaluator's propagation DAGs. It is the approximate
// tier's RR-sample source, satisfying internal/ris's structural Source
// interface without core importing ris.
//
// The construction makes the estimator exactly unbiased for sigma_cd
// (Eq. 8), not merely for a proxy diffusion model: the credit DP that
// defines Gamma_{S,u}(a) — val[i] = 1 if u_i is a seed, else
// sum_j val[parent j] * gamma_j — is precisely the hit probability of a
// stochastic walk that, standing at participant i, steps to parent j
// with probability gamma_j and stops with the leftover probability
// 1 - sum gamma (the CreditModel contract guarantees sum gamma <= 1).
// So with a root u drawn uniformly from the active users (A_u > 0), an
// action a drawn uniformly from u's A_u actions, and the walk path
// recorded from u, Pr[path intersects S] = sigma_cd(S) / Roots(): a
// sampled root inside S hits with probability 1 (its kappa is exactly 1),
// and every other root contributes Gamma_{S,u}(a)/A_u in expectation.
// Scaling the hit fraction by Roots() therefore converges to the exact
// Evaluator.Spread value, which is what lets the serving tier report a
// genuine confidence interval around the exact answer.
//
// Every choice the walk makes is a deterministic function of the rng
// stream and the evaluator's frozen structures (roots ascending, action
// lists in log order, parents in chronological order), so sampling is
// bit-identical across processes and restarts for a given seed.
type CreditWalkSource struct {
	ev    *Evaluator
	roots []graph.NodeID // users with A_u > 0, ascending
}

// CreditWalks returns the reverse credit-walk sample source over the
// evaluator's training propagations. It fails only when no user performed
// any action (nothing to sample; sigma_cd is identically zero there).
func (ev *Evaluator) CreditWalks() (*CreditWalkSource, error) {
	var roots []graph.NodeID
	for u := 0; u < ev.numUsers; u++ {
		if ev.au[u] > 0 {
			roots = append(roots, graph.NodeID(u))
		}
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("core: credit walks need at least one active user")
	}
	return &CreditWalkSource{ev: ev, roots: roots}, nil
}

// NumNodes returns the user-universe size.
func (s *CreditWalkSource) NumNodes() int { return s.ev.numUsers }

// Roots returns the number of active users — the estimate's scale
// numerator N+: sigma_cd(S) = N+ * Pr[a walk path hits S].
func (s *CreditWalkSource) Roots() int { return len(s.roots) }

// NewWalker returns a sampling closure drawing one walk path per call.
// Walkers are independent and allocation-light; the striped collector
// runs one per stripe.
func (s *CreditWalkSource) NewWalker() func(rng *rand.Rand) []graph.NodeID {
	return func(rng *rand.Rand) []graph.NodeID {
		u := s.roots[rng.IntN(len(s.roots))]
		actions := s.ev.actionsOf[u]
		a := actions[rng.IntN(len(actions))]
		return s.walk(a, u, rng)
	}
}

// walk records one reverse credit walk through propagation a starting at
// participant u: step to parent j with probability gamma_j, stop with the
// leftover mass. Chronological indices strictly decrease, so the path is
// duplicate-free and at most the propagation depth long; the root is
// always included (a seed root is a guaranteed hit, mirroring its unit
// kappa in Evaluator.Spread).
func (s *CreditWalkSource) walk(a int32, u graph.NodeID, rng *rand.Rand) []graph.NodeID {
	p := s.ev.props[a]
	i := p.Index(u)
	path := []graph.NodeID{u}
	for {
		gi := s.ev.gammas[a][i]
		if len(gi) == 0 {
			return path
		}
		x := rng.Float64()
		acc := 0.0
		next := int32(-1)
		for k, j := range p.Parents[i] {
			acc += gi[k]
			if x < acc {
				next = j
				break
			}
		}
		if next < 0 {
			return path
		}
		i = next
		path = append(path, p.Users[i])
	}
}

// RRSketch is the persisted form of the approximate tier's RR-sample
// collection: the PCG seed the stripes were drawn from, the root count
// the estimates scale by, and the samples themselves in draw order. A
// version-5 snapshot carries one so a restarted server answers its first
// approximate query with zero sampling work; because stripes are
// per-stream deterministic, a restored sketch also grows bit-identically
// to a continuous collection.
type RRSketch struct {
	Seed  uint64
	Roots int
	Sets  [][]graph.NodeID
}

// Validate enforces the structural rules writer and reader share (so the
// writer can never produce a sketch section every load refuses): at least
// one sample, every sample non-empty with ids inside the universe, and a
// root count in [1, numUsers].
func (sk *RRSketch) Validate(numUsers int) error {
	if len(sk.Sets) == 0 {
		return fmt.Errorf("core: RR sketch has no samples")
	}
	if sk.Roots < 1 || sk.Roots > numUsers {
		return fmt.Errorf("core: RR sketch root count %d outside [1,%d]", sk.Roots, numUsers)
	}
	for i, set := range sk.Sets {
		if len(set) == 0 {
			return fmt.Errorf("core: RR sample %d is empty", i)
		}
		for _, v := range set {
			if v < 0 || int(v) >= numUsers {
				return fmt.Errorf("core: RR sample %d node %d outside [0,%d)", i, v, numUsers)
			}
		}
	}
	return nil
}

// writeSketchSection emits the version-5 RR-sketch section. Every field
// is written verbatim and count-prefixed, so the encoding of a given
// sketch is unique and an accepted file re-encodes byte for byte.
func writeSketchSection(sw *snapWriter, sk *RRSketch) {
	sw.u64(sk.Seed)
	sw.u32(uint32(sk.Roots))
	sw.u32(uint32(len(sk.Sets)))
	for _, set := range sk.Sets {
		sw.u32(uint32(len(set)))
		for _, v := range set {
			sw.u32(uint32(v))
		}
	}
}

// parseSketchSection parses the version-5 RR-sketch section, enforcing
// exactly the rules RRSketch.Validate states.
func parseSketchSection(sc *snapCursor, numUsers int) (*RRSketch, error) {
	sk := &RRSketch{Seed: sc.u64()}
	roots := sc.u32()
	if sc.err == nil && (roots < 1 || int(roots) > numUsers) {
		sc.fail("RR sketch root count %d outside [1,%d]", roots, numUsers)
	}
	sk.Roots = int(roots)
	n := sc.count("RR sample", 4)
	if sc.err == nil && n == 0 {
		sc.fail("version-5 snapshot with an empty RR sketch")
	}
	sk.Sets = make([][]graph.NodeID, 0, n)
	for i := 0; i < n && sc.err == nil; i++ {
		l := sc.count("RR sample entry", 4)
		if sc.err != nil {
			break
		}
		if l == 0 {
			sc.fail("RR sample %d is empty", i)
			break
		}
		set := make([]graph.NodeID, l)
		for j := range set {
			v := sc.u32()
			if sc.err != nil {
				break
			}
			if int(v) >= numUsers {
				sc.fail("RR sample %d node %d outside [0,%d)", i, v, numUsers)
				break
			}
			set[j] = graph.NodeID(v)
		}
		sk.Sets = append(sk.Sets, set)
	}
	return sk, sc.err
}
