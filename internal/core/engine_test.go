package core

import (
	"math"
	"math/rand/v2"
	"runtime"
	"testing"

	"credist/internal/actionlog"
	"credist/internal/graph"
	"credist/internal/seedsel"
)

// figure1 builds the running example of the paper (Figure 1): one action
// propagating over six users. Node ids: v=0, y=1, t=2, w=3, z=4, u=5.
// Propagation-DAG edges: v->t, y->t, v->w, t->z, v->u, t->u, w->u, z->u,
// with direct credit 1/d_in. The paper works out Gamma_{v,u}=0.75,
// Gamma_{{v,z},u}=0.875, Gamma^{V-z}_{v,u}=0.625, and for S={t,z}:
// Gamma^{V-S}_{v,u}=0.5 dropping to 0.25 once w joins S.
func figure1(t *testing.T) (*graph.Graph, *actionlog.Log) {
	t.Helper()
	b := graph.NewBuilder(6)
	edges := [][2]graph.NodeID{{0, 2}, {1, 2}, {0, 3}, {2, 4}, {0, 5}, {2, 5}, {3, 5}, {4, 5}}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	g := b.Build()
	lb := actionlog.NewBuilder(6)
	times := []actionlog.Timestamp{1, 1, 2, 2, 3, 4} // v,y,t,w,z,u
	for u, at := range times {
		if err := lb.Add(graph.NodeID(u), 0, at); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return g, lb.Build()
}

const (
	nodeV = graph.NodeID(0)
	nodeY = graph.NodeID(1)
	nodeT = graph.NodeID(2)
	nodeW = graph.NodeID(3)
	nodeZ = graph.NodeID(4)
	nodeU = graph.NodeID(5)
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFigure1EngineCredits(t *testing.T) {
	g, log := figure1(t)
	e := NewEngine(g, log, Options{})

	cases := []struct {
		v, u graph.NodeID
		want float64
	}{
		{nodeV, nodeU, 0.75},
		{nodeV, nodeT, 0.5},
		{nodeV, nodeW, 1.0},
		{nodeV, nodeZ, 0.5},
		{nodeY, nodeT, 0.5},
		{nodeT, nodeU, 0.5}, // direct 0.25 + via z 1*0.25
		{nodeW, nodeU, 0.25},
		{nodeZ, nodeU, 0.25},
	}
	for _, c := range cases {
		if got := e.Credit(0, c.v, c.u); !almostEqual(got, c.want) {
			t.Errorf("Credit(%d,%d) = %g, want %g", c.v, c.u, got, c.want)
		}
	}
}

func TestFigure1SeedSetCredit(t *testing.T) {
	g, log := figure1(t)
	ev := NewEvaluator(g, log, nil)
	if got := ev.SetCredit(0, []graph.NodeID{nodeV, nodeZ}, nodeU); !almostEqual(got, 0.875) {
		t.Errorf("Gamma_{{v,z},u} = %g, want 0.875", got)
	}
	if got := ev.SetCredit(0, []graph.NodeID{nodeV}, nodeU); !almostEqual(got, 0.75) {
		t.Errorf("Gamma_{{v},u} = %g, want 0.75", got)
	}
	if got := ev.SetCredit(0, []graph.NodeID{nodeV}, nodeV); !almostEqual(got, 1) {
		t.Errorf("Gamma_{{v},v} = %g, want 1", got)
	}
}

func TestFigure1Lemma2Update(t *testing.T) {
	g, log := figure1(t)
	e := NewEngine(g, log, Options{})
	// Add t and z to the seed set; the paper computes the remaining credit
	// of v over u in the induced subgraph as 0.5, and 0.25 after w joins.
	e.Add(nodeT)
	e.Add(nodeZ)
	if got := e.Credit(0, nodeV, nodeU); !almostEqual(got, 0.5) {
		t.Fatalf("Gamma^{V-{t,z}}_{v,u} = %g, want 0.5", got)
	}
	e.Add(nodeW)
	if got := e.Credit(0, nodeV, nodeU); !almostEqual(got, 0.25) {
		t.Fatalf("Gamma^{V-{t,z,w}}_{v,u} = %g, want 0.25", got)
	}
}

func TestFigure1MarginalGainMatchesEvaluator(t *testing.T) {
	g, log := figure1(t)
	e := NewEngine(g, log, Options{})
	ev := NewEvaluator(g, log, nil)

	var seeds []graph.NodeID
	order := []graph.NodeID{nodeT, nodeV, nodeZ}
	for _, x := range order {
		for cand := graph.NodeID(0); cand < 6; cand++ {
			if contains(seeds, cand) {
				continue
			}
			want := ev.Spread(append(append([]graph.NodeID(nil), seeds...), cand)) - ev.Spread(seeds)
			if got := e.Gain(cand); !almostEqual(got, want) {
				t.Errorf("seeds=%v Gain(%d) = %g, want %g", seeds, cand, got, want)
			}
		}
		e.Add(x)
		seeds = append(seeds, x)
	}
}

func contains(s []graph.NodeID, x graph.NodeID) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// randomInstance builds a random social graph and action log for
// property-style tests. Timestamps are integers so ties occur, exercising
// the strictly-earlier rule.
func randomInstance(rng *rand.Rand, nUsers, nActions int) (*graph.Graph, *actionlog.Log) {
	b := graph.NewBuilder(nUsers)
	for u := 0; u < nUsers; u++ {
		deg := 1 + rng.IntN(4)
		for d := 0; d < deg; d++ {
			v := graph.NodeID(rng.IntN(nUsers))
			if v != graph.NodeID(u) {
				_ = b.AddEdge(graph.NodeID(u), v)
			}
		}
	}
	g := b.Build()
	lb := actionlog.NewBuilder(nUsers)
	for a := 0; a < nActions; a++ {
		size := 2 + rng.IntN(nUsers-1)
		perm := rng.Perm(nUsers)
		for i := 0; i < size; i++ {
			_ = lb.Add(graph.NodeID(perm[i]), actionlog.ActionID(a), float64(rng.IntN(8)))
		}
	}
	return g, lb.Build()
}

func TestEngineMatchesEvaluatorOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 25; trial++ {
		g, log := randomInstance(rng, 12+rng.IntN(10), 4+rng.IntN(6))
		e := NewEngine(g, log, Options{})
		ev := NewEvaluator(g, log, nil)
		var seeds []graph.NodeID
		for round := 0; round < 4; round++ {
			for cand := 0; cand < g.NumNodes(); cand++ {
				c := graph.NodeID(cand)
				if contains(seeds, c) {
					continue
				}
				want := ev.Spread(append(append([]graph.NodeID(nil), seeds...), c)) - ev.Spread(seeds)
				got := e.Gain(c)
				if math.Abs(got-want) > 1e-6 {
					t.Fatalf("trial %d seeds=%v Gain(%d)=%g want %g", trial, seeds, c, got, want)
				}
			}
			next := graph.NodeID(rng.IntN(g.NumNodes()))
			if contains(seeds, next) {
				continue
			}
			e.Add(next)
			seeds = append(seeds, next)
		}
	}
}

func TestEngineEntriesAccounting(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	g, log := randomInstance(rng, 20, 8)
	e := NewEngine(g, log, Options{})
	if e.Entries() < 0 {
		t.Fatalf("negative entries %d", e.Entries())
	}
	before := e.Entries()
	e.Add(5)
	if e.Entries() > before {
		t.Fatalf("entries grew after Add: %d -> %d", before, e.Entries())
	}
	e.Add(6)
	e.Add(7)
	if e.Entries() < 0 {
		t.Fatalf("negative entries after adds: %d", e.Entries())
	}
}

func TestEngineTruncationReducesEntriesAndSpread(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 2))
	g, log := randomInstance(rng, 25, 10)
	exact := NewEngine(g, log, Options{})
	trunc := NewEngine(g, log, Options{Lambda: 0.2})
	if trunc.Entries() > exact.Entries() {
		t.Fatalf("truncated engine has more entries: %d > %d", trunc.Entries(), exact.Entries())
	}
	for u := 0; u < g.NumNodes(); u++ {
		ge, gt := exact.Gain(graph.NodeID(u)), trunc.Gain(graph.NodeID(u))
		if gt > ge+1e-9 {
			t.Fatalf("truncated gain exceeds exact for %d: %g > %g", u, gt, ge)
		}
	}
}

func TestGainZeroForInactiveUser(t *testing.T) {
	g, log := figure1(t)
	// Rebuild with an extra user who performs nothing.
	b := graph.NewBuilder(7)
	for _, e := range g.Edges() {
		_ = b.AddEdge(e.From, e.To)
	}
	_ = b.AddEdge(6, 0)
	g2 := b.Build()
	lb := actionlog.NewBuilder(7)
	for _, tp := range log.Tuples() {
		_ = lb.Add(tp.User, tp.Action, tp.Time)
	}
	log2 := lb.Build()
	e := NewEngine(g2, log2, Options{})
	if got := e.Gain(6); got != 0 {
		t.Fatalf("inactive user gain = %g, want 0", got)
	}
}

// TestEngineDeterministicAcrossWorkers proves the sorted-sparse UC makes
// the engine bit-for-bit reproducible: a serial build and a fully parallel
// build of the same dataset must agree exactly — not within a tolerance —
// on every marginal gain, on the CELF seed sequence and its gains, and on
// the UC entry count, both before and after seeds are committed.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewPCG(29, 3))
	g, log := randomInstance(rng, 60, 40)
	credit := LearnTimeAware(g, log)
	for _, lambda := range []float64{0, 0.01} {
		serial := NewEngine(g, log, Options{Workers: 1, Lambda: lambda, Credit: credit})
		parallel := NewEngine(g, log, Options{Workers: runtime.GOMAXPROCS(0), Lambda: lambda, Credit: credit})
		if serial.Entries() != parallel.Entries() {
			t.Fatalf("lambda=%g: entries %d vs %d", lambda, serial.Entries(), parallel.Entries())
		}
		for u := 0; u < g.NumNodes(); u++ {
			if gs, gp := serial.Gain(graph.NodeID(u)), parallel.Gain(graph.NodeID(u)); gs != gp {
				t.Fatalf("lambda=%g: Gain(%d) not bit-identical: %b vs %b", lambda, u, gs, gp)
			}
		}
		rs := seedsel.CELF(serial, 8)
		rp := seedsel.CELF(parallel, 8)
		for i := range rs.Seeds {
			if rs.Seeds[i] != rp.Seeds[i] {
				t.Fatalf("lambda=%g: seed %d differs: %d vs %d", lambda, i, rs.Seeds[i], rp.Seeds[i])
			}
			if rs.Gains[i] != rp.Gains[i] {
				t.Fatalf("lambda=%g: gain %d not bit-identical: %b vs %b", lambda, i, rs.Gains[i], rp.Gains[i])
			}
		}
		if serial.Entries() != parallel.Entries() {
			t.Fatalf("lambda=%g: post-selection entries %d vs %d", lambda, serial.Entries(), parallel.Entries())
		}
		for u := 0; u < g.NumNodes(); u++ {
			if gs, gp := serial.Gain(graph.NodeID(u)), parallel.Gain(graph.NodeID(u)); gs != gp {
				t.Fatalf("lambda=%g: post-selection Gain(%d): %b vs %b", lambda, u, gs, gp)
			}
		}
		// Spread evaluation is deterministic too: two evaluator instances
		// must score the selected set bit-identically (the union of seed
		// actions is walked in input order, not map order).
		ev1, ev2 := NewEvaluator(g, log, credit), NewEvaluator(g, log, credit)
		if a, b := ev1.Spread(rs.Seeds), ev2.Spread(rs.Seeds); a != b {
			t.Fatalf("lambda=%g: Spread not bit-identical: %b vs %b", lambda, a, b)
		}
	}
}

// TestGainOfCommittedSeedIsZero pins the sigma_cd(S+x) - sigma_cd(S)
// contract for x already in S: zero, matching the evaluator's seed dedup.
// CELF never queries a committed seed, but the batched-gain API does.
func TestGainOfCommittedSeedIsZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 8))
	g, log := randomInstance(rng, 30, 12)
	e := NewEngine(g, log, Options{})
	ev := NewEvaluator(g, log, nil)
	seeds := []graph.NodeID{4, 9}
	for _, s := range seeds {
		e.Add(s)
	}
	for _, s := range seeds {
		if got := e.Gain(s); got != 0 {
			t.Errorf("Gain(%d) = %g for committed seed, want 0", s, got)
		}
		want := ev.Spread(append(append([]graph.NodeID(nil), seeds...), s)) - ev.Spread(seeds)
		if want != 0 {
			t.Errorf("evaluator disagrees: Spread(S+%d)-Spread(S) = %g", s, want)
		}
	}
}

// TestEngineClone proves Clone gives full isolation with bit-identical
// behavior: committing seeds to a clone leaves the original untouched, and
// the clone's gains, entry counts, and CELF selections match — exactly —
// those of a fresh engine driven through the same sequence of Adds.
func TestEngineClone(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 5))
	g, log := randomInstance(rng, 50, 30)
	credit := LearnTimeAware(g, log)
	opts := Options{Lambda: 0.001, Credit: credit}
	base := NewEngine(g, log, opts)

	baseline := make([]float64, g.NumNodes())
	for u := range baseline {
		baseline[u] = base.Gain(graph.NodeID(u))
	}
	baseEntries := base.Entries()

	// Drive the clone and a from-scratch reference engine identically.
	clone := base.Clone()
	ref := NewEngine(g, log, opts)
	res := seedsel.CELF(clone, 6)
	refRes := seedsel.CELF(ref, 6)
	for i := range res.Seeds {
		if res.Seeds[i] != refRes.Seeds[i] || res.Gains[i] != refRes.Gains[i] {
			t.Fatalf("clone CELF diverged at %d: (%d, %b) vs (%d, %b)",
				i, res.Seeds[i], res.Gains[i], refRes.Seeds[i], refRes.Gains[i])
		}
	}
	if clone.Entries() != ref.Entries() {
		t.Fatalf("clone entries %d, reference %d", clone.Entries(), ref.Entries())
	}

	// The original must be exactly as it was before the clone was mutated.
	if base.Entries() != baseEntries {
		t.Fatalf("original entries changed: %d -> %d", baseEntries, base.Entries())
	}
	if len(base.Seeds()) != 0 {
		t.Fatalf("original seed set changed: %v", base.Seeds())
	}
	for u := range baseline {
		if got := base.Gain(graph.NodeID(u)); got != baseline[u] {
			t.Fatalf("original Gain(%d) changed: %b -> %b", u, baseline[u], got)
		}
	}

	// A clone taken mid-selection continues exactly like its source.
	mid := base.Clone()
	mid.Add(res.Seeds[0])
	fromClone := mid.Clone()
	for u := 0; u < g.NumNodes(); u++ {
		if a, b := mid.Gain(graph.NodeID(u)), fromClone.Gain(graph.NodeID(u)); a != b {
			t.Fatalf("mid-selection clone Gain(%d): %b vs %b", u, a, b)
		}
	}
}

func TestParallelScanMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 19))
	g, log := randomInstance(rng, 40, 30)
	serial := NewEngine(g, log, Options{Workers: 1})
	parallel := NewEngine(g, log, Options{Workers: 8})
	if serial.Entries() != parallel.Entries() {
		t.Fatalf("entries differ: serial %d parallel %d", serial.Entries(), parallel.Entries())
	}
	for u := 0; u < g.NumNodes(); u++ {
		gs, gp := serial.Gain(graph.NodeID(u)), parallel.Gain(graph.NodeID(u))
		if math.Abs(gs-gp) > 1e-12 {
			t.Fatalf("Gain(%d) differs: %g vs %g", u, gs, gp)
		}
	}
	// And after committing seeds.
	serial.Add(3)
	parallel.Add(3)
	for u := 0; u < g.NumNodes(); u++ {
		gs, gp := serial.Gain(graph.NodeID(u)), parallel.Gain(graph.NodeID(u))
		if math.Abs(gs-gp) > 1e-12 {
			t.Fatalf("post-Add Gain(%d) differs: %g vs %g", u, gs, gp)
		}
	}
}
