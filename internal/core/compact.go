package core

import (
	"slices"
	"sort"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

// CompactEngine is a flattened alternative to Engine: per action, the UC
// credits live in three parallel slices sorted by (influencer, influenced)
// with a permutation index for column access, instead of Engine's
// per-influencer sorted rows. Entries cost ~20 bytes, at the price of
// binary searches during seed updates and tombstoned deletions (the slices
// are immutable-size, so removed entries linger as zeros).
//
// It implements the same estimator interface and is property-tested to
// produce bit-identical gains to Engine; BenchmarkCompactEngine reports
// the memory/time trade-off. This is the UC-representation ablation
// called out in DESIGN.md §6.
type CompactEngine struct {
	numUsers  int
	au        []int32
	actionsOf [][]int32
	uc        []compactUC
	sc        []map[int32]float64
	seeds     []graph.NodeID
	entries   int64
	lambda    float64
}

// compactUC stores one action's credits. vs/us/credit are parallel,
// sorted by (vs, us). byU is a permutation of entry indices sorted by
// (us, vs), giving column access. vOff/uOff would require dense node ids
// per action; ranges are found by binary search instead, keeping memory
// at three slices plus one permutation.
type compactUC struct {
	vs     []int32
	us     []int32
	credit []float64 // 0 = tombstone
	byU    []int32
}

// rowRange returns [lo,hi) of entries with influencer v.
func (c *compactUC) rowRange(v int32) (int, int) {
	return sortedRange(c.vs, v)
}

// colRange returns [lo,hi) into byU of entries with influenced u.
func (c *compactUC) colRange(u int32) (int, int) {
	lo := sort.Search(len(c.byU), func(i int) bool { return c.us[c.byU[i]] >= u })
	hi := sort.Search(len(c.byU), func(i int) bool { return c.us[c.byU[i]] > u })
	return lo, hi
}

// find returns the entry index of (v,u) or -1.
func (c *compactUC) find(v, u int32) int {
	lo, hi := c.rowRange(v)
	l, _ := sortedRange(c.us[lo:hi], u)
	if i := lo + l; i < hi && c.us[i] == u {
		return i
	}
	return -1
}

// NewCompactEngine scans the log into the compact representation. The
// scan itself reuses Engine's per-action pass (transitive credit
// accumulation needs random-access upserts), then flattens each shard.
func NewCompactEngine(g *graph.Graph, train *actionlog.Log, opts Options) *CompactEngine {
	model := opts.Credit
	if model == nil {
		model = SimpleCredit{}
	}
	e := &CompactEngine{
		numUsers:  train.NumUsers(),
		au:        make([]int32, train.NumUsers()),
		actionsOf: make([][]int32, train.NumUsers()),
		uc:        make([]compactUC, train.NumActions()),
		sc:        make([]map[int32]float64, train.NumActions()),
		lambda:    opts.Lambda,
	}
	for u := 0; u < train.NumUsers(); u++ {
		e.au[u] = int32(train.ActionCount(graph.NodeID(u)))
	}
	for a := 0; a < train.NumActions(); a++ {
		p := actionlog.BuildPropagation(train, g, actionlog.ActionID(a))
		for _, u := range p.Users {
			e.actionsOf[u] = append(e.actionsOf[u], actionlog.ActionID(a))
		}
		shard, n := scanAction(p, model, e.lambda, 0)
		e.uc[a] = flattenShard(shard)
		e.entries += n
	}
	return e
}

// flattenShard converts a UC shard into sorted parallel slices. The shard
// is already ordered by (influencer, influenced), so the row-major walk
// needs no sort; only the column permutation does.
func flattenShard(ua ucAction) compactUC {
	total := 0
	for _, row := range ua.rows {
		total += len(row)
	}
	c := compactUC{
		vs:     make([]int32, 0, total),
		us:     make([]int32, 0, total),
		credit: make([]float64, 0, total),
	}
	for ri, v := range ua.rowKey {
		for _, en := range ua.rows[ri] {
			c.vs = append(c.vs, v)
			c.us = append(c.us, en.u)
			c.credit = append(c.credit, en.c)
		}
	}
	c.byU = make([]int32, total)
	for i := range c.byU {
		c.byU[i] = int32(i)
	}
	sort.Slice(c.byU, func(i, j int) bool {
		a, b := c.byU[i], c.byU[j]
		if c.us[a] != c.us[b] {
			return c.us[a] < c.us[b]
		}
		return c.vs[a] < c.vs[b]
	})
	return c
}

// NumNodes implements the estimator interface.
func (e *CompactEngine) NumNodes() int { return e.numUsers }

// Entries returns the live (non-tombstoned) UC entry count.
func (e *CompactEngine) Entries() int64 { return e.entries }

// Seeds returns the committed seeds in selection order.
func (e *CompactEngine) Seeds() []graph.NodeID {
	out := make([]graph.NodeID, len(e.seeds))
	copy(out, e.seeds)
	return out
}

// ConcurrentGain marks Gain as safe for concurrent calls between Adds,
// mirroring Engine so the ablation benchmarks exercise the same parallel
// CELF path. Compile-time marker for celf.ConcurrentEstimator.
func (e *CompactEngine) ConcurrentGain() {}

// Gain mirrors Engine.Gain (Theorem 3 / Algorithm 4) over the compact
// layout, including the committed-seed short-circuit.
func (e *CompactEngine) Gain(x graph.NodeID) float64 {
	ax := float64(e.au[x])
	if ax == 0 {
		return 0
	}
	if slices.Contains(e.seeds, x) {
		return 0
	}
	mg := 0.0
	for _, a := range e.actionsOf[x] {
		ua := &e.uc[a]
		mga := 1.0 / ax
		lo, hi := ua.rowRange(int32(x))
		for i := lo; i < hi; i++ {
			if cr := ua.credit[i]; cr > 0 {
				mga += cr / float64(e.au[ua.us[i]])
			}
		}
		scx := 0.0
		if e.sc[a] != nil {
			scx = e.sc[a][int32(x)]
		}
		mg += mga * (1 - scx)
	}
	return mg
}

// Add mirrors Engine.Add (Algorithm 5, Lemmas 2 and 3): subtract the
// through-x share from every (v,u) credit, raise SC for x's downstream
// users, and tombstone x's row and column.
func (e *CompactEngine) Add(x graph.NodeID) {
	xi := int32(x)
	for _, a := range e.actionsOf[x] {
		ua := &e.uc[a]
		rLo, rHi := ua.rowRange(xi)
		cLo, cHi := ua.colRange(xi)
		scx := 0.0
		if e.sc[a] != nil {
			scx = e.sc[a][xi]
		}
		for i := rLo; i < rHi; i++ {
			cxu := ua.credit[i]
			if cxu <= 0 {
				continue
			}
			u := ua.us[i]
			// Lemma 2 for every v with credit over x.
			for j := cLo; j < cHi; j++ {
				vi := ua.byU[j]
				cvx := ua.credit[vi]
				if cvx <= 0 {
					continue
				}
				v := ua.vs[vi]
				k := ua.find(v, u)
				if k < 0 || ua.credit[k] <= 0 {
					continue // truncated away during the scan
				}
				nv := ua.credit[k] - cvx*cxu
				if nv <= 1e-15 {
					ua.credit[k] = 0
					e.entries--
				} else {
					ua.credit[k] = nv
				}
			}
			// Lemma 3.
			if e.sc[a] == nil {
				e.sc[a] = make(map[int32]float64)
			}
			e.sc[a][u] += cxu * (1 - scx)
		}
		// Tombstone x's row and column.
		for i := rLo; i < rHi; i++ {
			if ua.credit[i] > 0 {
				ua.credit[i] = 0
				e.entries--
			}
		}
		for j := cLo; j < cHi; j++ {
			if vi := ua.byU[j]; ua.credit[vi] > 0 {
				ua.credit[vi] = 0
				e.entries--
			}
		}
	}
	e.seeds = append(e.seeds, x)
}

// Credit returns the current credit of (v,u) for action a, for tests.
func (e *CompactEngine) Credit(a actionlog.ActionID, v, u graph.NodeID) float64 {
	if int(a) >= len(e.uc) {
		return 0
	}
	if i := e.uc[a].find(int32(v), int32(u)); i >= 0 {
		return e.uc[a].credit[i]
	}
	return 0
}

// ResidentBytes returns the exact slice footprint of the compact layout:
// 20 bytes per entry (two int32 ids, one float64 credit, one int32
// permutation slot) plus slice headers.
func (e *CompactEngine) ResidentBytes() int64 {
	var bytes int64
	for i := range e.uc {
		ua := &e.uc[i]
		bytes += int64(cap(ua.vs))*4 + int64(cap(ua.us))*4 +
			int64(cap(ua.credit))*8 + int64(cap(ua.byU))*4
		bytes += 4 * 24 // slice headers
	}
	return bytes
}
