package core

import (
	"cmp"
	"maps"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

// Engine is the incremental marginal-gain machinery behind the CD-model
// greedy algorithm. Construction performs the one-time Scan of the action
// log (Algorithm 2), building for every action the total-credit structure
// UC where UC[v][u][a] = Gamma^{V-S}_{v,u}(a); thereafter Gain evaluates
// Theorem 3 in time linear in the touched credit entries (Algorithm 4) and
// Add maintains UC and SC incrementally via Lemmas 2 and 3 (Algorithm 5).
//
// UC is stored as sorted sparse rows, so every walk — scan, gain, seed
// update — visits entries in a fixed (influencer, influenced) order and
// the floating-point results are bit-for-bit identical across runs,
// reloads, and worker counts.
type Engine struct {
	numUsers  int
	au        []int32   // Au: actions performed per user (training log)
	actionsOf [][]int32 // per user: training actions they performed

	uc      []ucAction          // indexed by action id
	sc      []map[int32]float64 // per action: Gamma_{S,x}(a) for current seeds
	seeds   []graph.NodeID
	entries int64 // live UC entry count, for memory accounting
	lambda  float64
}

// ucEntry is one cell of an influencer's credit row.
type ucEntry struct {
	u int32   // influenced user
	c float64 // Gamma^{V-S}_{v,u}(a)
}

// ucAction holds one action's credit matrix as sorted sparse rows: rowKey
// lists the influencers in ascending order and rows[i] holds rowKey[i]'s
// (influenced, credit) cells sorted by influenced id. colKey/cols mirror
// the structure column-wise (influenced -> sorted influencer ids) so seed
// updates can walk a column without scanning every row. All four slices
// are kept exactly in sync; iteration order is therefore fixed, which
// makes every float summation over the structure deterministic.
type ucAction struct {
	rowKey []int32
	rows   [][]ucEntry
	colKey []int32
	cols   [][]int32
}

// searchRow locates influenced id u in a sorted row.
func searchRow(row []ucEntry, u int32) (int, bool) {
	return slices.BinarySearchFunc(row, u, func(e ucEntry, u int32) int {
		return cmp.Compare(e.u, u)
	})
}

// row returns v's credit cells, sorted by influenced id, or nil.
func (ua *ucAction) row(v int32) []ucEntry {
	if i, ok := slices.BinarySearch(ua.rowKey, v); ok {
		return ua.rows[i]
	}
	return nil
}

// col returns the sorted influencer ids with credit over u, or nil.
func (ua *ucAction) col(u int32) []int32 {
	if i, ok := slices.BinarySearch(ua.colKey, u); ok {
		return ua.cols[i]
	}
	return nil
}

// get returns the credit of entry (v,u) and whether it exists.
func (ua *ucAction) get(v, u int32) (float64, bool) {
	row := ua.row(v)
	if i, ok := searchRow(row, u); ok {
		return row[i].c, true
	}
	return 0, false
}

// cell returns a pointer to the credit of entry (v,u), creating the entry
// (and mirroring it in the column index) when absent; created reports
// whether it did. The pointer is valid until the next structural change.
func (ua *ucAction) cell(v, u int32) (cr *float64, created bool) {
	ri, ok := slices.BinarySearch(ua.rowKey, v)
	if !ok {
		ua.rowKey = slices.Insert(ua.rowKey, ri, v)
		ua.rows = slices.Insert(ua.rows, ri, []ucEntry(nil))
	}
	ei, found := searchRow(ua.rows[ri], u)
	if !found {
		ua.rows[ri] = slices.Insert(ua.rows[ri], ei, ucEntry{u: u})
		ua.colInsert(u, v)
	}
	return &ua.rows[ri][ei].c, !found
}

// colInsert mirrors a new entry (v,u) into the column index.
func (ua *ucAction) colInsert(u, v int32) {
	ci, ok := slices.BinarySearch(ua.colKey, u)
	if !ok {
		ua.colKey = slices.Insert(ua.colKey, ci, u)
		ua.cols = slices.Insert(ua.cols, ci, []int32(nil))
	}
	if vi, found := slices.BinarySearch(ua.cols[ci], v); !found {
		ua.cols[ci] = slices.Insert(ua.cols[ci], vi, v)
	}
}

// colRemove drops v from u's column, pruning the column when it empties.
func (ua *ucAction) colRemove(u, v int32) {
	ci, ok := slices.BinarySearch(ua.colKey, u)
	if !ok {
		return
	}
	vi, found := slices.BinarySearch(ua.cols[ci], v)
	if !found {
		return
	}
	ua.cols[ci] = slices.Delete(ua.cols[ci], vi, vi+1)
	if len(ua.cols[ci]) == 0 {
		ua.colKey = slices.Delete(ua.colKey, ci, ci+1)
		ua.cols = slices.Delete(ua.cols, ci, ci+1)
	}
}

// rowRemoveEntry drops cell (v,u) from v's row, pruning the row when it
// empties; it does not touch the column index.
func (ua *ucAction) rowRemoveEntry(v, u int32) bool {
	ri, ok := slices.BinarySearch(ua.rowKey, v)
	if !ok {
		return false
	}
	ei, found := searchRow(ua.rows[ri], u)
	if !found {
		return false
	}
	ua.rows[ri] = slices.Delete(ua.rows[ri], ei, ei+1)
	if len(ua.rows[ri]) == 0 {
		ua.rowKey = slices.Delete(ua.rowKey, ri, ri+1)
		ua.rows = slices.Delete(ua.rows, ri, ri+1)
	}
	return true
}

// find locates entry (v,u), returning its row and cell indexes.
func (ua *ucAction) find(v, u int32) (ri, ei int, ok bool) {
	ri, ok = slices.BinarySearch(ua.rowKey, v)
	if !ok {
		return 0, 0, false
	}
	ei, ok = searchRow(ua.rows[ri], u)
	return ri, ei, ok
}

// remove deletes entry (v,u) from both indexes; reports whether it existed.
func (ua *ucAction) remove(v, u int32) bool {
	if !ua.rowRemoveEntry(v, u) {
		return false
	}
	ua.colRemove(u, v)
	return true
}

// removeRow deletes v's entire row, unmirroring every cell from the column
// index; returns how many entries were removed.
func (ua *ucAction) removeRow(v int32) int {
	ri, ok := slices.BinarySearch(ua.rowKey, v)
	if !ok {
		return 0
	}
	row := ua.rows[ri]
	ua.rowKey = slices.Delete(ua.rowKey, ri, ri+1)
	ua.rows = slices.Delete(ua.rows, ri, ri+1)
	for _, en := range row {
		ua.colRemove(en.u, v)
	}
	return len(row)
}

// removeCol deletes u's entire column, dropping every (v,u) cell from the
// rows; returns how many entries were removed.
func (ua *ucAction) removeCol(u int32) int {
	ci, ok := slices.BinarySearch(ua.colKey, u)
	if !ok {
		return 0
	}
	col := ua.cols[ci]
	ua.colKey = slices.Delete(ua.colKey, ci, ci+1)
	ua.cols = slices.Delete(ua.cols, ci, ci+1)
	n := 0
	for _, v := range col {
		if ua.rowRemoveEntry(v, u) {
			n++
		}
	}
	return n
}

// Options configures engine construction.
type Options struct {
	// Lambda is the truncation threshold of Section 5.3: path credits
	// below it are discarded during the scan, bounding memory. The paper's
	// default is 0.001. Zero means no truncation.
	Lambda float64
	// Credit selects the direct-credit rule; nil means SimpleCredit.
	Credit CreditModel
	// Workers parallelizes the action-log scan. Credits are per-action, so
	// actions shard cleanly across goroutines; because every shard is a
	// sorted sparse structure, results are bit-for-bit identical
	// regardless of worker count. Default GOMAXPROCS; 1 forces the serial
	// scan of Algorithm 2.
	Workers int
}

// NewEngine scans the training log and returns a ready engine.
func NewEngine(g *graph.Graph, train *actionlog.Log, opts Options) *Engine {
	model := opts.Credit
	if model == nil {
		model = SimpleCredit{}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	numActions := train.NumActions()
	if workers > numActions {
		workers = numActions
	}
	if workers < 1 {
		workers = 1
	}
	e := &Engine{
		numUsers:  train.NumUsers(),
		au:        make([]int32, train.NumUsers()),
		actionsOf: make([][]int32, train.NumUsers()),
		uc:        make([]ucAction, numActions),
		sc:        make([]map[int32]float64, numActions),
		lambda:    opts.Lambda,
	}
	for u := 0; u < train.NumUsers(); u++ {
		e.au[u] = int32(train.ActionCount(graph.NodeID(u)))
	}

	props := make([]*actionlog.Propagation, numActions)
	var wg sync.WaitGroup
	var next atomic.Int64
	entries := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				a := next.Add(1) - 1
				if a >= int64(numActions) {
					return
				}
				p := actionlog.BuildPropagation(train, g, actionlog.ActionID(a))
				props[a] = p
				e.uc[a], entries[w] = scanAction(p, model, e.lambda, entries[w])
			}
		}(w)
	}
	wg.Wait()
	for _, n := range entries {
		e.entries += n
	}
	// actionsOf is rebuilt serially in action order so its contents do not
	// depend on worker scheduling.
	for a := 0; a < numActions; a++ {
		for _, u := range props[a].Users {
			e.actionsOf[u] = append(e.actionsOf[u], actionlog.ActionID(a))
		}
	}
	return e
}

// scanAction processes one propagation chronologically (the per-action
// body of Algorithm 2), accumulating direct and transitive credits into a
// fresh UC shard. It returns the shard and the updated entry tally. All
// loops walk slices in sorted order, so the accumulated floats do not
// depend on scheduling or hashing.
func scanAction(p *actionlog.Propagation, model CreditModel, lambda float64, entries int64) (ucAction, int64) {
	ua := ucAction{}
	add := func(v, u int32, delta float64) {
		cr, created := ua.cell(v, u)
		if created {
			entries++
		}
		*cr += delta
	}
	for i, u := range p.Users {
		for _, j := range p.Parents[i] {
			v := p.Users[j]
			gamma := model.Gamma(p, int32(i), j)
			if gamma < lambda || gamma <= 0 {
				continue
			}
			add(v, u, gamma)
			// Transitive credit: everyone with credit over v extends it
			// to u, scaled by gamma (Eq. 5), subject to truncation. The
			// adds below only touch u's column, so the snapshot of v's
			// column stays valid.
			for _, w := range ua.col(v) {
				c, _ := ua.get(w, v)
				c *= gamma
				if c >= lambda && c > 0 {
					add(w, u, c)
				}
			}
		}
	}
	return ua, entries
}

// Clone returns an independent deep copy of the engine: committing seeds to
// the clone never disturbs the original, and a sequence of Gain/Add calls on
// the clone produces bit-for-bit the floats the original would have produced.
// The read-only scan products (Au counts and the per-user action lists) are
// shared, so cloning costs a copy of the live UC entries and SC maps —
// milliseconds — instead of the full log rescan NewEngine performs. This is
// what lets a serving layer keep one scanned engine per model snapshot and
// hand mutable copies to concurrent seed-selection requests.
func (e *Engine) Clone() *Engine {
	c := &Engine{
		numUsers:  e.numUsers,
		au:        e.au,        // never mutated after NewEngine
		actionsOf: e.actionsOf, // never mutated after NewEngine
		uc:        make([]ucAction, len(e.uc)),
		sc:        make([]map[int32]float64, len(e.sc)),
		seeds:     slices.Clone(e.seeds),
		entries:   e.entries,
		lambda:    e.lambda,
	}
	for i := range e.uc {
		src, dst := &e.uc[i], &c.uc[i]
		dst.rowKey = slices.Clone(src.rowKey)
		dst.colKey = slices.Clone(src.colKey)
		dst.rows = make([][]ucEntry, len(src.rows))
		for j, row := range src.rows {
			dst.rows[j] = slices.Clone(row)
		}
		dst.cols = make([][]int32, len(src.cols))
		for j, col := range src.cols {
			dst.cols[j] = slices.Clone(col)
		}
	}
	for i, m := range e.sc {
		if m != nil {
			c.sc[i] = maps.Clone(m)
		}
	}
	return c
}

// Credit returns UC[v][u][a] = Gamma^{V-S}_{v,u}(a) under the current seed
// set. Exposed for tests and diagnostics.
func (e *Engine) Credit(a actionlog.ActionID, v, u graph.NodeID) float64 {
	if int(a) >= len(e.uc) {
		return 0
	}
	c, _ := e.uc[a].get(v, u)
	return c
}

// SeedCredit returns SC[x][a] = Gamma_{S,x}(a) for the current seed set.
func (e *Engine) SeedCredit(a actionlog.ActionID, x graph.NodeID) float64 {
	if e.sc[a] == nil {
		return 0
	}
	return e.sc[a][x]
}

// Entries returns the number of live UC entries, the memory statistic
// reported in Figure 8 and Table 4.
func (e *Engine) Entries() int64 { return e.entries }

// NumNodes returns the user-universe size, making Engine usable as a
// seedsel.Estimator.
func (e *Engine) NumNodes() int { return e.numUsers }

// Seeds returns the committed seed set in selection order.
func (e *Engine) Seeds() []graph.NodeID {
	out := make([]graph.NodeID, len(e.seeds))
	copy(out, e.seeds)
	return out
}

// Gain computes the marginal gain sigma_cd(S+x) - sigma_cd(S) of candidate
// x against the current seed set via Theorem 3 (Algorithm 4):
//
//	sum over actions a performed by x of
//	  (1 - Gamma_{S,x}(a)) * (1/A_x + sum_u UC[x][u][a]/A_u)
//
// where the 1/A_x term is x's self-credit Gamma^{V-S}_{x,x}(a) = 1. The
// row walk is in ascending influenced-id order, so the returned float is
// identical across engine instances built from the same inputs.
//
// A committed seed gains exactly 0: sigma_cd(S+x) = sigma_cd(S) when x is
// already in S. The walk below cannot derive that (Add removed x's row, and
// SC keeps no diagonal entry), so it is checked up front — CELF never asks,
// but the batched-gain API accepts arbitrary candidates.
func (e *Engine) Gain(x graph.NodeID) float64 {
	ax := float64(e.au[x])
	if ax == 0 {
		return 0
	}
	if slices.Contains(e.seeds, x) {
		return 0
	}
	mg := 0.0
	for _, a := range e.actionsOf[x] {
		mga := 1.0 / ax
		for _, en := range e.uc[a].row(x) {
			mga += en.c / float64(e.au[en.u])
		}
		scx := 0.0
		if e.sc[a] != nil {
			scx = e.sc[a][x]
		}
		mg += mga * (1 - scx)
	}
	return mg
}

// Add commits x to the seed set and updates UC and SC (Algorithm 5):
// Lemma 2 removes from every credit the share flowing through x, and
// Lemma 3 raises Gamma_{S,u}(a) for every u that x has credit over.
// Finally x's row and column are removed, matching the V-S superscript
// semantics of Theorem 3. Both walks follow sorted id order; the Lemma 2
// deletions never touch x's own row or column, so the snapshots below
// stay valid throughout.
func (e *Engine) Add(x graph.NodeID) {
	xi := int32(x)
	for _, a := range e.actionsOf[x] {
		ua := &e.uc[a]
		row := ua.row(xi) // (u, Gamma^{V-S}_{x,u}(a)) cells
		col := ua.col(xi) // v ids with Gamma^{V-S}_{v,x}(a) > 0
		scx := 0.0
		if e.sc[a] != nil {
			scx = e.sc[a][xi]
		}
		// The Gamma^{V-S}_{v,x}(a) values are fixed for the whole update
		// (Lemma 2 only rewrites cells with u != x), so read them once.
		cvxs := make([]float64, len(col))
		for i, v := range col {
			cvxs[i], _ = ua.get(v, xi)
		}
		for _, en := range row {
			u, cxu := en.u, en.c
			// Lemma 2: credits of every v over u lose the paths through x.
			for i, v := range col {
				cvx := cvxs[i]
				ri, ei, ok := ua.find(v, u)
				if !ok {
					// Mathematically the entry holds >= cvx*cxu > 0, but
					// truncation may have dropped it; nothing to subtract.
					continue
				}
				value := ua.rows[ri][ei].c - cvx*cxu
				if value > 1e-15 {
					ua.rows[ri][ei].c = value
				} else if ua.remove(v, u) {
					e.entries--
				}
			}
			// Lemma 3: Gamma_{S+x,u}(a) = Gamma_{S,u}(a) + cxu*(1-scx).
			if e.sc[a] == nil {
				e.sc[a] = make(map[int32]float64)
			}
			e.sc[a][u] += cxu * (1 - scx)
		}
		// Remove x's row and column: x is no longer part of V-S.
		e.entries -= int64(ua.removeRow(xi))
		e.entries -= int64(ua.removeCol(xi))
	}
	e.seeds = append(e.seeds, x)
}

// ResidentBytes reports the UC structure's slice footprint: 16 bytes per
// entry in the rows (int32 influenced id + float64 credit, padded) plus 4
// bytes in the column index, with per-row slice headers on top. On the
// flixster-small preset this measures 34.4 bytes per live entry (32.0
// MiB total), versus 71.5 bytes per entry (66.4 MiB) for the mirrored
// map-of-maps representation it replaced.
func (e *Engine) ResidentBytes() int64 {
	var bytes int64
	for i := range e.uc {
		ua := &e.uc[i]
		bytes += int64(cap(ua.rowKey))*4 + int64(cap(ua.colKey))*4
		for _, row := range ua.rows {
			bytes += int64(cap(row)) * 16
		}
		for _, col := range ua.cols {
			bytes += int64(cap(col)) * 4
		}
		bytes += int64(cap(ua.rows)+cap(ua.cols)) * 24 // inner slice headers
	}
	return bytes
}
