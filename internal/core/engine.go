package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

// Engine is the incremental marginal-gain machinery behind the CD-model
// greedy algorithm. Construction performs the one-time Scan of the action
// log (Algorithm 2), building for every action the total-credit structure
// UC where UC[v][u][a] = Gamma^{V-S}_{v,u}(a); thereafter Gain evaluates
// Theorem 3 in time linear in the touched credit entries (Algorithm 4) and
// Add maintains UC and SC incrementally via Lemmas 2 and 3 (Algorithm 5).
type Engine struct {
	numUsers  int
	au        []int32   // Au: actions performed per user (training log)
	actionsOf [][]int32 // per user: training actions they performed

	uc      []ucAction          // indexed by action id
	sc      []map[int32]float64 // per action: Gamma_{S,x}(a) for current seeds
	seeds   []graph.NodeID
	entries int64 // live UC entry count, for memory accounting
	lambda  float64
}

// ucAction holds one action's credit matrix in mirrored sparse form:
// byInf[v][u] stores the credit value; byInfd[u] indexes who has credit
// over u so seed updates can walk the column without scanning rows.
type ucAction struct {
	byInf  map[int32]map[int32]float64
	byInfd map[int32]map[int32]struct{}
}

// Options configures engine construction.
type Options struct {
	// Lambda is the truncation threshold of Section 5.3: path credits
	// below it are discarded during the scan, bounding memory. The paper's
	// default is 0.001. Zero means no truncation.
	Lambda float64
	// Credit selects the direct-credit rule; nil means SimpleCredit.
	Credit CreditModel
	// Workers parallelizes the action-log scan. Credits are per-action, so
	// actions shard cleanly across goroutines; results are deterministic
	// regardless of worker count. Default GOMAXPROCS; 1 forces the serial
	// scan of Algorithm 2.
	Workers int
}

// NewEngine scans the training log and returns a ready engine.
func NewEngine(g *graph.Graph, train *actionlog.Log, opts Options) *Engine {
	model := opts.Credit
	if model == nil {
		model = SimpleCredit{}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	numActions := train.NumActions()
	if workers > numActions {
		workers = numActions
	}
	if workers < 1 {
		workers = 1
	}
	e := &Engine{
		numUsers:  train.NumUsers(),
		au:        make([]int32, train.NumUsers()),
		actionsOf: make([][]int32, train.NumUsers()),
		uc:        make([]ucAction, numActions),
		sc:        make([]map[int32]float64, numActions),
		lambda:    opts.Lambda,
	}
	for u := 0; u < train.NumUsers(); u++ {
		e.au[u] = int32(train.ActionCount(graph.NodeID(u)))
	}

	props := make([]*actionlog.Propagation, numActions)
	var wg sync.WaitGroup
	var next atomic.Int64
	entries := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				a := next.Add(1) - 1
				if a >= int64(numActions) {
					return
				}
				p := actionlog.BuildPropagation(train, g, actionlog.ActionID(a))
				props[a] = p
				e.uc[a], entries[w] = scanAction(p, model, e.lambda, entries[w])
			}
		}(w)
	}
	wg.Wait()
	for _, n := range entries {
		e.entries += n
	}
	// actionsOf is rebuilt serially in action order so its contents do not
	// depend on worker scheduling.
	for a := 0; a < numActions; a++ {
		for _, u := range props[a].Users {
			e.actionsOf[u] = append(e.actionsOf[u], actionlog.ActionID(a))
		}
	}
	return e
}

// scanAction processes one propagation chronologically (the per-action
// body of Algorithm 2), accumulating direct and transitive credits into a
// fresh UC shard. It returns the shard and the updated entry tally.
func scanAction(p *actionlog.Propagation, model CreditModel, lambda float64, entries int64) (ucAction, int64) {
	ua := ucAction{}
	add := func(v, u int32, delta float64) {
		if ua.byInf == nil {
			ua.byInf = make(map[int32]map[int32]float64)
			ua.byInfd = make(map[int32]map[int32]struct{})
		}
		row := ua.byInf[v]
		if row == nil {
			row = make(map[int32]float64)
			ua.byInf[v] = row
		}
		if _, exists := row[u]; !exists {
			entries++
			col := ua.byInfd[u]
			if col == nil {
				col = make(map[int32]struct{})
				ua.byInfd[u] = col
			}
			col[v] = struct{}{}
		}
		row[u] += delta
	}
	for i, u := range p.Users {
		for _, j := range p.Parents[i] {
			v := p.Users[j]
			gamma := model.Gamma(p, int32(i), j)
			if gamma < lambda || gamma <= 0 {
				continue
			}
			add(v, u, gamma)
			// Transitive credit: everyone with credit over v extends it
			// to u, scaled by gamma (Eq. 5), subject to truncation.
			if col := ua.byInfd[v]; col != nil {
				for w := range col {
					c := ua.byInf[w][v] * gamma
					if c >= lambda && c > 0 {
						add(w, u, c)
					}
				}
			}
		}
	}
	return ua, entries
}

// setCredit overwrites UC[v][u][a], deleting the entry when the value is
// not meaningfully positive.
func (e *Engine) setCredit(a actionlog.ActionID, v, u int32, value float64) {
	ua := &e.uc[a]
	row := ua.byInf[v]
	_, exists := row[u]
	if value > 1e-15 {
		if !exists {
			e.entries++
			col := ua.byInfd[u]
			if col == nil {
				col = make(map[int32]struct{})
				ua.byInfd[u] = col
			}
			col[v] = struct{}{}
		}
		row[u] = value
		return
	}
	if exists {
		delete(row, u)
		delete(ua.byInfd[u], v)
		e.entries--
	}
}

// Credit returns UC[v][u][a] = Gamma^{V-S}_{v,u}(a) under the current seed
// set. Exposed for tests and diagnostics.
func (e *Engine) Credit(a actionlog.ActionID, v, u graph.NodeID) float64 {
	if int(a) >= len(e.uc) {
		return 0
	}
	return e.uc[a].byInf[v][u]
}

// SeedCredit returns SC[x][a] = Gamma_{S,x}(a) for the current seed set.
func (e *Engine) SeedCredit(a actionlog.ActionID, x graph.NodeID) float64 {
	if e.sc[a] == nil {
		return 0
	}
	return e.sc[a][x]
}

// Entries returns the number of live UC entries, the memory statistic
// reported in Figure 8 and Table 4.
func (e *Engine) Entries() int64 { return e.entries }

// NumNodes returns the user-universe size, making Engine usable as a
// seedsel.Estimator.
func (e *Engine) NumNodes() int { return e.numUsers }

// Seeds returns the committed seed set in selection order.
func (e *Engine) Seeds() []graph.NodeID {
	out := make([]graph.NodeID, len(e.seeds))
	copy(out, e.seeds)
	return out
}

// Gain computes the marginal gain sigma_cd(S+x) - sigma_cd(S) of candidate
// x against the current seed set via Theorem 3 (Algorithm 4):
//
//	sum over actions a performed by x of
//	  (1 - Gamma_{S,x}(a)) * (1/A_x + sum_u UC[x][u][a]/A_u)
//
// where the 1/A_x term is x's self-credit Gamma^{V-S}_{x,x}(a) = 1.
func (e *Engine) Gain(x graph.NodeID) float64 {
	ax := float64(e.au[x])
	if ax == 0 {
		return 0
	}
	mg := 0.0
	for _, a := range e.actionsOf[x] {
		mga := 1.0 / ax
		if row := e.uc[a].byInf[x]; row != nil {
			for u, c := range row {
				mga += c / float64(e.au[u])
			}
		}
		scx := 0.0
		if e.sc[a] != nil {
			scx = e.sc[a][x]
		}
		mg += mga * (1 - scx)
	}
	return mg
}

// Add commits x to the seed set and updates UC and SC (Algorithm 5):
// Lemma 2 removes from every credit the share flowing through x, and
// Lemma 3 raises Gamma_{S,u}(a) for every u that x has credit over.
// Finally x's row and column are removed, matching the V-S superscript
// semantics of Theorem 3.
func (e *Engine) Add(x graph.NodeID) {
	for _, a := range e.actionsOf[x] {
		ua := &e.uc[a]
		row := ua.byInf[x]  // u -> Gamma^{V-S}_{x,u}(a)
		col := ua.byInfd[x] // set of v with Gamma^{V-S}_{v,x}(a) > 0
		scx := 0.0
		if e.sc[a] != nil {
			scx = e.sc[a][x]
		}
		for u, cxu := range row {
			// Lemma 2: credits of every v over u lose the paths through x.
			for v := range col {
				cvx := ua.byInf[v][x]
				old, ok := ua.byInf[v][u]
				if !ok {
					// Mathematically old >= cvx*cxu > 0, but truncation may
					// have dropped the entry; nothing to subtract from.
					continue
				}
				e.setCredit(a, v, u, old-cvx*cxu)
			}
			// Lemma 3: Gamma_{S+x,u}(a) = Gamma_{S,u}(a) + cxu*(1-scx).
			if e.sc[a] == nil {
				e.sc[a] = make(map[int32]float64)
			}
			e.sc[a][u] += cxu * (1 - scx)
		}
		// Remove x's row and column: x is no longer part of V-S.
		for u := range row {
			delete(ua.byInfd[u], x)
			e.entries--
		}
		delete(ua.byInf, x)
		for v := range col {
			vr := ua.byInf[v]
			if _, ok := vr[x]; ok {
				delete(vr, x)
				e.entries--
			}
		}
		delete(ua.byInfd, x)
	}
	e.seeds = append(e.seeds, x)
}

// ResidentBytes estimates the UC structure's steady-state memory: Go map
// storage costs roughly 48 bytes per entry across the mirrored indexes
// (key+value+bucket overhead, twice) plus per-row map headers.
func (e *Engine) ResidentBytes() int64 {
	var bytes int64
	for i := range e.uc {
		ua := &e.uc[i]
		bytes += int64(len(ua.byInf)+len(ua.byInfd)) * 48 // row headers
		for _, row := range ua.byInf {
			bytes += int64(len(row)) * 40 // int32 key + float64 value + overhead
		}
		for _, col := range ua.byInfd {
			bytes += int64(len(col)) * 24 // int32 key + overhead
		}
	}
	return bytes
}
