package core

import (
	"fmt"
	"maps"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

// Engine is the incremental marginal-gain machinery behind the CD-model
// greedy algorithm. Construction performs the one-time Scan of the action
// log (Algorithm 2), building for every action the total-credit structure
// UC where UC[v][u][a] = Gamma^{V-S}_{v,u}(a); thereafter Gain evaluates
// Theorem 3 in time linear in the touched credit entries (Algorithm 4) and
// Add maintains UC and SC incrementally via Lemmas 2 and 3 (Algorithm 5).
//
// UC is stored as sorted sparse rows (sparse.go), so every walk — scan,
// gain, seed update — visits entries in a fixed (influencer, influenced)
// order and the floating-point results are bit-for-bit identical across
// runs, reloads, and worker counts.
//
// Shards split into a frozen base and a mutable delta. Because credits
// never cross actions, an engine can grow by scanning only new actions
// (AppendActions) while the already-scanned shards stay untouched, and
// sibling engines (Clone) share frozen shards instead of copying them:
// Add copies a shard on first write (copy-on-write), so the shared base is
// never mutated. Compact folds the delta into the base, re-freezing the
// engine so future clones are cheap again.
type Engine struct {
	numUsers int
	// au and actionsOf are mutated in place only while ownsUsers is true
	// (the engine holds the sole reference); once shared by Clone or
	// frozen by Compact, AppendActions/IngestAction replace them wholesale
	// instead, so siblings keep a consistent view.
	ownsUsers bool
	au        []int32   // Au: actions performed per user (training log)
	actionsOf [][]int32 // per user: training actions they performed

	// uc[a] points at action a's shard through the rowStore interface
	// (rowstore.go): a heap ucAction, or a read-only window into a mapped
	// version-3 snapshot. owned[a] reports whether this engine may mutate
	// the shard in place — owned shards are always heap; unowned shards
	// are shared with sibling engines (or the mapping) and are promoted to
	// a private heap copy by mutShard before the first write. Delta shards
	// (indices >= baseActions) are always heap: they come only from this
	// process's own scans.
	uc    []rowStore
	owned []bool

	sc      []map[int32]float64 // per action: Gamma_{S,x}(a) for current seeds
	seeds   []graph.NodeID
	entries int64 // live UC entry count, for memory accounting
	lambda  float64
	credit  CreditModel // the direct-credit rule the shards were scanned with
	workers int         // raw Options.Workers, reused by AppendActions

	baseActions  int   // shards [0, baseActions) form the frozen base
	deltaEntries int64 // entries the delta shards contributed when scanned

	// A partition engine (partition.go) holds only the UC rows of
	// influencers in [partLo, partHi) while carrying the full global
	// per-user state; partitioned stays false on full engines, whose row
	// range is implicitly [0, numUsers).
	partitioned    bool
	partLo, partHi int
}

// Options configures engine construction.
type Options struct {
	// Lambda is the truncation threshold of Section 5.3: path credits
	// below it are discarded during the scan, bounding memory. The paper's
	// default is 0.001. Zero means no truncation.
	Lambda float64
	// Credit selects the direct-credit rule; nil means SimpleCredit.
	Credit CreditModel
	// Workers parallelizes the action-log scan. Credits are per-action, so
	// actions shard cleanly across goroutines; because every shard is a
	// sorted sparse structure, results are bit-for-bit identical
	// regardless of worker count. Default GOMAXPROCS; 1 forces the serial
	// scan of Algorithm 2.
	Workers int
}

// NewEngine scans the training log and returns a ready engine. The fresh
// engine owns every shard, so seed selection mutates in place with no
// copy-on-write cost; call Compact to freeze it for cheap cloning.
func NewEngine(g *graph.Graph, train *actionlog.Log, opts Options) *Engine {
	model := opts.Credit
	if model == nil {
		model = SimpleCredit{}
	}
	numActions := train.NumActions()
	e := &Engine{
		numUsers:    train.NumUsers(),
		ownsUsers:   true,
		au:          make([]int32, train.NumUsers()),
		actionsOf:   make([][]int32, train.NumUsers()),
		sc:          make([]map[int32]float64, numActions),
		lambda:      opts.Lambda,
		credit:      model,
		workers:     opts.Workers,
		baseActions: numActions,
	}
	for u := 0; u < train.NumUsers(); u++ {
		e.au[u] = int32(train.ActionCount(graph.NodeID(u)))
	}
	shards, props, entries := scanShards(g, train, 0, numActions, model, e.lambda, e.workers)
	e.uc = make([]rowStore, numActions)
	for a, shard := range shards {
		e.uc[a] = shard
	}
	e.entries = entries
	e.owned = make([]bool, numActions)
	for a := range e.owned {
		e.owned[a] = true
	}
	// actionsOf is rebuilt serially in action order so its contents do not
	// depend on worker scheduling.
	for a := 0; a < numActions; a++ {
		for _, u := range props[a].Users {
			e.actionsOf[u] = append(e.actionsOf[u], actionlog.ActionID(a))
		}
	}
	return e
}

// scanShards builds the UC shards (and propagation DAGs) of actions
// [from, to) of the log, fanned over a worker pool. Shards are written by
// index, so the result is independent of scheduling.
func scanShards(g *graph.Graph, log *actionlog.Log, from, to int, model CreditModel, lambda float64, workers int) ([]*ucAction, []*actionlog.Propagation, int64) {
	n := to - from
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	shards := make([]*ucAction, n)
	props := make([]*actionlog.Propagation, n)
	perWorker := make([]int64, workers)
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				a := actionlog.ActionID(from + int(i))
				p := actionlog.BuildPropagation(log, g, a)
				props[i] = p
				shard, tally := scanAction(p, model, lambda, perWorker[w])
				shards[i] = &shard
				perWorker[w] = tally
			}
		}(w)
	}
	wg.Wait()
	var entries int64
	for _, n := range perWorker {
		entries += n
	}
	return shards, props, entries
}

// scanAction processes one propagation chronologically (the per-action
// body of Algorithm 2), accumulating direct and transitive credits into a
// fresh UC shard. It returns the shard and the updated entry tally. All
// loops walk slices in sorted order, so the accumulated floats do not
// depend on scheduling or hashing.
func scanAction(p *actionlog.Propagation, model CreditModel, lambda float64, entries int64) (ucAction, int64) {
	ua := ucAction{}
	add := func(v, u int32, delta float64) {
		cr, created := ua.cell(v, u)
		if created {
			entries++
		}
		*cr += delta
	}
	for i, u := range p.Users {
		for _, j := range p.Parents[i] {
			v := p.Users[j]
			gamma := model.Gamma(p, int32(i), j)
			if gamma < lambda || gamma <= 0 {
				continue
			}
			add(v, u, gamma)
			// Transitive credit: everyone with credit over v extends it
			// to u, scaled by gamma (Eq. 5), subject to truncation. The
			// adds below only touch u's column, so the snapshot of v's
			// column stays valid.
			for _, w := range ua.col(v) {
				c, _ := ua.get(w, v)
				c *= gamma
				if c >= lambda && c > 0 {
					add(w, u, c)
				}
			}
		}
	}
	return ua, entries
}

// AppendActions extends the engine with the tail of a combined log without
// re-scanning the prefix: log must contain the engine's already-scanned
// actions as [0, from) and from must equal NumActions(). The tail
// [from, log.NumActions()) is scanned in parallel into delta shards, au
// and actionsOf are extended (copied first when shared with clones, via
// mutUsers), and users the engine has not seen — the log universe may
// have grown — are registered, provided the graph covers them. Gain,
// Spread via SC, and CELF selections on the result are bit-for-bit
// identical to a from-scratch NewEngine over the combined log with the
// same credit rule, because every carried-over structure is per-action
// and Au only grows.
//
// Appending is only legal before the first Add: committed seeds turn UC
// into the V-S restriction, which raw per-action credits would corrupt.
func (e *Engine) AppendActions(g *graph.Graph, log *actionlog.Log, from actionlog.ActionID) error {
	if len(e.seeds) > 0 {
		return ErrSeedsCommitted
	}
	if int(from) != len(e.uc) {
		return fmt.Errorf("core: append from action %d, but engine has scanned %d", from, len(e.uc))
	}
	if log.NumActions() < int(from) {
		return fmt.Errorf("core: combined log has %d actions, fewer than the %d already scanned", log.NumActions(), from)
	}
	if log.NumUsers() > g.NumNodes() {
		return fmt.Errorf("core: log universe (%d users) exceeds the graph (%d nodes)", log.NumUsers(), g.NumNodes())
	}
	if log.NumUsers() < e.numUsers {
		return fmt.Errorf("core: log universe shrank: %d users, engine has %d", log.NumUsers(), e.numUsers)
	}
	to := log.NumActions()
	shards, props, entries := scanShards(g, log, int(from), to, e.credit, e.lambda, e.workers)

	// The per-user walk is serial and in action order, so actionsOf ends
	// up exactly as NewEngine over the combined log would build it.
	oldNumUsers := e.numUsers
	e.mutUsers(log.NumUsers())
	// A partition whose range ends at the universe end keeps ending there:
	// rows of users the appended tail registered belong to the trailing
	// partition, preserving full coverage without cross-partition
	// coordination.
	if e.partitioned && e.partHi == oldNumUsers {
		e.partHi = e.numUsers
	}

	// Ingest routing: a partition keeps only the scanned rows it owns —
	// under the range as just extended, so new users' rows are kept by the
	// trailing partition rather than dropped. The filtered shards sum to
	// exactly the full scan across a contiguous partition set, and the
	// global per-user walk below is identical on every partition, so
	// per-partition appends stay bit-equivalent to slicing a freshly
	// appended full engine.
	if e.partitioned {
		entries = 0
		for i, shard := range shards {
			sub, n := e.filterShardToPartition(shard)
			shards[i] = sub
			entries += n
		}
	}
	for i, p := range props {
		a := from + actionlog.ActionID(i)
		for _, u := range p.Users {
			e.au[u]++
			e.actionsOf[u] = append(e.actionsOf[u], a)
		}
	}

	uc := make([]rowStore, to)
	copy(uc, e.uc)
	for i, shard := range shards {
		uc[int(from)+i] = shard
	}
	owned := make([]bool, to)
	copy(owned, e.owned)
	for a := int(from); a < to; a++ {
		owned[a] = true
	}
	sc := make([]map[int32]float64, to)
	copy(sc, e.sc)

	e.uc = uc
	e.owned = owned
	e.sc = sc
	e.entries += entries
	e.deltaEntries += entries
	return nil
}

// mutUsers makes the per-user state (au, actionsOf) privately mutable and
// at least newNumUsers long. While the engine owns it — fresh from
// NewEngine, or after a previous call — mutation happens in place, so a
// trickle of IngestAction calls costs only the touched users; once shared
// by Clone or frozen by Compact, the next mutation pays one full copy.
func (e *Engine) mutUsers(newNumUsers int) {
	if newNumUsers < e.numUsers {
		newNumUsers = e.numUsers
	}
	if !e.ownsUsers {
		au := make([]int32, newNumUsers)
		copy(au, e.au)
		actionsOf := make([][]int32, newNumUsers)
		for u, row := range e.actionsOf {
			actionsOf[u] = slices.Clone(row)
		}
		e.au, e.actionsOf = au, actionsOf
		e.ownsUsers = true
	} else if newNumUsers > e.numUsers {
		au := make([]int32, newNumUsers)
		copy(au, e.au)
		actionsOf := make([][]int32, newNumUsers)
		copy(actionsOf, e.actionsOf) // inner rows are already private
		e.au, e.actionsOf = au, actionsOf
	}
	e.numUsers = newNumUsers
}

// Compact folds the delta into the base and freezes the engine: every
// shard this engine owns is re-allocated at exact size (shedding the
// growth slack the incremental scan left) and released to shared status,
// so subsequent Clones copy nothing and Add falls back to copy-on-write.
// The delta counters reset; results are unchanged. Compact must not run
// concurrently with readers of the same engine.
func (e *Engine) Compact() {
	// Owned shards anywhere, plus every delta shard: a delta frozen by an
	// earlier Freeze is no longer owned but still carries its scan-time
	// growth slack, and folding it into the base is the moment to shed it.
	// Mapped shards are left as they are: never owned, always inside the
	// old base, they stay shared windows into the snapshot file.
	for a := range e.uc {
		if e.owned[a] || a >= e.baseActions {
			e.uc[a] = e.uc[a].promote()
			e.owned[a] = false
		}
	}
	e.baseActions = len(e.uc)
	e.deltaEntries = 0
	// Freeze the per-user state too: future clones share it, and the next
	// ingest copies it back out.
	e.ownsUsers = false
}

// Clone returns an independent engine: committing seeds to the clone never
// disturbs the original, and a sequence of Gain/Add calls on the clone
// produces bit-for-bit the floats the original would have produced. Frozen
// (unowned) shards and the read-only per-user state are shared, so cloning
// a compacted engine costs an outer-slice copy — microseconds — while
// shards the receiver still owns (its delta, or shards it already mutated)
// are deep-copied. This is what lets a serving layer keep one scanned
// engine per model snapshot and hand mutable copies to concurrent
// seed-selection requests.
func (e *Engine) Clone() *Engine {
	c := &Engine{
		numUsers:     e.numUsers,
		uc:           slices.Clone(e.uc),
		owned:        slices.Clone(e.owned),
		sc:           make([]map[int32]float64, len(e.sc)),
		seeds:        slices.Clone(e.seeds),
		entries:      e.entries,
		lambda:       e.lambda,
		credit:       e.credit,
		workers:      e.workers,
		baseActions:  e.baseActions,
		deltaEntries: e.deltaEntries,
		partitioned:  e.partitioned,
		partLo:       e.partLo,
		partHi:       e.partHi,
	}
	// Shards the receiver owns may be mutated by its future Adds or
	// compacted away, so the clone takes private copies; shared shards are
	// frozen and stay shared.
	for a, own := range c.owned {
		if own {
			c.uc[a] = c.uc[a].promote()
		}
	}
	// Same for the per-user state: an owning receiver mutates it in place
	// on ingest, so the clone copies; a frozen one is shared.
	if e.ownsUsers {
		c.ownsUsers = true
		c.au = slices.Clone(e.au)
		c.actionsOf = make([][]int32, len(e.actionsOf))
		for u, row := range e.actionsOf {
			c.actionsOf[u] = slices.Clone(row)
		}
	} else {
		c.au = e.au
		c.actionsOf = e.actionsOf
	}
	for i, m := range e.sc {
		if m != nil {
			c.sc[i] = maps.Clone(m)
		}
	}
	return c
}

// mutShard returns action a's shard ready for in-place mutation, promoting
// it to a private heap copy first when it is shared with sibling engines
// (copy-on-write) or backed by a mapped snapshot (promote-on-first-write;
// the mapping itself is never touched). Owned shards are heap by
// construction, so the assertion below cannot fail.
func (e *Engine) mutShard(a int32) *ucAction {
	if !e.owned[a] {
		e.uc[a] = e.uc[a].promote()
		e.owned[a] = true
	}
	return e.uc[a].(*ucAction)
}

// Credit returns UC[v][u][a] = Gamma^{V-S}_{v,u}(a) under the current seed
// set. Exposed for tests and diagnostics.
func (e *Engine) Credit(a actionlog.ActionID, v, u graph.NodeID) float64 {
	if int(a) >= len(e.uc) {
		return 0
	}
	c, _ := e.uc[a].get(v, u)
	return c
}

// SeedCredit returns SC[x][a] = Gamma_{S,x}(a) for the current seed set.
func (e *Engine) SeedCredit(a actionlog.ActionID, x graph.NodeID) float64 {
	if e.sc[a] == nil {
		return 0
	}
	return e.sc[a][x]
}

// Entries returns the number of live UC entries, the memory statistic
// reported in Figure 8 and Table 4.
func (e *Engine) Entries() int64 { return e.entries }

// CreditModel returns the direct-credit rule the shards were scanned with.
func (e *Engine) CreditModel() CreditModel { return e.credit }

// Lambda returns the truncation threshold the shards were scanned with.
func (e *Engine) Lambda() float64 { return e.lambda }

// Freeze releases every shard and the per-user state to shared status
// without copying anything or folding the delta (unlike Compact, the
// delta counters and the shards' capacity slack are kept). Clones of a
// frozen engine share everything, and any later mutation — an Add on a
// clone, a fresh ingest — pays copy-on-write. Serving snapshots freeze
// their base planner before publishing it, so per-request clones stay
// cheap between compactions. Must not run concurrently with other calls
// on the same engine.
func (e *Engine) Freeze() {
	for a := range e.owned {
		e.owned[a] = false
	}
	e.ownsUsers = false
}

// DeltaEntries returns the UC entries contributed by actions appended
// since construction or the last Compact — the delta's size, as scanned.
func (e *Engine) DeltaEntries() int64 { return e.deltaEntries }

// DeltaActions returns how many appended actions sit outside the frozen
// base (zero after NewEngine or Compact).
func (e *Engine) DeltaActions() int { return len(e.uc) - e.baseActions }

// NumNodes returns the user-universe size, making Engine usable as a
// seedsel.Estimator.
func (e *Engine) NumNodes() int { return e.numUsers }

// Workers returns the raw Options.Workers the engine was built with
// (0 means GOMAXPROCS). Seed selection reuses it so the CELF gain fan-out
// follows the same knob as the scan.
func (e *Engine) Workers() int { return e.workers }

// ConcurrentGain marks Gain as safe for concurrent calls between Adds
// (it reads only state that Add-free execution leaves untouched), which
// is what lets the shared celf engine fan the first-iteration and
// stale-refresh gain evaluations over workers. It is a compile-time
// marker for celf.ConcurrentEstimator and is never called.
func (e *Engine) ConcurrentGain() {}

// Seeds returns the committed seed set in selection order.
func (e *Engine) Seeds() []graph.NodeID {
	out := make([]graph.NodeID, len(e.seeds))
	copy(out, e.seeds)
	return out
}

// Gain computes the marginal gain sigma_cd(S+x) - sigma_cd(S) of candidate
// x against the current seed set via Theorem 3 (Algorithm 4):
//
//	sum over actions a performed by x of
//	  (1 - Gamma_{S,x}(a)) * (1/A_x + sum_u UC[x][u][a]/A_u)
//
// where the 1/A_x term is x's self-credit Gamma^{V-S}_{x,x}(a) = 1. The
// row walk is in ascending influenced-id order, so the returned float is
// identical across engine instances built from the same inputs.
//
// A committed seed gains exactly 0: sigma_cd(S+x) = sigma_cd(S) when x is
// already in S. The walk below cannot derive that (Add removed x's row, and
// SC keeps no diagonal entry), so it is checked up front — CELF never asks,
// but the batched-gain API accepts arbitrary candidates.
func (e *Engine) Gain(x graph.NodeID) float64 {
	if !e.ownsRow(x) {
		// A partition can only price candidates whose row it holds;
		// answering from a missing row would silently drop the UC sum.
		// Routing is the coordinator's job, so a miss here is a bug.
		panic(fmt.Sprintf("core: Gain(%d) outside partition rows [%d,%d)", x, e.partLo, e.partHi))
	}
	ax := float64(e.au[x])
	if ax == 0 {
		return 0
	}
	if slices.Contains(e.seeds, x) {
		return 0
	}
	mg := 0.0
	for _, a := range e.actionsOf[x] {
		mga := 1.0 / ax
		for _, en := range e.uc[a].row(x) {
			mga += en.c / float64(e.au[en.u])
		}
		scx := 0.0
		if e.sc[a] != nil {
			scx = e.sc[a][x]
		}
		mg += mga * (1 - scx)
	}
	return mg
}

// Add commits x to the seed set and updates UC and SC (Algorithm 5):
// Lemma 2 removes from every credit the share flowing through x, and
// Lemma 3 raises Gamma_{S,u}(a) for every u that x has credit over.
// Finally x's row and column are removed, matching the V-S superscript
// semantics of Theorem 3. Both walks follow sorted id order. Shards
// shared with sibling engines are copied before the first write, so Add
// never disturbs a clone or the frozen base of a serving snapshot.
//
// Add is exactly CommitSeedRow driven by the engine's own row
// (partition.go), which is what makes a scatter-gather commit across
// row-range partitions bit-identical to the single-engine commit.
func (e *Engine) Add(x graph.NodeID) {
	e.CommitSeedRow(x, e.ExtractSeedRow(x))
}

// ResidentBytes reports the UC structure's total footprint across both
// backends: HeapBytes plus MappedBytes. Shards shared with sibling engines
// are counted in full for every engine referencing them. On the
// flixster-small preset the heap representation measures 34.4 bytes per
// live entry (32.0 MiB total), versus 71.5 bytes per entry (66.4 MiB) for
// the mirrored map-of-maps representation it replaced.
func (e *Engine) ResidentBytes() int64 {
	return e.HeapBytes() + e.MappedBytes()
}

// HeapBytes reports the Go-heap slice footprint of the UC structure
// (16 bytes per row entry plus the column mirror and slice headers; see
// ucAction.residentBytes). Shards served from a mapped snapshot contribute
// nothing here — their pages are file-backed, not heap.
func (e *Engine) HeapBytes() int64 {
	var bytes int64
	for _, st := range e.uc {
		bytes += st.heapBytes()
	}
	return bytes
}

// MappedBytes reports the file-backed footprint of the UC structure: the
// bytes of the mapped snapshot's base section this engine's shards still
// alias (shards promoted to heap by a write no longer count). The OS pages
// these in and out on demand, so this is an upper bound on their resident
// cost.
func (e *Engine) MappedBytes() int64 {
	var bytes int64
	for _, st := range e.uc {
		bytes += st.mappedBytes()
	}
	return bytes
}

// RowStoreBackend reports how the engine's shards are served: "mmap" when
// any shard still aliases a mapped snapshot, "heap" otherwise.
func (e *Engine) RowStoreBackend() string {
	for _, st := range e.uc {
		if name := st.backendName(); name != "heap" {
			return name
		}
	}
	return "heap"
}
