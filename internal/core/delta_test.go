package core

import (
	"math/rand/v2"
	"runtime"
	"testing"

	"credist/internal/actionlog"
	"credist/internal/graph"
	"credist/internal/seedsel"
)

// TestAppendActionsBitIdenticalToRescan is the streaming engine's core
// guarantee: scanning a prefix and appending the held-out ~5% tail yields
// an engine whose gains, CELF seed sequence (with gains), spreads, and
// entry counts are bit-for-bit those of a from-scratch NewEngine over the
// combined log with the same frozen credit rule.
func TestAppendActionsBitIdenticalToRescan(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 7))
	for trial := 0; trial < 5; trial++ {
		g, log := randomInstance(rng, 50+rng.IntN(20), 40+rng.IntN(10))
		credit := LearnTimeAware(g, log)
		opts := Options{Lambda: 0.001, Credit: credit}
		headN := log.NumActions() - (log.NumActions()+19)/20 // hold out ~5%
		head := log.Prefix(headN)

		full := NewEngine(g, log, opts)
		inc := NewEngine(g, head, opts)
		if err := inc.AppendActions(g, log, actionlog.ActionID(headN)); err != nil {
			t.Fatalf("trial %d: AppendActions: %v", trial, err)
		}

		if full.Entries() != inc.Entries() {
			t.Fatalf("trial %d: entries %d vs %d", trial, full.Entries(), inc.Entries())
		}
		if inc.NumActions() != log.NumActions() {
			t.Fatalf("trial %d: NumActions %d, want %d", trial, inc.NumActions(), log.NumActions())
		}
		if inc.DeltaActions() != log.NumActions()-headN {
			t.Fatalf("trial %d: DeltaActions %d, want %d", trial, inc.DeltaActions(), log.NumActions()-headN)
		}
		for u := 0; u < g.NumNodes(); u++ {
			gf, gi := full.Gain(graph.NodeID(u)), inc.Gain(graph.NodeID(u))
			if gf != gi {
				t.Fatalf("trial %d: Gain(%d) not bit-identical: %b vs %b", trial, u, gf, gi)
			}
		}

		rf := seedsel.CELF(full, 8)
		ri := seedsel.CELF(inc, 8)
		if len(rf.Seeds) != len(ri.Seeds) {
			t.Fatalf("trial %d: CELF lengths %d vs %d", trial, len(rf.Seeds), len(ri.Seeds))
		}
		for i := range rf.Seeds {
			if rf.Seeds[i] != ri.Seeds[i] || rf.Gains[i] != ri.Gains[i] {
				t.Fatalf("trial %d: CELF diverged at %d: (%d, %b) vs (%d, %b)",
					trial, i, rf.Seeds[i], rf.Gains[i], ri.Seeds[i], ri.Gains[i])
			}
		}

		// The extended evaluator agrees with a from-scratch one, bit for bit.
		evHead := NewEvaluator(g, head, credit)
		evInc, err := evHead.Extend(g, log, actionlog.ActionID(headN))
		if err != nil {
			t.Fatalf("trial %d: Extend: %v", trial, err)
		}
		evFull := NewEvaluator(g, log, credit)
		if a, b := evFull.Spread(rf.Seeds), evInc.Spread(rf.Seeds); a != b {
			t.Fatalf("trial %d: Spread not bit-identical: %b vs %b", trial, a, b)
		}
	}
}

// TestAppendActionsParallelDeterministic: the tail scan shards per action,
// so serial and fully parallel appends agree exactly.
func TestAppendActionsParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(72, 8))
	g, log := randomInstance(rng, 60, 40)
	credit := LearnTimeAware(g, log)
	headN := 30
	head := log.Prefix(headN)
	serial := NewEngine(g, head, Options{Lambda: 0.001, Credit: credit, Workers: 1})
	parallel := NewEngine(g, head, Options{Lambda: 0.001, Credit: credit, Workers: runtime.GOMAXPROCS(0)})
	if err := serial.AppendActions(g, log, actionlog.ActionID(headN)); err != nil {
		t.Fatal(err)
	}
	if err := parallel.AppendActions(g, log, actionlog.ActionID(headN)); err != nil {
		t.Fatal(err)
	}
	if serial.Entries() != parallel.Entries() {
		t.Fatalf("entries %d vs %d", serial.Entries(), parallel.Entries())
	}
	for u := 0; u < g.NumNodes(); u++ {
		if gs, gp := serial.Gain(graph.NodeID(u)), parallel.Gain(graph.NodeID(u)); gs != gp {
			t.Fatalf("Gain(%d): %b vs %b", u, gs, gp)
		}
	}
}

// TestAppendActionsLeavesBaseFrozen: deriving a successor engine from a
// compacted base (Clone + AppendActions) must leave the base — which may
// be serving queries concurrently — untouched, while the successor and
// seed selections on clones of either stay isolated and exact.
func TestAppendActionsLeavesBaseFrozen(t *testing.T) {
	rng := rand.New(rand.NewPCG(73, 9))
	g, log := randomInstance(rng, 50, 30)
	credit := LearnTimeAware(g, log)
	opts := Options{Lambda: 0.001, Credit: credit}
	headN := 24
	head := log.Prefix(headN)

	base := NewEngine(g, head, opts)
	base.Compact()
	baseline := make([]float64, g.NumNodes())
	for u := range baseline {
		baseline[u] = base.Gain(graph.NodeID(u))
	}
	baseEntries := base.Entries()

	succ := base.Clone()
	if err := succ.AppendActions(g, log, actionlog.ActionID(headN)); err != nil {
		t.Fatal(err)
	}
	// Selection on a clone of the successor exercises copy-on-write over
	// both shared base shards and the successor's own delta shards.
	sel := seedsel.CELF(succ.Clone(), 6)
	ref := seedsel.CELF(NewEngine(g, log, opts), 6)
	for i := range ref.Seeds {
		if sel.Seeds[i] != ref.Seeds[i] || sel.Gains[i] != ref.Gains[i] {
			t.Fatalf("successor CELF diverged at %d: (%d, %b) vs (%d, %b)",
				i, sel.Seeds[i], sel.Gains[i], ref.Seeds[i], ref.Gains[i])
		}
	}

	// The base is bit-exactly as it was.
	if base.Entries() != baseEntries {
		t.Fatalf("base entries changed: %d -> %d", baseEntries, base.Entries())
	}
	if base.NumActions() != headN {
		t.Fatalf("base action count changed: %d", base.NumActions())
	}
	for u := range baseline {
		if got := base.Gain(graph.NodeID(u)); got != baseline[u] {
			t.Fatalf("base Gain(%d) changed: %b -> %b", u, baseline[u], got)
		}
	}
}

// TestCompactFoldsDelta: Compact resets the delta counters, never changes
// a result bit, and leaves the engine cheaply cloneable.
func TestCompactFoldsDelta(t *testing.T) {
	rng := rand.New(rand.NewPCG(74, 1))
	g, log := randomInstance(rng, 40, 24)
	credit := LearnTimeAware(g, log)
	opts := Options{Lambda: 0.001, Credit: credit}
	headN := 20
	head := log.Prefix(headN)
	e := NewEngine(g, head, opts)
	e.Compact()
	if err := e.AppendActions(g, log, actionlog.ActionID(headN)); err != nil {
		t.Fatal(err)
	}
	if e.DeltaActions() != log.NumActions()-headN || e.DeltaEntries() <= 0 {
		t.Fatalf("delta = %d actions / %d entries before compact", e.DeltaActions(), e.DeltaEntries())
	}
	before := make([]float64, g.NumNodes())
	for u := range before {
		before[u] = e.Gain(graph.NodeID(u))
	}
	resident := e.ResidentBytes()
	e.Compact()
	if e.DeltaActions() != 0 || e.DeltaEntries() != 0 {
		t.Fatalf("delta = %d actions / %d entries after compact", e.DeltaActions(), e.DeltaEntries())
	}
	if e.Entries() == 0 || e.ResidentBytes() > resident {
		t.Fatalf("compact grew residency: %d -> %d", resident, e.ResidentBytes())
	}
	for u := range before {
		if got := e.Gain(graph.NodeID(u)); got != before[u] {
			t.Fatalf("Gain(%d) changed across Compact: %b -> %b", u, before[u], got)
		}
	}
	// A post-compact clone shares every shard yet selects identically.
	a := seedsel.CELF(e.Clone(), 5)
	b := seedsel.CELF(NewEngine(g, log, opts), 5)
	for i := range b.Seeds {
		if a.Seeds[i] != b.Seeds[i] || a.Gains[i] != b.Gains[i] {
			t.Fatalf("post-compact clone CELF diverged at %d", i)
		}
	}
}

// TestAppendActionsRegistersUnseenUsers: a tail may introduce users the
// prefix never saw (the log universe grows); the engine registers them as
// long as the graph covers them, and matches a full rescan.
func TestAppendActionsRegistersUnseenUsers(t *testing.T) {
	b := graph.NewBuilder(6)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}} {
		_ = b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	lb := actionlog.NewBuilder(4) // users 4 and 5 unseen in the head
	_ = lb.Add(0, 0, 1)
	_ = lb.Add(1, 0, 2)
	_ = lb.Add(2, 1, 1)
	_ = lb.Add(3, 1, 2)
	head := lb.Build()
	combined, err := head.Append([]actionlog.Tuple{
		{User: 4, Action: 2, Time: 1}, {User: 5, Action: 2, Time: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	inc := NewEngine(g, head, Options{})
	if err := inc.AppendActions(g, combined, 2); err != nil {
		t.Fatalf("AppendActions: %v", err)
	}
	if inc.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d, want 6", inc.NumNodes())
	}
	full := NewEngine(g, combined, Options{})
	for u := 0; u < 6; u++ {
		if gf, gi := full.Gain(graph.NodeID(u)), inc.Gain(graph.NodeID(u)); gf != gi {
			t.Fatalf("Gain(%d): %b vs %b", u, gf, gi)
		}
	}
	if inc.ActionCount(4) != 1 || inc.ActionCount(5) != 1 {
		t.Fatalf("A_4=%d A_5=%d, want 1/1", inc.ActionCount(4), inc.ActionCount(5))
	}
}

// TestAppendActionsErrors pins the guard rails.
func TestAppendActionsErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(75, 2))
	g, log := randomInstance(rng, 20, 10)
	head := log.Prefix(8)

	e := NewEngine(g, head, Options{})
	if err := e.AppendActions(g, log, 5); err == nil {
		t.Error("from mismatch accepted")
	}
	if err := e.AppendActions(g, head, 8); err != nil {
		t.Errorf("no-op append rejected: %v", err)
	}

	e2 := NewEngine(g, head, Options{})
	e2.Add(0)
	if err := e2.AppendActions(g, log, 8); err != ErrSeedsCommitted {
		t.Errorf("append after Add = %v, want ErrSeedsCommitted", err)
	}

	// A universe beyond the graph is rejected.
	grown, err := head.Append([]actionlog.Tuple{{User: graph.NodeID(g.NumNodes()), Action: 8, Time: 1}})
	if err != nil {
		t.Fatal(err)
	}
	e3 := NewEngine(g, head, Options{})
	if err := e3.AppendActions(g, grown, 8); err == nil {
		t.Error("universe beyond graph accepted")
	}

	ev := NewEvaluator(g, head, nil)
	if _, err := ev.Extend(g, log, 5); err == nil {
		t.Error("evaluator from mismatch accepted")
	}
	if _, err := ev.Extend(g, grown, 8); err == nil {
		t.Error("evaluator universe beyond graph accepted")
	}
}
