package core

// This file defines the pluggable row-store boundary behind the engine's
// frozen base: the read path (Gain, Credit, snapshot serialization) sees
// every shard through the small rowStore interface, so a shard can live
// either as heap ucAction slices or as a window into a memory-mapped
// version-3 snapshot (mapped.go) without the query algorithms knowing.
// Delta shards — anything the engine scans or ingests itself — are always
// heap ucAction values; a mapped shard is promoted to heap by mutShard on
// its first write, exactly like copy-on-write promotes a shared heap
// shard.

// rowStore is the read surface of one action's UC shard. Rows are sorted
// sparse (sparse.go): rowKeyAt(i) ascends with i, and every row's entries
// ascend by influenced id, which keeps float summation order — and
// therefore every Gain/Spread/CELF bit — independent of the backend.
//
// Implementations: *ucAction (heap, mutable through its own methods) and
// *mappedShard (read-only window into a mapped snapshot). The column
// mirror is intentionally not part of the interface: only mutation paths
// walk columns, and those run on heap shards obtained through promote.
type rowStore interface {
	// numRows returns how many influencers have a credit row.
	numRows() int
	// rowKeyAt returns the i-th influencer id, ascending in i.
	rowKeyAt(ri int) int32
	// rowAt returns the i-th row's cells, sorted by influenced id. The
	// returned slice is a read-only view into the backend.
	rowAt(ri int) []ucEntry
	// row returns v's credit cells, or nil when v has no row.
	row(v int32) []ucEntry
	// get returns the credit of cell (v,u) and whether it exists.
	get(v, u int32) (float64, bool)
	// entryCount returns the shard's live cell count.
	entryCount() int64
	// heapBytes and mappedBytes split the shard's resident footprint by
	// where the bytes live: Go-heap slices versus file-backed mapped
	// pages. Exactly one of them is non-zero for a non-empty shard.
	heapBytes() int64
	mappedBytes() int64
	// promote returns a private, fully mutable heap copy of the shard
	// (column mirror included). The engine calls it on the first write to
	// a shard it does not own — a shared heap shard or a mapped one.
	promote() *ucAction
	// backendName identifies the backend ("heap" or "mmap") for stats.
	backendName() string
}

// --- ucAction as a rowStore -------------------------------------------------

func (ua *ucAction) numRows() int           { return len(ua.rowKey) }
func (ua *ucAction) rowKeyAt(ri int) int32  { return ua.rowKey[ri] }
func (ua *ucAction) rowAt(ri int) []ucEntry { return ua.rows[ri] }

func (ua *ucAction) entryCount() int64 {
	var n int64
	for _, row := range ua.rows {
		n += int64(len(row))
	}
	return n
}

func (ua *ucAction) heapBytes() int64   { return ua.residentBytes() }
func (ua *ucAction) mappedBytes() int64 { return 0 }

// promote on a heap shard is plain copy-on-write: an exact deep copy.
func (ua *ucAction) promote() *ucAction { return cloneShard(ua) }

func (ua *ucAction) backendName() string { return "heap" }
