package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"credist/internal/graph"
)

// randomObjective draws a non-default objective over the instance: graded
// audience weights (some zero) and, half the time, a time window.
func randomObjective(rng *rand.Rand, log interface{ NumUsers() int }, delays *ActionDelays) *Objective {
	n := log.NumUsers()
	weights := make([]float64, n)
	for u := range weights {
		switch rng.IntN(3) {
		case 0:
			weights[u] = 0
		case 1:
			weights[u] = 1
		default:
			weights[u] = rng.Float64() * 2
		}
	}
	obj := &Objective{Weights: weights}
	if rng.IntN(2) == 0 {
		obj.Windowed = true
		obj.Tau = float64(rng.IntN(6)) // delays are drawn from {0..7}
		obj.Delays = delays
	}
	return obj
}

// TestGainObjMatchesSpreadObjDelta is the objective layer's core property:
// the engine's objective marginal gain equals the evaluator's objective
// spread delta, for weighted, windowed, and combined objectives — the
// same cross-check Gain has against Spread.
func TestGainObjMatchesSpreadObjDelta(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 14))
	for trial := 0; trial < 25; trial++ {
		g, log := randomInstance(rng, 12+rng.IntN(10), 4+rng.IntN(6))
		delays := BuildActionDelays(log)
		obj := randomObjective(rng, log, delays)
		if err := obj.Validate(log.NumUsers()); err != nil {
			t.Fatalf("trial %d: objective invalid: %v", trial, err)
		}
		e := NewEngine(g, log, Options{})
		ev := NewEvaluator(g, log, nil)
		var seeds []graph.NodeID
		for round := 0; round < 4; round++ {
			for cand := 0; cand < g.NumNodes(); cand++ {
				c := graph.NodeID(cand)
				if contains(seeds, c) {
					continue
				}
				want := ev.SpreadObj(append(append([]graph.NodeID(nil), seeds...), c), obj) - ev.SpreadObj(seeds, obj)
				got := e.GainObj(c, obj)
				if math.Abs(got-want) > 1e-6 {
					t.Fatalf("trial %d seeds=%v GainObj(%d)=%g want %g", trial, seeds, c, got, want)
				}
			}
			next := graph.NodeID(rng.IntN(g.NumNodes()))
			if contains(seeds, next) {
				continue
			}
			e.Add(next)
			seeds = append(seeds, next)
		}
	}
}

// TestObjectiveDefaultBitIdentical pins the determinism wall's first
// brick: the default objective (nil, zero value, or explicit uniform
// weights) takes code paths whose answers are bit-identical to the
// pre-objective Gain and Spread.
func TestObjectiveDefaultBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 15))
	g, log := randomInstance(rng, 30, 12)
	e := NewEngine(g, log, Options{})
	ev := NewEvaluator(g, log, nil)
	uniform := make([]float64, log.NumUsers())
	for u := range uniform {
		uniform[u] = 1
	}
	explicit := &Objective{Weights: uniform}
	for u := 0; u < g.NumNodes(); u++ {
		x := graph.NodeID(u)
		want := e.Gain(x)
		if got := e.GainObj(x, nil); got != want {
			t.Fatalf("GainObj(%d, nil) = %b, Gain = %b", u, got, want)
		}
		if got := e.GainObj(x, &Objective{}); got != want {
			t.Fatalf("GainObj(%d, zero) = %b, Gain = %b", u, got, want)
		}
		if got := e.GainObj(x, explicit); got != want {
			t.Fatalf("GainObj(%d, uniform) = %b, Gain = %b", u, got, want)
		}
	}
	seeds := []graph.NodeID{3, 17, 9}
	want := ev.Spread(seeds)
	if got := ev.SpreadObj(seeds, nil); got != want {
		t.Fatalf("SpreadObj(nil) = %b, Spread = %b", got, want)
	}
	if got := ev.SpreadObj(seeds, &Objective{}); got != want {
		t.Fatalf("SpreadObj(zero) = %b, Spread = %b", got, want)
	}
	// Explicit uniform weights are the same number but not the same bits:
	// the objective path sums each seed's self-credit per action
	// (sum_a 1/A_s) where Spread adds the algebraically equal flat 1.
	// Bit-identity for the default objective comes from taking the
	// pre-objective code path, never from arithmetic coincidence.
	if got := ev.SpreadObj(seeds, explicit); math.Abs(got-want) > 1e-9 {
		t.Fatalf("SpreadObj(uniform) = %g, Spread = %g", got, want)
	}
}

// TestObjectiveWindowZero pins the window edge case: tau = 0 counts only
// same-instant participations (the action's initiators), and a window
// larger than every delay is the unwindowed objective exactly.
func TestObjectiveWindowZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 3))
	g, log := randomInstance(rng, 20, 8)
	delays := BuildActionDelays(log)
	ev := NewEvaluator(g, log, nil)
	seeds := []graph.NodeID{1, 5}
	wide := &Objective{Windowed: true, Tau: 1e9, Delays: delays}
	if got, want := ev.SpreadObj(seeds, wide), ev.Spread(seeds); math.Abs(got-want) > 1e-12 {
		t.Fatalf("wide window spread %g, unwindowed %g", got, want)
	}
	zero := &Objective{Windowed: true, Tau: 0, Delays: delays}
	if got := ev.SpreadObj(seeds, zero); got < 0 || got > ev.Spread(seeds) {
		t.Fatalf("zero-window spread %g outside [0, %g]", got, ev.Spread(seeds))
	}
}

// TestObjectiveValidate pins the rejection rules serve's 400s rely on.
func TestObjectiveValidate(t *testing.T) {
	cases := map[string]*Objective{
		"short weights":   {Weights: []float64{1, 2}},
		"negative weight": {Weights: []float64{1, -1, 1, 1, 1, 1, 1, 1, 1, 1}},
		"nan weight":      {Weights: []float64{math.NaN(), 1, 1, 1, 1, 1, 1, 1, 1, 1}},
		"negative window": {Windowed: true, Tau: -1},
		"nan window":      {Windowed: true, Tau: math.NaN()},
	}
	for name, obj := range cases {
		if err := obj.Validate(10); err == nil {
			t.Errorf("%s: objective accepted", name)
		}
	}
	var nilObj *Objective
	if err := nilObj.Validate(10); err != nil {
		t.Errorf("nil objective rejected: %v", err)
	}
	if !nilObj.IsDefault() || !(&Objective{}).IsDefault() {
		t.Error("nil or zero objective not default")
	}
	if (&Objective{Windowed: true, Tau: 5}).IsDefault() {
		t.Error("windowed objective claims default")
	}
}

// TestActionDelays pins the delay index against the log directly.
func TestActionDelays(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 21))
	_, log := randomInstance(rng, 15, 6)
	d := BuildActionDelays(log)
	if d.NumActions() != log.NumActions() {
		t.Fatalf("delay index covers %d actions, log has %d", d.NumActions(), log.NumActions())
	}
	for a := 0; a < log.NumActions(); a++ {
		tuples := log.Action(int32(a))
		t0 := tuples[0].Time
		for _, tu := range tuples {
			got, ok := d.Delay(int32(a), tu.User)
			if !ok {
				t.Fatalf("action %d user %d missing from delay index", a, tu.User)
			}
			if got != tu.Time-t0 {
				t.Fatalf("action %d user %d delay %g, want %g", a, tu.User, got, tu.Time-t0)
			}
		}
		if _, ok := d.Delay(int32(a), graph.NodeID(log.NumUsers())); ok {
			t.Fatalf("action %d reports a delay for a non-participant", a)
		}
	}
}
