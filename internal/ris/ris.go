// Package ris implements reverse influence sampling (Borgs et al. 2014,
// the foundation of TIM/IMM): sample reverse-reachable (RR) sets, then
// pick seeds by greedy maximum coverage over the samples and estimate the
// spread of arbitrary sets as Roots * Pr[S hits a random sample]. The
// sampling distribution is pluggable (Source): the classic live-edge
// cascade sampler backs the ablation baseline, and the CD credit-walk
// source in internal/core backs the serving layer's approximate tier.
//
// Collections are drawn in fixed-width stripes, one PCG stream per stripe
// (stripe i owns samples [i*b, (i+1)*b)), so a collection's contents are
// bit-identical at any worker count and under any growth path — the same
// determinism wall the selection engine enforces. On top of the samples
// sit Wilson/Hoeffding confidence intervals over the hit fraction, which
// turn the point estimate into a bounded-error answer and drive adaptive
// sample growth.
package ris

import (
	"math"
	"math/rand/v2"

	"credist/internal/cascade"
	"credist/internal/graph"
)

// Sampler draws reverse-reachable sets under IC or LT semantics.
type Sampler struct {
	w     *cascade.Weights
	model cascade.Model
	mark  []uint32
	epoch uint32
}

// NewSampler returns a sampler over the weighted graph.
func NewSampler(w *cascade.Weights, model cascade.Model) *Sampler {
	return &Sampler{w: w, model: model, mark: make([]uint32, w.Graph().NumNodes())}
}

// Sample draws one RR set: the nodes that would have influenced a
// uniformly random target in one random possible world. Edges are
// realized lazily during the reverse traversal, which is distributionally
// identical to sampling the whole world first.
func (s *Sampler) Sample(rng *rand.Rand) []graph.NodeID {
	root := graph.NodeID(rng.IntN(s.w.Graph().NumNodes()))
	return s.SampleFrom(root, rng)
}

// SampleFrom draws the RR set of a chosen target node.
func (s *Sampler) SampleFrom(root graph.NodeID, rng *rand.Rand) []graph.NodeID {
	g := s.w.Graph()
	s.epoch++
	s.mark[root] = s.epoch
	set := []graph.NodeID{root}
	frontier := []graph.NodeID{root}
	for len(frontier) > 0 {
		u := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		in := g.In(u)
		probs := s.w.InRow(u)
		switch s.model {
		case cascade.IC:
			// Each in-edge is live independently.
			for i, v := range in {
				if s.mark[v] == s.epoch {
					continue
				}
				if p := probs[i]; p > 0 && rng.Float64() < p {
					s.mark[v] = s.epoch
					set = append(set, v)
					frontier = append(frontier, v)
				}
			}
		case cascade.LT:
			// At most one in-edge is live, chosen by weight.
			x := rng.Float64()
			acc := 0.0
			for i, v := range in {
				acc += probs[i]
				if x < acc {
					if s.mark[v] != s.epoch {
						s.mark[v] = s.epoch
						set = append(set, v)
						frontier = append(frontier, v)
					}
					break
				}
			}
		}
	}
	return set
}

// RecommendedSamples returns a practical sample count for (n, k,
// epsilon): the simplified TIM bound O((k log n + log 2) * n / eps^2)
// divided by the expected RR-set mass, capped for laptop use. It is a
// heuristic default, not the full theta-estimation machinery of TIM+.
func RecommendedSamples(n, k int, eps float64) int {
	if eps <= 0 {
		eps = 0.2
	}
	logN := 0.0
	if n > 1 {
		logN = math.Ceil(math.Log2(float64(n)))
	}
	count := int((float64(k)*logN + math.Ln2) / (eps * eps) * 8)
	if count < 1000 {
		count = 1000
	}
	if count > 500000 {
		count = 500000
	}
	return count
}
