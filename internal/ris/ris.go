// Package ris implements reverse influence sampling (Borgs et al. 2014,
// the foundation of TIM/IMM), a post-paper influence-maximization
// technique included as an extension baseline: sample reverse-reachable
// (RR) sets under the propagation model's live-edge distribution, then
// pick seeds by greedy maximum coverage over the samples. Expected spread
// of a set S is n * Pr[S hits a random RR set], so coverage translates
// directly into spread estimates.
//
// It gives the repository a second scalable IM algorithm with a guarantee
// (a (1-1/e-epsilon) approximation for sufficiently many samples) to
// contrast with the CD engine in the ablation benchmarks.
package ris

import (
	"math/rand/v2"
	"slices"

	"credist/internal/cascade"
	"credist/internal/celf"
	"credist/internal/graph"
)

// Sampler draws reverse-reachable sets under IC or LT semantics.
type Sampler struct {
	w     *cascade.Weights
	model cascade.Model
	mark  []uint32
	epoch uint32
}

// NewSampler returns a sampler over the weighted graph.
func NewSampler(w *cascade.Weights, model cascade.Model) *Sampler {
	return &Sampler{w: w, model: model, mark: make([]uint32, w.Graph().NumNodes())}
}

// Sample draws one RR set: the nodes that would have influenced a
// uniformly random target in one random possible world. Edges are
// realized lazily during the reverse traversal, which is distributionally
// identical to sampling the whole world first.
func (s *Sampler) Sample(rng *rand.Rand) []graph.NodeID {
	root := graph.NodeID(rng.IntN(s.w.Graph().NumNodes()))
	return s.SampleFrom(root, rng)
}

// SampleFrom draws the RR set of a chosen target node.
func (s *Sampler) SampleFrom(root graph.NodeID, rng *rand.Rand) []graph.NodeID {
	g := s.w.Graph()
	s.epoch++
	s.mark[root] = s.epoch
	set := []graph.NodeID{root}
	frontier := []graph.NodeID{root}
	for len(frontier) > 0 {
		u := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		in := g.In(u)
		probs := s.w.InRow(u)
		switch s.model {
		case cascade.IC:
			// Each in-edge is live independently.
			for i, v := range in {
				if s.mark[v] == s.epoch {
					continue
				}
				if p := probs[i]; p > 0 && rng.Float64() < p {
					s.mark[v] = s.epoch
					set = append(set, v)
					frontier = append(frontier, v)
				}
			}
		case cascade.LT:
			// At most one in-edge is live, chosen by weight.
			x := rng.Float64()
			acc := 0.0
			for i, v := range in {
				acc += probs[i]
				if x < acc {
					if s.mark[v] != s.epoch {
						s.mark[v] = s.epoch
						set = append(set, v)
						frontier = append(frontier, v)
					}
					break
				}
			}
		}
	}
	return set
}

// Collection is a batch of RR sets with an inverted index from node to
// the samples it appears in.
type Collection struct {
	n      int
	sets   [][]graph.NodeID
	covers map[graph.NodeID][]int32
}

// Collect draws count RR sets deterministically from the seed.
func Collect(s *Sampler, count int, seed uint64) *Collection {
	rng := rand.New(rand.NewPCG(seed, 0x415a))
	c := &Collection{
		n:      s.w.Graph().NumNodes(),
		covers: make(map[graph.NodeID][]int32),
	}
	for i := 0; i < count; i++ {
		set := s.Sample(rng)
		c.sets = append(c.sets, set)
		for _, v := range set {
			c.covers[v] = append(c.covers[v], int32(i))
		}
	}
	return c
}

// NumSets returns the number of samples.
func (c *Collection) NumSets() int { return len(c.sets) }

// Estimator is the maximum-coverage marginal-gain oracle over a
// Collection: Gain(x) counts the RR sets containing x that no committed
// seed has covered yet, Add marks x's sets covered. Gain reads only the
// covered bitmap (exact integer counts, no floats to drift), so it
// carries the concurrent-gain marker and the shared celf engine fans the
// first-iteration pass over workers with bit-identical results at any
// worker count. One Estimator holds one selection's state; Collection
// itself stays immutable and reusable.
type Estimator struct {
	c       *Collection
	covered []bool
	count   int // covered RR sets
}

// Estimator returns a fresh maximum-coverage estimator over the samples.
func (c *Collection) Estimator() *Estimator {
	return &Estimator{c: c, covered: make([]bool, len(c.sets))}
}

// NumNodes returns the graph's node count (the candidate universe).
func (e *Estimator) NumNodes() int { return e.c.n }

// Gain returns the number of not-yet-covered RR sets containing x.
func (e *Estimator) Gain(x graph.NodeID) float64 {
	n := 0
	for _, si := range e.c.covers[x] {
		if !e.covered[si] {
			n++
		}
	}
	return float64(n)
}

// Add commits x, marking every RR set containing it covered.
func (e *Estimator) Add(x graph.NodeID) {
	for _, si := range e.c.covers[x] {
		if !e.covered[si] {
			e.covered[si] = true
			e.count++
		}
	}
}

// CoveredCount returns how many RR sets the committed seeds cover.
func (e *Estimator) CoveredCount() int { return e.count }

// ConcurrentGain marks Gain as safe for concurrent calls between Adds.
// Compile-time marker for celf.ConcurrentEstimator; never called.
func (e *Estimator) ConcurrentGain() {}

// SelectSeeds runs greedy maximum coverage over the RR sets — through the
// shared celf selection engine, like every other seed selector in the
// repository — and returns the chosen seeds plus the implied spread
// estimate for each prefix: spread_i = n * covered_i / |sets|. The
// candidate pool is the nodes appearing in at least one sample (anything
// else has zero gain forever), sorted so the pool order — and therefore
// the selection — is deterministic. Selection stops once no candidate
// covers a new sample (zero-gain seeds are meaningless under coverage).
func (c *Collection) SelectSeeds(k int) ([]graph.NodeID, []float64) {
	pool := make([]graph.NodeID, 0, len(c.covers))
	for v := range c.covers {
		pool = append(pool, v)
	}
	slices.Sort(pool)
	res := celf.Run(c.Estimator(), k, celf.Options{Candidates: pool})
	var seeds []graph.NodeID
	var spreads []float64
	covered := 0.0
	for i, g := range res.Gains {
		if g <= 0 {
			break
		}
		covered += g
		seeds = append(seeds, res.Seeds[i])
		spreads = append(spreads, float64(c.n)*covered/float64(len(c.sets)))
	}
	return seeds, spreads
}

// EstimateSpread returns n * (fraction of RR sets hit by S), the unbiased
// RIS spread estimate for an arbitrary set.
func (c *Collection) EstimateSpread(seeds []graph.NodeID) float64 {
	if len(c.sets) == 0 {
		return 0
	}
	inS := make(map[graph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		inS[s] = true
	}
	hit := 0
	for _, set := range c.sets {
		for _, v := range set {
			if inS[v] {
				hit++
				break
			}
		}
	}
	return float64(c.n) * float64(hit) / float64(len(c.sets))
}

// RecommendedSamples returns a practical sample count for (n, k,
// epsilon): the simplified TIM bound O((k log n + log 2) * n / eps^2)
// divided by the expected RR-set mass, capped for laptop use. It is a
// heuristic default, not the full theta-estimation machinery of TIM+.
func RecommendedSamples(n, k int, eps float64) int {
	if eps <= 0 {
		eps = 0.2
	}
	logN := 1.0
	for m := n; m > 1; m >>= 1 {
		logN++
	}
	count := int(float64(k)*logN/(eps*eps)) * 8
	if count < 1000 {
		count = 1000
	}
	if count > 500000 {
		count = 500000
	}
	return count
}
