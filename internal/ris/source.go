package ris

import (
	"math/rand/v2"

	"credist/internal/cascade"
	"credist/internal/graph"
)

// Source abstracts where RR samples come from, so the collection machinery
// (striped parallel drawing, sorted covers, interval estimates) is shared
// by the cascade live-edge sampler and the CD credit-walk sampler without
// this package importing core. The method set is deliberately structural —
// NewWalker returns a plain func, not a named type — so any package can
// satisfy it without importing ris.
type Source interface {
	// NumNodes returns the node-universe size; every id a walker emits
	// must lie in [0, NumNodes()).
	NumNodes() int
	// Roots returns the scale numerator: EstimateSpread reports
	// Roots() * Pr[S hits a sample]. For the classic live-edge RIS source
	// this is NumNodes() (roots are uniform over all nodes); for the CD
	// credit-walk source it is the number of active users, because only
	// they are sampled as walk roots and only they carry spread mass.
	Roots() int
	// NewWalker returns a fresh sampling closure. Each call must return
	// an independent walker (collection stripes run one walker per
	// stripe, concurrently); a walker itself is used serially. The
	// returned sample must be non-empty and deterministic given the rng
	// stream — that determinism is what makes striped collections
	// bit-identical at any worker count.
	NewWalker() func(rng *rand.Rand) []graph.NodeID
}

// cascadeSource adapts the live-edge Sampler to the Source interface.
type cascadeSource struct {
	w     *cascade.Weights
	model cascade.Model
}

// CascadeSource returns the classic RIS source: reverse-reachable sets
// under the weighted graph's IC or LT live-edge distribution, rooted at a
// uniformly random node.
func CascadeSource(w *cascade.Weights, model cascade.Model) Source {
	return cascadeSource{w: w, model: model}
}

func (s cascadeSource) NumNodes() int { return s.w.Graph().NumNodes() }
func (s cascadeSource) Roots() int    { return s.w.Graph().NumNodes() }

func (s cascadeSource) NewWalker() func(rng *rand.Rand) []graph.NodeID {
	sampler := NewSampler(s.w, s.model)
	return sampler.Sample
}
