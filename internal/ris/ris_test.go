package ris

import (
	"math"
	"math/rand/v2"
	"testing"

	"credist/internal/cascade"
	"credist/internal/graph"
)

func chainWeights(t *testing.T, n int, p float64) *cascade.Weights {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	w := cascade.NewWeights(b.Build())
	for i := 0; i < n-1; i++ {
		if err := w.Set(graph.NodeID(i), graph.NodeID(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestSampleFromDeterministicChain(t *testing.T) {
	w := chainWeights(t, 5, 1.0)
	s := NewSampler(w, cascade.IC)
	rng := rand.New(rand.NewPCG(1, 1))
	set := s.SampleFrom(4, rng)
	if len(set) != 5 {
		t.Fatalf("RR set of chain tail = %v, want all 5 nodes", set)
	}
	set = s.SampleFrom(0, rng)
	if len(set) != 1 || set[0] != 0 {
		t.Fatalf("RR set of chain head = %v, want just {0}", set)
	}
}

func TestSampleZeroProbability(t *testing.T) {
	w := chainWeights(t, 4, 0)
	s := NewSampler(w, cascade.IC)
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 10; i++ {
		if set := s.Sample(rng); len(set) != 1 {
			t.Fatalf("p=0 RR set = %v", set)
		}
	}
}

func TestSelectSeedsChain(t *testing.T) {
	// Deterministic chain: node 0 reaches everyone, so it covers every RR
	// set and greedy picks it first with full coverage.
	w := chainWeights(t, 6, 1.0)
	s := NewSampler(w, cascade.IC)
	c := Collect(s, 500, 3)
	seeds, spreads := c.SelectSeeds(2)
	if seeds[0] != 0 {
		t.Fatalf("first RIS seed = %d, want 0", seeds[0])
	}
	if math.Abs(spreads[0]-6) > 1e-9 {
		t.Fatalf("spread estimate = %g, want 6", spreads[0])
	}
	if len(seeds) != 1 {
		// Everything is covered by node 0; greedy stops early.
		t.Fatalf("seeds = %v, want just node 0", seeds)
	}
}

func TestEstimateSpreadMatchesMC(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	b := graph.NewBuilder(40)
	for e := 0; e < 150; e++ {
		u, v := graph.NodeID(rng.IntN(40)), graph.NodeID(rng.IntN(40))
		if u != v {
			_ = b.AddEdge(u, v)
		}
	}
	g := b.Build()
	w := cascade.NewWeights(g)
	for u := int32(0); u < 40; u++ {
		for _, v := range g.Out(u) {
			_ = w.Set(u, v, 0.1+0.3*rng.Float64())
		}
	}
	seeds := []graph.NodeID{0, 7}
	mc := cascade.NewMCEstimator(w, cascade.IC, cascade.MCOptions{Trials: 20000, Seed: 6})
	want := mc.Spread(seeds)
	c := Collect(NewSampler(w, cascade.IC), 60000, 7)
	got := c.EstimateSpread(seeds)
	if math.Abs(got-want) > 0.08*want+0.3 {
		t.Fatalf("RIS estimate %g far from MC %g", got, want)
	}
}

func TestLTSamplerAtMostOneParentStep(t *testing.T) {
	// In an LT RR sample each traversal step follows at most one in-edge,
	// so the RR set size is at most the path length + 1 on any graph whose
	// in-degrees are all 1... on a chain, sets are prefixes.
	w := chainWeights(t, 6, 1.0)
	s := NewSampler(w, cascade.LT)
	rng := rand.New(rand.NewPCG(8, 8))
	set := s.SampleFrom(5, rng)
	if len(set) != 6 {
		t.Fatalf("LT chain RR set = %v", set)
	}
}

func TestRISvsGreedyQuality(t *testing.T) {
	// RIS seeds should reach a spread comparable to MC-greedy seeds.
	rng := rand.New(rand.NewPCG(9, 9))
	b := graph.NewBuilder(60)
	for e := 0; e < 240; e++ {
		u, v := graph.NodeID(rng.IntN(60)), graph.NodeID(rng.IntN(60))
		if u != v {
			_ = b.AddEdge(u, v)
		}
	}
	g := b.Build()
	w := cascade.NewWeights(g)
	for u := int32(0); u < 60; u++ {
		for _, v := range g.Out(u) {
			_ = w.Set(u, v, 0.15)
		}
	}
	c := Collect(NewSampler(w, cascade.IC), 20000, 10)
	risSeeds, _ := c.SelectSeeds(5)
	mc := cascade.NewMCEstimator(w, cascade.IC, cascade.MCOptions{Trials: 3000, Seed: 11})
	risSpread := mc.Spread(risSeeds)

	greedy := cascade.NewGreedyEstimator(cascade.NewMCEstimator(w, cascade.IC, cascade.MCOptions{Trials: 300, Seed: 12}))
	for i := 0; i < 5; i++ {
		best, bestGain := graph.NodeID(-1), -1.0
		for u := graph.NodeID(0); u < 60; u++ {
			if gain := greedy.Gain(u); gain > bestGain {
				best, bestGain = u, gain
			}
		}
		greedy.Add(best)
	}
	greedySpread := mc.Spread(greedy.Seeds())
	if risSpread < 0.85*greedySpread {
		t.Fatalf("RIS spread %g well below greedy %g", risSpread, greedySpread)
	}
}

func TestRecommendedSamples(t *testing.T) {
	// want computes the documented formula directly:
	// 8*(k*ceil(log2 n) + ln 2)/eps^2, clamped to [1000, 500000]. The old
	// hand-rolled loop overcounted ceil(log2 n) by one for exact powers of
	// two and dropped the additive log 2 term entirely.
	want := func(n, k int, eps float64) int {
		logN := 0.0
		if n > 1 {
			logN = math.Ceil(math.Log2(float64(n)))
		}
		c := int((float64(k)*logN + math.Ln2) / (eps * eps) * 8)
		return max(1000, min(c, 500000))
	}
	cases := []struct {
		name string
		n, k int
		eps  float64
	}{
		{"single node", 1, 5, 0.1},
		{"two nodes", 2, 5, 0.1},
		{"power of two", 1 << 10, 10, 0.1},
		{"power of two large", 1 << 20, 10, 0.1},
		{"off power", 1000, 10, 0.1},
		{"low clamp", 10, 1, 0.5},
		{"high clamp", 1 << 30, 500, 0.01},
		{"eps default", 100, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eps := tc.eps
			if eps <= 0 {
				eps = 0.2
			}
			if got := RecommendedSamples(tc.n, tc.k, tc.eps); got != want(tc.n, tc.k, eps) {
				t.Fatalf("RecommendedSamples(%d,%d,%g) = %d, want %d", tc.n, tc.k, tc.eps, got, want(tc.n, tc.k, eps))
			}
		})
	}
	// Pin the exact clamp values and the power-of-two fix numerically.
	if got := RecommendedSamples(1, 1, 0.1); got != 1000 {
		t.Fatalf("n=1 should clamp low: %d", got)
	}
	if got := RecommendedSamples(1<<30, 500, 0.01); got != 500000 {
		t.Fatalf("high clamp not applied: %d", got)
	}
	rawF := (10*10.0 + math.Ln2) / (0.1 * 0.1) * 8
	if got, raw := RecommendedSamples(1<<10, 10, 0.1), int(rawF); got != raw {
		t.Fatalf("ceil(log2(1024)) must be 10, not 11: got %d, want %d", got, raw)
	}
}
