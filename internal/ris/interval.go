package ris

import (
	"math"

	"credist/internal/graph"
)

// Z99 is the two-sided 99% normal quantile used by Estimate's default
// Wilson interval. It is a fixed constant (not computed at runtime) so the
// interval — and therefore every adaptive stopping decision built on it —
// is bit-identical across platforms and runs.
const Z99 = 2.5758293035489004

// WilsonInterval returns the Wilson score interval [lo, hi] for the
// success probability of hits out of samples Bernoulli trials at normal
// quantile z. Unlike the plain normal interval it stays inside [0, 1] and
// behaves sensibly at hit fractions near 0 or 1 — exactly the regime
// spread queries live in, where a seed set hits a few percent of the
// samples.
func WilsonInterval(hits, samples int, z float64) (lo, hi float64) {
	if samples <= 0 {
		return 0, 1
	}
	m := float64(samples)
	p := float64(hits) / m
	z2 := z * z
	denom := 1 + z2/m
	center := (p + z2/(2*m)) / denom
	half := z * math.Sqrt(p*(1-p)/m+z2/(4*m*m)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// HoeffdingInterval returns the distribution-free Hoeffding interval
// [lo, hi] for the success probability at confidence 1-delta:
// phat +/- sqrt(ln(2/delta) / (2*samples)). It is much wider than Wilson
// for the small hit fractions typical of spread queries, but its coverage
// guarantee needs no normal approximation; callers wanting hard bounds
// can trade samples for it.
func HoeffdingInterval(hits, samples int, delta float64) (lo, hi float64) {
	if samples <= 0 {
		return 0, 1
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.01
	}
	m := float64(samples)
	p := float64(hits) / m
	half := math.Sqrt(math.Log(2/delta) / (2 * m))
	lo, hi = p-half, p+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Estimate is a spread estimate with its confidence interval, all in
// spread units (the hit-fraction interval scaled by Roots()).
type Estimate struct {
	// Spread is the point estimate Roots() * Hits/Samples.
	Spread float64
	// Low and High bound the Wilson 99% interval around Spread.
	Low, High float64
	// Eps is the achieved relative half-width (High-Low)/(2*Spread):
	// the epsilon this estimate satisfies. +Inf when Spread is zero.
	Eps float64
	// Hits is how many samples the seed set covers, out of Samples.
	Hits, Samples int
}

// Estimate returns the spread estimate of the seed set with its Wilson
// 99% confidence interval. The result is a pure function of the
// collection contents and the seed set — integer hit counts and fixed
// constants, no randomness — so it is bit-identical across worker counts,
// runs, and snapshot restores.
func (c *Collection) Estimate(seeds []graph.NodeID) Estimate {
	est := Estimate{Samples: len(c.sets), Eps: math.Inf(1)}
	if est.Samples == 0 {
		return est
	}
	est.Hits = c.hitCount(seeds)
	scale := float64(c.roots)
	est.Spread = scale * float64(est.Hits) / float64(est.Samples)
	lo, hi := WilsonInterval(est.Hits, est.Samples, Z99)
	est.Low, est.High = scale*lo, scale*hi
	if est.Spread > 0 {
		est.Eps = (est.High - est.Low) / (2 * est.Spread)
	}
	return est
}
