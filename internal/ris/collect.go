package ris

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"credist/internal/graph"
)

// DefaultStripe is the fixed stripe width of parallel collection: stripe i
// always owns samples [i*DefaultStripe, (i+1)*DefaultStripe) and draws
// them from its own PCG stream, so a collection's contents depend only on
// (source, seed, count) — never on the worker count or on how the
// collection was grown to its size.
const DefaultStripe = 256

// pcgStreamBase offsets the per-stripe PCG stream ids (stripe i draws from
// stream pcgStreamBase+i). The constant is the stream id the old serial
// collector used for its single stream.
const pcgStreamBase = 0x415a

// CollectOptions configures parallel collection.
type CollectOptions struct {
	// Workers bounds the stripe fan-out. 0 means GOMAXPROCS. The worker
	// count affects wall time only; the collected samples are
	// bit-identical at any value.
	Workers int
}

// Collect draws count RR sets deterministically from the seed using the
// classic live-edge sampler. It is the historical entry point, now a thin
// wrapper over the striped parallel collector.
func Collect(s *Sampler, count int, seed uint64) *Collection {
	return CollectParallel(CascadeSource(s.w, s.model), count, seed, CollectOptions{})
}

// CollectParallel draws count RR samples from the source, fanning stripes
// over the workers. The result is bit-identical at any worker count and
// extends deterministically: Extend to a larger count yields exactly the
// collection CollectParallel would have drawn at that count directly.
func CollectParallel(src Source, count int, seed uint64, opts CollectOptions) *Collection {
	if count < 0 {
		count = 0
	}
	sets := make([][]graph.NodeID, count)
	fillStripes(src, sets, seed, 0, opts.Workers)
	return newCollection(src.NumNodes(), src.Roots(), seed, sets)
}

// Extend returns a new collection grown to count samples, reusing every
// already-drawn sample: only stripes past the current length are drawn
// (plus a replay of the final partial stripe's prefix, whose samples are
// discarded — per-stripe streams make the replay bit-identical). The
// receiver is untouched and stays valid. The source and seed must be the
// ones the collection was drawn with, or the determinism contract — grown
// and directly-drawn collections agree bit for bit — is silently lost.
func (c *Collection) Extend(src Source, count int, opts CollectOptions) *Collection {
	if count <= len(c.sets) {
		return c
	}
	sets := make([][]graph.NodeID, count)
	copy(sets, c.sets)
	fillStripes(src, sets, c.seed, len(c.sets), opts.Workers)
	return newCollection(c.n, c.roots, c.seed, sets)
}

// fillStripes draws samples [from, len(sets)) into sets, one fresh PCG
// stream and one fresh walker per stripe. Stripes are claimed atomically
// by a worker pool but each stripe's samples are written only at that
// stripe's own indices, so scheduling cannot reorder anything.
func fillStripes(src Source, sets [][]graph.NodeID, seed uint64, from, workers int) {
	to := len(sets)
	if from >= to {
		return
	}
	first, last := from/DefaultStripe, (to-1)/DefaultStripe
	stripes := last - first + 1
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > stripes {
		workers = stripes
	}
	draw := func(stripe int) {
		rng := rand.New(rand.NewPCG(seed, pcgStreamBase+uint64(stripe)))
		walker := src.NewWalker()
		lo := stripe * DefaultStripe
		hi := min(lo+DefaultStripe, to)
		for j := lo; j < hi; j++ {
			set := walker(rng)
			// The first stripe may start mid-stripe when extending: the
			// prefix is replayed to advance the stream, its samples are
			// already in place.
			if j >= from {
				sets[j] = set
			}
		}
	}
	if workers <= 1 {
		for s := first; s <= last; s++ {
			draw(s)
		}
		return
	}
	var next atomic.Int64
	next.Store(int64(first))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1) - 1)
				if s > last {
					return
				}
				draw(s)
			}
		}()
	}
	wg.Wait()
}
