package ris

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"credist/internal/celf"
	"credist/internal/graph"
)

// Collection is an immutable batch of RR samples with an inverted index
// from node to the samples it appears in. The index mirrors the core
// engine's sorted sparse-row layout — a sorted key slice plus per-key
// index lists — instead of a map, so lookups are allocation-free binary
// searches and iteration order is deterministic by construction. The key
// slice doubles as the seed-selection candidate pool (anything outside it
// has zero gain forever), handed to the celf engine without a per-call
// rebuild.
type Collection struct {
	n      int // node universe
	roots  int // scale numerator (Source.Roots at collection time)
	seed   uint64
	sets   [][]graph.NodeID
	keys   []graph.NodeID // sorted nodes appearing in >= 1 sample
	covers [][]int32      // covers[i] = ascending sample indices containing keys[i]
	marks  sync.Pool      // *marker scratch for EstimateSpread
}

// marker is the epoch-marked membership scratch EstimateSpread borrows
// from the pool: mark[si] == epoch means sample si is already counted in
// the current union. Bumping the epoch resets every slot in O(1).
type marker struct {
	mark  []uint32
	epoch uint32
}

// newCollection wraps drawn samples and builds the inverted index.
func newCollection(n, roots int, seed uint64, sets [][]graph.NodeID) *Collection {
	c := &Collection{n: n, roots: roots, seed: seed, sets: sets}
	c.buildCovers()
	c.marks.New = func() any { return &marker{mark: make([]uint32, len(sets))} }
	return c
}

// FromSets reconstructs a collection from previously drawn samples (the
// snapshot-restore path). The samples are adopted verbatim; the index is
// rebuilt, so estimates and selections are bit-identical to the collection
// the samples were drawn from. Every sample must be non-empty with ids in
// [0, n), and roots must lie in [1, n].
func FromSets(n, roots int, seed uint64, sets [][]graph.NodeID) (*Collection, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ris: universe size %d", n)
	}
	if roots < 1 || roots > n {
		return nil, fmt.Errorf("ris: root count %d outside [1,%d]", roots, n)
	}
	for i, set := range sets {
		if len(set) == 0 {
			return nil, fmt.Errorf("ris: sample %d is empty", i)
		}
		for _, v := range set {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("ris: sample %d node %d outside [0,%d)", i, v, n)
			}
		}
	}
	return newCollection(n, roots, seed, sets), nil
}

// buildCovers builds the sorted inverted index in two counting passes
// (CSR-style, no maps): ascending node ids, ascending sample indices.
func (c *Collection) buildCovers() {
	counts := make([]int32, c.n)
	entries := 0
	for _, set := range c.sets {
		for _, v := range set {
			counts[v]++
			entries++
		}
	}
	distinct := 0
	for _, cnt := range counts {
		if cnt > 0 {
			distinct++
		}
	}
	c.keys = make([]graph.NodeID, 0, distinct)
	c.covers = make([][]int32, 0, distinct)
	slot := make([]int32, c.n) // node -> 1+index into keys; 0 = absent
	backing := make([]int32, entries)
	off := 0
	for v, cnt := range counts {
		if cnt == 0 {
			continue
		}
		c.keys = append(c.keys, graph.NodeID(v))
		c.covers = append(c.covers, backing[off:off:off+int(cnt)])
		off += int(cnt)
		slot[v] = int32(len(c.keys))
	}
	for si, set := range c.sets {
		for _, v := range set {
			ki := slot[v] - 1
			c.covers[ki] = append(c.covers[ki], int32(si))
		}
	}
}

// coverOf returns the ascending sample indices containing x (nil if x
// appears in no sample).
func (c *Collection) coverOf(x graph.NodeID) []int32 {
	if x < 0 || int(x) >= c.n {
		return nil
	}
	i, ok := slices.BinarySearch(c.keys, x)
	if !ok {
		return nil
	}
	return c.covers[i]
}

// NumSets returns the number of samples.
func (c *Collection) NumSets() int { return len(c.sets) }

// NumNodes returns the node-universe size.
func (c *Collection) NumNodes() int { return c.n }

// Roots returns the scale numerator estimates are multiplied by.
func (c *Collection) Roots() int { return c.roots }

// Seed returns the PCG seed the samples were drawn from.
func (c *Collection) Seed() uint64 { return c.seed }

// Sets returns the samples themselves, in draw order. Callers must treat
// the result as read-only; it is what the snapshot writer persists.
func (c *Collection) Sets() [][]graph.NodeID { return c.sets }

// Bytes estimates the resident size of the samples plus their index, for
// capacity reporting.
func (c *Collection) Bytes() int64 {
	var b int64
	for _, set := range c.sets {
		b += int64(len(set)) * 4 * 2 // sample entry + its inverted-index entry
	}
	return b + int64(len(c.keys))*4 + int64(len(c.sets))*24
}

// hitCount returns |{samples hit by S}| by walking the union of the
// seeds' cover lists with a pooled epoch-marked membership array:
// O(sum of cover-list lengths), no per-call map, no allocation.
func (c *Collection) hitCount(seeds []graph.NodeID) int {
	mk := c.marks.Get().(*marker)
	if mk.epoch == math.MaxUint32 {
		clear(mk.mark)
		mk.epoch = 0
	}
	mk.epoch++
	hits := 0
	for _, s := range seeds {
		for _, si := range c.coverOf(s) {
			if mk.mark[si] != mk.epoch {
				mk.mark[si] = mk.epoch
				hits++
			}
		}
	}
	c.marks.Put(mk)
	return hits
}

// EstimateSpread returns Roots() * (fraction of samples hit by S), the
// unbiased spread estimate for an arbitrary seed set.
func (c *Collection) EstimateSpread(seeds []graph.NodeID) float64 {
	if len(c.sets) == 0 {
		return 0
	}
	return float64(c.roots) * float64(c.hitCount(seeds)) / float64(len(c.sets))
}

// Estimator is the maximum-coverage marginal-gain oracle over a
// Collection: Gain(x) counts the samples containing x that no committed
// seed has covered yet, Add marks x's samples covered. Gain reads only the
// covered bitmap (exact integer counts, no floats to drift), so it
// carries the concurrent-gain marker and the shared celf engine fans the
// first-iteration pass over workers with bit-identical results at any
// worker count. One Estimator holds one selection's state; Collection
// itself stays immutable and reusable.
type Estimator struct {
	c       *Collection
	covered []bool
	count   int // covered samples
}

// Estimator returns a fresh maximum-coverage estimator over the samples.
func (c *Collection) Estimator() *Estimator {
	return &Estimator{c: c, covered: make([]bool, len(c.sets))}
}

// NumNodes returns the node universe size (the candidate universe).
func (e *Estimator) NumNodes() int { return e.c.n }

// Gain returns the number of not-yet-covered samples containing x.
func (e *Estimator) Gain(x graph.NodeID) float64 {
	n := 0
	for _, si := range e.c.coverOf(x) {
		if !e.covered[si] {
			n++
		}
	}
	return float64(n)
}

// Add commits x, marking every sample containing it covered.
func (e *Estimator) Add(x graph.NodeID) {
	for _, si := range e.c.coverOf(x) {
		if !e.covered[si] {
			e.covered[si] = true
			e.count++
		}
	}
}

// CoveredCount returns how many samples the committed seeds cover.
func (e *Estimator) CoveredCount() int { return e.count }

// ConcurrentGain marks Gain as safe for concurrent calls between Adds.
// Compile-time marker for celf.ConcurrentEstimator; never called.
func (e *Estimator) ConcurrentGain() {}

// SelectSeeds runs greedy maximum coverage over the samples — through the
// shared celf selection engine, like every other seed selector in the
// repository — and returns the chosen seeds plus the implied spread
// estimate for each prefix: spread_i = Roots() * covered_i / |sets|. The
// candidate pool is the index's sorted key slice, reused as-is (celf
// never mutates it), so the pool order — and therefore the selection — is
// deterministic with no per-call rebuild. Selection stops once no
// candidate covers a new sample (zero-gain seeds are meaningless under
// coverage).
func (c *Collection) SelectSeeds(k int) ([]graph.NodeID, []float64) {
	res := celf.Run(c.Estimator(), k, celf.Options{Candidates: c.keys})
	var seeds []graph.NodeID
	var spreads []float64
	covered := 0.0
	for i, g := range res.Gains {
		if g <= 0 {
			break
		}
		covered += g
		seeds = append(seeds, res.Seeds[i])
		spreads = append(spreads, float64(c.roots)*covered/float64(len(c.sets)))
	}
	return seeds, spreads
}
