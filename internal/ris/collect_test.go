package ris

import (
	"math"
	"math/rand/v2"
	"reflect"
	"runtime"
	"testing"

	"credist/internal/cascade"
	"credist/internal/graph"
)

// randomSource builds a moderately dense random cascade source for the
// collection tests.
func randomSource(t testing.TB, n, edges int, seed uint64) Source {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed))
	b := graph.NewBuilder(n)
	for e := 0; e < edges; e++ {
		u, v := graph.NodeID(rng.IntN(n)), graph.NodeID(rng.IntN(n))
		if u != v {
			_ = b.AddEdge(u, v)
		}
	}
	g := b.Build()
	w := cascade.NewWeights(g)
	for u := int32(0); u < int32(n); u++ {
		for _, v := range g.Out(u) {
			_ = w.Set(u, v, 0.05+0.2*rng.Float64())
		}
	}
	return CascadeSource(w, cascade.IC)
}

// TestParallelCollectDeterministic is the determinism wall for striped
// collection: sets, selected seeds, spreads, and interval estimates must
// be bit-identical at Workers 1, GOMAXPROCS, and an oversubscribed count.
func TestParallelCollectDeterministic(t *testing.T) {
	src := randomSource(t, 80, 400, 21)
	const count, seed = 2000, 42
	ref := CollectParallel(src, count, seed, CollectOptions{Workers: 1})
	refSeeds, refSpreads := ref.SelectSeeds(8)
	probe := []graph.NodeID{3, 17, 55}
	refEst := ref.Estimate(probe)
	for _, workers := range []int{runtime.GOMAXPROCS(0), 4 * runtime.GOMAXPROCS(0)} {
		c := CollectParallel(src, count, seed, CollectOptions{Workers: workers})
		if !reflect.DeepEqual(c.Sets(), ref.Sets()) {
			t.Fatalf("workers=%d: sample sets differ from serial collection", workers)
		}
		seeds, spreads := c.SelectSeeds(8)
		if !reflect.DeepEqual(seeds, refSeeds) || !reflect.DeepEqual(spreads, refSpreads) {
			t.Fatalf("workers=%d: selection differs: %v/%v vs %v/%v", workers, seeds, spreads, refSeeds, refSpreads)
		}
		if est := c.Estimate(probe); est != refEst {
			t.Fatalf("workers=%d: estimate %+v differs from %+v", workers, est, refEst)
		}
	}
}

// TestExtendMatchesDirectCollect pins the growth rule: extending a
// collection to a larger count (including from counts that split a
// stripe) reproduces the directly drawn collection bit for bit, and the
// receiver is untouched.
func TestExtendMatchesDirectCollect(t *testing.T) {
	src := randomSource(t, 60, 250, 5)
	const seed = 7
	direct := CollectParallel(src, 1500, seed, CollectOptions{})
	for _, start := range []int{0, 100, DefaultStripe, DefaultStripe + 37, 1499} {
		small := CollectParallel(src, start, seed, CollectOptions{Workers: 2})
		before := small.NumSets()
		grown := small.Extend(src, 1500, CollectOptions{Workers: 3})
		if small.NumSets() != before {
			t.Fatalf("Extend mutated the receiver: %d -> %d sets", before, small.NumSets())
		}
		if !reflect.DeepEqual(grown.Sets(), direct.Sets()) {
			t.Fatalf("start=%d: grown collection differs from direct collection", start)
		}
		if grown.Seed() != seed || grown.Roots() != direct.Roots() {
			t.Fatalf("start=%d: grown metadata differs", start)
		}
	}
	// Growing to a smaller or equal count is a no-op returning the receiver.
	if got := direct.Extend(src, 10, CollectOptions{}); got != direct {
		t.Fatal("Extend to a smaller count must return the receiver")
	}
}

// TestFromSetsRoundTrip pins the snapshot-restore path: a collection
// rebuilt from Sets() answers every estimate and selection identically.
func TestFromSetsRoundTrip(t *testing.T) {
	src := randomSource(t, 50, 200, 9)
	c := CollectParallel(src, 800, 3, CollectOptions{})
	back, err := FromSets(c.NumNodes(), c.Roots(), c.Seed(), c.Sets())
	if err != nil {
		t.Fatalf("FromSets: %v", err)
	}
	probe := []graph.NodeID{1, 2, 30}
	if got, want := back.Estimate(probe), c.Estimate(probe); got != want {
		t.Fatalf("restored estimate %+v != %+v", got, want)
	}
	s1, g1 := c.SelectSeeds(5)
	s2, g2 := back.SelectSeeds(5)
	if !reflect.DeepEqual(s1, s2) || !reflect.DeepEqual(g1, g2) {
		t.Fatalf("restored selection differs: %v/%v vs %v/%v", s2, g2, s1, g1)
	}
	// And growth from the restored collection continues the same streams.
	grown := back.Extend(src, 1200, CollectOptions{})
	direct := CollectParallel(src, 1200, 3, CollectOptions{})
	if !reflect.DeepEqual(grown.Sets(), direct.Sets()) {
		t.Fatal("growth after restore diverges from a continuous collection")
	}

	// Validation rejects malformed inputs.
	if _, err := FromSets(0, 1, 0, nil); err == nil {
		t.Fatal("FromSets accepted an empty universe")
	}
	if _, err := FromSets(10, 0, 0, nil); err == nil {
		t.Fatal("FromSets accepted zero roots")
	}
	if _, err := FromSets(10, 4, 0, [][]graph.NodeID{{}}); err == nil {
		t.Fatal("FromSets accepted an empty sample")
	}
	if _, err := FromSets(10, 4, 0, [][]graph.NodeID{{10}}); err == nil {
		t.Fatal("FromSets accepted an out-of-range id")
	}
}

// TestWilsonHoeffdingIntervals sanity-checks the interval math at the
// edges and pins that Wilson is the tighter of the two in the small-p
// regime the serving tier lives in.
func TestWilsonHoeffdingIntervals(t *testing.T) {
	lo, hi := WilsonInterval(0, 0, Z99)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty Wilson interval [%g,%g]", lo, hi)
	}
	lo, hi = WilsonInterval(0, 1000, Z99)
	if lo != 0 || hi <= 0 || hi > 0.05 {
		t.Fatalf("zero-hit Wilson interval [%g,%g]", lo, hi)
	}
	lo, hi = WilsonInterval(1000, 1000, Z99)
	if hi < 0.999 || hi > 1 || lo >= hi || lo < 0.95 {
		t.Fatalf("all-hit Wilson interval [%g,%g]", lo, hi)
	}
	wlo, whi := WilsonInterval(50, 5000, Z99)
	hlo, hhi := HoeffdingInterval(50, 5000, 0.01)
	if wlo >= 0.01 || whi <= 0.01 {
		t.Fatalf("Wilson interval [%g,%g] misses the point estimate", wlo, whi)
	}
	if hlo > wlo+1e-12 || hhi < whi-1e-12 {
		t.Fatalf("Hoeffding [%g,%g] should contain Wilson [%g,%g] at p=0.01", hlo, hhi, wlo, whi)
	}
	if (whi - wlo) >= (hhi - hlo) {
		t.Fatalf("Wilson should be tighter at small p: %g vs %g", whi-wlo, hhi-hlo)
	}

	// Estimate is a pure function: same inputs, same bits, with Eps the
	// relative half-width.
	src := randomSource(t, 40, 160, 13)
	c := CollectParallel(src, 1024, 1, CollectOptions{})
	est := c.Estimate([]graph.NodeID{0, 1, 2, 3, 4})
	if est != c.Estimate([]graph.NodeID{0, 1, 2, 3, 4}) {
		t.Fatal("Estimate is not deterministic")
	}
	if est.Hits > 0 {
		if est.Low > est.Spread || est.Spread > est.High {
			t.Fatalf("point estimate %g outside its interval [%g,%g]", est.Spread, est.Low, est.High)
		}
		want := (est.High - est.Low) / (2 * est.Spread)
		if est.Eps != want {
			t.Fatalf("Eps = %g, want %g", est.Eps, want)
		}
	}
	if zero := c.Estimate(nil); zero.Hits != 0 || !math.IsInf(zero.Eps, 1) || zero.Spread != 0 {
		t.Fatalf("empty-set estimate %+v", zero)
	}
}

// BenchmarkEstimateSpread measures the epoch-marked membership walk
// against the pre-rewrite baseline (per-call map over every sample's
// members); the new path is O(sum of the seeds' cover lists), not
// O(total sample mass), and allocation-free.
func BenchmarkEstimateSpread(b *testing.B) {
	src := randomSource(b, 2000, 12000, 17)
	c := CollectParallel(src, 30000, 11, CollectOptions{})
	seeds, _ := c.SelectSeeds(50)
	b.Run("epoch-marked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = c.EstimateSpread(seeds)
		}
	})
	b.Run("map-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = mapEstimateSpread(c, seeds)
		}
	})
}

// mapEstimateSpread is the pre-rewrite implementation, kept as the
// benchmark baseline: a per-call membership map probed for every member
// of every sample.
func mapEstimateSpread(c *Collection, seeds []graph.NodeID) float64 {
	if len(c.sets) == 0 {
		return 0
	}
	inS := make(map[graph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		inS[s] = true
	}
	hit := 0
	for _, set := range c.sets {
		for _, v := range set {
			if inS[v] {
				hit++
				break
			}
		}
	}
	return float64(c.roots) * float64(hit) / float64(len(c.sets))
}
