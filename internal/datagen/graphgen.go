// Package datagen synthesizes datasets with the shape the paper's
// experiments require: a skewed-degree directed social graph plus an
// action log produced by a ground-truth time-aware cascade process with
// heterogeneous edge influence. It is the project's substitute for the
// proprietary Flixster and Flickr crawls (see DESIGN.md §4): ad-hoc
// probability assignments (UN/TV/WC) mismatch the ground truth while
// trace-based learners (EM, CD) can recover it, which is the property the
// paper's headline experiments exercise.
package datagen

import (
	"math/rand/v2"

	"credist/internal/graph"
)

// GenerateGraph builds a directed social graph by preferential attachment:
// each arriving node draws outDegree targets preferring well-connected
// earlier nodes, and each edge is reciprocated with probability recip
// (social ties are often mutual; Flixster friendship is symmetric).
func GenerateGraph(n, outDegree int, recip float64, rng *rand.Rand) *graph.Graph {
	if n < 2 {
		panic("datagen: need at least two nodes")
	}
	b := graph.NewBuilder(n)
	// targets is a repeated-node pool implementing preferential attachment:
	// nodes appear once per incident edge, so sampling uniformly from the
	// pool picks nodes proportionally to degree.
	targets := make([]graph.NodeID, 0, n*outDegree*2)
	targets = append(targets, 0, 1)
	_ = b.AddEdge(1, 0)
	targets = append(targets, 0, 1)

	for u := 2; u < n; u++ {
		m := outDegree
		if m > u {
			m = u
		}
		seen := make(map[graph.NodeID]bool, m)
		chosen := make([]graph.NodeID, 0, m)
		for len(chosen) < m {
			var v graph.NodeID
			if rng.Float64() < 0.15 {
				// Uniform escape hatch keeps the tail from starving and
				// keeps the graph from becoming a pure star.
				v = graph.NodeID(rng.IntN(u))
			} else {
				v = targets[rng.IntN(len(targets))]
			}
			if int32(v) == int32(u) || seen[v] {
				continue
			}
			seen[v] = true
			chosen = append(chosen, v) // selection order, deterministic
		}
		for _, v := range chosen {
			_ = b.AddEdge(graph.NodeID(u), v)
			targets = append(targets, graph.NodeID(u), v)
			if rng.Float64() < recip {
				_ = b.AddEdge(v, graph.NodeID(u))
				targets = append(targets, v, graph.NodeID(u))
			}
		}
	}
	return b.Build()
}
