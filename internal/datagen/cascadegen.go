package datagen

import (
	"container/heap"
	"math"
	"math/rand/v2"

	"credist/internal/actionlog"
	"credist/internal/cascade"
	"credist/internal/graph"
)

// GroundTruth is the hidden process that generated an action log. The
// experiments never read it directly (that would be cheating); it exists
// so tests can verify learners recover it and so ablations can measure
// estimation error.
type GroundTruth struct {
	// Probs holds the true edge influence probabilities.
	Probs *cascade.Weights
	// MeanDelay[e] is the true mean propagation delay of each edge,
	// keyed the same way the learners key tau.
	MeanDelay map[graph.Edge]float64
	// Activity[u] is the relative rate at which u initiates or
	// spontaneously adopts actions.
	Activity []float64
	// Influenceability[u] scales how susceptible u is to social influence.
	Influenceability []float64
	// ThresholdUser[u] marks users who adopt by cumulative-exposure
	// threshold (LT-style) rather than independent per-edge coin flips
	// (IC-style). Mixing the two keeps every parametric model
	// misspecified, as real data is (see DESIGN.md §4).
	ThresholdUser []bool
}

// Config parameterizes dataset synthesis. Use the presets in presets.go
// for the four paper-shaped datasets.
type Config struct {
	// Name labels the dataset in reports.
	Name string
	// NumUsers is the social-graph size.
	NumUsers int
	// OutDegree is the preferential-attachment out-degree (average degree
	// lands near 2x this with reciprocation).
	OutDegree int
	// Reciprocity is the probability a tie is mutual.
	Reciprocity float64
	// NumActions is the number of propagations to generate.
	NumActions int
	// MeanInfluence is the mean ground-truth edge probability; individual
	// edges vary by influencer strength and target susceptibility.
	MeanInfluence float64
	// MeanDelay is the mean propagation delay in time units.
	MeanDelay float64
	// SpontaneousPerAction is the expected number of users who adopt an
	// action without social exposure (background noise).
	SpontaneousPerAction float64
	// MaxInitiators bounds the initiator count per action (>=1).
	MaxInitiators int
	// ActivitySkew is the Zipf-like exponent of the user activity
	// distribution (larger = more skewed).
	ActivitySkew float64
	// ThresholdFraction is the share of users who adopt by cumulative
	// exposure (LT-style) instead of independent attempts (IC-style).
	// 0 makes the process pure IC; 1 pure LT.
	ThresholdFraction float64
	// Topology selects the social-graph generator: "pa" (preferential
	// attachment, the default and the presets' choice), "er"
	// (Erdos-Renyi), or "ws" (Watts-Strogatz small world). Used by the
	// topology-robustness experiments.
	Topology string
	// Horizon is the timestamp range actions start within.
	Horizon float64
	// Seed makes generation deterministic.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.MaxInitiators == 0 {
		c.MaxInitiators = 4
	}
	if c.Topology == "" {
		c.Topology = "pa"
	}
	if c.ActivitySkew == 0 {
		c.ActivitySkew = 1.2
	}
	if c.Horizon == 0 {
		c.Horizon = 1e6
	}
	if c.MeanDelay == 0 {
		c.MeanDelay = 10
	}
	return c
}

// Dataset bundles everything Generate produces.
type Dataset struct {
	Name  string
	Graph *graph.Graph
	Log   *actionlog.Log
	Truth *GroundTruth
}

// Generate synthesizes a dataset: a preferential-attachment social graph,
// heterogeneous ground-truth influence probabilities and delays, and an
// action log created by simulating a continuous-time independent cascade
// per action, with initiators and spontaneous adopters drawn from a
// skewed activity distribution.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15))
	var g *graph.Graph
	switch cfg.Topology {
	case "er":
		p := float64(cfg.OutDegree) / float64(cfg.NumUsers-1)
		g = graph.ErdosRenyi(cfg.NumUsers, p, rng)
	case "ws":
		g = graph.WattsStrogatz(cfg.NumUsers, cfg.OutDegree, 0.1, rng)
	default:
		g = GenerateGraph(cfg.NumUsers, cfg.OutDegree, cfg.Reciprocity, rng)
	}
	truth := generateTruth(g, cfg, rng)
	log := generateLog(g, truth, cfg, rng)
	return &Dataset{Name: cfg.Name, Graph: g, Log: log, Truth: truth}
}

// generateTruth draws per-user influence strength and susceptibility and
// combines them into per-edge probabilities and delays.
func generateTruth(g *graph.Graph, cfg Config, rng *rand.Rand) *GroundTruth {
	n := g.NumNodes()
	strength := make([]float64, n)
	suscept := make([]float64, n)
	activity := make([]float64, n)
	for u := 0; u < n; u++ {
		strength[u] = rng.ExpFloat64()         // heavy-ish tail of influencers
		suscept[u] = 0.25 + 0.75*rng.Float64() // everyone somewhat influenceable
		// Activity is skewed and positively correlated with influence
		// strength: in real platforms the users who initiate the big
		// propagations are the ones who post constantly, which is what
		// lets trace-based models attribute viral spreads to their
		// initiators' history (see DESIGN.md §4).
		activity[u] = math.Pow(rng.Float64(), cfg.ActivitySkew*2) * (0.2 + strength[u])
	}
	isThreshold := make([]bool, n)
	for u := 0; u < n; u++ {
		isThreshold[u] = rng.Float64() < cfg.ThresholdFraction
	}
	probs := cascade.NewWeights(g)
	delays := make(map[graph.Edge]float64)
	for u := int32(0); int(u) < n; u++ {
		for _, v := range g.Out(u) {
			p := cfg.MeanInfluence * strength[u] * suscept[v]
			if p > 0.9 {
				p = 0.9
			}
			if err := probs.Set(u, v, p); err != nil {
				panic(err)
			}
			// Per-edge mean delay varies around the global mean.
			delays[graph.Edge{From: u, To: v}] = cfg.MeanDelay * (0.5 + rng.Float64())
		}
	}
	return &GroundTruth{
		Probs:            probs,
		MeanDelay:        delays,
		Activity:         activity,
		Influenceability: suscept,
		ThresholdUser:    isThreshold,
	}
}

// event is a pending activation in the continuous-time cascade.
type event struct {
	at   float64
	user graph.NodeID
}

type eventQueue []event

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any          { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// generateLog simulates one continuous-time cascade per action.
func generateLog(g *graph.Graph, truth *GroundTruth, cfg Config, rng *rand.Rand) *actionlog.Log {
	b := actionlog.NewBuilder(g.NumNodes())
	// Cumulative activity distribution for weighted user sampling.
	cum := make([]float64, g.NumNodes())
	total := 0.0
	for u, w := range truth.Activity {
		total += w
		cum[u] = total
	}
	sampleUser := func() graph.NodeID {
		x := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return graph.NodeID(lo)
	}

	activated := make(map[graph.NodeID]float64)
	exposure := make(map[graph.NodeID]float64)  // cumulative weight on threshold users
	threshold := make(map[graph.NodeID]float64) // per-action thresholds, drawn lazily
	var q eventQueue
	for a := 0; a < cfg.NumActions; a++ {
		clear(activated)
		clear(exposure)
		clear(threshold)
		q = q[:0]
		start := rng.Float64() * cfg.Horizon
		numInit := 1 + rng.IntN(cfg.MaxInitiators)
		for i := 0; i < numInit; i++ {
			u := sampleUser()
			if _, ok := activated[u]; ok {
				continue
			}
			t := start + rng.Float64()*cfg.MeanDelay
			activated[u] = t
			heap.Push(&q, event{at: t, user: u})
		}
		// Spontaneous adopters appear during the cascade window. Their
		// count scales with a heavy-tailed per-action popularity: a hit
		// movie or a famous group draws many independent first adopters,
		// which is why large real propagations come with large initiator
		// sets (the property the spread-prediction protocol relies on).
		popularity := math.Exp(rng.NormFloat64() * 1.3)
		nSpont := poisson(cfg.SpontaneousPerAction*popularity, rng)
		for i := 0; i < nSpont; i++ {
			u := sampleUser()
			if _, ok := activated[u]; ok {
				continue
			}
			t := start + rng.Float64()*cfg.MeanDelay*10
			activated[u] = t
			heap.Push(&q, event{at: t, user: u})
		}
		for q.Len() > 0 {
			ev := heap.Pop(&q).(event)
			if activated[ev.user] != ev.at {
				continue // superseded by an earlier activation
			}
			out := g.Out(ev.user)
			probs := truth.Probs.OutRow(ev.user)
			for i, u := range out {
				// One shot per neighbor; a neighbor that already activated
				// or has a pending earlier activation is left alone.
				if _, ok := activated[u]; ok {
					continue
				}
				if truth.ThresholdUser[u] {
					// LT-style: accumulate exposure, adopt on crossing a
					// per-action uniform threshold.
					exposure[u] += probs[i]
					th, ok := threshold[u]
					if !ok {
						th = rng.Float64()
						threshold[u] = th
					}
					if exposure[u] < th {
						continue
					}
				} else if rng.Float64() >= probs[i] {
					// IC-style: independent attempt.
					continue
				}
				delay := truth.MeanDelay[graph.Edge{From: ev.user, To: u}]
				// Heavy-tailed (lognormal) response times: most adoptions
				// happen well before the mean delay, with a long tail —
				// the regime the time-aware credit rule (Eq. 9) expects,
				// and what platform response times actually look like.
				t := ev.at + delay*math.Exp(rng.NormFloat64()*1.8-1.2)
				activated[u] = t
				heap.Push(&q, event{at: t, user: u})
			}
		}
		for u, t := range activated {
			if err := b.Add(u, actionlog.ActionID(a), t); err != nil {
				panic(err)
			}
		}
	}
	return b.Build()
}

// poisson draws from a Poisson distribution by Knuth's method; mean is
// small (a handful of spontaneous adopters) so the naive loop is fine.
func poisson(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
