package datagen

// The four presets mirror the shape of the paper's Table 1 datasets at
// laptop scale (see DESIGN.md §4): Flixster-like graphs are sparser with
// mutual friendship ties; Flickr-like graphs are denser (group-follow
// style) with larger average degree. "Small" presets correspond to the
// single-community samples used for the model-comparison experiments;
// "Large" presets to the scalability experiments.

// FlixsterSmall mirrors Flixster_Small (13K nodes, avg degree 14.8, 25K
// propagations) at reduced scale.
func FlixsterSmall() Config {
	return Config{
		Name:                 "flixster-small",
		NumUsers:             3000,
		OutDegree:            7,
		Reciprocity:          0.8,
		NumActions:           2200,
		MeanInfluence:        0.055,
		MeanDelay:            12,
		SpontaneousPerAction: 5,
		MaxInitiators:        4,
		ActivitySkew:         1.2,
		ThresholdFraction:    0.25,
		Seed:                 1,
	}
}

// FlickrSmall mirrors Flickr_Small (14.8K nodes, avg degree 79, 28.5K
// propagations) at reduced scale: denser graph, weaker per-edge influence.
func FlickrSmall() Config {
	return Config{
		Name:                 "flickr-small",
		NumUsers:             3500,
		OutDegree:            16,
		Reciprocity:          0.35,
		NumActions:           2500,
		MeanInfluence:        0.025,
		MeanDelay:            8,
		SpontaneousPerAction: 4,
		MaxInitiators:        3,
		ActivitySkew:         1.4,
		ThresholdFraction:    0.75,
		Seed:                 2,
	}
}

// FlixsterLarge mirrors Flixster_Large (1M nodes, 28M edges, 8.2M tuples)
// at reduced scale for the scalability experiments.
func FlixsterLarge() Config {
	return Config{
		Name:                 "flixster-large",
		NumUsers:             40000,
		OutDegree:            9,
		Reciprocity:          0.8,
		NumActions:           9000,
		MeanInfluence:        0.035,
		MeanDelay:            12,
		SpontaneousPerAction: 5,
		MaxInitiators:        4,
		ActivitySkew:         1.2,
		ThresholdFraction:    0.25,
		Seed:                 3,
	}
}

// FlickrLarge mirrors Flickr_Large (1.32M nodes, 81M edges, 36M tuples)
// at reduced scale.
func FlickrLarge() Config {
	return Config{
		Name:                 "flickr-large",
		NumUsers:             50000,
		OutDegree:            18,
		Reciprocity:          0.35,
		NumActions:           12000,
		MeanInfluence:        0.02,
		MeanDelay:            8,
		SpontaneousPerAction: 4,
		MaxInitiators:        3,
		ActivitySkew:         1.4,
		ThresholdFraction:    0.75,
		Seed:                 4,
	}
}

// Presets returns all four paper-shaped configurations.
func Presets() []Config {
	return []Config{FlixsterSmall(), FlickrSmall(), FlixsterLarge(), FlickrLarge()}
}

// Names returns the preset names in declaration order, for help text and
// unknown-preset error messages.
func Names() []string {
	ps := Presets()
	names := make([]string, len(ps))
	for i, c := range ps {
		names[i] = c.Name
	}
	return names
}

// PresetByName returns the configuration with the given Name and whether
// it exists.
func PresetByName(name string) (Config, bool) {
	for _, c := range Presets() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}
