package datagen

import (
	"math/rand/v2"
	"testing"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

func testConfig(seed uint64) Config {
	return Config{
		Name: "test", NumUsers: 200, OutDegree: 4, Reciprocity: 0.5,
		NumActions: 60, MeanInfluence: 0.1, MeanDelay: 5,
		SpontaneousPerAction: 1, Seed: seed,
	}
}

func TestGenerateGraphShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	g := GenerateGraph(500, 5, 0.5, rng)
	if g.NumNodes() != 500 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() < 500*5/2 {
		t.Fatalf("suspiciously few edges: %d", g.NumEdges())
	}
	// Preferential attachment must produce a skewed degree distribution:
	// the max degree should far exceed the average.
	maxDeg, sum := 0, 0
	for u := int32(0); u < 500; u++ {
		d := g.Degree(u)
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sum) / 500
	if float64(maxDeg) < 3*avg {
		t.Fatalf("degree distribution not skewed: max %d avg %.1f", maxDeg, avg)
	}
}

func TestGenerateGraphDeterministic(t *testing.T) {
	g1 := GenerateGraph(100, 3, 0.5, rand.New(rand.NewPCG(7, 7)))
	g2 := GenerateGraph(100, 3, 0.5, rand.New(rand.NewPCG(7, 7)))
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed, different edge count: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	e1, e2 := g1.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestGenerateDatasetBasics(t *testing.T) {
	ds := Generate(testConfig(3))
	if ds.Graph.NumNodes() != 200 {
		t.Fatalf("nodes = %d", ds.Graph.NumNodes())
	}
	if ds.Log.NumActions() != 60 {
		t.Fatalf("actions = %d", ds.Log.NumActions())
	}
	if ds.Log.NumTuples() < 60 {
		t.Fatalf("tuples = %d, want at least one per action", ds.Log.NumTuples())
	}
	if ds.Truth == nil || ds.Truth.Probs == nil {
		t.Fatal("missing ground truth")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1 := Generate(testConfig(9))
	d2 := Generate(testConfig(9))
	if d1.Log.NumTuples() != d2.Log.NumTuples() {
		t.Fatalf("same seed, different tuples: %d vs %d", d1.Log.NumTuples(), d2.Log.NumTuples())
	}
}

func TestGeneratedPropagationsRespectGraphAndTime(t *testing.T) {
	ds := Generate(testConfig(5))
	// Every non-spontaneous activation chain is realizable: check that
	// propagation DAG construction works and every propagation has at
	// least one initiator.
	for a := 0; a < ds.Log.NumActions(); a++ {
		p := actionlog.BuildPropagation(ds.Log, ds.Graph, actionlog.ActionID(a))
		if p.Size() == 0 {
			t.Fatalf("action %d empty", a)
		}
		if len(p.Initiators()) == 0 {
			t.Fatalf("action %d has no initiators", a)
		}
		for i := range p.Users {
			for _, j := range p.Parents[i] {
				if !ds.Graph.HasEdge(p.Users[j], p.Users[i]) {
					t.Fatalf("parent edge not in social graph")
				}
				if p.Times[j] >= p.Times[i] {
					t.Fatalf("parent not strictly earlier")
				}
			}
		}
	}
}

func TestGroundTruthProbsInRange(t *testing.T) {
	ds := Generate(testConfig(11))
	g := ds.Graph
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		for i, v := range g.Out(u) {
			_ = i
			p := ds.Truth.Probs.Get(u, v)
			if p < 0 || p > 0.9+1e-12 {
				t.Fatalf("truth p(%d,%d) = %g out of range", u, v, p)
			}
		}
	}
	for u, infl := range ds.Truth.Influenceability {
		if infl < 0 || infl > 1 {
			t.Fatalf("influenceability[%d] = %g", u, infl)
		}
	}
}

func TestHigherInfluenceMeansMoreTuples(t *testing.T) {
	lo := testConfig(13)
	lo.MeanInfluence = 0.02
	hi := testConfig(13)
	hi.MeanInfluence = 0.3
	if Generate(lo).Log.NumTuples() >= Generate(hi).Log.NumTuples() {
		t.Fatal("raising influence did not grow the log")
	}
}

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) != 4 {
		t.Fatalf("presets = %d, want 4", len(ps))
	}
	names := map[string]bool{}
	for _, c := range ps {
		if c.NumUsers <= 0 || c.NumActions <= 0 {
			t.Fatalf("preset %s has zero scale", c.Name)
		}
		names[c.Name] = true
	}
	for _, want := range []string{"flixster-small", "flickr-small", "flixster-large", "flickr-large"} {
		if !names[want] {
			t.Fatalf("missing preset %s", want)
		}
	}
	if _, ok := PresetByName("flixster-small"); !ok {
		t.Fatal("PresetByName failed")
	}
	if _, ok := PresetByName("nope"); ok {
		t.Fatal("PresetByName found a ghost")
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 17))
	if got := poisson(0, rng); got != 0 {
		t.Fatalf("poisson(0) = %d", got)
	}
	sum := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		sum += poisson(2.0, rng)
	}
	mean := float64(sum) / trials
	if mean < 1.8 || mean > 2.2 {
		t.Fatalf("poisson mean = %g, want ~2", mean)
	}
}

func TestActivitySkewConcentratesInitiators(t *testing.T) {
	ds := Generate(testConfig(21))
	counts := make(map[graph.NodeID]int)
	for a := 0; a < ds.Log.NumActions(); a++ {
		p := actionlog.BuildPropagation(ds.Log, ds.Graph, actionlog.ActionID(a))
		for _, u := range p.Initiators() {
			counts[u]++
		}
	}
	// With a skewed activity distribution some users initiate repeatedly.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 2 {
		t.Fatal("no repeat initiators despite skewed activity")
	}
}
