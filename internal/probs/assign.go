// Package probs implements every edge-probability assignment method the
// paper evaluates in Section 3 and Section 6: the ad-hoc assignments
// (uniform UN, trivalency TV, weighted cascade WC), the EM-based learner of
// Saito et al. for the IC model, the frequency-based weight learner for the
// LT model, and the perturbation used to test noise robustness (PT).
package probs

import (
	"math/rand/v2"

	"credist/internal/cascade"
	"credist/internal/graph"
)

// Uniform assigns the same probability p to every edge (the paper's UN
// method, with p = 0.01).
func Uniform(g *graph.Graph, p float64) *cascade.Weights {
	w := cascade.NewWeights(g)
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Out(u) {
			if err := w.Set(u, v, p); err != nil {
				panic(err) // p validated by caller; edges exist by construction
			}
		}
	}
	return w
}

// TrivalencyValues is the classic probability palette of the TV method.
var TrivalencyValues = [3]float64{0.1, 0.01, 0.001}

// Trivalency assigns each edge a probability drawn uniformly at random
// from TrivalencyValues (the paper's TV method).
func Trivalency(g *graph.Graph, rng *rand.Rand) *cascade.Weights {
	w := cascade.NewWeights(g)
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Out(u) {
			p := TrivalencyValues[rng.IntN(len(TrivalencyValues))]
			if err := w.Set(u, v, p); err != nil {
				panic(err)
			}
		}
	}
	return w
}

// WeightedCascade assigns p(v,u) = 1/in-degree(u) (the paper's WC method).
func WeightedCascade(g *graph.Graph) *cascade.Weights {
	w := cascade.NewWeights(g)
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		din := g.InDegree(u)
		if din == 0 {
			continue
		}
		p := 1.0 / float64(din)
		for _, v := range g.In(u) {
			if err := w.Set(v, u, p); err != nil {
				panic(err)
			}
		}
	}
	return w
}

// Perturb returns a copy of w with every edge probability perturbed by a
// percentage drawn uniformly from [-noise, +noise] (paper: noise = 0.20),
// clamped to [0,1]. This is the paper's PT method used to assess robustness
// of seed selection to learning error.
func Perturb(w *cascade.Weights, noise float64, rng *rand.Rand) *cascade.Weights {
	g := w.Graph()
	out := cascade.NewWeights(g)
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		row := g.Out(u)
		probs := w.OutRow(u)
		for i, v := range row {
			p := probs[i]
			factor := 1 + (rng.Float64()*2-1)*noise
			p *= factor
			if p < 0 {
				p = 0
			}
			if p > 1 {
				p = 1
			}
			if err := out.Set(u, v, p); err != nil {
				panic(err)
			}
		}
	}
	return out
}
