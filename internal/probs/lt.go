package probs

import (
	"credist/internal/actionlog"
	"credist/internal/cascade"
	"credist/internal/graph"
)

// LearnLTWeights learns Linear Threshold edge weights from the training
// log as the paper describes (Section 6, "Methods Compared", following
// Goyal et al., WSDM 2010): the weight of edge (v,u) is A_{v2u}/N, where
// A_{v2u} is the number of actions that propagated from v to u (v a
// neighbor of u acting strictly earlier) and N is a per-node normalizer
// keeping the incoming weights of u at most 1. We take
// N = max(A_u, sum_v A_{v2u}): weights are attributable-action fractions
// of u's activity, scaled down only when multi-parent propagations push
// the raw sum past the LT model's cap.
//
// Nodes with no incoming propagation evidence keep all-zero in-weights.
func LearnLTWeights(g *graph.Graph, train *actionlog.Log) *cascade.Weights {
	counts := make(map[graph.Edge]int)
	for a := 0; a < train.NumActions(); a++ {
		prop := actionlog.BuildPropagation(train, g, actionlog.ActionID(a))
		for i, u := range prop.Users {
			for _, j := range prop.Parents[i] {
				v := prop.Users[j]
				counts[graph.Edge{From: v, To: u}]++
			}
		}
	}

	// Per-node normalizer.
	totals := make([]float64, g.NumNodes())
	for e, c := range counts {
		totals[e.To] += float64(c)
	}

	w := cascade.NewWeights(g)
	for e, c := range counts {
		n := totals[e.To]
		if au := float64(train.ActionCount(e.To)); au > n {
			n = au
		}
		if n <= 0 {
			continue
		}
		if err := w.Set(e.From, e.To, float64(c)/n); err != nil {
			panic(err) // edges come from g by construction
		}
	}
	return w
}

// PropagationCounts returns A_{v2u} for every edge with at least one
// observed propagation. Exposed for tests and diagnostics.
func PropagationCounts(g *graph.Graph, train *actionlog.Log) map[graph.Edge]int {
	counts := make(map[graph.Edge]int)
	for a := 0; a < train.NumActions(); a++ {
		prop := actionlog.BuildPropagation(train, g, actionlog.ActionID(a))
		for i := range prop.Users {
			for _, j := range prop.Parents[i] {
				counts[graph.Edge{From: prop.Users[j], To: prop.Users[i]}]++
			}
		}
	}
	return counts
}
