package probs

import (
	"math"
	"testing"

	"credist/internal/actionlog"
	"credist/internal/graph"
)

func TestGoyalBernoulli(t *testing.T) {
	// v=0 performs 10 actions; 4 propagate to u=1: p = 4/10.
	g := chainGraph(t, 2)
	log := twoUserLog(t, 10, 4)
	w := LearnGoyal(g, log, Bernoulli)
	if got := w.Get(0, 1); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("Bernoulli p = %g, want 0.4", got)
	}
}

func TestGoyalJaccard(t *testing.T) {
	// A_v = 10, A_u = 4, both = 4 (u only copies): |A_v ∪ A_u| = 10.
	// p = 4/10.
	g := chainGraph(t, 2)
	log := twoUserLog(t, 10, 4)
	w := LearnGoyal(g, log, Jaccard)
	if got := w.Get(0, 1); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("Jaccard p = %g, want 0.4", got)
	}
}

func TestGoyalJaccardWithDisjointActions(t *testing.T) {
	// u also performs 3 private actions: union = 10 + 3, p = 4/13.
	g := chainGraph(t, 2)
	lb := actionlog.NewBuilder(2)
	for a := 0; a < 10; a++ {
		_ = lb.Add(0, actionlog.ActionID(a), float64(10*a))
		if a < 4 {
			_ = lb.Add(1, actionlog.ActionID(a), float64(10*a+1))
		}
	}
	for a := 10; a < 13; a++ {
		_ = lb.Add(1, actionlog.ActionID(a), float64(10*a))
	}
	w := LearnGoyal(g, lb.Build(), Jaccard)
	if got := w.Get(0, 1); math.Abs(got-4.0/13.0) > 1e-12 {
		t.Fatalf("Jaccard p = %g, want 4/13", got)
	}
}

func TestGoyalPartialCredits(t *testing.T) {
	// u=2 has two influencers 0 and 1 on one action; each gets credit 1/2.
	// Node 0 performs 2 actions total: p(0,2) = 0.5/2 = 0.25.
	b := graph.NewBuilder(3)
	_ = b.AddEdge(0, 2)
	_ = b.AddEdge(1, 2)
	g := b.Build()
	lb := actionlog.NewBuilder(3)
	_ = lb.Add(0, 0, 0)
	_ = lb.Add(1, 0, 0)
	_ = lb.Add(2, 0, 1)
	_ = lb.Add(0, 1, 0) // second action by 0, no propagation
	w := LearnGoyal(g, lb.Build(), PartialCredits)
	if got := w.Get(0, 2); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("PartialCredits p = %g, want 0.25", got)
	}
	if got := w.Get(1, 2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("PartialCredits p(1,2) = %g, want 0.5", got)
	}
}

func TestGoyalProbabilitiesBounded(t *testing.T) {
	g := chainGraph(t, 2)
	log := twoUserLog(t, 3, 3) // every action propagates: p = 1
	for _, model := range []GoyalModel{Bernoulli, Jaccard, PartialCredits} {
		w := LearnGoyal(g, log, model)
		if p := w.Get(0, 1); p < 0 || p > 1 {
			t.Fatalf("%v p = %g out of range", model, p)
		}
	}
}

func TestGoyalModelString(t *testing.T) {
	if Bernoulli.String() != "Bernoulli" || Jaccard.String() != "Jaccard" ||
		PartialCredits.String() != "PartialCredits" || GoyalModel(9).String() != "unknown" {
		t.Fatal("GoyalModel.String wrong")
	}
}
