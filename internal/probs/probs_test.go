package probs

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"credist/internal/actionlog"
	"credist/internal/datagen"
	"credist/internal/graph"
)

func chainGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestUniform(t *testing.T) {
	g := chainGraph(t, 4)
	w := Uniform(g, 0.01)
	for u := int32(0); u < 3; u++ {
		if got := w.Get(u, u+1); got != 0.01 {
			t.Fatalf("Get(%d,%d) = %g, want 0.01", u, u+1, got)
		}
	}
}

func TestTrivalencyValuesOnly(t *testing.T) {
	g := chainGraph(t, 50)
	rng := rand.New(rand.NewPCG(1, 1))
	w := Trivalency(g, rng)
	valid := map[float64]bool{0.1: true, 0.01: true, 0.001: true}
	for u := int32(0); u < 49; u++ {
		if p := w.Get(u, u+1); !valid[p] {
			t.Fatalf("TV probability %g not in palette", p)
		}
	}
}

func TestWeightedCascade(t *testing.T) {
	b := graph.NewBuilder(4)
	// Node 3 has in-degree 3.
	for i := int32(0); i < 3; i++ {
		_ = b.AddEdge(i, 3)
	}
	g := b.Build()
	w := WeightedCascade(g)
	for i := int32(0); i < 3; i++ {
		if got := w.Get(i, 3); math.Abs(got-1.0/3) > 1e-12 {
			t.Fatalf("WC prob = %g, want 1/3", got)
		}
	}
}

func TestPerturbBoundsAndScale(t *testing.T) {
	g := chainGraph(t, 100)
	base := Uniform(g, 0.5)
	rng := rand.New(rand.NewPCG(3, 3))
	pt := Perturb(base, 0.2, rng)
	for u := int32(0); u < 99; u++ {
		p := pt.Get(u, u+1)
		if p < 0.4-1e-12 || p > 0.6+1e-12 {
			t.Fatalf("perturbed p = %g outside [0.4,0.6]", p)
		}
	}
}

func TestPerturbClamps(t *testing.T) {
	g := chainGraph(t, 10)
	base := Uniform(g, 1.0)
	rng := rand.New(rand.NewPCG(4, 4))
	pt := Perturb(base, 0.5, rng)
	for u := int32(0); u < 9; u++ {
		if p := pt.Get(u, u+1); p > 1 {
			t.Fatalf("perturbed p = %g > 1", p)
		}
	}
}

// twoUserLog builds a log where user 0 performs nTotal actions and user 1
// copies the first nCopied of them one time-unit later.
func twoUserLog(t *testing.T, nTotal, nCopied int) *actionlog.Log {
	t.Helper()
	lb := actionlog.NewBuilder(2)
	for a := 0; a < nTotal; a++ {
		if err := lb.Add(0, actionlog.ActionID(a), float64(10*a)); err != nil {
			t.Fatal(err)
		}
		if a < nCopied {
			if err := lb.Add(1, actionlog.ActionID(a), float64(10*a+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return lb.Build()
}

func TestEMSingleEdgeFrequency(t *testing.T) {
	// One edge 0->1, user 1 copies 3 of user 0's 10 actions and performs
	// nothing else: the MLE influence probability is 3/10 and EM has a
	// single parent per activation, so it converges there exactly.
	g := chainGraph(t, 2)
	log := twoUserLog(t, 10, 3)
	w := LearnEMIC(g, log, EMOptions{})
	if got := w.Get(0, 1); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("EM p = %g, want 0.3", got)
	}
}

func TestEMProbabilitiesInRange(t *testing.T) {
	f := func(seed uint64) bool {
		ds := datagen.Generate(datagen.Config{
			Name: "t", NumUsers: 60, OutDegree: 3, Reciprocity: 0.5,
			NumActions: 40, MeanInfluence: 0.2, SpontaneousPerAction: 1,
			Seed: seed,
		})
		w := LearnEMIC(ds.Graph, ds.Log, EMOptions{MaxIter: 5})
		for u := int32(0); int(u) < ds.Graph.NumNodes(); u++ {
			for _, v := range ds.Graph.Out(u) {
				p := w.Get(u, v)
				if p < 0 || p > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestEMRecoversHighVsLowInfluence(t *testing.T) {
	// Ground truth: edge 0->1 has p=0.8, edge 0->2 has p=0.05. EM should
	// rank them correctly from simulated traces.
	b := graph.NewBuilder(3)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(0, 2)
	g := b.Build()
	rng := rand.New(rand.NewPCG(8, 8))
	lb := actionlog.NewBuilder(3)
	for a := 0; a < 300; a++ {
		_ = lb.Add(0, actionlog.ActionID(a), 0)
		if rng.Float64() < 0.8 {
			_ = lb.Add(1, actionlog.ActionID(a), 1)
		}
		if rng.Float64() < 0.05 {
			_ = lb.Add(2, actionlog.ActionID(a), 1)
		}
	}
	w := LearnEMIC(g, lb.Build(), EMOptions{})
	p1, p2 := w.Get(0, 1), w.Get(0, 2)
	if math.Abs(p1-0.8) > 0.1 || math.Abs(p2-0.05) > 0.05 {
		t.Fatalf("EM learned p(0,1)=%g p(0,2)=%g, want ~0.8 and ~0.05", p1, p2)
	}
}

func TestEMSparseSupportPathology(t *testing.T) {
	// The paper's user-168766 pathology: a user performing a single action
	// that all its followers copy gets probability 1 on those edges.
	b := graph.NewBuilder(4)
	for i := int32(1); i < 4; i++ {
		_ = b.AddEdge(0, i)
	}
	g := b.Build()
	lb := actionlog.NewBuilder(4)
	_ = lb.Add(0, 0, 0)
	for i := int32(1); i < 4; i++ {
		_ = lb.Add(graph.NodeID(i), 0, 1)
	}
	w := LearnEMIC(g, lb.Build(), EMOptions{})
	for i := int32(1); i < 4; i++ {
		if got := w.Get(0, i); math.Abs(got-1.0) > 1e-9 {
			t.Fatalf("single-support edge p = %g, want 1.0", got)
		}
	}
}

func TestLTWeightsNormalized(t *testing.T) {
	f := func(seed uint64) bool {
		ds := datagen.Generate(datagen.Config{
			Name: "t", NumUsers: 50, OutDegree: 3, Reciprocity: 0.5,
			NumActions: 30, MeanInfluence: 0.25, SpontaneousPerAction: 1,
			Seed: seed,
		})
		w := LearnLTWeights(ds.Graph, ds.Log)
		for u := int32(0); int(u) < ds.Graph.NumNodes(); u++ {
			if s := w.InSum(u); s > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestLTWeightsProportionalToCounts(t *testing.T) {
	// User 2's actions: 6 propagate from 0, 2 propagate from 1.
	b := graph.NewBuilder(3)
	_ = b.AddEdge(0, 2)
	_ = b.AddEdge(1, 2)
	g := b.Build()
	lb := actionlog.NewBuilder(3)
	a := 0
	for i := 0; i < 6; i++ {
		_ = lb.Add(0, actionlog.ActionID(a), 0)
		_ = lb.Add(2, actionlog.ActionID(a), 1)
		a++
	}
	for i := 0; i < 2; i++ {
		_ = lb.Add(1, actionlog.ActionID(a), 0)
		_ = lb.Add(2, actionlog.ActionID(a), 1)
		a++
	}
	w := LearnLTWeights(g, lb.Build())
	if got := w.Get(0, 2); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("w(0,2) = %g, want 0.75", got)
	}
	if got := w.Get(1, 2); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("w(1,2) = %g, want 0.25", got)
	}
}

func TestPropagationCounts(t *testing.T) {
	g := chainGraph(t, 3)
	log := twoUserLog(t, 5, 4)
	counts := PropagationCounts(g, log)
	if got := counts[graph.Edge{From: 0, To: 1}]; got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
}
