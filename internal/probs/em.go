package probs

import (
	"credist/internal/actionlog"
	"credist/internal/cascade"
	"credist/internal/graph"
)

// EMOptions configures the EM probability learner.
type EMOptions struct {
	// MaxIter bounds EM iterations (default 20).
	MaxIter int
	// Tol stops iteration once the largest per-edge probability change
	// falls below it (default 1e-4).
	Tol float64
}

func (o EMOptions) withDefaults() EMOptions {
	if o.MaxIter == 0 {
		o.MaxIter = 20
	}
	if o.Tol == 0 {
		o.Tol = 1e-4
	}
	return o
}

type emEdge struct {
	from, to graph.NodeID
	succ     int     // |S+|: actions where from acted strictly before to
	cooc     int     // actions both performed (any order)
	denom    float64 // |S+| + |S-| = succ + (A_from - cooc)
	p        float64
	num      float64 // E-step accumulator
}

// emCase is one likelihood term: an activation of a user with at least one
// potential influencer in some action's propagation graph.
type emCase struct {
	parents []*emEdge
}

// LearnEMIC learns IC edge probabilities from the training log using the
// EM method of Saito et al. (KES 2008), adapted as the paper describes:
// time is continuous and every neighbor that activated strictly earlier is
// a potential influencer.
//
// For edge (v,u): success cases S+ are actions where v is a potential
// influencer of u; failure cases S- are actions v performed that u never
// performed. The E-step attributes each activation of u fractionally to
// its potential influencers in proportion to their current probabilities;
// the M-step re-estimates p(v,u) as attributed successes over |S+|+|S-|.
func LearnEMIC(g *graph.Graph, train *actionlog.Log, opts EMOptions) *cascade.Weights {
	opts = opts.withDefaults()
	edges := make(map[graph.Edge]*emEdge)
	var cases []emCase

	for a := 0; a < train.NumActions(); a++ {
		prop := actionlog.BuildPropagation(train, g, actionlog.ActionID(a))
		inAction := prop // pos lookup via Index
		for i, u := range prop.Users {
			// Record co-occurrence for every in-neighbor that performed a,
			// and successes/cases for those that performed it earlier.
			var caseEdges []*emEdge
			for _, v := range g.In(u) {
				j := inAction.Index(v)
				if j < 0 {
					continue
				}
				key := graph.Edge{From: v, To: u}
				e := edges[key]
				if e == nil {
					e = &emEdge{from: v, to: u}
					edges[key] = e
				}
				e.cooc++
				if prop.Times[j] < prop.Times[i] {
					e.succ++
					caseEdges = append(caseEdges, e)
				}
			}
			if len(caseEdges) > 0 {
				cases = append(cases, emCase{parents: caseEdges})
			}
		}
	}

	// Denominators and frequency initialization.
	for _, e := range edges {
		fail := train.ActionCount(e.from) - e.cooc
		if fail < 0 {
			fail = 0
		}
		e.denom = float64(e.succ + fail)
		if e.denom > 0 {
			e.p = float64(e.succ) / e.denom
		}
	}

	for iter := 0; iter < opts.MaxIter; iter++ {
		for _, e := range edges {
			e.num = 0
		}
		for _, c := range cases {
			q := 1.0
			for _, e := range c.parents {
				q *= 1 - e.p
			}
			q = 1 - q // probability u activated under current parameters
			if q <= 0 {
				continue
			}
			for _, e := range c.parents {
				e.num += e.p / q
			}
		}
		maxDelta := 0.0
		for _, e := range edges {
			if e.denom == 0 {
				continue
			}
			np := e.num / e.denom
			if np > 1 {
				np = 1
			}
			d := np - e.p
			if d < 0 {
				d = -d
			}
			if d > maxDelta {
				maxDelta = d
			}
			e.p = np
		}
		if maxDelta < opts.Tol {
			break
		}
	}

	w := cascade.NewWeights(g)
	for key, e := range edges {
		if e.p > 0 {
			if err := w.Set(key.From, key.To, e.p); err != nil {
				panic(err) // edges come from g by construction
			}
		}
	}
	return w
}
