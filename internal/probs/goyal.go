package probs

import (
	"credist/internal/actionlog"
	"credist/internal/cascade"
	"credist/internal/graph"
)

// This file implements the influence-probability models of Goyal, Bonchi &
// Lakshmanan, "Learning influence probabilities in social networks" (WSDM
// 2010) — reference [7] of the paper, whose ideas (time-decayed influence,
// per-user influenceability) the credit-distribution model builds on. The
// static models here give additional trace-based baselines for the IC
// model beyond Saito et al.'s EM, and are exercised by the method-ablation
// benchmarks.

// GoyalModel selects one of the static influence models of WSDM 2010.
type GoyalModel int

const (
	// Bernoulli estimates p(v,u) = A_{v2u} / A_v: the fraction of v's
	// actions that propagated to u.
	Bernoulli GoyalModel = iota
	// Jaccard estimates p(v,u) = A_{v2u} / A_{v|u}, normalizing by the
	// number of actions either endpoint performed.
	Jaccard
	// PartialCredits splits each activation's credit equally among the
	// potential influencers before counting: p(v,u) =
	// (sum over propagated actions of 1/d_in(u,a)) / A_v.
	PartialCredits
)

// String returns the model's conventional name.
func (m GoyalModel) String() string {
	switch m {
	case Bernoulli:
		return "Bernoulli"
	case Jaccard:
		return "Jaccard"
	case PartialCredits:
		return "PartialCredits"
	default:
		return "unknown"
	}
}

// LearnGoyal learns static influence probabilities from the training log
// under the chosen model. Edges with no propagation evidence get
// probability zero.
func LearnGoyal(g *graph.Graph, train *actionlog.Log, model GoyalModel) *cascade.Weights {
	// Per-edge accumulators: propagated count (possibly fractional under
	// partial credits) and co-action count for Jaccard's union.
	type acc struct {
		prop float64
		both int
	}
	edges := make(map[graph.Edge]*acc)
	for a := 0; a < train.NumActions(); a++ {
		p := actionlog.BuildPropagation(train, g, actionlog.ActionID(a))
		for i, u := range p.Users {
			for _, v := range g.In(u) {
				j := p.Index(v)
				if j < 0 {
					continue
				}
				e := graph.Edge{From: v, To: u}
				s := edges[e]
				if s == nil {
					s = &acc{}
					edges[e] = s
				}
				s.both++
				if p.Times[j] < p.Times[i] {
					if model == PartialCredits {
						s.prop += 1.0 / float64(len(p.Parents[i]))
					} else {
						s.prop++
					}
				}
			}
		}
	}

	w := cascade.NewWeights(g)
	for e, s := range edges {
		if s.prop <= 0 {
			continue
		}
		var denom float64
		switch model {
		case Bernoulli, PartialCredits:
			denom = float64(train.ActionCount(e.From))
		case Jaccard:
			// |A_v ∪ A_u| = A_v + A_u - both.
			denom = float64(train.ActionCount(e.From)+train.ActionCount(e.To)) - float64(s.both)
		}
		if denom <= 0 {
			continue
		}
		p := s.prop / denom
		if p > 1 {
			p = 1
		}
		if err := w.Set(e.From, e.To, p); err != nil {
			panic(err) // edges come from g by construction
		}
	}
	return w
}
