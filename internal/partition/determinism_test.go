package partition

// The partition-count determinism wall. The whole point of the
// scatter-gather design is that partitioning is invisible in the numbers:
// seeds, gains, and spreads must be bit-identical — not approximately
// equal — at every partition count, worker count, and row-store backend.
// These tests pin that matrix, plus ingest and checkpoint-restart parity
// at partition granularity.

import (
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"credist/internal/actionlog"
	"credist/internal/celf"
	"credist/internal/core"
	"credist/internal/graph"
	"credist/internal/seedsel"
)

// randomInstance mirrors the core test generator: a random social graph
// and action log with integer timestamps so ties occur.
func randomInstance(rng *rand.Rand, nUsers, nActions int) (*graph.Graph, *actionlog.Log) {
	b := graph.NewBuilder(nUsers)
	for u := 0; u < nUsers; u++ {
		deg := 1 + rng.IntN(4)
		for d := 0; d < deg; d++ {
			v := graph.NodeID(rng.IntN(nUsers))
			if v != graph.NodeID(u) {
				_ = b.AddEdge(graph.NodeID(u), v)
			}
		}
	}
	g := b.Build()
	lb := actionlog.NewBuilder(nUsers)
	for a := 0; a < nActions; a++ {
		size := 2 + rng.IntN(nUsers-1)
		perm := rng.Perm(nUsers)
		for i := 0; i < size; i++ {
			_ = lb.Add(graph.NodeID(perm[i]), actionlog.ActionID(a), float64(rng.IntN(8)))
		}
	}
	return g, lb.Build()
}

// slicePartitions splits the (seed-free) full engine into n heap
// partitions.
func slicePartitions(t *testing.T, full *core.Engine, n int) []*core.Engine {
	t.Helper()
	ranges := SplitRanges(full.NumNodes(), n)
	parts := make([]*core.Engine, len(ranges))
	for i, r := range ranges {
		p, err := full.Slice(r.Lo, r.Hi)
		if err != nil {
			t.Fatalf("Slice%v: %v", r, err)
		}
		parts[i] = p
	}
	return parts
}

// mmapPartitions writes one snapshot slice per range and reopens each
// memory-mapped. Cleanup of the mappings is registered on t.
func mmapPartitions(t *testing.T, full *core.Engine, lin core.Lineage, n int) []*core.Engine {
	t.Helper()
	dir := t.TempDir()
	ranges := SplitRanges(full.NumNodes(), n)
	parts := make([]*core.Engine, len(ranges))
	for i, r := range ranges {
		path := filepath.Join(dir, fmt.Sprintf("slice-%d-of-%d.bin", i, n))
		f, err := os.Create(path)
		if err != nil {
			t.Fatalf("create %s: %v", path, err)
		}
		if err := full.WriteSnapshotSlice(f, lin, nil, r.Lo, r.Hi); err != nil {
			t.Fatalf("WriteSnapshotSlice%v: %v", r, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		eng, _, _, ms, err := core.OpenSnapshotMapped(path)
		if err != nil {
			t.Fatalf("OpenSnapshotMapped(%s): %v", path, err)
		}
		t.Cleanup(func() { ms.Close() })
		parts[i] = eng
	}
	return parts
}

// TestPartitionCountDeterminism is the headline wall: for partition
// counts {1, 2, 4, 7} x workers {1, GOMAXPROCS} x row stores
// {heap, mmap}, the coordinator's CELF seeds and gains must be
// bit-identical to the single-engine selection, batched gains must be
// bit-identical to single-engine Gain, and the telescoped spread must be
// bit-identical across every cell of the matrix.
func TestPartitionCountDeterminism(t *testing.T) {
	rng := rand.New(rand.NewPCG(2026, 8))
	g, log := randomInstance(rng, 80, 50)
	credit := core.LearnTimeAware(g, log)
	opts := core.Options{Lambda: 0.001, Credit: credit}
	lin := core.DatasetLineage("determinism-wall", g, log)

	full := core.NewEngine(g, log, opts)
	full.Compact()

	const k = 8
	ref := seedsel.CELF(full.Clone(), k)
	if len(ref.Seeds) != k {
		t.Fatalf("reference selection found %d seeds, want %d", len(ref.Seeds), k)
	}
	refGains := make([]float64, g.NumNodes())
	allUsers := make([]graph.NodeID, g.NumNodes())
	for u := range refGains {
		allUsers[u] = graph.NodeID(u)
		refGains[u] = full.Gain(graph.NodeID(u))
	}
	base := ref.Seeds[:3]
	refBased := func() []float64 {
		e := full.Clone()
		for _, s := range base {
			e.Add(s)
		}
		out := make([]float64, g.NumNodes())
		for u := range out {
			out[u] = e.Gain(graph.NodeID(u))
		}
		return out
	}()

	var refSpread float64
	var haveSpread bool
	for _, nparts := range []int{1, 2, 4, 7} {
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			for _, backend := range []string{"heap", "mmap"} {
				name := fmt.Sprintf("parts=%d/workers=%d/%s", nparts, workers, backend)
				var parts []*core.Engine
				if backend == "heap" {
					parts = slicePartitions(t, full, nparts)
				} else {
					parts = mmapPartitions(t, full, lin, nparts)
				}
				coord, err := New(parts, workers)
				if err != nil {
					t.Fatalf("%s: New: %v", name, err)
				}
				if got := coord.NumPartitions(); got != nparts {
					t.Fatalf("%s: %d partitions", name, got)
				}

				res := coord.NewSelection(celf.Options{Workers: workers}).Grow(k)
				for i := range ref.Seeds {
					if res.Seeds[i] != ref.Seeds[i] {
						t.Fatalf("%s: seed %d = %d, reference %d", name, i, res.Seeds[i], ref.Seeds[i])
					}
					if res.Gains[i] != ref.Gains[i] {
						t.Fatalf("%s: gain %d not bit-identical: %b vs %b", name, i, res.Gains[i], ref.Gains[i])
					}
				}

				gains, err := coord.Gains(nil, allUsers)
				if err != nil {
					t.Fatalf("%s: Gains: %v", name, err)
				}
				for u := range gains {
					if gains[u] != refGains[u] {
						t.Fatalf("%s: Gain(%d) not bit-identical: %b vs %b", name, u, gains[u], refGains[u])
					}
				}
				based, err := coord.Gains(base, allUsers)
				if err != nil {
					t.Fatalf("%s: Gains(base): %v", name, err)
				}
				for u := range based {
					if based[u] != refBased[u] {
						t.Fatalf("%s: based Gain(%d) not bit-identical: %b vs %b", name, u, based[u], refBased[u])
					}
				}

				spread, err := coord.Spread(ref.Seeds)
				if err != nil {
					t.Fatalf("%s: Spread: %v", name, err)
				}
				if !haveSpread {
					refSpread, haveSpread = spread, true
				} else if spread != refSpread {
					t.Fatalf("%s: Spread not bit-identical across configs: %b vs %b", name, spread, refSpread)
				}
			}
		}
	}
	// The telescoped spread equals the selection's own gain sum exactly:
	// both commit the same seeds in the same order.
	if refSpread != ref.Spread() {
		t.Fatalf("telescoped spread %b != selection gain sum %b", refSpread, ref.Spread())
	}
}

// TestPartitionIngestParity pins ingest routing: appending a log tail
// partition-by-partition (including a tail that grows the user universe,
// absorbed by the trailing partition) must yield bit-identical seeds,
// gains, and entry accounting to a full engine over the combined log.
func TestPartitionIngestParity(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 2026))
	const oldUsers, newUsers, from, total = 40, 46, 25, 40
	g, combined := randomInstance(rng, newUsers, total)

	// The prefix log: actions [0, from) restricted to the old universe.
	lb := actionlog.NewBuilder(oldUsers)
	for _, tp := range combined.Tuples() {
		if int(tp.Action) < from && int(tp.User) < oldUsers {
			_ = lb.Add(tp.User, tp.Action, tp.Time)
		}
	}
	prefixLog := lb.Build()
	// Rebuild the combined log so its prefix matches exactly.
	cb := actionlog.NewBuilder(newUsers)
	for _, tp := range combined.Tuples() {
		if int(tp.Action) >= from || int(tp.User) < oldUsers {
			_ = cb.Add(tp.User, tp.Action, tp.Time)
		}
	}
	combined = cb.Build()

	opts := core.Options{Lambda: 0.001}
	fullRef := core.NewEngine(g, combined, opts)

	pre := core.NewEngine(g, prefixLog, opts)
	pre.Compact()
	for _, nparts := range []int{1, 3} {
		coord, err := New(slicePartitions(t, pre, nparts), 0)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		grown, err := coord.Append(g, combined, from)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if grown.NumUsers() != newUsers {
			t.Fatalf("grown universe %d, want %d", grown.NumUsers(), newUsers)
		}
		if last := grown.Ranges()[len(grown.Ranges())-1]; last.Hi != newUsers {
			t.Fatalf("trailing partition %v does not absorb new users (want hi=%d)", last, newUsers)
		}
		var entries int64
		for _, s := range grown.Stats() {
			entries += s.Entries
		}
		if entries != fullRef.Entries() {
			t.Fatalf("partition entries sum %d, full engine %d", entries, fullRef.Entries())
		}
		for u := 0; u < newUsers; u++ {
			want := fullRef.Gain(graph.NodeID(u))
			got, err := grown.Gains(nil, []graph.NodeID{graph.NodeID(u)})
			if err != nil {
				t.Fatalf("Gains(%d): %v", u, err)
			}
			if got[0] != want {
				t.Fatalf("nparts=%d: post-ingest Gain(%d) not bit-identical: %b vs %b", nparts, u, got[0], want)
			}
		}
		res := grown.NewSelection(celf.Options{}).Grow(5)
		refRes := seedsel.CELF(fullRef.Clone(), 5)
		for i := range refRes.Seeds {
			if res.Seeds[i] != refRes.Seeds[i] || res.Gains[i] != refRes.Gains[i] {
				t.Fatalf("nparts=%d: post-ingest seed %d: (%d, %b) vs (%d, %b)",
					nparts, i, res.Seeds[i], res.Gains[i], refRes.Seeds[i], refRes.Gains[i])
			}
		}
	}
}

// TestPartitionCheckpointRestartParity pins checkpoint-restart at
// partition granularity: a selection checkpointed after k1 seeds and
// resumed on freshly loaded snapshot slices (a different partition count,
// mmap-backed) must finish bit-identically to an uninterrupted run.
func TestPartitionCheckpointRestartParity(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 21))
	g, log := randomInstance(rng, 60, 35)
	opts := core.Options{Lambda: 0.001}
	lin := core.DatasetLineage("restart-parity", g, log)
	full := core.NewEngine(g, log, opts)
	full.Compact()

	const k1, k = 3, 7
	ref := seedsel.CELF(full.Clone(), k)

	first, err := New(slicePartitions(t, full, 4), 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mid := first.NewSelection(celf.Options{}).Grow(k1)
	prefix := celf.Prefix{Seeds: mid.Seeds, Gains: mid.Gains, LookupsAt: mid.LookupsAt}

	// "Restart": reload the model as mmap slices at a different partition
	// count and resume from the checkpointed prefix.
	second, err := New(mmapPartitions(t, full, lin, 2), 0)
	if err != nil {
		t.Fatalf("New(mmap): %v", err)
	}
	sel, err := second.ResumeSelection(prefix, celf.Options{})
	if err != nil {
		t.Fatalf("ResumeSelection: %v", err)
	}
	res := sel.Grow(k)
	for i := range ref.Seeds {
		if res.Seeds[i] != ref.Seeds[i] {
			t.Fatalf("resumed seed %d = %d, uninterrupted %d", i, res.Seeds[i], ref.Seeds[i])
		}
		if res.Gains[i] != ref.Gains[i] {
			t.Fatalf("resumed gain %d not bit-identical: %b vs %b", i, res.Gains[i], ref.Gains[i])
		}
	}
}
