// Package partition runs the CD-model engine as a set of self-contained
// row-range partitions behind a scatter-gather Coordinator.
//
// A partition is a core.Engine holding only the UC rows of influencers in
// its range [lo, hi) while carrying the full global per-user state (A_u,
// actionsOf, SC). That split follows the additive structure of the model:
// every quantity the serving layer reports — marginal gain (Theorem 3),
// spread, entry counts — is a sum over UC cells, and each cell (v, u, a)
// belongs to exactly one partition, the one owning influencer v's row. So
// the owner of a candidate's row prices it exactly (no cross-partition
// term exists), and global statistics are plain sums over partitions.
//
// Seed commits are the one cross-cutting operation: Lemma 2 touches cells
// (v, u) for every v with credit over the new seed x, which spans
// partitions. The coordinator has x's owner extract x's credit rows once
// (core.ExtractSeedRow) and broadcasts them (core.CommitSeedRow); each
// partition then applies Lemma 2 to its own disjoint cells and replays
// the identical Lemma 3 arithmetic on its SC replica. Since Engine.Add is
// literally CommitSeedRow(ExtractSeedRow(x)), a scatter-gather commit is
// bit-identical to the single-engine commit, and therefore seeds, gains,
// and spreads are bit-identical at every partition count and worker
// count. That invariant is pinned by TestPartitionCountDeterminism.
package partition

import (
	"fmt"
	"sort"
	"sync"

	"credist/internal/actionlog"
	"credist/internal/celf"
	"credist/internal/core"
	"credist/internal/graph"
)

// Range is a half-open influencer-row range [Lo, Hi).
type Range struct {
	Lo, Hi int
}

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// Contains reports whether the range owns row x.
func (r Range) Contains(x graph.NodeID) bool { return int(x) >= r.Lo && int(x) < r.Hi }

// SplitRanges tiles [0, numUsers) into n contiguous near-even ranges (the
// first numUsers mod n ranges get the extra row). n is clamped to at
// least 1 and at most numUsers (every partition below numUsers rows wide
// would otherwise be empty-by-construction; numUsers == 0 yields a single
// empty range).
func SplitRanges(numUsers, n int) []Range {
	if n < 1 || numUsers == 0 {
		n = 1
	}
	if n > numUsers && numUsers > 0 {
		n = numUsers
	}
	out := make([]Range, n)
	lo := 0
	for i := range out {
		size := numUsers / n
		if i < numUsers%n {
			size++
		}
		out[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}

// ValidateRanges checks that ranges — in any order — tile [0, numUsers)
// exactly: sorted by start they must begin at row 0, end at numUsers, and
// neither overlap nor leave a gap. Violations are reported naming both
// offending ranges, so a mis-assembled slice set is diagnosable from the
// error alone.
func ValidateRanges(ranges []Range, numUsers int) error {
	if len(ranges) == 0 {
		return fmt.Errorf("partition: no row ranges")
	}
	sorted := make([]Range, len(ranges))
	copy(sorted, ranges)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Lo != sorted[j].Lo {
			return sorted[i].Lo < sorted[j].Lo
		}
		return sorted[i].Hi < sorted[j].Hi
	})
	for i, r := range sorted {
		if r.Lo < 0 || r.Lo > r.Hi || r.Hi > numUsers {
			return fmt.Errorf("partition: range %v outside the universe [0,%d)", r, numUsers)
		}
		if i == 0 {
			if r.Lo != 0 {
				return fmt.Errorf("partition: rows [0,%d) uncovered: first range is %v", r.Lo, r)
			}
			continue
		}
		prev := sorted[i-1]
		if r.Lo < prev.Hi {
			return fmt.Errorf("partition: range %v overlaps %v", r, prev)
		}
		if r.Lo > prev.Hi {
			return fmt.Errorf("partition: gap between %v and %v leaves rows [%d,%d) uncovered", prev, r, prev.Hi, r.Lo)
		}
	}
	if last := sorted[len(sorted)-1]; last.Hi != numUsers {
		return fmt.Errorf("partition: rows [%d,%d) uncovered: last range is %v", last.Hi, numUsers, last)
	}
	return nil
}

// Stats is the per-partition accounting the serving layer surfaces.
type Stats struct {
	Range       Range
	Entries     int64
	HeapBytes   int64
	MappedBytes int64
	RowStore    string
}

// Coordinator fans queries over a contiguous set of engine partitions and
// merges by summation. It is immutable once built (queries clone the
// partitions they mutate), so concurrent queries need no locking; ingest
// builds a successor via Append.
type Coordinator struct {
	parts    []*core.Engine // sorted by row-range start
	ranges   []Range        // parts[i] owns ranges[i]
	workers  int            // query fan-out; 0 means GOMAXPROCS via celf
	numUsers int
}

// New validates that the engines are row-range partitions tiling the
// universe — every engine partitioned, agreeing on universe size and
// action count, ranges contiguous from 0 to numUsers — and returns the
// coordinator over them. A single full (unpartitioned) engine is also
// accepted: it is partition trivially, covering every row. workers
// bounds per-query parallelism; it has no effect on results.
func New(engines []*core.Engine, workers int) (*Coordinator, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("partition: no engines")
	}
	parts := make([]*core.Engine, len(engines))
	copy(parts, engines)
	sort.SliceStable(parts, func(i, j int) bool {
		li, _ := parts[i].PartitionRange()
		lj, _ := parts[j].PartitionRange()
		return li < lj
	})
	numUsers := parts[0].NumNodes()
	numActions := parts[0].NumActions()
	ranges := make([]Range, len(parts))
	for i, p := range parts {
		if p.NumNodes() != numUsers {
			return nil, fmt.Errorf("partition: engine %d spans a %d-user universe, engine 0 spans %d", i, p.NumNodes(), numUsers)
		}
		if p.NumActions() != numActions {
			return nil, fmt.Errorf("partition: engine %d has %d actions, engine 0 has %d", i, p.NumActions(), numActions)
		}
		if len(parts) > 1 && !p.IsPartition() {
			lo, hi := p.PartitionRange()
			return nil, fmt.Errorf("partition: engine %d is a full model claiming rows %v; cannot mix it with partitions", i, Range{lo, hi})
		}
		lo, hi := p.PartitionRange()
		ranges[i] = Range{Lo: lo, Hi: hi}
	}
	if err := ValidateRanges(ranges, numUsers); err != nil {
		return nil, err
	}
	return &Coordinator{parts: parts, ranges: ranges, workers: workers, numUsers: numUsers}, nil
}

// NumPartitions returns how many partitions the coordinator fans over.
func (c *Coordinator) NumPartitions() int { return len(c.parts) }

// NumUsers returns the (global) user-universe size.
func (c *Coordinator) NumUsers() int { return c.numUsers }

// NumActions returns the (global) scanned action count.
func (c *Coordinator) NumActions() int { return c.parts[0].NumActions() }

// Ranges returns the per-partition row ranges in partition order.
func (c *Coordinator) Ranges() []Range {
	out := make([]Range, len(c.ranges))
	copy(out, c.ranges)
	return out
}

// Engines returns the underlying partitions in partition order. Callers
// must not mutate them; clone first.
func (c *Coordinator) Engines() []*core.Engine { return c.parts }

// Stats returns per-partition accounting in partition order.
func (c *Coordinator) Stats() []Stats {
	out := make([]Stats, len(c.parts))
	for i, p := range c.parts {
		out[i] = Stats{
			Range:       c.ranges[i],
			Entries:     p.Entries(),
			HeapBytes:   p.HeapBytes(),
			MappedBytes: p.MappedBytes(),
			RowStore:    p.RowStoreBackend(),
		}
	}
	return out
}

// clone deep-copies every partition for a mutating query, wrapped as a
// PartitionedEstimator carrying the coordinator's worker budget.
func (c *Coordinator) cloneEstimator() *celf.PartitionedEstimator {
	clones := make([]celf.Partition, len(c.parts))
	var wg sync.WaitGroup
	for i, p := range c.parts {
		wg.Add(1)
		go func(i int, p *core.Engine) {
			defer wg.Done()
			clones[i] = p.Clone()
		}(i, p)
	}
	wg.Wait()
	pe, err := celf.NewPartitionedEstimator(clones, c.workers)
	if err != nil {
		// New validated the ranges and Clone preserves them.
		panic(fmt.Sprintf("partition: clone broke the range cover: %v", err))
	}
	return pe
}

// checkNode rejects ids outside the universe before they reach a
// partition (where a routing miss is a panic, not an error).
func (c *Coordinator) checkNode(kind string, x graph.NodeID) error {
	if int(x) < 0 || int(x) >= c.numUsers {
		return fmt.Errorf("partition: %s %d outside the universe [0,%d)", kind, x, c.numUsers)
	}
	return nil
}

// Spread computes sigma_cd(S) as the telescoped sum of marginal gains:
// clone the partitions, then per seed in input order take its exact gain
// from the owning partition and broadcast the commit. Duplicate seeds
// contribute 0, matching the reference evaluator's dedup. The result is
// the mathematically exact CD spread of the committed set and is
// bit-identical across partition counts, worker counts, and row-store
// backends — though not bit-identical to core.Evaluator.Spread, which
// sums the same quantity in per-action order.
func (c *Coordinator) Spread(seeds []graph.NodeID) (float64, error) {
	for _, s := range seeds {
		if err := c.checkNode("seed", s); err != nil {
			return 0, err
		}
	}
	pe := c.cloneEstimator()
	seen := make(map[graph.NodeID]bool, len(seeds))
	total := 0.0
	for _, s := range seeds {
		if seen[s] {
			continue
		}
		seen[s] = true
		total += pe.Gain(s)
		pe.Add(s)
	}
	return total, nil
}

// Gains evaluates the marginal gain of every candidate against the given
// base seed set: clone, commit the base seeds (scatter-gather, exact),
// then fan the candidate evaluations over the partitions — each candidate
// priced by its row's owner, results written by candidate index so worker
// scheduling cannot reorder them. A candidate that is a committed base
// seed gains 0, as in the single-engine path.
func (c *Coordinator) Gains(base []graph.NodeID, candidates []graph.NodeID) ([]float64, error) {
	for _, s := range base {
		if err := c.checkNode("seed", s); err != nil {
			return nil, err
		}
	}
	for _, x := range candidates {
		if err := c.checkNode("candidate", x); err != nil {
			return nil, err
		}
	}
	// With no base seeds nothing is committed, so the shared partitions
	// answer read-only with no clone at all; otherwise clone and commit.
	var pe *celf.PartitionedEstimator
	if len(base) > 0 {
		pe = c.cloneEstimator()
		seen := make(map[graph.NodeID]bool, len(base))
		for _, s := range base {
			if seen[s] {
				continue
			}
			seen[s] = true
			pe.Add(s)
		}
	}
	out := make([]float64, len(candidates))
	// Group by owning partition so each partition's candidates evaluate on
	// one goroutine: Gain is read-only between commits, partitions are
	// disjoint, and by-index writes keep the output order fixed.
	groups := make([][]int, len(c.parts))
	for i, x := range candidates {
		pi := sort.Search(len(c.ranges), func(j int) bool { return c.ranges[j].Hi > int(x) })
		groups[pi] = append(groups[pi], i)
	}
	var wg sync.WaitGroup
	for pi, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(pi int, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				if pe != nil {
					out[i] = pe.Gain(candidates[i])
				} else {
					out[i] = c.parts[pi].Gain(candidates[i])
				}
			}
		}(pi, idxs)
	}
	wg.Wait()
	return out, nil
}

// NewSelection starts a CELF seed selection over fresh clones of the
// partitions: the coordinator-side lazy-forward heap with a per-partition
// parallel first-iteration pass (celf fans buildHeap over workers, each
// Gain routed to its owner). Selections from the same coordinator are
// independent and bit-identical to a single-engine selection.
func (c *Coordinator) NewSelection(opts celf.Options) *celf.Selection {
	if opts.Workers == 0 {
		opts.Workers = c.workers
	}
	return celf.NewSelection(c.cloneEstimator(), opts)
}

// ResumeSelection continues a selection from a checkpointed seed prefix,
// recommitting the prefix seeds scatter-gather and adopting the
// checkpointed heap. Equivalent to celf.Resume on a single engine.
func (c *Coordinator) ResumeSelection(prefix celf.Prefix, opts celf.Options) (*celf.Selection, error) {
	if opts.Workers == 0 {
		opts.Workers = c.workers
	}
	return celf.Resume(c.cloneEstimator(), prefix, opts)
}

// Append builds a successor coordinator covering the combined log: each
// partition clones and appends the tail independently (AppendActions
// routes the scanned rows to their owners, and the trailing partition
// absorbs rows of users the tail registered). The receiver is untouched,
// so in-flight queries keep their answers while the successor assembles.
func (c *Coordinator) Append(g *graph.Graph, log *actionlog.Log, from actionlog.ActionID) (*Coordinator, error) {
	next := make([]*core.Engine, len(c.parts))
	errs := make([]error, len(c.parts))
	var wg sync.WaitGroup
	for i, p := range c.parts {
		wg.Add(1)
		go func(i int, p *core.Engine) {
			defer wg.Done()
			clone := p.Clone()
			if err := clone.AppendActions(g, log, from); err != nil {
				errs[i] = fmt.Errorf("partition %v: %w", c.ranges[i], err)
				return
			}
			clone.Freeze()
			next[i] = clone
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return New(next, c.workers)
}
