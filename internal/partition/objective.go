package partition

import (
	"sync"

	"credist/internal/celf"
	"credist/internal/core"
	"credist/internal/graph"
)

// objPartition wraps an engine partition so the scatter-gather estimator
// prices candidates under an objective. Only Gain changes: commits
// (ExtractSeedRow/CommitSeedRow) are objective-independent — the
// objective reweights how credit is valued, never how it flows — so the
// whole partitioned commit path is reused verbatim, and with it the
// bit-identity of non-default objectives across partition counts.
type objPartition struct {
	*core.Engine
	obj *core.Objective
}

func (p objPartition) Gain(x graph.NodeID) float64 { return p.Engine.GainObj(x, p.obj) }

// cloneEstimatorObj is cloneEstimator with every clone wrapped to price
// gains under obj. The default objective short-circuits to the plain
// estimator: bit-identity for the default comes from taking the exact
// pre-objective code path.
func (c *Coordinator) cloneEstimatorObj(obj *core.Objective) *celf.PartitionedEstimator {
	if obj.IsDefault() {
		return c.cloneEstimator()
	}
	clones := make([]celf.Partition, len(c.parts))
	var wg sync.WaitGroup
	for i, p := range c.parts {
		wg.Add(1)
		go func(i int, p *core.Engine) {
			defer wg.Done()
			clones[i] = objPartition{Engine: p.Clone(), obj: obj}
		}(i, p)
	}
	wg.Wait()
	pe, err := celf.NewPartitionedEstimator(clones, c.workers)
	if err != nil {
		// New validated the ranges and Clone preserves them.
		panic("partition: clone broke the range cover: " + err.Error())
	}
	return pe
}

// commitSet commits every distinct node in set to the estimator,
// discarding gains. Used to pre-commit a rival's seed set so subsequent
// gains and spreads are marginal over it.
func commitSet(pe *celf.PartitionedEstimator, set []graph.NodeID) {
	seen := make(map[graph.NodeID]bool, len(set))
	for _, s := range set {
		if seen[s] {
			continue
		}
		seen[s] = true
		pe.Add(s)
	}
}

// SpreadObj computes the conditional objective spread
// sigma_obj(S | R) = sigma_obj(R+S) - sigma_obj(R) for rival set R
// (blocked): clone, commit the rivals without counting their gains, then
// telescope the seeds' objective gains in input order. With no rivals and
// the default objective it routes through Spread bit-identically.
func (c *Coordinator) SpreadObj(seeds []graph.NodeID, obj *core.Objective, blocked []graph.NodeID) (float64, error) {
	if obj.IsDefault() && len(blocked) == 0 {
		return c.Spread(seeds)
	}
	for _, s := range seeds {
		if err := c.checkNode("seed", s); err != nil {
			return 0, err
		}
	}
	for _, r := range blocked {
		if err := c.checkNode("blocked node", r); err != nil {
			return 0, err
		}
	}
	pe := c.cloneEstimatorObj(obj)
	commitSet(pe, blocked)
	seen := make(map[graph.NodeID]bool, len(seeds)+len(blocked))
	for _, r := range blocked {
		seen[r] = true
	}
	total := 0.0
	for _, s := range seeds {
		if seen[s] {
			continue
		}
		seen[s] = true
		total += pe.Gain(s)
		pe.Add(s)
	}
	return total, nil
}

// GainsObj is Gains under an objective: clone (only if something must be
// committed), commit blocked rivals then base seeds, and fan candidate
// evaluations over the partitions with by-index writes. The default
// objective with no rivals routes through Gains bit-identically.
func (c *Coordinator) GainsObj(base, candidates []graph.NodeID, obj *core.Objective, blocked []graph.NodeID) ([]float64, error) {
	if obj.IsDefault() && len(blocked) == 0 {
		return c.Gains(base, candidates)
	}
	for _, s := range base {
		if err := c.checkNode("seed", s); err != nil {
			return nil, err
		}
	}
	for _, x := range candidates {
		if err := c.checkNode("candidate", x); err != nil {
			return nil, err
		}
	}
	for _, r := range blocked {
		if err := c.checkNode("blocked node", r); err != nil {
			return nil, err
		}
	}
	var pe *celf.PartitionedEstimator
	if len(base) > 0 || len(blocked) > 0 {
		pe = c.cloneEstimatorObj(obj)
		commitSet(pe, blocked)
		commitSet(pe, base)
	}
	out := make([]float64, len(candidates))
	groups := make([][]int, len(c.parts))
	for i, x := range candidates {
		pi := ownerIndex(c.ranges, x)
		groups[pi] = append(groups[pi], i)
	}
	var wg sync.WaitGroup
	for pi, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(pi int, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				if pe != nil {
					out[i] = pe.Gain(candidates[i])
				} else {
					out[i] = c.parts[pi].GainObj(candidates[i], obj)
				}
			}
		}(pi, idxs)
	}
	wg.Wait()
	return out, nil
}

// NewSelectionObj starts a CELF selection under an objective. Blocked
// rivals in opts are pre-committed to the cloned estimator — so every
// gain the selection sees is marginal over the rival set — and celf
// additionally excludes them from the candidate pool. The default
// objective (with no costs, budget, or rivals) is exactly NewSelection.
func (c *Coordinator) NewSelectionObj(obj *core.Objective, opts celf.Options) *celf.Selection {
	if opts.Workers == 0 {
		opts.Workers = c.workers
	}
	pe := c.cloneEstimatorObj(obj)
	commitSet(pe, opts.Blocked)
	return celf.NewSelection(pe, opts)
}

// SelectObj runs a complete CELF selection under an objective via
// celf.Run — including the budgeted best-affordable-singleton rule,
// which Grow-style selections do not apply — over fresh wrapped clones,
// with blocked rivals pre-committed. Single-engine and partitioned
// objective selections are bit-identical because both are celf.Run over
// estimators returning bit-identical gains.
func (c *Coordinator) SelectObj(obj *core.Objective, k int, opts celf.Options) celf.Result {
	if opts.Workers == 0 {
		opts.Workers = c.workers
	}
	pe := c.cloneEstimatorObj(obj)
	commitSet(pe, opts.Blocked)
	return celf.Run(pe, k, opts)
}

// ownerIndex returns the index of the range owning row x.
func ownerIndex(ranges []Range, x graph.NodeID) int {
	lo, hi := 0, len(ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		if ranges[mid].Hi > int(x) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
