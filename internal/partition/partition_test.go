package partition

import (
	"math/rand/v2"
	"strings"
	"testing"

	"credist/internal/core"
)

func TestSplitRanges(t *testing.T) {
	cases := []struct {
		users, n int
		want     []Range
	}{
		{10, 1, []Range{{0, 10}}},
		{10, 2, []Range{{0, 5}, {5, 10}}},
		{10, 3, []Range{{0, 4}, {4, 7}, {7, 10}}},
		{7, 7, []Range{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}}},
		{3, 9, []Range{{0, 1}, {1, 2}, {2, 3}}}, // clamped to numUsers
		{5, 0, []Range{{0, 5}}},                 // clamped to 1
		{0, 4, []Range{{0, 0}}},
	}
	for _, c := range cases {
		got := SplitRanges(c.users, c.n)
		if len(got) != len(c.want) {
			t.Errorf("SplitRanges(%d,%d) = %v, want %v", c.users, c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitRanges(%d,%d)[%d] = %v, want %v", c.users, c.n, i, got[i], c.want[i])
			}
		}
		if err := ValidateRanges(got, c.users); err != nil {
			t.Errorf("SplitRanges(%d,%d) fails its own validation: %v", c.users, c.n, err)
		}
	}
}

// TestValidateRangesMalformed is the satellite-1 table: every malformed
// shape a mis-assembled slice set can take is rejected with an error
// naming the offending ranges, so operators can diagnose from the
// message alone.
func TestValidateRangesMalformed(t *testing.T) {
	cases := []struct {
		name   string
		ranges []Range
		users  int
		want   []string // substrings the error must contain
	}{
		{"empty", nil, 10, []string{"no row ranges"}},
		{"overlap", []Range{{0, 6}, {4, 10}}, 10, []string{"[4,10)", "overlaps", "[0,6)"}},
		{"contained", []Range{{0, 10}, {3, 7}}, 10, []string{"[3,7)", "overlaps", "[0,10)"}},
		{"duplicate", []Range{{0, 5}, {0, 5}, {5, 10}}, 10, []string{"[0,5)", "overlaps", "[0,5)"}},
		{"gap", []Range{{0, 4}, {6, 10}}, 10, []string{"gap", "[0,4)", "[6,10)", "[4,6)"}},
		{"missing head", []Range{{2, 10}}, 10, []string{"[0,2)", "uncovered", "[2,10)"}},
		{"missing tail", []Range{{0, 4}, {4, 8}}, 10, []string{"[8,10)", "uncovered", "[4,8)"}},
		{"inverted", []Range{{6, 2}}, 10, []string{"[6,2)", "outside the universe"}},
		{"negative", []Range{{-2, 5}, {5, 10}}, 10, []string{"[-2,5)", "outside the universe"}},
		{"beyond universe", []Range{{0, 12}}, 10, []string{"[0,12)", "outside the universe"}},
	}
	for _, c := range cases {
		err := ValidateRanges(c.ranges, c.users)
		if err == nil {
			t.Errorf("%s: ValidateRanges(%v, %d) accepted", c.name, c.ranges, c.users)
			continue
		}
		for _, sub := range c.want {
			if !strings.Contains(err.Error(), sub) {
				t.Errorf("%s: error %q does not name %q", c.name, err, sub)
			}
		}
	}
	// Order independence: a valid cover passed out of order still passes.
	if err := ValidateRanges([]Range{{5, 10}, {0, 5}}, 10); err != nil {
		t.Errorf("out-of-order valid cover rejected: %v", err)
	}
}

// TestNewRejectsMalformedPartitionSets drives the same malformed shapes
// through the coordinator constructor with real engine slices — the path
// a snapshot-slice load takes.
func TestNewRejectsMalformedPartitionSets(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 44))
	g, log := randomInstance(rng, 30, 12)
	full := core.NewEngine(g, log, core.Options{})
	full.Compact()
	slice := func(lo, hi int) *core.Engine {
		t.Helper()
		p, err := full.Slice(lo, hi)
		if err != nil {
			t.Fatalf("Slice(%d,%d): %v", lo, hi, err)
		}
		return p
	}

	cases := []struct {
		name  string
		parts []*core.Engine
		want  string
	}{
		{"none", nil, "no engines"},
		{"overlap", []*core.Engine{slice(0, 20), slice(15, 30)}, "overlaps"},
		{"gap", []*core.Engine{slice(0, 10), slice(15, 30)}, "gap"},
		{"missing head", []*core.Engine{slice(5, 30)}, "uncovered"},
		{"missing tail", []*core.Engine{slice(0, 25)}, "uncovered"},
		{"full engine among partitions", []*core.Engine{full, slice(0, 30)}, "full model"},
	}
	for _, c := range cases {
		if _, err := New(c.parts, 0); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: New = %v, want error containing %q", c.name, err, c.want)
		}
	}

	// Mismatched universes: a slice of a different dataset cannot join.
	g2, log2 := randomInstance(rng, 20, 8)
	other := core.NewEngine(g2, log2, core.Options{})
	otherSlice, err := other.Slice(0, 20)
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	if _, err := New([]*core.Engine{slice(0, 20), otherSlice}, 0); err == nil || !strings.Contains(err.Error(), "universe") {
		t.Errorf("mismatched universes: %v", err)
	}

	// A single full engine is the trivial cover and is accepted.
	if _, err := New([]*core.Engine{full}, 0); err != nil {
		t.Errorf("single full engine rejected: %v", err)
	}
}
