package partition

import (
	"credist/internal/core"
	"credist/internal/graph"
)

// Provenance queries, scatter-gather. Both shapes follow the additive
// structure that makes partitioned answers exact: every credit path
// (v, u, a) lives in exactly one partition — the owner of influencer v's
// row — so a seed explanation is answered wholly by one partition, and a
// reach explanation folds per-seed shares gathered from each seed's
// owner in input order, bit-identical to the single-engine answer at any
// partition count.

// ExplainSeed decomposes candidate x's marginal gain into its top credit
// paths, answered by the partition owning x's row. The explained Gain is
// bit-for-bit the coordinator's Gains value for x.
func (c *Coordinator) ExplainSeed(x graph.NodeID, top int) (core.SeedExplanation, error) {
	if err := c.checkNode("candidate", x); err != nil {
		return core.SeedExplanation{}, err
	}
	return c.parts[ownerIndex(c.ranges, x)].ExplainSeed(x, top), nil
}

// ExplainReach decomposes the credit the given seeds push onto target v:
// each seed's share and paths come wholly from its row's owner, shares
// fold in input order, and the gathered paths are re-sorted under the
// deterministic total order — so the merged answer is bit-identical to
// the single-engine ExplainReach.
func (c *Coordinator) ExplainReach(seeds []graph.NodeID, v graph.NodeID, top int) (core.ReachExplanation, error) {
	if err := c.checkNode("target", v); err != nil {
		return core.ReachExplanation{}, err
	}
	for _, s := range seeds {
		if err := c.checkNode("seed", s); err != nil {
			return core.ReachExplanation{}, err
		}
	}
	ex := core.ReachExplanation{Target: v, PerSeed: make([]core.ReachShare, 0, len(seeds))}
	var paths []core.ProvPath
	for _, s := range seeds {
		share, ps := c.parts[ownerIndex(c.ranges, s)].ReachPaths(s, v)
		ex.PerSeed = append(ex.PerSeed, core.ReachShare{Seed: s, Share: share})
		ex.Total += share
		paths = append(paths, ps...)
	}
	ex.TotalPaths = len(paths)
	ex.Paths = core.TopProvPaths(paths, top)
	return ex, nil
}
