package partition

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"testing"

	"credist/internal/celf"
	"credist/internal/core"
	"credist/internal/graph"
)

// TestObjectivePartitionDeterminism extends the determinism wall to
// non-default objectives: weighted, windowed, budgeted, and blocked
// queries must be bit-identical across partition counts {1, 4} and
// worker counts {1, GOMAXPROCS}, and identical to a single wrapped
// engine. Default-objective calls through the Obj entry points must
// route to the exact pre-objective paths.
func TestObjectivePartitionDeterminism(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 84))
	g, log := randomInstance(rng, 70, 45)
	opts := core.Options{Lambda: 0.001}
	full := core.NewEngine(g, log, opts)
	full.Compact()

	weights := make([]float64, g.NumNodes())
	for u := range weights {
		switch rng.IntN(3) {
		case 0:
			weights[u] = 0
		case 1:
			weights[u] = 1
		default:
			weights[u] = rng.Float64() * 2
		}
	}
	obj := &core.Objective{
		Weights:  weights,
		Windowed: true,
		Tau:      4, // log times are drawn from {0..7}
		Delays:   core.BuildActionDelays(log),
	}
	costs := make([]float64, g.NumNodes())
	for u := range costs {
		costs[u] = 0.5 + rng.Float64()*2
	}

	// Single-engine references: the wrapped full engine is both a celf
	// estimator and a trivial one-partition coordinator input.
	refEst := objPartition{Engine: full.Clone(), obj: obj}
	const k = 6
	ref := celf.Run(refEst, k, celf.Options{})
	if len(ref.Seeds) != k {
		t.Fatalf("reference objective selection found %d seeds, want %d", len(ref.Seeds), k)
	}
	allUsers := make([]graph.NodeID, g.NumNodes())
	refGains := make([]float64, g.NumNodes())
	for u := range refGains {
		allUsers[u] = graph.NodeID(u)
		refGains[u] = full.GainObj(graph.NodeID(u), obj)
	}
	rival := ref.Seeds[:2]
	budOpts := func(workers int) celf.Options {
		return celf.Options{Workers: workers, Costs: costs, Budget: 5, Blocked: rival}
	}
	refBudget := func() celf.Result {
		eng := objPartition{Engine: full.Clone(), obj: obj}
		for _, r := range rival {
			eng.Add(r)
		}
		// Grow, not Run: NewSelectionObj hands the caller a growable
		// selection, so the reference takes the same plain-greedy path.
		return celf.NewSelection(eng, budOpts(1)).Grow(k)
	}()

	var refSpread, refBlockedSpread float64
	var have bool
	for _, nparts := range []int{1, 4} {
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			name := fmt.Sprintf("parts=%d/workers=%d", nparts, workers)
			coord, err := New(slicePartitions(t, full, nparts), workers)
			if err != nil {
				t.Fatalf("%s: New: %v", name, err)
			}

			res := coord.NewSelectionObj(obj, celf.Options{Workers: workers}).Grow(k)
			for i := range ref.Seeds {
				if res.Seeds[i] != ref.Seeds[i] || res.Gains[i] != ref.Gains[i] {
					t.Fatalf("%s: objective seed %d: (%d, %b) vs (%d, %b)",
						name, i, res.Seeds[i], res.Gains[i], ref.Seeds[i], ref.Gains[i])
				}
			}

			gains, err := coord.GainsObj(nil, allUsers, obj, nil)
			if err != nil {
				t.Fatalf("%s: GainsObj: %v", name, err)
			}
			for u := range gains {
				if gains[u] != refGains[u] {
					t.Fatalf("%s: GainObj(%d) not bit-identical: %b vs %b", name, u, gains[u], refGains[u])
				}
			}

			spread, err := coord.SpreadObj(ref.Seeds, obj, nil)
			if err != nil {
				t.Fatalf("%s: SpreadObj: %v", name, err)
			}
			blockedSpread, err := coord.SpreadObj(ref.Seeds[2:], obj, rival)
			if err != nil {
				t.Fatalf("%s: SpreadObj(blocked): %v", name, err)
			}
			if !have {
				refSpread, refBlockedSpread, have = spread, blockedSpread, true
			} else {
				if spread != refSpread {
					t.Fatalf("%s: SpreadObj not bit-identical across configs: %b vs %b", name, spread, refSpread)
				}
				if blockedSpread != refBlockedSpread {
					t.Fatalf("%s: blocked SpreadObj not bit-identical: %b vs %b", name, blockedSpread, refBlockedSpread)
				}
			}

			bud := coord.NewSelectionObj(obj, budOpts(workers)).Grow(k)
			for i := range refBudget.Seeds {
				if i >= len(bud.Seeds) || bud.Seeds[i] != refBudget.Seeds[i] || bud.Gains[i] != refBudget.Gains[i] {
					t.Fatalf("%s: budgeted blocked selection diverged at %d: %v vs %v",
						name, i, bud.Seeds, refBudget.Seeds)
				}
			}
			if len(bud.Seeds) != len(refBudget.Seeds) {
				t.Fatalf("%s: budgeted selection picked %d seeds, reference %d", name, len(bud.Seeds), len(refBudget.Seeds))
			}
		}
	}
	// The selection commits the same seeds in the same order the telescoped
	// spread walks, so the two agree exactly.
	if refSpread != ref.Spread() {
		t.Fatalf("telescoped objective spread %b != selection gain sum %b", refSpread, ref.Spread())
	}

	// The Obj entry points with the default objective are the pre-objective
	// paths: bit-identical gains and spread.
	coord, err := New(slicePartitions(t, full, 4), 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	wantGains, err := coord.Gains(nil, allUsers)
	if err != nil {
		t.Fatalf("Gains: %v", err)
	}
	gotGains, err := coord.GainsObj(nil, allUsers, nil, nil)
	if err != nil {
		t.Fatalf("GainsObj(default): %v", err)
	}
	for u := range wantGains {
		if wantGains[u] != gotGains[u] {
			t.Fatalf("default GainsObj(%d) = %b, Gains = %b", u, gotGains[u], wantGains[u])
		}
	}
	wantSpread, err := coord.Spread(ref.Seeds)
	if err != nil {
		t.Fatalf("Spread: %v", err)
	}
	gotSpread, err := coord.SpreadObj(ref.Seeds, nil, nil)
	if err != nil {
		t.Fatalf("SpreadObj(default): %v", err)
	}
	if wantSpread != gotSpread {
		t.Fatalf("default SpreadObj = %b, Spread = %b", gotSpread, wantSpread)
	}
}
