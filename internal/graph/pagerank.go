package graph

import "sort"

// PageRankOptions configures the PageRank computation.
type PageRankOptions struct {
	// Damping is the probability of following an out-link (default 0.85).
	Damping float64
	// MaxIter bounds the number of power iterations (default 100).
	MaxIter int
	// Tol is the L1 convergence tolerance (default 1e-9).
	Tol float64
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	return o
}

// PageRank computes PageRank scores by power iteration. Scores sum to 1.
// Dangling nodes (no out-edges) distribute their mass uniformly, the
// standard correction.
//
// The paper uses PageRank as one of the heuristic seed-selection baselines
// in the "Spread Achieved" experiment (Figure 6). Note that for influence,
// rank should accumulate along *reversed* edges (a node is influential if
// influenced nodes point at it); callers who want the influence-oriented
// variant should run PageRank on g.Transpose(), as cmd/experiments does.
func PageRank(g *Graph, opts PageRankOptions) []float64 {
	opts = opts.withDefaults()
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1.0 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		dangling := 0.0
		for i := range next {
			next[i] = 0
		}
		for u := int32(0); u < int32(n); u++ {
			out := g.Out(u)
			if len(out) == 0 {
				dangling += rank[u]
				continue
			}
			share := rank[u] / float64(len(out))
			for _, v := range out {
				next[v] += share
			}
		}
		base := (1-opts.Damping)*inv + opts.Damping*dangling*inv
		delta := 0.0
		for i := range next {
			v := base + opts.Damping*next[i]
			d := v - rank[i]
			if d < 0 {
				d = -d
			}
			delta += d
			rank[i] = v
		}
		if delta < opts.Tol {
			break
		}
	}
	return rank
}

// TopKByScore returns the ids of the k highest-scoring nodes, ties broken
// by lower id. If k exceeds the node count every node is returned.
func TopKByScore(scores []float64, k int) []NodeID {
	ids := make([]NodeID, len(scores))
	for i := range ids {
		ids[i] = NodeID(i)
	}
	if k > len(ids) {
		k = len(ids)
	}
	// Full sort keeps the tie-break deterministic; n is small enough in all
	// callers (seed selection with k<=50 over <=10^6 nodes) that partial
	// selection would be a premature optimization.
	sort.Slice(ids, func(i, j int) bool {
		si, sj := scores[ids[i]], scores[ids[j]]
		if si != sj {
			return si > sj
		}
		return ids[i] < ids[j]
	})
	return ids[:k]
}
