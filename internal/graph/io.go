package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a plain-text edge list:
//
//	<numNodes>
//	<from> <to>
//	...
//
// one edge per line, the format cmd/datagen emits and cmd/credist consumes.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n", g.NumNodes()); err != nil {
		return err
	}
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Out(u) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Blank lines and
// lines starting with '#' are ignored.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if b == nil {
			n, err := strconv.Atoi(line)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: expected node count: %w", lineNo, err)
			}
			b = NewBuilder(n)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: expected 'from to', got %q", lineNo, line)
		}
		from, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad from: %w", lineNo, err)
		}
		to, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad to: %w", lineNo, err)
		}
		if err := b.AddEdge(NodeID(from), NodeID(to)); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	return b.Build(), nil
}
