package graph

import (
	"math/rand/v2"
	"sort"
)

// Communities assigns every node a community label via synchronous label
// propagation over the undirected view of the graph. It is the project's
// substitute for Graclus, which the paper uses to carve single-community
// "small" datasets out of the full crawls; any community-preserving
// partitioner serves that role.
//
// rounds bounds the number of propagation sweeps; 10-20 suffices in
// practice. The rng only breaks ties, so results are deterministic given
// a seeded source.
func Communities(g *Graph, rounds int, rng *rand.Rand) []int {
	n := g.NumNodes()
	label := make([]int, n)
	for i := range label {
		label[i] = i
	}
	if n == 0 {
		return label
	}
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	counts := make(map[int]int)
	for r := 0; r < rounds; r++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		changed := 0
		for _, u := range order {
			clear(counts)
			for _, v := range g.Out(u) {
				counts[label[v]]++
			}
			for _, v := range g.In(u) {
				counts[label[v]]++
			}
			if len(counts) == 0 {
				continue
			}
			best, bestCount := label[u], counts[label[u]]
			for l, c := range counts {
				if c > bestCount || (c == bestCount && l < best) {
					best, bestCount = l, c
				}
			}
			if best != label[u] {
				label[u] = best
				changed++
			}
		}
		if changed == 0 {
			break
		}
	}
	return canonicalizeLabels(label)
}

// canonicalizeLabels renumbers labels to 0..k-1 in order of first
// appearance so downstream code can index slices by community.
func canonicalizeLabels(label []int) []int {
	remap := make(map[int]int)
	for i, l := range label {
		nl, ok := remap[l]
		if !ok {
			nl = len(remap)
			remap[l] = nl
		}
		label[i] = nl
	}
	return label
}

// LargestCommunity returns the member nodes of the most populous community
// in the labeling, sorted by id. This mirrors the paper's procedure of
// "taking a unique community" to form the Small datasets.
func LargestCommunity(label []int) []NodeID {
	counts := make(map[int]int)
	for _, l := range label {
		counts[l]++
	}
	best, bestCount := -1, -1
	for l, c := range counts {
		if c > bestCount || (c == bestCount && l < best) {
			best, bestCount = l, c
		}
	}
	var members []NodeID
	for i, l := range label {
		if l == best {
			members = append(members, NodeID(i))
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}

// CommunityOfSize finds the community whose size is closest to want and
// returns its members sorted by id. Used to carve sub-datasets of a target
// scale regardless of how label propagation happened to split the graph.
func CommunityOfSize(label []int, want int) []NodeID {
	counts := make(map[int]int)
	for _, l := range label {
		counts[l]++
	}
	best, bestDiff := -1, int(^uint(0)>>1)
	for l, c := range counts {
		diff := c - want
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff || (diff == bestDiff && l < best) {
			best, bestDiff = l, diff
		}
	}
	var members []NodeID
	for i, l := range label {
		if l == best {
			members = append(members, NodeID(i))
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}

// ConnectedComponents labels nodes by weakly-connected component and
// returns the labels plus component count.
func ConnectedComponents(g *Graph) ([]int, int) {
	n := g.NumNodes()
	label := make([]int, n)
	for i := range label {
		label[i] = -1
	}
	next := 0
	var stack []NodeID
	for s := 0; s < n; s++ {
		if label[s] != -1 {
			continue
		}
		stack = append(stack[:0], NodeID(s))
		label[s] = next
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Out(u) {
				if label[v] == -1 {
					label[v] = next
					stack = append(stack, v)
				}
			}
			for _, v := range g.In(u) {
				if label[v] == -1 {
					label[v] = next
					stack = append(stack, v)
				}
			}
		}
		next++
	}
	return label, next
}

// BFSBall returns up to limit nodes reachable from start following edges in
// either direction, in BFS order. It is a cheap alternative sampler used by
// tests and examples.
func BFSBall(g *Graph, start NodeID, limit int) []NodeID {
	if limit <= 0 {
		return nil
	}
	seen := map[NodeID]bool{start: true}
	order := []NodeID{start}
	for i := 0; i < len(order) && len(order) < limit; i++ {
		u := order[i]
		for _, v := range g.Out(u) {
			if !seen[v] {
				seen[v] = true
				order = append(order, v)
				if len(order) == limit {
					return order
				}
			}
		}
		for _, v := range g.In(u) {
			if !seen[v] {
				seen[v] = true
				order = append(order, v)
				if len(order) == limit {
					return order
				}
			}
		}
	}
	return order
}
