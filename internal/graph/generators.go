package graph

import "math/rand/v2"

// This file provides classic random-graph generators beyond the
// preferential-attachment model in internal/datagen. They are used by
// robustness experiments and tests to check that the system's behaviour is
// not an artifact of one graph topology.

// ErdosRenyi samples a directed G(n, p) graph: every ordered pair (u,v),
// u != v, is an edge independently with probability p.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	if p <= 0 {
		return b.Build()
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				_ = b.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return b.Build()
}

// WattsStrogatz builds a directed small-world graph: a ring lattice where
// each node points at its k nearest clockwise neighbors, with each edge
// rewired to a uniform random target with probability beta.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	if n < 2 {
		return b.Build()
	}
	if k >= n {
		k = n - 1
	}
	for u := 0; u < n; u++ {
		for d := 1; d <= k; d++ {
			v := (u + d) % n
			if rng.Float64() < beta {
				for tries := 0; tries < 16; tries++ {
					cand := rng.IntN(n)
					if cand != u {
						v = cand
						break
					}
				}
			}
			if v != u {
				_ = b.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return b.Build()
}

// Metrics summarizes a graph's shape for dataset reports and robustness
// checks.
type Metrics struct {
	Nodes       int
	Edges       int
	AvgDegree   float64
	MaxInDeg    int
	MaxOutDeg   int
	Reciprocity float64 // fraction of edges whose reverse also exists
	Isolated    int     // nodes with no edges at all
}

// Measure computes Metrics for g.
func Measure(g *Graph) Metrics {
	m := Metrics{
		Nodes:     g.NumNodes(),
		Edges:     g.NumEdges(),
		AvgDegree: g.AvgDegree(),
	}
	recip := 0
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		if d := g.InDegree(u); d > m.MaxInDeg {
			m.MaxInDeg = d
		}
		if d := g.OutDegree(u); d > m.MaxOutDeg {
			m.MaxOutDeg = d
		}
		if g.Degree(u) == 0 {
			m.Isolated++
		}
		for _, v := range g.Out(u) {
			if g.HasEdge(v, u) {
				recip++
			}
		}
	}
	if g.NumEdges() > 0 {
		m.Reciprocity = float64(recip) / float64(g.NumEdges())
	}
	return m
}

// DegreeHistogram returns counts of out-degrees: hist[d] is the number of
// nodes with out-degree d. The slice length is MaxOutDeg+1.
func DegreeHistogram(g *Graph) []int {
	maxDeg := 0
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		if d := g.OutDegree(u); d > maxDeg {
			maxDeg = d
		}
	}
	hist := make([]int, maxDeg+1)
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		hist[g.OutDegree(u)]++
	}
	return hist
}

// ClusteringCoefficient returns the global clustering coefficient of the
// undirected view of g: 3 * triangles / connected triples.
func ClusteringCoefficient(g *Graph) float64 {
	// Build undirected neighbor sets once.
	neighbors := make([]map[NodeID]bool, g.NumNodes())
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		set := make(map[NodeID]bool)
		for _, v := range g.Out(u) {
			set[v] = true
		}
		for _, v := range g.In(u) {
			set[v] = true
		}
		neighbors[u] = set
	}
	triangles, triples := 0, 0
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		var ns []NodeID
		for v := range neighbors[u] {
			ns = append(ns, v)
		}
		deg := len(ns)
		triples += deg * (deg - 1) / 2
		for i := 0; i < deg; i++ {
			for j := i + 1; j < deg; j++ {
				if neighbors[ns[i]][ns[j]] {
					triangles++
				}
			}
		}
	}
	if triples == 0 {
		return 0
	}
	// Each triangle is counted once per corner, i.e. three times.
	return float64(triangles) / float64(triples)
}
