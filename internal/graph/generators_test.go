package graph

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestErdosRenyiDensity(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	n, p := 200, 0.05
	g := ErdosRenyi(n, p, rng)
	expected := float64(n*(n-1)) * p
	got := float64(g.NumEdges())
	if math.Abs(got-expected) > 0.25*expected {
		t.Fatalf("edges = %g, expected ~%g", got, expected)
	}
	if g2 := ErdosRenyi(50, 0, rng); g2.NumEdges() != 0 {
		t.Fatal("p=0 produced edges")
	}
}

func TestWattsStrogatzShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	g := WattsStrogatz(100, 4, 0.0, rng)
	// Without rewiring every node has out-degree exactly 4.
	for u := int32(0); u < 100; u++ {
		if g.OutDegree(u) != 4 {
			t.Fatalf("lattice out-degree = %d", g.OutDegree(u))
		}
	}
	rewired := WattsStrogatz(100, 4, 0.5, rng)
	if rewired.NumEdges() == 0 || rewired.NumEdges() > 400 {
		t.Fatalf("rewired edges = %d", rewired.NumEdges())
	}
	// Heavy rewiring destroys the lattice's regularity somewhere.
	same := true
	for u := int32(0); u < 100 && same; u++ {
		out := rewired.Out(u)
		for i, v := range out {
			if v != g.Out(u)[min(i, len(g.Out(u))-1)] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("beta=0.5 changed nothing")
	}
}

func TestMeasure(t *testing.T) {
	b := NewBuilder(4)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 0) // reciprocated pair
	_ = b.AddEdge(1, 2)
	g := b.Build()
	m := Measure(g)
	if m.Nodes != 4 || m.Edges != 3 {
		t.Fatalf("metrics = %+v", m)
	}
	if math.Abs(m.Reciprocity-2.0/3.0) > 1e-12 {
		t.Fatalf("reciprocity = %g, want 2/3", m.Reciprocity)
	}
	if m.Isolated != 1 {
		t.Fatalf("isolated = %d, want 1 (node 3)", m.Isolated)
	}
	if m.MaxOutDeg != 2 || m.MaxInDeg != 1 {
		t.Fatalf("degrees = %+v", m)
	}
}

func TestDegreeHistogram(t *testing.T) {
	b := NewBuilder(3)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(0, 2)
	g := b.Build()
	hist := DegreeHistogram(g)
	if hist[0] != 2 || hist[2] != 1 {
		t.Fatalf("hist = %v", hist)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle: coefficient 1.
	b := NewBuilder(3)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(2, 0)
	if got := ClusteringCoefficient(b.Build()); math.Abs(got-1) > 1e-12 {
		t.Fatalf("triangle coefficient = %g", got)
	}
	// Path: no triangles.
	b2 := NewBuilder(3)
	_ = b2.AddEdge(0, 1)
	_ = b2.AddEdge(1, 2)
	if got := ClusteringCoefficient(b2.Build()); got != 0 {
		t.Fatalf("path coefficient = %g", got)
	}
}
