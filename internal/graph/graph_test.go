package graph

import (
	"bytes"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, n int, edges [][2]NodeID) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := mustGraph(t, 4, [][2]NodeID{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}})
	if got := g.NumNodes(); got != 4 {
		t.Fatalf("NumNodes = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 5 {
		t.Fatalf("NumEdges = %d, want 5", got)
	}
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.InDegree(2); got != 2 {
		t.Errorf("InDegree(2) = %d, want 2", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Errorf("HasEdge wrong: (0,1)=%v (1,0)=%v", g.HasEdge(0, 1), g.HasEdge(1, 0))
	}
	if got := g.AvgDegree(); got != 1.25 {
		t.Errorf("AvgDegree = %g, want 1.25", got)
	}
}

func TestBuilderRejectsSelfLoopAndRange(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1); err != ErrSelfLoop {
		t.Errorf("self loop error = %v, want ErrSelfLoop", err)
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Error("negative node accepted")
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	g := mustGraph(t, 3, [][2]NodeID{{0, 1}, {0, 1}, {0, 1}, {1, 2}})
	if got := g.NumEdges(); got != 2 {
		t.Fatalf("NumEdges = %d, want 2 after dedup", got)
	}
}

func TestAddUndirected(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddUndirected(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected edge missing a direction")
	}
}

func TestInOutConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 0))
		n := 2 + r.IntN(20)
		b := NewBuilder(n)
		for e := 0; e < n*3; e++ {
			u, v := NodeID(r.IntN(n)), NodeID(r.IntN(n))
			if u != v {
				_ = b.AddEdge(u, v)
			}
		}
		g := b.Build()
		// Every out-edge must appear as an in-edge and vice versa.
		outCount, inCount := 0, 0
		for u := NodeID(0); int(u) < n; u++ {
			for _, v := range g.Out(u) {
				outCount++
				found := false
				for _, w := range g.In(v) {
					if w == u {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			inCount += g.InDegree(u)
		}
		return outCount == inCount && outCount == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = rng
}

func TestAdjacencySorted(t *testing.T) {
	g := mustGraph(t, 5, [][2]NodeID{{0, 4}, {0, 2}, {0, 1}, {3, 0}, {2, 0}, {1, 0}})
	if !sort.SliceIsSorted(g.Out(0), func(i, j int) bool { return g.Out(0)[i] < g.Out(0)[j] }) {
		t.Errorf("Out(0) not sorted: %v", g.Out(0))
	}
	if !sort.SliceIsSorted(g.In(0), func(i, j int) bool { return g.In(0)[i] < g.In(0)[j] }) {
		t.Errorf("In(0) not sorted: %v", g.In(0))
	}
}

func TestSubgraph(t *testing.T) {
	g := mustGraph(t, 5, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}})
	sub, orig := g.Subgraph([]NodeID{0, 1, 2})
	if sub.NumNodes() != 3 {
		t.Fatalf("sub nodes = %d, want 3", sub.NumNodes())
	}
	// Edges within {0,1,2}: 0->1, 1->2, 0->2.
	if sub.NumEdges() != 3 {
		t.Fatalf("sub edges = %d, want 3", sub.NumEdges())
	}
	if orig[0] != 0 || orig[1] != 1 || orig[2] != 2 {
		t.Errorf("orig mapping = %v", orig)
	}
	if !sub.HasEdge(0, 2) {
		t.Error("edge 0->2 lost in subgraph")
	}
}

func TestTranspose(t *testing.T) {
	g := mustGraph(t, 3, [][2]NodeID{{0, 1}, {1, 2}})
	tr := g.Transpose()
	if !tr.HasEdge(1, 0) || !tr.HasEdge(2, 1) || tr.HasEdge(0, 1) {
		t.Error("transpose edges wrong")
	}
	back := tr.Transpose()
	if !back.HasEdge(0, 1) || !back.HasEdge(1, 2) || back.NumEdges() != 2 {
		t.Error("double transpose is not identity")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := mustGraph(t, 4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	g2, err := FromEdges(4, g.Edges())
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
}

func TestEdgeListIO(t *testing.T) {
	g := mustGraph(t, 4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.From, e.To) {
			t.Errorf("edge %v lost", e)
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",
		"abc\n",
		"3\n1\n",
		"3\n0 zzz\n",
		"3\n0 0\n", // self loop
		"2\n0 5\n", // out of range
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(bytes.NewBufferString(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestReadEdgeListSkipsComments(t *testing.T) {
	g, err := ReadEdgeList(bytes.NewBufferString("# comment\n3\n\n0 1\n# another\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	g := mustGraph(t, 4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	pr := PageRank(g, PageRankOptions{})
	for i, p := range pr {
		if p < 0.24 || p > 0.26 {
			t.Errorf("rank[%d] = %g, want 0.25", i, p)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	b := NewBuilder(30)
	for e := 0; e < 100; e++ {
		u, v := NodeID(rng.IntN(30)), NodeID(rng.IntN(30))
		if u != v {
			_ = b.AddEdge(u, v)
		}
	}
	pr := PageRank(b.Build(), PageRankOptions{})
	sum := 0.0
	for _, p := range pr {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("PageRank sum = %g, want 1", sum)
	}
}

func TestPageRankPrefersHub(t *testing.T) {
	// Star: everyone points at node 0.
	edges := [][2]NodeID{}
	for i := NodeID(1); i < 6; i++ {
		edges = append(edges, [2]NodeID{i, 0})
	}
	g := mustGraph(t, 6, edges)
	pr := PageRank(g, PageRankOptions{})
	for i := 1; i < 6; i++ {
		if pr[0] <= pr[i] {
			t.Fatalf("hub rank %g not above leaf rank %g", pr[0], pr[i])
		}
	}
}

func TestTopKByScore(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	top := TopKByScore(scores, 3)
	want := []NodeID{1, 3, 2} // ties by lower id
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", top, want)
		}
	}
	if got := TopKByScore(scores, 99); len(got) != 5 {
		t.Fatalf("k>n returned %d items", len(got))
	}
}

func TestConnectedComponents(t *testing.T) {
	g := mustGraph(t, 6, [][2]NodeID{{0, 1}, {1, 2}, {3, 4}})
	label, n := ConnectedComponents(g)
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Error("0,1,2 should share a component")
	}
	if label[3] != label[4] {
		t.Error("3,4 should share a component")
	}
	if label[5] == label[0] || label[5] == label[3] {
		t.Error("5 should be isolated")
	}
}

func TestCommunitiesFindTwoCliques(t *testing.T) {
	// Two 6-cliques joined by a single edge.
	b := NewBuilder(12)
	for i := NodeID(0); i < 6; i++ {
		for j := NodeID(0); j < 6; j++ {
			if i != j {
				_ = b.AddEdge(i, j)
				_ = b.AddEdge(i+6, j+6)
			}
		}
	}
	_ = b.AddEdge(0, 6)
	g := b.Build()
	rng := rand.New(rand.NewPCG(9, 9))
	label := Communities(g, 20, rng)
	for i := 1; i < 6; i++ {
		if label[i] != label[0] {
			t.Fatalf("clique A split: %v", label)
		}
		if label[i+6] != label[6] {
			t.Fatalf("clique B split: %v", label)
		}
	}
	if label[0] == label[6] {
		t.Fatalf("cliques merged: %v", label)
	}
	members := LargestCommunity(label)
	if len(members) != 6 {
		t.Fatalf("largest community size = %d, want 6", len(members))
	}
}

func TestCommunityOfSize(t *testing.T) {
	label := []int{0, 0, 0, 1, 1, 2}
	got := CommunityOfSize(label, 2)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("CommunityOfSize = %v, want [3 4]", got)
	}
}

func TestBFSBall(t *testing.T) {
	g := mustGraph(t, 5, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	ball := BFSBall(g, 0, 3)
	if len(ball) != 3 || ball[0] != 0 {
		t.Fatalf("BFSBall = %v", ball)
	}
	if got := BFSBall(g, 0, 0); got != nil {
		t.Fatalf("limit 0 should return nil, got %v", got)
	}
}
