// Package graph provides the directed social-graph substrate used by the
// credit-distribution influence-maximization system: a compact CSR-style
// adjacency representation, a builder that maps arbitrary user identifiers
// to dense node ids, and graph analytics (PageRank, components, community
// extraction) needed by the paper's experimental protocol.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID is a dense node index in [0, NumNodes).
type NodeID = int32

// Edge is a directed edge From -> To, meaning From may influence To.
type Edge struct {
	From NodeID
	To   NodeID
}

// Graph is an immutable directed graph in compressed sparse row form.
// Both out-adjacency (successors) and in-adjacency (predecessors) are
// materialized because influence maximization walks edges in both
// directions: cascades flow forward, credit flows backward.
type Graph struct {
	n        int32
	outIndex []int32 // len n+1
	outEdges []NodeID
	inIndex  []int32 // len n+1
	inEdges  []NodeID
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return int(g.n) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.outEdges) }

// OutDegree returns the number of successors of u.
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.outIndex[u+1] - g.outIndex[u])
}

// InDegree returns the number of predecessors of u.
func (g *Graph) InDegree(u NodeID) int {
	return int(g.inIndex[u+1] - g.inIndex[u])
}

// Degree returns the total (in + out) degree of u.
func (g *Graph) Degree(u NodeID) int { return g.OutDegree(u) + g.InDegree(u) }

// Out returns the successors of u. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) Out(u NodeID) []NodeID {
	return g.outEdges[g.outIndex[u]:g.outIndex[u+1]]
}

// In returns the predecessors of u. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) In(u NodeID) []NodeID {
	return g.inEdges[g.inIndex[u]:g.inIndex[u+1]]
}

// HasEdge reports whether the edge u->v exists. Adjacency lists are sorted,
// so this is a binary search.
func (g *Graph) HasEdge(u, v NodeID) bool {
	out := g.Out(u)
	i := sort.Search(len(out), func(i int) bool { return out[i] >= v })
	return i < len(out) && out[i] == v
}

// Edges returns all edges in from-major order. It allocates a fresh slice.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, len(g.outEdges))
	for u := int32(0); u < g.n; u++ {
		for _, v := range g.Out(u) {
			edges = append(edges, Edge{From: u, To: v})
		}
	}
	return edges
}

// AvgDegree returns the average out-degree (edges per node), the statistic
// reported in Table 1 of the paper.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(len(g.outEdges)) / float64(g.n)
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges are coalesced; self-loops are rejected because a user does not
// influence itself in any of the paper's models.
type Builder struct {
	n     int32
	edges []Edge
}

// NewBuilder returns a Builder for a graph with n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: int32(n)}
}

// ErrSelfLoop is returned when an edge from a node to itself is added.
var ErrSelfLoop = errors.New("graph: self-loop rejected")

// AddEdge records the directed edge u->v.
func (b *Builder) AddEdge(u, v NodeID) error {
	if u == v {
		return ErrSelfLoop
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	b.edges = append(b.edges, Edge{From: u, To: v})
	return nil
}

// AddUndirected records both u->v and v->u, the convention the paper uses
// when a social tie is symmetric (e.g. friendship in Flixster).
func (b *Builder) AddUndirected(u, v NodeID) error {
	if err := b.AddEdge(u, v); err != nil {
		return err
	}
	return b.AddEdge(v, u)
}

// NumNodes returns the node count the builder was created with.
func (b *Builder) NumNodes() int { return int(b.n) }

// Build produces the immutable Graph. The builder may be reused afterwards;
// it retains its accumulated edges.
func (b *Builder) Build() *Graph {
	edges := make([]Edge, len(b.edges))
	copy(edges, b.edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	// Deduplicate.
	uniq := edges[:0]
	var last Edge = Edge{-1, -1}
	for _, e := range edges {
		if e != last {
			uniq = append(uniq, e)
			last = e
		}
	}
	edges = uniq

	g := &Graph{n: b.n}
	g.outIndex = make([]int32, b.n+1)
	g.outEdges = make([]NodeID, len(edges))
	for _, e := range edges {
		g.outIndex[e.From+1]++
	}
	for i := int32(0); i < b.n; i++ {
		g.outIndex[i+1] += g.outIndex[i]
	}
	cursor := make([]int32, b.n)
	for _, e := range edges {
		pos := g.outIndex[e.From] + cursor[e.From]
		g.outEdges[pos] = e.To
		cursor[e.From]++
	}

	g.inIndex = make([]int32, b.n+1)
	g.inEdges = make([]NodeID, len(edges))
	for _, e := range edges {
		g.inIndex[e.To+1]++
	}
	for i := int32(0); i < b.n; i++ {
		g.inIndex[i+1] += g.inIndex[i]
	}
	for i := range cursor {
		cursor[i] = 0
	}
	for _, e := range edges {
		pos := g.inIndex[e.To] + cursor[e.To]
		g.inEdges[pos] = e.From
		cursor[e.To]++
	}
	// In-lists come out sorted already because edges are from-major sorted
	// and we append in order; predecessors of v are appended in increasing
	// order of From. Nothing further to do.
	return g
}

// FromEdges builds a graph with n nodes from an edge list, coalescing
// duplicates and skipping nothing: any invalid edge is an error.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.From, e.To); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Subgraph returns the node-induced subgraph on keep (which must contain
// dense original ids) plus the mapping from new ids to original ids.
// Nodes are renumbered 0..len(keep)-1 in the order given.
func (g *Graph) Subgraph(keep []NodeID) (*Graph, []NodeID) {
	remap := make(map[NodeID]NodeID, len(keep))
	orig := make([]NodeID, len(keep))
	for i, u := range keep {
		remap[u] = NodeID(i)
		orig[i] = u
	}
	b := NewBuilder(len(keep))
	for _, u := range keep {
		nu := remap[u]
		for _, v := range g.Out(u) {
			if nv, ok := remap[v]; ok {
				// Errors impossible: ids in range, no self-loops in g.
				_ = b.AddEdge(nu, nv)
			}
		}
	}
	return b.Build(), orig
}

// Transpose returns the graph with every edge reversed.
func (g *Graph) Transpose() *Graph {
	b := NewBuilder(g.NumNodes())
	for u := int32(0); u < g.n; u++ {
		for _, v := range g.Out(u) {
			_ = b.AddEdge(v, u)
		}
	}
	return b.Build()
}
