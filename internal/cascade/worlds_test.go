package cascade

import (
	"math"
	"math/rand/v2"
	"testing"

	"credist/internal/graph"
)

func randomWeighted(rng *rand.Rand, n int, maxP float64) *Weights {
	b := graph.NewBuilder(n)
	for e := 0; e < n*3; e++ {
		u, v := graph.NodeID(rng.IntN(n)), graph.NodeID(rng.IntN(n))
		if u != v {
			_ = b.AddEdge(u, v)
		}
	}
	g := b.Build()
	w := NewWeights(g)
	for u := int32(0); int(u) < n; u++ {
		for _, v := range g.Out(u) {
			_ = w.Set(u, v, rng.Float64()*maxP)
		}
	}
	return w
}

// normalizeLT scales down in-weights so each node's sum is at most 1,
// making the weights a valid LT instance.
func normalizeLT(w *Weights) *Weights {
	g := w.Graph()
	out := NewWeights(g)
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		sum := w.InSum(u)
		scale := 1.0
		if sum > 1 {
			scale = 1 / sum
		}
		in := g.In(u)
		weights := w.InRow(u)
		for i, v := range in {
			_ = out.Set(v, u, weights[i]*scale)
		}
	}
	return out
}

// TestICWorldEquivalence checks Eq. (1): spread estimated by sampling IC
// live-edge worlds matches direct Monte-Carlo simulation of the cascade.
// This is the Kempe et al. equivalence the paper builds Section 4 on.
func TestICWorldEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	w := randomWeighted(rng, 40, 0.4)
	seeds := []graph.NodeID{0, 13, 27}

	mc := NewMCEstimator(w, IC, MCOptions{Trials: 20000, Seed: 5})
	worlds := NewWorldEstimator(w, IC, 20000, 6)
	a, b := mc.Spread(seeds), worlds.Spread(seeds)
	if math.Abs(a-b) > 0.05*math.Max(a, b)+0.3 {
		t.Fatalf("IC world estimate %g far from MC %g", b, a)
	}
}

// TestLTWorldEquivalence checks the LT live-edge equivalence: each node
// keeps at most one in-edge with probability equal to its weight.
func TestLTWorldEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	w := normalizeLT(randomWeighted(rng, 40, 0.5))
	seeds := []graph.NodeID{1, 20}

	mc := NewMCEstimator(w, LT, MCOptions{Trials: 20000, Seed: 7})
	worlds := NewWorldEstimator(w, LT, 20000, 8)
	a, b := mc.Spread(seeds), worlds.Spread(seeds)
	if math.Abs(a-b) > 0.05*math.Max(a, b)+0.3 {
		t.Fatalf("LT world estimate %g far from MC %g", b, a)
	}
}

func TestWorldReachableDeterministicChain(t *testing.T) {
	b := graph.NewBuilder(4)
	for i := 0; i < 3; i++ {
		_ = b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	w := NewWeights(b.Build())
	for i := 0; i < 3; i++ {
		_ = w.Set(graph.NodeID(i), graph.NodeID(i+1), 1.0)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	world := SampleICWorld(w, rng)
	if got := world.Reachable([]graph.NodeID{0}, nil); got != 4 {
		t.Fatalf("reachable = %d, want 4 on p=1 chain", got)
	}
	if got := world.Reachable([]graph.NodeID{0, 0, 3}, nil); got != 4 {
		t.Fatalf("duplicate seeds miscounted: %d", got)
	}
}

func TestLTWorldAtMostOneInEdge(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	w := normalizeLT(randomWeighted(rng, 30, 0.8))
	for trial := 0; trial < 20; trial++ {
		world := SampleLTWorld(w, rng)
		inCount := make([]int, 30)
		for v := range world.out {
			for _, u := range world.out[v] {
				inCount[u]++
			}
		}
		for u, c := range inCount {
			if c > 1 {
				t.Fatalf("node %d has %d live in-edges, LT allows at most 1", u, c)
			}
		}
	}
}

func TestWorldEstimatorAsSelector(t *testing.T) {
	// On a deterministic chain the world estimator behaves like the exact
	// oracle and works with greedy selection.
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		_ = b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	w := NewWeights(b.Build())
	for i := 0; i < 4; i++ {
		_ = w.Set(graph.NodeID(i), graph.NodeID(i+1), 1.0)
	}
	est := NewWorldEstimator(w, IC, 10, 1)
	if est.NumNodes() != 5 {
		t.Fatal("NumNodes wrong")
	}
	if got := est.Gain(0); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Gain(0) = %g, want 5", got)
	}
	est.Add(0)
	if got := est.Gain(4); got != 0 {
		t.Fatalf("Gain(4) after full coverage = %g", got)
	}
	if len(est.Seeds()) != 1 {
		t.Fatal("Seeds not tracked")
	}
}
