package cascade

import (
	"math/rand/v2"

	"credist/internal/graph"
)

// SimulateIC runs one trial of the Independent Cascade model from seeds and
// returns the number of active nodes at quiescence. Each newly activated
// node v gets one shot at each inactive successor u, succeeding with
// probability w(v,u). scratch must be a reusable buffer of length
// g.NumNodes() (values are reset internally via an epoch counter held by
// the caller through ICState); pass nil to allocate per call.
func SimulateIC(w *Weights, seeds []graph.NodeID, rng *rand.Rand, st *ICState) int {
	if st == nil {
		st = NewICState(w.Graph())
	}
	st.epoch++
	g := w.Graph()
	frontier := st.frontier[:0]
	active := 0
	for _, s := range seeds {
		if st.mark[s] == st.epoch {
			continue
		}
		st.mark[s] = st.epoch
		frontier = append(frontier, s)
		active++
	}
	for len(frontier) > 0 {
		next := frontier[:0:0] // fresh slice; old frontier still read below
		for _, v := range frontier {
			out := g.Out(v)
			probs := w.OutRow(v)
			for i, u := range out {
				if st.mark[u] == st.epoch {
					continue
				}
				p := probs[i]
				if p > 0 && rng.Float64() < p {
					st.mark[u] = st.epoch
					next = append(next, u)
					active++
				}
			}
		}
		frontier = next
	}
	st.frontier = frontier[:0]
	return active
}

// SimulateICActivated is SimulateIC but also reports which nodes activated.
func SimulateICActivated(w *Weights, seeds []graph.NodeID, rng *rand.Rand) []graph.NodeID {
	st := NewICState(w.Graph())
	g := w.Graph()
	var activated, frontier []graph.NodeID
	st.epoch++
	for _, s := range seeds {
		if st.mark[s] == st.epoch {
			continue
		}
		st.mark[s] = st.epoch
		frontier = append(frontier, s)
		activated = append(activated, s)
	}
	for len(frontier) > 0 {
		var next []graph.NodeID
		for _, v := range frontier {
			out := g.Out(v)
			probs := w.OutRow(v)
			for i, u := range out {
				if st.mark[u] == st.epoch {
					continue
				}
				if p := probs[i]; p > 0 && rng.Float64() < p {
					st.mark[u] = st.epoch
					next = append(next, u)
					activated = append(activated, u)
				}
			}
		}
		frontier = next
	}
	return activated
}

// ICState is per-goroutine scratch space for IC simulation, avoiding an
// O(n) reset between trials via epoch marking.
type ICState struct {
	mark     []uint32
	epoch    uint32
	frontier []graph.NodeID
}

// NewICState allocates scratch space for simulating over g.
func NewICState(g *graph.Graph) *ICState {
	return &ICState{mark: make([]uint32, g.NumNodes())}
}
