package cascade

import "credist/internal/graph"

// GreedyEstimator adapts Monte-Carlo spread estimation to the marginal-
// gain interface used by the greedy/CELF selectors (it satisfies
// seedsel.Estimator). This is the "standard approach" pipeline of the
// paper: every Gain costs a full batch of simulations, which is exactly
// the expense the CD model eliminates.
type GreedyEstimator struct {
	mc    *MCEstimator
	seeds []graph.NodeID
	base  float64
}

// NewGreedyEstimator wraps mc with an empty seed set.
func NewGreedyEstimator(mc *MCEstimator) *GreedyEstimator {
	return &GreedyEstimator{mc: mc}
}

// NumNodes implements the estimator interface.
func (e *GreedyEstimator) NumNodes() int { return e.mc.weights.Graph().NumNodes() }

// Gain estimates sigma(S+x) - sigma(S) with a fresh simulation batch.
func (e *GreedyEstimator) Gain(x graph.NodeID) float64 {
	withX := append(append([]graph.NodeID(nil), e.seeds...), x)
	return e.mc.Spread(withX) - e.base
}

// Add commits x and re-estimates the base spread.
func (e *GreedyEstimator) Add(x graph.NodeID) {
	e.seeds = append(e.seeds, x)
	e.base = e.mc.Spread(e.seeds)
}

// Seeds returns the committed seeds.
func (e *GreedyEstimator) Seeds() []graph.NodeID {
	out := make([]graph.NodeID, len(e.seeds))
	copy(out, e.seeds)
	return out
}
