package cascade

import (
	"math/rand/v2"

	"credist/internal/graph"
)

// This file implements the possible-world view of expected spread (Eq. 1
// of the paper): sigma_m(S) = sum over worlds X of Pr[X] * |reachable from
// S in X|. Both IC and LT admit live-edge world distributions (Kempe et
// al. 2003): IC keeps each edge independently with its probability; LT has
// each node keep at most one incoming edge, chosen with probability equal
// to its weight. Sampling worlds once and reusing them across seed sets
// gives a spread estimator whose randomness is shared between evaluations,
// which the paper's Section 4 uses as the conceptual bridge to treating
// observed propagation traces as "real available worlds".

// World is one sampled live-edge graph, stored as out-adjacency.
type World struct {
	out [][]graph.NodeID
}

// SampleICWorld draws an IC live-edge world: edge (v,u) survives with
// probability w(v,u), independently.
func SampleICWorld(w *Weights, rng *rand.Rand) *World {
	g := w.Graph()
	n := g.NumNodes()
	world := &World{out: make([][]graph.NodeID, n)}
	for v := int32(0); int(v) < n; v++ {
		row := g.Out(v)
		probs := w.OutRow(v)
		for i, u := range row {
			if p := probs[i]; p > 0 && rng.Float64() < p {
				world.out[v] = append(world.out[v], u)
			}
		}
	}
	return world
}

// SampleLTWorld draws an LT live-edge world: each node u keeps at most one
// incoming edge, picking (v,u) with probability w(v,u) and no edge with
// probability 1 - sum of in-weights.
func SampleLTWorld(w *Weights, rng *rand.Rand) *World {
	g := w.Graph()
	n := g.NumNodes()
	world := &World{out: make([][]graph.NodeID, n)}
	for u := int32(0); int(u) < n; u++ {
		in := g.In(u)
		weights := w.InRow(u)
		x := rng.Float64()
		acc := 0.0
		for i, v := range in {
			acc += weights[i]
			if x < acc {
				world.out[v] = append(world.out[v], u)
				break
			}
		}
	}
	return world
}

// Reachable counts the nodes reachable from seeds in the world (seeds
// included, duplicates ignored). scratch must have length >= n or be nil.
func (w *World) Reachable(seeds []graph.NodeID, st *WorldState) int {
	if st == nil {
		st = NewWorldState(len(w.out))
	}
	st.epoch++
	count := 0
	frontier := st.frontier[:0]
	for _, s := range seeds {
		if st.mark[s] == st.epoch {
			continue
		}
		st.mark[s] = st.epoch
		frontier = append(frontier, s)
		count++
	}
	for len(frontier) > 0 {
		v := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, u := range w.out[v] {
			if st.mark[u] != st.epoch {
				st.mark[u] = st.epoch
				frontier = append(frontier, u)
				count++
			}
		}
	}
	st.frontier = frontier[:0]
	return count
}

// WorldState is reusable scratch for reachability queries.
type WorldState struct {
	mark     []uint32
	epoch    uint32
	frontier []graph.NodeID
}

// NewWorldState allocates scratch for worlds over n nodes.
func NewWorldState(n int) *WorldState {
	return &WorldState{mark: make([]uint32, n)}
}

// WorldEstimator estimates expected spread by averaging reachability over
// a fixed set of pre-sampled worlds. Because the worlds are shared across
// calls, comparisons between seed sets use common random numbers, which
// reduces variance relative to fresh Monte-Carlo runs.
type WorldEstimator struct {
	worlds []*World
	st     *WorldState
	n      int

	seeds []graph.NodeID
	base  float64
}

// NewWorldEstimator samples `count` worlds of the given model.
func NewWorldEstimator(w *Weights, model Model, count int, seed uint64) *WorldEstimator {
	rng := rand.New(rand.NewPCG(seed, 0x77031d5))
	e := &WorldEstimator{n: w.Graph().NumNodes(), st: NewWorldState(w.Graph().NumNodes())}
	for i := 0; i < count; i++ {
		switch model {
		case IC:
			e.worlds = append(e.worlds, SampleICWorld(w, rng))
		case LT:
			e.worlds = append(e.worlds, SampleLTWorld(w, rng))
		}
	}
	return e
}

// Spread averages reachability from seeds across the sampled worlds.
func (e *WorldEstimator) Spread(seeds []graph.NodeID) float64 {
	if len(e.worlds) == 0 {
		return 0
	}
	total := 0
	for _, w := range e.worlds {
		total += w.Reachable(seeds, e.st)
	}
	return float64(total) / float64(len(e.worlds))
}

// NumNodes implements the seed-selection estimator interface.
func (e *WorldEstimator) NumNodes() int { return e.n }

// Gain returns the marginal spread of x against the committed seeds.
func (e *WorldEstimator) Gain(x graph.NodeID) float64 {
	withX := append(append([]graph.NodeID(nil), e.seeds...), x)
	return e.Spread(withX) - e.base
}

// Add commits x.
func (e *WorldEstimator) Add(x graph.NodeID) {
	e.seeds = append(e.seeds, x)
	e.base = e.Spread(e.seeds)
}

// Seeds returns the committed seeds.
func (e *WorldEstimator) Seeds() []graph.NodeID {
	out := make([]graph.NodeID, len(e.seeds))
	copy(out, e.seeds)
	return out
}
