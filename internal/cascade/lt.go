package cascade

import (
	"math/rand/v2"

	"credist/internal/graph"
)

// LTState is per-goroutine scratch space for LT simulation.
type LTState struct {
	mark      []uint32 // activation epoch
	thresEp   []uint32 // epoch the threshold was drawn in
	threshold []float64
	acc       []float64 // accumulated incoming active weight
	accEp     []uint32
	epoch     uint32
	frontier  []graph.NodeID
}

// NewLTState allocates scratch space for simulating over g.
func NewLTState(g *graph.Graph) *LTState {
	n := g.NumNodes()
	return &LTState{
		mark:      make([]uint32, n),
		thresEp:   make([]uint32, n),
		threshold: make([]float64, n),
		acc:       make([]float64, n),
		accEp:     make([]uint32, n),
	}
}

func (st *LTState) thresholdOf(u graph.NodeID, rng *rand.Rand) float64 {
	if st.thresEp[u] != st.epoch {
		st.thresEp[u] = st.epoch
		st.threshold[u] = rng.Float64()
	}
	return st.threshold[u]
}

func (st *LTState) addWeight(u graph.NodeID, p float64) float64 {
	if st.accEp[u] != st.epoch {
		st.accEp[u] = st.epoch
		st.acc[u] = 0
	}
	st.acc[u] += p
	return st.acc[u]
}

// SimulateLT runs one trial of the Linear Threshold model from seeds and
// returns the number of active nodes at quiescence. Each node draws a
// threshold uniformly from [0,1]; an inactive node activates once the
// total weight of its active in-neighbors reaches its threshold.
// Thresholds are drawn lazily, which is distribution-equivalent to drawing
// them all upfront.
func SimulateLT(w *Weights, seeds []graph.NodeID, rng *rand.Rand, st *LTState) int {
	if st == nil {
		st = NewLTState(w.Graph())
	}
	st.epoch++
	g := w.Graph()
	frontier := st.frontier[:0]
	active := 0
	for _, s := range seeds {
		if st.mark[s] == st.epoch {
			continue
		}
		st.mark[s] = st.epoch
		frontier = append(frontier, s)
		active++
	}
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, v := range frontier {
			out := g.Out(v)
			probs := w.OutRow(v)
			for i, u := range out {
				if st.mark[u] == st.epoch {
					continue
				}
				p := probs[i]
				if p <= 0 {
					continue
				}
				total := st.addWeight(u, p)
				if total >= st.thresholdOf(u, rng) {
					st.mark[u] = st.epoch
					next = append(next, u)
					active++
				}
			}
		}
		frontier = next
	}
	st.frontier = frontier[:0]
	return active
}
