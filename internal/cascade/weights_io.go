package cascade

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"credist/internal/graph"
)

// WriteWeights serializes edge weights as plain text:
//
//	<numNodes>
//	<from> <to> <probability>
//	...
//
// Only edges with nonzero weight are written; learned probability maps are
// sparse, so this is compact. ReadWeights restores against a graph with
// the same node universe.
func WriteWeights(w io.Writer, ws *Weights) error {
	bw := bufio.NewWriter(w)
	g := ws.Graph()
	if _, err := fmt.Fprintf(bw, "%d\n", g.NumNodes()); err != nil {
		return err
	}
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		row := g.Out(u)
		probs := ws.OutRow(u)
		for i, v := range row {
			if p := probs[i]; p > 0 {
				if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, v, p); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadWeights parses the format written by WriteWeights and attaches the
// weights to g. Edges present in the file but absent from g are an error:
// weights are meaningless without their graph.
func ReadWeights(r io.Reader, g *graph.Graph) (*Weights, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	ws := NewWeights(g)
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sawHeader {
			n, err := strconv.Atoi(line)
			if err != nil {
				return nil, fmt.Errorf("cascade: line %d: expected node count: %w", lineNo, err)
			}
			if n != g.NumNodes() {
				return nil, fmt.Errorf("cascade: weights for %d nodes, graph has %d", n, g.NumNodes())
			}
			sawHeader = true
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("cascade: line %d: expected 'from to p', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("cascade: line %d: bad from: %w", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("cascade: line %d: bad to: %w", lineNo, err)
		}
		p, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("cascade: line %d: bad probability: %w", lineNo, err)
		}
		if err := ws.Set(graph.NodeID(u), graph.NodeID(v), p); err != nil {
			return nil, fmt.Errorf("cascade: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("cascade: empty weights input")
	}
	return ws, nil
}
