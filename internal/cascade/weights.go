// Package cascade implements the classic propagation models the paper
// compares against: the Independent Cascade (IC) and Linear Threshold (LT)
// models of Kempe et al., edge-weight storage aligned with the graph's CSR
// layout, and a parallel Monte-Carlo estimator of expected spread.
package cascade

import (
	"fmt"
	"sort"

	"credist/internal/graph"
)

// Weights assigns a probability (IC) or weight (LT) to every edge of a
// graph. Storage is aligned with the graph's out- and in-adjacency arrays
// so simulators can walk rows without per-edge lookups.
type Weights struct {
	g      *graph.Graph
	out    []float64 // aligned with g's out-edge array
	in     []float64 // aligned with g's in-edge array
	outOff []int32   // len n+1: offset of node u's out row
	inOff  []int32   // len n+1: offset of node u's in row
}

// NewWeights returns zero-initialized weights for g.
func NewWeights(g *graph.Graph) *Weights {
	n := g.NumNodes()
	w := &Weights{
		g:      g,
		out:    make([]float64, g.NumEdges()),
		in:     make([]float64, g.NumEdges()),
		outOff: make([]int32, n+1),
		inOff:  make([]int32, n+1),
	}
	for u := 0; u < n; u++ {
		w.outOff[u+1] = w.outOff[u] + int32(g.OutDegree(graph.NodeID(u)))
		w.inOff[u+1] = w.inOff[u] + int32(g.InDegree(graph.NodeID(u)))
	}
	return w
}

// Graph returns the underlying graph.
func (w *Weights) Graph() *graph.Graph { return w.g }

func (w *Weights) outPos(u, v graph.NodeID) (int32, bool) {
	row := w.g.Out(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	if i == len(row) || row[i] != v {
		return 0, false
	}
	return w.outOff[u] + int32(i), true
}

func (w *Weights) inPos(u, v graph.NodeID) (int32, bool) {
	row := w.g.In(v)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= u })
	if i == len(row) || row[i] != u {
		return 0, false
	}
	return w.inOff[v] + int32(i), true
}

// Set assigns probability p to edge u->v.
func (w *Weights) Set(u, v graph.NodeID, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("cascade: weight %g out of [0,1] on edge (%d,%d)", p, u, v)
	}
	op, ok := w.outPos(u, v)
	if !ok {
		return fmt.Errorf("cascade: edge (%d,%d) not in graph", u, v)
	}
	ip, _ := w.inPos(u, v)
	w.out[op] = p
	w.in[ip] = p
	return nil
}

// Get returns the probability of edge u->v, or 0 if the edge is absent.
func (w *Weights) Get(u, v graph.NodeID) float64 {
	if op, ok := w.outPos(u, v); ok {
		return w.out[op]
	}
	return 0
}

// OutRow returns the weights aligned with g.Out(u). The slice aliases
// internal storage and must not be modified.
func (w *Weights) OutRow(u graph.NodeID) []float64 {
	return w.out[w.outOff[u]:w.outOff[u+1]]
}

// InRow returns the weights aligned with g.In(u). The slice aliases
// internal storage and must not be modified.
func (w *Weights) InRow(u graph.NodeID) []float64 {
	return w.in[w.inOff[u]:w.inOff[u+1]]
}

// InSum returns the total incoming weight of u, which the LT model
// requires to be at most 1.
func (w *Weights) InSum(u graph.NodeID) float64 {
	sum := 0.0
	for _, p := range w.InRow(u) {
		sum += p
	}
	return sum
}

// Clone returns a deep copy sharing the graph.
func (w *Weights) Clone() *Weights {
	c := NewWeights(w.g)
	copy(c.out, w.out)
	copy(c.in, w.in)
	return c
}
