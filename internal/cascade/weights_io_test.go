package cascade

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
)

// TestWeightsIOBitExact audits the %g probability serialization: every
// stored weight must survive a write/read round trip with identical
// float64 bits (%g with default precision emits Go's shortest decimal
// that parses back to the same value), including repeating binary
// fractions and a denormal.
func TestWeightsIOBitExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 31))
	w := randomWeighted(rng, 25, 0.8)
	g := w.Graph()
	// Overwrite a few live edges with formatting edge cases.
	hard := []float64{1.0 / 3.0, 0.1 + 0.2, 5e-324, math.Nextafter(0.5, 1)}
	i := 0
	for u := int32(0); int(u) < g.NumNodes() && i < len(hard); u++ {
		for _, v := range g.Out(u) {
			if i >= len(hard) {
				break
			}
			if err := w.Set(u, v, hard[i]); err != nil {
				t.Fatal(err)
			}
			i++
		}
	}

	var buf bytes.Buffer
	if err := WriteWeights(&buf, w); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	back, err := ReadWeights(bytes.NewBufferString(first), g)
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Out(u) {
			a, b := w.Get(u, v), back.Get(u, v)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("weight (%d,%d) bits differ: %v -> %v", u, v, a, b)
			}
		}
	}
	// The format is also byte-stable: edges are written in graph order.
	var again bytes.Buffer
	if err := WriteWeights(&again, back); err != nil {
		t.Fatal(err)
	}
	if again.String() != first {
		t.Fatal("re-serialized weights are not byte-identical")
	}
}
