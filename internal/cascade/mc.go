package cascade

import (
	"math/rand/v2"
	"runtime"
	"sync"

	"credist/internal/graph"
)

// Model selects a propagation model for simulation.
type Model int

const (
	// IC is the Independent Cascade model.
	IC Model = iota
	// LT is the Linear Threshold model.
	LT
)

// String returns the conventional short name of the model.
func (m Model) String() string {
	switch m {
	case IC:
		return "IC"
	case LT:
		return "LT"
	default:
		return "unknown"
	}
}

// MCOptions configures Monte-Carlo spread estimation.
type MCOptions struct {
	// Trials is the number of simulations averaged (paper: 10,000;
	// default here 1,000 — see DESIGN.md §4).
	Trials int
	// Workers is the parallelism degree (default GOMAXPROCS).
	Workers int
	// Seed seeds the per-worker RNG streams; estimates are deterministic
	// given (Seed, Trials, Workers).
	Seed uint64
}

func (o MCOptions) withDefaults() MCOptions {
	if o.Trials == 0 {
		o.Trials = 1000
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// MCEstimator estimates expected spread sigma_m(S) by repeated simulation,
// the standard approach of Kempe et al. that the credit-distribution model
// is designed to avoid.
type MCEstimator struct {
	weights *Weights
	model   Model
	opts    MCOptions

	mu       sync.Mutex
	icStates []*ICState
	ltStates []*LTState
}

// NewMCEstimator returns an estimator for the given model over weighted
// graph w.
func NewMCEstimator(w *Weights, model Model, opts MCOptions) *MCEstimator {
	return &MCEstimator{weights: w, model: model, opts: opts.withDefaults()}
}

// Spread returns the Monte-Carlo estimate of expected spread of seeds.
func (e *MCEstimator) Spread(seeds []graph.NodeID) float64 {
	opts := e.opts
	workers := opts.Workers
	if workers > opts.Trials {
		workers = opts.Trials
	}
	if workers < 1 {
		workers = 1
	}
	per := opts.Trials / workers
	extra := opts.Trials % workers

	sums := make([]float64, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		trials := per
		if wk < extra {
			trials++
		}
		wg.Add(1)
		go func(wk, trials int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(opts.Seed, uint64(wk)+1))
			sum := 0.0
			switch e.model {
			case IC:
				st := e.getICState()
				for t := 0; t < trials; t++ {
					sum += float64(SimulateIC(e.weights, seeds, rng, st))
				}
				e.putICState(st)
			case LT:
				st := e.getLTState()
				for t := 0; t < trials; t++ {
					sum += float64(SimulateLT(e.weights, seeds, rng, st))
				}
				e.putLTState(st)
			}
			sums[wk] = sum
		}(wk, trials)
	}
	wg.Wait()
	total := 0.0
	for _, s := range sums {
		total += s
	}
	return total / float64(opts.Trials)
}

func (e *MCEstimator) getICState() *ICState {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.icStates); n > 0 {
		st := e.icStates[n-1]
		e.icStates = e.icStates[:n-1]
		return st
	}
	return NewICState(e.weights.Graph())
}

func (e *MCEstimator) putICState(st *ICState) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.icStates = append(e.icStates, st)
}

func (e *MCEstimator) getLTState() *LTState {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.ltStates); n > 0 {
		st := e.ltStates[n-1]
		e.ltStates = e.ltStates[:n-1]
		return st
	}
	return NewLTState(e.weights.Graph())
}

func (e *MCEstimator) putLTState(st *LTState) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ltStates = append(e.ltStates, st)
}
