package cascade

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"credist/internal/graph"
)

func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestWeightsSetGet(t *testing.T) {
	g := lineGraph(t, 3)
	w := NewWeights(g)
	if err := w.Set(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if got := w.Get(0, 1); got != 0.5 {
		t.Fatalf("Get = %g, want 0.5", got)
	}
	if got := w.Get(1, 0); got != 0 {
		t.Fatalf("absent edge Get = %g, want 0", got)
	}
	if err := w.Set(0, 2, 0.3); err == nil {
		t.Fatal("Set on missing edge should fail")
	}
	if err := w.Set(0, 1, 1.5); err == nil {
		t.Fatal("Set with p>1 should fail")
	}
	if err := w.Set(0, 1, -0.1); err == nil {
		t.Fatal("Set with p<0 should fail")
	}
}

func TestWeightsRowsAligned(t *testing.T) {
	b := graph.NewBuilder(4)
	edges := [][2]graph.NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 3}, {2, 3}}
	for _, e := range edges {
		_ = b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	w := NewWeights(g)
	for i, e := range edges {
		if err := w.Set(e[0], e[1], float64(i+1)/10); err != nil {
			t.Fatal(err)
		}
	}
	out := g.Out(0)
	row := w.OutRow(0)
	for i, v := range out {
		if row[i] != w.Get(0, v) {
			t.Fatalf("OutRow misaligned at %d", i)
		}
	}
	in := g.In(3)
	irow := w.InRow(3)
	for i, v := range in {
		if irow[i] != w.Get(v, 3) {
			t.Fatalf("InRow misaligned at %d", i)
		}
	}
	if got, want := w.InSum(3), w.Get(0, 3)+w.Get(1, 3)+w.Get(2, 3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("InSum = %g, want %g", got, want)
	}
}

func TestWeightsClone(t *testing.T) {
	g := lineGraph(t, 3)
	w := NewWeights(g)
	_ = w.Set(0, 1, 0.4)
	c := w.Clone()
	_ = c.Set(0, 1, 0.9)
	if w.Get(0, 1) != 0.4 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestSimulateICDeterministicEdges(t *testing.T) {
	g := lineGraph(t, 5)
	w := NewWeights(g)
	for i := 0; i < 4; i++ {
		_ = w.Set(graph.NodeID(i), graph.NodeID(i+1), 1.0)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	if got := SimulateIC(w, []graph.NodeID{0}, rng, nil); got != 5 {
		t.Fatalf("p=1 chain spread = %d, want 5", got)
	}
	w2 := NewWeights(g) // all zero
	if got := SimulateIC(w2, []graph.NodeID{0}, rng, nil); got != 1 {
		t.Fatalf("p=0 spread = %d, want 1", got)
	}
}

func TestSimulateLTDeterministicEdges(t *testing.T) {
	g := lineGraph(t, 5)
	w := NewWeights(g)
	for i := 0; i < 4; i++ {
		_ = w.Set(graph.NodeID(i), graph.NodeID(i+1), 1.0)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	// Incoming weight 1 >= any threshold in [0,1): full chain activates.
	if got := SimulateLT(w, []graph.NodeID{0}, rng, nil); got != 5 {
		t.Fatalf("w=1 chain LT spread = %d, want 5", got)
	}
}

func TestSimulateDuplicateSeeds(t *testing.T) {
	g := lineGraph(t, 3)
	w := NewWeights(g)
	rng := rand.New(rand.NewPCG(2, 2))
	if got := SimulateIC(w, []graph.NodeID{0, 0, 0}, rng, nil); got != 1 {
		t.Fatalf("duplicate seeds counted: %d", got)
	}
	if got := SimulateLT(w, []graph.NodeID{1, 1}, rng, nil); got != 1 {
		t.Fatalf("duplicate LT seeds counted: %d", got)
	}
}

func TestSimulateICActivatedMatchesCount(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := 5 + int(seed%10)
		b := graph.NewBuilder(n)
		for e := 0; e < n*2; e++ {
			u, v := graph.NodeID(rng.IntN(n)), graph.NodeID(rng.IntN(n))
			if u != v {
				_ = b.AddEdge(u, v)
			}
		}
		g := b.Build()
		w := NewWeights(g)
		for u := int32(0); int(u) < n; u++ {
			for _, v := range g.Out(u) {
				_ = w.Set(u, v, rng.Float64())
			}
		}
		r1 := rand.New(rand.NewPCG(seed, 99))
		r2 := rand.New(rand.NewPCG(seed, 99))
		count := SimulateIC(w, []graph.NodeID{0}, r1, nil)
		nodes := SimulateICActivated(w, []graph.NodeID{0}, r2)
		return count == len(nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMCEstimatorBounds(t *testing.T) {
	g := lineGraph(t, 10)
	w := NewWeights(g)
	for i := 0; i < 9; i++ {
		_ = w.Set(graph.NodeID(i), graph.NodeID(i+1), 0.5)
	}
	for _, model := range []Model{IC, LT} {
		mc := NewMCEstimator(w, model, MCOptions{Trials: 500, Seed: 42})
		sp := mc.Spread([]graph.NodeID{0})
		if sp < 1 || sp > 10 {
			t.Fatalf("%v spread %g out of [1,10]", model, sp)
		}
	}
}

func TestMCEstimatorDeterministicGivenSeed(t *testing.T) {
	g := lineGraph(t, 20)
	w := NewWeights(g)
	for i := 0; i < 19; i++ {
		_ = w.Set(graph.NodeID(i), graph.NodeID(i+1), 0.7)
	}
	mc1 := NewMCEstimator(w, IC, MCOptions{Trials: 200, Seed: 7, Workers: 4})
	mc2 := NewMCEstimator(w, IC, MCOptions{Trials: 200, Seed: 7, Workers: 4})
	if a, b := mc1.Spread([]graph.NodeID{0}), mc2.Spread([]graph.NodeID{0}); a != b {
		t.Fatalf("same seed gave %g vs %g", a, b)
	}
}

func TestMCEstimatorChainExpectation(t *testing.T) {
	// Chain 0->1 with p=0.5: expected spread of {0} is 1.5.
	g := lineGraph(t, 2)
	w := NewWeights(g)
	_ = w.Set(0, 1, 0.5)
	mc := NewMCEstimator(w, IC, MCOptions{Trials: 20000, Seed: 11})
	sp := mc.Spread([]graph.NodeID{0})
	if math.Abs(sp-1.5) > 0.03 {
		t.Fatalf("spread = %g, want ~1.5", sp)
	}
}

func TestMCEstimatorMonotoneInSeeds(t *testing.T) {
	g := lineGraph(t, 10)
	w := NewWeights(g)
	for i := 0; i < 9; i++ {
		_ = w.Set(graph.NodeID(i), graph.NodeID(i+1), 0.3)
	}
	mc := NewMCEstimator(w, IC, MCOptions{Trials: 2000, Seed: 5})
	s1 := mc.Spread([]graph.NodeID{0})
	s2 := mc.Spread([]graph.NodeID{0, 5})
	if s2 <= s1 {
		t.Fatalf("adding a seed should raise MC spread: %g vs %g", s1, s2)
	}
}

func TestGreedyEstimatorInterface(t *testing.T) {
	g := lineGraph(t, 6)
	w := NewWeights(g)
	for i := 0; i < 5; i++ {
		_ = w.Set(graph.NodeID(i), graph.NodeID(i+1), 1.0)
	}
	mc := NewMCEstimator(w, IC, MCOptions{Trials: 50, Seed: 3})
	est := NewGreedyEstimator(mc)
	if est.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d", est.NumNodes())
	}
	g0 := est.Gain(0) // deterministic chain: spread 6
	if math.Abs(g0-6) > 1e-9 {
		t.Fatalf("Gain(0) = %g, want 6", g0)
	}
	est.Add(0)
	if got := est.Gain(1); got != 0 {
		t.Fatalf("Gain(1) after covering chain = %g, want 0", got)
	}
	if seeds := est.Seeds(); len(seeds) != 1 || seeds[0] != 0 {
		t.Fatalf("Seeds = %v", seeds)
	}
}

func TestModelString(t *testing.T) {
	if IC.String() != "IC" || LT.String() != "LT" || Model(9).String() != "unknown" {
		t.Fatal("Model.String wrong")
	}
}

func TestWeightsIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(30, 30))
	w := randomWeighted(rng, 25, 0.8)
	var buf bytes.Buffer
	if err := WriteWeights(&buf, w); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWeights(&buf, w.Graph())
	if err != nil {
		t.Fatal(err)
	}
	g := w.Graph()
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Out(u) {
			a, b := w.Get(u, v), back.Get(u, v)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("weight (%d,%d) = %g after round trip, want %g", u, v, b, a)
			}
		}
	}
}

func TestReadWeightsErrors(t *testing.T) {
	g := lineGraph(t, 3)
	cases := []string{
		"",
		"zzz\n",
		"5\n",          // wrong node count
		"3\n0 1\n",     // missing probability
		"3\n0 1 2.5\n", // out of range
		"3\nx 1 0.5\n", // bad from
		"3\n0 2 0.5\n", // edge not in graph
	}
	for _, in := range cases {
		if _, err := ReadWeights(bytes.NewBufferString(in), g); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
	// Comments and blank lines are fine.
	if _, err := ReadWeights(bytes.NewBufferString("# c\n3\n\n0 1 0.5\n"), g); err != nil {
		t.Fatal(err)
	}
}
