// Package heuristic implements the scalable influence-maximization
// baselines the paper uses where Monte-Carlo greedy is impractical
// (Section 2.1, Figure 5): the PMIA heuristic of Chen et al. (KDD 2010)
// for the IC model and the LDAG heuristic of Chen et al. (ICDM 2010) for
// the LT model.
//
// Both estimators restrict influence to local structures anchored at each
// node: the maximum-influence in-arborescence MIIA(u, theta), the union of
// best (highest propagation probability) paths into u with path
// probability at least theta. We implement the MIA variant of PMIA
// (static arborescences) and an arborescence-shaped LDAG; see DESIGN.md §5
// for why these simplifications preserve the baselines' role.
package heuristic

import (
	"container/heap"
	"math"
	"sort"

	"credist/internal/cascade"
	"credist/internal/graph"
)

// arborEdge connects a child (index into the arborescence's node list) to
// its parent with the original edge probability/weight.
type arborEdge struct {
	child int32
	p     float64
}

// arbor is a maximum-influence in-arborescence rooted at Root: a tree of
// best paths into the root. Nodes are stored leaves-first (decreasing
// distance), so a single forward pass computes activation probabilities.
type arbor struct {
	root     graph.NodeID
	nodes    []graph.NodeID
	children [][]arborEdge // aligned with nodes
	index    map[graph.NodeID]int32
}

type dijkstraItem struct {
	node graph.NodeID
	dist float64
}

type dijkstraHeap []dijkstraItem

func (h dijkstraHeap) Len() int           { return len(h) }
func (h dijkstraHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h dijkstraHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *dijkstraHeap) Push(x any)        { *h = append(*h, x.(dijkstraItem)) }
func (h *dijkstraHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// buildArbor runs a backward Dijkstra from root over -log(p) edge lengths,
// keeping nodes whose best path probability into root is at least theta,
// and returns the resulting in-arborescence.
func buildArbor(w *cascade.Weights, root graph.NodeID, theta float64) *arbor {
	g := w.Graph()
	maxDist := -math.Log(theta)
	dist := map[graph.NodeID]float64{root: 0}
	parent := map[graph.NodeID]graph.NodeID{}
	done := map[graph.NodeID]bool{}
	h := dijkstraHeap{{node: root, dist: 0}}
	for len(h) > 0 {
		it := heap.Pop(&h).(dijkstraItem)
		if done[it.node] || it.dist != dist[it.node] {
			continue
		}
		done[it.node] = true
		in := g.In(it.node)
		probs := w.InRow(it.node)
		for i, v := range in {
			p := probs[i]
			if p <= 0 {
				continue
			}
			nd := it.dist - math.Log(p)
			if nd > maxDist {
				continue
			}
			if old, ok := dist[v]; !ok || nd < old {
				dist[v] = nd
				parent[v] = it.node
				heap.Push(&h, dijkstraItem{node: v, dist: nd})
			}
		}
	}
	// Order nodes leaves-first, root last. Distance alone is not a valid
	// topological key when an edge has probability 1 (zero length), so
	// ties are broken by tree depth: children are always deeper than their
	// parent and sort first.
	depth := map[graph.NodeID]int{root: 0}
	var depthOf func(v graph.NodeID) int
	depthOf = func(v graph.NodeID) int {
		if d, ok := depth[v]; ok {
			return d
		}
		d := depthOf(parent[v]) + 1
		depth[v] = d
		return d
	}
	a := &arbor{root: root, index: make(map[graph.NodeID]int32, len(dist))}
	type nd struct {
		node  graph.NodeID
		dist  float64
		depth int
	}
	ordered := make([]nd, 0, len(dist))
	for v, d := range dist {
		if done[v] {
			ordered = append(ordered, nd{v, d, depthOf(v)})
		}
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].dist != ordered[j].dist {
			return ordered[i].dist > ordered[j].dist
		}
		if ordered[i].depth != ordered[j].depth {
			return ordered[i].depth > ordered[j].depth
		}
		return ordered[i].node < ordered[j].node
	})
	a.nodes = make([]graph.NodeID, len(ordered))
	a.children = make([][]arborEdge, len(ordered))
	for i, o := range ordered {
		a.nodes[i] = o.node
		a.index[o.node] = int32(i)
	}
	for i, o := range ordered {
		if o.node == root {
			continue
		}
		par := parent[o.node]
		pi := a.index[par]
		a.children[pi] = append(a.children[pi], arborEdge{
			child: int32(i),
			p:     w.Get(o.node, par),
		})
	}
	return a
}
