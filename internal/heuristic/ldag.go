package heuristic

import (
	"container/heap"

	"credist/internal/cascade"
	"credist/internal/graph"
)

// buildLDAG constructs LDAG(root, theta) following Chen et al. (ICDM
// 2010): grow a node set X greedily by the influence each candidate exerts
// on the root *through the current DAG*. Under the LT model that influence
// is linear, so it satisfies
//
//	Inf(y) = sum over out-neighbors x of y already in X of b(y,x)*Inf(x)
//
// with Inf(root) = 1, and can be maintained additively as nodes join. A
// candidate is admitted while its influence is at least theta. Edges run
// from each admitted node to its out-neighbors admitted earlier, so the
// structure is acyclic by insertion order.
//
// The result reuses the arbor representation: nodes leaves-first (reverse
// insertion order, root last) with children lists carrying LT weights —
// unlike buildArbor, a node may contribute to several parents, making this
// a genuine DAG rather than a tree.
func buildLDAG(w *cascade.Weights, root graph.NodeID, theta float64) *arbor {
	const maxNodes = 1 << 13 // guards against runaway DAGs on dense cores

	g := w.Graph()
	inf := map[graph.NodeID]float64{root: 1}
	inX := map[graph.NodeID]bool{}
	insertOrder := make([]graph.NodeID, 0, 16)

	h := maxHeap{{node: root, inf: 1}}
	for len(h) > 0 && len(insertOrder) < maxNodes {
		top := heap.Pop(&h).(maxItem)
		if inX[top.node] || top.inf != inf[top.node] {
			continue // stale entry
		}
		if top.inf < theta {
			break
		}
		inX[top.node] = true
		insertOrder = append(insertOrder, top.node)
		// Admitting x raises the DAG influence of every in-neighbor.
		in := g.In(top.node)
		weights := w.InRow(top.node)
		for i, y := range in {
			b := weights[i]
			if b <= 0 || inX[y] {
				continue
			}
			inf[y] += b * top.inf
			heap.Push(&h, maxItem{node: y, inf: inf[y]})
		}
	}

	a := &arbor{
		root:     root,
		nodes:    make([]graph.NodeID, len(insertOrder)),
		children: make([][]arborEdge, len(insertOrder)),
		index:    make(map[graph.NodeID]int32, len(insertOrder)),
	}
	// Reverse insertion order: later-admitted nodes are "further" from the
	// root and must be evaluated first by the DP.
	n := len(insertOrder)
	for i, node := range insertOrder {
		pos := int32(n - 1 - i)
		a.nodes[pos] = node
		a.index[node] = pos
	}
	// DAG edges: from each admitted node to its out-neighbors admitted
	// strictly earlier (closer to the root).
	admittedAt := make(map[graph.NodeID]int, n)
	for i, node := range insertOrder {
		admittedAt[node] = i
	}
	for i, node := range insertOrder {
		out := g.Out(node)
		weights := w.OutRow(node)
		for k, x := range out {
			j, ok := admittedAt[x]
			if !ok || j >= i {
				continue
			}
			b := weights[k]
			if b <= 0 {
				continue
			}
			parentPos := a.index[x]
			a.children[parentPos] = append(a.children[parentPos], arborEdge{
				child: a.index[node],
				p:     b,
			})
		}
	}
	return a
}

type maxItem struct {
	node graph.NodeID
	inf  float64
}

type maxHeap []maxItem

func (h maxHeap) Len() int           { return len(h) }
func (h maxHeap) Less(i, j int) bool { return h[i].inf > h[j].inf }
func (h maxHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x any)        { *h = append(*h, x.(maxItem)) }
func (h *maxHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
