package heuristic

import (
	"math"
	"math/rand/v2"
	"testing"

	"credist/internal/cascade"
	"credist/internal/graph"
)

func TestLDAGDiamondCapturesBothPaths(t *testing.T) {
	// Diamond: 0 -> 1 -> 3 and 0 -> 2 -> 3 with weight 0.4 everywhere.
	// Under LT the influence of 0 on 3 is 0.4*0.4 + 0.4*0.4 = 0.32. A tree
	// (arborescence) would keep only one path and report 0.16; the full
	// LDAG must see both.
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(0, 2)
	_ = b.AddEdge(1, 3)
	_ = b.AddEdge(2, 3)
	g := b.Build()
	w := cascade.NewWeights(g)
	for _, e := range g.Edges() {
		_ = w.Set(e.From, e.To, 0.4)
	}
	est := NewLDAG(w, 0.01)
	// Gain(0) = 1 (self) + 0.4 (node1) + 0.4 (node2) + 0.32 (node3).
	if got := est.Gain(0); math.Abs(got-2.12) > 1e-9 {
		t.Fatalf("LDAG Gain(0) = %g, want 2.12 (both diamond paths)", got)
	}
}

func TestLDAGIsAcyclic(t *testing.T) {
	// children edges must always point from later-admitted (higher index
	// in nodes order means earlier here) — verify no node is its own
	// ancestor via DFS over children lists.
	rng := rand.New(rand.NewPCG(14, 14))
	w := randomWeights(rng, 25)
	for root := graph.NodeID(0); root < 25; root += 5 {
		a := buildLDAG(w, root, 0.01)
		// children[i] reference strictly smaller positions? They reference
		// any position; acyclicity holds if child position < parent
		// position never happens... our DP order requires child positions
		// < parent positions in nodes order.
		for parent, edges := range a.children {
			for _, e := range edges {
				if int(e.child) >= parent {
					t.Fatalf("root %d: child %d not before parent %d in topo order",
						root, e.child, parent)
				}
			}
		}
		if len(a.nodes) > 0 && a.nodes[len(a.nodes)-1] != root {
			t.Fatalf("root not last in topo order")
		}
	}
}

func TestLDAGThresholdPrunes(t *testing.T) {
	// Chain with weight 0.3: influence of node k hops away is 0.3^k.
	w := chainWeights(t, 8, 0.3)
	big := buildLDAG(w, 7, 0.001) // 0.3^5 = 0.00243 >= 0.001 > 0.3^6 -> 6 nodes
	small := buildLDAG(w, 7, 0.1) // 0.3^1 = 0.3 >= 0.1 > 0.3^2 -> 2 nodes
	if len(big.nodes) != 6 {
		t.Fatalf("theta=0.001 kept %d nodes, want 6", len(big.nodes))
	}
	if len(small.nodes) != 2 {
		t.Fatalf("theta=0.1 kept %d nodes, want 2", len(small.nodes))
	}
}

func TestLDAGGainConsistentWithSpread(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 15))
	w := randomWeights(rng, 20)
	est := NewLDAG(w, 0.02)
	for round := 0; round < 4; round++ {
		x := graph.NodeID(rng.IntN(est.NumNodes()))
		gain := est.Gain(x)
		before := est.Spread()
		est.Add(x)
		if math.Abs(est.Spread()-before-gain) > 1e-9 {
			t.Fatalf("round %d: gain %g but spread moved %g", round, gain, est.Spread()-before)
		}
	}
}

func TestLDAGAgainstMCOnSparseGraph(t *testing.T) {
	// LT MC and the LDAG estimator should agree within a modest factor
	// for singleton seeds on sparse graphs with valid LT weights.
	rng := rand.New(rand.NewPCG(16, 16))
	w := randomWeights(rng, 30)
	// Normalize in-weights to a valid LT instance.
	g := w.Graph()
	norm := cascade.NewWeights(g)
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		sum := w.InSum(u)
		scale := 1.0
		if sum > 1 {
			scale = 1 / sum
		}
		in := g.In(u)
		weights := w.InRow(u)
		for i, v := range in {
			_ = norm.Set(v, u, weights[i]*scale)
		}
	}
	est := NewLDAG(norm, 0.001)
	mc := cascade.NewMCEstimator(norm, cascade.LT, cascade.MCOptions{Trials: 8000, Seed: 4})
	for _, u := range []graph.NodeID{0, 11, 23} {
		h := est.Gain(u)
		m := mc.Spread([]graph.NodeID{u})
		if h < 0.5*m || h > 2.0*m {
			t.Fatalf("LDAG %g far from LT-MC %g for node %d", h, m, u)
		}
	}
}
