package heuristic

import (
	"credist/internal/cascade"
	"credist/internal/graph"
)

// Estimator approximates expected spread through per-node local
// arborescences, providing the marginal-gain interface the greedy/CELF
// selectors consume (it satisfies seedsel.Estimator). With mode IC it is
// the (P)MIA heuristic; with mode LT it is the arborescence-shaped LDAG
// heuristic.
type Estimator struct {
	w     *cascade.Weights
	mode  cascade.Model
	theta float64

	arbs  []*arbor  // per root node
	roots [][]int32 // roots[v]: list of root ids whose arborescence contains v
	ap    []float64 // current activation probability of each root given S
	inS   []bool
	// scratch buffer for DP values, sized to the largest arborescence
	val []float64
}

// DefaultTheta is the influence threshold used when none is given; 1/320
// is the setting Chen et al. recommend.
const DefaultTheta = 1.0 / 320

// NewPMIA builds the IC-model heuristic estimator over weighted graph w.
func NewPMIA(w *cascade.Weights, theta float64) *Estimator {
	return newEstimator(w, cascade.IC, theta)
}

// NewLDAG builds the LT-model heuristic estimator over weighted graph w,
// constructing a genuine local DAG per node via the additive-influence
// procedure of Chen et al. (see buildLDAG).
func NewLDAG(w *cascade.Weights, theta float64) *Estimator {
	return newEstimator(w, cascade.LT, theta)
}

func newEstimator(w *cascade.Weights, mode cascade.Model, theta float64) *Estimator {
	if theta <= 0 {
		theta = DefaultTheta
	}
	g := w.Graph()
	n := g.NumNodes()
	e := &Estimator{
		w:     w,
		mode:  mode,
		theta: theta,
		arbs:  make([]*arbor, n),
		roots: make([][]int32, n),
		ap:    make([]float64, n),
		inS:   make([]bool, n),
	}
	maxArb := 0
	for u := 0; u < n; u++ {
		var a *arbor
		if mode == cascade.LT {
			a = buildLDAG(w, graph.NodeID(u), theta)
		} else {
			a = buildArbor(w, graph.NodeID(u), theta)
		}
		e.arbs[u] = a
		if len(a.nodes) > maxArb {
			maxArb = len(a.nodes)
		}
		for _, v := range a.nodes {
			e.roots[v] = append(e.roots[v], int32(u))
		}
	}
	e.val = make([]float64, maxArb)
	return e
}

// NumNodes implements the estimator interface.
func (e *Estimator) NumNodes() int { return len(e.arbs) }

// Spread returns the current heuristic spread estimate: the sum over all
// nodes of their activation probability in their own arborescence.
func (e *Estimator) Spread() float64 {
	total := 0.0
	for _, p := range e.ap {
		total += p
	}
	return total
}

// evalRoot computes the activation probability of the arborescence root
// under the committed seed set plus the optional extra seed (extra < 0 for
// none). IC combines child contributions as independent attempts; LT sums
// them (linear on trees/DAGs), clamped to 1.
func (e *Estimator) evalRoot(a *arbor, extra graph.NodeID) float64 {
	val := e.val[:len(a.nodes)]
	for i, node := range a.nodes {
		if e.inS[node] || node == extra {
			val[i] = 1
			continue
		}
		switch e.mode {
		case cascade.IC:
			q := 1.0
			for _, ce := range a.children[i] {
				q *= 1 - val[ce.child]*ce.p
			}
			val[i] = 1 - q
		case cascade.LT:
			sum := 0.0
			for _, ce := range a.children[i] {
				sum += val[ce.child] * ce.p
			}
			if sum > 1 {
				sum = 1
			}
			val[i] = sum
		}
	}
	return val[len(a.nodes)-1]
}

// Gain returns the heuristic marginal gain of adding x: the total increase
// in activation probability across every arborescence containing x.
func (e *Estimator) Gain(x graph.NodeID) float64 {
	if e.inS[x] {
		return 0
	}
	delta := 0.0
	for _, r := range e.roots[x] {
		delta += e.evalRoot(e.arbs[r], x) - e.ap[r]
	}
	return delta
}

// Add commits x to the seed set and refreshes the activation probability
// of every affected root.
func (e *Estimator) Add(x graph.NodeID) {
	if e.inS[x] {
		return
	}
	e.inS[x] = true
	for _, r := range e.roots[x] {
		e.ap[r] = e.evalRoot(e.arbs[r], -1)
	}
}

// Seeds returns the committed seed set (ascending ids).
func (e *Estimator) Seeds() []graph.NodeID {
	var out []graph.NodeID
	for u, in := range e.inS {
		if in {
			out = append(out, graph.NodeID(u))
		}
	}
	return out
}
