package heuristic

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"credist/internal/cascade"
	"credist/internal/graph"
	"credist/internal/seedsel"
)

func chainWeights(t *testing.T, n int, p float64) *cascade.Weights {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	w := cascade.NewWeights(b.Build())
	for i := 0; i < n-1; i++ {
		if err := w.Set(graph.NodeID(i), graph.NodeID(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func randomWeights(rng *rand.Rand, n int) *cascade.Weights {
	b := graph.NewBuilder(n)
	for e := 0; e < n*3; e++ {
		u, v := graph.NodeID(rng.IntN(n)), graph.NodeID(rng.IntN(n))
		if u != v {
			_ = b.AddEdge(u, v)
		}
	}
	g := b.Build()
	w := cascade.NewWeights(g)
	for u := int32(0); int(u) < n; u++ {
		for _, v := range g.Out(u) {
			_ = w.Set(u, v, 0.05+0.4*rng.Float64())
		}
	}
	return w
}

func TestArborChainExact(t *testing.T) {
	// Chain with p=0.5: MIIA of the last node includes ancestors while the
	// path product stays >= theta.
	w := chainWeights(t, 6, 0.5)
	a := buildArbor(w, 5, 0.1) // 0.5^3=0.125 >= 0.1 > 0.5^4
	if len(a.nodes) != 4 {     // nodes 2,3,4,5
		t.Fatalf("arbor size = %d, want 4", len(a.nodes))
	}
	if a.nodes[len(a.nodes)-1] != 5 {
		t.Fatalf("root not last: %v", a.nodes)
	}
}

func TestArborRootOnly(t *testing.T) {
	w := chainWeights(t, 3, 0.0001)
	a := buildArbor(w, 2, 0.5)
	if len(a.nodes) != 1 || a.nodes[0] != 2 {
		t.Fatalf("arbor = %v, want just root", a.nodes)
	}
}

func TestArborHandlesProbabilityOne(t *testing.T) {
	// p=1 edges create zero-length Dijkstra ties; the topological order
	// must still put children before parents.
	w := chainWeights(t, 5, 1.0)
	a := buildArbor(w, 4, 0.5)
	if len(a.nodes) != 5 {
		t.Fatalf("arbor size = %d, want 5", len(a.nodes))
	}
	est := NewPMIA(w, 0.5)
	if got := est.Gain(0); math.Abs(got-5) > 1e-9 {
		t.Fatalf("deterministic chain gain = %g, want 5", got)
	}
}

func TestPMIAChainGain(t *testing.T) {
	// Chain 0->1->2 with p=0.5, theta small enough to include everything:
	// Gain(0) = 1 + 0.5 + 0.25 = 1.75 exactly (paths are unique on chains).
	w := chainWeights(t, 3, 0.5)
	est := NewPMIA(w, 0.01)
	if got := est.Gain(0); math.Abs(got-1.75) > 1e-9 {
		t.Fatalf("Gain(0) = %g, want 1.75", got)
	}
	est.Add(0)
	// With 0 seeded, 1 activates with 0.5; adding 1 raises it to 1 and 2
	// from 0.25 to 0.5: gain = 0.5 + 0.25 = 0.75.
	if got := est.Gain(1); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("Gain(1) = %g, want 0.75", got)
	}
	if got := est.Gain(0); got != 0 {
		t.Fatalf("Gain of committed seed = %g, want 0", got)
	}
}

func TestLDAGChainGain(t *testing.T) {
	// LT on a chain with w=0.5: activation probability of node k hops away
	// is 0.5^k (linear DP), same numbers as IC on a chain.
	w := chainWeights(t, 3, 0.5)
	est := NewLDAG(w, 0.01)
	if got := est.Gain(0); math.Abs(got-1.75) > 1e-9 {
		t.Fatalf("Gain(0) = %g, want 1.75", got)
	}
}

func TestEstimatorSpreadTracksAdds(t *testing.T) {
	w := chainWeights(t, 4, 0.5)
	est := NewPMIA(w, 0.01)
	if est.Spread() != 0 {
		t.Fatalf("initial spread = %g", est.Spread())
	}
	gain := est.Gain(0)
	est.Add(0)
	if math.Abs(est.Spread()-gain) > 1e-9 {
		t.Fatalf("spread %g != committed gain %g", est.Spread(), gain)
	}
	if got := est.Seeds(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Seeds = %v", got)
	}
	est.Add(0) // idempotent
	if got := est.Seeds(); len(got) != 1 {
		t.Fatalf("duplicate Add changed seeds: %v", got)
	}
}

func TestPMIAGainMatchesSpreadDelta(t *testing.T) {
	// Internal consistency: Gain(x) must equal the Spread() change
	// produced by Add(x).
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		w := randomWeights(rng, 8+rng.IntN(10))
		est := NewPMIA(w, 0.02)
		for round := 0; round < 3; round++ {
			x := graph.NodeID(rng.IntN(est.NumNodes()))
			gain := est.Gain(x)
			before := est.Spread()
			est.Add(x)
			if math.Abs(est.Spread()-before-gain) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLDAGGainMatchesSpreadDelta(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 6))
		w := randomWeights(rng, 8+rng.IntN(10))
		est := NewLDAG(w, 0.02)
		for round := 0; round < 3; round++ {
			x := graph.NodeID(rng.IntN(est.NumNodes()))
			gain := est.Gain(x)
			before := est.Spread()
			est.Add(x)
			if math.Abs(est.Spread()-before-gain) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPMIACloseToMonteCarlo(t *testing.T) {
	// On sparse random graphs with moderate probabilities the MIA estimate
	// should track MC spread within a modest relative error for singleton
	// seeds.
	rng := rand.New(rand.NewPCG(12, 12))
	w := randomWeights(rng, 40)
	est := NewPMIA(w, 0.001)
	mc := cascade.NewMCEstimator(w, cascade.IC, cascade.MCOptions{Trials: 8000, Seed: 9})
	for _, u := range []graph.NodeID{0, 7, 21} {
		h := est.Gain(u)
		m := mc.Spread([]graph.NodeID{u})
		if h < 0.5*m || h > 2.0*m {
			t.Fatalf("PMIA estimate %g far from MC %g for node %d", h, m, u)
		}
	}
}

func TestCELFOverPMIASelectsChainHead(t *testing.T) {
	w := chainWeights(t, 10, 0.9)
	res := seedsel.CELF(NewPMIA(w, 0.001), 1)
	if res.Seeds[0] != 0 {
		t.Fatalf("first seed = %d, want chain head 0", res.Seeds[0])
	}
}

func TestDefaultTheta(t *testing.T) {
	w := chainWeights(t, 3, 0.5)
	est := newEstimator(w, cascade.IC, 0) // 0 -> DefaultTheta
	if est.theta != DefaultTheta {
		t.Fatalf("theta = %g, want %g", est.theta, DefaultTheta)
	}
}
