package eval

import (
	"fmt"
	"strings"

	"credist/internal/graph"
)

// SeedSets is an ordered collection of named seed sets, one per method.
type SeedSets struct {
	Names []string
	Sets  [][]graph.NodeID
}

// Add appends a named seed set.
func (s *SeedSets) Add(name string, seeds []graph.NodeID) {
	s.Names = append(s.Names, name)
	s.Sets = append(s.Sets, seeds)
}

// Intersection returns |Sets[i] ∩ Sets[j]|.
func (s *SeedSets) Intersection(i, j int) int {
	in := make(map[graph.NodeID]bool, len(s.Sets[i]))
	for _, u := range s.Sets[i] {
		in[u] = true
	}
	count := 0
	for _, u := range s.Sets[j] {
		if in[u] {
			count++
		}
	}
	return count
}

// Matrix returns the full pairwise intersection-size matrix.
func (s *SeedSets) Matrix() [][]int {
	n := len(s.Sets)
	m := make([][]int, n)
	for i := 0; i < n; i++ {
		m[i] = make([]int, n)
		for j := 0; j < n; j++ {
			m[i][j] = s.Intersection(i, j)
		}
	}
	return m
}

// RenderMatrix formats the intersection matrix as the upper-triangular
// tables of Table 2 and Figure 5.
func (s *SeedSets) RenderMatrix() string {
	m := s.Matrix()
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "")
	for _, n := range s.Names {
		fmt.Fprintf(&b, "%6s", n)
	}
	b.WriteByte('\n')
	for i, name := range s.Names {
		fmt.Fprintf(&b, "%-6s", name)
		for j := range s.Names {
			if j < i {
				fmt.Fprintf(&b, "%6s", "")
			} else {
				fmt.Fprintf(&b, "%6d", m[i][j])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Overlap returns |a ∩ b|, a convenience for true-seed comparisons
// (Figure 9, Table 4).
func Overlap(a, b []graph.NodeID) int {
	in := make(map[graph.NodeID]bool, len(a))
	for _, u := range a {
		in[u] = true
	}
	count := 0
	for _, u := range b {
		if in[u] {
			count++
		}
	}
	return count
}
