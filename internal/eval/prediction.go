package eval

import (
	"math"
	"sort"
)

// BinRMSE is one point of the Figure 2/3 curves: the root-mean-squared
// prediction error over test propagations whose actual spread falls in
// the bin.
type BinRMSE struct {
	// BinLow is the inclusive lower edge of the bin on actual spread.
	BinLow int
	// Count is the number of test propagations in the bin.
	Count int
	// RMSE is the root mean squared error of predicted vs actual spread.
	RMSE float64
}

// ScatterPoint pairs a prediction with its ground truth (Figure 2(b)).
type ScatterPoint struct {
	Actual    int
	Predicted float64
}

// CapturePoint is one point of the Figure 4 curves: the fraction of test
// propagations predicted within AbsError of their actual spread.
type CapturePoint struct {
	AbsError int
	Ratio    float64
}

// PredictionReport is the full per-method output of the spread-prediction
// protocol.
type PredictionReport struct {
	Method  string
	Bins    []BinRMSE
	Scatter []ScatterPoint
	Capture []CapturePoint
	// OverallRMSE aggregates all test cases in one number.
	OverallRMSE float64
	// MeanAbsError aggregates the absolute errors.
	MeanAbsError float64
}

// RunSpreadPrediction executes Experiment 2 of Section 3 (also used for
// Figures 3 and 4): for every test propagation, predict the spread of its
// initiator set with each method and compare against the actual
// propagation size.
func RunSpreadPrediction(env *Env, predictors []Predictor, binWidth int, errGrid []int) []PredictionReport {
	reports := make([]PredictionReport, len(predictors))
	for i, p := range predictors {
		reports[i] = predictOne(env, p, binWidth, errGrid)
	}
	return reports
}

func predictOne(env *Env, p Predictor, binWidth int, errGrid []int) PredictionReport {
	rep := PredictionReport{Method: p.Name}
	type binAcc struct {
		sumSq float64
		count int
	}
	bins := map[int]*binAcc{}
	absErrs := make([]float64, 0, len(env.GroundTruth))
	sumSq := 0.0
	for _, tc := range env.GroundTruth {
		pred := p.Predict(tc.Initiators)
		rep.Scatter = append(rep.Scatter, ScatterPoint{Actual: tc.Actual, Predicted: pred})
		err := pred - float64(tc.Actual)
		sumSq += err * err
		absErrs = append(absErrs, math.Abs(err))
		bin := (tc.Actual / binWidth) * binWidth
		acc := bins[bin]
		if acc == nil {
			acc = &binAcc{}
			bins[bin] = acc
		}
		acc.sumSq += err * err
		acc.count++
	}
	n := len(env.GroundTruth)
	if n == 0 {
		return rep
	}
	rep.OverallRMSE = math.Sqrt(sumSq / float64(n))
	meanAbs := 0.0
	for _, e := range absErrs {
		meanAbs += e
	}
	rep.MeanAbsError = meanAbs / float64(n)

	lows := make([]int, 0, len(bins))
	for low := range bins {
		lows = append(lows, low)
	}
	sort.Ints(lows)
	for _, low := range lows {
		acc := bins[low]
		rep.Bins = append(rep.Bins, BinRMSE{
			BinLow: low,
			Count:  acc.count,
			RMSE:   math.Sqrt(acc.sumSq / float64(acc.count)),
		})
	}

	sort.Float64s(absErrs)
	for _, e := range errGrid {
		idx := sort.SearchFloat64s(absErrs, float64(e)+1e-9)
		rep.Capture = append(rep.Capture, CapturePoint{
			AbsError: e,
			Ratio:    float64(idx) / float64(n),
		})
	}
	return rep
}

// RMSE computes the root mean squared error between paired slices.
func RMSE(pred, actual []float64) float64 {
	if len(pred) != len(actual) || len(pred) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred)))
}
