package eval

import (
	"io"
	"math"
	"strings"
	"testing"

	"credist/internal/datagen"
	"credist/internal/graph"
)

// testEnv builds a small but non-trivial environment once per test run.
func testEnv(t *testing.T) *Env {
	t.Helper()
	cfg := datagen.Config{
		Name: "eval-test", NumUsers: 400, OutDegree: 4, Reciprocity: 0.6,
		NumActions: 250, MeanInfluence: 0.07, MeanDelay: 8,
		SpontaneousPerAction: 2, ThresholdFraction: 0.4, Seed: 77,
	}
	return MakeEnv(cfg)
}

// fastOpts keeps Monte-Carlo work tiny in tests.
var fastOpts = ExpOptions{K: 5, Trials: 50, Lambda: 0.001, Seed: 7}

func TestNewEnvSplit(t *testing.T) {
	env := testEnv(t)
	if env.Train.NumActions()+env.Test.NumActions() != env.Full.NumActions() {
		t.Fatal("split lost actions")
	}
	ratio := float64(env.Test.NumActions()) / float64(env.Full.NumActions())
	if ratio < 0.15 || ratio > 0.25 {
		t.Fatalf("test ratio = %.2f, want ~0.20", ratio)
	}
	if len(env.GroundTruth) != env.Test.NumActions() {
		t.Fatalf("ground truth cases %d != test actions %d",
			len(env.GroundTruth), env.Test.NumActions())
	}
	for _, tc := range env.GroundTruth {
		if len(tc.Initiators) == 0 || tc.Actual < len(tc.Initiators) {
			t.Fatalf("bad test case %+v", tc)
		}
	}
}

func TestSection3WeightsComplete(t *testing.T) {
	env := testEnv(t)
	weights := Section3Weights(env, MethodOptions{Seed: 1})
	for _, name := range []string{"UN", "TV", "WC", "EM", "PT"} {
		if weights[name] == nil {
			t.Fatalf("missing method %s", name)
		}
	}
	// UN must be flat 0.01 everywhere there is an edge.
	g := env.Graph
	for u := int32(0); u < 20; u++ {
		for _, v := range g.Out(u) {
			if p := weights["UN"].Get(u, v); p != 0.01 {
				t.Fatalf("UN p = %g", p)
			}
		}
	}
}

func TestRunSpreadPredictionShape(t *testing.T) {
	env := testEnv(t)
	preds := Section6Predictors(env, MethodOptions{Trials: 30, Seed: 2})
	reports := RunSpreadPrediction(env, preds, 10, []int{0, 5, 10, 50})
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(reports))
	}
	for _, r := range reports {
		if len(r.Scatter) != len(env.GroundTruth) {
			t.Fatalf("%s scatter %d != cases %d", r.Method, len(r.Scatter), len(env.GroundTruth))
		}
		if r.OverallRMSE < 0 || math.IsNaN(r.OverallRMSE) {
			t.Fatalf("%s rmse %g", r.Method, r.OverallRMSE)
		}
		// Capture ratios are monotone nondecreasing in the error budget
		// and end at most at 1.
		for i := 1; i < len(r.Capture); i++ {
			if r.Capture[i].Ratio < r.Capture[i-1].Ratio {
				t.Fatalf("%s capture not monotone", r.Method)
			}
		}
		last := r.Capture[len(r.Capture)-1].Ratio
		if last < 0 || last > 1 {
			t.Fatalf("%s capture out of range: %g", r.Method, last)
		}
		// Bin counts sum to the number of cases.
		total := 0
		for _, b := range r.Bins {
			total += b.Count
		}
		if total != len(env.GroundTruth) {
			t.Fatalf("%s bins cover %d of %d", r.Method, total, len(env.GroundTruth))
		}
	}
}

func TestRMSEHelper(t *testing.T) {
	got := RMSE([]float64{1, 2}, []float64{1, 4})
	if math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("RMSE = %g", got)
	}
	if !math.IsNaN(RMSE([]float64{1}, []float64{})) {
		t.Fatal("length mismatch should be NaN")
	}
}

func TestSeedSetsIntersection(t *testing.T) {
	var s SeedSets
	s.Add("A", []graph.NodeID{1, 2, 3})
	s.Add("B", []graph.NodeID{3, 4, 5})
	s.Add("C", []graph.NodeID{9})
	m := s.Matrix()
	if m[0][0] != 3 || m[0][1] != 1 || m[0][2] != 0 || m[1][1] != 3 {
		t.Fatalf("matrix = %v", m)
	}
	text := s.RenderMatrix()
	if !strings.Contains(text, "A") || !strings.Contains(text, "B") {
		t.Fatalf("render missing names:\n%s", text)
	}
}

func TestOverlap(t *testing.T) {
	if got := Overlap([]graph.NodeID{1, 2, 3}, []graph.NodeID{2, 3, 4}); got != 2 {
		t.Fatalf("Overlap = %d", got)
	}
}

func TestTable1(t *testing.T) {
	var sb strings.Builder
	stats := Table1(&sb, []datagen.Config{{
		Name: "tiny", NumUsers: 100, OutDegree: 3, Reciprocity: 0.5,
		NumActions: 30, MeanInfluence: 0.1, Seed: 5,
	}})
	if len(stats) != 1 || stats[0].NumActions != 30 {
		t.Fatalf("stats = %+v", stats)
	}
	if !strings.Contains(sb.String(), "tiny") {
		t.Fatal("table missing dataset name")
	}
}

func TestTable2SeedSets(t *testing.T) {
	env := testEnv(t)
	sets := Table2(io.Discard, env, fastOpts)
	if len(sets.Names) != 5 {
		t.Fatalf("methods = %v", sets.Names)
	}
	for i, seeds := range sets.Sets {
		if len(seeds) != fastOpts.K {
			t.Fatalf("method %s selected %d seeds, want %d", sets.Names[i], len(seeds), fastOpts.K)
		}
	}
	// EM and PT (its perturbation) must agree far more than EM and UN:
	// the paper's noise-robustness observation.
	emIdx, ptIdx, unIdx := indexOf(sets.Names, "EM"), indexOf(sets.Names, "PT"), indexOf(sets.Names, "UN")
	if sets.Intersection(emIdx, ptIdx) < sets.Intersection(emIdx, unIdx) {
		t.Fatalf("EM∩PT=%d < EM∩UN=%d", sets.Intersection(emIdx, ptIdx), sets.Intersection(emIdx, unIdx))
	}
}

func indexOf(names []string, want string) int {
	for i, n := range names {
		if n == want {
			return i
		}
	}
	return -1
}

func TestSelectCDAndFigure5(t *testing.T) {
	env := testEnv(t)
	res := SelectCD(env, fastOpts)
	if len(res.Seeds) != fastOpts.K {
		t.Fatalf("CD selected %d seeds", len(res.Seeds))
	}
	// Gains must be non-increasing (submodularity through CELF).
	for i := 1; i < len(res.Gains); i++ {
		if res.Gains[i] > res.Gains[i-1]+1e-9 {
			t.Fatalf("gains not monotone: %v", res.Gains)
		}
	}
	sets := Figure5(io.Discard, env, fastOpts)
	if len(sets.Names) != 3 {
		t.Fatalf("figure5 methods = %v", sets.Names)
	}
}

func TestFigure6CurvesMonotone(t *testing.T) {
	env := testEnv(t)
	curves := Figure6(io.Discard, env, fastOpts)
	if len(curves) != 5 {
		t.Fatalf("curves = %d, want 5 methods", len(curves))
	}
	for _, c := range curves {
		for i := 1; i < len(c.Spread); i++ {
			if c.Spread[i] < c.Spread[i-1]-1e-9 {
				t.Fatalf("%s spread decreases with k: %v", c.Method, c.Spread)
			}
		}
	}
}

func TestFigure7CDFasterThanMC(t *testing.T) {
	env := testEnv(t)
	opts := fastOpts
	opts.K = 3
	// Enough trials that MC greedy does meaningful work even on the toy
	// dataset; with trivially few trials the comparison is scheduler
	// noise rather than algorithmic cost.
	opts.Trials = 500
	series := Figure7(io.Discard, env, opts)
	byName := map[string]RuntimeSeries{}
	for _, s := range series {
		byName[s.Method] = s
	}
	ic := byName["IC"].Elapsed
	cd := byName["CD"].Elapsed
	if len(ic) == 0 || len(cd) == 0 {
		t.Fatal("missing series")
	}
	// Even at toy scale the CD engine beats MC greedy.
	if cd[len(cd)-1] > ic[len(ic)-1] {
		t.Fatalf("CD %v slower than IC %v", cd[len(cd)-1], ic[len(ic)-1])
	}
}

func TestScalabilityPoints(t *testing.T) {
	env := testEnv(t)
	points := Scalability(io.Discard, env, []float64{0.3, 1.0}, fastOpts)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Tuples >= points[1].Tuples {
		t.Fatal("points not ascending in tuples")
	}
	// Full-data run defines true seeds, so its overlap is K by definition.
	if points[1].TrueSeeds != fastOpts.K {
		t.Fatalf("full-data true-seed overlap = %d, want %d", points[1].TrueSeeds, fastOpts.K)
	}
	if points[0].UCEntries <= 0 || points[1].UCEntries <= points[0].UCEntries {
		t.Fatal("UC entries should grow with tuples")
	}
}

func TestTable4LambdaTradeoff(t *testing.T) {
	env := testEnv(t)
	points := Table4(io.Discard, env, []float64{0.1, 0.001}, fastOpts)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	coarse, fine := points[0], points[1]
	if coarse.Lambda != 0.1 || fine.Lambda != 0.001 {
		t.Fatalf("order wrong: %+v", points)
	}
	if coarse.UCEntries > fine.UCEntries {
		t.Fatal("coarser lambda should keep fewer UC entries")
	}
	if fine.TrueSeeds != fastOpts.K {
		t.Fatalf("finest lambda overlap = %d, want %d", fine.TrueSeeds, fastOpts.K)
	}
	if coarse.Spread > fine.Spread+1e-6 {
		t.Fatalf("coarse lambda spread %g exceeds fine %g", coarse.Spread, fine.Spread)
	}
}

func TestKGrid(t *testing.T) {
	grid := kGrid(50)
	if grid[0] != 1 || grid[len(grid)-1] != 50 {
		t.Fatalf("grid = %v", grid)
	}
	grid = kGrid(3)
	if grid[len(grid)-1] != 3 {
		t.Fatalf("grid = %v", grid)
	}
}

func TestBinWidthAndErrGrid(t *testing.T) {
	env := testEnv(t)
	if binWidthFor(env) < 5 {
		t.Fatal("bin width too small")
	}
	grid := errGridFor(env)
	if len(grid) < 2 || grid[0] != 0 {
		t.Fatalf("err grid = %v", grid)
	}
}

func TestNoiseRobustnessMonotone(t *testing.T) {
	env := testEnv(t)
	points := NoiseRobustness(io.Discard, env, []float64{0.05, 0.8}, fastOpts)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Mild noise should preserve at least as many seeds as extreme noise
	// (allowing equality: both can be perfect on tiny data).
	if points[0].Overlap < points[1].Overlap {
		t.Fatalf("5%% noise overlap %d below 80%% noise overlap %d",
			points[0].Overlap, points[1].Overlap)
	}
	for _, p := range points {
		if p.Overlap < 0 || p.Overlap > fastOpts.K {
			t.Fatalf("overlap out of range: %+v", p)
		}
	}
}

func TestLearnerComparison(t *testing.T) {
	env := testEnv(t)
	points := LearnerComparison(io.Discard, env, fastOpts)
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Spread <= 0 {
			t.Fatalf("method %s spread %g", p.Method, p.Spread)
		}
	}
	if points[0].Method != "CD" {
		t.Fatalf("first method = %s", points[0].Method)
	}
}

func TestCSVExports(t *testing.T) {
	env := testEnv(t)
	preds := Section6Predictors(env, MethodOptions{Trials: 20, Seed: 3})
	reports := RunSpreadPrediction(env, preds, 10, []int{0, 10})
	var sb strings.Builder
	if err := WritePredictionCSV(&sb, reports); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "method,bin_low,count,rmse") {
		t.Fatal("prediction CSV missing header")
	}
	sb.Reset()
	if err := WriteCaptureCSV(&sb, reports); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "\n") != 1+len(reports)*2 {
		t.Fatalf("capture CSV rows = %d", strings.Count(sb.String(), "\n"))
	}
	sb.Reset()
	if err := WriteScatterCSV(&sb, reports); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	curves := []SpreadCurve{{Method: "CD", Ks: []int{1, 2}, Spread: []float64{1, 2}}}
	if err := WriteSpreadCurvesCSV(&sb, curves); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CD,1,1") {
		t.Fatalf("spread CSV wrong:\n%s", sb.String())
	}
	sb.Reset()
	var sets SeedSets
	sets.Add("A", []graph.NodeID{1})
	sets.Add("B", []graph.NodeID{1})
	if err := WriteIntersectionCSV(&sb, &sets); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "A,B,1") {
		t.Fatalf("intersection CSV wrong:\n%s", sb.String())
	}
	sb.Reset()
	points := []ScalePoint{{Tuples: 10, UCEntries: 5, Spread: 1.5}}
	if err := WriteScalabilityCSV(&sb, points); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	tr := []TruncationPoint{{Lambda: 0.01, Spread: 2, TrueSeeds: 1}}
	if err := WriteTruncationCSV(&sb, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.01,2,1") {
		t.Fatalf("truncation CSV wrong:\n%s", sb.String())
	}
}

func TestTopologyRobustness(t *testing.T) {
	base := datagen.Config{
		Name: "topo-test", NumUsers: 300, OutDegree: 4, Reciprocity: 0.5,
		NumActions: 150, MeanInfluence: 0.08, MeanDelay: 8,
		SpontaneousPerAction: 2, Seed: 31,
	}
	points := TopologyRobustness(io.Discard, base, fastOpts)
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.CDSpread <= 0 {
			t.Fatalf("topology %s: CD spread %g", p.Topology, p.CDSpread)
		}
		// Trace-based selection should never lose to structure-only
		// heuristics when scored by the trace-based model.
		if p.Lift < 1 {
			t.Fatalf("topology %s: lift %g < 1", p.Topology, p.Lift)
		}
	}
}

func TestDatagenTopologies(t *testing.T) {
	for _, topo := range []string{"pa", "er", "ws"} {
		cfg := datagen.Config{
			Name: "t-" + topo, NumUsers: 200, OutDegree: 4,
			NumActions: 40, MeanInfluence: 0.1, Seed: 3, Topology: topo,
		}
		ds := datagen.Generate(cfg)
		if ds.Graph.NumEdges() == 0 || ds.Log.NumTuples() == 0 {
			t.Fatalf("topology %s produced empty dataset", topo)
		}
	}
}

func TestFigure2And4Drivers(t *testing.T) {
	env := testEnv(t)
	opts := fastOpts
	opts.Trials = 20
	var sb strings.Builder
	reports := Figure2(&sb, env, opts)
	if len(reports) != 5 {
		t.Fatalf("figure2 methods = %d", len(reports))
	}
	if !strings.Contains(sb.String(), "RMSE vs actual spread") {
		t.Fatal("figure2 text output missing")
	}
	sb.Reset()
	reports = Figure3(&sb, env, opts)
	if len(reports) != 3 {
		t.Fatalf("figure3 methods = %d", len(reports))
	}
	sb.Reset()
	reports = Figure4(&sb, env, opts)
	if len(reports) != 3 {
		t.Fatalf("figure4 methods = %d", len(reports))
	}
	if !strings.Contains(sb.String(), "captured within absolute error") {
		t.Fatal("figure4 text output missing")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.0KiB",
		3 << 20: "3.0MiB",
		5 << 30: "5.0GiB",
	}
	for in, want := range cases {
		if got := humanBytes(in); got != want {
			t.Errorf("humanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
