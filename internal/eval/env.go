// Package eval is the experiment harness: it wires datasets, learners,
// models, and selectors into the paper's experimental protocol and
// regenerates every table and figure of the evaluation section (see the
// per-experiment index in DESIGN.md §3).
package eval

import (
	"credist/internal/actionlog"
	"credist/internal/datagen"
	"credist/internal/graph"
)

// Env is a prepared experiment environment: a dataset with its action log
// split into training and test propagations per the paper's protocol
// (Section 3), plus the test-set ground truth (initiator seed sets and
// actual propagation sizes).
type Env struct {
	Name  string
	Graph *graph.Graph
	Full  *actionlog.Log
	Train *actionlog.Log
	Test  *actionlog.Log

	// GroundTruth holds, for every test propagation, its initiators (the
	// seed set whose spread is being predicted) and actual size.
	GroundTruth []TestCase
}

// TestCase is one test propagation: the paper treats its initiators as the
// seed set and its size as the actual spread.
type TestCase struct {
	Action     actionlog.ActionID // id within the test log
	Initiators []graph.NodeID
	Actual     int
}

// NewEnv splits the dataset's log 80/20 and extracts test-case ground
// truth.
func NewEnv(ds *datagen.Dataset) *Env {
	train, test, _, _ := actionlog.Split(ds.Log)
	env := &Env{
		Name:  ds.Name,
		Graph: ds.Graph,
		Full:  ds.Log,
		Train: train,
		Test:  test,
	}
	for a := 0; a < test.NumActions(); a++ {
		p := actionlog.BuildPropagation(test, ds.Graph, actionlog.ActionID(a))
		inits := p.Initiators()
		if len(inits) == 0 {
			continue // defensive: cannot happen, earliest actor has no parents
		}
		env.GroundTruth = append(env.GroundTruth, TestCase{
			Action:     actionlog.ActionID(a),
			Initiators: inits,
			Actual:     p.Size(),
		})
	}
	return env
}

// MakeEnv generates the dataset for cfg and prepares its environment.
func MakeEnv(cfg datagen.Config) *Env {
	return NewEnv(datagen.Generate(cfg))
}
