package eval_test

import (
	"testing"

	"credist"
	"credist/internal/datagen"
	"credist/internal/eval"
	"credist/internal/serve"
)

// TestExperimentsSeedsMatchServe is the regression wall for the shared
// seed-selection subsystem: the CD seed sets behind Figures 5/6/7
// (eval.SelectCD, what cmd/experiments prints) must match what a serve
// snapshot of the same dataset answers on /seeds — bit for bit in seeds,
// gains, and per-prefix spreads. Both paths route through internal/celf;
// this pins that neither grows a private variant again, at both worker
// extremes.
func TestExperimentsSeedsMatchServe(t *testing.T) {
	env := eval.MakeEnv(datagen.Config{
		Name: "parity", NumUsers: 220, OutDegree: 4, Reciprocity: 0.6,
		NumActions: 140, MeanInfluence: 0.12, MeanDelay: 8,
		SpontaneousPerAction: 1, Seed: 21,
	})
	const k = 12
	const lambda = 0.001

	// The experiments path learns over the training split; serve the same
	// split so the two sides see identical inputs.
	ds := &credist.Dataset{Name: env.Name, Graph: env.Graph, Log: env.Train}
	snap, err := serve.Build(serve.Source{Dataset: ds, Lambda: lambda})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	served, cached, err := snap.SelectSeeds(k)
	if err != nil {
		t.Fatalf("SelectSeeds: %v", err)
	}
	if cached {
		t.Fatal("cold /seeds reported cached")
	}

	for _, workers := range []int{1, 0} { // serial and GOMAXPROCS
		res := eval.SelectCD(env, eval.ExpOptions{K: k, Lambda: lambda, Workers: workers})
		if len(res.Seeds) != len(served.Seeds) {
			t.Fatalf("workers=%d: experiments selected %d seeds, serve %d", workers, len(res.Seeds), len(served.Seeds))
		}
		spread := 0.0
		for i := range res.Seeds {
			if res.Seeds[i] != served.Seeds[i] || res.Gains[i] != served.Gains[i] {
				t.Fatalf("workers=%d: paths diverged at seed %d: experiments (%d, %b), serve (%d, %b)",
					workers, i, res.Seeds[i], res.Gains[i], served.Seeds[i], served.Gains[i])
			}
			spread += res.Gains[i]
		}
		if spread != served.Spread {
			t.Fatalf("workers=%d: spread %b (experiments) != %b (serve)", workers, spread, served.Spread)
		}
	}

	// Any smaller k serve answers from its prefix equals the experiments
	// run at that k (prefix-incremental results are real selections, not
	// approximations).
	small := eval.SelectCD(env, eval.ExpOptions{K: 5, Lambda: lambda})
	prefix, cached, err := snap.SelectSeeds(5)
	if err != nil {
		t.Fatalf("SelectSeeds: %v", err)
	}
	if !cached {
		t.Fatal("k=5 after k=12 was not served from the prefix")
	}
	for i := range small.Seeds {
		if small.Seeds[i] != prefix.Seeds[i] || small.Gains[i] != prefix.Gains[i] {
			t.Fatalf("prefix k=5 diverged from experiments at seed %d", i)
		}
	}
}
