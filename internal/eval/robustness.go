package eval

import (
	"fmt"
	"io"
	"math/rand/v2"

	"credist/internal/core"
	"credist/internal/graph"
	"credist/internal/heuristic"
	"credist/internal/probs"
	"credist/internal/seedsel"
)

// NoisePoint is one row of the noise-robustness sweep: how much the seed
// set and its quality change when the learned probabilities are perturbed
// by +/- Noise relative error before selection.
type NoisePoint struct {
	Noise      float64
	Overlap    int     // |seeds(EM) ∩ seeds(perturbed)|
	SpreadLoss float64 // 1 - spread(perturbed seeds)/spread(EM seeds)
}

// NoiseRobustness extends the paper's PT experiment (Section 3, and
// side-contribution (3) of the conclusions) from a single 20% noise level
// to a sweep: perturb the EM-learned probabilities at increasing noise,
// re-select seeds, and measure how far selection quality degrades. The
// paper's claim is that greedy selection is robust to moderate learning
// error; the sweep shows where that stops holding.
func NoiseRobustness(w io.Writer, env *Env, noises []float64, opts ExpOptions) []NoisePoint {
	opts = opts.withDefaults()
	if len(noises) == 0 {
		noises = []float64{0.05, 0.1, 0.2, 0.4, 0.8}
	}
	em := probs.LearnEMIC(env.Graph, env.Train, probs.EMOptions{})
	base := seedsel.CELF(heuristic.NewPMIA(em, opts.Theta), opts.K)

	// Score seed sets with the CD evaluator, the paper's best proxy for
	// actual spread.
	credit := core.LearnTimeAware(env.Graph, env.Train)
	scorer := core.NewEvaluator(env.Graph, env.Train, credit)
	baseSpread := scorer.Spread(base.Seeds)

	rng := rand.New(rand.NewPCG(opts.Seed, 0xfade))
	var points []NoisePoint
	for _, noise := range noises {
		pt := probs.Perturb(em, noise, rng)
		res := seedsel.CELF(heuristic.NewPMIA(pt, opts.Theta), opts.K)
		loss := 0.0
		if baseSpread > 0 {
			loss = 1 - scorer.Spread(res.Seeds)/baseSpread
		}
		points = append(points, NoisePoint{
			Noise:      noise,
			Overlap:    Overlap(base.Seeds, res.Seeds),
			SpreadLoss: loss,
		})
	}

	fmt.Fprintf(w, "Noise robustness of greedy selection on %s (k=%d):\n", env.Name, opts.K)
	fmt.Fprintf(w, "%8s %10s %12s\n", "noise", "overlap", "spread loss")
	for _, p := range points {
		fmt.Fprintf(w, "%7.0f%% %7d/%2d %11.1f%%\n", p.Noise*100, p.Overlap, opts.K, p.SpreadLoss*100)
	}
	return points
}

// MethodSpreadPoint scores one probability-learning method by the CD
// spread of the seeds selected under it.
type MethodSpreadPoint struct {
	Method string
	Spread float64
}

// LearnerComparison is an extension experiment: select seeds under every
// trace-based probability learner the repository implements (EM of Saito
// et al., plus the Bernoulli / Jaccard / Partial-Credits static models of
// Goyal et al. WSDM 2010) and compare the CD-scored spread of their seed
// sets against the CD model's own selection.
func LearnerComparison(w io.Writer, env *Env, opts ExpOptions) []MethodSpreadPoint {
	opts = opts.withDefaults()
	credit := core.LearnTimeAware(env.Graph, env.Train)
	scorer := core.NewEvaluator(env.Graph, env.Train, credit)

	weights := map[string]func() []graph.NodeID{
		"EM": func() []graph.NodeID {
			w := probs.LearnEMIC(env.Graph, env.Train, probs.EMOptions{})
			return seedsel.CELF(heuristic.NewPMIA(w, opts.Theta), opts.K).Seeds
		},
		"Bernoulli": func() []graph.NodeID {
			w := probs.LearnGoyal(env.Graph, env.Train, probs.Bernoulli)
			return seedsel.CELF(heuristic.NewPMIA(w, opts.Theta), opts.K).Seeds
		},
		"Jaccard": func() []graph.NodeID {
			w := probs.LearnGoyal(env.Graph, env.Train, probs.Jaccard)
			return seedsel.CELF(heuristic.NewPMIA(w, opts.Theta), opts.K).Seeds
		},
		"PartialCredits": func() []graph.NodeID {
			w := probs.LearnGoyal(env.Graph, env.Train, probs.PartialCredits)
			return seedsel.CELF(heuristic.NewPMIA(w, opts.Theta), opts.K).Seeds
		},
		"CD": func() []graph.NodeID {
			return SelectCD(env, opts).Seeds
		},
	}
	order := []string{"CD", "EM", "Bernoulli", "Jaccard", "PartialCredits"}
	var points []MethodSpreadPoint
	for _, name := range order {
		seeds := weights[name]()
		points = append(points, MethodSpreadPoint{Method: name, Spread: scorer.Spread(seeds)})
	}

	fmt.Fprintf(w, "Trace-based learners on %s (k=%d, CD-scored spread):\n", env.Name, opts.K)
	for _, p := range points {
		fmt.Fprintf(w, "%16s %10.1f\n", p.Method, p.Spread)
	}
	return points
}
