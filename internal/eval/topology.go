package eval

import (
	"fmt"
	"io"

	"credist/internal/core"
	"credist/internal/datagen"
	"credist/internal/graph"
	"credist/internal/seedsel"
)

// TopologyPoint scores the CD model against the structural baselines on
// one graph topology.
type TopologyPoint struct {
	Topology string
	CDSpread float64
	HDSpread float64
	PRSpread float64
	// Lift is CDSpread / max(HDSpread, PRSpread) - how much knowing the
	// traces buys over knowing only the structure.
	Lift float64
}

// TopologyRobustness is an extension experiment: regenerate the dataset
// on different random-graph families (preferential attachment,
// Erdos-Renyi, Watts-Strogatz) holding the cascade process fixed, and
// check that the CD model's advantage over structural heuristics is not
// an artifact of one topology.
func TopologyRobustness(w io.Writer, base datagen.Config, opts ExpOptions) []TopologyPoint {
	opts = opts.withDefaults()
	var points []TopologyPoint
	for _, topo := range []string{"pa", "er", "ws"} {
		cfg := base
		cfg.Topology = topo
		cfg.Name = base.Name + "-" + topo
		env := NewEnv(datagen.Generate(cfg))

		credit := core.LearnTimeAware(env.Graph, env.Train)
		scorer := core.NewEvaluator(env.Graph, env.Train, credit)

		cd := SelectCD(env, opts)
		hd := seedsel.HighDegree(env.Graph, opts.K)
		pr := seedsel.PageRankSeeds(env.Graph, opts.K, graph.PageRankOptions{})

		pt := TopologyPoint{
			Topology: topo,
			CDSpread: scorer.Spread(cd.Seeds),
			HDSpread: scorer.Spread(hd),
			PRSpread: scorer.Spread(pr),
		}
		baseline := pt.HDSpread
		if pt.PRSpread > baseline {
			baseline = pt.PRSpread
		}
		if baseline > 0 {
			pt.Lift = pt.CDSpread / baseline
		}
		points = append(points, pt)
	}

	fmt.Fprintf(w, "Topology robustness (k=%d, CD-scored spread):\n", opts.K)
	fmt.Fprintf(w, "%6s %10s %10s %10s %8s\n", "topo", "CD", "HighDeg", "PageRank", "lift")
	for _, p := range points {
		fmt.Fprintf(w, "%6s %10.1f %10.1f %10.1f %7.2fx\n",
			p.Topology, p.CDSpread, p.HDSpread, p.PRSpread, p.Lift)
	}
	return points
}
