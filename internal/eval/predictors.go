package eval

import (
	"math/rand/v2"

	"credist/internal/cascade"
	"credist/internal/core"
	"credist/internal/graph"
	"credist/internal/probs"
)

// Predictor estimates the expected spread of a seed set. Each method of
// Section 3 / Section 6 is one Predictor.
type Predictor struct {
	Name    string
	Predict func(seeds []graph.NodeID) float64
}

// MCTrials is the default simulation count for Monte-Carlo predictors;
// the paper uses 10,000, we default lower for laptop-scale runs (see
// DESIGN.md §4). Override per-call via Methods options.
const MCTrials = 1000

// MethodOptions configures predictor construction.
type MethodOptions struct {
	// Trials overrides the Monte-Carlo simulation count (default MCTrials).
	Trials int
	// Seed drives all randomized assignments and simulations.
	Seed uint64
	// PerturbNoise is the PT method's relative noise bound (default 0.20).
	PerturbNoise float64
}

func (o MethodOptions) withDefaults() MethodOptions {
	if o.Trials == 0 {
		o.Trials = MCTrials
	}
	if o.PerturbNoise == 0 {
		o.PerturbNoise = 0.20
	}
	return o
}

// ICPredictor wraps Monte-Carlo IC estimation over the given weights.
func ICPredictor(name string, w *cascade.Weights, opts MethodOptions) Predictor {
	opts = opts.withDefaults()
	mc := cascade.NewMCEstimator(w, cascade.IC, cascade.MCOptions{Trials: opts.Trials, Seed: opts.Seed})
	return Predictor{Name: name, Predict: mc.Spread}
}

// LTPredictor wraps Monte-Carlo LT estimation over the given weights.
func LTPredictor(name string, w *cascade.Weights, opts MethodOptions) Predictor {
	opts = opts.withDefaults()
	mc := cascade.NewMCEstimator(w, cascade.LT, cascade.MCOptions{Trials: opts.Trials, Seed: opts.Seed})
	return Predictor{Name: name, Predict: mc.Spread}
}

// CDPredictor wraps the credit-distribution evaluator.
func CDPredictor(ev *core.Evaluator) Predictor {
	return Predictor{Name: "CD", Predict: ev.Spread}
}

// Section3Weights builds the five IC edge-probability assignments compared
// in Section 3: UN, TV, WC, EM, and PT (EM perturbed).
func Section3Weights(env *Env, opts MethodOptions) map[string]*cascade.Weights {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewPCG(opts.Seed, 0x5ec7104))
	em := probs.LearnEMIC(env.Graph, env.Train, probs.EMOptions{})
	return map[string]*cascade.Weights{
		"UN": probs.Uniform(env.Graph, 0.01),
		"TV": probs.Trivalency(env.Graph, rng),
		"WC": probs.WeightedCascade(env.Graph),
		"EM": em,
		"PT": probs.Perturb(em, opts.PerturbNoise, rng),
	}
}

// Section3Predictors builds the five Section-3 predictors (all under the
// IC model, differing only in edge probabilities).
func Section3Predictors(env *Env, opts MethodOptions) []Predictor {
	weights := Section3Weights(env, opts)
	order := []string{"UN", "TV", "WC", "EM", "PT"}
	out := make([]Predictor, 0, len(order))
	for _, name := range order {
		out = append(out, ICPredictor(name, weights[name], opts))
	}
	return out
}

// Section6Predictors builds the three learned-model predictors compared in
// Section 6: IC with EM-learned probabilities, LT with frequency-learned
// weights, and CD with time-aware credit.
func Section6Predictors(env *Env, opts MethodOptions) []Predictor {
	opts = opts.withDefaults()
	icW := probs.LearnEMIC(env.Graph, env.Train, probs.EMOptions{})
	ltW := probs.LearnLTWeights(env.Graph, env.Train)
	credit := core.LearnTimeAware(env.Graph, env.Train)
	ev := core.NewEvaluator(env.Graph, env.Train, credit)
	return []Predictor{
		ICPredictor("IC", icW, opts),
		LTPredictor("LT", ltW, opts),
		CDPredictor(ev),
	}
}
